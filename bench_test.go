// Package repro's root benchmarks regenerate every table and figure of the
// paper, one testing.B benchmark per experiment (see DESIGN.md §4). They
// run at the Tiny scale so `go test -bench=.` stays fast; use cmd/ncbench
// for larger scales. The shared workspace caches the simulated register,
// so each benchmark measures its experiment's analysis pass.
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/synth"
)

// benchWS is shared across benchmarks; bench.Workspace caches generated
// snapshots and imported datasets.
var benchWS = bench.NewWorkspace(bench.Tiny)

const benchTop = 40 // clusters per NC1-NC3 customization in benchmarks

func BenchmarkGenerateRegister(b *testing.B) {
	cfg := synth.DefaultConfig(1, bench.Tiny.InitialVoters)
	cfg.Snapshots = synth.Calendar(2008, bench.Tiny.Years)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synth.Generate(cfg)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunTable1(benchWS, io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunTable2(benchWS, io.Discard)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunTable3(benchWS, benchTop, io.Discard)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunTable4(benchWS, io.Discard)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure1(benchWS, io.Discard)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure3Examples(io.Discard)
	}
}

func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure4a(benchWS, io.Discard)
	}
}

func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure4b(benchWS, io.Discard)
	}
}

func BenchmarkFigure4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure4c(1, io.Discard)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure5(benchWS, benchTop, io.Discard)
	}
}

func BenchmarkFigure5Comparators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFigure5Comparators(1, io.Discard)
	}
}

func BenchmarkAblationHashing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationHashing(benchWS, io.Discard)
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationWindow(benchWS, benchTop, io.Discard)
	}
}

func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationWeights(benchWS, benchTop, io.Discard)
	}
}

func BenchmarkAblationGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationGeneration(benchWS, io.Discard)
	}
}

func BenchmarkAblationNameScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationNameScoring(benchWS, io.Discard)
	}
}

func BenchmarkAblationBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationBlocking(benchWS, benchTop, io.Discard)
	}
}

func BenchmarkAblationPollution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationPollution(benchWS, io.Discard)
	}
}
