# Development targets. `make ci` is the gate: gofmt + vet + build +
# race-enabled tests over every package + the conformance harness, the
# fuzz smoke pass, the coverage floors and the docs-link check.

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci fmt vet build test race test-short serve-race serving-race ingest-race score-race blocking-race docstore-race delta-race stream-race provenance-race conformance fuzz-smoke cover bench-matching bench-blocking bench-docstore bench-serving bench-delta bench-dedup docs

ci: fmt vet build race docs conformance fuzz-smoke cover score-race blocking-race docstore-race serving-race delta-race stream-race provenance-race bench-blocking bench-docstore bench-serving bench-delta bench-dedup

# Fail when any tracked Go file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The race-enabled integration suite is ~10x slower than the plain one;
# Go's default 10-minute per-binary timeout is too tight for
# internal/bench on small hosts, so set an explicit budget.
race:
	$(GO) test -race -timeout 45m ./...

# The serving-stack subset of the race suite — fast enough for a pre-commit
# check of docstore/httpapi/obs changes.
serve-race:
	$(GO) test -race ./internal/docstore ./internal/httpapi ./internal/obs

# The serving-snapshot suite under the race detector: lock-free reads under
# atomic swap (TestSwapUnderLoad), the snapshot/cache unit tests and the
# load generator. The store-vs-snapshot byte-identity oracle runs with the
# conformance harness (internal/testkit).
serving-race:
	$(GO) test -race ./internal/serving ./internal/loadgen ./internal/httpapi

# The parallel-ingest equivalence suite under the race detector — the
# byte-identical-to-sequential guarantee of docs/ARCHITECTURE.md.
ingest-race:
	$(GO) test -race -run 'TestParallelImport|TestStreamTSVLongLine' ./internal/core ./internal/voter

# The parallel-scoring equivalence suite under the race detector — the
# bit-identical-to-sequential guarantee of the §6.3/§6.5 scoring engine
# (docs/ARCHITECTURE.md "Scoring engine").
score-race:
	$(GO) test -race -run 'TestParallelScore|TestEntropyDeterministic|TestSoftCosineDeterministic|TestIntoVariantsMatch|TestHybridIntoVariantsMatch|TestEvaluateAllParallel' \
		./internal/dedup ./internal/simil ./internal/hetero ./internal/plaus ./internal/core

# The blocking-layer equivalence suite under the race detector — the
# bit-identical-for-any-worker-count guarantee of the candidate-generation
# layer (docs/BLOCKING.md "Determinism"): the package's own ladder tests
# plus the blocking differential oracle in internal/testkit.
blocking-race:
	$(GO) test -race ./internal/blocking
	$(GO) test -race -run 'TestConformanceBlocking' ./internal/testkit

# The segmented-persistence equivalence suite under the race detector — the
# identical-for-any-worker-count guarantee of the parallel docstore save/load
# path and the streaming pipeline (docs/ARCHITECTURE.md "Document store").
# The worker ladder {1, 2, 7, GOMAXPROCS} lives in the tests themselves.
docstore-race:
	$(GO) test -race -run 'TestSaveLoadParallel|TestSaveParallel|TestLoadParallel|TestLoadRejects|TestLoadSkips|TestSegmented|TestPipeline|TestForEachParallel|TestFromDocDBParallel' \
		./internal/docstore ./internal/core

# The delta-ingest equivalence suite under the race detector — the
# bit-identical-to-full-reimport guarantee of incremental snapshot
# application (docs/ARCHITECTURE.md "Delta ingest"): the core delta and
# fingerprint-index tests, the dirty-segment save oracle, and the testkit
# differential oracle over the worker ladder {1, 2, 7, GOMAXPROCS} and
# changed fractions {0%, 1%, 25%, 100%}.
delta-race:
	$(GO) test -race -run 'TestApplySnapshotDelta|TestDelta|TestFingerprintIndex|TestUpdateScoresOn' ./internal/core
	$(GO) test -race -run 'TestDirtySave|TestSegmentCache|TestStrideSave|TestSegmentRangesStride' ./internal/docstore
	$(GO) test -race -run 'TestConformanceDelta' ./internal/testkit

# The streaming-dedup equivalence suite under the race detector — the
# bit-identical-to-materialized guarantee of the fused pipeline
# (docs/BLOCKING.md "Streaming mode"): the producer's own ladder tests, the
# streaming scorer's equivalence tests, and the end-to-end testkit oracle
# over the worker ladder {1, 2, 7, GOMAXPROCS}.
stream-race:
	$(GO) test -race -run 'TestStream|TestSNMSource' ./internal/blocking
	$(GO) test -race -run 'TestStream|TestThresholdBucket|TestCurveFromCounts|TestMemo' ./internal/dedup
	$(GO) test -race -run 'TestConformanceStreamingDedup' ./internal/testkit

# The provenance-chain suite under the race detector — the record's own unit
# and hostile-input tests, the save-mode-independence differential oracle
# (full reimport vs delta-applied store must stamp byte-identical records at
# every worker count) and the bit-flip fault sweep that must pinpoint the
# exact corrupted file (docs/ARCHITECTURE.md "Provenance chain").
provenance-race:
	$(GO) test -race ./internal/provenance
	$(GO) test -race -run 'TestConformanceProvenance|TestProvenanceFaultSweep' ./internal/testkit

# The unified conformance harness (docs/TESTING.md): the three differential
# oracles — ingest, scoring, docstore — through internal/testkit under the
# race detector, plus the fault-injection sweep, the examples smoke test
# and the shared scanner-limit regression.
conformance:
	$(GO) test -race ./internal/testkit ./internal/scanio

# Every native fuzz target, seeds plus $(FUZZTIME) of live fuzzing each.
# `make fuzz-smoke FUZZTIME=10m` digs deeper on one coffee break.
FUZZ_TARGETS = \
	FuzzParseHeader:./internal/voter \
	FuzzDecodeRow:./internal/voter \
	FuzzStreamTSV:./internal/voter \
	FuzzLoadFile:./internal/docstore \
	FuzzLoadSegmented:./internal/docstore \
	FuzzStringKernels:./internal/simil \
	FuzzTokenKernels:./internal/simil \
	FuzzProvenanceDecode:./internal/provenance \
	FuzzChainVerify:./internal/provenance

fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t##*:}; \
		echo "==> fuzz $$name ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$name$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

# Per-package coverage floors (coverage_floors.txt). The floors are a
# ratchet: raise them when coverage rises, never lower them to ship.
cover:
	@fail=0; while read -r pkg floor; do \
		case "$$pkg" in ''|\#*) continue;; esac; \
		pct=$$($(GO) test -cover "$$pkg" | tail -1 | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+'); \
		if [ -z "$$pct" ]; then echo "FAIL $$pkg: no coverage reported"; fail=1; continue; fi; \
		if awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p >= f)}'; then \
			echo "ok   $$pkg $$pct% (floor $$floor%)"; \
		else echo "FAIL $$pkg $$pct% under floor $$floor%"; fail=1; fi; \
	done < coverage_floors.txt; exit $$fail

# Matching-throughput ladder (pairs/sec per measure, legacy vs engine) —
# the numbers behind the EXPERIMENTS.md matching section.
bench-matching:
	$(GO) run ./cmd/ncbench -scale small -exp matching

# Candidate-generation ladder (SNM pass counts, trigram banding, union):
# pairs considered, reduction, recall of injected duplicates and the
# parallel worker ladder — the numbers behind the EXPERIMENTS.md blocking
# section (BENCH_blocking.json).
bench-blocking:
	$(GO) run ./cmd/ncbench -scale small -exp blocking

# Segmented save/load ladder plus the pipeline pushdown comparison — the
# numbers behind the EXPERIMENTS.md docstore section (BENCH_docstore.json).
bench-docstore:
	$(GO) run ./cmd/ncbench -scale small -exp docstore

# Closed-loop serving-load ladder (direct vs cache vs snapshot vs both) —
# the numbers behind the EXPERIMENTS.md serving section (BENCH_serving.json).
bench-serving:
	$(GO) run ./cmd/ncbench -scale small -exp load

# Incremental-application ladder (delta apply + dirty rescoring + dirty
# segments vs full reimport at 1%/5%/25%/100% changed) — the numbers behind
# the EXPERIMENTS.md delta section (BENCH_delta.json).
bench-delta:
	$(GO) run ./cmd/ncbench -scale small -exp delta

# End-to-end dedup memory/throughput comparison (materialized vs streamed
# pipeline on a synthetic 100k-record corpus, identity-checked) — the
# numbers behind the EXPERIMENTS.md "Dedup at scale" section
# (BENCH_dedup.json). Runs at a reduced record count in CI so the gate
# stays fast; the committed artifact is a full 100k run.
bench-dedup:
	$(GO) run ./cmd/ncbench -scale small -exp dedup -dedup-records 20000

# Fail when the README links to a docs/ file that does not exist.
docs:
	@missing=0; for f in $$(grep -oE 'docs/[A-Za-z0-9_.-]+\.md' README.md | sort -u); do \
		if [ ! -f "$$f" ]; then echo "README links to missing $$f"; missing=1; fi; done; \
	exit $$missing
