# Development targets. `make ci` is the gate: gofmt + vet + build +
# race-enabled tests over every package + the docs-link check.

GO ?= go

.PHONY: ci fmt vet build test race test-short serve-race ingest-race docs

ci: fmt vet build race docs

# Fail when any tracked Go file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The serving-stack subset of the race suite — fast enough for a pre-commit
# check of docstore/httpapi/obs changes.
serve-race:
	$(GO) test -race ./internal/docstore ./internal/httpapi ./internal/obs

# The parallel-ingest equivalence suite under the race detector — the
# byte-identical-to-sequential guarantee of docs/ARCHITECTURE.md.
ingest-race:
	$(GO) test -race -run 'TestParallelImport|TestStreamTSVLongLine' ./internal/core ./internal/voter

# Fail when the README links to a docs/ file that does not exist.
docs:
	@missing=0; for f in $$(grep -oE 'docs/[A-Za-z0-9_.-]+\.md' README.md | sort -u); do \
		if [ ! -f "$$f" ]; then echo "README links to missing $$f"; missing=1; fi; done; \
	exit $$missing
