# Development targets. `make ci` is the gate: vet + build + race-enabled
# tests over every package.

GO ?= go

.PHONY: ci vet build test race test-short serve-race

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The serving-stack subset of the race suite — fast enough for a pre-commit
# check of docstore/httpapi/obs changes.
serve-race:
	$(GO) test -race ./internal/docstore ./internal/httpapi ./internal/obs
