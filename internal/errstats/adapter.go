package errstats

import (
	"strings"

	"repro/internal/core"
	"repro/internal/voter"
)

// FromDataset builds the analyzer input from a core dataset, restricted to
// the person attributes (the paper's Table 4 profiles personal data). The
// multi-attribute checks are limited to the three name attributes, where the
// register's confusions actually happen.
func FromDataset(d *core.Dataset) Input {
	cols := voter.GroupIndices(voter.GroupPerson)
	attrs := voter.Names(cols)
	in := Input{Attrs: attrs, AgeAttr: "age", AbbrevExempt: map[string]bool{}}
	// Single-letter code attributes are abbreviations by design, not data
	// errors.
	for _, a := range attrs {
		if strings.HasSuffix(a, "_cd") || strings.HasSuffix(a, "_code") ||
			a == "state_cd" || a == "mail_state" || a == "drivers_lic" ||
			a == "street_dir" || a == "unit_designator" {
			in.AbbrevExempt[a] = true
		}
	}

	nameIdx := map[string]int{}
	for i, a := range attrs {
		nameIdx[a] = i
	}
	for _, pair := range [][2]string{
		{"first_name", "midl_name"},
		{"first_name", "last_name"},
		{"midl_name", "last_name"},
	} {
		i, ok1 := nameIdx[pair[0]]
		j, ok2 := nameIdx[pair[1]]
		if ok1 && ok2 {
			in.ConfusablePairs = append(in.ConfusablePairs, [2]int{i, j})
		}
	}

	d.Clusters(func(c *core.Cluster) bool {
		var cluster []int
		for _, e := range c.Records {
			vals := make([]string, len(cols))
			for vi, ci := range cols {
				vals[vi] = e.Rec.Values[ci]
			}
			cluster = append(cluster, len(in.Records))
			in.Records = append(in.Records, vals)
		}
		in.Clusters = append(in.Clusters, cluster)
		return true
	})
	return in
}
