package errstats_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/errstats"
	"repro/internal/testkit"
)

// External-package coverage of the adapter and render paths: a seeded
// register carrying every paper error type (the testkit corpus injects the
// full internal/corrupt palette) is profiled end to end, and the rendered
// outputs are parsed back and checked against the Table they came from —
// the text and CSV exports must be faithful projections of the counts, not
// approximations of them.

func analyzedCorpus(t *testing.T) *errstats.Table {
	t.Helper()
	d := testkit.Corpus{Seed: 23}.Dataset(t, 250, 4)
	in := errstats.FromDataset(d)
	if len(in.Records) == 0 || len(in.Clusters) == 0 {
		t.Fatal("adapter produced an empty input")
	}
	if in.AgeAttr != "age" {
		t.Fatalf("adapter age attribute = %q", in.AgeAttr)
	}
	if len(in.ConfusablePairs) != 3 {
		t.Fatalf("adapter restricted confusions to %d pairs, want the 3 name pairs", len(in.ConfusablePairs))
	}
	return errstats.Analyze(in)
}

func TestCorpusProfilesEveryErrorType(t *testing.T) {
	tbl := analyzedCorpus(t)
	if tbl.TotalRecords == 0 || tbl.TotalPairs == 0 {
		t.Fatalf("profile is empty: %d records, %d pairs", tbl.TotalRecords, tbl.TotalPairs)
	}
	for _, e := range errstats.SingletonTypes {
		if tbl.Singletons[e].Total == 0 {
			t.Errorf("singleton type %q never detected in the corrupted corpus", e)
		}
	}
	for _, e := range errstats.PairTypes {
		if tbl.PairBased[e].Total == 0 {
			t.Errorf("pair type %q never detected in the corrupted corpus", e)
		}
	}
}

// parseCSV rebuilds per-type attribute counts from the WriteCSV output.
func parseCSV(t *testing.T, data string) map[string]map[string]int {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if lines[0] != "error_type,attribute,count,normalizer,percent" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	out := map[string]map[string]int{}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			t.Fatalf("CSV row %q has %d fields", line, len(fields))
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			t.Fatalf("CSV row %q count: %v", line, err)
		}
		if out[fields[0]] == nil {
			out[fields[0]] = map[string]int{}
		}
		out[fields[0]][fields[1]] = n
	}
	return out
}

func TestCSVRoundTripsProfileCounts(t *testing.T) {
	tbl := analyzedCorpus(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed := parseCSV(t, buf.String())

	check := func(e errstats.ErrType, s *errstats.Stat) {
		for attr, want := range s.PerAttr {
			if got := parsed[string(e)][attr]; got != want {
				t.Errorf("%s/%s: CSV says %d, table says %d", e, attr, got, want)
			}
		}
		if len(parsed[string(e)]) != len(s.PerAttr) {
			t.Errorf("%s: CSV carries %d attributes, table %d", e, len(parsed[string(e)]), len(s.PerAttr))
		}
	}
	for _, e := range errstats.SingletonTypes {
		check(e, tbl.Singletons[e])
	}
	for _, e := range errstats.PairTypes {
		check(e, tbl.PairBased[e])
	}
}

func TestRenderTextRoundTripsMostCommon(t *testing.T) {
	tbl := analyzedCorpus(t)
	var buf bytes.Buffer
	errstats.RenderText(&buf, []errstats.Column{{Name: "corpus", Table: tbl}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	want := 1 + len(errstats.SingletonTypes) + len(errstats.PairTypes)
	if len(lines) != want {
		t.Fatalf("rendered %d lines, want %d", len(lines), want)
	}
	if !strings.Contains(lines[0], "corpus") {
		t.Fatalf("header row %q misses the column name", lines[0])
	}

	// Each body row is "<type> | <attr> <count> (<pct>%)" (or "-"); the
	// attribute and count must be the table's MostCommon of that type.
	types := append(append([]errstats.ErrType{}, errstats.SingletonTypes...), errstats.PairTypes...)
	for i, e := range types {
		row := lines[1+i]
		if !strings.HasPrefix(row, string(e)) {
			t.Fatalf("row %d = %q, want type %q", i, row, e)
		}
		var stat *errstats.Stat
		if i < len(errstats.SingletonTypes) {
			stat = tbl.Singletons[e]
		} else {
			stat = tbl.PairBased[e]
		}
		attr, n := stat.MostCommon()
		cell := strings.TrimSpace(strings.SplitN(row, "|", 2)[1])
		if n == 0 {
			if cell != "-" {
				t.Errorf("%s: cell %q, want empty marker", e, cell)
			}
			continue
		}
		if !strings.HasPrefix(cell, attr+" "+strconv.Itoa(n)+" (") {
			t.Errorf("%s: cell %q does not lead with %q and count %d", e, cell, attr, n)
		}
	}
}
