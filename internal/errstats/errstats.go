// Package errstats implements the paper's error-diversity analysis (§6.4,
// Table 4): it profiles a labeled dataset for singleton irregularities
// (outliers, abbreviations, missing values) and pair-based irregularities
// between duplicate records (typos, OCR errors, phonetic errors,
// prefix/postfix situations, formatting differences, token transpositions,
// value confusions, integrated and scattered values). The analyzer works on
// a schema-agnostic Input so the NC dataset and the Cora/Census/CDDB
// comparators all profile the same way.
package errstats

import (
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/simil"
	"repro/internal/voter"
)

// ErrType enumerates the irregularity types of Table 4.
type ErrType string

// Singleton irregularities.
const (
	Outlier      ErrType = "outlier"
	Abbreviation ErrType = "abbreviation"
	Missing      ErrType = "missing"
)

// Pair-based irregularities.
const (
	Typo            ErrType = "typo"
	OCRError        ErrType = "OCR-error"
	Phonetic        ErrType = "phonetic"
	Prefix          ErrType = "prefix"
	Postfix         ErrType = "postfix"
	Formatting      ErrType = "formatting"
	TokenTransp     ErrType = "token transp."
	ValueConfusion  ErrType = "value confusion"
	IntegratedValue ErrType = "integrated value"
	ScatteredValue  ErrType = "scattered value"
)

// SingletonTypes lists the singleton irregularities in table order.
var SingletonTypes = []ErrType{Outlier, Abbreviation, Missing}

// PairTypes lists the pair-based irregularities in table order.
var PairTypes = []ErrType{
	Typo, OCRError, Phonetic, Prefix, Postfix, Formatting,
	TokenTransp, ValueConfusion, IntegratedValue, ScatteredValue,
}

// Input is the schema-agnostic dataset view the analyzer consumes.
type Input struct {
	Attrs   []string   // analyzed attribute names, aligned with record values
	Records [][]string // every record's analyzed values
	// Clusters lists the record indices of each duplicate cluster; only
	// clusters of size >= 2 contribute pairs.
	Clusters [][]int
	// AgeAttr optionally names the attribute holding a bounded numeric age
	// for outlier detection ("" disables the numeric check).
	AgeAttr string
	// ConfusablePairs limits the expensive multi-attribute checks (value
	// confusion, integrated and scattered values) to the given attribute
	// index pairs. Nil means: all pairs if the schema has at most 8
	// attributes, otherwise none.
	ConfusablePairs [][2]int
	// AbbrevExempt lists attributes whose values are single-letter codes
	// by design (sex_code, race_code, ...); they never count as
	// abbreviations.
	AbbrevExempt map[string]bool
}

// Stat accumulates one irregularity's counts.
type Stat struct {
	Total   int            // occurrences over all attributes
	PerAttr map[string]int // occurrences per attribute name
}

// MostCommon returns the attribute with the highest count and that count.
func (s *Stat) MostCommon() (string, int) {
	best, bestN := "", 0
	names := make([]string, 0, len(s.PerAttr))
	for a := range s.PerAttr {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		if s.PerAttr[a] > bestN {
			best, bestN = a, s.PerAttr[a]
		}
	}
	return best, bestN
}

// Table is the full irregularity profile of one dataset.
type Table struct {
	TotalRecords int
	TotalPairs   int
	Singletons   map[ErrType]*Stat
	PairBased    map[ErrType]*Stat
}

// SingletonPct returns the most-common-attribute frequency of a singleton
// type normalized by the record count.
func (t *Table) SingletonPct(e ErrType) float64 {
	if t.TotalRecords == 0 {
		return 0
	}
	_, n := t.Singletons[e].MostCommon()
	return float64(n) / float64(t.TotalRecords)
}

// PairPct returns the most-common-attribute frequency of a pair-based type
// normalized by the duplicate-pair count.
func (t *Table) PairPct(e ErrType) float64 {
	if t.TotalPairs == 0 {
		return 0
	}
	_, n := t.PairBased[e].MostCommon()
	return float64(n) / float64(t.TotalPairs)
}

// Analyze profiles the input.
func Analyze(in Input) *Table {
	t := &Table{
		TotalRecords: len(in.Records),
		Singletons:   map[ErrType]*Stat{},
		PairBased:    map[ErrType]*Stat{},
	}
	for _, e := range SingletonTypes {
		t.Singletons[e] = &Stat{PerAttr: map[string]int{}}
	}
	for _, e := range PairTypes {
		t.PairBased[e] = &Stat{PerAttr: map[string]int{}}
	}

	ageIdx := -1
	for i, a := range in.Attrs {
		if in.AgeAttr != "" && a == in.AgeAttr {
			ageIdx = i
		}
	}

	for _, rec := range in.Records {
		analyzeSingletons(t, in.Attrs, rec, ageIdx, in.AbbrevExempt)
	}

	pairs := in.ConfusablePairs
	if pairs == nil && len(in.Attrs) <= 8 {
		for i := 0; i < len(in.Attrs); i++ {
			for j := i + 1; j < len(in.Attrs); j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}

	for _, cluster := range in.Clusters {
		for x := 0; x < len(cluster); x++ {
			for y := x + 1; y < len(cluster); y++ {
				a, b := in.Records[cluster[x]], in.Records[cluster[y]]
				t.TotalPairs++
				analyzePair(t, in.Attrs, a, b, pairs)
			}
		}
	}
	return t
}

func (t *Table) addSingleton(e ErrType, attr string) {
	s := t.Singletons[e]
	s.Total++
	s.PerAttr[attr]++
}

func (t *Table) addPair(e ErrType, attr string) {
	s := t.PairBased[e]
	s.Total++
	s.PerAttr[attr]++
}

// analyzeSingletons profiles one record.
func analyzeSingletons(t *Table, attrs []string, rec []string, ageIdx int, abbrevExempt map[string]bool) {
	for i, raw := range rec {
		v := strings.TrimSpace(raw)
		if voter.IsMissing(v) {
			t.addSingleton(Missing, attrs[i])
			continue
		}
		if isAbbreviation(v) && !abbrevExempt[attrs[i]] {
			t.addSingleton(Abbreviation, attrs[i])
		}
		if i == ageIdx {
			if n, err := strconv.Atoi(v); err != nil || n > 110 || n < 16 {
				t.addSingleton(Outlier, attrs[i])
			}
			continue
		}
		if hasUnusualCharacter(v) {
			t.addSingleton(Outlier, attrs[i])
		}
	}
}

// isAbbreviation matches a single letter optionally followed by one
// punctuation mark.
func isAbbreviation(v string) bool {
	r := []rune(v)
	switch len(r) {
	case 1:
		return unicode.IsLetter(r[0])
	case 2:
		return unicode.IsLetter(r[0]) && (r[1] == '.' || r[1] == ',')
	}
	return false
}

// hasUnusualCharacter reports characters atypical for register text values
// (control characters and symbols outside names/addresses). Letters,
// digits, spaces, and common name punctuation are usual.
func hasUnusualCharacter(v string) bool {
	for _, r := range v {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == ' ':
		case r == '-' || r == '\'' || r == '.' || r == ',' || r == '#' || r == '/' || r == '&' || r == '(' || r == ')' || r == ':':
		default:
			return true
		}
	}
	return false
}

// analyzePair profiles one duplicate pair.
func analyzePair(t *Table, attrs []string, a, b []string, confusable [][2]int) {
	for i := range attrs {
		va, vb := strings.TrimSpace(a[i]), strings.TrimSpace(b[i])
		if va == vb || va == "" || vb == "" {
			continue
		}
		la, lb := strings.ToLower(va), strings.ToLower(vb)
		if la != lb && len(la) > 2 && len(lb) > 2 && simil.DamerauLevenshtein(la, lb) == 1 {
			t.addPair(Typo, attrs[i])
		}
		if isOCRPair(va, vb) {
			t.addPair(OCRError, attrs[i])
		}
		if isPhoneticPair(va, vb) {
			t.addPair(Phonetic, attrs[i])
		}
		pre, post := prefixPostfix(va, vb)
		if pre {
			t.addPair(Prefix, attrs[i])
		}
		if post {
			t.addPair(Postfix, attrs[i])
		}
		if isFormattingPair(va, vb) {
			t.addPair(Formatting, attrs[i])
		}
		if isTokenTransposition(va, vb) {
			t.addPair(TokenTransp, attrs[i])
		}
	}
	for _, p := range confusable {
		i, j := p[0], p[1]
		vaI, vaJ := strings.TrimSpace(a[i]), strings.TrimSpace(a[j])
		vbI, vbJ := strings.TrimSpace(b[i]), strings.TrimSpace(b[j])
		attrPair := attrs[i] + "/" + attrs[j]
		confused := vaI != "" && vaJ != "" && vaI != vaJ && vaI == vbJ && vaJ == vbI
		if confused {
			t.addPair(ValueConfusion, attrPair)
		}
		integrated := isIntegrated(vaI, vaJ, vbI, vbJ) || isIntegrated(vbI, vbJ, vaI, vaJ)
		if integrated {
			t.addPair(IntegratedValue, attrPair)
		}
		if !confused && !integrated && isScattered(vaI, vaJ, vbI, vbJ) {
			t.addPair(ScatteredValue, attrPair)
		}
	}
}

// isOCRPair: equal length, and every differing position has a digit on
// exactly one side (digits on both sides must agree).
func isOCRPair(a, b string) bool {
	if a == b || len(a) != len(b) {
		return false
	}
	diff := false
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca == cb {
			continue
		}
		diff = true
		da := ca >= '0' && ca <= '9'
		db := cb >= '0' && cb <= '9'
		if da == db { // both digits (must be identical) or neither
			return false
		}
	}
	return diff
}

// isPhoneticPair: not identical after removing non-letters, both longer
// than 2, equal soundex codes.
func isPhoneticPair(a, b string) bool {
	la := lettersOnly(a)
	lb := lettersOnly(b)
	if len(la) <= 2 || len(lb) <= 2 || strings.EqualFold(la, lb) {
		return false
	}
	return simil.SoundexEqual(la, lb)
}

func lettersOnly(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// prefixPostfix reports whether one value is a prefix (resp. postfix) of
// the other after removing a potential trailing punctuation mark from the
// shorter value.
func prefixPostfix(a, b string) (prefix, postfix bool) {
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	if len(short) == len(long) {
		return false, false
	}
	short = strings.TrimRight(short, ".,")
	if short == "" {
		return false, false
	}
	return strings.HasPrefix(long, short), strings.HasSuffix(long, short)
}

// isFormattingPair: values differ only in non-alphanumeric characters.
func isFormattingPair(a, b string) bool {
	if a == b {
		return false
	}
	return alnumOnly(a) == alnumOnly(b) && alnumOnly(a) != ""
}

func alnumOnly(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// isTokenTransposition: identical token multisets in different order.
func isTokenTransposition(a, b string) bool {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) != len(tb) || len(ta) < 2 {
		return false
	}
	same := true
	for i := range ta {
		if ta[i] != tb[i] {
			same = false
			break
		}
	}
	if same {
		return false
	}
	return equalMultiset(ta, tb)
}

func equalMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[string]int{}
	for _, t := range a {
		counts[t]++
	}
	for _, t := range b {
		counts[t]--
		if counts[t] < 0 {
			return false
		}
	}
	return true
}

// isIntegrated reports whether record b integrated a's value of attribute i
// into attribute j: b's i is empty, a's both non-empty, and b's j tokens are
// exactly a's i tokens plus a's j tokens.
func isIntegrated(aI, aJ, bI, bJ string) bool {
	if aI == "" || aJ == "" || bI != "" || bJ == "" {
		return false
	}
	combined := append(strings.Fields(aJ), strings.Fields(aI)...)
	return equalMultiset(combined, strings.Fields(bJ))
}

// isScattered: the union token multiset over both attributes agrees while
// the per-attribute assignment differs.
func isScattered(aI, aJ, bI, bJ string) bool {
	if aI == bI && aJ == bJ {
		return false
	}
	ua := append(strings.Fields(aI), strings.Fields(aJ)...)
	ub := append(strings.Fields(bI), strings.Fields(bJ)...)
	if len(ua) < 2 {
		return false
	}
	return equalMultiset(ua, ub)
}
