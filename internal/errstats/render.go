package errstats

import (
	"fmt"
	"io"
	"sort"
)

// Rendering of Table 4-style profiles: a fixed-width text table for one or
// more datasets side by side, and a CSV export with the full per-attribute
// breakdown for downstream analysis.

// Column pairs one analyzed dataset with its display name.
type Column struct {
	Name  string
	Table *Table
}

// RenderText writes the irregularity profile of the given datasets side by
// side, one row per error type, each cell showing the most common
// attribute, its count and its percentage.
func RenderText(w io.Writer, cols []Column) {
	fmt.Fprintf(w, "%-17s", "error type")
	for _, c := range cols {
		fmt.Fprintf(w, " | %-30s", fmt.Sprintf("%s (%d rec / %d pairs)", c.Name, c.Table.TotalRecords, c.Table.TotalPairs))
	}
	fmt.Fprintln(w)
	for _, e := range SingletonTypes {
		fmt.Fprintf(w, "%-17s", e)
		for _, c := range cols {
			fmt.Fprintf(w, " | %-30s", renderCell(c.Table.Singletons[e], c.Table.TotalRecords))
		}
		fmt.Fprintln(w)
	}
	for _, e := range PairTypes {
		fmt.Fprintf(w, "%-17s", e)
		for _, c := range cols {
			fmt.Fprintf(w, " | %-30s", renderCell(c.Table.PairBased[e], c.Table.TotalPairs))
		}
		fmt.Fprintln(w)
	}
}

func renderCell(s *Stat, norm int) string {
	attr, n := s.MostCommon()
	if n == 0 {
		return "-"
	}
	pct := 0.0
	if norm > 0 {
		pct = 100 * float64(n) / float64(norm)
	}
	return fmt.Sprintf("%s %d (%.1f%%)", attr, n, pct)
}

// WriteCSV exports one table's complete per-attribute breakdown:
// error_type,attribute,count,normalizer,percent rows, sorted for stable
// diffs.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "error_type,attribute,count,normalizer,percent"); err != nil {
		return err
	}
	write := func(e ErrType, s *Stat, norm int) error {
		attrs := make([]string, 0, len(s.PerAttr))
		for a := range s.PerAttr {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			n := s.PerAttr[a]
			pct := 0.0
			if norm > 0 {
				pct = 100 * float64(n) / float64(norm)
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.4f\n", e, a, n, norm, pct); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range SingletonTypes {
		if err := write(e, t.Singletons[e], t.TotalRecords); err != nil {
			return err
		}
	}
	for _, e := range PairTypes {
		if err := write(e, t.PairBased[e], t.TotalPairs); err != nil {
			return err
		}
	}
	return nil
}
