package errstats

import (
	"testing"

	"repro/internal/core"
	"repro/internal/voter"
)

// in3 builds an input over three attributes (first, middle, last).
func in3(clusters ...[][]string) Input {
	in := Input{Attrs: []string{"first", "midl", "last"}}
	for _, cl := range clusters {
		var idx []int
		for _, rec := range cl {
			idx = append(idx, len(in.Records))
			in.Records = append(in.Records, rec)
		}
		in.Clusters = append(in.Clusters, idx)
	}
	return in
}

func TestSingletonIrregularities(t *testing.T) {
	in := Input{
		Attrs:   []string{"first", "age"},
		AgeAttr: "age",
		Records: [][]string{
			{"JOHN", "45"},
			{"A.", "5069"},  // abbreviation + age outlier
			{"", "44"},      // missing
			{"X ÆA-12", ""}, // hmm: digits in a name are usual per our rule; Æ is a letter; missing age
			{"J@HN", "40"},  // unusual character outlier
		},
	}
	tab := Analyze(in)
	if got := tab.Singletons[Abbreviation].Total; got != 1 {
		t.Errorf("abbreviations = %d, want 1", got)
	}
	if got := tab.Singletons[Missing].Total; got != 2 {
		t.Errorf("missing = %d, want 2", got)
	}
	if got := tab.Singletons[Outlier].PerAttr["age"]; got != 1 {
		t.Errorf("age outliers = %d, want 1", got)
	}
	if got := tab.Singletons[Outlier].PerAttr["first"]; got != 1 {
		t.Errorf("name outliers = %d, want 1", got)
	}
	if attr, n := tab.Singletons[Missing].MostCommon(); n != 1 || attr == "" {
		t.Errorf("missing most common = %s/%d", attr, n)
	}
	if tab.TotalRecords != 5 {
		t.Errorf("total records = %d", tab.TotalRecords)
	}
}

func TestTypoDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"ADELL", "", "SMITH"},
		{"ADELE", "", "SMITH"},
	}))
	if got := tab.PairBased[Typo].PerAttr["first"]; got != 1 {
		t.Errorf("typos = %d, want 1", got)
	}
	// Short values (<= 2 chars) never count as typos.
	tab = Analyze(in3([][]string{
		{"AB", "", "X"},
		{"BA", "", "X"},
	}))
	if got := tab.PairBased[Typo].Total; got != 0 {
		t.Errorf("short-value typos = %d, want 0", got)
	}
}

func TestOCRErrorDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"", "", "NICOLE"},
		{"", "", "NIC0LE"},
	}))
	if got := tab.PairBased[OCRError].PerAttr["last"]; got != 1 {
		t.Errorf("OCR errors = %d, want 1", got)
	}
	// Both digits differing disqualifies.
	tab = Analyze(in3([][]string{
		{"", "", "A1B"},
		{"", "", "A2B"},
	}))
	if got := tab.PairBased[OCRError].Total; got != 0 {
		t.Errorf("digit-digit OCR = %d, want 0", got)
	}
}

func TestPhoneticDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"", "", "BAILEY"},
		{"", "", "BAYLEE"},
	}))
	if got := tab.PairBased[Phonetic].PerAttr["last"]; got != 1 {
		t.Errorf("phonetic = %d, want 1", got)
	}
}

func TestPrefixPostfixDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"KIM", "", "BRAGGTOWN"},
		{"KIMBERLY", "", "TOWN"},
	}))
	if got := tab.PairBased[Prefix].PerAttr["first"]; got != 1 {
		t.Errorf("prefix = %d, want 1", got)
	}
	if got := tab.PairBased[Postfix].PerAttr["last"]; got != 1 {
		t.Errorf("postfix = %d, want 1", got)
	}
	// Trailing punctuation on the shorter value is forgiven.
	tab = Analyze(in3([][]string{
		{"J.", "", ""},
		{"JOHN", "", ""},
	}))
	if got := tab.PairBased[Prefix].Total; got != 1 {
		t.Errorf("abbreviated prefix = %d, want 1", got)
	}
}

func TestFormattingDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"", "", "JRS RIDGE"},
		{"", "", "JRS-RIDGE"},
	}))
	if got := tab.PairBased[Formatting].PerAttr["last"]; got != 1 {
		t.Errorf("formatting = %d, want 1", got)
	}
}

func TestTokenTranspositionDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"ANH THI", "", ""},
		{"THI ANH", "", ""},
	}))
	if got := tab.PairBased[TokenTransp].PerAttr["first"]; got != 1 {
		t.Errorf("token transposition = %d, want 1", got)
	}
}

func TestValueConfusionDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"JOSE", "", "JUAN"},
		{"JUAN", "", "JOSE"},
	}))
	if got := tab.PairBased[ValueConfusion].PerAttr["first/last"]; got != 1 {
		t.Errorf("value confusion = %d, want 1", got)
	}
}

func TestIntegratedValueDetection(t *testing.T) {
	// Middle name integrated into the last name.
	tab := Analyze(in3([][]string{
		{"A", "MAN", "LI"},
		{"A", "", "LI MAN"},
	}))
	if got := tab.PairBased[IntegratedValue].PerAttr["midl/last"]; got != 1 {
		t.Errorf("integrated value = %d, want 1", got)
	}
}

func TestScatteredValueDetection(t *testing.T) {
	tab := Analyze(in3([][]string{
		{"X", "AN LE", "MA"},
		{"X", "AN", "LE MA"},
	}))
	if got := tab.PairBased[ScatteredValue].PerAttr["midl/last"]; got != 1 {
		t.Errorf("scattered value = %d, want 1", got)
	}
	// Confusions are not double-counted as scattered.
	tab = Analyze(in3([][]string{
		{"X", "AN", "MA"},
		{"X", "MA", "AN"},
	}))
	if got := tab.PairBased[ScatteredValue].Total; got != 0 {
		t.Errorf("confusion counted as scattered: %d", got)
	}
	if got := tab.PairBased[ValueConfusion].Total; got != 1 {
		t.Errorf("confusion = %d, want 1", got)
	}
}

func TestPairCountsAndPercentages(t *testing.T) {
	tab := Analyze(in3(
		[][]string{
			{"ADELL", "", "X"},
			{"ADELE", "", "X"},
			{"ADELL", "", "X"},
		},
		[][]string{
			{"B", "", "Y"},
		},
	))
	if tab.TotalPairs != 3 {
		t.Fatalf("total pairs = %d, want 3", tab.TotalPairs)
	}
	// Two of three pairs differ by the typo.
	if got := tab.PairBased[Typo].Total; got != 2 {
		t.Errorf("typos = %d, want 2", got)
	}
	pct := tab.PairPct(Typo)
	if pct < 0.66 || pct > 0.67 {
		t.Errorf("typo pct = %v, want 2/3", pct)
	}
}

func TestFromDataset(t *testing.T) {
	d := core.NewDataset(core.RemoveTrimmed)
	mk := func(ncid, first, midl, last string) voter.Record {
		r := voter.NewRecord()
		r.SetName("ncid", ncid)
		r.SetName("first_name", first)
		r.SetName("midl_name", midl)
		r.SetName("last_name", last)
		r.SetName("age", "40")
		return r
	}
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: []voter.Record{
		mk("A", "ADELL", "", "SMITH"),
		mk("A", "ADELE", "", "SMITH"),
		mk("B", "JOSE", "", "JUAN"),
		mk("B", "JUAN", "", "JOSE"),
	}})
	in := FromDataset(d)
	if len(in.Attrs) != 38 {
		t.Fatalf("attrs = %d", len(in.Attrs))
	}
	if len(in.Records) != 4 || len(in.Clusters) != 2 {
		t.Fatalf("records/clusters = %d/%d", len(in.Records), len(in.Clusters))
	}
	if len(in.ConfusablePairs) != 3 {
		t.Fatalf("confusable pairs = %d", len(in.ConfusablePairs))
	}
	tab := Analyze(in)
	if got := tab.PairBased[Typo].PerAttr["first_name"]; got != 1 {
		t.Errorf("typo in first_name = %d", got)
	}
	if got := tab.PairBased[ValueConfusion].PerAttr["first_name/last_name"]; got != 1 {
		t.Errorf("confusion = %d", got)
	}
	// The 38-attribute schema must not auto-enumerate all pairs.
	if tab.TotalPairs != 2 {
		t.Errorf("pairs = %d", tab.TotalPairs)
	}
}

func BenchmarkAnalyzePair(b *testing.B) {
	in := in3([][]string{
		{"ADELL", "MAN LI", "BRAGGTOWN"},
		{"ADELE", "", "LI MAN BRAGG"},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(in)
	}
}
