package errstats

import (
	"strings"
	"testing"
)

func renderInput() *Table {
	return Analyze(Input{
		Attrs:   []string{"first", "last"},
		AgeAttr: "",
		Records: [][]string{
			{"ADELL", "SMITH"},
			{"ADELE", "SMITH"},
			{"", "JONES"},
		},
		Clusters: [][]int{{0, 1}, {2}},
	})
}

func TestRenderText(t *testing.T) {
	var sb strings.Builder
	RenderText(&sb, []Column{{Name: "toy", Table: renderInput()}})
	out := sb.String()
	for _, want := range []string{"error type", "toy (3 rec / 1 pairs)", "typo", "first 1 (100.0%)", "missing"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table misses %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := renderInput().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "error_type,attribute,count,normalizer,percent\n") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "typo,first,1,1,100.0000") {
		t.Errorf("missing typo row:\n%s", out)
	}
	if !strings.Contains(out, "missing,first,1,3,33.3333") {
		t.Errorf("missing missing-value row:\n%s", out)
	}
	// Stable ordering: two renders agree byte for byte.
	var sb2 strings.Builder
	renderInput().WriteCSV(&sb2)
	if sb.String() != sb2.String() {
		t.Error("CSV rendering not deterministic")
	}
}
