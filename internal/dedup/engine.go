// The parallel pair-scoring engine. Record-pair similarity over blocked
// candidates is the hot loop of the usability experiment (§6.5) — and, at
// the paper's 507 M-row framing, of any matching study. The naive matcher
// recomputes everything per pair: ToLower on both values, trigram sets,
// token lists, and a fresh DP matrix per value comparison. The engine
// removes all of that from the pair loop:
//
//   - a preprocessing pass interns every distinct column value once and
//     caches its lowercase form, token lists and sorted interned q-gram
//     profile (simil.GramProfile), so token/set measures become linear
//     merges over precomputed slices;
//   - the DP kernels (Damerau-Levenshtein, Jaro-Winkler, the alignments)
//     run through per-worker simil.Scratch buffers — no allocation per
//     comparison;
//   - a sharded, bounded memo cache reuses value-pair similarities, which
//     voter data repeats heavily (memo.go);
//   - candidate pairs are scored by a worker pool that writes into an
//     index-addressed result slice, the determinism discipline of
//     internal/core's ingest pipeline: output order — and every float in
//     it — is identical to the sequential run for any worker count.
//
// Bit-identity with the plain Matcher holds because every kernel variant
// evaluates the same expressions in the same order (fuzz-enforced in
// internal/simil) and every measure is a pure function, so memo hits can
// only skip work, never change a result.

package dedup

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simil"
)

// ScoreObserver receives the engine's counters (the score_pipeline_total
// family). *obs.Metrics satisfies it; dedup stays import-free of obs the
// same way core stays import-free through core.IngestObserver.
type ScoreObserver interface {
	AddN(counter string, n int64)
}

// ScoreOpts tunes the parallel scoring engine.
type ScoreOpts struct {
	// Workers sizes the scoring pool; <= 0 selects GOMAXPROCS, 1 runs
	// sequentially on the calling goroutine (still preprocessed and
	// memoized).
	Workers int
	// MemoCap bounds the value-pair memo cache (total entries across
	// shards); 0 selects the default (~1M), negative disables caching.
	MemoCap int
	// Observer, when set, receives the score_* counters after the run.
	Observer ScoreObserver
	// OnStage, when set, receives each pipeline stage's wall time as the
	// stage completes (preprocessing, scoring, merge) — the hook behind
	// `ncdedup -v`.
	OnStage func(stage string, elapsed time.Duration)
	// Recycle, when set, receives each fully scored batch of the streaming
	// path (EvaluateCandidatesStream) so the producer can reuse its backing
	// array. Ignored by the materialized paths.
	Recycle func(batch []Pair)
}

// stage reports one completed stage to the OnStage hook.
func (o ScoreOpts) stage(name string, start time.Time) {
	if o.OnStage != nil {
		o.OnStage(name, time.Since(start))
	}
}

// workersOrDefault resolves the Workers option.
func (o ScoreOpts) workersOrDefault() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// valPrep is everything the engine ever needs to know about one distinct
// column value, computed exactly once.
type valPrep struct {
	raw   string
	lower string
	// tokensRaw/tokensLower back the Monge-Elkan and SoftTFIDF measures.
	tokensRaw   []string
	tokensLower []string
	// grams is the sorted interned trigram profile of the lowercase form.
	grams simil.GramProfile
}

// colPrep is one column's interning table: every distinct value of the
// column (plus, for name columns, of the sibling name columns — the best
// 1:1 name assignment compares values across columns) mapped to its prep.
type colPrep struct {
	index map[string]int32
	vals  []valPrep
}

// measureKind selects which prep fields a measure reads.
type measureKind int

const (
	kindMELev measureKind = iota
	kindJaroWinkler
	kindJaccard
	kindNW
	kindSW
	kindCosine
	kindOverlap
	kindSoftTFIDF
)

func kindOf(m Measure) measureKind {
	switch m {
	case MeasureMELev:
		return kindMELev
	case MeasureJaroWinkler:
		return kindJaroWinkler
	case MeasureTrigramJaccard:
		return kindJaccard
	case MeasureNeedlemanWunsch:
		return kindNW
	case MeasureSmithWaterman:
		return kindSW
	case MeasureCosineTrigram:
		return kindCosine
	case MeasureOverlapTrigram:
		return kindOverlap
	case MeasureSoftTFIDF:
		return kindSoftTFIDF
	}
	panic("dedup: unknown measure " + string(m))
}

// scoreScratch is one worker's private working state: the DP scratch, the
// SoftTFIDF token measure bound to it, and local counters flushed once at
// the end (per-pair atomics would put a contended cache line in the hot
// loop).
type scoreScratch struct {
	sc  simil.Scratch
	tok simil.TokenMeasure

	hits, misses, skips int64
}

// engine scores record pairs of one dataset under one measure. Build once
// per (dataset, measure) via newEngine; matchers derived from it share all
// preprocessed state and differ only in their scratch.
type engine struct {
	ds       *Dataset
	kind     measureKind
	weights  []float64
	names    []int
	nameSet  map[int]bool
	cols     []colPrep
	tfidf    []*simil.TFIDF        // per column, SoftTFIDF only
	fallback []simil.StringMeasure // defensive path for un-interned values
	memo     *memoCache
	obs      ScoreObserver
	prepped  int64
}

// newEngine runs the preprocessing pass: one interning table per column,
// one prep per distinct value, and (for SoftTFIDF) the per-column corpus
// statistics.
func newEngine(ds *Dataset, m Measure, opts ScoreOpts) *engine {
	kind := kindOf(m)
	e := &engine{
		ds:      ds,
		kind:    kind,
		weights: simil.EntropyWeights(ds.Columns()),
		names:   append([]int(nil), ds.NameAttrs...),
		nameSet: map[int]bool{},
		cols:    make([]colPrep, len(ds.Attrs)),
		memo:    newMemoCache(opts.MemoCap),
		obs:     opts.Observer,
	}
	for _, n := range ds.NameAttrs {
		e.nameSet[n] = true
	}

	needTokens := kind == kindMELev || kind == kindSoftTFIDF
	needGrams := kind == kindJaccard || kind == kindCosine || kind == kindOverlap

	for c := range ds.Attrs {
		col := colPrep{index: make(map[string]int32, len(ds.Records))}
		intern := map[string]uint32{}
		add := func(v string) {
			if _, ok := col.index[v]; ok {
				return
			}
			vp := valPrep{raw: v, lower: strings.ToLower(v)}
			if needTokens {
				if kind == kindMELev {
					vp.tokensRaw = simil.Tokenize(vp.raw)
				}
				vp.tokensLower = simil.Tokenize(vp.lower)
			}
			if needGrams {
				vp.grams = simil.NewGramProfile(simil.QGrams(vp.lower, 3), intern)
			}
			col.index[v] = int32(len(col.vals))
			col.vals = append(col.vals, vp)
		}
		for _, rec := range ds.Records {
			add(rec[c])
		}
		// Name columns are compared against each other's values by the
		// best 1:1 assignment; intern the union so those lookups hit too.
		if e.nameSet[c] {
			for _, nc := range e.names {
				if nc == c {
					continue
				}
				for _, rec := range ds.Records {
					add(rec[nc])
				}
			}
		}
		e.prepped += int64(len(col.vals))
		e.cols[c] = col
	}

	if kind == kindSoftTFIDF {
		e.tfidf = make([]*simil.TFIDF, len(ds.Attrs))
		for c := range ds.Attrs {
			docs := make([][]string, len(ds.Records))
			for i, rec := range ds.Records {
				docs[i] = e.cols[c].vals[e.cols[c].index[rec[c]]].tokensLower
			}
			e.tfidf[c] = simil.NewTFIDF(docs)
		}
	}

	e.fallback = make([]simil.StringMeasure, len(ds.Attrs))
	for c := range ds.Attrs {
		if kind == kindSoftTFIDF {
			tf := e.tfidf[c]
			e.fallback[c] = func(a, b string) float64 {
				return tf.SoftCosine(
					simil.Tokenize(strings.ToLower(a)),
					simil.Tokenize(strings.ToLower(b)),
					simil.DamerauLevenshteinSimilarity, softTFIDFThreshold)
			}
		} else {
			e.fallback[c] = valueMeasure(m)
		}
	}
	return e
}

// matcherFor derives a Matcher whose per-column measures route through the
// engine with the given worker-private scratch. The Matcher's combination
// logic (entropy weighting, best 1:1 name assignment) is reused verbatim,
// which is what makes the engine's scores provably the same floats.
func (e *engine) matcherFor(sc *scoreScratch) *Matcher {
	sc.tok = func(a, b string) float64 {
		return simil.DamerauLevenshteinSimilarityInto(a, b, &sc.sc)
	}
	mt := &Matcher{
		ds:      e.ds,
		weights: e.weights,
		names:   e.names,
		nameSet: e.nameSet,
	}
	mt.measures = make([]simil.StringMeasure, len(e.ds.Attrs))
	for c := range mt.measures {
		c := c
		mt.measures[c] = func(a, b string) float64 { return e.value(c, a, b, sc) }
	}
	return mt
}

// value scores one value pair of one column: memo lookup, then the
// preprocessed kernel, then memo insert.
func (e *engine) value(c int, a, b string, sc *scoreScratch) float64 {
	col := &e.cols[c]
	ua, okA := col.index[a]
	ub, okB := col.index[b]
	if !okA || !okB {
		// Values outside the dataset (never produced by RecordSim, but the
		// Matcher API is open) take the legacy measure directly.
		return e.fallback[c](a, b)
	}
	if v, ok := e.memo.get(int32(c), ua, ub); ok {
		sc.hits++
		return v
	}
	sc.misses++
	v := e.kernel(c, &col.vals[ua], &col.vals[ub], sc)
	if !e.memo.put(int32(c), ua, ub, v) {
		sc.skips++
	}
	return v
}

// kernel computes one value-pair similarity from preprocessed state. Each
// branch mirrors its allocating counterpart expression for expression; see
// the package comment for why that matters.
func (e *engine) kernel(c int, va, vb *valPrep, sc *scoreScratch) float64 {
	switch e.kind {
	case kindMELev:
		// hetero.ValueSim: mean of raw/lower × sequential/hybrid.
		s := simil.DamerauLevenshteinSimilarityInto(va.raw, vb.raw, &sc.sc)
		s += simil.DamerauLevenshteinSimilarityInto(va.lower, vb.lower, &sc.sc)
		s += simil.MongeElkanTokensInto(va.tokensRaw, vb.tokensRaw, &sc.sc)
		s += simil.MongeElkanTokensInto(va.tokensLower, vb.tokensLower, &sc.sc)
		return s / 4
	case kindJaroWinkler:
		return simil.JaroWinklerInto(va.lower, vb.lower, &sc.sc)
	case kindNW:
		return simil.NeedlemanWunschInto(va.lower, vb.lower, &sc.sc)
	case kindSW:
		return simil.SmithWatermanInto(va.lower, vb.lower, &sc.sc)
	case kindJaccard:
		la, lb := len(va.grams.IDs), len(vb.grams.IDs)
		if la == 0 && lb == 0 {
			return 1
		}
		inter := simil.SortedIntersectCount(va.grams.IDs, vb.grams.IDs)
		union := la + lb - inter
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	case kindCosine:
		la, lb := len(va.grams.IDs), len(vb.grams.IDs)
		if la == 0 && lb == 0 {
			return 1
		}
		if la == 0 || lb == 0 {
			return 0
		}
		dot := simil.SortedDot(va.grams, vb.grams)
		return float64(dot) / (sqrtInt(va.grams.NormSq) * sqrtInt(vb.grams.NormSq))
	case kindOverlap:
		la, lb := len(va.grams.IDs), len(vb.grams.IDs)
		if la == 0 && lb == 0 {
			return 1
		}
		if la == 0 || lb == 0 {
			return 0
		}
		inter := simil.SortedIntersectCount(va.grams.IDs, vb.grams.IDs)
		return float64(inter) / float64(minInt2(la, lb))
	case kindSoftTFIDF:
		return e.tfidf[c].SoftCosine(va.tokensLower, vb.tokensLower, sc.tok, softTFIDFThreshold)
	}
	panic("dedup: unhandled measure kind")
}

// scoreBatch is the per-worker claim size over the candidate slice: small
// enough to balance skewed pair costs, large enough that the shared counter
// stays cold.
const scoreBatch = 256

// scoreAll scores every candidate pair into an index-addressed slice.
// Workers claim contiguous batches off an atomic cursor and write only
// their own indices, so the slice content is independent of scheduling.
func (e *engine) scoreAll(candidates []Pair, workers int) []float64 {
	sims := make([]float64, len(candidates))
	if workers <= 1 {
		sc := &scoreScratch{}
		mt := e.matcherFor(sc)
		for k, p := range candidates {
			sims[k] = mt.RecordSim(p.I, p.J)
		}
		e.flush(sc)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := &scoreScratch{}
				mt := e.matcherFor(sc)
				for {
					lo := int(next.Add(scoreBatch)) - scoreBatch
					if lo >= len(candidates) {
						break
					}
					hi := lo + scoreBatch
					if hi > len(candidates) {
						hi = len(candidates)
					}
					for k := lo; k < hi; k++ {
						sims[k] = mt.RecordSim(candidates[k].I, candidates[k].J)
					}
				}
				e.flush(sc)
			}()
		}
		wg.Wait()
	}
	e.report(int64(len(candidates)))
	return sims
}

// flush folds one worker's local counters into the cache totals.
func (e *engine) flush(sc *scoreScratch) {
	e.memo.hits.Add(sc.hits)
	e.memo.misses.Add(sc.misses)
	e.memo.skips.Add(sc.skips)
}

// report exports the run's counters to the observer as the
// score_pipeline_total family.
func (e *engine) report(pairs int64) {
	if e.obs == nil {
		return
	}
	e.obs.AddN("score_pairs_scored", pairs)
	e.obs.AddN("score_values_preprocessed", e.prepped)
	e.obs.AddN("score_memo_hits", e.memo.hits.Load())
	e.obs.AddN("score_memo_misses", e.memo.misses.Load())
	e.obs.AddN("score_memo_skips", e.memo.skips.Load())
}

// sqrtInt is math.Sqrt over an int count, so the cosine kernel normalizes
// with the same expression as CosineQGram (sqrt(na)·sqrt(nb), not
// sqrt(na·nb) — the products differ in the last ulp).
func sqrtInt(n int) float64 { return math.Sqrt(float64(n)) }

// minInt2 returns the smaller of a and b (simil's helpers are unexported).
func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
