package dedup

import (
	"math/rand"
	"sort"
)

// Threshold selection: the paper observes that on dirtier data "the
// threshold had to be set much more carefully" (§6.5) — which in practice
// means choosing it on labeled data and hoping it transfers. SelectThreshold
// implements the standard protocol: split the gold clusters into a training
// and a validation half, pick the F1-maximal threshold on the training
// half, and report how it generalizes.

// ThresholdSelection reports one train/validate round.
type ThresholdSelection struct {
	Measure    Measure
	Threshold  float64 // chosen on the training half
	TrainF1    float64 // best F1 on the training half
	ValidateF1 float64 // F1 of that threshold on the validation half
}

// SelectThreshold runs the protocol. Clusters (not records) are split, so
// no duplicate pair straddles the halves and the validation score is
// honest. trainFrac is the fraction of clusters trained on; seed fixes the
// split.
func SelectThreshold(ds *Dataset, m Measure, numPasses, window, steps int, trainFrac float64, seed int64) ThresholdSelection {
	train, validate := SplitClusters(ds, trainFrac, seed)
	sel := ThresholdSelection{Measure: m}

	trainCurve := Evaluate(train, m, numPasses, window, steps)
	sel.TrainF1, sel.Threshold = trainCurve.BestF1()

	valCurve := Evaluate(validate, m, numPasses, window, steps)
	best := 0.0
	bestDist := 2.0
	for _, p := range valCurve.Points {
		d := p.Threshold - sel.Threshold
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = p.F1
		}
	}
	sel.ValidateF1 = best
	return sel
}

// SplitClusters partitions the dataset's clusters into two datasets: the
// first receives about trainFrac of the clusters. Records never straddle
// the split.
func SplitClusters(ds *Dataset, trainFrac float64, seed int64) (train, validate *Dataset) {
	clusters := ds.Clusters()
	ids := make([]int, 0, len(clusters))
	for id := range clusters {
		ids = append(ids, id)
	}
	// Deterministic order before shuffling: map iteration is random.
	sort.Ints(ids)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	cut := int(float64(len(ids)) * trainFrac)

	build := func(keep []int) *Dataset {
		out := &Dataset{Name: ds.Name, Attrs: ds.Attrs, NameAttrs: ds.NameAttrs}
		newID := 0
		for _, cid := range keep {
			for _, ri := range clusters[cid] {
				out.Records = append(out.Records, ds.Records[ri])
				out.ClusterOf = append(out.ClusterOf, newID)
			}
			newID++
		}
		return out
	}
	return build(ids[:cut]), build(ids[cut:])
}
