// The streaming half of the scoring engine. EvaluateCandidatesParallel
// needs the whole candidate slice — and a float64 similarity per pair — in
// memory before the threshold sweep can run; at full-corpus scale that
// second copy of the pair set is as heavy as the blocking union itself.
// EvaluateCandidatesStream consumes candidate batches from a channel (the
// blocking layer's GenerateStream) and keeps only O(steps) integers per
// worker:
//
// sweepCurve's output depends on the candidates only through, per
// threshold t, the counts n(t) = |{pairs: sim >= t}| and
// tp(t) = |{duplicate pairs: sim >= t}|. The thresholds form the fixed
// grid t_s = s/steps, so each scored pair contributes to exactly the
// prefix s = 0..smax, where smax is the largest s with t_s <= sim —
// found by the same sort.Search float comparison sweepCurve performs.
// Workers bucket each pair at smax+1 into private count arrays, the
// arrays merge by integer addition (commutative — order cannot matter),
// and a suffix sum yields the exact (tp, n) integers sweepCurve would
// have computed. Both paths then share point(), so every float of the
// Curve is identical to the materialized path for any worker count —
// enforced by the package tests and the testkit streaming oracle
// (`make stream-race`).

package dedup

import (
	"sort"
	"sync"
	"time"
)

// EvaluateCandidatesStream is EvaluateCandidatesParallel over a candidate
// stream: batches of sorted, deduplicated pairs arrive on the channel
// (closed by the producer after the last batch), workers score them with
// the engine's scratch kernels and memo cache as they arrive, and the
// returned Curve is bit-identical to the materialized path over the same
// pairs — without the candidate slice or the similarity slice ever
// existing. opts.Recycle, when set, receives each fully scored batch.
func EvaluateCandidatesStream(ds *Dataset, m Measure, batches <-chan []Pair, steps int, opts ScoreOpts) Curve {
	start := time.Now()
	eng := newEngine(ds, m, opts)
	opts.stage("preprocessing", start)
	start = time.Now()
	counts, dups, pairs, nbatches := eng.scoreStream(batches, steps, opts.workersOrDefault(), opts.Recycle)
	opts.stage("scoring", start)
	start = time.Now()
	curve := curveFromCounts(ds, m, counts, dups, steps)
	opts.stage("merge", start)
	if eng.obs != nil {
		eng.obs.AddN("dedup_stream_batches", nbatches)
		eng.obs.AddN("dedup_stream_pairs", pairs)
	}
	return curve
}

// thresholdBucket places one similarity on the sweep grid: the smallest
// s with s/steps > sim, i.e. one past the highest threshold the pair
// still clears. The predicate is the exact float comparison sweepCurve's
// sort.Search evaluates, so bucket boundaries agree bit for bit.
func thresholdBucket(sim float64, steps int) int {
	return sort.Search(steps+1, func(s int) bool { return float64(s)/float64(steps) > sim })
}

// scoreStream drains the batch channel across workers. Each worker keeps
// private count arrays indexed by threshold bucket and folds them into the
// shared totals once at the end; the totals are sums of per-pair integer
// contributions, so they are independent of batch distribution and
// scheduling.
func (e *engine) scoreStream(batches <-chan []Pair, steps, workers int, recycle func([]Pair)) (counts, dups []int64, pairs, nbatches int64) {
	counts = make([]int64, steps+2)
	dups = make([]int64, steps+2)

	consume := func(mt *Matcher, lc, ld []int64) (lp, lb int64) {
		for batch := range batches {
			lb++
			lp += int64(len(batch))
			for _, p := range batch {
				b := thresholdBucket(mt.RecordSim(p.I, p.J), steps)
				lc[b]++
				if e.ds.IsDuplicate(p.I, p.J) {
					ld[b]++
				}
			}
			if recycle != nil {
				recycle(batch)
			}
		}
		return lp, lb
	}

	if workers <= 1 {
		sc := &scoreScratch{}
		pairs, nbatches = consume(e.matcherFor(sc), counts, dups)
		e.flush(sc)
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := &scoreScratch{}
				lc := make([]int64, steps+2)
				ld := make([]int64, steps+2)
				lp, lb := consume(e.matcherFor(sc), lc, ld)
				mu.Lock()
				for i := range lc {
					counts[i] += lc[i]
					dups[i] += ld[i]
				}
				pairs += lp
				nbatches += lb
				mu.Unlock()
				e.flush(sc)
			}()
		}
		wg.Wait()
	}
	e.report(pairs)
	return counts, dups, pairs, nbatches
}

// curveFromCounts builds the Curve from the bucketed counts: a suffix sum
// over buckets yields each threshold's (tp, n), which flow through the
// same point() as sweepCurve — identical integers in, identical floats
// out. Points come out in ascending threshold order directly.
func curveFromCounts(ds *Dataset, m Measure, counts, dups []int64, steps int) Curve {
	totalTrue := ds.NumTruePairs()
	curve := Curve{Dataset: ds.Name, Measure: m, Points: make([]Point, steps+1)}
	var n, tp int64
	for s := steps; s >= 0; s-- {
		n += counts[s+1]
		tp += dups[s+1]
		curve.Points[s] = point(float64(s)/float64(steps), int(tp), int(n), totalTrue)
	}
	return curve
}
