package dedup

import (
	"math"
	"sort"
)

// The Fellegi-Sunter model: the classic probabilistic record-linkage
// alternative to threshold-on-similarity matching. Per attribute it
// estimates m = P(values agree | duplicate) and u = P(values agree |
// non-duplicate); a pair's score is the sum of log likelihood ratios over
// its attribute agreements. Training uses a labeled cluster split (the
// gold standard the generated test data provides for free), which is
// exactly the evaluation loop the paper's dataset enables.

// FSModel holds the per-attribute match and unmatch probabilities.
type FSModel struct {
	Attrs []string
	M     []float64 // P(agree | duplicate)
	U     []float64 // P(agree | non-duplicate)
	// AgreeSim is the value-similarity floor counting as agreement.
	AgreeSim float64
	measure  func(a, b string) float64
}

// TrainFellegiSunter estimates the model from the dataset's gold standard
// over the given candidate pairs. agreement = ME/Lev value similarity >=
// agreeSim. Probabilities are Laplace-smoothed so attributes never produce
// infinite weights.
func TrainFellegiSunter(ds *Dataset, candidates []Pair, agreeSim float64) *FSModel {
	measure := valueMeasure(MeasureMELev)
	nAttrs := len(ds.Attrs)
	agreeDup := make([]float64, nAttrs)
	agreeNon := make([]float64, nAttrs)
	dups, nons := 0, 0
	for _, p := range candidates {
		a, b := ds.Records[p.I], ds.Records[p.J]
		isDup := ds.IsDuplicate(p.I, p.J)
		if isDup {
			dups++
		} else {
			nons++
		}
		for c := 0; c < nAttrs; c++ {
			if measure(a[c], b[c]) >= agreeSim {
				if isDup {
					agreeDup[c]++
				} else {
					agreeNon[c]++
				}
			}
		}
	}
	model := &FSModel{
		Attrs:    ds.Attrs,
		M:        make([]float64, nAttrs),
		U:        make([]float64, nAttrs),
		AgreeSim: agreeSim,
		measure:  measure,
	}
	for c := 0; c < nAttrs; c++ {
		model.M[c] = (agreeDup[c] + 1) / (float64(dups) + 2)
		model.U[c] = (agreeNon[c] + 1) / (float64(nons) + 2)
	}
	return model
}

// Score returns the pair's summed log2 likelihood ratio: positive evidence
// for a duplicate, negative against.
func (m *FSModel) Score(a, b []string) float64 {
	s := 0.0
	for c := range m.Attrs {
		if m.measure(a[c], b[c]) >= m.AgreeSim {
			s += math.Log2(m.M[c] / m.U[c])
		} else {
			s += math.Log2((1 - m.M[c]) / (1 - m.U[c]))
		}
	}
	return s
}

// Weight returns one attribute's agreement weight log2(m/u) — the
// diagnostic view of what the model learned (identifying attributes carry
// large weights).
func (m *FSModel) Weight(attr int) float64 {
	return math.Log2(m.M[attr] / m.U[attr])
}

// EvaluateFellegiSunter trains on a cluster split and sweeps the decision
// score on the held-out half, returning the best validation F1 and the
// score achieving it. trainFrac and seed control the split, numPasses and
// window the blocking.
func EvaluateFellegiSunter(ds *Dataset, numPasses, window int, agreeSim, trainFrac float64, seed int64) (bestF1, bestScore float64) {
	train, validate := SplitClusters(ds, trainFrac, seed)
	trainCands := SortedNeighborhood(train, MostUniqueAttrs(train, numPasses), window)
	model := TrainFellegiSunter(train, trainCands, agreeSim)

	valCands := SortedNeighborhood(validate, MostUniqueAttrs(validate, numPasses), window)
	type scored struct {
		s   float64
		dup bool
	}
	pairs := make([]scored, len(valCands))
	for i, p := range valCands {
		pairs[i] = scored{model.Score(validate.Records[p.I], validate.Records[p.J]), validate.IsDuplicate(p.I, p.J)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })
	totalTrue := validate.NumTruePairs()
	tp := 0
	for i, p := range pairs {
		if p.dup {
			tp++
		}
		n := i + 1
		if totalTrue == 0 || n == 0 {
			continue
		}
		prec := float64(tp) / float64(n)
		rec := float64(tp) / float64(totalTrue)
		if prec+rec == 0 {
			continue
		}
		f1 := 2 * prec * rec / (prec + rec)
		if f1 > bestF1 {
			bestF1 = f1
			bestScore = p.s
		}
	}
	return bestF1, bestScore
}
