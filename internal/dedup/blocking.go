package dedup

import (
	"sort"
	"strings"

	"repro/internal/simil"
)

// Pair is a candidate record pair with i < j — the unit of work the
// blocking stage (§6.5) hands to the similarity measures, and the unit the
// candidate-reduction numbers of the paper's evaluation count.
type Pair struct{ I, J int }

// SortedNeighborhood runs a multi-pass Sorted Neighborhood Method: one pass
// per sorting key over the passes' attribute indices, each sliding a window
// of the given size over the sorted order and emitting all pairs inside the
// window. The union of all passes is returned, sorted by (I, J) and
// deduplicated (§6.5: one pass for each of the five most unique attributes,
// w = 20).
//
// The union used to be built through a map[Pair]bool seen-set; at large
// windows that map dominated allocation and GC time. Emitting every
// in-window pair and sort+compacting once costs O(P·n·w · log) comparisons
// on flat slices instead — measurably lighter, and the sorted output order
// is deterministic and documented (callers sort by similarity anyway).
func SortedNeighborhood(ds *Dataset, passes []int, window int) []Pair {
	if window < 2 {
		window = 2
	}
	n := len(ds.Records)
	out := make([]Pair, 0, len(passes)*n*(window-1)/2)
	order := make([]int, n)
	for _, attr := range passes {
		for i := range order {
			order[i] = i
		}
		a := attr
		sort.SliceStable(order, func(x, y int) bool {
			return ds.Records[order[x]][a] < ds.Records[order[y]][a]
		})
		for x := range order {
			hi := x + window
			if hi > n {
				hi = n
			}
			for y := x + 1; y < hi; y++ {
				i, j := order[x], order[y]
				if i > j {
					i, j = j, i
				}
				out = append(out, Pair{i, j})
			}
		}
	}
	return sortDedupePairs(out)
}

// sortDedupePairs sorts pairs by (I, J) and compacts duplicates in place.
func sortDedupePairs(pairs []Pair) []Pair {
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	w := 0
	for i, p := range pairs {
		if i == 0 || p != pairs[w-1] {
			pairs[w] = p
			w++
		}
	}
	return pairs[:w]
}

// MostUniqueAttrs returns the indices of the k attributes with the highest
// entropy — the paper's choice of SNM sorting keys (§6.5 sorts on the five
// most unique attributes, reusing the §6.3 entropy weights).
func MostUniqueAttrs(ds *Dataset, k int) []int {
	cols := ds.Columns()
	type ae struct {
		idx int
		h   float64
	}
	es := make([]ae, len(cols))
	for i, col := range cols {
		es[i] = ae{i, simil.Entropy(col)}
	}
	sort.SliceStable(es, func(x, y int) bool { return es[x].h > es[y].h })
	if k > len(es) {
		k = len(es)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = es[i].idx
	}
	return out
}

// KeyFunc derives a blocking key from a record's values; records sharing a
// key land in the same block (or sort adjacently under SNM). The blocking
// layer (internal/blocking) composes these into multi-pass configurations;
// see docs/BLOCKING.md for the pass-key design space.
type KeyFunc func(rec []string) string

// SoundexKey blocks on the Soundex code of one attribute — the classic
// phonetic blocking for name data (the same code §6.4 uses as an error
// measure for phonetic typos, here turned into a sort key).
func SoundexKey(attr int) KeyFunc {
	return func(rec []string) string { return simil.Soundex(rec[attr]) }
}

// PrefixKey blocks on the first n runes of one attribute (upper-cased).
func PrefixKey(attr, n int) KeyFunc {
	return func(rec []string) string {
		r := []rune(strings.ToUpper(strings.TrimSpace(rec[attr])))
		if len(r) > n {
			r = r[:n]
		}
		return string(r)
	}
}

// ExactKey blocks on the full trimmed value of one attribute.
func ExactKey(attr int) KeyFunc {
	return func(rec []string) string { return strings.TrimSpace(rec[attr]) }
}

// StandardBlocking emits all pairs within each block of each key function —
// the classic alternative to the Sorted Neighborhood Method the paper's
// related work contrasts against (§2). Records with
// an empty key are not blocked (they would all collide). maxBlock caps the
// block size to bound the quadratic blow-up; 0 means unlimited.
func StandardBlocking(ds *Dataset, keys []KeyFunc, maxBlock int) []Pair {
	seen := map[Pair]bool{}
	var out []Pair
	for _, key := range keys {
		blocks := map[string][]int{}
		for i, rec := range ds.Records {
			k := key(rec)
			if k == "" {
				continue
			}
			blocks[k] = append(blocks[k], i)
		}
		for _, members := range blocks {
			if maxBlock > 0 && len(members) > maxBlock {
				continue
			}
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					i, j := members[x], members[y]
					if i > j {
						i, j = j, i
					}
					p := Pair{i, j}
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// BlockingRecall returns the fraction of gold-standard duplicate pairs
// contained in the candidate set (§6.5: the paper reports that no true
// duplicates were lost by the candidate reduction on NC1-NC3).
func BlockingRecall(ds *Dataset, candidates []Pair) float64 {
	truePairs := ds.NumTruePairs()
	if truePairs == 0 {
		return 1
	}
	found := 0
	for _, p := range candidates {
		if ds.IsDuplicate(p.I, p.J) {
			found++
		}
	}
	return float64(found) / float64(truePairs)
}
