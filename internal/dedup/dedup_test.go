package dedup

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corrupt"
)

// toyDataset builds a small labeled dataset: nClusters clusters of size
// sizes[i%len(sizes)], values drawn from pools with light typos on
// duplicates.
func toyDataset(t testing.TB, nClusters int, sizes []int, errRate float64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	firsts := []string{"JOHN", "MARY", "ROBERT", "LINDA", "JAMES", "PATRICIA", "DAVID", "BARBARA", "WILLIAM", "SUSAN"}
	lasts := []string{"SMITH", "JOHNSON", "BROWN", "DAVIS", "MILLER", "WILSON", "MOORE", "TAYLOR", "THOMAS", "WHITE"}
	cities := []string{"RALEIGH", "DURHAM", "CARY", "APEX", "WILSON"}
	ds := &Dataset{
		Name:      "toy",
		Attrs:     []string{"first", "middle", "last", "city", "zip"},
		NameAttrs: []int{0, 1, 2},
	}
	for c := 0; c < nClusters; c++ {
		base := []string{
			firsts[rng.Intn(len(firsts))],
			firsts[rng.Intn(len(firsts))][:1],
			lasts[rng.Intn(len(lasts))],
			cities[rng.Intn(len(cities))],
			fmt.Sprintf("27%03d", rng.Intn(1000)),
		}
		size := sizes[c%len(sizes)]
		for d := 0; d < size; d++ {
			rec := append([]string(nil), base...)
			if d > 0 && rng.Float64() < errRate {
				rec[0] = corrupt.Typo(rng, rec[0])
			}
			if d > 0 && rng.Float64() < errRate/2 {
				rec[2] = corrupt.Typo(rng, rec[2])
			}
			ds.Records = append(ds.Records, rec)
			ds.ClusterOf = append(ds.ClusterOf, c)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetStats(t *testing.T) {
	ds := toyDataset(t, 10, []int{1, 2, 3}, 0.5)
	if ds.NumClusters() != 10 {
		t.Errorf("clusters = %d", ds.NumClusters())
	}
	// sizes cycle 1,2,3: 4 clusters of 1, 3 of 2, 3 of 3 -> 4+6+9 = 19 recs.
	if ds.NumRecords() != 19 {
		t.Errorf("records = %d", ds.NumRecords())
	}
	// pairs: 3*1 + 3*3 = 12.
	if ds.NumTruePairs() != 12 {
		t.Errorf("true pairs = %d", ds.NumTruePairs())
	}
	if ds.NonSingletonClusters() != 6 {
		t.Errorf("non-singletons = %d", ds.NonSingletonClusters())
	}
	if ds.MaxClusterSize() != 3 {
		t.Errorf("max cluster = %d", ds.MaxClusterSize())
	}
	if got := ds.AvgClusterSize(); got < 1.89 || got > 1.91 {
		t.Errorf("avg cluster = %v", got)
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	ds := &Dataset{Name: "bad", Attrs: []string{"a"}, Records: [][]string{{"x"}}, ClusterOf: nil}
	if ds.Validate() == nil {
		t.Error("label/record mismatch accepted")
	}
	ds = &Dataset{Name: "bad", Attrs: []string{"a", "b"}, Records: [][]string{{"x"}}, ClusterOf: []int{0}}
	if ds.Validate() == nil {
		t.Error("width mismatch accepted")
	}
	ds = &Dataset{Name: "bad", Attrs: []string{"a"}, Records: [][]string{{"x"}}, ClusterOf: []int{0}, NameAttrs: []int{5}}
	if ds.Validate() == nil {
		t.Error("out-of-range name attr accepted")
	}
}

func TestTrimmed(t *testing.T) {
	ds := &Dataset{Name: "w", Attrs: []string{"a"}, Records: [][]string{{" x "}}, ClusterOf: []int{0}}
	tr := ds.Trimmed()
	if tr.Records[0][0] != "x" {
		t.Errorf("trimmed = %q", tr.Records[0][0])
	}
	if ds.Records[0][0] != " x " {
		t.Error("Trimmed mutated the original")
	}
}

func TestMatcherIdenticalRecords(t *testing.T) {
	ds := toyDataset(t, 5, []int{2}, 0)
	for _, m := range AllMeasures {
		matcher := NewMatcher(ds, m)
		// Records 0 and 1 are exact copies.
		if got := matcher.RecordSim(0, 1); got < 0.999 {
			t.Errorf("%s: identical records sim = %v", m, got)
		}
	}
}

func TestExtendedMeasuresEvaluate(t *testing.T) {
	ds := toyDataset(t, 30, []int{2, 3}, 0.2)
	for _, m := range AllMeasures[3:] {
		curve := Evaluate(ds, m, 3, 20, 20)
		f1, _ := curve.BestF1()
		if f1 < 0.7 {
			t.Errorf("%s: best F1 = %v on clean data, want >= 0.7", m, f1)
		}
	}
}

func TestMatcherNameConfusionHandled(t *testing.T) {
	ds := &Dataset{
		Name:      "confused",
		Attrs:     []string{"first", "middle", "last", "city"},
		NameAttrs: []int{0, 1, 2},
		Records: [][]string{
			{"DEBRA", "OEHRLE", "WILLIAMS", "DURHAM"},
			{"WILLIAMS", "DEBRA", "OEHRLE", "DURHAM"}, // names rotated
			{"MARY", "L", "FIELDS", "RALEIGH"},
			{"JOHN", "Q", "PUBLIC", "APEX"},
		},
		ClusterOf: []int{0, 0, 1, 2},
	}
	matcher := NewMatcher(ds, MeasureMELev)
	confused := matcher.RecordSim(0, 1)
	different := matcher.RecordSim(0, 2)
	if confused < 0.99 {
		t.Errorf("rotated names sim = %v, want ~1 (1:1 matching)", confused)
	}
	if confused <= different {
		t.Errorf("confusion (%v) should outscore different person (%v)", confused, different)
	}
}

func TestMatcherWeightsSumToOne(t *testing.T) {
	ds := toyDataset(t, 10, []int{2}, 0.5)
	w := NewMatcher(ds, MeasureMELev).Weights()
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum = %v", sum)
	}
}

func TestSortedNeighborhoodFindsAllClusteredPairs(t *testing.T) {
	ds := toyDataset(t, 30, []int{2, 3}, 0.2)
	passes := MostUniqueAttrs(ds, 3)
	cands := SortedNeighborhood(ds, passes, 20)
	if rec := BlockingRecall(ds, cands); rec < 0.95 {
		t.Errorf("blocking recall = %v, want >= 0.95", rec)
	}
	// No duplicates in the candidate list, all i < j.
	seen := map[Pair]bool{}
	for _, p := range cands {
		if p.I >= p.J {
			t.Fatalf("unordered pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSortedNeighborhoodWindowBoundsCandidates(t *testing.T) {
	ds := toyDataset(t, 50, []int{2}, 0.2)
	small := SortedNeighborhood(ds, []int{0}, 5)
	big := SortedNeighborhood(ds, []int{0}, 50)
	if len(small) >= len(big) {
		t.Errorf("window 5 produced %d pairs, window 50 %d", len(small), len(big))
	}
	n := ds.NumRecords()
	maxSmall := n * 4 // window-1 successors each
	if len(small) > maxSmall {
		t.Errorf("window 5 produced %d pairs, cap %d", len(small), maxSmall)
	}
}

func TestMostUniqueAttrs(t *testing.T) {
	ds := &Dataset{
		Name:  "u",
		Attrs: []string{"constant", "unique"},
		Records: [][]string{
			{"X", "A"}, {"X", "B"}, {"X", "C"},
		},
		ClusterOf: []int{0, 1, 2},
	}
	got := MostUniqueAttrs(ds, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("MostUniqueAttrs = %v, want [1]", got)
	}
	if got := MostUniqueAttrs(ds, 10); len(got) != 2 {
		t.Errorf("k beyond schema = %v", got)
	}
}

func TestEvaluateCleanDatasetNearPerfect(t *testing.T) {
	ds := toyDataset(t, 40, []int{2, 3}, 0.15)
	for _, m := range Measures {
		curve := Evaluate(ds, m, 3, 20, 50)
		f1, th := curve.BestF1()
		if f1 < 0.9 {
			t.Errorf("%s: best F1 = %v @%v, want >= 0.9 on a clean dataset", m, f1, th)
		}
	}
}

func TestEvaluateCurveShape(t *testing.T) {
	ds := toyDataset(t, 30, []int{2}, 0.5)
	curve := Evaluate(ds, MeasureJaroWinkler, 3, 20, 20)
	if len(curve.Points) != 21 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	// Threshold 0 classifies every candidate pair: recall is maximal.
	p0 := curve.Points[0]
	pLast := curve.Points[len(curve.Points)-1]
	if p0.Recall < pLast.Recall {
		t.Errorf("recall should not increase with threshold: %v -> %v", p0.Recall, pLast.Recall)
	}
	// Monotone recall along the curve.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Recall > curve.Points[i-1].Recall+1e-12 {
			t.Fatalf("recall increased at threshold %v", curve.Points[i].Threshold)
		}
	}
	// All metrics in [0, 1].
	for _, p := range curve.Points {
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 || p.F1 < 0 || p.F1 > 1 {
			t.Fatalf("metric out of range at %v: %+v", p.Threshold, p)
		}
	}
}

func TestEvaluateAllCoversMeasures(t *testing.T) {
	ds := toyDataset(t, 10, []int{2}, 0.3)
	curves := EvaluateAll(ds, 2, 10, 10)
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	names := map[Measure]bool{}
	for _, c := range curves {
		names[c.Measure] = true
		if c.Dataset != "toy" {
			t.Errorf("curve dataset = %s", c.Dataset)
		}
	}
	if len(names) != 3 {
		t.Errorf("measures = %v", names)
	}
}

func TestDirtierDataScoresWorse(t *testing.T) {
	clean := toyDataset(t, 40, []int{2, 3}, 0.1)
	dirty := toyDataset(t, 40, []int{2, 3}, 0.95)
	// Make the dirty dataset truly dirty: corrupt aggressively.
	rng := rand.New(rand.NewSource(9))
	for i := range dirty.Records {
		if dirty.ClusterOf[i] == dirty.ClusterOf[maxInt(0, i-1)] && i > 0 {
			for c := 0; c < 3; c++ {
				v := dirty.Records[i][c]
				for k := 0; k < 3; k++ {
					v = corrupt.Typo(rng, v)
				}
				dirty.Records[i][c] = strings.TrimSpace(v)
			}
		}
	}
	cleanF1, _ := Evaluate(clean, MeasureMELev, 3, 20, 50).BestF1()
	dirtyF1, _ := Evaluate(dirty, MeasureMELev, 3, 20, 50).BestF1()
	if dirtyF1 >= cleanF1 {
		t.Errorf("dirty F1 (%v) should be below clean F1 (%v)", dirtyF1, cleanF1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkRecordSimMELev(b *testing.B) {
	ds := &Dataset{
		Name:      "b",
		Attrs:     []string{"first", "middle", "last", "city", "zip"},
		NameAttrs: []int{0, 1, 2},
		Records: [][]string{
			{"CHRISTOPHER", "LEE", "WILLIAMSON", "FAYETTEVILLE", "28301"},
			{"KRISTOFFER", "L", "WILLIAMSON", "FAYETTEVILE", "28301"},
		},
		ClusterOf: []int{0, 0},
	}
	m := NewMatcher(ds, MeasureMELev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RecordSim(0, 1)
	}
}
