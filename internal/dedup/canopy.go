package dedup

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/simil"
)

// Canopy blocking (McCallum, Nigam & Ungar): group records into overlapping
// canopies using a cheap similarity (trigram Jaccard over selected
// attributes) with a loose and a tight threshold, then emit all pairs
// inside each canopy. A third blocking scheme beside SNM and standard
// blocking, strong when no single sort key or blocking key is reliable.

// CanopyConfig parameterizes the canopy construction.
type CanopyConfig struct {
	// Attrs are the attribute indices whose concatenated values feed the
	// cheap similarity (typically the name attributes).
	Attrs []int
	// Loose is the canopy-membership threshold (records with cheap
	// similarity >= Loose join the canopy).
	Loose float64
	// Tight removes records from the candidate pool (>= Tight means the
	// record will not seed or join further canopies).
	Tight float64
	Seed  int64
}

// CanopyBlocking returns the candidate pairs of the canopy method. Records
// with empty key text never pair (they would form one giant canopy).
func CanopyBlocking(ds *Dataset, cfg CanopyConfig) []Pair {
	if cfg.Tight < cfg.Loose {
		cfg.Tight = cfg.Loose
	}
	n := len(ds.Records)
	keys := make([][]string, n) // trigram sets
	byGram := map[string][]int{}
	for i, rec := range ds.Records {
		var sb strings.Builder
		for _, a := range cfg.Attrs {
			sb.WriteString(strings.ToLower(strings.TrimSpace(rec[a])))
			sb.WriteByte(' ')
		}
		grams := simil.QGrams(strings.TrimSpace(sb.String()), 3)
		keys[i] = grams
		seen := map[string]bool{}
		for _, g := range grams {
			if !seen[g] {
				seen[g] = true
				byGram[g] = append(byGram[g], i)
			}
		}
	}

	pool := make([]bool, n) // still available as canopy members/seeds
	for i := range pool {
		pool[i] = len(keys[i]) > 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	seen := map[Pair]bool{}
	var out []Pair
	for _, seed := range order {
		if !pool[seed] {
			continue
		}
		// Candidate members: records sharing at least one trigram.
		candSet := map[int]bool{}
		for _, g := range uniqueGrams(keys[seed]) {
			for _, j := range byGram[g] {
				candSet[j] = true
			}
		}
		var canopy []int
		for j := range candSet {
			if j == seed {
				continue
			}
			s := simil.Jaccard(keys[seed], keys[j])
			if s >= cfg.Loose {
				canopy = append(canopy, j)
				if s >= cfg.Tight {
					pool[j] = false
				}
			}
		}
		pool[seed] = false
		canopy = append(canopy, seed)
		sort.Ints(canopy)
		for x := 0; x < len(canopy); x++ {
			for y := x + 1; y < len(canopy); y++ {
				p := Pair{canopy[x], canopy[y]}
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

func uniqueGrams(grams []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range grams {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}
