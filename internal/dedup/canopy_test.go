package dedup

import "testing"

func TestCanopyBlockingFindsFuzzyDuplicates(t *testing.T) {
	ds := toyDataset(t, 40, []int{2, 3}, 0.3)
	cfg := CanopyConfig{Attrs: []int{0, 2}, Loose: 0.3, Tight: 0.8, Seed: 1}
	pairs := CanopyBlocking(ds, cfg)
	if len(pairs) == 0 {
		t.Fatal("no canopy candidates")
	}
	if rec := BlockingRecall(ds, pairs); rec < 0.9 {
		t.Errorf("canopy recall = %v, want >= 0.9", rec)
	}
	// Ordered, unique pairs.
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("unordered pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestCanopyLooseThresholdControlsVolume(t *testing.T) {
	ds := toyDataset(t, 60, []int{2}, 0.3)
	attrs := []int{0, 2}
	loose := CanopyBlocking(ds, CanopyConfig{Attrs: attrs, Loose: 0.1, Tight: 0.9, Seed: 2})
	strict := CanopyBlocking(ds, CanopyConfig{Attrs: attrs, Loose: 0.6, Tight: 0.9, Seed: 2})
	if len(strict) >= len(loose) {
		t.Errorf("stricter loose threshold produced more candidates: %d vs %d", len(strict), len(loose))
	}
}

func TestCanopyDeterminism(t *testing.T) {
	ds := toyDataset(t, 30, []int{2}, 0.3)
	cfg := CanopyConfig{Attrs: []int{0, 2}, Loose: 0.3, Tight: 0.8, Seed: 5}
	a := CanopyBlocking(ds, cfg)
	b := CanopyBlocking(ds, cfg)
	if len(a) != len(b) {
		t.Fatal("canopy blocking not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("canopy pair order not deterministic")
		}
	}
}

func TestCanopyEmptyKeysNeverPair(t *testing.T) {
	ds := &Dataset{
		Name:  "e",
		Attrs: []string{"k"},
		Records: [][]string{
			{""}, {""}, {"SMITH"}, {"SMYTH"},
		},
		ClusterOf: []int{0, 1, 2, 2},
	}
	pairs := CanopyBlocking(ds, CanopyConfig{Attrs: []int{0}, Loose: 0.2, Tight: 0.8, Seed: 1})
	for _, p := range pairs {
		if p.I < 2 {
			t.Fatalf("empty-key record paired: %v", p)
		}
	}
}
