package dedup

import "testing"

func TestSplitClusters(t *testing.T) {
	ds := toyDataset(t, 40, []int{2, 3}, 0.2)
	train, validate := SplitClusters(ds, 0.5, 1)
	if train.NumClusters()+validate.NumClusters() != ds.NumClusters() {
		t.Errorf("cluster split lost clusters: %d + %d != %d",
			train.NumClusters(), validate.NumClusters(), ds.NumClusters())
	}
	if train.NumRecords()+validate.NumRecords() != ds.NumRecords() {
		t.Errorf("record split lost records")
	}
	if train.NumTruePairs()+validate.NumTruePairs() != ds.NumTruePairs() {
		t.Errorf("pairs straddle the split: %d + %d != %d",
			train.NumTruePairs(), validate.NumTruePairs(), ds.NumTruePairs())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := validate.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic.
	t2, _ := SplitClusters(ds, 0.5, 1)
	if t2.NumRecords() != train.NumRecords() {
		t.Error("split not deterministic")
	}
	t3, _ := SplitClusters(ds, 0.5, 2)
	if t3.NumRecords() == train.NumRecords() && t3.NumTruePairs() == train.NumTruePairs() &&
		len(t3.Records) > 0 && len(train.Records) > 0 && t3.Records[0][0] == train.Records[0][0] {
		t.Log("different seeds produced a similar split (possible but unlikely)")
	}
}

func TestSelectThresholdGeneralizes(t *testing.T) {
	ds := toyDataset(t, 80, []int{2, 3}, 0.25)
	sel := SelectThreshold(ds, MeasureMELev, 3, 20, 50, 0.5, 7)
	if sel.Threshold <= 0 || sel.Threshold >= 1 {
		t.Errorf("threshold = %v", sel.Threshold)
	}
	if sel.TrainF1 < 0.85 {
		t.Errorf("train F1 = %v", sel.TrainF1)
	}
	// On homogeneous data the trained threshold must transfer.
	if sel.ValidateF1 < sel.TrainF1-0.2 {
		t.Errorf("validation F1 %v collapsed vs train %v", sel.ValidateF1, sel.TrainF1)
	}
}
