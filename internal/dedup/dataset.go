// Package dedup implements the duplicate-detection substrate of the
// usability experiment (§6.5): a schema-agnostic labeled dataset type,
// entropy-weighted record similarity with best 1:1 name matching, the three
// record measures of the paper (Monge-Elkan/Damerau-Levenshtein,
// Jaro-Winkler, trigram Jaccard), multi-pass Sorted Neighborhood blocking,
// and threshold-sweep evaluation against the gold standard
// (precision/recall/F1).
package dedup

import (
	"fmt"
	"strings"
)

// Dataset is a labeled test dataset: aligned attribute values per record
// plus the gold standard as a cluster id per record (records in the same
// cluster are duplicates).
type Dataset struct {
	Name      string
	Attrs     []string
	Records   [][]string
	ClusterOf []int // gold-standard cluster id per record
	// NameAttrs lists attribute indices whose values are often confused
	// with each other (the register's three names); the matcher tries every
	// 1:1 assignment between them and keeps the best.
	NameAttrs []int
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.Records) != len(d.ClusterOf) {
		return fmt.Errorf("dedup: %s: %d records vs %d labels", d.Name, len(d.Records), len(d.ClusterOf))
	}
	for i, r := range d.Records {
		if len(r) != len(d.Attrs) {
			return fmt.Errorf("dedup: %s: record %d has %d values, want %d", d.Name, i, len(r), len(d.Attrs))
		}
	}
	for _, n := range d.NameAttrs {
		if n < 0 || n >= len(d.Attrs) {
			return fmt.Errorf("dedup: %s: name attribute %d out of range", d.Name, n)
		}
	}
	return nil
}

// NumRecords returns the record count.
func (d *Dataset) NumRecords() int { return len(d.Records) }

// Clusters groups record indices by gold-standard cluster id.
func (d *Dataset) Clusters() map[int][]int {
	m := map[int][]int{}
	for i, c := range d.ClusterOf {
		m[c] = append(m[c], i)
	}
	return m
}

// NumClusters returns the number of gold-standard clusters.
func (d *Dataset) NumClusters() int { return len(d.Clusters()) }

// NumTruePairs returns the number of duplicate pairs in the gold standard.
func (d *Dataset) NumTruePairs() int {
	n := 0
	for _, idx := range d.Clusters() {
		n += len(idx) * (len(idx) - 1) / 2
	}
	return n
}

// NonSingletonClusters returns how many clusters have at least two records.
func (d *Dataset) NonSingletonClusters() int {
	n := 0
	for _, idx := range d.Clusters() {
		if len(idx) > 1 {
			n++
		}
	}
	return n
}

// MaxClusterSize returns the largest cluster's record count.
func (d *Dataset) MaxClusterSize() int {
	m := 0
	for _, idx := range d.Clusters() {
		if len(idx) > m {
			m = len(idx)
		}
	}
	return m
}

// AvgClusterSize returns the mean records per cluster (0 when empty).
func (d *Dataset) AvgClusterSize() float64 {
	c := d.NumClusters()
	if c == 0 {
		return 0
	}
	return float64(len(d.Records)) / float64(c)
}

// IsDuplicate reports whether records i and j are gold-standard duplicates.
func (d *Dataset) IsDuplicate(i, j int) bool {
	return d.ClusterOf[i] == d.ClusterOf[j]
}

// Trimmed returns a copy with every value whitespace-trimmed.
func (d *Dataset) Trimmed() *Dataset {
	out := &Dataset{
		Name:      d.Name,
		Attrs:     d.Attrs,
		ClusterOf: d.ClusterOf,
		NameAttrs: d.NameAttrs,
	}
	out.Records = make([][]string, len(d.Records))
	for i, r := range d.Records {
		nr := make([]string, len(r))
		for j, v := range r {
			nr[j] = strings.TrimSpace(v)
		}
		out.Records[i] = nr
	}
	return out
}

// Columns returns the dataset transposed: one slice per attribute.
func (d *Dataset) Columns() [][]string {
	cols := make([][]string, len(d.Attrs))
	for c := range cols {
		col := make([]string, len(d.Records))
		for r := range d.Records {
			col[r] = d.Records[r][c]
		}
		cols[c] = col
	}
	return cols
}
