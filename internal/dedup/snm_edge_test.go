package dedup

import (
	"reflect"
	"testing"
)

// Edge cases of the multi-pass Sorted Neighborhood Method: degenerate
// windows, degenerate corpora and degenerate keys. The blocking layer
// (internal/blocking) pins its parallel implementation to this function,
// so its boundary behavior is a contract, not an accident.

func snmDataset(records [][]string) *Dataset {
	clusters := make([]int, len(records))
	for i := range clusters {
		clusters[i] = i
	}
	return &Dataset{
		Name:      "edge",
		Attrs:     []string{"a", "b"},
		Records:   records,
		ClusterOf: clusters,
	}
}

func allPairs(n int) []Pair {
	var out []Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Pair{i, j})
		}
	}
	return out
}

func TestSNMEmptyCorpus(t *testing.T) {
	ds := snmDataset(nil)
	if got := SortedNeighborhood(ds, []int{0}, 20); len(got) != 0 {
		t.Errorf("empty corpus produced %d pairs", len(got))
	}
}

func TestSNMSingleRecord(t *testing.T) {
	ds := snmDataset([][]string{{"x", "y"}})
	if got := SortedNeighborhood(ds, []int{0, 1}, 20); len(got) != 0 {
		t.Errorf("single record produced %d pairs", len(got))
	}
}

// A window at least as large as the dataset degenerates to the full
// quadratic candidate set — every pair is inside every slide.
func TestSNMWindowLargerThanDataset(t *testing.T) {
	ds := snmDataset([][]string{{"d", "1"}, {"b", "2"}, {"a", "3"}, {"c", "4"}})
	for _, window := range []int{4, 5, 100} {
		got := SortedNeighborhood(ds, []int{0}, window)
		if want := allPairs(4); !reflect.DeepEqual(got, want) {
			t.Errorf("window %d: got %v, want the full cross %v", window, got, want)
		}
	}
}

// All-equal keys make the sort a no-op; the window must still slide over
// the (stable) input order and nothing may collapse or duplicate.
func TestSNMAllEqualKeys(t *testing.T) {
	records := make([][]string, 6)
	for i := range records {
		records[i] = []string{"same", "same"}
	}
	ds := snmDataset(records)
	got := SortedNeighborhood(ds, []int{0, 1}, 3)
	// Window 3 over 6 positions: (0,1),(0,2),(1,2),(1,3),... — 9 unique
	// pairs, identical for both passes, so the deduplicated union is 9.
	want := []Pair{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("all-equal keys: got %v, want %v", got, want)
	}
}

// Window sizes below 2 clamp to 2 (a window of 0 or 1 would emit nothing
// and silently disable blocking).
func TestSNMWindowClampsToTwo(t *testing.T) {
	ds := snmDataset([][]string{{"a", ""}, {"b", ""}, {"c", ""}})
	want := SortedNeighborhood(ds, []int{0}, 2)
	for _, window := range []int{-1, 0, 1} {
		if got := SortedNeighborhood(ds, []int{0}, window); !reflect.DeepEqual(got, want) {
			t.Errorf("window %d: got %v, want the window-2 result %v", window, got, want)
		}
	}
	if len(want) != 2 {
		t.Errorf("window 2 over 3 sorted records should emit 2 adjacent pairs, got %v", want)
	}
}

// No passes, no candidates: the pass union is empty, not all-pairs.
func TestSNMNoPasses(t *testing.T) {
	ds := snmDataset([][]string{{"a", "1"}, {"b", "2"}})
	if got := SortedNeighborhood(ds, nil, 20); len(got) != 0 {
		t.Errorf("zero passes produced %d pairs", len(got))
	}
}

// Output is always sorted by (I, J) and duplicate-free, whatever the pass
// overlap — downstream consumers (the scoring engine, the blocking-layer
// bridge) rely on this order.
func TestSNMOutputSortedUnique(t *testing.T) {
	ds := snmDataset([][]string{
		{"smith", "1"}, {"smith", "2"}, {"jones", "1"}, {"jones", "2"}, {"smith", "1"},
	})
	got := SortedNeighborhood(ds, []int{0, 1}, 3)
	for k := 1; k < len(got); k++ {
		prev, cur := got[k-1], got[k]
		if cur.I < prev.I || (cur.I == prev.I && cur.J <= prev.J) {
			t.Fatalf("output not strictly (I,J)-sorted at %d: %v then %v", k, prev, cur)
		}
	}
	for _, p := range got {
		if p.I >= p.J {
			t.Fatalf("pair %v violates I < J", p)
		}
	}
}
