package dedup

import "sort"

// Clustering support: classified duplicate pairs rarely form consistent
// clusters on their own; the standard post-processing is the transitive
// closure (connected components). The paper evaluates pair-based F1 only;
// the closure step and the cluster-level metrics here extend the substrate
// to full end-to-end deduplication.

// ConnectedComponents returns a component id per record (0-based, dense)
// for n records connected by the given pairs — the transitive closure of
// the classified-duplicate relation. Unconnected records form singleton
// components.
func ConnectedComponents(n int, pairs []Pair) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, p := range pairs {
		union(p.I, p.J)
	}
	// Densify component ids in first-appearance order.
	dense := map[int]int{}
	out := make([]int, n)
	for i := range out {
		root := find(i)
		id, ok := dense[root]
		if !ok {
			id = len(dense)
			dense[root] = id
		}
		out[i] = id
	}
	return out
}

// ClusterResult evaluates a predicted clustering against the gold standard.
type ClusterResult struct {
	PredictedClusters int
	GoldClusters      int
	// Pairwise metrics after transitive closure.
	PairPrecision float64
	PairRecall    float64
	PairF1        float64
	// ExactClusters counts predicted clusters identical to a gold cluster.
	ExactClusters int
}

// EvaluateClustering compares the predicted component ids against the
// dataset's gold standard.
func EvaluateClustering(ds *Dataset, predicted []int) ClusterResult {
	if len(predicted) != len(ds.Records) {
		panic("dedup: EvaluateClustering length mismatch")
	}
	res := ClusterResult{GoldClusters: ds.NumClusters()}

	predClusters := map[int][]int{}
	for i, c := range predicted {
		predClusters[c] = append(predClusters[c], i)
	}
	res.PredictedClusters = len(predClusters)

	// Pairwise counts via cluster-size arithmetic: TP = pairs sharing both
	// labels; predicted pairs = sum over predicted clusters; gold pairs =
	// ds.NumTruePairs().
	type key struct{ pred, gold int }
	joint := map[key]int{}
	for i := range predicted {
		joint[key{predicted[i], ds.ClusterOf[i]}]++
	}
	tp := 0
	for _, n := range joint {
		tp += n * (n - 1) / 2
	}
	predPairs := 0
	for _, idx := range predClusters {
		predPairs += len(idx) * (len(idx) - 1) / 2
	}
	goldPairs := ds.NumTruePairs()
	if predPairs > 0 {
		res.PairPrecision = float64(tp) / float64(predPairs)
	} else {
		res.PairPrecision = 1
	}
	if goldPairs > 0 {
		res.PairRecall = float64(tp) / float64(goldPairs)
	} else {
		res.PairRecall = 1
	}
	if res.PairPrecision+res.PairRecall > 0 {
		res.PairF1 = 2 * res.PairPrecision * res.PairRecall / (res.PairPrecision + res.PairRecall)
	}

	// Exact cluster matches: identical member sets.
	goldClusters := ds.Clusters()
	goldSig := map[string]bool{}
	for _, idx := range goldClusters {
		goldSig[signature(idx)] = true
	}
	for _, idx := range predClusters {
		if goldSig[signature(idx)] {
			res.ExactClusters++
		}
	}
	return res
}

// signature renders a sorted member list as a map key.
func signature(idx []int) string {
	s := append([]int(nil), idx...)
	sort.Ints(s)
	out := make([]byte, 0, len(s)*4)
	for _, v := range s {
		for v >= 128 {
			out = append(out, byte(v)|0x80)
			v >>= 7
		}
		out = append(out, byte(v))
		out = append(out, 0xff)
	}
	return string(out)
}

// DetectClusters runs the full end-to-end deduplication for one measure and
// threshold: blocking, scoring, classification, transitive closure.
func DetectClusters(ds *Dataset, m Measure, threshold float64, numPasses, window int) []int {
	passes := MostUniqueAttrs(ds, numPasses)
	candidates := SortedNeighborhood(ds, passes, window)
	matcher := NewMatcher(ds, m)
	var dupPairs []Pair
	for _, p := range candidates {
		if matcher.RecordSim(p.I, p.J) >= threshold {
			dupPairs = append(dupPairs, p)
		}
	}
	return ConnectedComponents(len(ds.Records), dupPairs)
}
