package dedup

import (
	"sort"
	"time"
)

// Point is one threshold of an evaluation curve.
type Point struct {
	Threshold float64
	Precision float64
	Recall    float64
	F1        float64
}

// Curve is the F1-versus-threshold series of one measure on one dataset
// (one line of the paper's Figure 5).
type Curve struct {
	Dataset string
	Measure Measure
	Points  []Point
}

// BestF1 returns the curve's maximum F1 score and the threshold achieving
// it.
func (c Curve) BestF1() (f1, threshold float64) {
	for _, p := range c.Points {
		if p.F1 > f1 {
			f1, threshold = p.F1, p.Threshold
		}
	}
	return f1, threshold
}

// Evaluate runs the full §6.5 pipeline for one measure: multi-pass SNM
// blocking over the numPasses most unique attributes with the given window,
// record scoring, and a threshold sweep. Thresholds run from 0 to 1 in
// steps of 1/steps. True pairs missed by the blocking count as false
// negatives at every threshold.
func Evaluate(ds *Dataset, m Measure, numPasses, window, steps int) Curve {
	passes := MostUniqueAttrs(ds, numPasses)
	candidates := SortedNeighborhood(ds, passes, window)
	return EvaluateCandidates(ds, m, candidates, steps)
}

// EvaluateCandidates scores the given candidate pairs with the plain
// per-pair Matcher and sweeps the decision threshold. It is the sequential
// reference implementation; EvaluateCandidatesParallel produces the same
// Curve — bit for bit — from the preprocessed engine at any worker count.
func EvaluateCandidates(ds *Dataset, m Measure, candidates []Pair, steps int) Curve {
	matcher := NewMatcher(ds, m)
	sims := make([]float64, len(candidates))
	for k, p := range candidates {
		sims[k] = matcher.RecordSim(p.I, p.J)
	}
	return sweepCurve(ds, m, candidates, sims, steps)
}

// EvaluateCandidatesParallel is EvaluateCandidates through the parallel
// scoring engine (engine.go): preprocessing pass, scratch kernels, memo
// cache, worker pool. The returned Curve is identical to the sequential
// one for any opts.Workers — workers write into an index-addressed result
// slice and every kernel is bit-compatible with its allocating
// counterpart.
func EvaluateCandidatesParallel(ds *Dataset, m Measure, candidates []Pair, steps int, opts ScoreOpts) Curve {
	start := time.Now()
	eng := newEngine(ds, m, opts)
	opts.stage("preprocessing", start)
	start = time.Now()
	sims := eng.scoreAll(candidates, opts.workersOrDefault())
	opts.stage("scoring", start)
	start = time.Now()
	curve := sweepCurve(ds, m, candidates, sims, steps)
	opts.stage("merge", start)
	return curve
}

// sweepCurve turns per-candidate similarities into the threshold-sweep
// curve. Shared by the sequential and parallel paths so that both run the
// exact same float pipeline after scoring.
func sweepCurve(ds *Dataset, m Measure, candidates []Pair, sims []float64, steps int) Curve {
	type scored struct {
		sim float64
		dup bool
	}
	scoredPairs := make([]scored, len(candidates))
	for k, p := range candidates {
		scoredPairs[k] = scored{sims[k], ds.IsDuplicate(p.I, p.J)}
	}
	sort.Slice(scoredPairs, func(a, b int) bool { return scoredPairs[a].sim > scoredPairs[b].sim })

	totalTrue := ds.NumTruePairs()
	curve := Curve{Dataset: ds.Name, Measure: m}
	// Prefix true-positive counts over the descending score order: at
	// threshold t the classified-duplicate set is the prefix with sim >= t.
	tpPrefix := make([]int, len(scoredPairs)+1)
	for i, sp := range scoredPairs {
		tpPrefix[i+1] = tpPrefix[i]
		if sp.dup {
			tpPrefix[i+1]++
		}
	}
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		n := sort.Search(len(scoredPairs), func(i int) bool { return scoredPairs[i].sim < t })
		curve.Points = append(curve.Points, point(t, tpPrefix[n], n, totalTrue))
	}
	// Ascending threshold order for presentation.
	sort.Slice(curve.Points, func(a, b int) bool { return curve.Points[a].Threshold < curve.Points[b].Threshold })
	return curve
}

// point computes precision/recall/F1 for tp true positives among n
// classified duplicates and totalTrue gold pairs.
func point(t float64, tp, n, totalTrue int) Point {
	p := Point{Threshold: t}
	if n > 0 {
		p.Precision = float64(tp) / float64(n)
	} else {
		p.Precision = 1 // empty classification is vacuously precise
	}
	if totalTrue > 0 {
		p.Recall = float64(tp) / float64(totalTrue)
	} else {
		p.Recall = 1
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// EvaluateAll runs Evaluate for every measure.
func EvaluateAll(ds *Dataset, numPasses, window, steps int) []Curve {
	out := make([]Curve, 0, len(Measures))
	for _, m := range Measures {
		out = append(out, Evaluate(ds, m, numPasses, window, steps))
	}
	return out
}

// EvaluateAllParallel is EvaluateAll through the scoring engine: the
// blocking runs once and every measure's sweep scores the shared candidate
// set in parallel. Curves equal EvaluateAll's exactly.
func EvaluateAllParallel(ds *Dataset, numPasses, window, steps int, opts ScoreOpts) []Curve {
	passes := MostUniqueAttrs(ds, numPasses)
	candidates := SortedNeighborhood(ds, passes, window)
	out := make([]Curve, 0, len(Measures))
	for _, m := range Measures {
		out = append(out, EvaluateCandidatesParallel(ds, m, candidates, steps, opts))
	}
	return out
}
