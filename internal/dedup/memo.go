package dedup

import (
	"sync"
	"sync/atomic"
)

// memoShardCount shards the value-pair memo to keep lock contention off the
// scoring hot path; must be a power of two.
const memoShardCount = 64

// defaultMemoCap bounds the cache at ~1M entries (~48 MB worst case)
// unless ScoreOpts says otherwise.
const defaultMemoCap = 1 << 20

// memoKey identifies one ordered pair of interned column values. The pair
// is deliberately not canonicalized: SoftTFIDF's soft cosine is asymmetric,
// and the bit-identity contract requires the memoized result to be exactly
// what the direct computation would have returned for that argument order.
type memoKey struct {
	col  int32
	a, b int32
}

type memoShard struct {
	mu sync.RWMutex
	m  map[memoKey]float64
}

// memoCache memoizes value-pair similarities. Voter columns repeat values
// heavily — city, last name, zip — so the same (column, a, b) comparison
// recurs across thousands of candidate pairs; caching it turns repeated DP
// work into a map read. The cache is bounded: once a shard is full new
// results are returned but not stored (counted as skips), which keeps
// memory flat without evictions. Because every measure is a pure function,
// hit/miss timing — which differs between worker schedules — can never
// change a score, only how often it is recomputed.
type memoCache struct {
	shards      [memoShardCount]memoShard
	capPerShard int

	hits, misses, skips atomic.Int64
}

// newMemoCache sizes the cache for about totalCap entries; totalCap 0
// selects the default, negative disables caching.
func newMemoCache(totalCap int) *memoCache {
	if totalCap == 0 {
		totalCap = defaultMemoCap
	}
	c := &memoCache{capPerShard: totalCap / memoShardCount}
	if totalCap > 0 && c.capPerShard == 0 {
		c.capPerShard = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[memoKey]float64)
	}
	return c
}

// shard picks the shard of a key by a cheap multiplicative mix.
func (c *memoCache) shard(k memoKey) *memoShard {
	h := uint32(k.col)*0x9E3779B1 ^ uint32(k.a)*0x85EBCA77 ^ uint32(k.b)*0xC2B2AE3D
	return &c.shards[h&(memoShardCount-1)]
}

func (c *memoCache) get(col, a, b int32) (float64, bool) {
	if c.capPerShard < 0 {
		return 0, false
	}
	s := c.shard(memoKey{col, a, b})
	s.mu.RLock()
	v, ok := s.m[memoKey{col, a, b}]
	s.mu.RUnlock()
	return v, ok
}

// put stores a computed similarity unless the shard is at capacity;
// it reports whether the value was stored.
func (c *memoCache) put(col, a, b int32, v float64) bool {
	if c.capPerShard < 0 {
		return false
	}
	s := c.shard(memoKey{col, a, b})
	s.mu.Lock()
	if len(s.m) >= c.capPerShard {
		s.mu.Unlock()
		return false
	}
	s.m[memoKey{col, a, b}] = v
	s.mu.Unlock()
	return true
}
