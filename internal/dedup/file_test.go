package dedup

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestDatasetFileRoundTrip(t *testing.T) {
	ds := &Dataset{
		Name:      "roundtrip",
		Attrs:     []string{"first", "last"},
		NameAttrs: []int{0, 1},
		Records: [][]string{
			{"JOHN", "SMITH"},
			{"JON", "SMITH"},
			{"MARY", "JONES"},
		},
		ClusterOf: []int{0, 0, 1},
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.NameAttrs) != 2 || got.NameAttrs[0] != 0 {
		t.Errorf("name attrs = %v", got.NameAttrs)
	}
	if got.NumRecords() != 3 || got.NumClusters() != 2 {
		t.Errorf("records/clusters = %d/%d", got.NumRecords(), got.NumClusters())
	}
	for i := range ds.Records {
		for j := range ds.Records[i] {
			if got.Records[i][j] != ds.Records[i][j] {
				t.Fatalf("value mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestDatasetFileOnDisk(t *testing.T) {
	ds := &Dataset{
		Name:      "disk",
		Attrs:     []string{"a"},
		Records:   [][]string{{"x"}},
		ClusterOf: []int{7},
	}
	path := filepath.Join(t.TempDir(), "ds.tsv")
	if err := ds.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClusterOf[0] != 7 {
		t.Errorf("cluster id = %d", got.ClusterOf[0])
	}
}

func TestReadFromRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"bogus\theader\nx\ty\n",
		"cluster_id\ta\nnotanumber\tx\n",
		"cluster_id\ta\n1\tx\textra\n",
	}
	for i, c := range cases {
		if _, err := ReadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestWriteToRejectsTabs(t *testing.T) {
	ds := &Dataset{
		Name:      "bad",
		Attrs:     []string{"a"},
		Records:   [][]string{{"x\ty"}},
		ClusterOf: []int{0},
	}
	if err := ds.Write(&bytes.Buffer{}); err == nil {
		t.Error("tab inside a value accepted")
	}
}
