package dedup

import "testing"

func TestConnectedComponents(t *testing.T) {
	// 0-1-2 connected, 3 alone, 4-5 connected.
	comp := ConnectedComponents(6, []Pair{{0, 1}, {1, 2}, {4, 5}})
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("chain not merged: %v", comp)
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Errorf("singleton merged: %v", comp)
	}
	if comp[4] != comp[5] {
		t.Errorf("pair not merged: %v", comp)
	}
	distinct := map[int]bool{}
	for _, c := range comp {
		distinct[c] = true
	}
	if len(distinct) != 3 {
		t.Errorf("components = %d, want 3", len(distinct))
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	comp := ConnectedComponents(3, nil)
	if comp[0] == comp[1] || comp[1] == comp[2] {
		t.Errorf("no pairs should give singletons: %v", comp)
	}
}

func TestEvaluateClusteringPerfect(t *testing.T) {
	ds := &Dataset{
		Name:      "t",
		Attrs:     []string{"a"},
		Records:   [][]string{{"x"}, {"x"}, {"y"}, {"z"}},
		ClusterOf: []int{0, 0, 1, 2},
	}
	res := EvaluateClustering(ds, []int{5, 5, 7, 9})
	if res.PairF1 != 1 || res.PairPrecision != 1 || res.PairRecall != 1 {
		t.Errorf("perfect clustering scored %+v", res)
	}
	if res.ExactClusters != 3 {
		t.Errorf("exact clusters = %d, want 3", res.ExactClusters)
	}
}

func TestEvaluateClusteringOverMerge(t *testing.T) {
	ds := &Dataset{
		Name:      "t",
		Attrs:     []string{"a"},
		Records:   [][]string{{"x"}, {"x"}, {"y"}, {"y"}},
		ClusterOf: []int{0, 0, 1, 1},
	}
	// Everything merged into one blob: recall 1, precision 2/6.
	res := EvaluateClustering(ds, []int{0, 0, 0, 0})
	if res.PairRecall != 1 {
		t.Errorf("recall = %v", res.PairRecall)
	}
	if res.PairPrecision < 0.33 || res.PairPrecision > 0.34 {
		t.Errorf("precision = %v, want 1/3", res.PairPrecision)
	}
	if res.ExactClusters != 0 {
		t.Errorf("exact clusters = %d", res.ExactClusters)
	}
}

func TestEvaluateClusteringUnderMerge(t *testing.T) {
	ds := &Dataset{
		Name:      "t",
		Attrs:     []string{"a"},
		Records:   [][]string{{"x"}, {"x"}, {"x"}},
		ClusterOf: []int{0, 0, 0},
	}
	// All singletons: precision vacuously 1, recall 0.
	res := EvaluateClustering(ds, []int{0, 1, 2})
	if res.PairPrecision != 1 || res.PairRecall != 0 || res.PairF1 != 0 {
		t.Errorf("under-merge scored %+v", res)
	}
}

func TestDetectClustersEndToEnd(t *testing.T) {
	ds := toyDataset(t, 25, []int{2, 3}, 0.2)
	comp := DetectClusters(ds, MeasureMELev, 0.7, 3, 20)
	res := EvaluateClustering(ds, comp)
	if res.PairF1 < 0.8 {
		t.Errorf("end-to-end clustering F1 = %v, want >= 0.8 on clean data", res.PairF1)
	}
	if res.ExactClusters == 0 {
		t.Error("no exactly reconstructed clusters")
	}
	// The transitive closure can only help recall vs the raw pair
	// classification at the same threshold.
	curve := Evaluate(ds, MeasureMELev, 3, 20, 10)
	var rawRecall float64
	for _, p := range curve.Points {
		if p.Threshold == 0.7 {
			rawRecall = p.Recall
		}
	}
	if res.PairRecall+1e-9 < rawRecall {
		t.Errorf("closure reduced recall: %v < %v", res.PairRecall, rawRecall)
	}
}
