package dedup

import (
	"math"
	"testing"
)

func TestFellegiSunterWeightsLearnIdentifyingAttrs(t *testing.T) {
	ds := toyDataset(t, 60, []int{2, 3}, 0.3)
	cands := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	model := TrainFellegiSunter(ds, cands, 0.9)
	if len(model.M) != len(ds.Attrs) {
		t.Fatalf("model width = %d", len(model.M))
	}
	for c := range model.Attrs {
		if model.M[c] <= 0 || model.M[c] >= 1 || model.U[c] <= 0 || model.U[c] >= 1 {
			t.Fatalf("probabilities out of range at %s: m=%v u=%v", model.Attrs[c], model.M[c], model.U[c])
		}
	}
	// The zip attribute (index 4) is highly identifying: agreement among
	// duplicates is near-certain and rare among non-duplicates, so its
	// weight must be clearly positive.
	if w := model.Weight(4); w <= 1 {
		t.Errorf("zip agreement weight = %v, want > 1", w)
	}
}

func TestFellegiSunterScoresSeparate(t *testing.T) {
	ds := toyDataset(t, 60, []int{2}, 0.3)
	cands := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	model := TrainFellegiSunter(ds, cands, 0.9)
	// Mean score of duplicates must exceed mean score of non-duplicates.
	var dupSum, nonSum float64
	var dupN, nonN int
	for _, p := range cands {
		s := model.Score(ds.Records[p.I], ds.Records[p.J])
		if math.IsInf(s, 0) || math.IsNaN(s) {
			t.Fatalf("non-finite score %v", s)
		}
		if ds.IsDuplicate(p.I, p.J) {
			dupSum += s
			dupN++
		} else {
			nonSum += s
			nonN++
		}
	}
	if dupN == 0 || nonN == 0 {
		t.Fatal("degenerate candidate mix")
	}
	if dupSum/float64(dupN) <= nonSum/float64(nonN) {
		t.Errorf("duplicate mean score %v <= non-duplicate %v",
			dupSum/float64(dupN), nonSum/float64(nonN))
	}
}

func TestEvaluateFellegiSunterEndToEnd(t *testing.T) {
	ds := toyDataset(t, 100, []int{2, 3}, 0.3)
	f1, score := EvaluateFellegiSunter(ds, 3, 20, 0.9, 0.5, 3)
	if f1 < 0.8 {
		t.Errorf("validation F1 = %v, want >= 0.8 on clean data", f1)
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		t.Errorf("decision score = %v", score)
	}
}
