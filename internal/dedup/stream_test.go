package dedup

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// feedBatches sends candidates through a channel in batches of size bs.
func feedBatches(candidates []Pair, bs, buffer int) <-chan []Pair {
	ch := make(chan []Pair, buffer)
	go func() {
		for lo := 0; lo < len(candidates); lo += bs {
			hi := lo + bs
			if hi > len(candidates) {
				hi = len(candidates)
			}
			ch <- append([]Pair(nil), candidates[lo:hi]...)
		}
		close(ch)
	}()
	return ch
}

// TestStreamCurveEquivalence is the streaming consumer's bit-identity
// contract: for every measure and worker count, the curve computed from
// batched candidates equals the sequential reference exactly.
// `make stream-race` runs it under the race detector.
func TestStreamCurveEquivalence(t *testing.T) {
	ds := toyDataset(t, 40, []int{1, 2, 3}, 0.4)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	if len(candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, m := range AllMeasures {
		want := EvaluateCandidates(ds, m, candidates, 50)
		for _, workers := range equivWorkerCounts() {
			got := EvaluateCandidatesStream(ds, m, feedBatches(candidates, 37, 2), 50,
				ScoreOpts{Workers: workers})
			requireCurvesIdentical(t, string(m)+"/stream/workers="+itoa(workers), want, got)
		}
	}
}

// TestStreamBatchShapeIrrelevant: the curve cannot depend on how the pair
// stream is chopped into batches.
func TestStreamBatchShapeIrrelevant(t *testing.T) {
	ds := toyDataset(t, 25, []int{2, 3}, 0.5)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 2), 10)
	want := EvaluateCandidates(ds, MeasureJaroWinkler, candidates, 25)
	for _, bs := range []int{1, 7, len(candidates), len(candidates) * 2} {
		got := EvaluateCandidatesStream(ds, MeasureJaroWinkler, feedBatches(candidates, bs, 0), 25,
			ScoreOpts{Workers: 3})
		requireCurvesIdentical(t, "batch="+itoa(bs), want, got)
	}
}

// TestStreamEmpty: a channel closed without batches yields the same curve
// as an empty candidate slice (precision 1 everywhere).
func TestStreamEmpty(t *testing.T) {
	ds := toyDataset(t, 5, []int{1}, 0)
	want := EvaluateCandidates(ds, MeasureMELev, nil, 10)
	got := EvaluateCandidatesStream(ds, MeasureMELev, feedBatches(nil, 8, 0), 10,
		ScoreOpts{Workers: 2})
	requireCurvesIdentical(t, "empty stream", want, got)
}

// TestStreamRecycleAndStages: the Recycle hook sees every batch exactly
// once, and OnStage reports the three pipeline stages in order.
func TestStreamRecycleAndStages(t *testing.T) {
	ds := toyDataset(t, 20, []int{2}, 0.3)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 2), 10)

	var mu sync.Mutex
	recycled := 0
	var stages []string
	got := EvaluateCandidatesStream(ds, MeasureTrigramJaccard, feedBatches(candidates, 16, 1), 20,
		ScoreOpts{
			Workers: 4,
			Recycle: func(batch []Pair) {
				mu.Lock()
				recycled += len(batch)
				mu.Unlock()
			},
			OnStage: func(stage string, d time.Duration) {
				if d < 0 {
					t.Errorf("stage %s: negative duration %v", stage, d)
				}
				stages = append(stages, stage)
			},
		})
	if recycled != len(candidates) {
		t.Errorf("recycled %d pairs, want %d", recycled, len(candidates))
	}
	wantStages := []string{"preprocessing", "scoring", "merge"}
	if len(stages) != len(wantStages) {
		t.Fatalf("stages %v, want %v", stages, wantStages)
	}
	for i := range wantStages {
		if stages[i] != wantStages[i] {
			t.Fatalf("stages %v, want %v", stages, wantStages)
		}
	}
	want := EvaluateCandidates(ds, MeasureTrigramJaccard, candidates, 20)
	requireCurvesIdentical(t, "recycle run", want, got)
}

// TestStreamObserverCounters: the streaming path reports the score_*
// family plus the dedup_stream_* extension.
func TestStreamObserverCounters(t *testing.T) {
	ds := toyDataset(t, 30, []int{2, 3}, 0.2)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	obs := &countingObserver{}
	EvaluateCandidatesStream(ds, MeasureTrigramJaccard, feedBatches(candidates, 64, 2), 20,
		ScoreOpts{Workers: 2, Observer: obs})
	if got := obs.n["score_pairs_scored"]; got != int64(len(candidates)) {
		t.Errorf("score_pairs_scored = %d, want %d", got, len(candidates))
	}
	if got := obs.n["dedup_stream_pairs"]; got != int64(len(candidates)) {
		t.Errorf("dedup_stream_pairs = %d, want %d", got, len(candidates))
	}
	wantBatches := int64((len(candidates) + 63) / 64)
	if got := obs.n["dedup_stream_batches"]; got != wantBatches {
		t.Errorf("dedup_stream_batches = %d, want %d", got, wantBatches)
	}
	if obs.n["score_memo_hits"]+obs.n["score_memo_misses"] == 0 {
		t.Error("no memo traffic recorded on the streaming path")
	}
}

// TestThresholdBucketMatchesSweepSearch: the bucket boundary must evaluate
// the exact float comparison sweepCurve's sort.Search performs, including
// similarities that land exactly on a grid threshold.
func TestThresholdBucketMatchesSweepSearch(t *testing.T) {
	const steps = 100
	sims := []float64{0, 1, 0.5, 0.25, 1.0 / 3.0, 0.009999999999999999, 0.01, 0.99, 0.7000000000000001}
	for s := 0; s <= steps; s++ {
		sims = append(sims, float64(s)/float64(steps))
	}
	for _, sim := range sims {
		b := thresholdBucket(sim, steps)
		// Reference: count thresholds t_s with sim >= t_s, the per-pair
		// contribution sweepCurve's n(t) counts.
		want := 0
		for s := 0; s <= steps; s++ {
			if !(float64(s)/float64(steps) > sim) {
				want++
			}
		}
		if b != want {
			t.Errorf("sim=%v: bucket %d, want %d", sim, b, want)
		}
	}
}

// TestMemoBoundedCapUnderStreaming is the bounded-eviction regression: a
// memo cache far smaller than the distinct value-pair set must fill every
// shard to at most its capacity, count the overflow as skips, and leave
// the streamed curve untouched.
func TestMemoBoundedCapUnderStreaming(t *testing.T) {
	ds := toyDataset(t, 60, []int{2, 3}, 0.6)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	want := EvaluateCandidates(ds, MeasureMELev, candidates, 25)

	const memoCap = memoShardCount * 2 // two entries per shard
	obs := &countingObserver{}
	got := EvaluateCandidatesStream(ds, MeasureMELev, feedBatches(candidates, 32, 2), 25,
		ScoreOpts{Workers: 4, MemoCap: memoCap, Observer: obs})
	requireCurvesIdentical(t, "tiny memo stream", want, got)

	if obs.n["score_memo_skips"] == 0 {
		t.Error("no skips recorded with a cache smaller than the value-pair set")
	}
	if obs.n["score_memo_misses"] == 0 {
		t.Error("no misses recorded")
	}
	// Every computed similarity was either stored (bounded by the cap) or
	// skipped; hits can only come from stored entries.
	if obs.n["score_memo_skips"] > obs.n["score_memo_misses"] {
		t.Errorf("skips %d > misses %d", obs.n["score_memo_skips"], obs.n["score_memo_misses"])
	}
}

// TestMemoShardNeverExceedsCap drives one cache past capacity directly and
// asserts the per-shard bound and the put contract.
func TestMemoShardNeverExceedsCap(t *testing.T) {
	const totalCap = memoShardCount * 3
	c := newMemoCache(totalCap)
	stored, skipped := 0, 0
	for a := int32(0); a < 64; a++ {
		for b := int32(0); b < 64; b++ {
			if c.put(0, a, b, float64(a)+float64(b)/100) {
				stored++
			} else {
				skipped++
			}
		}
	}
	if skipped == 0 {
		t.Fatal("64x64 inserts never overflowed a 3-entry-per-shard cache")
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > c.capPerShard {
			t.Errorf("shard %d holds %d entries, cap %d", i, n, c.capPerShard)
		}
	}
	// Stored entries must read back exactly; get must miss for skipped keys.
	hits := 0
	for a := int32(0); a < 64; a++ {
		for b := int32(0); b < 64; b++ {
			if v, ok := c.get(0, a, b); ok {
				hits++
				if want := float64(a) + float64(b)/100; v != want {
					t.Fatalf("get(0,%d,%d) = %v, want %v", a, b, v, want)
				}
			}
		}
	}
	if hits != stored {
		t.Errorf("%d readable entries, %d stored", hits, stored)
	}

	// Disabled cache: nothing stores, nothing hits.
	off := newMemoCache(-1)
	if off.put(0, 1, 2, 0.5) {
		t.Error("disabled cache stored an entry")
	}
	if _, ok := off.get(0, 1, 2); ok {
		t.Error("disabled cache returned a hit")
	}
}

// TestCurveFromCountsMatchesSweep cross-checks the suffix-sum builder
// against sweepCurve on synthetic similarity multisets, independent of any
// matcher.
func TestCurveFromCountsMatchesSweep(t *testing.T) {
	ds := toyDataset(t, 10, []int{2}, 0.2)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 2), 8)
	sims := make([]float64, len(candidates))
	for k := range sims {
		// A spread of exact-grid and off-grid values.
		switch k % 4 {
		case 0:
			sims[k] = float64(k%21) / 20
		case 1:
			sims[k] = 1.0 / float64(k+2)
		case 2:
			sims[k] = 0
		default:
			sims[k] = 1
		}
	}
	const steps = 20
	want := sweepCurve(ds, MeasureMELev, candidates, sims, steps)
	counts := make([]int64, steps+2)
	dups := make([]int64, steps+2)
	for k, p := range candidates {
		b := thresholdBucket(sims[k], steps)
		counts[b]++
		if ds.IsDuplicate(p.I, p.J) {
			dups[b]++
		}
	}
	got := curveFromCounts(ds, MeasureMELev, counts, dups, steps)
	requireCurvesIdentical(t, "curveFromCounts", want, got)
	if !sort.SliceIsSorted(got.Points, func(a, b int) bool {
		return got.Points[a].Threshold < got.Points[b].Threshold
	}) {
		t.Error("points not in ascending threshold order")
	}
}
