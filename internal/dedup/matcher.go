package dedup

import (
	"strings"

	"repro/internal/hetero"
	"repro/internal/simil"
)

// Measure names the three record-similarity measures of the usability
// experiment.
type Measure string

const (
	// MeasureMELev is the Monge-Elkan/Damerau-Levenshtein combination also
	// used for the heterogeneity scores (four-way comparison).
	MeasureMELev Measure = "ME/Lev"
	// MeasureJaroWinkler is the sequential Jaro-Winkler similarity.
	MeasureJaroWinkler Measure = "JaroWinkler"
	// MeasureTrigramJaccard is the token-based Jaccard similarity over
	// trigrams.
	MeasureTrigramJaccard Measure = "Jaccard"
)

// Extended measures beyond the paper's three: global and local alignment
// and two further q-gram measures, covering the sequential / hybrid /
// token-based spectrum more densely.
const (
	MeasureNeedlemanWunsch Measure = "NeedlemanWunsch"
	MeasureSmithWaterman   Measure = "SmithWaterman"
	MeasureCosineTrigram   Measure = "CosineTrigram"
	MeasureOverlapTrigram  Measure = "OverlapTrigram"
	// MeasureSoftTFIDF is the corpus-aware SoftTFIDF measure: per-column
	// token idf statistics with typo-forgiving token matching. Unlike the
	// other measures it depends on the dataset it runs on.
	MeasureSoftTFIDF Measure = "SoftTFIDF"
)

// Measures lists the paper's three in paper order.
var Measures = []Measure{MeasureMELev, MeasureJaroWinkler, MeasureTrigramJaccard}

// AllMeasures lists every available measure, the paper's first.
var AllMeasures = []Measure{
	MeasureMELev, MeasureJaroWinkler, MeasureTrigramJaccard,
	MeasureNeedlemanWunsch, MeasureSmithWaterman,
	MeasureCosineTrigram, MeasureOverlapTrigram, MeasureSoftTFIDF,
}

// valueMeasure resolves a measure name to its value-similarity function.
func valueMeasure(m Measure) simil.StringMeasure {
	switch m {
	case MeasureMELev:
		return hetero.ValueSim
	case MeasureJaroWinkler:
		return jwCaseInsensitive
	case MeasureTrigramJaccard:
		return jaccardCaseInsensitive
	case MeasureNeedlemanWunsch:
		return lowered(simil.NeedlemanWunsch)
	case MeasureSmithWaterman:
		return lowered(simil.SmithWaterman)
	case MeasureCosineTrigram:
		return lowered(func(a, b string) float64 { return simil.CosineQGram(a, b, 3) })
	case MeasureOverlapTrigram:
		return lowered(func(a, b string) float64 { return simil.OverlapQGram(a, b, 3) })
	}
	panic("dedup: unknown measure " + string(m))
}

// lowered wraps a measure with case folding, matching the paper's
// case-insensitive record comparison.
func lowered(m simil.StringMeasure) simil.StringMeasure {
	return func(a, b string) float64 {
		return m(strings.ToLower(a), strings.ToLower(b))
	}
}

func jwCaseInsensitive(a, b string) float64 {
	return simil.JaroWinkler(strings.ToLower(a), strings.ToLower(b))
}

func jaccardCaseInsensitive(a, b string) float64 {
	return simil.TrigramJaccard(strings.ToLower(a), strings.ToLower(b))
}

// Matcher scores record pairs of one dataset under one measure, with
// entropy-derived attribute weights and best 1:1 name matching. Weights are
// computed over all records — the user cannot know the duplicates in
// advance (§6.5) — which is exactly what distinguishes them from the
// heterogeneity weights. Measures are held per column so corpus-aware
// measures (SoftTFIDF) can carry column statistics.
type Matcher struct {
	ds       *Dataset
	measures []simil.StringMeasure // one per column
	weights  []float64
	names    []int
	nameSet  map[int]bool
}

// NewMatcher builds a matcher for the dataset under the given measure.
func NewMatcher(ds *Dataset, m Measure) *Matcher {
	weights := simil.EntropyWeights(ds.Columns())
	nameSet := map[int]bool{}
	for _, n := range ds.NameAttrs {
		nameSet[n] = true
	}
	matcher := &Matcher{
		ds:      ds,
		weights: weights,
		names:   append([]int(nil), ds.NameAttrs...),
		nameSet: nameSet,
	}
	matcher.measures = make([]simil.StringMeasure, len(ds.Attrs))
	if m == MeasureSoftTFIDF {
		for c, col := range ds.Columns() {
			matcher.measures[c] = softTFIDFMeasure(col)
		}
		return matcher
	}
	vm := valueMeasure(m)
	for c := range matcher.measures {
		matcher.measures[c] = vm
	}
	return matcher
}

// softTFIDFThreshold is the internal token-match threshold of the
// SoftTFIDF measure.
const softTFIDFThreshold = 0.85

// softTFIDFMeasure builds the per-column SoftTFIDF value measure from the
// column's token corpus.
func softTFIDFMeasure(column []string) simil.StringMeasure {
	docs := make([][]string, len(column))
	for i, v := range column {
		docs[i] = simil.Tokenize(strings.ToLower(v))
	}
	tfidf := simil.NewTFIDF(docs)
	return func(a, b string) float64 {
		return tfidf.SoftCosine(
			simil.Tokenize(strings.ToLower(a)),
			simil.Tokenize(strings.ToLower(b)),
			simil.DamerauLevenshteinSimilarity, softTFIDFThreshold)
	}
}

// Weights exposes the matcher's entropy weights (for tests and diagnostics).
func (m *Matcher) Weights() []float64 { return m.weights }

// RecordSim scores records i and j: the weighted average of their value
// similarities, with the name attributes aggregated through the best 1:1
// assignment.
func (m *Matcher) RecordSim(i, j int) float64 {
	a, b := m.ds.Records[i], m.ds.Records[j]
	sum, wsum := 0.0, 0.0
	for c := range m.ds.Attrs {
		if m.nameSet[c] {
			continue // handled jointly below
		}
		w := m.weights[c]
		if w == 0 {
			continue
		}
		sum += w * m.measures[c](a[c], b[c])
		wsum += w
	}
	if len(m.names) > 0 {
		nameW := 0.0
		for _, c := range m.names {
			nameW += m.weights[c]
		}
		if nameW > 0 {
			sum += nameW * m.bestNameAssignment(a, b)
			wsum += nameW
		}
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// bestNameAssignment scores the name attributes under the best 1:1 mapping
// between the two records' name values, weighting each matched slot by its
// attribute weight. With the register's three names this enumerates at most
// 3! = 6 permutations.
func (m *Matcher) bestNameAssignment(a, b []string) float64 {
	n := len(m.names)
	vaIdx := m.names
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 0.0
	var walk func(k int)
	walk = func(k int) {
		if k == n {
			score, wsum := 0.0, 0.0
			for i, p := range perm {
				w := m.weights[vaIdx[i]]
				score += w * m.measures[vaIdx[i]](a[vaIdx[i]], b[vaIdx[p]])
				wsum += w
			}
			if wsum > 0 {
				score /= wsum
			}
			if score > best {
				best = score
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return best
}
