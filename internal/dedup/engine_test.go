package dedup

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// equivWorkerCounts is the worker ladder of the equivalence suite.
func equivWorkerCounts() []int {
	ws := []int{1, 2, 7}
	maxprocs := runtime.GOMAXPROCS(0)
	for _, w := range ws {
		if w == maxprocs {
			return ws
		}
	}
	return append(ws, maxprocs)
}

// requireCurvesIdentical fails unless the two curves agree exactly,
// including the bit patterns of every float.
func requireCurvesIdentical(t *testing.T, label string, want, got Curve) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		if len(want.Points) != len(got.Points) {
			t.Fatalf("%s: %d points, want %d", label, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			w, g := want.Points[i], got.Points[i]
			if math.Float64bits(w.Precision) != math.Float64bits(g.Precision) ||
				math.Float64bits(w.Recall) != math.Float64bits(g.Recall) ||
				math.Float64bits(w.F1) != math.Float64bits(g.F1) ||
				math.Float64bits(w.Threshold) != math.Float64bits(g.Threshold) {
				t.Fatalf("%s: point %d diverges:\n  want %+v\n  got  %+v", label, i, w, g)
			}
		}
		t.Fatalf("%s: curves differ outside Points", label)
	}
}

// TestParallelScoreEquivalence is the engine's bit-identity contract: for
// every measure and every worker count the parallel curve equals the
// sequential reference exactly. `make score-race` runs it under the race
// detector.
func TestParallelScoreEquivalence(t *testing.T) {
	ds := toyDataset(t, 40, []int{1, 2, 3}, 0.4)
	passes := MostUniqueAttrs(ds, 3)
	candidates := SortedNeighborhood(ds, passes, 20)
	if len(candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, m := range AllMeasures {
		want := EvaluateCandidates(ds, m, candidates, 50)
		for _, workers := range equivWorkerCounts() {
			got := EvaluateCandidatesParallel(ds, m, candidates, 50, ScoreOpts{Workers: workers})
			requireCurvesIdentical(t, string(m)+"/workers="+itoa(workers), want, got)
		}
	}
}

// TestParallelScoreEquivalenceTinyMemo re-runs two measures with a memo
// cache of a handful of entries (constant skips) and with caching disabled:
// the cache policy must never leak into the scores.
func TestParallelScoreEquivalenceTinyMemo(t *testing.T) {
	ds := toyDataset(t, 25, []int{2, 3}, 0.5)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 2), 10)
	for _, m := range []Measure{MeasureMELev, MeasureTrigramJaccard} {
		want := EvaluateCandidates(ds, m, candidates, 25)
		for _, cap := range []int{64, -1} {
			got := EvaluateCandidatesParallel(ds, m, candidates, 25, ScoreOpts{Workers: 3, MemoCap: cap})
			requireCurvesIdentical(t, string(m)+"/memocap", want, got)
		}
	}
}

// TestEvaluateAllParallelMatchesSequential covers the paper's three-measure
// wrapper.
func TestEvaluateAllParallelMatchesSequential(t *testing.T) {
	ds := toyDataset(t, 20, []int{2}, 0.3)
	want := EvaluateAll(ds, 2, 10, 20)
	got := EvaluateAllParallel(ds, 2, 10, 20, ScoreOpts{Workers: 4})
	if len(got) != len(want) {
		t.Fatalf("curves = %d, want %d", len(got), len(want))
	}
	for i := range want {
		requireCurvesIdentical(t, string(want[i].Measure), want[i], got[i])
	}
}

// countingObserver is a ScoreObserver for tests.
type countingObserver struct {
	mu sync.Mutex
	n  map[string]int64
}

func (o *countingObserver) AddN(counter string, n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == nil {
		o.n = map[string]int64{}
	}
	o.n[counter] += n
}

// TestParallelScoreObserverCounters checks the score_pipeline_total family:
// pairs scored, values preprocessed, and a high memo hit rate on repetitive
// data.
func TestParallelScoreObserverCounters(t *testing.T) {
	ds := toyDataset(t, 30, []int{2, 3}, 0.2)
	candidates := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	obs := &countingObserver{}
	EvaluateCandidatesParallel(ds, MeasureTrigramJaccard, candidates, 20,
		ScoreOpts{Workers: 2, Observer: obs})
	if got := obs.n["score_pairs_scored"]; got != int64(len(candidates)) {
		t.Errorf("score_pairs_scored = %d, want %d", got, len(candidates))
	}
	if obs.n["score_values_preprocessed"] == 0 {
		t.Error("score_values_preprocessed = 0")
	}
	hits, misses := obs.n["score_memo_hits"], obs.n["score_memo_misses"]
	if hits+misses == 0 {
		t.Fatal("no memo traffic recorded")
	}
	// Toy values come from tiny pools: the hit rate must be substantial.
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Errorf("memo hit rate = %.2f, want >= 0.5 on repetitive data", rate)
	}
	if obs.n["score_memo_skips"] != 0 {
		t.Errorf("score_memo_skips = %d with default cap", obs.n["score_memo_skips"])
	}
}

// TestSortedNeighborhoodOrdering pins the documented output order: sorted
// by (I, J), strictly increasing, no duplicates.
func TestSortedNeighborhoodOrdering(t *testing.T) {
	ds := toyDataset(t, 30, []int{2, 3}, 0.2)
	pairs := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 8)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for k := 1; k < len(pairs); k++ {
		prev, cur := pairs[k-1], pairs[k]
		if cur.I < prev.I || (cur.I == prev.I && cur.J <= prev.J) {
			t.Fatalf("pairs out of order at %d: %v then %v", k, prev, cur)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// BenchmarkEvaluateCandidatesLegacy measures the pre-engine sequential
// matcher; BenchmarkEvaluateCandidatesEngine1 the preprocessed engine at
// workers=1 — the single-thread speedup the acceptance criterion cites.
func BenchmarkEvaluateCandidatesLegacy(b *testing.B) {
	ds := benchDataset(b)
	cands := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateCandidates(ds, MeasureTrigramJaccard, cands, 50)
	}
}

func BenchmarkEvaluateCandidatesEngine1(b *testing.B) {
	ds := benchDataset(b)
	cands := SortedNeighborhood(ds, MostUniqueAttrs(ds, 3), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateCandidatesParallel(ds, MeasureTrigramJaccard, cands, 50, ScoreOpts{Workers: 1})
	}
}

func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	return toyDataset(b, 120, []int{1, 2, 3}, 0.4)
}
