package dedup

import "testing"

func TestStandardBlockingSoundex(t *testing.T) {
	ds := &Dataset{
		Name:  "b",
		Attrs: []string{"last", "zip"},
		Records: [][]string{
			{"BAILEY", "27701"},
			{"BAYLEE", "27701"}, // same soundex as BAILEY
			{"NGUYEN", "27513"},
			{"NGUYEN", "27514"},
			{"", "27513"}, // empty key never blocks
		},
		ClusterOf: []int{0, 0, 1, 1, 2},
	}
	pairs := StandardBlocking(ds, []KeyFunc{SoundexKey(0)}, 0)
	want := map[Pair]bool{{0, 1}: true, {2, 3}: true}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
	if rec := BlockingRecall(ds, pairs); rec != 1 {
		t.Errorf("recall = %v", rec)
	}
}

func TestStandardBlockingMultiKeyUnion(t *testing.T) {
	ds := &Dataset{
		Name:  "b",
		Attrs: []string{"last", "zip"},
		Records: [][]string{
			{"SMITH", "27701"},
			{"SMYTH", "27999"}, // only the soundex key finds this
			{"JONES", "27701"}, // only the zip key pairs this with SMITH
		},
		ClusterOf: []int{0, 0, 1},
	}
	pairs := StandardBlocking(ds, []KeyFunc{SoundexKey(0), ExactKey(1)}, 0)
	seen := map[Pair]bool{}
	for _, p := range pairs {
		seen[p] = true
	}
	if !seen[Pair{0, 1}] || !seen[Pair{0, 2}] {
		t.Errorf("union of keys missing pairs: %v", pairs)
	}
}

func TestStandardBlockingMaxBlock(t *testing.T) {
	ds := &Dataset{Name: "b", Attrs: []string{"k"}}
	for i := 0; i < 10; i++ {
		ds.Records = append(ds.Records, []string{"SAME"})
		ds.ClusterOf = append(ds.ClusterOf, i)
	}
	if got := StandardBlocking(ds, []KeyFunc{ExactKey(0)}, 5); len(got) != 0 {
		t.Errorf("oversize block emitted %d pairs", len(got))
	}
	if got := StandardBlocking(ds, []KeyFunc{ExactKey(0)}, 0); len(got) != 45 {
		t.Errorf("unlimited block emitted %d pairs, want 45", len(got))
	}
}

func TestPrefixKey(t *testing.T) {
	k := PrefixKey(0, 3)
	if k([]string{" williams "}) != "WIL" {
		t.Errorf("PrefixKey = %q", k([]string{" williams "}))
	}
	if k([]string{"AB"}) != "AB" {
		t.Errorf("short value key = %q", k([]string{"AB"}))
	}
}
