package dedup

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Labeled datasets serialize as TSV with a leading cluster_id column: the
// header names it plus the attributes, every following line is one record.
// An optional "#name:" comment on the first line carries the dataset name.

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#name:%s\n", d.Name)
	if len(d.NameAttrs) > 0 {
		parts := make([]string, len(d.NameAttrs))
		for i, n := range d.NameAttrs {
			parts[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(bw, "#nameattrs:%s\n", strings.Join(parts, ","))
	}
	fmt.Fprintf(bw, "cluster_id\t%s\n", strings.Join(d.Attrs, "\t"))
	for i, r := range d.Records {
		for _, v := range r {
			if strings.ContainsAny(v, "\t\n\r") {
				return fmt.Errorf("dedup: record %d contains a tab or newline", i)
			}
		}
		fmt.Fprintf(bw, "%d\t%s\n", d.ClusterOf[i], strings.Join(r, "\t"))
	}
	return bw.Flush()
}

// ReadFrom parses a dataset serialized by Write.
func ReadFrom(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	d := &Dataset{}
	var header []string
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(text, "#name:") {
			d.Name = strings.TrimPrefix(text, "#name:")
			continue
		}
		if strings.HasPrefix(text, "#nameattrs:") {
			for _, p := range strings.Split(strings.TrimPrefix(text, "#nameattrs:"), ",") {
				n, err := strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("dedup: line %d: bad name attr %q", line, p)
				}
				d.NameAttrs = append(d.NameAttrs, n)
			}
			continue
		}
		fields := strings.Split(text, "\t")
		if header == nil {
			if len(fields) < 2 || fields[0] != "cluster_id" {
				return nil, fmt.Errorf("dedup: line %d: bad header", line)
			}
			header = fields
			d.Attrs = fields[1:]
			continue
		}
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dedup: line %d: %d columns, want %d", line, len(fields), len(header))
		}
		c, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dedup: line %d: bad cluster id %q", line, fields[0])
		}
		d.ClusterOf = append(d.ClusterOf, c)
		d.Records = append(d.Records, fields[1:])
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if header == nil {
		return nil, fmt.Errorf("dedup: empty dataset file")
	}
	return d, d.Validate()
}

// WriteFile serializes the dataset to a file.
func (d *Dataset) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a dataset file.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
