package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dedup"
)

// testDataset builds a small labeled dataset with injected duplicates:
// clusters of 1-4 noisy copies of a base record over name/city/zip
// attributes. Deterministic in seed.
func testDataset(seed int64, clusters int) *dedup.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &dedup.Dataset{
		Name:      "blocktest",
		Attrs:     []string{"last_name", "first_name", "city", "zip"},
		NameAttrs: []int{0, 1},
	}
	lasts := []string{"MILLER", "SMITH", "JOHNSON", "GARCIA", "WILLIAMS", "DAVIS", "LOPEZ", "WILSON"}
	firsts := []string{"JAMES", "MARY", "ROBERT", "LINDA", "DAVID", "SUSAN", "PAUL", "KAREN"}
	cities := []string{"RALEIGH", "DURHAM", "CARY", "WILSON", "APEX"}
	corrupt := func(s string) string {
		if len(s) < 2 || rng.Intn(3) > 0 {
			return s
		}
		b := []byte(s)
		switch rng.Intn(3) {
		case 0: // substitution
			b[rng.Intn(len(b))] = byte('A' + rng.Intn(26))
		case 1: // transposition
			i := rng.Intn(len(b) - 1)
			b[i], b[i+1] = b[i+1], b[i]
		case 2: // deletion
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		}
		return string(b)
	}
	for c := 0; c < clusters; c++ {
		base := []string{
			lasts[rng.Intn(len(lasts))] + fmt.Sprintf("%02d", rng.Intn(100)),
			firsts[rng.Intn(len(firsts))],
			cities[rng.Intn(len(cities))],
			fmt.Sprintf("27%03d", rng.Intn(1000)),
		}
		n := 1 + rng.Intn(4)
		for v := 0; v < n; v++ {
			rec := make([]string, len(base))
			copy(rec, base)
			if v > 0 {
				at := rng.Intn(len(rec))
				rec[at] = corrupt(rec[at])
			}
			ds.Records = append(ds.Records, rec)
			ds.ClusterOf = append(ds.ClusterOf, c)
		}
	}
	return ds
}

func testConfig(ds *dedup.Dataset, workers int) Config {
	passes, err := ParsePasses(ds, "last_name+zip, soundex(last_name), prefix(first_name,3)+city")
	if err != nil {
		panic(err)
	}
	return Config{
		Passes:  passes,
		Window:  6,
		Trigram: &TrigramConfig{Attrs: []int{0, 1}, Bands: 6, Rows: 3, MaxBucket: 32},
		Workers: workers,
	}
}

// TestBlockingParallelMatchesSequential is the package-local differential:
// Generate must equal GenerateSeq — pairs and stats — at every ladder
// worker count. The testkit conformance oracle re-runs this over the
// shared seeded corpus.
func TestBlockingParallelMatchesSequential(t *testing.T) {
	ds := testDataset(7, 120)
	wantPairs, wantStats := GenerateSeq(ds, testConfig(ds, 1))
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		gotPairs, gotStats := Generate(ds, testConfig(ds, workers))
		if !reflect.DeepEqual(wantPairs, gotPairs) {
			t.Fatalf("workers=%d: pair set diverges from sequential reference (%d vs %d pairs)",
				workers, len(gotPairs), len(wantPairs))
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, gotStats, wantStats)
		}
	}
}

// TestGenerateSortedUnique asserts the output contract: pairs sorted by
// (I, J), no duplicates, I < J.
func TestGenerateSortedUnique(t *testing.T) {
	ds := testDataset(11, 80)
	pairs, stats := Generate(ds, testConfig(ds, 4))
	if len(pairs) == 0 {
		t.Fatal("no candidates generated")
	}
	for k, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("pair %d: I=%d >= J=%d", k, p.I, p.J)
		}
		if k > 0 && !pairLess(pairs[k-1], p) {
			t.Fatalf("pairs out of order at %d: %v then %v", k, pairs[k-1], p)
		}
	}
	if stats.Unique != len(pairs) {
		t.Fatalf("stats.Unique=%d, want %d", stats.Unique, len(pairs))
	}
	if stats.Emitted < stats.Unique {
		t.Fatalf("emitted %d < unique %d", stats.Emitted, stats.Unique)
	}
}

// TestEntropyPassesMatchLegacySNM pins the blocking layer to the legacy
// single-blocker path: Generate over EntropyPasses with one global window
// must reproduce dedup.SortedNeighborhood's candidate set exactly.
func TestEntropyPassesMatchLegacySNM(t *testing.T) {
	ds := testDataset(3, 100)
	for _, k := range []int{1, 3} {
		legacy := dedup.SortedNeighborhood(ds, dedup.MostUniqueAttrs(ds, k), 8)
		got, _ := Generate(ds, Config{Passes: EntropyPasses(ds, k), Window: 8, Workers: 4})
		if !reflect.DeepEqual(legacy, got) {
			t.Fatalf("k=%d: blocking SNM diverges from dedup.SortedNeighborhood (%d vs %d pairs)",
				k, len(got), len(legacy))
		}
	}
}

// TestBlockingEdgeCases covers the degenerate shapes: empty corpus, a
// single record, window larger than the dataset, and all-equal keys.
func TestBlockingEdgeCases(t *testing.T) {
	empty := &dedup.Dataset{Name: "empty", Attrs: []string{"a"}}
	pairs, stats := Generate(empty, Config{Passes: EntropyPasses(empty, 1), Trigram: &TrigramConfig{}, Workers: 4})
	if len(pairs) != 0 || stats.Unique != 0 {
		t.Fatalf("empty corpus produced %d pairs", len(pairs))
	}

	single := &dedup.Dataset{Name: "single", Attrs: []string{"a"}, Records: [][]string{{"x"}}, ClusterOf: []int{0}}
	pairs, _ = Generate(single, Config{Passes: EntropyPasses(single, 1), Trigram: &TrigramConfig{}, Workers: 4})
	if len(pairs) != 0 {
		t.Fatalf("single record produced %d pairs", len(pairs))
	}

	ds := testDataset(5, 10)
	n := len(ds.Records)
	all := n * (n - 1) / 2
	pairs, _ = Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: n + 50, Workers: 3})
	if len(pairs) != all {
		t.Fatalf("window > dataset: got %d pairs, want the full cross %d", len(pairs), all)
	}

	eq := &dedup.Dataset{Name: "equal", Attrs: []string{"a"}}
	for i := 0; i < 9; i++ {
		eq.Records = append(eq.Records, []string{"same"})
		eq.ClusterOf = append(eq.ClusterOf, i)
	}
	pairs, _ = Generate(eq, Config{Passes: EntropyPasses(eq, 1), Window: 4, Workers: 2})
	want, _ := GenerateSeq(eq, Config{Passes: EntropyPasses(eq, 1), Window: 4, Workers: 1})
	if !reflect.DeepEqual(want, pairs) {
		t.Fatalf("all-equal keys: parallel %v != sequential %v", pairs, want)
	}
}

// TestWindowClamp asserts windows below 2 clamp to 2 (a window of 1 emits
// nothing and would silently disable a pass).
func TestWindowClamp(t *testing.T) {
	ds := testDataset(9, 20)
	got, _ := Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: 1, Workers: 2})
	want, _ := Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: 2, Workers: 2})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("window=1 did not clamp to 2")
	}
}

// TestPerPassWindowOverride asserts Pass.Window wins over Config.Window.
func TestPerPassWindowOverride(t *testing.T) {
	ds := testDataset(13, 40)
	passes := EntropyPasses(ds, 1)
	passes[0].Window = 10
	got, stats := Generate(ds, Config{Passes: passes, Window: 2, Workers: 2})
	want, _ := Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: 10, Workers: 2})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("per-pass window override ignored")
	}
	if stats.SNMPasses[0].Window != 10 {
		t.Fatalf("stats window = %d, want 10", stats.SNMPasses[0].Window)
	}
}

// TestObserverCounters asserts the blocking_* family reaches the observer.
func TestObserverCounters(t *testing.T) {
	ds := testDataset(17, 60)
	obs := countObserver{}
	Generate(ds, Config{
		Passes:   EntropyPasses(ds, 2),
		Trigram:  &TrigramConfig{},
		Workers:  2,
		Observer: obs,
	})
	for _, c := range []string{"blocking_runs", "blocking_records", "blocking_snm_passes", "blocking_pairs_emitted", "blocking_pairs_unique"} {
		if obs[c] == 0 {
			t.Errorf("counter %s not reported", c)
		}
	}
	if obs["blocking_snm_passes"] != 2 {
		t.Errorf("blocking_snm_passes = %d, want 2", obs["blocking_snm_passes"])
	}
}

type countObserver map[string]int64

func (o countObserver) AddN(counter string, n int64) { o[counter] += n }

// TestRecallOnInjectedDuplicates: the multi-blocker configuration must
// cover nearly all injected duplicate pairs — the paper's "no true
// duplicates lost" claim at test scale.
func TestRecallOnInjectedDuplicates(t *testing.T) {
	ds := testDataset(23, 200)
	pairs, _ := Generate(ds, testConfig(ds, 4))
	if r := Recall(ds, pairs); r < 0.95 {
		t.Fatalf("recall %.3f < 0.95 on injected duplicates", r)
	}
}
