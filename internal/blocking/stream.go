// Streamed candidate generation — the bounded-memory emission mode of the
// blocking layer. Generate materializes every blocker's pair stream, then
// the sorted union, before downstream scoring sees a single pair; at full
// corpus scale that peak is what decides whether end-to-end dedup fits in
// RAM at all (cf. the clinical-note dedup study in PAPERS.md: block-then-
// score only pays off when the intermediate pair set never lands in memory
// at once). GenerateStream produces the exact same deduplicated, totally
// ordered candidate stream — bit-identical pairs and Stats — but yields it
// as bounded batches through a backpressured channel:
//
//   - each SNM pass becomes an O(records) iterator: after the parallel key
//     derivation and sort, the pass's pairs are enumerated directly in
//     (I, J) order by walking each record's sorted-neighborhood window
//     through the inverse permutation — the pass's full pair slice (window
//     × records entries in Generate) never exists;
//   - the trigram blocker's per-worker emission parts are chunk-sorted in
//     place and fed to the merge as independent sorted runs — the
//     concatenated slice Generate builds is skipped;
//   - a k-way merge with dedupe at the merge point drains all sources in
//     the global (I, J) total order, filling fixed-size batches that travel
//     through a channel of configurable capacity. The producer blocks when
//     the consumer falls behind, so pairs in flight are bounded by
//     (Buffer+1) × BatchSize regardless of corpus size.
//
// Determinism: every source enumerates a pure function of the dataset and
// configuration in a fixed order, and the merge comparator is the same
// total order Generate sorts under — so the emitted concatenation equals
// Generate's slice element for element at any worker count, enforced by
// the package tests and the testkit streaming oracle (`make stream-race`).

package blocking

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dedup"
)

// Default streaming parameters.
const (
	// DefaultStreamBatch is the pair count per emitted batch.
	DefaultStreamBatch = 4096
	// DefaultStreamBuffer is the channel capacity in batches.
	DefaultStreamBuffer = 4
)

// StreamOpts tunes GenerateStream's batch emission and backpressure.
type StreamOpts struct {
	// BatchSize is the pair count per emitted batch; 0 selects
	// DefaultStreamBatch, values below 1 clamp to 1.
	BatchSize int
	// Buffer is the emission channel's capacity in batches — together with
	// BatchSize it bounds the pairs in flight between producer and
	// consumer; 0 selects DefaultStreamBuffer, negative selects an
	// unbuffered channel (full lockstep).
	Buffer int
}

func (o StreamOpts) batchSize() int {
	if o.BatchSize == 0 {
		return DefaultStreamBatch
	}
	if o.BatchSize < 1 {
		return 1
	}
	return o.BatchSize
}

func (o StreamOpts) buffer() int {
	if o.Buffer == 0 {
		return DefaultStreamBuffer
	}
	if o.Buffer < 0 {
		return 0
	}
	return o.Buffer
}

// Stream is one running streamed blocking run. Batches arrive on C in
// strictly increasing (I, J) order with no pair repeated across batches;
// C closes after the last batch. Consumers that keep a batch past the next
// receive must copy it only if they also return it via Recycle — otherwise
// the batch is theirs.
type Stream struct {
	// C yields the candidate batches. Receive until closed.
	C <-chan []dedup.Pair

	done chan struct{}
	once sync.Once
	fin  chan struct{}

	pool sync.Pool

	// Written by the producer before fin closes.
	stats    Stats
	elapsed  time.Duration
	batches  int64
	backlog  int64
	canceled bool
}

// Stats blocks until the producer has finished (C closed or the run
// canceled) and returns the run's Stats — identical to what Generate
// returns for the same dataset and configuration. After Cancel the stats
// are partial and Unique reflects only the pairs emitted before the
// cancellation was observed.
func (s *Stream) Stats() Stats {
	<-s.fin
	return s.stats
}

// Elapsed blocks like Stats and returns the producer's wall time from
// GenerateStream to its last emission — including any time spent blocked
// on the channel waiting for the consumer.
func (s *Stream) Elapsed() time.Duration {
	<-s.fin
	return s.elapsed
}

// Cancel aborts the producer: it stops emitting, closes C and releases its
// goroutine. Safe to call multiple times and after completion.
func (s *Stream) Cancel() {
	s.once.Do(func() { close(s.done) })
}

// Recycle returns a fully consumed batch to the producer's buffer pool so
// steady-state emission reuses backing arrays instead of allocating one
// slice per batch. Optional; never pass a batch that is still being read.
func (s *Stream) Recycle(batch []dedup.Pair) {
	if batch == nil {
		return
	}
	s.pool.Put(batch[:0]) //nolint:staticcheck // slices are pointer-shaped
}

func (s *Stream) newBatch(size int) []dedup.Pair {
	if b, ok := s.pool.Get().([]dedup.Pair); ok && cap(b) >= size {
		return b[:0]
	}
	return make([]dedup.Pair, 0, size)
}

// GenerateStream runs the configured blockers sharded across cfg.Workers
// and emits the deduplicated union of their candidate pairs, sorted by
// (I, J), as bounded batches on the returned Stream. The concatenation of
// all batches — and the Stats — is bit-identical to Generate for any
// worker count, but the full union is never materialized: peak memory is
// O(records) per SNM pass plus the trigram blocker's own emissions plus
// the in-flight batches.
func GenerateStream(ds *dedup.Dataset, cfg Config, opts StreamOpts) *Stream {
	ch := make(chan []dedup.Pair, opts.buffer())
	s := &Stream{
		C:    ch,
		done: make(chan struct{}),
		fin:  make(chan struct{}),
	}
	go s.produce(ds, cfg, opts.batchSize(), ch)
	return s
}

// pairSource is one sorted pair run feeding the merge: head returns the
// current pair until the source is exhausted.
type pairSource interface {
	head() (dedup.Pair, bool)
	advance()
}

// chunkSource drains one pre-sorted pair slice. The slice reference is
// dropped on exhaustion so the garbage collector can reclaim finished
// chunks while the merge is still running.
type chunkSource struct {
	pairs []dedup.Pair
	i     int
}

func (c *chunkSource) head() (dedup.Pair, bool) {
	if c.i >= len(c.pairs) {
		return dedup.Pair{}, false
	}
	return c.pairs[c.i], true
}

func (c *chunkSource) advance() {
	c.i++
	if c.i >= len(c.pairs) {
		c.pairs = nil
		c.i = 0
	}
}

// snmSource enumerates one Sorted-Neighborhood pass's pairs directly in
// (I, J) order with O(records) state. Within a pass, pair {i, j} exists
// iff the sorted positions of i and j are within window-1 of each other;
// since every record holds exactly one position, walking records in
// ascending id and collecting each record's higher-id window partners
// (sorted) yields the pass's exact pair multiset — same pairs, same count
// as the materialized pass — without ever building it.
type snmSource struct {
	order  []int
	pos    []int
	window int
	n      int

	i   int   // current record id (the pair's I)
	buf []int // sorted higher-id partners of record i
	bi  int
	cur dedup.Pair
	ok  bool
}

// newSNMSource runs the pass's parallel key derivation and sort, builds
// the inverse permutation, and primes the iterator. pairs is the pass's
// total emission count — a pure function of the record count and window.
func newSNMSource(ds *dedup.Dataset, key dedup.KeyFunc, window, workers int) (src *snmSource, pairs int) {
	n := len(ds.Records)
	keys := make([]string, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = key(ds.Records[i])
		}
	})
	order := sortOrderParallel(keys, workers)
	pos := make([]int, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			pos[order[x]] = x
		}
	})
	for x := 0; x < n; x++ {
		w := window - 1
		if rest := n - 1 - x; rest < w {
			w = rest
		}
		pairs += w
	}
	src = &snmSource{order: order, pos: pos, window: window, n: n, i: -1, buf: make([]int, 0, 2*(window-1))}
	src.fill()
	return src, pairs
}

func (s *snmSource) head() (dedup.Pair, bool) { return s.cur, s.ok }

func (s *snmSource) advance() {
	s.bi++
	s.fill()
}

// fill advances to the next pair: the next buffered partner of the current
// record, else the first partner of the next record that has any.
func (s *snmSource) fill() {
	for s.bi >= len(s.buf) {
		s.i++
		if s.i >= s.n {
			s.ok = false
			s.order, s.pos, s.buf = nil, nil, nil
			return
		}
		p := s.pos[s.i]
		lo := p - (s.window - 1)
		if lo < 0 {
			lo = 0
		}
		hi := p + (s.window - 1)
		if hi > s.n-1 {
			hi = s.n - 1
		}
		s.buf = s.buf[:0]
		for y := lo; y <= hi; y++ {
			if y == p {
				continue
			}
			if j := s.order[y]; j > s.i {
				s.buf = append(s.buf, j)
			}
		}
		sort.Ints(s.buf)
		s.bi = 0
	}
	s.cur = dedup.Pair{I: s.i, J: s.buf[s.bi]}
	s.ok = true
}

// produce builds the pass sources, merges them and emits batches until the
// stream is drained or canceled.
func (s *Stream) produce(ds *dedup.Dataset, cfg Config, batchSize int, ch chan<- []dedup.Pair) {
	start := time.Now()
	workers := cfg.workers()
	stats := Stats{Records: len(ds.Records)}

	var srcs []pairSource
	for _, p := range cfg.Passes {
		w := cfg.window(p)
		src, pairs := newSNMSource(ds, p.Key, w, workers)
		stats.SNMPasses = append(stats.SNMPasses, PassStats{Name: p.Name, Window: w, Pairs: pairs})
		stats.Emitted += pairs
		if _, ok := src.head(); ok {
			srcs = append(srcs, src)
		}
	}
	if cfg.Trigram != nil {
		parts, bs := trigramParts(ds, *cfg.Trigram, workers)
		stats.Buckets = bs.buckets
		stats.OversizeBuckets = bs.oversize
		// Chunk-sort each per-worker part concurrently; each becomes one
		// sorted run of the merge, never concatenated.
		var wg sync.WaitGroup
		for _, part := range parts {
			stats.TrigramPairs += len(part)
			if len(part) == 0 {
				continue
			}
			wg.Add(1)
			go func(part []dedup.Pair) {
				defer wg.Done()
				sort.Slice(part, func(x, y int) bool { return pairLess(part[x], part[y]) })
			}(part)
			srcs = append(srcs, &chunkSource{pairs: part})
		}
		wg.Wait()
		stats.Emitted += stats.TrigramPairs
	}

	batch := s.newBatch(batchSize)
	var last dedup.Pair
	haveLast := false
	canceled := false
	emit := func() bool {
		if backlog := int64(len(ch)); backlog > s.backlog {
			s.backlog = backlog
		}
		select {
		case ch <- batch:
			s.batches++
			return true
		case <-s.done:
			return false
		}
	}
	for !canceled {
		best := -1
		var bestPair dedup.Pair
		for i, src := range srcs {
			p, ok := src.head()
			if !ok {
				continue
			}
			if best < 0 || pairLess(p, bestPair) {
				best, bestPair = i, p
			}
		}
		if best < 0 {
			break
		}
		srcs[best].advance()
		if haveLast && bestPair == last {
			continue
		}
		last, haveLast = bestPair, true
		stats.Unique++
		batch = append(batch, bestPair)
		if len(batch) == batchSize {
			if !emit() {
				canceled = true
				break
			}
			batch = s.newBatch(batchSize)
		}
	}
	if !canceled && len(batch) > 0 {
		canceled = !emit()
	}
	// Report before closing C: the channel close is the consumer's only
	// completion signal, so counters must be published before it fires.
	if cfg.Observer != nil && !canceled {
		report(cfg.Observer, stats)
		cfg.Observer.AddN("blocking_stream_batches", s.batches)
		cfg.Observer.AddN("blocking_stream_pairs", int64(stats.Unique))
		cfg.Observer.AddN("blocking_stream_peak_backlog", s.backlog)
	}
	close(ch)

	s.stats = stats
	s.canceled = canceled
	s.elapsed = time.Since(start)
	close(s.fin)
}
