package blocking

import (
	"strings"
	"testing"

	"repro/internal/dedup"
)

func specDataset() *dedup.Dataset {
	return &dedup.Dataset{
		Name:  "spec",
		Attrs: []string{"last_name", "first_name", "zip"},
		Records: [][]string{
			{"Miller", "James", "27601"},
			{"Muller", "Jim", "27601"},
		},
		ClusterOf: []int{0, 0},
	}
}

func TestParsePasses(t *testing.T) {
	ds := specDataset()
	passes, err := ParsePasses(ds, "last_name+zip, soundex(LAST_NAME), prefix(first_name,2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 {
		t.Fatalf("got %d passes, want 3", len(passes))
	}
	if got := passes[0].Key(ds.Records[0]); got != "Miller"+keySep+"27601" {
		t.Errorf("concat key = %q", got)
	}
	if got := passes[1].Key(ds.Records[0]); got != "M460" {
		t.Errorf("soundex key = %q, want M460", got)
	}
	if got := passes[2].Key(ds.Records[1]); got != "JI" {
		t.Errorf("prefix key = %q, want JI", got)
	}
	if passes[0].Name != "last_name+zip" {
		t.Errorf("pass name = %q", passes[0].Name)
	}
}

func TestParsePassesErrors(t *testing.T) {
	ds := specDataset()
	for _, spec := range []string{
		"",                      // empty spec
		"no_such_attr",          // unknown attribute
		"soundex(a,b)",          // wrong arity
		"prefix(last_name)",     // missing length
		"prefix(last_name,0)",   // non-positive length
		"prefix(last_name,x)",   // non-integer length
		"metaphone(last_name)",  // unknown function
		"soundex(no_such_attr)", // unknown attribute inside a function
	} {
		if _, err := ParsePasses(ds, spec); err == nil {
			t.Errorf("spec %q: expected an error", spec)
		}
	}
}

// TestConcatKeyBoundary: the component separator must keep "a"+"bc"
// distinct from "ab"+"c".
func TestConcatKeyBoundary(t *testing.T) {
	ds := &dedup.Dataset{
		Name:    "bound",
		Attrs:   []string{"x", "y"},
		Records: [][]string{{"a", "bc"}, {"ab", "c"}},
	}
	passes, err := ParsePasses(ds, "x+y")
	if err != nil {
		t.Fatal(err)
	}
	if passes[0].Key(ds.Records[0]) == passes[0].Key(ds.Records[1]) {
		t.Fatal("concatenation keys collide across attribute boundaries")
	}
}

func TestEntropyPassesNames(t *testing.T) {
	ds := specDataset()
	passes := EntropyPasses(ds, 2)
	if len(passes) != 2 {
		t.Fatalf("got %d passes, want 2", len(passes))
	}
	for _, p := range passes {
		found := false
		for _, a := range ds.Attrs {
			if p.Name == a {
				found = true
			}
		}
		if !found {
			t.Errorf("pass name %q is not an attribute name", p.Name)
		}
		if strings.TrimSpace(p.Name) == "" {
			t.Errorf("empty pass name")
		}
	}
	// Raw-value keys: no trimming, exactly the legacy sort key.
	rec := []string{" Miller ", "J", "1"}
	if got := passes[0].Key(rec); got != rec[dedup.MostUniqueAttrs(ds, 2)[0]] {
		t.Errorf("entropy pass key %q is not the raw value", got)
	}
}
