package blocking

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dedup"
)

// TestTrigramParallelMatchesSequential pins the banding blocker alone to
// its reference across the worker ladder.
func TestTrigramParallelMatchesSequential(t *testing.T) {
	ds := testDataset(31, 150)
	tc := TrigramConfig{Attrs: []int{0, 1}, Bands: 8, Rows: 3, MaxBucket: 48}
	cfg := Config{Trigram: &tc}
	wantPairs, wantStats := GenerateSeq(ds, cfg)
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		gotPairs, gotStats := Generate(ds, cfg)
		if !reflect.DeepEqual(wantPairs, gotPairs) {
			t.Fatalf("workers=%d: trigram pairs diverge (%d vs %d)", workers, len(gotPairs), len(wantPairs))
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("workers=%d: trigram stats diverge: %+v vs %+v", workers, gotStats, wantStats)
		}
	}
}

// TestTrigramSurvivesLeadingError is the blocker's reason to exist: a
// corrupted first character defeats a lexicographic SNM sort on that
// attribute, but the trigram signatures still collide.
func TestTrigramSurvivesLeadingError(t *testing.T) {
	ds := &dedup.Dataset{
		Name:  "leading",
		Attrs: []string{"last_name"},
	}
	// Two spellings of the same surname differing in the first character,
	// separated lexicographically by filler names between W and X.
	names := []string{"XILLIAMSON", "WOOD", "WOODS", "WORTH", "WRIGHT", "WU", "WYATT", "ADAMS", "BAKER", "CLARK", "WILLIAMSON"}
	for i, nm := range names {
		ds.Records = append(ds.Records, []string{nm})
		c := i
		if nm == "XILLIAMSON" || nm == "WILLIAMSON" {
			c = -1
		}
		ds.ClusterOf = append(ds.ClusterOf, c)
	}
	snmOnly, _ := Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: 3, Workers: 1})
	if Recall(ds, snmOnly) == 1 {
		t.Fatalf("test is vacuous: window-3 SNM already finds the leading-error pair")
	}
	withTrigram, _ := Generate(ds, Config{
		Passes:  EntropyPasses(ds, 1),
		Window:  3,
		Trigram: &TrigramConfig{Attrs: []int{0}},
		Workers: 1,
	})
	if r := Recall(ds, withTrigram); r != 1 {
		t.Fatalf("trigram banding missed the leading-error duplicate (recall %.3f)", r)
	}
}

// TestTrigramEmptyValuesNotBlocked: records whose signature attributes are
// all empty must not bucket together (they would form one giant cluster of
// unrelated records).
func TestTrigramEmptyValuesNotBlocked(t *testing.T) {
	ds := &dedup.Dataset{Name: "empties", Attrs: []string{"a", "b"}}
	for i := 0; i < 10; i++ {
		ds.Records = append(ds.Records, []string{"", "  "})
		ds.ClusterOf = append(ds.ClusterOf, i)
	}
	pairs, stats := Generate(ds, Config{Trigram: &TrigramConfig{}, Workers: 2})
	if len(pairs) != 0 {
		t.Fatalf("%d pairs from all-empty signature values", len(pairs))
	}
	if stats.Buckets != 0 {
		t.Fatalf("%d buckets from all-empty signature values", stats.Buckets)
	}
}

// TestTrigramMaxBucketCap: a value shared by more records than MaxBucket
// must be skipped and counted, not exploded into its quadratic pair set.
func TestTrigramMaxBucketCap(t *testing.T) {
	ds := &dedup.Dataset{Name: "cap", Attrs: []string{"a"}}
	for i := 0; i < 20; i++ {
		ds.Records = append(ds.Records, []string{"IDENTICAL VALUE"})
		ds.ClusterOf = append(ds.ClusterOf, i)
	}
	pairs, stats := Generate(ds, Config{Trigram: &TrigramConfig{MaxBucket: 5}, Workers: 2})
	if len(pairs) != 0 {
		t.Fatalf("capped bucket still emitted %d pairs", len(pairs))
	}
	if stats.OversizeBuckets == 0 {
		t.Fatal("oversize bucket not counted")
	}
	// Negative disables the cap: the full quadratic set appears.
	pairs, _ = Generate(ds, Config{Trigram: &TrigramConfig{MaxBucket: -1}, Workers: 2})
	if want := 20 * 19 / 2; len(pairs) != want {
		t.Fatalf("uncapped identical bucket: got %d pairs, want %d", len(pairs), want)
	}
}

// TestTrigramSeedVariesBuckets: different seeds select different minhash
// families; identical values must still collide under any seed.
func TestTrigramSeedVariesBuckets(t *testing.T) {
	ds := testDataset(41, 60)
	a, _ := Generate(ds, Config{Trigram: &TrigramConfig{Seed: 1}, Workers: 2})
	b, _ := Generate(ds, Config{Trigram: &TrigramConfig{Seed: 1}, Workers: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different worker count: pair sets diverge")
	}
}
