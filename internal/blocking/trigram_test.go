package blocking

import (
	"hash/fnv"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dedup"
	"repro/internal/simil"
)

// TestTrigramParallelMatchesSequential pins the banding blocker alone to
// its reference across the worker ladder.
func TestTrigramParallelMatchesSequential(t *testing.T) {
	ds := testDataset(31, 150)
	tc := TrigramConfig{Attrs: []int{0, 1}, Bands: 8, Rows: 3, MaxBucket: 48}
	cfg := Config{Trigram: &tc}
	wantPairs, wantStats := GenerateSeq(ds, cfg)
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		gotPairs, gotStats := Generate(ds, cfg)
		if !reflect.DeepEqual(wantPairs, gotPairs) {
			t.Fatalf("workers=%d: trigram pairs diverge (%d vs %d)", workers, len(gotPairs), len(wantPairs))
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("workers=%d: trigram stats diverge: %+v vs %+v", workers, gotStats, wantStats)
		}
	}
}

// TestTrigramSurvivesLeadingError is the blocker's reason to exist: a
// corrupted first character defeats a lexicographic SNM sort on that
// attribute, but the trigram signatures still collide.
func TestTrigramSurvivesLeadingError(t *testing.T) {
	ds := &dedup.Dataset{
		Name:  "leading",
		Attrs: []string{"last_name"},
	}
	// Two spellings of the same surname differing in the first character,
	// separated lexicographically by filler names between W and X.
	names := []string{"XILLIAMSON", "WOOD", "WOODS", "WORTH", "WRIGHT", "WU", "WYATT", "ADAMS", "BAKER", "CLARK", "WILLIAMSON"}
	for i, nm := range names {
		ds.Records = append(ds.Records, []string{nm})
		c := i
		if nm == "XILLIAMSON" || nm == "WILLIAMSON" {
			c = -1
		}
		ds.ClusterOf = append(ds.ClusterOf, c)
	}
	snmOnly, _ := Generate(ds, Config{Passes: EntropyPasses(ds, 1), Window: 3, Workers: 1})
	if Recall(ds, snmOnly) == 1 {
		t.Fatalf("test is vacuous: window-3 SNM already finds the leading-error pair")
	}
	withTrigram, _ := Generate(ds, Config{
		Passes:  EntropyPasses(ds, 1),
		Window:  3,
		Trigram: &TrigramConfig{Attrs: []int{0}},
		Workers: 1,
	})
	if r := Recall(ds, withTrigram); r != 1 {
		t.Fatalf("trigram banding missed the leading-error duplicate (recall %.3f)", r)
	}
}

// TestTrigramEmptyValuesNotBlocked: records whose signature attributes are
// all empty must not bucket together (they would form one giant cluster of
// unrelated records).
func TestTrigramEmptyValuesNotBlocked(t *testing.T) {
	ds := &dedup.Dataset{Name: "empties", Attrs: []string{"a", "b"}}
	for i := 0; i < 10; i++ {
		ds.Records = append(ds.Records, []string{"", "  "})
		ds.ClusterOf = append(ds.ClusterOf, i)
	}
	pairs, stats := Generate(ds, Config{Trigram: &TrigramConfig{}, Workers: 2})
	if len(pairs) != 0 {
		t.Fatalf("%d pairs from all-empty signature values", len(pairs))
	}
	if stats.Buckets != 0 {
		t.Fatalf("%d buckets from all-empty signature values", stats.Buckets)
	}
}

// TestTrigramMaxBucketCap: a value shared by more records than MaxBucket
// must be skipped and counted, not exploded into its quadratic pair set.
func TestTrigramMaxBucketCap(t *testing.T) {
	ds := &dedup.Dataset{Name: "cap", Attrs: []string{"a"}}
	for i := 0; i < 20; i++ {
		ds.Records = append(ds.Records, []string{"IDENTICAL VALUE"})
		ds.ClusterOf = append(ds.ClusterOf, i)
	}
	pairs, stats := Generate(ds, Config{Trigram: &TrigramConfig{MaxBucket: 5}, Workers: 2})
	if len(pairs) != 0 {
		t.Fatalf("capped bucket still emitted %d pairs", len(pairs))
	}
	if stats.OversizeBuckets == 0 {
		t.Fatal("oversize bucket not counted")
	}
	// Negative disables the cap: the full quadratic set appears.
	pairs, _ = Generate(ds, Config{Trigram: &TrigramConfig{MaxBucket: -1}, Workers: 2})
	if want := 20 * 19 / 2; len(pairs) != want {
		t.Fatalf("uncapped identical bucket: got %d pairs, want %d", len(pairs), want)
	}
}

// TestTrigramSeedVariesBuckets: different seeds select different minhash
// families; identical values must still collide under any seed.
func TestTrigramSeedVariesBuckets(t *testing.T) {
	ds := testDataset(41, 60)
	a, _ := Generate(ds, Config{Trigram: &TrigramConfig{Seed: 1}, Workers: 2})
	b, _ := Generate(ds, Config{Trigram: &TrigramConfig{Seed: 1}, Workers: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different worker count: pair sets diverge")
	}
}

// bandKeysRef is the allocating reference signature: strings.ToLower +
// simil.QGrams + hash/fnv, the implementation bandKeysInto replaced. The
// scratch path must reproduce it bit for bit.
func bandKeysRef(rec []string, attrs []int, bands, rows int, mul, add []uint64) []uint64 {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = strings.ToLower(strings.TrimSpace(rec[a]))
	}
	text := strings.Join(parts, "\x1f")
	grams := simil.QGrams(text, 3)
	if len(grams) == 0 || strings.Trim(text, "\x1f") == "" {
		return nil
	}
	k := bands * rows
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, g := range grams {
		h := fnv.New64a()
		h.Write([]byte(g))
		gh := h.Sum64()
		for i := 0; i < k; i++ {
			if v := gh*mul[i] + add[i]; v < sig[i] {
				sig[i] = v
			}
		}
	}
	keys := make([]uint64, bands)
	for b := 0; b < bands; b++ {
		acc := uint64(1469598103934665603)
		for r := 0; r < rows; r++ {
			v := sig[b*rows+r]
			for s := 0; s < 64; s += 8 {
				acc ^= (v >> s) & 0xff
				acc *= 1099511628211
			}
		}
		keys[b] = acc
	}
	return keys
}

// TestBandKeysMatchReference pins the zero-alloc signature path to the
// allocating reference over the shapes that stress its byte handling:
// unicode lowering, invalid UTF-8 (U+FFFD replacement), whitespace
// trimming, separator-only and sub-trigram-length texts.
func TestBandKeysMatchReference(t *testing.T) {
	records := [][]string{
		{"MILLER", "JAMES"},
		{"  miller  ", "james"},
		{"GARCÍA", "JOSÉ"},                   // non-ASCII lowering
		{"ŐRSÉG", "ÅSA"},                     // multi-byte upper -> lower
		{"\xff\xfebad", "utf8"},              // invalid UTF-8 -> U+FFFD
		{"", ""},                             // empty -> nil keys
		{"  ", "\t"},                         // whitespace-only -> nil keys
		{"ab", ""},                           // fewer runes than a trigram
		{"a", "b"},                           // separator inside the only gram
		{"İstanbul", "ışık"},                 // dotted/dotless i
		{"ẞHARP", "ß"},                       // U+1E9E lowers to ß
		{"same\x1fvalue", "embedded\x1fsep"}, // sep bytes inside the data
	}
	attrs := []int{0, 1}
	for _, shape := range []struct{ bands, rows int }{{8, 4}, {6, 3}, {1, 1}} {
		mul, add := minhashParams(shape.bands*shape.rows, 7)
		sc := &trigramScratch{}
		for _, rec := range records {
			want := bandKeysRef(rec, attrs, shape.bands, shape.rows, mul, add)
			got := bandKeysInto(rec, attrs, shape.bands, shape.rows, mul, add, sc)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, append([]uint64(nil), got...)) {
				t.Errorf("%dx%d %q: scratch keys %v != reference %v", shape.bands, shape.rows, rec, got, want)
			}
		}
	}
}

// TestTrigramSignatureZeroAlloc: after warm-up, computing a record's band
// keys into a reused scratch performs no heap allocations.
func TestTrigramSignatureZeroAlloc(t *testing.T) {
	ds := testDataset(43, 40)
	attrs := []int{0, 1}
	mul, add := minhashParams(DefaultBands*DefaultRows, 0)
	sc := &trigramScratch{}
	for _, rec := range ds.Records { // warm-up: grow the scratch buffers
		bandKeysInto(rec, attrs, DefaultBands, DefaultRows, mul, add, sc)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		bandKeysInto(ds.Records[i%len(ds.Records)], attrs, DefaultBands, DefaultRows, mul, add, sc)
		i++
	})
	if allocs != 0 {
		t.Fatalf("bandKeysInto allocates %.1f/record steady-state, want 0", allocs)
	}
}

// BenchmarkTrigramSignature measures the steady-state per-record signature
// cost; run with -benchmem to see the 0 allocs/record the satellite task
// demands.
func BenchmarkTrigramSignature(b *testing.B) {
	ds := testDataset(47, 200)
	attrs := []int{0, 1}
	mul, add := minhashParams(DefaultBands*DefaultRows, 0)
	sc := &trigramScratch{}
	for _, rec := range ds.Records {
		bandKeysInto(rec, attrs, DefaultBands, DefaultRows, mul, add, sc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bandKeysInto(ds.Records[i%len(ds.Records)], attrs, DefaultBands, DefaultRows, mul, add, sc)
	}
}
