package blocking

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dedup"
)

// collect drains a stream into one slice, optionally recycling batches.
func collect(t *testing.T, s *Stream, recycle bool) ([]dedup.Pair, []int) {
	t.Helper()
	var pairs []dedup.Pair
	var sizes []int
	for batch := range s.C {
		pairs = append(pairs, batch...)
		sizes = append(sizes, len(batch))
		if recycle {
			s.Recycle(batch)
		}
	}
	return pairs, sizes
}

// TestStreamMatchesSequential is the streaming differential: the
// concatenated batches and the Stats must equal GenerateSeq bit for bit at
// every ladder worker count and across batch-size/buffer shapes.
func TestStreamMatchesSequential(t *testing.T) {
	ds := testDataset(7, 120)
	wantPairs, wantStats := GenerateSeq(ds, testConfig(ds, 1))
	shapes := []StreamOpts{
		{},
		{BatchSize: 1},
		{BatchSize: 3, Buffer: -1},
		{BatchSize: 4096, Buffer: 16},
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		for _, opts := range shapes {
			s := GenerateStream(ds, testConfig(ds, workers), opts)
			gotPairs, sizes := collect(t, s, true)
			if !reflect.DeepEqual(wantPairs, gotPairs) {
				t.Fatalf("workers=%d opts=%+v: stream diverges from sequential reference (%d vs %d pairs)",
					workers, opts, len(gotPairs), len(wantPairs))
			}
			if got := s.Stats(); !reflect.DeepEqual(wantStats, got) {
				t.Fatalf("workers=%d opts=%+v: stats diverge: %+v vs %+v", workers, opts, got, wantStats)
			}
			want := opts.batchSize()
			for k, n := range sizes {
				if n > want || n == 0 {
					t.Fatalf("batch %d has %d pairs, want 1..%d", k, n, want)
				}
				if k < len(sizes)-1 && n != want {
					t.Fatalf("non-final batch %d has %d pairs, want exactly %d", k, n, want)
				}
			}
			if s.Elapsed() <= 0 {
				t.Fatalf("Elapsed() = %v, want > 0", s.Elapsed())
			}
		}
	}
}

// TestStreamEmptyDataset: an empty corpus closes C without a batch and
// still reports the pass structure in Stats.
func TestStreamEmptyDataset(t *testing.T) {
	empty := &dedup.Dataset{Name: "empty", Attrs: []string{"a"}}
	cfg := Config{Passes: EntropyPasses(empty, 1), Trigram: &TrigramConfig{}, Workers: 4}
	s := GenerateStream(empty, cfg, StreamOpts{})
	pairs, sizes := collect(t, s, false)
	if len(pairs) != 0 || len(sizes) != 0 {
		t.Fatalf("empty corpus emitted %d batches / %d pairs", len(sizes), len(pairs))
	}
	_, wantStats := GenerateSeq(empty, cfg)
	if got := s.Stats(); !reflect.DeepEqual(wantStats, got) {
		t.Fatalf("stats diverge on empty corpus: %+v vs %+v", got, wantStats)
	}
}

// TestStreamCancel: Cancel mid-stream unblocks the producer and closes C.
func TestStreamCancel(t *testing.T) {
	ds := testDataset(11, 200)
	s := GenerateStream(ds, testConfig(ds, 2), StreamOpts{BatchSize: 8, Buffer: -1})
	first, ok := <-s.C
	if !ok || len(first) == 0 {
		t.Fatal("no first batch before cancel")
	}
	s.Cancel()
	s.Cancel() // idempotent
	for range s.C {
	}
	if got := s.Stats(); got.Unique == 0 {
		t.Fatalf("partial stats lost after cancel: %+v", got)
	}
}

// TestStreamObserverCounters: a completed stream reports the blocking_*
// family plus the blocking_stream_* extension.
func TestStreamObserverCounters(t *testing.T) {
	ds := testDataset(17, 60)
	obs := countObserver{}
	cfg := testConfig(ds, 2)
	cfg.Observer = obs
	s := GenerateStream(ds, cfg, StreamOpts{BatchSize: 64})
	pairs, sizes := collect(t, s, false)
	if obs["blocking_stream_batches"] != int64(len(sizes)) {
		t.Errorf("blocking_stream_batches = %d, want %d", obs["blocking_stream_batches"], len(sizes))
	}
	if obs["blocking_stream_pairs"] != int64(len(pairs)) {
		t.Errorf("blocking_stream_pairs = %d, want %d", obs["blocking_stream_pairs"], len(pairs))
	}
	if obs["blocking_pairs_unique"] != int64(len(pairs)) {
		t.Errorf("blocking_pairs_unique = %d, want %d", obs["blocking_pairs_unique"], len(pairs))
	}
	if obs["blocking_runs"] != 1 {
		t.Errorf("blocking_runs = %d, want 1", obs["blocking_runs"])
	}
}

// TestStreamBackpressure: with an unbuffered channel and a slow consumer,
// the producer never runs ahead — peak backlog stays 0 and every batch but
// the last is exactly full.
func TestStreamBackpressure(t *testing.T) {
	ds := testDataset(5, 80)
	s := GenerateStream(ds, testConfig(ds, 2), StreamOpts{BatchSize: 16, Buffer: -1})
	n := 0
	for batch := range s.C {
		n += len(batch)
		s.Recycle(batch)
	}
	s.Stats()
	if s.backlog != 0 {
		t.Fatalf("unbuffered stream recorded backlog %d, want 0", s.backlog)
	}
	if want, _ := GenerateSeq(ds, testConfig(ds, 1)); n != len(want) {
		t.Fatalf("drained %d pairs, want %d", n, len(want))
	}
}

// TestSNMSourceMatchesPass: the windowed iterator must enumerate exactly
// the materialized pass's pair multiset (deduped + sorted on both sides),
// and its pair count must equal the pass emission count.
func TestSNMSourceMatchesPass(t *testing.T) {
	ds := testDataset(29, 90)
	for _, pass := range EntropyPasses(ds, 3) {
		for _, window := range []int{2, 6, 20, len(ds.Records) + 5} {
			want := snmPassSeq(ds, pass.Key, window)
			wantSorted := sortDedupeParallel(append([]dedup.Pair(nil), want...), 1)

			src, pairs := newSNMSource(ds, pass.Key, window, 3)
			if pairs != len(want) {
				t.Fatalf("pass %q window %d: count %d, want %d", pass.Name, window, pairs, len(want))
			}
			var got []dedup.Pair
			for {
				p, ok := src.head()
				if !ok {
					break
				}
				got = append(got, p)
				src.advance()
			}
			// The iterator emits each pair once in sorted order; the
			// materialized pass cannot repeat a pair within one pass, so
			// its sorted dedupe is the same set.
			if !reflect.DeepEqual(wantSorted, got) {
				t.Fatalf("pass %q window %d: iterator diverges (%d vs %d pairs)",
					pass.Name, window, len(got), len(wantSorted))
			}
			for k := 1; k < len(got); k++ {
				if !pairLess(got[k-1], got[k]) {
					t.Fatalf("pass %q: iterator out of order at %d: %v then %v",
						pass.Name, k, got[k-1], got[k])
				}
			}
		}
	}
}
