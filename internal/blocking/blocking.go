// Package blocking is the candidate-generation layer of the detection
// pipeline: it decides which record pairs the §6.5 scoring engine ever
// sees. The paper validates its generated NC datasets with multi-pass
// Sorted Neighborhood blocking — one pass per sorting key, window w = 20 —
// and reports that the reduction loses no true duplicates; at the paper's
// 507 M-row framing, candidate generation (not pair scoring) is the cost
// that decides whether full-corpus deduplication is feasible at all.
//
// Two pluggable blockers produce candidates:
//
//   - multi-pass SNM (snm.go): one Pass per sorting key — attribute
//     values, concatenations, phonetic codes, prefixes — each sliding a
//     window over the key-sorted order (the paper's own validation setup,
//     e.g. lastname+zip, firstname+age, Soundex keys);
//   - trigram/minhash banding (trigram.go): an LSH-style blocker for noisy
//     fields, where SNM's lexicographic sort is brittle against leading-
//     character errors. Records whose trigram-set minhash signatures agree
//     on any band land in the same bucket.
//
// Generate runs every configured blocker with each stage sharded across
// workers, then unions the per-blocker pair streams with the same
// deterministic sort+dedupe merge discipline as the ingest pipeline —
// downstream scoring sees each candidate pair exactly once, in sorted
// (I, J) order, and the result is bit-identical to the sequential
// reference GenerateSeq for any worker count (enforced under -race by the
// testkit differential oracle, `make blocking-race`).
package blocking

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/dedup"
)

// Observer receives the layer's counters (the blocking_pipeline_total
// family). *obs.Metrics satisfies it; blocking stays import-free of obs
// the same way core and dedup do through their observer interfaces.
type Observer interface {
	AddN(counter string, n int64)
}

// Pass is one Sorted-Neighborhood pass: records are sorted by Key and
// every pair within the sliding window becomes a candidate.
type Pass struct {
	// Name labels the pass in stats, benchmarks and metrics.
	Name string
	// Key derives the sorting key from a record's attribute values.
	Key dedup.KeyFunc
	// Window overrides Config.Window for this pass when > 0.
	Window int
}

// TrigramConfig parameterizes the minhash banding blocker. The signature
// of a record is Bands×Rows minhashes over the trigram set of its
// configured attributes; two records become candidates when all Rows
// minhashes of at least one band agree. More rows per band make a band
// match stricter (higher precision), more bands give a noisy duplicate
// more chances to collide (higher recall).
type TrigramConfig struct {
	// Attrs are the attribute indices whose lower-cased values are
	// concatenated into the signature text. Empty selects the dataset's
	// name attributes, falling back to all attributes.
	Attrs []int
	// Bands and Rows shape the signature; 0 selects the defaults (8×4).
	Bands, Rows int
	// MaxBucket caps a bucket's record count to bound the quadratic pair
	// blow-up of giant buckets; 0 selects the default (64), negative
	// disables the cap.
	MaxBucket int
	// Seed varies the minhash function family; the default 0 is fine.
	Seed uint64
}

// Default trigram-banding parameters.
const (
	DefaultBands     = 8
	DefaultRows      = 4
	DefaultMaxBucket = 64
	// DefaultWindow is the paper's SNM window (§6.5, w = 20).
	DefaultWindow = 20
)

// Config selects and tunes the blockers of one Generate run.
type Config struct {
	// Passes are the SNM passes; empty disables the SNM blocker.
	Passes []Pass
	// Window is the SNM window size for passes without their own;
	// 0 selects DefaultWindow, values below 2 clamp to 2.
	Window int
	// Trigram enables the minhash banding blocker when non-nil.
	Trigram *TrigramConfig
	// Workers shards every stage; <= 0 selects GOMAXPROCS, 1 runs the
	// parallel path on one worker (GenerateSeq is the independent
	// sequential reference, not this).
	Workers int
	// Observer, when set, receives the blocking_* counters after the run.
	Observer Observer
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) window(p Pass) int {
	w := p.Window
	if w == 0 {
		w = c.Window
	}
	if w == 0 {
		w = DefaultWindow
	}
	if w < 2 {
		w = 2
	}
	return w
}

// PassStats is one pass's share of the candidate stream, before the
// cross-pass deduplication.
type PassStats struct {
	Name   string
	Window int
	Pairs  int
}

// Stats describes one Generate run. Every field is a pure function of the
// dataset and the configuration — never of the worker count — so the
// differential oracle compares stats alongside the pair set.
type Stats struct {
	Records int
	// SNMPasses has one entry per configured pass, in pass order.
	SNMPasses []PassStats
	// TrigramPairs counts the banding blocker's emissions (pre-dedupe);
	// Buckets counts occupied (band, hash) buckets with >= 2 records, of
	// which OversizeBuckets were skipped under MaxBucket.
	TrigramPairs    int
	Buckets         int
	OversizeBuckets int
	// Emitted is the total pre-dedupe candidate stream; Unique is the
	// final pair count after the sort+dedupe merge.
	Emitted int
	Unique  int
}

// Generate runs the configured blockers sharded across cfg.Workers and
// returns the deduplicated union of their candidate pairs, sorted by
// (I, J). The result — pairs and stats — is bit-identical to GenerateSeq
// for any worker count.
func Generate(ds *dedup.Dataset, cfg Config) ([]dedup.Pair, Stats) {
	workers := cfg.workers()
	stats := Stats{Records: len(ds.Records)}
	var streams [][]dedup.Pair
	for _, p := range cfg.Passes {
		w := cfg.window(p)
		pairs := snmPassParallel(ds, p.Key, w, workers)
		stats.SNMPasses = append(stats.SNMPasses, PassStats{Name: p.Name, Window: w, Pairs: len(pairs)})
		streams = append(streams, pairs)
	}
	if cfg.Trigram != nil {
		pairs, bs := trigramParallel(ds, *cfg.Trigram, workers)
		stats.TrigramPairs = len(pairs)
		stats.Buckets = bs.buckets
		stats.OversizeBuckets = bs.oversize
		streams = append(streams, pairs)
	}
	pairs := mergeStreams(streams, workers)
	for _, s := range streams {
		stats.Emitted += len(s)
	}
	stats.Unique = len(pairs)
	report(cfg.Observer, stats)
	return pairs, stats
}

// GenerateSeq is the sequential reference: the same blockers implemented
// with plain loops and a seen-set union, no pools, no merges. The testkit
// differential oracle pins Generate to it bit for bit.
func GenerateSeq(ds *dedup.Dataset, cfg Config) ([]dedup.Pair, Stats) {
	stats := Stats{Records: len(ds.Records)}
	var all []dedup.Pair
	for _, p := range cfg.Passes {
		w := cfg.window(p)
		pairs := snmPassSeq(ds, p.Key, w)
		stats.SNMPasses = append(stats.SNMPasses, PassStats{Name: p.Name, Window: w, Pairs: len(pairs)})
		all = append(all, pairs...)
	}
	if cfg.Trigram != nil {
		pairs, bs := trigramSeq(ds, *cfg.Trigram)
		stats.TrigramPairs = len(pairs)
		stats.Buckets = bs.buckets
		stats.OversizeBuckets = bs.oversize
		all = append(all, pairs...)
	}
	stats.Emitted = len(all)
	sort.Slice(all, func(x, y int) bool {
		if all[x].I != all[y].I {
			return all[x].I < all[y].I
		}
		return all[x].J < all[y].J
	})
	out := all[:0]
	for i, p := range all {
		if i == 0 || p != all[i-1] {
			out = append(out, p)
		}
	}
	stats.Unique = len(out)
	report(cfg.Observer, stats)
	return out, stats
}

// report exports a run's counters as the blocking_pipeline_total family.
func report(obs Observer, s Stats) {
	if obs == nil {
		return
	}
	obs.AddN("blocking_runs", 1)
	obs.AddN("blocking_records", int64(s.Records))
	obs.AddN("blocking_snm_passes", int64(len(s.SNMPasses)))
	for _, p := range s.SNMPasses {
		obs.AddN("blocking_snm_pairs", int64(p.Pairs))
	}
	obs.AddN("blocking_trigram_pairs", int64(s.TrigramPairs))
	obs.AddN("blocking_trigram_buckets", int64(s.Buckets))
	obs.AddN("blocking_trigram_oversize_buckets", int64(s.OversizeBuckets))
	obs.AddN("blocking_pairs_emitted", int64(s.Emitted))
	obs.AddN("blocking_pairs_unique", int64(s.Unique))
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn on each concurrently. The split depends only on n and workers,
// so index-addressed writes are deterministic.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mergeStreams unions the blockers' pair streams into one sorted,
// deduplicated slice: the streams are concatenated (stream order is part
// of the configuration, not the schedule), chunk-sorted across workers and
// k-way merged with duplicates dropped at the merge point — the same
// sort+dedupe merge discipline as the ingest pipeline's cluster merge.
func mergeStreams(streams [][]dedup.Pair, workers int) []dedup.Pair {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	all := make([]dedup.Pair, 0, total)
	for _, s := range streams {
		all = append(all, s...)
	}
	return sortDedupeParallel(all, workers)
}

// pairLess is the total order every sort and merge of the package uses.
func pairLess(a, b dedup.Pair) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// sortDedupeParallel sorts pairs by (I, J) and drops duplicates: the slice
// is split into one chunk per worker, each chunk sorted concurrently, and
// the sorted chunks k-way merged on the calling goroutine. The comparator
// is a total order (no two distinct elements compare equal without being
// equal), so the output is independent of the chunking and the schedule.
func sortDedupeParallel(pairs []dedup.Pair, workers int) []dedup.Pair {
	n := len(pairs)
	if n == 0 {
		return pairs[:0]
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sort.Slice(pairs, func(x, y int) bool { return pairLess(pairs[x], pairs[y]) })
		w := 0
		for i, p := range pairs {
			if i == 0 || p != pairs[w-1] {
				pairs[w] = p
				w++
			}
		}
		return pairs[:w]
	}

	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		chunks = append(chunks, chunk{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			part := pairs[lo:hi]
			sort.Slice(part, func(x, y int) bool { return pairLess(part[x], part[y]) })
		}(lo, hi)
	}
	wg.Wait()

	// K-way merge with dedupe at the merge point. K is the worker count,
	// so the linear scan over chunk heads stays cheap.
	heads := make([]int, len(chunks))
	out := make([]dedup.Pair, 0, n)
	for {
		best := -1
		for c := range chunks {
			if heads[c] >= chunks[c].hi-chunks[c].lo {
				continue
			}
			if best < 0 || pairLess(pairs[chunks[c].lo+heads[c]], pairs[chunks[best].lo+heads[best]]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		p := pairs[chunks[best].lo+heads[best]]
		heads[best]++
		if len(out) == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
