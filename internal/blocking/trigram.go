// The trigram/minhash banding blocker — the LSH-style complement to SNM
// for noisy fields (cf. "Unsupervised record matching with noisy and
// incomplete data", PAPERS.md). A record's signature is Bands×Rows
// minhashes over the trigram set of its configured attributes; each band's
// row values hash into a bucket key, and every bucket with 2..MaxBucket
// members emits its pairs. A single corrupted leading character — fatal to
// a lexicographic SNM sort — changes only a few trigrams, so the minhash
// rows still collide with high probability.
//
// Every per-record computation (trigram set, signature, band keys) is a
// pure function of the record and the config, and bucket grouping sorts
// band entries under a total order before scanning runs — so the parallel
// blocker is bit-identical to the sequential one for any worker count.

package blocking

import (
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"repro/internal/dedup"
)

func (tc TrigramConfig) bands() int {
	if tc.Bands <= 0 {
		return DefaultBands
	}
	return tc.Bands
}

func (tc TrigramConfig) rows() int {
	if tc.Rows <= 0 {
		return DefaultRows
	}
	return tc.Rows
}

func (tc TrigramConfig) maxBucket() int {
	switch {
	case tc.MaxBucket == 0:
		return DefaultMaxBucket
	case tc.MaxBucket < 0:
		return int(^uint(0) >> 1)
	}
	return tc.MaxBucket
}

// attrs resolves the signature attributes: configured indices, else the
// dataset's name attributes, else every attribute.
func (tc TrigramConfig) attrs(ds *dedup.Dataset) []int {
	if len(tc.Attrs) > 0 {
		return tc.Attrs
	}
	if len(ds.NameAttrs) > 0 {
		return ds.NameAttrs
	}
	all := make([]int, len(ds.Attrs))
	for i := range all {
		all[i] = i
	}
	return all
}

// bucketStats counts the grouping outcome: buckets with at least two
// members, and how many of those the MaxBucket cap skipped.
type bucketStats struct {
	buckets  int
	oversize int
}

// bandEntry is one record's membership in one band bucket. Sorting entries
// by (band, hash, rec) groups bucket members into contiguous runs.
type bandEntry struct {
	band int32
	hash uint64
	rec  int32
}

func bandEntryLess(a, b bandEntry) bool {
	if a.band != b.band {
		return a.band < b.band
	}
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.rec < b.rec
}

// sigSep separates attribute values inside the signature text — a byte
// that cannot occur in TSV data, so attribute boundaries stay visible to
// the trigram set.
const sigSep = 0x1f

// FNV-1a parameters, inlined so gram hashing needs no hash.Hash allocation
// (bit-identical to hash/fnv's New64a over the same bytes).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// trigramScratch is one worker's reusable signature state: the lowered
// signature text, its rune-start offsets, and the minhash/band-key buffers.
// Reusing it across records keeps the per-record signature computation at
// zero heap allocations steady-state (BenchmarkTrigramSignature).
type trigramScratch struct {
	text   []byte  // lowered signature text of the current record
	starts []int32 // byte offset of each rune start in text
	sig    []uint64
	keys   []uint64
}

// appendLower appends the lower-cased runes of s to the scratch text,
// recording rune starts. The byte output is identical to
// strings.ToLower(s): ASCII lowers in place, everything else maps through
// unicode.ToLower, and invalid UTF-8 bytes become U+FFFD — exactly the
// replacement strings.Map performs.
func (sc *trigramScratch) appendLower(s string) {
	for _, r := range s {
		sc.starts = append(sc.starts, int32(len(sc.text)))
		if r < utf8.RuneSelf {
			b := byte(r)
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			sc.text = append(sc.text, b)
		} else {
			sc.text = utf8.AppendRune(sc.text, unicode.ToLower(r))
		}
	}
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// bandKeysInto computes one record's band bucket keys into the scratch:
// minhash signature over the trigram set of the lowered signature text,
// then one FNV-1a fold per band of that band's rows. A record whose
// signature text yields no trigrams returns nil — blocking it would collide
// every empty record with every other. The returned slice aliases the
// scratch and is only valid until the next call.
func bandKeysInto(rec []string, attrs []int, bands, rows int, mul, add []uint64, sc *trigramScratch) []uint64 {
	sc.text = sc.text[:0]
	sc.starts = sc.starts[:0]
	for i, a := range attrs {
		if i > 0 {
			sc.starts = append(sc.starts, int32(len(sc.text)))
			sc.text = append(sc.text, sigSep)
		}
		sc.appendLower(strings.TrimSpace(rec[a]))
	}
	runes := len(sc.starts)
	if runes == 0 {
		return nil
	}
	nonSep := false
	for _, b := range sc.text {
		if b != sigSep {
			nonSep = true
			break
		}
	}
	if !nonSep {
		return nil
	}

	k := bands * rows
	sc.sig = grow(sc.sig, k)
	for i := range sc.sig {
		sc.sig[i] = ^uint64(0)
	}
	// Each trigram is three consecutive runes of the text (a text of at
	// most three runes is its own single gram — simil.QGrams semantics);
	// hash its bytes with FNV-1a and fold into the running minhashes.
	gram := func(lo, hi int32) {
		gh := uint64(fnvOffset64)
		for _, c := range sc.text[lo:hi] {
			gh ^= uint64(c)
			gh *= fnvPrime64
		}
		for i := 0; i < k; i++ {
			v := gh*mul[i] + add[i]
			if v < sc.sig[i] {
				sc.sig[i] = v
			}
		}
	}
	if runes <= 3 {
		gram(0, int32(len(sc.text)))
	} else {
		for i := 0; i+3 <= runes; i++ {
			hi := int32(len(sc.text))
			if i+3 < runes {
				hi = sc.starts[i+3]
			}
			gram(sc.starts[i], hi)
		}
	}

	sc.keys = grow(sc.keys, bands)
	for b := 0; b < bands; b++ {
		acc := uint64(1469598103934665603) // FNV-64 offset basis
		for r := 0; r < rows; r++ {
			v := sc.sig[b*rows+r]
			for s := 0; s < 64; s += 8 {
				acc ^= (v >> s) & 0xff
				acc *= 1099511628211
			}
		}
		sc.keys[b] = acc
	}
	return sc.keys
}

// minhashParams derives the k pairwise-independent hash multipliers and
// offsets from the seed via a splitmix64 stream (deterministic, no global
// state).
func minhashParams(k int, seed uint64) (mul, add []uint64) {
	mul = make([]uint64, k)
	add = make([]uint64, k)
	state := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < k; i++ {
		mul[i] = next() | 1 // odd, so multiplication permutes Z/2^64
		add[i] = next()
	}
	return mul, add
}

// trigramSeq is the sequential reference blocker: per-record band keys,
// map-grouped buckets scanned in sorted key order, pairs emitted per
// bucket in ascending member order.
func trigramSeq(ds *dedup.Dataset, tc TrigramConfig) ([]dedup.Pair, bucketStats) {
	attrs := tc.attrs(ds)
	bands, rows := tc.bands(), tc.rows()
	mul, add := minhashParams(bands*rows, tc.Seed)
	type bucketKey struct {
		band int32
		hash uint64
	}
	buckets := map[bucketKey][]int32{}
	sc := &trigramScratch{}
	for i, rec := range ds.Records {
		for b, h := range bandKeysInto(rec, attrs, bands, rows, mul, add, sc) {
			k := bucketKey{int32(b), h}
			buckets[k] = append(buckets[k], int32(i))
		}
	}
	keys := make([]bucketKey, 0, len(buckets))
	for k, members := range buckets {
		if len(members) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x].band != keys[y].band {
			return keys[x].band < keys[y].band
		}
		return keys[x].hash < keys[y].hash
	})
	var st bucketStats
	maxBucket := tc.maxBucket()
	var out []dedup.Pair
	for _, k := range keys {
		members := buckets[k]
		st.buckets++
		if len(members) > maxBucket {
			st.oversize++
			continue
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				out = append(out, dedup.Pair{I: int(members[x]), J: int(members[y])})
			}
		}
	}
	return out, st
}

// trigramParallel is the sharded blocker: the per-worker parts of
// trigramParts concatenated in part order.
func trigramParallel(ds *dedup.Dataset, tc TrigramConfig, workers int) ([]dedup.Pair, bucketStats) {
	parts, st := trigramParts(ds, tc, workers)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil, st
	}
	out := make([]dedup.Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, st
}

// trigramParts is the sharded banding blocker up to pair emission: band
// entries are computed into an index-addressed slice (one fixed stride per
// record), compacted in index order, chunk-sorted and k-way merged under
// the (band, hash, rec) total order, and bucket runs are scanned on the
// calling goroutine with pair emission sharded per run range. The result
// is the per-worker emission parts, whose concatenation in part order is
// the blocker's pair stream; GenerateStream sorts each part instead of
// concatenating, so the streamed path never builds the combined slice.
func trigramParts(ds *dedup.Dataset, tc TrigramConfig, workers int) ([][]dedup.Pair, bucketStats) {
	n := len(ds.Records)
	if n == 0 {
		return nil, bucketStats{}
	}
	attrs := tc.attrs(ds)
	bands, rows := tc.bands(), tc.rows()
	mul, add := minhashParams(bands*rows, tc.Seed)

	// Stage 1: per-record band keys, index-addressed (records with no
	// trigrams leave their stride marked invalid with rec == -1). Each
	// worker range reuses one trigramScratch, so the per-record signature
	// computation allocates nothing steady-state.
	entries := make([]bandEntry, n*bands)
	parallelRanges(n, workers, func(lo, hi int) {
		sc := &trigramScratch{}
		for i := lo; i < hi; i++ {
			keys := bandKeysInto(ds.Records[i], attrs, bands, rows, mul, add, sc)
			for b := 0; b < bands; b++ {
				e := &entries[i*bands+b]
				if keys == nil {
					e.rec = -1
					continue
				}
				e.band, e.hash, e.rec = int32(b), keys[b], int32(i)
			}
		}
	})
	valid := entries[:0]
	for _, e := range entries {
		if e.rec >= 0 {
			valid = append(valid, e)
		}
	}

	// Stage 2: sort entries under the total order so bucket members form
	// contiguous runs; chunk-sort across workers, merge sequentially.
	sortBandEntries(valid, workers)

	// Stage 3: scan runs into buckets, then emit pairs per bucket with the
	// bucket list sharded across workers (outputs concatenated in bucket
	// order).
	type run struct{ lo, hi int }
	var runs []run
	var st bucketStats
	maxBucket := tc.maxBucket()
	for lo := 0; lo < len(valid); {
		hi := lo + 1
		for hi < len(valid) && valid[hi].band == valid[lo].band && valid[hi].hash == valid[lo].hash {
			hi++
		}
		if hi-lo >= 2 {
			st.buckets++
			if hi-lo > maxBucket {
				st.oversize++
			} else {
				runs = append(runs, run{lo, hi})
			}
		}
		lo = hi
	}

	nr := len(runs)
	if nr == 0 {
		return nil, st
	}
	rw := workers
	if rw > nr {
		rw = nr
	}
	parts := make([][]dedup.Pair, rw)
	var wg sync.WaitGroup
	for w := 0; w < rw; w++ {
		lo := w * nr / rw
		hi := (w + 1) * nr / rw
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var part []dedup.Pair
			for _, r := range runs[lo:hi] {
				members := valid[r.lo:r.hi]
				for x := 0; x < len(members); x++ {
					for y := x + 1; y < len(members); y++ {
						part = append(part, dedup.Pair{I: int(members[x].rec), J: int(members[y].rec)})
					}
				}
			}
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	return parts, st
}

// sortBandEntries sorts entries in place under the (band, hash, rec) total
// order: one contiguous chunk per worker sorted concurrently, then a
// sequential k-way merge through a scratch slice.
func sortBandEntries(entries []bandEntry, workers int) {
	n := len(entries)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		sort.Slice(entries, func(x, y int) bool { return bandEntryLess(entries[x], entries[y]) })
		return
	}
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		chunks = append(chunks, chunk{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			part := entries[lo:hi]
			sort.Slice(part, func(x, y int) bool { return bandEntryLess(part[x], part[y]) })
		}(lo, hi)
	}
	wg.Wait()

	heads := make([]int, len(chunks))
	merged := make([]bandEntry, 0, n)
	for {
		best := -1
		for c := range chunks {
			if heads[c] >= chunks[c].hi-chunks[c].lo {
				continue
			}
			if best < 0 || bandEntryLess(entries[chunks[c].lo+heads[c]], entries[chunks[best].lo+heads[best]]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, entries[chunks[best].lo+heads[best]])
		heads[best]++
	}
	copy(entries, merged)
}
