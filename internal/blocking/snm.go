// The multi-pass Sorted Neighborhood blocker. Each pass sorts the record
// indices by a key derived from the record and emits every pair within a
// sliding window over that order — the paper's own validation setup
// (§6.5: one pass per sorting key, w = 20). The parallel pass shards all
// three stages (key derivation, sorting, window emission) across workers
// with index-addressed writes and a deterministic k-way merge, so the
// emitted pair stream is identical to the sequential pass for any worker
// count.

package blocking

import (
	"sort"
	"sync"

	"repro/internal/dedup"
)

// snmPassSeq is the sequential reference pass: derive keys, stable-sort,
// slide the window. Stable sort on key equals the (key, index) total
// order, matching dedup.SortedNeighborhood's documented behavior.
func snmPassSeq(ds *dedup.Dataset, key dedup.KeyFunc, window int) []dedup.Pair {
	n := len(ds.Records)
	keys := make([]string, n)
	for i, rec := range ds.Records {
		keys[i] = key(rec)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return keys[order[x]] < keys[order[y]] })
	var out []dedup.Pair
	for x := range order {
		hi := x + window
		if hi > n {
			hi = n
		}
		for y := x + 1; y < hi; y++ {
			i, j := order[x], order[y]
			if i > j {
				i, j = j, i
			}
			out = append(out, dedup.Pair{I: i, J: j})
		}
	}
	return out
}

// snmPassParallel is the sharded pass. Keys are derived into an
// index-addressed slice, the order is built by chunk-sorting one contiguous
// index range per worker and k-way merging under the (key, index) total
// order, and the window emission is sharded over contiguous position
// ranges whose outputs concatenate in range order — every stage's result
// is a pure function of the data.
func snmPassParallel(ds *dedup.Dataset, key dedup.KeyFunc, window, workers int) []dedup.Pair {
	n := len(ds.Records)
	if n == 0 {
		return nil
	}
	keys := make([]string, n)
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = key(ds.Records[i])
		}
	})
	order := sortOrderParallel(keys, workers)

	// Window emission: position x contributes min(window-1, n-1-x) pairs.
	// Shard positions into one contiguous range per worker; each worker
	// appends into its own slice, concatenated in range order.
	if workers > n {
		workers = n
	}
	parts := make([][]dedup.Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			est := (hi - lo) * (window - 1)
			part := make([]dedup.Pair, 0, est)
			for x := lo; x < hi; x++ {
				end := x + window
				if end > n {
					end = n
				}
				for y := x + 1; y < end; y++ {
					i, j := order[x], order[y]
					if i > j {
						i, j = j, i
					}
					part = append(part, dedup.Pair{I: i, J: j})
				}
			}
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()

	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]dedup.Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// sortOrderParallel returns the record indices sorted by (keys[i], i):
// one contiguous index chunk per worker is sorted concurrently, then the
// chunks are k-way merged sequentially. The comparator is a total order,
// so the merged permutation is independent of the chunking.
func sortOrderParallel(keys []string, workers int) []int {
	n := len(keys)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if workers > n {
		workers = n
	}
	less := func(a, b int) bool {
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	}
	if workers <= 1 {
		sort.Slice(order, func(x, y int) bool { return less(order[x], order[y]) })
		return order
	}

	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		chunks = append(chunks, chunk{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			part := order[lo:hi]
			sort.Slice(part, func(x, y int) bool { return less(part[x], part[y]) })
		}(lo, hi)
	}
	wg.Wait()

	heads := make([]int, len(chunks))
	merged := make([]int, 0, n)
	for {
		best := -1
		for c := range chunks {
			if heads[c] >= chunks[c].hi-chunks[c].lo {
				continue
			}
			if best < 0 || less(order[chunks[c].lo+heads[c]], order[chunks[best].lo+heads[best]]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, order[chunks[best].lo+heads[best]])
		heads[best]++
	}
	return merged
}
