// Pass-key construction: the vocabulary users compose SNM passes from.
// The paper's validation setup sorts on concatenated attribute values
// (e.g. lastname+zip, firstname+birthyear) and on phonetic codes; the
// spec grammar mirrors that directly so a pass configuration reads like
// the paper's description of it.

package blocking

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dedup"
)

// keySep joins component keys inside one pass key. It cannot occur in TSV
// data, so "a"+"bc" and "ab"+"c" sort as distinct keys.
const keySep = "\x1f"

// ParsePasses builds SNM passes from a spec string: passes are separated
// by commas, components inside a pass by "+". Each component is an
// attribute name (its trimmed value), "soundex(attr)" (the phonetic code,
// §6.4's error measure turned into a blocking key) or "prefix(attr,n)"
// (the upper-cased first n runes). Attribute names match ds.Attrs
// case-insensitively.
//
//	last_name+zip_code, soundex(last_name), prefix(first_name,4)+age
func ParsePasses(ds *dedup.Dataset, spec string) ([]Pass, error) {
	var passes []Pass
	for _, ps := range splitTopLevel(spec) {
		ps = strings.TrimSpace(ps)
		if ps == "" {
			continue
		}
		comps := strings.Split(ps, "+")
		keys := make([]dedup.KeyFunc, 0, len(comps))
		for _, c := range comps {
			k, err := componentKey(ds, strings.TrimSpace(c))
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
		passes = append(passes, Pass{Name: ps, Key: combineKeys(keys)})
	}
	if len(passes) == 0 {
		return nil, fmt.Errorf("blocking: empty pass spec %q", spec)
	}
	return passes, nil
}

// splitTopLevel splits on commas outside parentheses, so the argument
// comma of prefix(attr,n) does not end a pass.
func splitTopLevel(spec string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, spec[start:i])
				start = i + 1
			}
		}
	}
	return append(out, spec[start:])
}

// componentKey resolves one spec component to a key function.
func componentKey(ds *dedup.Dataset, comp string) (dedup.KeyFunc, error) {
	if open := strings.IndexByte(comp, '('); open >= 0 && strings.HasSuffix(comp, ")") {
		fn := strings.TrimSpace(comp[:open])
		args := strings.Split(comp[open+1:len(comp)-1], ",")
		switch fn {
		case "soundex":
			if len(args) != 1 {
				return nil, fmt.Errorf("blocking: soundex wants one attribute, got %q", comp)
			}
			attr, err := attrIndex(ds, strings.TrimSpace(args[0]))
			if err != nil {
				return nil, err
			}
			return dedup.SoundexKey(attr), nil
		case "prefix":
			if len(args) != 2 {
				return nil, fmt.Errorf("blocking: prefix wants (attr, n), got %q", comp)
			}
			attr, err := attrIndex(ds, strings.TrimSpace(args[0]))
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(strings.TrimSpace(args[1]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("blocking: prefix length in %q must be a positive integer", comp)
			}
			return dedup.PrefixKey(attr, n), nil
		}
		return nil, fmt.Errorf("blocking: unknown key function %q (want soundex, prefix)", fn)
	}
	attr, err := attrIndex(ds, comp)
	if err != nil {
		return nil, err
	}
	return dedup.ExactKey(attr), nil
}

// combineKeys joins component keys with keySep; a single component passes
// through unchanged.
func combineKeys(keys []dedup.KeyFunc) dedup.KeyFunc {
	if len(keys) == 1 {
		return keys[0]
	}
	return func(rec []string) string {
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k(rec)
		}
		return strings.Join(parts, keySep)
	}
}

// AttrIndex resolves an attribute name to its column index,
// case-insensitively — the same lookup the pass-spec grammar uses, exported
// so callers configuring TrigramConfig.Attrs by name share it.
func AttrIndex(ds *dedup.Dataset, name string) (int, error) {
	return attrIndex(ds, name)
}

// attrIndex finds an attribute by case-insensitive name.
func attrIndex(ds *dedup.Dataset, name string) (int, error) {
	for i, a := range ds.Attrs {
		if strings.EqualFold(a, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("blocking: dataset %s has no attribute %q", ds.Name, name)
}

// EntropyPasses returns one raw-value pass per most-unique attribute —
// the paper's default setup (§6.5: one pass for each of the k most unique
// attributes). Keys are the raw record values, exactly the sort keys of
// the legacy dedup.SortedNeighborhood, so a Generate run over these
// passes reproduces its candidate set bit for bit.
func EntropyPasses(ds *dedup.Dataset, k int) []Pass {
	attrs := dedup.MostUniqueAttrs(ds, k)
	passes := make([]Pass, len(attrs))
	for i, a := range attrs {
		a := a
		name := fmt.Sprintf("attr%d", a)
		if a < len(ds.Attrs) {
			name = ds.Attrs[a]
		}
		passes[i] = Pass{
			Name: name,
			Key:  func(rec []string) string { return rec[a] },
		}
	}
	return passes
}

// Recall is the fraction of gold-standard duplicate pairs the candidate
// set covers (dedup.BlockingRecall re-exported at this layer so callers of
// Generate need not import both packages for the one number the paper
// reports: no true duplicates lost).
func Recall(ds *dedup.Dataset, candidates []dedup.Pair) float64 {
	return dedup.BlockingRecall(ds, candidates)
}
