package provenance

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/docstore"
)

// VerifyOpts configures VerifyDir.
type VerifyOpts struct {
	// Workers is the leaf-hashing pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// FS substitutes the filesystem the verification reads through; nil
	// selects the OS filesystem. The fault-injection sweep reads through a
	// bit-flipping FS here.
	FS docstore.FS
	// Observer receives the provenance_* counters; nil drops them.
	Observer Observer
	// ExpectRoot, when non-empty, must match the record's corpus root or its
	// head-link hash. This is the out-of-band pin that upgrades the record
	// from self-consistent to trusted: a verifier that checks only what the
	// record says would accept a wholesale re-forged record.
	ExpectRoot string
}

// Report is the outcome of one VerifyDir run.
type Report struct {
	// Record is the decoded record, when one decoded at all.
	Record *Record
	// Leaves counts segment files whose SHA-256 was re-derived.
	Leaves int
	// Bytes counts the bytes hashed across segments and manifests.
	Bytes int64
	// Bad lists the store-relative names of every file found corrupted —
	// the record file itself, a manifest, or an exact segment. Empty on a
	// clean verification.
	Bad []string
}

// VerifyDir re-derives every digest the store directory's provenance record
// promises: the SHA-256 of each segment file and each collection manifest,
// the per-collection Merkle roots, the corpus root and the whole hash chain.
// Segment hashing runs on a worker pool. The returned error describes the
// first problem; Report.Bad names every corrupted file found, pinpointing
// the exact leaf rather than just declaring the chain broken — a record
// failing its own self-check blames provenance.json, a self-consistent
// record with a digest mismatch blames the segment or manifest on disk.
func VerifyDir(dir string, opts VerifyOpts) (*Report, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = docstore.OSFS
	}
	addN(opts.Observer, CounterVerifyRuns, 1)
	rep := &Report{}

	fail := func(err error) (*Report, error) {
		addN(opts.Observer, CounterVerifyFailures, 1)
		return rep, err
	}

	raw, err := fsys.ReadFile(RecordPath(dir))
	if err != nil {
		return fail(fmt.Errorf("provenance: no record to verify: %w", err))
	}
	rec, err := DecodeRecord(raw)
	if err != nil {
		rep.Bad = []string{RecordFile}
		return fail(fmt.Errorf("%s: %w", RecordPath(dir), err))
	}
	rep.Record = rec
	if err := rec.SelfCheck(); err != nil {
		rep.Bad = []string{RecordFile}
		return fail(fmt.Errorf("%s: record is internally inconsistent — the record itself was tampered: %w", RecordPath(dir), err))
	}
	if opts.ExpectRoot != "" && opts.ExpectRoot != rec.Root() && opts.ExpectRoot != rec.HeadHash() {
		return fail(fmt.Errorf("provenance: record root %s (head %s) does not match the pinned digest %s",
			rec.Root(), rec.HeadHash(), opts.ExpectRoot))
	}

	// The record is self-consistent; every remaining failure mode is a file
	// on disk disagreeing with it. Hash manifests inline (small), segments
	// on the pool.
	type job struct {
		file   string
		sha256 string
		bytes  int64
	}
	var jobs []job
	for _, c := range rec.Collections {
		jobs = append(jobs, job{file: docstore.ManifestFileName(c.Name), sha256: c.ManifestSHA256, bytes: -1})
		for _, l := range c.Leaves {
			jobs = append(jobs, job{file: l.File, sha256: l.SHA256, bytes: l.Bytes})
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = max(len(jobs), 1)
	}
	bad := make([]string, len(jobs))
	var hashedBytes, hashedLeaves int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				data, rerr := fsys.ReadFile(filepath.Join(dir, j.file))
				if rerr != nil {
					bad[i] = j.file
					continue
				}
				if j.bytes >= 0 && int64(len(data)) != j.bytes {
					bad[i] = j.file
					continue
				}
				if hexDigest(sha256.Sum256(data)) != j.sha256 {
					bad[i] = j.file
					continue
				}
				mu.Lock()
				hashedBytes += int64(len(data))
				if j.bytes >= 0 {
					hashedLeaves++
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	rep.Leaves = int(hashedLeaves)
	rep.Bytes = hashedBytes
	for _, f := range bad {
		if f != "" {
			rep.Bad = append(rep.Bad, f)
		}
	}
	sort.Strings(rep.Bad)
	addN(opts.Observer, CounterVerifyLeaves, hashedLeaves)
	if len(rep.Bad) > 0 {
		return fail(fmt.Errorf("provenance: %d file(s) disagree with the record: %s",
			len(rep.Bad), strings.Join(rep.Bad, ", ")))
	}
	return rep, nil
}
