package provenance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// GeneratorFile names the generator descriptor ncgen drops next to the
// snapshot CSVs it writes. ncimport picks it up and carries it into the
// provenance record's Meta, binding the corpus to the exact generator run
// (tool, seed, parameters) that produced it — the reproducibility contract
// of the paper's synthetic datasets.
const GeneratorFile = "generator.json"

// WriteGeneratorInfo writes the descriptor into dir.
func WriteGeneratorInfo(dir string, g GeneratorInfo) error {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, GeneratorFile), append(b, '\n'), 0o644)
}

// ReadGeneratorInfo reads the descriptor from dir. A missing file is not an
// error — hand-built snapshot directories simply have no generator — and
// returns (nil, nil).
func ReadGeneratorInfo(dir string) (*GeneratorInfo, error) {
	raw, err := os.ReadFile(filepath.Join(dir, GeneratorFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var g GeneratorInfo
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("provenance: %s: %w", filepath.Join(dir, GeneratorFile), err)
	}
	return &g, nil
}
