package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/docstore"
	"repro/internal/testkit"
)

// Native fuzz targets for the provenance codec and verifier: the record file
// is attacker-visible state exactly like the segment manifests, so arbitrary
// bytes must either decode into a validated record or fail with an error —
// never panic, never size an allocation from a hostile count, never read
// outside the store directory. make fuzz-smoke runs these for a bounded time
// per target; testdata/fuzz holds the seed corpus.

// validRecordBytes stamps a tiny store and returns its record's on-disk
// bytes — the well-formed seed the fuzzer mutates from.
func validRecordBytes(tb testing.TB) []byte {
	tb.Helper()
	db := testkit.Corpus{Seed: 23}.DocDB(tb, 40)
	dir := tb.TempDir()
	if _, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta}); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(RecordPath(dir))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzProvenanceDecode feeds arbitrary bytes to the record decoder. A record
// that decodes must round-trip: re-encoding and re-decoding it yields an
// equally valid record with the same head hash.
func FuzzProvenanceDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"meta":{},"chain":[],"collections":[]}`))
	f.Add([]byte(`{"version":99,"meta":{},"chain":[{"seq":1,"root":"00","docs":0,"leaves":0,"metaHash":"00"}],"collections":[]}`))
	// Hostile shapes: absurd counts, path traversal, duplicate and unsorted
	// collections, negative numbers, malformed digests.
	f.Add([]byte(`{"version":1,"meta":{},"chain":[{"seq":1,"root":"` + zeros64 + `","docs":-1,"leaves":0,"metaHash":"` + zeros64 + `"}],"collections":[]}`))
	f.Add([]byte(`{"version":1,"meta":{},"chain":[{"seq":1,"root":"` + zeros64 + `","docs":0,"leaves":0,"metaHash":"` + zeros64 + `"}],"collections":[{"name":"../../etc","docs":0,"manifestSha256":"` + zeros64 + `","root":"` + zeros64 + `","leaves":[]}]}`))
	f.Add([]byte(`{"version":1,"meta":{},"chain":[{"seq":1,"root":"` + zeros64 + `","docs":0,"leaves":1000000000,"metaHash":"` + zeros64 + `"}],"collections":[{"name":"c","docs":1000000000,"manifestSha256":"` + zeros64 + `","root":"` + zeros64 + `","leaves":[{"file":"c.00.jsonl","docs":1000000000,"bytes":0,"crc32":0,"sha256":"` + zeros64 + `"}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		again, err := DecodeRecord(rec.Encode())
		if err != nil {
			t.Fatalf("accepted record does not re-decode: %v", err)
		}
		if again.HeadHash() != rec.HeadHash() {
			t.Fatal("re-decoded record changed its head hash")
		}
		if !bytes.Equal(again.Encode(), rec.Encode()) {
			t.Fatal("record encoding is not a fixed point")
		}
	})
}

// FuzzChainVerify drops arbitrary bytes into a store as its provenance
// record and runs the full verifier over it: whatever the bytes claim, the
// verifier must return cleanly (error or not), stay inside the directory,
// and pinpoint the record file when the record itself is the corruption.
func FuzzChainVerify(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"meta":{},"chain":[{"seq":1,"root":"` + zeros64 + `","docs":0,"leaves":0,"metaHash":"` + zeros64 + `"}],"collections":[]}`))
	f.Add([]byte(`{"version":1,"meta":{},"chain":[{"seq":1,"root":"` + zeros64 + `","docs":1,"leaves":1,"metaHash":"` + zeros64 + `"}],"collections":[{"name":"c","docs":1,"manifestSha256":"` + zeros64 + `","root":"` + zeros64 + `","leaves":[{"file":"c.00.jsonl","docs":1,"bytes":4,"crc32":0,"sha256":"` + zeros64 + `"}]}]}`))
	f.Add(validRecordBytes(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(RecordPath(dir), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// One plausible data file, so records naming it exercise the digest
		// comparison too.
		if err := os.WriteFile(filepath.Join(dir, "c.00.jsonl"), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyDir(dir, VerifyOpts{Workers: 2})
		if err == nil {
			return // the bytes happened to describe the directory truthfully
		}
		if rep == nil {
			t.Fatal("verifier returned a nil report with its error")
		}
		for _, bad := range rep.Bad {
			if filepath.Base(bad) != bad {
				t.Fatalf("verifier blamed a file outside the store: %q", bad)
			}
		}
	})
}

const zeros64 = "0000000000000000000000000000000000000000000000000000000000000000"
