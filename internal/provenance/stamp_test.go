package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/docstore"
	"repro/internal/testkit"
)

// counters is a test Observer.
type counters map[string]int64

func (c counters) AddN(name string, n int64) { c[name] += n }

var testMeta = Meta{
	Source:  "test",
	Mode:    "none",
	Lineage: []string{"2008-01-01", "2008-11-04"},
	Generator: &GeneratorInfo{
		Tool: "ncgen", Seed: 3, Voters: 100, Years: 2, Errors: "light", UnsoundRate: 0.002,
	},
}

func TestSaveVerifyRoundTrip(t *testing.T) {
	db := testkit.Corpus{Seed: 3}.DocDB(t, 150)
	dir := t.TempDir()
	obs := counters{}
	rec, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chain) != 1 || rec.Head().Seq != 1 || rec.Head().Parent != "" {
		t.Fatalf("fresh save: chain %+v", rec.Chain)
	}
	if obs[CounterStamps] != 1 || obs[CounterLinks] != 1 || obs[CounterChainResets] != 0 {
		t.Errorf("stamp counters: %v", obs)
	}
	if obs[CounterLeavesHashed] != int64(rec.Head().Leaves) || obs[CounterLeavesReused] != 0 {
		t.Errorf("leaf counters: %v (head promises %d leaves)", obs, rec.Head().Leaves)
	}

	vObs := counters{}
	rep, err := VerifyDir(dir, VerifyOpts{Observer: vObs})
	if err != nil {
		t.Fatalf("clean store failed verification: %v", err)
	}
	if rep.Leaves != rec.Head().Leaves || len(rep.Bad) != 0 {
		t.Errorf("report: %+v", rep)
	}
	if vObs[CounterVerifyRuns] != 1 || vObs[CounterVerifyLeaves] != int64(rep.Leaves) || vObs[CounterVerifyFailures] != 0 {
		t.Errorf("verify counters: %v", vObs)
	}
	// The loaded record round-trips to the exact on-disk bytes.
	loaded, raw, err := LoadRecord(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, loaded.Encode()) || !bytes.Equal(raw, rec.Encode()) {
		t.Error("record does not round-trip to its on-disk bytes")
	}
}

func TestSaveDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		db := testkit.Corpus{Seed: 9}.DocDB(t, 120)
		dir := t.TempDir()
		if _, err := Save(db, dir, docstore.SaveOpts{Stride: 16, Workers: workers}, StampOpts{Meta: testMeta}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(RecordPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = raw
		} else if !bytes.Equal(want, raw) {
			t.Fatalf("workers=%d: record bytes differ from workers=1", workers)
		}
	}
}

func TestSaveExtendsChain(t *testing.T) {
	db := testkit.Corpus{Seed: 5}.DocDB(t, 100)
	dir := t.TempDir()
	opts := docstore.SaveOpts{Stride: 16}
	first, err := Save(db, dir, opts, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Collection("clusters").Insert(docstore.D("_id", "zz-new", "county", "county-1", "score", 0.5)); err != nil {
		t.Fatal(err)
	}
	second, err := Save(db, dir, opts, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Chain) != 2 {
		t.Fatalf("second save: %d chain links, want 2", len(second.Chain))
	}
	if second.Chain[0] != first.Chain[0] {
		t.Error("second save rewrote the genesis link")
	}
	if second.Head().Parent != first.HeadHash() {
		t.Error("second link does not carry the first head's hash")
	}
	if second.Head().Root == first.Root() {
		t.Error("corpus root unchanged although a document was added")
	}
	if _, err := VerifyDir(dir, VerifyOpts{}); err != nil {
		t.Fatalf("extended store failed verification: %v", err)
	}
}

func TestSaveResetsBrokenChain(t *testing.T) {
	db := testkit.Corpus{Seed: 7}.DocDB(t, 80)
	dir := t.TempDir()
	opts := docstore.SaveOpts{Stride: 16}
	if _, err := Save(db, dir, opts, StampOpts{Meta: testMeta}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(RecordPath(dir), []byte("{not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	obs := counters{}
	rec, err := Save(db, dir, opts, StampOpts{Meta: testMeta, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chain) != 1 {
		t.Fatalf("save over a broken record: %d chain links, want a fresh genesis", len(rec.Chain))
	}
	if obs[CounterChainResets] != 1 {
		t.Errorf("chain-reset counter: %v", obs)
	}
	if _, err := VerifyDir(dir, VerifyOpts{}); err != nil {
		t.Fatalf("re-stamped store failed verification: %v", err)
	}
}

func TestDirtySaveReusesDigests(t *testing.T) {
	db := testkit.Corpus{Seed: 11}.DocDB(t, 150)
	dir := t.TempDir()
	first, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	// A dirty save naming no changed documents: every segment is reusable,
	// so every leaf digest must be carried over without re-reading a file.
	obs := counters{}
	second, err := Save(db, dir, docstore.SaveOpts{
		Stride: 16,
		Dirty:  map[string]map[string]bool{"clusters": {}, "dataset": {}},
	}, StampOpts{Meta: testMeta, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs[CounterLeavesReused] != int64(second.Head().Leaves) || obs[CounterLeavesHashed] != 0 {
		t.Errorf("leaf counters after no-op dirty save: %v (head promises %d leaves)", obs, second.Head().Leaves)
	}
	if len(second.Chain) != 2 || second.Head().Root != first.Root() {
		t.Errorf("no-op dirty save: chain %d links, root changed %v",
			len(second.Chain), second.Head().Root != first.Root())
	}
	if _, err := VerifyDir(dir, VerifyOpts{}); err != nil {
		t.Fatalf("dirty-saved store failed verification: %v", err)
	}
}

func TestVerifyPinpointsTamperedFiles(t *testing.T) {
	db := testkit.Corpus{Seed: 13}.DocDB(t, 150)
	dir := t.TempDir()
	rec, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	flip := func(t *testing.T, name string, offset int) func() {
		t.Helper()
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mod := append([]byte{}, orig...)
		mod[offset%len(mod)] ^= 0x01
		if err := os.WriteFile(path, mod, 0o644); err != nil {
			t.Fatal(err)
		}
		return func() { os.WriteFile(path, orig, 0o644) }
	}

	// One flipped bit in any segment or manifest must blame exactly that
	// file.
	var disk []string
	for _, c := range rec.Collections {
		disk = append(disk, docstore.ManifestFileName(c.Name))
		for _, l := range c.Leaves {
			disk = append(disk, l.File)
		}
	}
	for _, name := range disk {
		restore := flip(t, name, 41)
		rep, err := VerifyDir(dir, VerifyOpts{})
		if err == nil {
			t.Fatalf("flip in %s went undetected", name)
		}
		if len(rep.Bad) != 1 || rep.Bad[0] != name {
			t.Fatalf("flip in %s blamed %v", name, rep.Bad)
		}
		if !strings.Contains(err.Error(), name) {
			t.Errorf("flip in %s: error does not name it: %v", name, err)
		}
		restore()
	}

	// A flipped bit inside the record blames the record, never a data file.
	restore := flip(t, RecordFile, 200)
	rep, err := VerifyDir(dir, VerifyOpts{})
	if err == nil {
		t.Fatal("flip in the record went undetected")
	}
	if len(rep.Bad) != 1 || rep.Bad[0] != RecordFile {
		t.Fatalf("flip in the record blamed %v", rep.Bad)
	}
	restore()
	if _, err := VerifyDir(dir, VerifyOpts{}); err != nil {
		t.Fatalf("restored store failed verification: %v", err)
	}
}

func TestVerifyExpectRoot(t *testing.T) {
	db := testkit.Corpus{Seed: 17}.DocDB(t, 90)
	dir := t.TempDir()
	rec, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	for _, pin := range []string{rec.Root(), rec.HeadHash()} {
		if _, err := VerifyDir(dir, VerifyOpts{ExpectRoot: pin}); err != nil {
			t.Errorf("pin %s rejected: %v", pin, err)
		}
	}
	wrong := strings.Repeat("ab", 32)
	if _, err := VerifyDir(dir, VerifyOpts{ExpectRoot: wrong}); err == nil {
		t.Error("wrong pin accepted")
	}
}

func TestVerifyMissingSegment(t *testing.T) {
	db := testkit.Corpus{Seed: 19}.DocDB(t, 90)
	dir := t.TempDir()
	rec, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	victim := rec.Collections[0].Leaves[0].File
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir, VerifyOpts{})
	if err == nil || len(rep.Bad) != 1 || rep.Bad[0] != victim {
		t.Fatalf("missing %s: err=%v bad=%v", victim, err, rep.Bad)
	}
}

func TestGeneratorInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := GeneratorInfo{Tool: "ncgen", Seed: 42, Voters: 500, Years: 3, Errors: "heavy", UnsoundRate: 0.01}
	if err := WriteGeneratorInfo(dir, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGeneratorInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != g {
		t.Fatalf("round trip: %+v, want %+v", got, g)
	}
	missing, err := ReadGeneratorInfo(t.TempDir())
	if err != nil || missing != nil {
		t.Fatalf("missing descriptor: %+v, %v", missing, err)
	}
}
