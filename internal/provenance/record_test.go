package provenance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/docstore"
	"repro/internal/testkit"
)

// decodeValid returns a freshly decoded copy of a valid stamped record, so
// each table case mutates its own instance.
func decodeValid(tb testing.TB, raw []byte) *Record {
	tb.Helper()
	rec, err := DecodeRecord(raw)
	if err != nil {
		tb.Fatalf("valid record does not decode: %v", err)
	}
	return rec
}

// TestValidateRejections drives every structural rejection of Validate with
// a single targeted mutation of an otherwise valid record: the shapes a
// hostile or corrupted record file can take that must be refused before any
// digest is recomputed or any file opened.
func TestValidateRejections(t *testing.T) {
	raw := validRecordBytes(t)
	cases := []struct {
		name   string
		mutate func(*Record)
		want   string
	}{
		{"unsupported version", func(r *Record) { r.Version = 99 }, "version"},
		{"empty chain", func(r *Record) { r.Chain = nil }, "no chain links"},
		{"seq gap", func(r *Record) { r.Chain[0].Seq = 7 }, "seq"},
		{"genesis with parent", func(r *Record) { r.Chain[0].Parent = zeros64 }, "genesis"},
		{"non-hex parent", func(r *Record) {
			l := r.Chain[0]
			l.Seq, l.Parent = 2, "XYZ"
			r.Chain = append(r.Chain, l)
		}, "parent is not"},
		{"non-hex root", func(r *Record) { r.Chain[0].Root = "beef" }, "malformed digest"},
		{"uppercase metaHash", func(r *Record) { r.Chain[0].MetaHash = strings.Repeat("AB", 32) }, "malformed digest"},
		{"negative docs", func(r *Record) { r.Chain[0].Docs = -1 }, "promises -1 documents"},
		{"traversal collection name", func(r *Record) { r.Collections[0].Name = "../escape" }, "store directory"},
		{"empty collection name", func(r *Record) { r.Collections[0].Name = "" }, "store directory"},
		{"duplicate collection", func(r *Record) {
			r.Collections = append(r.Collections, r.Collections[len(r.Collections)-1])
		}, "listed twice"},
		{"unsorted collections", func(r *Record) {
			r.Collections[0], r.Collections[1] = r.Collections[1], r.Collections[0]
		}, "not sorted"},
		{"negative collection stride", func(r *Record) { r.Collections[0].Stride = -1 }, "at stride"},
		{"non-hex manifest digest", func(r *Record) { r.Collections[0].ManifestSHA256 = "nope" }, "malformed digest"},
		{"absolute leaf path", func(r *Record) { r.Collections[0].Leaves[0].File = "/etc/passwd" }, "store directory"},
		{"duplicate leaf", func(r *Record) {
			c := &r.Collections[0]
			c.Leaves = append(c.Leaves, c.Leaves[0])
		}, "twice"},
		{"negative leaf bytes", func(r *Record) { r.Collections[0].Leaves[0].Bytes = -5 }, "bytes"},
		{"non-hex leaf digest", func(r *Record) { r.Collections[0].Leaves[0].SHA256 = zeros64[:63] + "g" }, "malformed digest"},
		{"leaf docs do not sum", func(r *Record) { r.Collections[0].Docs++ }, "leaves sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := decodeValid(t, raw)
			tc.mutate(rec)
			err := rec.Validate()
			if err == nil {
				t.Fatal("mutated record still validates")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := decodeValid(t, raw).Validate(); err != nil {
		t.Fatalf("unmutated record rejected: %v", err)
	}
}

// TestSelfCheckRejections drives the hash-consistency rejections: mutations
// that keep the record structurally valid but break the commitments between
// its parts — the tampering only SelfCheck can catch.
func TestSelfCheckRejections(t *testing.T) {
	// A two-link chain, so the parent linkage itself is checkable.
	db := testkit.Corpus{Seed: 31}.DocDB(t, 30)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		if _, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta}); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(RecordPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	flipped := strings.Replace(zeros64, "0", "1", 1)
	cases := []struct {
		name   string
		mutate func(*Record)
		want   string
	}{
		{"broken parent link", func(r *Record) { r.Chain[1].Parent = zeros64 }, "does not extend"},
		{"metadata swapped", func(r *Record) { r.Meta.Source = "elsewhere" }, "meta hash"},
		{"leaf digest swapped", func(r *Record) { r.Collections[0].Leaves[0].SHA256 = zeros64 }, "root does not match its leaves"},
		{"collection root swapped", func(r *Record) { r.Collections[0].Root = flipped }, "root does not match its leaves"},
		{"corpus root swapped", func(r *Record) { r.Chain[1].Root = flipped }, "corpus root"},
		{"doc count inflated", func(r *Record) { r.Chain[1].Docs++ }, "documents"},
		{"leaf count inflated", func(r *Record) { r.Chain[1].Leaves++ }, "leaves"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := decodeValid(t, raw)
			tc.mutate(rec)
			err := rec.SelfCheck()
			if err == nil {
				t.Fatal("mutated record still self-checks")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := decodeValid(t, raw).SelfCheck(); err != nil {
		t.Fatalf("unmutated record fails self-check: %v", err)
	}
	// Corpus-root mutation ordering: the collection-root swap above must not
	// have been masked by the corpus root check.
	rec := decodeValid(t, raw)
	rec.Collections[0].Root = flipped
	if err := rec.SelfCheck(); err == nil || !strings.Contains(err.Error(), "leaves") {
		t.Fatalf("collection root swap reported as %v", err)
	}
}

func TestIsHex64(t *testing.T) {
	for _, bad := range []string{"", "00", zeros64 + "00", strings.Repeat("AB", 32), zeros64[:63] + "g", zeros64[:63] + "/"} {
		if isHex64(bad) {
			t.Errorf("isHex64 accepts %q", bad)
		}
	}
	if !isHex64(zeros64) || !isHex64(strings.Repeat("af09", 16)) {
		t.Error("isHex64 rejects canonical digests")
	}
}

func TestLoadRecordErrors(t *testing.T) {
	if _, _, err := LoadRecord(nil, t.TempDir()); err == nil {
		t.Fatal("missing record loads")
	}
	dir := t.TempDir()
	if err := os.WriteFile(RecordPath(dir), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, raw, err := LoadRecord(nil, dir)
	if err == nil || rec != nil {
		t.Fatal("malformed record loads")
	}
	if len(raw) == 0 {
		t.Fatal("malformed record load drops the raw bytes")
	}
	if !strings.Contains(err.Error(), RecordFile) {
		t.Fatalf("load error does not name the record file: %v", err)
	}
}

// TestSaveFaultSweep fails every mutating filesystem operation of a stamped
// save in turn — segment writes, manifest renames, the record's own
// write-then-rename — and demands each outcome be honest: either the save
// reports an error, or the fault was harmlessly absorbed (a best-effort
// cleanup) and the stamped store passes full verification. A save must never
// claim success over a half-written store.
func TestSaveFaultSweep(t *testing.T) {
	stamp := func(fsys docstore.FS) (string, error) {
		db := testkit.Corpus{Seed: 37}.DocDB(t, 30)
		dir := t.TempDir()
		_, err := Save(db, dir, docstore.SaveOpts{Stride: 16, FS: fsys}, StampOpts{Meta: testMeta})
		return dir, err
	}
	count := &testkit.FaultFS{}
	if _, err := stamp(count); err != nil {
		t.Fatal(err)
	}
	ops := count.Ops()
	if ops < 5 {
		t.Fatalf("save too small to sweep: %d ops", ops)
	}
	failed := 0
	for at := 1; at <= ops; at++ {
		dir, err := stamp(&testkit.FaultFS{FailAt: at})
		if err != nil {
			failed++
			continue
		}
		if _, verr := VerifyDir(dir, VerifyOpts{}); verr != nil {
			t.Errorf("fault at op %d/%d absorbed but store does not verify: %v", at, ops, verr)
		}
	}
	if failed < ops/2 {
		t.Errorf("only %d/%d faults reported — the sweep is not exercising the error paths", failed, ops)
	}
}

// TestDirtySaveAfterRecordLoss covers the carryover fallback: a dirty save
// whose previous record is gone must re-read the reused segments from disk
// and still produce a correct, verifiable fresh chain.
func TestDirtySaveAfterRecordLoss(t *testing.T) {
	db := testkit.Corpus{Seed: 41}.DocDB(t, 60)
	dir := t.TempDir()
	first, err := Save(db, dir, docstore.SaveOpts{Stride: 16}, StampOpts{Meta: testMeta})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(RecordPath(dir)); err != nil {
		t.Fatal(err)
	}
	obs := counters{}
	dirty := map[string]map[string]bool{"clusters": {}, "dataset": {}}
	rec, err := Save(db, dir, docstore.SaveOpts{Stride: 16, Dirty: dirty}, StampOpts{Meta: testMeta, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chain) != 1 {
		t.Fatalf("fresh chain has %d links", len(rec.Chain))
	}
	if obs[CounterLeavesReused] != 0 {
		t.Fatal("leaf digests carried over from a deleted record")
	}
	if rec.Root() != first.Root() {
		t.Fatal("re-read digests change the corpus root")
	}
	if _, err := VerifyDir(dir, VerifyOpts{}); err != nil {
		t.Fatalf("restamped store fails verification: %v", err)
	}
}

func TestGeneratorInfoErrors(t *testing.T) {
	if g, err := ReadGeneratorInfo(t.TempDir()); g != nil || err != nil {
		t.Fatalf("missing descriptor: %v %v", g, err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, GeneratorFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGeneratorInfo(dir); err == nil {
		t.Fatal("corrupt descriptor reads")
	}
	file := filepath.Join(dir, GeneratorFile)
	if err := WriteGeneratorInfo(filepath.Join(file, "sub"), GeneratorInfo{Tool: "t"}); err == nil {
		t.Fatal("write through a file succeeds")
	}
}
