// Package provenance turns a persisted corpus into a tamper-evident,
// verifiable artifact. The paper's product *is* a benchmark dataset: a
// matcher comparison over NC1/NC2/NC3 is only meaningful if the consumer
// can prove they ran against the exact bytes the generator produced. The
// package layers a hash-chained, Merkle-style provenance record over the
// docstore's segment manifests: every segment file is a leaf (SHA-256 of
// its bytes), leaves roll up into per-collection Merkle roots, collection
// headers roll up into one corpus root, and each save appends a link to a
// hash chain whose head commits to the root, the document count and the
// generator metadata. A dirty-segment delta save (docstore.SaveOpts.Dirty)
// extends the chain with a new link while reusing the leaf digests of
// unchanged segments — the record grows with the corpus history instead of
// being rewritten, so downstream consumers can audit not just the current
// bytes but the import lineage that produced them.
//
// Save stamps records on the write path, VerifyDir re-derives every digest
// on the verify path (`ncstats -verify`), and GET /v1/provenance exposes
// the record to consumers. The chain is tamper-evident, not tamper-proof:
// an adversary who can rewrite every file can re-forge the whole record,
// so consumers pin the head hash (or the corpus root) out of band and
// check it with VerifyOpts.ExpectRoot — the same trust model as the
// audit-log head published by verifiable election stores.
package provenance

import "crypto/sha256"

// The Merkle tree follows the RFC 6962 (Certificate Transparency) shape:
// leaf hashes are domain-separated from interior node hashes (0x00 vs 0x01
// prefix), so no concatenation of leaves can collide with an interior
// node, and a tree over n leaves splits at the largest power of two
// strictly below n. The empty tree hashes to SHA-256 of the empty string.

const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// Digest is one SHA-256 output.
type Digest = [sha256.Size]byte

// LeafHash hashes one leaf's data with the leaf domain prefix.
func LeafHash(data []byte) Digest {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var d Digest
	h.Sum(d[:0])
	return d
}

// nodeHash combines two subtree digests with the interior-node prefix.
func nodeHash(l, r Digest) Digest {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// MerkleRoot computes the root digest over the leaves' data in order.
func MerkleRoot(leaves [][]byte) Digest {
	if len(leaves) == 0 {
		return sha256.Sum256(nil)
	}
	return merkleRange(leaves)
}

func merkleRange(leaves [][]byte) Digest {
	if len(leaves) == 1 {
		return LeafHash(leaves[0])
	}
	k := splitPoint(len(leaves))
	return nodeHash(merkleRange(leaves[:k]), merkleRange(leaves[k:]))
}

// MerkleProof returns the inclusion proof (audit path, leaf to root) of
// leaf i: the sibling subtree digests a verifier needs to recompute the
// root from that single leaf. A one-leaf tree has an empty proof.
func MerkleProof(leaves [][]byte, i int) []Digest {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	return proofRange(leaves, i)
}

func proofRange(leaves [][]byte, i int) []Digest {
	if len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(proofRange(leaves[:k], i), merkleRange(leaves[k:]))
	}
	return append(proofRange(leaves[k:], i-k), merkleRange(leaves[:k]))
}

// VerifyMerkleProof reports whether the proof demonstrates that data is
// leaf i of an n-leaf tree with the given root.
func VerifyMerkleProof(data []byte, i, n int, proof []Digest, root Digest) bool {
	if i < 0 || i >= n || n == 0 {
		return false
	}
	got, ok := rebuildRoot(LeafHash(data), i, n, proof)
	return ok && got == root
}

// rebuildRoot folds the audit path back up; ok is false when the proof has
// the wrong length for the (i, n) position.
func rebuildRoot(leaf Digest, i, n int, proof []Digest) (Digest, bool) {
	if n == 1 {
		return leaf, len(proof) == 0
	}
	if len(proof) == 0 {
		return Digest{}, false
	}
	sibling := proof[len(proof)-1]
	rest := proof[:len(proof)-1]
	k := splitPoint(n)
	if i < k {
		sub, ok := rebuildRoot(leaf, i, k, rest)
		return nodeHash(sub, sibling), ok
	}
	sub, ok := rebuildRoot(leaf, i-k, n-k, rest)
	return nodeHash(sibling, sub), ok
}
