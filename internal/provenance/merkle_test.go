package provenance

import (
	"fmt"
	"testing"
)

// rfc6962Leaves are the RFC 6962 known-answer inputs; rfc6962Roots[n] is the
// published root of the first n leaves. Pinning these proves the tree shape
// (domain separation, split point) matches Certificate Transparency exactly,
// not just some self-consistent variant.
var rfc6962Leaves = [][]byte{
	{}, {0x00}, {0x10}, {0x20, 0x21}, {0x30, 0x31},
	{0x40, 0x41, 0x42, 0x43},
	{0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57},
	{0x60, 0x61, 0x62, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x6b, 0x6c, 0x6d, 0x6e, 0x6f},
}

var rfc6962Roots = []string{
	"e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
	"6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d",
	"fac54203e7cc696cf0dfcb42c92a1d9dbaf70ad9e621f4bd8d98662f00e3c125",
	"aeb6bcfe274b70a14fb067a5e5578264db0fa9b51af5e0ba159158f329e06e77",
	"d37ee418976dd95753c1c73862b9398fa2a2cf9b4ff0fdfe8b30cd95209614b7",
	"4e3bbb1f7b478dcfe71fb631631519a3bca12c9aefca1612bfce4c13a86264d4",
	"76e67dadbcdf1e10e1b74ddc608abd2f98dfb16fbce75277b5232a127f2087ef",
	"ddb89be403809e325750d3d263cd78929c2942b7942a34b77e122c9594a74c8c",
	"5dc9da79a70659a9ad559cb701ded9a2ab9d823aad2f4960cfe370eff4604328",
}

func TestMerkleRootRFC6962Vectors(t *testing.T) {
	for n := 0; n <= len(rfc6962Leaves); n++ {
		if got := hexDigest(MerkleRoot(rfc6962Leaves[:n])); got != rfc6962Roots[n] {
			t.Errorf("root over %d RFC 6962 leaves: %s, want %s", n, got, rfc6962Roots[n])
		}
	}
}

// treeLeaves builds n distinct deterministic leaves.
func treeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d-of-%d", i, n))
	}
	return leaves
}

// TestMerkleProofProperty sweeps every tree size 1..257 (both sides of every
// power of two the split point cares about): at sampled positions the
// inclusion proof must verify against the root, and every single-bit
// departure — mutated leaf data, any one mutated proof sibling, a truncated
// proof, a shifted index — must fail.
func TestMerkleProofProperty(t *testing.T) {
	for n := 1; n <= 257; n++ {
		leaves := treeLeaves(n)
		root := MerkleRoot(leaves)
		// First, last, middle, and a stride-walk of further positions.
		positions := map[int]bool{0: true, n - 1: true, n / 2: true}
		for i := 0; i < n; i += 1 + n/7 {
			positions[i] = true
		}
		for i := range positions {
			proof := MerkleProof(leaves, i)
			if !VerifyMerkleProof(leaves[i], i, n, proof, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			mutated := append([]byte{}, leaves[i]...)
			mutated[0] ^= 1
			if VerifyMerkleProof(mutated, i, n, proof, root) {
				t.Fatalf("n=%d i=%d: proof accepted mutated leaf data", n, i)
			}
			if n > 1 {
				j := (i + 1) % n
				if VerifyMerkleProof(leaves[i], j, n, proof, root) {
					t.Fatalf("n=%d i=%d: proof accepted at wrong index %d", n, i, j)
				}
				if VerifyMerkleProof(leaves[i], i, n, proof[:len(proof)-1], root) {
					t.Fatalf("n=%d i=%d: truncated proof accepted", n, i)
				}
			}
			for s := range proof {
				bad := append([]Digest{}, proof...)
				bad[s][0] ^= 1
				if VerifyMerkleProof(leaves[i], i, n, bad, root) {
					t.Fatalf("n=%d i=%d: proof accepted with sibling %d mutated", n, i, s)
				}
			}
		}
	}
}

func TestMerkleProofBounds(t *testing.T) {
	leaves := treeLeaves(5)
	if MerkleProof(leaves, -1) != nil || MerkleProof(leaves, 5) != nil {
		t.Error("out-of-range proof request did not return nil")
	}
	root := MerkleRoot(leaves)
	if VerifyMerkleProof(leaves[0], -1, 5, nil, root) {
		t.Error("negative index verified")
	}
	if VerifyMerkleProof(leaves[0], 0, 0, nil, root) {
		t.Error("empty tree membership verified")
	}
	// A proof padded with an extra sibling must fail, not panic.
	proof := append(MerkleProof(leaves, 2), Digest{})
	if VerifyMerkleProof(leaves[2], 2, 5, proof, root) {
		t.Error("overlong proof accepted")
	}
}
