package provenance

// Observer receives the provenance counters — the provenance_total family
// on GET /metrics. obs.Metrics satisfies it through AddN; the interface
// lives here so the package stays free of the obs dependency.
type Observer interface {
	// AddN adds n to the named counter. Called from worker goroutines;
	// implementations must be safe for concurrent use.
	AddN(counter string, n int64)
}

// Counter names of the provenance_total family.
const (
	// CounterStamps counts records written by Save.
	CounterStamps = "provenance_stamps"
	// CounterLinks counts chain links appended (1 per Save; the genesis
	// link of a fresh chain included).
	CounterLinks = "provenance_links"
	// CounterChainResets counts Saves that found a previous record but
	// could not extend it (malformed or self-inconsistent) and started a
	// fresh chain instead. A missing record is a plain genesis, not a
	// reset.
	CounterChainResets = "provenance_chain_resets"
	// CounterLeavesHashed counts segment leaves whose SHA-256 was computed
	// from bytes (fresh writes, or reused segments re-read because the
	// previous record did not cover them).
	CounterLeavesHashed = "provenance_leaves_hashed"
	// CounterLeavesReused counts leaves whose digest was carried over from
	// the previous record without re-reading the segment — the dirty-save
	// fast path.
	CounterLeavesReused = "provenance_leaves_reused"
	// CounterVerifyRuns / CounterVerifyLeaves / CounterVerifyFailures track
	// VerifyDir: runs started, leaves whose digests were re-derived, and
	// runs that found a mismatch.
	CounterVerifyRuns     = "provenance_verify_runs"
	CounterVerifyLeaves   = "provenance_verify_leaves"
	CounterVerifyFailures = "provenance_verify_failures"
	// CounterServed counts GET /v1/provenance responses carrying a record.
	CounterServed = "provenance_served"
)

// addN reports to a possibly nil observer, skipping zero deltas.
func addN(o Observer, counter string, n int64) {
	if o != nil && n != 0 {
		o.AddN(counter, n)
	}
}
