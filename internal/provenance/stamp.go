package provenance

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/docstore"
)

// StampOpts configures Save's provenance stamping, separate from the
// docstore.SaveOpts that shape the persistence itself.
type StampOpts struct {
	// Meta is recorded verbatim and hashed into the appended chain link.
	Meta Meta
	// Observer receives the provenance_* counters; nil drops them.
	Observer Observer
}

// sink collects the per-collection commit callbacks of one save. Commits
// arrive sequentially (SaveParallelOpts walks collections one at a time, in
// sorted order; only segment encoding is parallel), so a plain slice is
// enough.
type sink struct {
	commits []commit
}

type commit struct {
	name     string
	stride   int
	docs     int
	segments []docstore.SegmentDigest
}

func (s *sink) CommitCollection(dir, name string, stride, docs int, segments []docstore.SegmentDigest) {
	s.commits = append(s.commits, commit{name: name, stride: stride, docs: docs, segments: segments})
}

// Save persists db into dir through docstore.SaveParallelOpts and stamps the
// directory's provenance record in the same pass. Segment digests come from
// the save's own encode buffers; reused segments of a dirty save carry their
// digest over from the previous record without re-reading the file. If dir
// already holds a valid record, the new save appends a chain link whose
// Parent is the previous head's hash — the record accumulates the store's
// save history. A missing previous record starts a fresh chain; a malformed
// or self-inconsistent one is replaced by a fresh chain and counted as a
// chain reset (it cannot be extended: its head hash does not commit to
// anything trustworthy).
//
// The record bytes depend only on the database contents, the metadata and
// the previous record — never on worker counts or on whether the save ran
// in dirty-segment mode. That invariant is what TestConformanceProvenance
// pins: a full reimport and a delta-applied store produce byte-identical
// provenance.
func Save(db *docstore.DB, dir string, store docstore.SaveOpts, opts StampOpts) (*Record, error) {
	fsys := store.FS
	if fsys == nil {
		fsys = docstore.OSFS
	}

	// Load the previous record before the save overwrites the directory.
	var prev *Record
	reset := false
	if raw, err := fsys.ReadFile(RecordPath(dir)); err == nil {
		if p, derr := DecodeRecord(raw); derr == nil && p.SelfCheck() == nil {
			prev = p
		} else {
			reset = true
		}
	}

	snk := &sink{}
	store.Provenance = snk
	if err := db.SaveParallelOpts(dir, store); err != nil {
		return nil, err
	}

	rec, hashed, reused, err := buildRecord(fsys, dir, snk.commits, prev, opts.Meta)
	if err != nil {
		return nil, err
	}
	if err := writeRecord(fsys, dir, rec); err != nil {
		return nil, err
	}

	addN(opts.Observer, CounterStamps, 1)
	addN(opts.Observer, CounterLinks, 1)
	addN(opts.Observer, CounterLeavesHashed, int64(hashed))
	addN(opts.Observer, CounterLeavesReused, int64(reused))
	if reset {
		addN(opts.Observer, CounterChainResets, 1)
	}
	return rec, nil
}

// buildRecord assembles the new record from the save's commit callbacks,
// carrying leaf digests over from prev where the save reused segments and
// extending prev's chain when it exists.
func buildRecord(fsys docstore.FS, dir string, commits []commit, prev *Record, meta Meta) (rec *Record, hashed, reused int, err error) {
	// Digest carryover index: a reused segment is byte-identical to the
	// previous save's, so its previous leaf — matched by every manifest
	// field — still holds the correct SHA-256.
	carry := map[string]string{}
	if prev != nil {
		for _, c := range prev.Collections {
			for _, l := range c.Leaves {
				carry[leafKey(c.Name, l.File, l.Docs, l.Bytes, l.CRC32)] = l.SHA256
			}
		}
	}

	sort.Slice(commits, func(i, j int) bool { return commits[i].name < commits[j].name })
	cols := make([]CollectionRecord, 0, len(commits))
	docs, leaves := 0, 0
	for _, cm := range commits {
		col := CollectionRecord{Name: cm.name, Docs: cm.docs, Stride: cm.stride}
		for _, seg := range cm.segments {
			leaf := Leaf{File: seg.File, Docs: seg.Docs, Bytes: seg.Bytes, CRC32: seg.CRC32}
			switch {
			case len(seg.SHA256) == sha256.Size:
				leaf.SHA256 = hexBytes(seg.SHA256)
				hashed++
			case seg.Reused && carry[leafKey(cm.name, seg.File, seg.Docs, seg.Bytes, seg.CRC32)] != "":
				leaf.SHA256 = carry[leafKey(cm.name, seg.File, seg.Docs, seg.Bytes, seg.CRC32)]
				reused++
			default:
				// Reused segment the previous record does not cover (e.g.
				// the record was reset): fall back to re-reading the file.
				data, rerr := fsys.ReadFile(filepath.Join(dir, seg.File))
				if rerr != nil {
					return nil, 0, 0, fmt.Errorf("provenance: digesting reused segment: %w", rerr)
				}
				leaf.SHA256 = hexDigest(sha256.Sum256(data))
				hashed++
			}
			col.Leaves = append(col.Leaves, leaf)
		}
		man, rerr := fsys.ReadFile(filepath.Join(dir, docstore.ManifestFileName(cm.name)))
		if rerr != nil {
			return nil, 0, 0, fmt.Errorf("provenance: digesting manifest: %w", rerr)
		}
		col.ManifestSHA256 = hexDigest(sha256.Sum256(man))
		col.Root = collectionRoot(col.Leaves)
		docs += col.Docs
		leaves += len(col.Leaves)
		cols = append(cols, col)
	}

	link := Link{
		Seq:      1,
		Root:     corpusRoot(cols),
		Docs:     docs,
		Leaves:   leaves,
		MetaHash: HashMeta(meta),
	}
	var chain []Link
	if prev != nil {
		link.Seq = prev.Head().Seq + 1
		link.Parent = prev.HeadHash()
		chain = append(append([]Link{}, prev.Chain...), link)
	} else {
		chain = []Link{link}
	}

	rec = &Record{Version: RecordVersion, Meta: meta, Chain: chain, Collections: cols}
	if err := rec.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("provenance: stamped record is invalid: %w", err)
	}
	if err := rec.SelfCheck(); err != nil {
		return nil, 0, 0, fmt.Errorf("provenance: stamped record is inconsistent: %w", err)
	}
	return rec, hashed, reused, nil
}

// leafKey identifies a segment across saves for digest carryover: collection
// and every manifest field must match.
func leafKey(col, file string, docs int, bytes int64, crc uint32) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%08x", col, file, docs, bytes, crc)
}

// hexBytes renders a raw SHA-256 slice in the canonical lowercase-hex form.
func hexBytes(b []byte) string {
	var d Digest
	copy(d[:], b)
	return hexDigest(d)
}
