package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/docstore"
)

// On-disk shape: one provenance.json per store directory, written by Save
// next to the docstore manifests it covers. The file is attacker-visible
// state exactly like the segment manifests, so DecodeRecord validates every
// field before anything is sized, hashed or opened from it, and the decoder
// must never panic on arbitrary bytes (FuzzProvenanceDecode enforces this).
//
// All hashing is over canonical JSON: the structs below have no maps, so
// encoding/json marshals their fields in declaration order and two records
// with equal contents always serialize to equal bytes. That is what makes
// the differential oracle's byte-identity guarantee (full reimport vs delta
// apply) possible, and what makes link hashes well-defined.

const (
	// RecordVersion is bumped on schema changes; verifiers reject versions
	// they do not understand instead of guessing.
	RecordVersion = 1

	// RecordFile names the provenance record inside a store directory.
	RecordFile = "provenance.json"

	// Structural caps: a hostile record cannot promise absurd counts that
	// would drive the verifier into unbounded work. Real corpora sit orders
	// of magnitude below all three.
	maxChainLinks     = 1 << 16
	maxCollections    = 1 << 12
	maxLeavesPerTable = 1 << 20
)

// GeneratorInfo pins the synthetic-register generator run that produced the
// snapshot files behind a corpus: same tool, seed and parameters mean the
// same bytes (the paper's reproducibility contract). ncgen writes it as
// generator.json next to the snapshots; ncimport carries it into the
// provenance record.
type GeneratorInfo struct {
	Tool        string  `json:"tool,omitempty"`
	Seed        int64   `json:"seed"`
	Voters      int     `json:"voters,omitempty"`
	Years       int     `json:"years,omitempty"`
	Errors      string  `json:"errors,omitempty"`
	UnsoundRate float64 `json:"unsoundRate,omitempty"`
}

// Meta is the non-layout half of a provenance record: where the corpus came
// from. It is hashed into every chain link (MetaHash), so tampering with
// the recorded seed or lineage breaks the chain walk.
type Meta struct {
	// Source names the stamping tool ("ncimport").
	Source string `json:"source,omitempty"`
	// Mode is the duplicate-removal mode of the dataset.
	Mode string `json:"mode,omitempty"`
	// Lineage lists every imported snapshot date in import order across all
	// published versions — the paper's Fig. 2 update history.
	Lineage []string `json:"lineage,omitempty"`
	// Generator pins the ncgen run behind the snapshots, when known.
	Generator *GeneratorInfo `json:"generator,omitempty"`
}

// Leaf is one segment file's digest entry. Its canonical JSON is the Merkle
// leaf data, so every field — name, counts, CRC and SHA-256 — is covered by
// the collection root: tampering any of them inside the record breaks the
// record's self-consistency, while tampering the file on disk breaks the
// digest comparison. The two failure modes stay distinguishable, which is
// how VerifyDir pinpoints *what* was corrupted.
type Leaf struct {
	File   string `json:"file"`
	Docs   int    `json:"docs"`
	Bytes  int64  `json:"bytes"`
	CRC32  uint32 `json:"crc32"`
	SHA256 string `json:"sha256"`
}

// CollectionRecord is the per-collection slice of the record: the leaves of
// the collection's segments plus their Merkle root and the digest of the
// docstore manifest that commits them.
type CollectionRecord struct {
	Name           string `json:"name"`
	Docs           int    `json:"docs"`
	Stride         int    `json:"stride,omitempty"`
	ManifestSHA256 string `json:"manifestSha256"`
	Root           string `json:"root"`
	Leaves         []Leaf `json:"leaves"`
}

// collectionHeader is the part of a CollectionRecord that feeds the corpus
// Merkle tree — everything except the leaves, which are already committed
// through Root.
type collectionHeader struct {
	Name           string `json:"name"`
	Docs           int    `json:"docs"`
	Stride         int    `json:"stride,omitempty"`
	ManifestSHA256 string `json:"manifestSha256"`
	Root           string `json:"root"`
}

// Link is one chain entry: the corpus state after one save. Parent is the
// hash of the previous link (empty for the genesis link), so the chain
// commits to the whole save history; MetaHash commits the metadata current
// at that save. Links deliberately exclude anything that depends on *how*
// the save ran (worker counts, dirty-vs-full) — a delta-applied store and a
// full reimport of the same data produce byte-identical links.
type Link struct {
	Seq      int    `json:"seq"`
	Parent   string `json:"parent,omitempty"`
	Root     string `json:"root"`
	Docs     int    `json:"docs"`
	Leaves   int    `json:"leaves"`
	MetaHash string `json:"metaHash"`
}

// Record is the full provenance record of one store directory.
type Record struct {
	Version     int                `json:"version"`
	Meta        Meta               `json:"meta"`
	Chain       []Link             `json:"chain"`
	Collections []CollectionRecord `json:"collections"`
}

// hexDigest renders a digest in the canonical lowercase-hex form.
func hexDigest(d Digest) string { return hex.EncodeToString(d[:]) }

// canonicalJSON marshals a map-free struct; failure is a programming bug.
func canonicalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("provenance: canonical marshal failed: " + err.Error())
	}
	return b
}

// HashMeta returns the canonical hash of a Meta block.
func HashMeta(m Meta) string {
	return hexDigest(sha256.Sum256(canonicalJSON(m)))
}

// HashLink returns the canonical hash of a chain link — what the next
// link's Parent field must carry.
func HashLink(l Link) string {
	return hexDigest(sha256.Sum256(canonicalJSON(l)))
}

// leafData renders the Merkle leaf input of one segment entry.
func leafData(l Leaf) []byte { return canonicalJSON(l) }

// collectionRoot computes the Merkle root over a collection's leaves.
func collectionRoot(leaves []Leaf) string {
	data := make([][]byte, len(leaves))
	for i, l := range leaves {
		data[i] = leafData(l)
	}
	return hexDigest(MerkleRoot(data))
}

// corpusRoot computes the corpus Merkle root over the collection headers.
// The collection roots must already be filled in.
func corpusRoot(cols []CollectionRecord) string {
	data := make([][]byte, len(cols))
	for i, c := range cols {
		data[i] = canonicalJSON(collectionHeader{
			Name: c.Name, Docs: c.Docs, Stride: c.Stride,
			ManifestSHA256: c.ManifestSHA256, Root: c.Root,
		})
	}
	return hexDigest(MerkleRoot(data))
}

// Head returns the last chain link — the current corpus state.
func (r *Record) Head() Link { return r.Chain[len(r.Chain)-1] }

// HeadHash returns the hash of the head link: the single value a consumer
// pins out of band to make the whole record (and therefore the whole
// corpus) tamper-evident.
func (r *Record) HeadHash() string { return HashLink(r.Head()) }

// Root returns the corpus Merkle root the head link commits to.
func (r *Record) Root() string { return r.Head().Root }

// isHex64 reports whether s is a 64-char lowercase-hex SHA-256 rendering.
func isHex64(s string) bool {
	if len(s) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// storeLocalName reports whether name is a plain file name inside the store
// directory — the same rule the docstore manifest validator enforces, so a
// hostile record can never make the verifier read outside its own store.
func storeLocalName(name string) bool {
	return name != "" && name != "." && name != ".." && filepath.Base(name) == name
}

// Validate rejects structurally malformed records before any digest is
// recomputed or any file is opened from their fields. It checks shape only;
// SelfCheck checks hash consistency.
func (r *Record) Validate() error {
	if r.Version != RecordVersion {
		return fmt.Errorf("provenance: record version %d not supported (want %d)", r.Version, RecordVersion)
	}
	if len(r.Chain) == 0 {
		return fmt.Errorf("provenance: record has no chain links")
	}
	if len(r.Chain) > maxChainLinks {
		return fmt.Errorf("provenance: chain promises %d links (cap %d)", len(r.Chain), maxChainLinks)
	}
	if len(r.Collections) > maxCollections {
		return fmt.Errorf("provenance: record promises %d collections (cap %d)", len(r.Collections), maxCollections)
	}
	for i, l := range r.Chain {
		if l.Seq != i+1 {
			return fmt.Errorf("provenance: chain link %d carries seq %d", i, l.Seq)
		}
		if i == 0 && l.Parent != "" {
			return fmt.Errorf("provenance: genesis link carries a parent hash")
		}
		if i > 0 && !isHex64(l.Parent) {
			return fmt.Errorf("provenance: chain link %d parent is not a SHA-256 digest", i+1)
		}
		if !isHex64(l.Root) || !isHex64(l.MetaHash) {
			return fmt.Errorf("provenance: chain link %d carries a malformed digest", i+1)
		}
		if l.Docs < 0 || l.Leaves < 0 {
			return fmt.Errorf("provenance: chain link %d promises %d documents in %d leaves", i+1, l.Docs, l.Leaves)
		}
	}
	seen := map[string]bool{}
	for i, c := range r.Collections {
		if !storeLocalName(c.Name) {
			return fmt.Errorf("provenance: collection %d names %q — collections must live in the store directory", i, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("provenance: collection %q listed twice", c.Name)
		}
		seen[c.Name] = true
		if i > 0 && r.Collections[i-1].Name > c.Name {
			return fmt.Errorf("provenance: collections not sorted (%q after %q)", c.Name, r.Collections[i-1].Name)
		}
		if c.Docs < 0 || c.Stride < 0 {
			return fmt.Errorf("provenance: collection %q promises %d documents at stride %d", c.Name, c.Docs, c.Stride)
		}
		if !isHex64(c.ManifestSHA256) || !isHex64(c.Root) {
			return fmt.Errorf("provenance: collection %q carries a malformed digest", c.Name)
		}
		if len(c.Leaves) > maxLeavesPerTable {
			return fmt.Errorf("provenance: collection %q promises %d leaves (cap %d)", c.Name, len(c.Leaves), maxLeavesPerTable)
		}
		total := 0
		files := map[string]bool{}
		for j, l := range c.Leaves {
			if !storeLocalName(l.File) {
				return fmt.Errorf("provenance: collection %q leaf %d names %q — segment files must live in the store directory", c.Name, j, l.File)
			}
			if files[l.File] {
				return fmt.Errorf("provenance: collection %q lists leaf %q twice", c.Name, l.File)
			}
			files[l.File] = true
			if l.Docs < 0 || l.Bytes < 0 {
				return fmt.Errorf("provenance: collection %q leaf %q promises %d documents in %d bytes", c.Name, l.File, l.Docs, l.Bytes)
			}
			if !isHex64(l.SHA256) {
				return fmt.Errorf("provenance: collection %q leaf %q carries a malformed digest", c.Name, l.File)
			}
			total += l.Docs
		}
		if total != c.Docs {
			return fmt.Errorf("provenance: collection %q promises %d documents, leaves sum to %d", c.Name, c.Docs, total)
		}
	}
	return nil
}

// SelfCheck verifies the record's internal hash consistency without reading
// any corpus file: the chain links hash into each other, the head link's
// MetaHash matches the recorded metadata, every collection root matches its
// leaves, and the head root matches the collection headers. A record that
// passes SelfCheck but fails the disk comparison was stored over a tampered
// corpus; a record that fails SelfCheck was itself tampered. VerifyDir uses
// that distinction to blame the right file.
func (r *Record) SelfCheck() error {
	parent := ""
	for i, l := range r.Chain {
		if l.Parent != parent {
			return fmt.Errorf("provenance: chain link %d does not extend link %d (parent hash mismatch)", l.Seq, i)
		}
		parent = HashLink(l)
	}
	head := r.Head()
	if got := HashMeta(r.Meta); head.MetaHash != got {
		return fmt.Errorf("provenance: metadata does not match the head link's meta hash")
	}
	docs, leaves := 0, 0
	for _, c := range r.Collections {
		if got := collectionRoot(c.Leaves); got != c.Root {
			return fmt.Errorf("provenance: collection %q root does not match its leaves", c.Name)
		}
		docs += c.Docs
		leaves += len(c.Leaves)
	}
	if got := corpusRoot(r.Collections); got != head.Root {
		return fmt.Errorf("provenance: corpus root does not match the collection records")
	}
	if head.Docs != docs {
		return fmt.Errorf("provenance: head link promises %d documents, collections hold %d", head.Docs, docs)
	}
	if head.Leaves != leaves {
		return fmt.Errorf("provenance: head link promises %d leaves, collections hold %d", head.Leaves, leaves)
	}
	return nil
}

// DecodeRecord parses and validates a record from raw bytes. It never
// panics on hostile input and never sizes an allocation from an
// attacker-controlled number.
func DecodeRecord(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Encode renders the record in its canonical on-disk form.
func (r *Record) Encode() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("provenance: record marshal failed: " + err.Error())
	}
	return append(b, '\n')
}

// RecordPath returns the record file path inside a store directory.
func RecordPath(dir string) string { return filepath.Join(dir, RecordFile) }

// LoadRecord reads and validates the record of a store directory through
// fsys (nil selects the OS filesystem). The raw bytes are returned
// alongside so callers (the serving API) can expose the exact stored form.
func LoadRecord(fsys docstore.FS, dir string) (*Record, []byte, error) {
	if fsys == nil {
		fsys = docstore.OSFS
	}
	raw, err := fsys.ReadFile(RecordPath(dir))
	if err != nil {
		return nil, nil, err
	}
	rec, err := DecodeRecord(raw)
	if err != nil {
		return nil, raw, fmt.Errorf("%s: %w", RecordPath(dir), err)
	}
	return rec, raw, nil
}

// writeRecord persists the record atomically (write-then-rename), the same
// discipline as the docstore manifests.
func writeRecord(fsys docstore.FS, dir string, r *Record) error {
	path := RecordPath(dir)
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, r.Encode(), 0o644); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
