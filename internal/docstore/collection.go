package docstore

import (
	"context"
	"fmt"
	"sync"
)

// Filter is a predicate over documents; nil matches everything.
type Filter func(Document) bool

// Eq matches documents whose value at path equals v.
func Eq(path string, v any) Filter {
	return func(d Document) bool {
		got, ok := Get(d, path)
		return ok && compare(got, v) == 0
	}
}

// Lt matches documents whose value at path is strictly less than v.
func Lt(path string, v any) Filter {
	return func(d Document) bool {
		got, ok := Get(d, path)
		return ok && compare(got, v) < 0
	}
}

// Gt matches documents whose value at path is strictly greater than v.
func Gt(path string, v any) Filter {
	return func(d Document) bool {
		got, ok := Get(d, path)
		return ok && compare(got, v) > 0
	}
}

// Lte and Gte are the inclusive variants of Lt and Gt.
func Lte(path string, v any) Filter {
	return func(d Document) bool {
		got, ok := Get(d, path)
		return ok && compare(got, v) <= 0
	}
}

// Gte matches documents whose value at path is at least v.
func Gte(path string, v any) Filter {
	return func(d Document) bool {
		got, ok := Get(d, path)
		return ok && compare(got, v) >= 0
	}
}

// Exists matches documents that have any value at path.
func Exists(path string) Filter {
	return func(d Document) bool {
		_, ok := Get(d, path)
		return ok
	}
}

// And combines filters conjunctively; And() matches everything.
func And(filters ...Filter) Filter {
	return func(d Document) bool {
		for _, f := range filters {
			if f != nil && !f(d) {
				return false
			}
		}
		return true
	}
}

// Or combines filters disjunctively; Or() matches nothing.
func Or(filters ...Filter) Filter {
	return func(d Document) bool {
		for _, f := range filters {
			if f != nil && f(d) {
				return true
			}
		}
		return false
	}
}

// Not inverts a filter.
func Not(f Filter) Filter {
	return func(d Document) bool { return !(f == nil || f(d)) }
}

// Collection stores documents keyed by their "_id" field, preserving
// insertion order for scans. Secondary hash indexes over dotted paths
// accelerate equality lookups. All methods are safe for concurrent use.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    []Document               // insertion order; nil slots after deletion
	byID    map[string]int           // _id -> slot
	indexes map[string]index         // path -> hash index
	ordered map[string]*orderedIndex // path -> sorted index
	deleted int
}

// index is a hash index from rendered value to document slots.
type index map[string][]int

// indexKey renders an indexed value; documents missing the path are not
// indexed.
func indexKey(v any) string { return fmt.Sprint(v) }

// NewCollection returns an empty collection with the given name.
func NewCollection(name string) *Collection {
	return &Collection{
		name:    name,
		byID:    map[string]int{},
		indexes: map[string]index{},
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of live documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// Insert stores doc under its "_id" (which must be a non-empty string) and
// returns an error for duplicate or missing ids. The document is stored by
// reference; callers must not mutate it afterwards except through Update.
func (c *Collection) Insert(doc Document) error {
	id, ok := doc["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("docstore: %s: document misses a string _id", c.name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[id]; dup {
		return fmt.Errorf("docstore: %s: duplicate _id %q", c.name, id)
	}
	slot := len(c.docs)
	c.docs = append(c.docs, doc)
	c.byID[id] = slot
	for path, ix := range c.indexes {
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = append(ix[k], slot)
		}
	}
	c.markOrderedDirty()
	return nil
}

// Get returns the document with the given id, or nil.
func (c *Collection) Get(id string) Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if slot, ok := c.byID[id]; ok {
		return c.docs[slot]
	}
	return nil
}

// Update applies fn to the document with the given id under the write lock
// and refreshes its index entries. It returns false if the id is unknown.
func (c *Collection) Update(id string, fn func(Document)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.byID[id]
	if !ok {
		return false
	}
	doc := c.docs[slot]
	before := map[string]string{}
	for path := range c.indexes {
		if v, ok := Get(doc, path); ok {
			before[path] = indexKey(v)
		}
	}
	fn(doc)
	for path, ix := range c.indexes {
		var after string
		v, has := Get(doc, path)
		if has {
			after = indexKey(v)
		}
		prev, had := before[path]
		if had == has && prev == after {
			continue
		}
		if had {
			ix[prev] = removeSlot(ix[prev], slot)
		}
		if has {
			ix[after] = append(ix[after], slot)
		}
	}
	c.markOrderedDirty()
	return true
}

// Delete removes the document with the given id, returning whether it
// existed.
func (c *Collection) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.byID[id]
	if !ok {
		return false
	}
	doc := c.docs[slot]
	for path, ix := range c.indexes {
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = removeSlot(ix[k], slot)
		}
	}
	c.docs[slot] = nil
	delete(c.byID, id)
	c.deleted++
	c.markOrderedDirty()
	return true
}

func removeSlot(slots []int, slot int) []int {
	for i, s := range slots {
		if s == slot {
			return append(slots[:i], slots[i+1:]...)
		}
	}
	return slots
}

// CreateIndex builds a hash index over the dotted path; subsequent
// FindEq calls on that path use it. Creating an existing index is a no-op.
func (c *Collection) CreateIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[path]; ok {
		return
	}
	ix := index{}
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = append(ix[k], slot)
		}
	}
	c.indexes[path] = ix
}

// HasIndex reports whether path is indexed.
func (c *Collection) HasIndex(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.indexes[path]
	return ok
}

// FindEq returns the documents whose value at path equals v, using the hash
// index when one exists and a full scan otherwise.
func (c *Collection) FindEq(path string, v any) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ix, ok := c.indexes[path]; ok {
		slots := ix[indexKey(v)]
		out := make([]Document, 0, len(slots))
		for _, s := range slots {
			if doc := c.docs[s]; doc != nil {
				// indexKey collapses distinct values with equal renderings;
				// re-check to be exact.
				if got, ok := Get(doc, path); ok && compare(got, v) == 0 {
					out = append(out, doc)
				}
			}
		}
		return out
	}
	return c.findScan(Eq(path, v))
}

// Find returns the documents matching the filter in insertion order; a nil
// filter returns everything.
func (c *Collection) Find(f Filter) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.findScan(f)
}

func (c *Collection) findScan(f Filter) []Document {
	var out []Document
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if f == nil || f(doc) {
			out = append(out, doc)
		}
	}
	return out
}

// ForEach visits every live document in insertion order under the read
// lock. The callback must not mutate documents or call back into the
// collection.
func (c *Collection) ForEach(fn func(Document) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if !fn(doc) {
			return
		}
	}
}

// forEachCtxStride bounds how many documents ForEachContext visits between
// cancellation checks; a power of two keeps the modulo cheap.
const forEachCtxStride = 1024

// ForEachContext is ForEach with a cancellation hook: every
// forEachCtxStride documents it checks ctx and aborts the scan, returning
// ctx.Err(), once the context is done. A completed scan (or one stopped by
// fn returning false) returns nil. This is what request handlers use so a
// per-request timeout actually interrupts long scans instead of merely
// expiring while they run.
func (c *Collection) ForEachContext(ctx context.Context, fn func(Document) bool) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	visited := 0
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if visited%forEachCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		visited++
		if !fn(doc) {
			return nil
		}
	}
	return nil
}
