package docstore

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Filter is a predicate over documents. Filters built by the constructors
// below (Eq, Lt, Lte, Gt, Gte, Exists, And, Or, Not) are pure — they only
// read the document — and introspectable, which lets the pipeline planner
// push leading Match stages down to hash and ordered indexes. Where wraps
// an arbitrary predicate function, which stays opaque to the planner. A nil
// Filter matches everything.
type Filter interface {
	// Matches reports whether the document satisfies the filter.
	Matches(Document) bool
}

// eqFilter matches documents whose value at path equals the literal; it is
// the one filter a hash index can serve.
type eqFilter struct {
	path  string
	value any
}

func (f eqFilter) Matches(d Document) bool {
	got, ok := Get(d, f.path)
	return ok && compare(got, f.value) == 0
}

// Eq matches documents whose value at path equals v.
func Eq(path string, v any) Filter { return eqFilter{path, v} }

// ordOp is the comparison direction of an ordFilter.
type ordOp int

const (
	opLt ordOp = iota
	opLte
	opGt
	opGte
)

// ordFilter matches documents whose value at path compares against the
// literal in the given direction; an ordered index can serve it.
type ordFilter struct {
	path  string
	value any
	op    ordOp
}

func (f ordFilter) Matches(d Document) bool {
	got, ok := Get(d, f.path)
	if !ok {
		return false
	}
	c := compare(got, f.value)
	switch f.op {
	case opLt:
		return c < 0
	case opLte:
		return c <= 0
	case opGt:
		return c > 0
	default:
		return c >= 0
	}
}

// Lt matches documents whose value at path is strictly less than v.
func Lt(path string, v any) Filter { return ordFilter{path, v, opLt} }

// Lte matches documents whose value at path is at most v.
func Lte(path string, v any) Filter { return ordFilter{path, v, opLte} }

// Gt matches documents whose value at path is strictly greater than v.
func Gt(path string, v any) Filter { return ordFilter{path, v, opGt} }

// Gte matches documents whose value at path is at least v.
func Gte(path string, v any) Filter { return ordFilter{path, v, opGte} }

// existsFilter matches documents that have any value at path.
type existsFilter struct{ path string }

func (f existsFilter) Matches(d Document) bool {
	_, ok := Get(d, f.path)
	return ok
}

// Exists matches documents that have any value at path.
func Exists(path string) Filter { return existsFilter{path} }

// andFilter combines filters conjunctively.
type andFilter struct{ filters []Filter }

func (f andFilter) Matches(d Document) bool {
	for _, sub := range f.filters {
		if sub != nil && !sub.Matches(d) {
			return false
		}
	}
	return true
}

// And combines filters conjunctively; And() matches everything.
func And(filters ...Filter) Filter { return andFilter{filters} }

// orFilter combines filters disjunctively.
type orFilter struct{ filters []Filter }

func (f orFilter) Matches(d Document) bool {
	for _, sub := range f.filters {
		if sub != nil && sub.Matches(d) {
			return true
		}
	}
	return false
}

// Or combines filters disjunctively; Or() matches nothing.
func Or(filters ...Filter) Filter { return orFilter{filters} }

// notFilter inverts a filter.
type notFilter struct{ f Filter }

func (f notFilter) Matches(d Document) bool { return !(f.f == nil || f.f.Matches(d)) }

// Not inverts a filter.
func Not(f Filter) Filter { return notFilter{f} }

// whereFilter wraps an arbitrary predicate; it is opaque to the planner and
// treated as potentially mutating.
type whereFilter struct{ fn func(Document) bool }

func (f whereFilter) Matches(d Document) bool { return f.fn(d) }

// Where wraps an arbitrary predicate function as a Filter. Unlike the pure
// constructors it cannot be pushed down to an index, and the pipeline
// clones documents before applying it, so a misbehaving predicate can never
// reach the stored documents.
func Where(fn func(Document) bool) Filter { return whereFilter{fn} }

// pure reports whether the filter is built solely from the read-only
// constructors — the precondition for evaluating it against stored,
// uncloned documents in the pipeline's pushdown prefix.
func pure(f Filter) bool {
	switch t := f.(type) {
	case nil:
		return true
	case eqFilter, ordFilter, existsFilter:
		return true
	case andFilter:
		for _, sub := range t.filters {
			if !pure(sub) {
				return false
			}
		}
		return true
	case orFilter:
		for _, sub := range t.filters {
			if !pure(sub) {
				return false
			}
		}
		return true
	case notFilter:
		return pure(t.f)
	}
	return false
}

// matches applies a possibly nil filter.
func matches(f Filter, d Document) bool { return f == nil || f.Matches(d) }

// Collection stores documents keyed by their "_id" field, preserving
// insertion order for scans. Secondary hash indexes over dotted paths
// accelerate equality lookups. All methods are safe for concurrent use.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    []Document               // insertion order; nil slots after deletion
	byID    map[string]int           // _id -> slot
	indexes map[string]index         // path -> hash index
	ordered map[string]*orderedIndex // path -> sorted index
	deleted int
	obsv    StoreObserver // counter sink; nil drops counters
}

// index is a hash index from rendered value to document slots.
type index map[string][]int

// indexKey renders an indexed value; documents missing the path are not
// indexed. The type switch covers every scalar the JSON document model
// produces without going through fmt's reflection (which allocates on every
// insert and lookup); the renderings match fmt.Sprint exactly, so the
// fallback for exotic values keys the same buckets.
func indexKey(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case bool:
		if t {
			return "true"
		}
		return "false"
	}
	return fmt.Sprint(v)
}

// NewCollection returns an empty collection with the given name.
func NewCollection(name string) *Collection {
	return &Collection{
		name:    name,
		byID:    map[string]int{},
		indexes: map[string]index{},
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// SetObserver routes the collection's docstore_* counters (pipeline runs,
// pushdown hits, documents cloned, segment and byte IO) to o; nil
// disconnects. obs.Metrics satisfies StoreObserver.
func (c *Collection) SetObserver(o StoreObserver) {
	c.mu.Lock()
	c.obsv = o
	c.mu.Unlock()
}

// observer reads the counter sink.
func (c *Collection) observer() StoreObserver {
	c.mu.RLock()
	o := c.obsv
	c.mu.RUnlock()
	return o
}

// Len returns the number of live documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// Insert stores doc under its "_id" (which must be a non-empty string) and
// returns an error for duplicate or missing ids. The document is stored by
// reference; callers must not mutate it afterwards except through Update.
func (c *Collection) Insert(doc Document) error {
	id, ok := doc["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("docstore: %s: document misses a string _id", c.name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[id]; dup {
		return fmt.Errorf("docstore: %s: duplicate _id %q", c.name, id)
	}
	slot := len(c.docs)
	c.docs = append(c.docs, doc)
	c.byID[id] = slot
	for path, ix := range c.indexes {
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = append(ix[k], slot)
		}
	}
	c.markOrderedDirty()
	return nil
}

// Get returns the document with the given id, or nil.
func (c *Collection) Get(id string) Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if slot, ok := c.byID[id]; ok {
		return c.docs[slot]
	}
	return nil
}

// Update applies fn to the document with the given id under the write lock
// and refreshes its index entries. It returns false if the id is unknown.
func (c *Collection) Update(id string, fn func(Document)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.byID[id]
	if !ok {
		return false
	}
	doc := c.docs[slot]
	before := map[string]string{}
	for path := range c.indexes {
		if v, ok := Get(doc, path); ok {
			before[path] = indexKey(v)
		}
	}
	fn(doc)
	for path, ix := range c.indexes {
		var after string
		v, has := Get(doc, path)
		if has {
			after = indexKey(v)
		}
		prev, had := before[path]
		if had == has && prev == after {
			continue
		}
		if had {
			ix[prev] = removeSlot(ix[prev], slot)
		}
		if has {
			ix[after] = append(ix[after], slot)
		}
	}
	c.markOrderedDirty()
	return true
}

// Delete removes the document with the given id, returning whether it
// existed.
func (c *Collection) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.byID[id]
	if !ok {
		return false
	}
	doc := c.docs[slot]
	for path, ix := range c.indexes {
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = removeSlot(ix[k], slot)
		}
	}
	c.docs[slot] = nil
	delete(c.byID, id)
	c.deleted++
	c.markOrderedDirty()
	return true
}

func removeSlot(slots []int, slot int) []int {
	for i, s := range slots {
		if s == slot {
			return append(slots[:i], slots[i+1:]...)
		}
	}
	return slots
}

// CreateIndex builds a hash index over the dotted path; subsequent
// FindEq calls on that path use it. Creating an existing index is a no-op.
func (c *Collection) CreateIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[path]; ok {
		return
	}
	ix := index{}
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			k := indexKey(v)
			ix[k] = append(ix[k], slot)
		}
	}
	c.indexes[path] = ix
}

// HasIndex reports whether path is indexed.
func (c *Collection) HasIndex(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.indexes[path]
	return ok
}

// FindEq returns the documents whose value at path equals v, using the hash
// index when one exists and a full scan otherwise.
func (c *Collection) FindEq(path string, v any) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ix, ok := c.indexes[path]; ok {
		slots := ix[indexKey(v)]
		out := make([]Document, 0, len(slots))
		for _, s := range slots {
			if doc := c.docs[s]; doc != nil {
				// indexKey collapses distinct values with equal renderings;
				// re-check to be exact.
				if got, ok := Get(doc, path); ok && compare(got, v) == 0 {
					out = append(out, doc)
				}
			}
		}
		return out
	}
	return c.findScan(Eq(path, v))
}

// Find returns the documents matching the filter in insertion order; a nil
// filter returns everything.
func (c *Collection) Find(f Filter) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.findScan(f)
}

func (c *Collection) findScan(f Filter) []Document {
	var out []Document
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if matches(f, doc) {
			out = append(out, doc)
		}
	}
	return out
}

// ForEach visits every live document in insertion order under the read
// lock. The callback must not mutate documents or call back into the
// collection.
func (c *Collection) ForEach(fn func(Document) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if !fn(doc) {
			return
		}
	}
}

// ForEachParallel visits every live document with a pool of workers — the
// embarrassingly parallel scan behind score-summary aggregation and
// whole-collection exports. The live documents are snapshotted under the
// read lock and then visited outside it in contiguous blocks, one block per
// worker, so fn may call back into read methods but runs concurrently: it
// must be safe for concurrent use and must not mutate documents. Visit
// order is unspecified; workers <= 0 selects GOMAXPROCS.
func (c *Collection) ForEachParallel(workers int, fn func(Document)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.mu.RLock()
	snap := make([]Document, 0, len(c.byID))
	for _, doc := range c.docs {
		if doc != nil {
			snap = append(snap, doc)
		}
	}
	c.mu.RUnlock()
	if workers > len(snap) {
		workers = len(snap)
	}
	if workers <= 1 {
		for _, doc := range snap {
			fn(doc)
		}
		return
	}
	var wg sync.WaitGroup
	block := (len(snap) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := min(lo+block, len(snap))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []Document) {
			defer wg.Done()
			for _, doc := range part {
				fn(doc)
			}
		}(snap[lo:hi])
	}
	wg.Wait()
}

// ForEachIndexedParallel is ForEachParallel with a stable rank: fn
// additionally receives the document's dense insertion-order index among
// the live documents (0..Len()-1). It exists for deterministic parallel
// builders — notably the serving-snapshot precompute — that drop results
// into a rank-addressed slice: workers complete in any order, but the
// assembled slice comes out in insertion order for any worker count. The
// same constraints as ForEachParallel apply: fn must be safe for concurrent
// use and must not mutate documents.
func (c *Collection) ForEachIndexedParallel(workers int, fn func(rank int, doc Document)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.mu.RLock()
	snap := make([]Document, 0, len(c.byID))
	for _, doc := range c.docs {
		if doc != nil {
			snap = append(snap, doc)
		}
	}
	c.mu.RUnlock()
	if workers > len(snap) {
		workers = len(snap)
	}
	if workers <= 1 {
		for rank, doc := range snap {
			fn(rank, doc)
		}
		return
	}
	var wg sync.WaitGroup
	block := (len(snap) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := min(lo+block, len(snap))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(base int, part []Document) {
			defer wg.Done()
			for i, doc := range part {
				fn(base+i, doc)
			}
		}(lo, snap[lo:hi])
	}
	wg.Wait()
}

// forEachCtxStride bounds how many documents ForEachContext visits between
// cancellation checks; a power of two keeps the modulo cheap.
const forEachCtxStride = 1024

// ForEachContext is ForEach with a cancellation hook: every
// forEachCtxStride documents it checks ctx and aborts the scan, returning
// ctx.Err(), once the context is done. A completed scan (or one stopped by
// fn returning false) returns nil. This is what request handlers use so a
// per-request timeout actually interrupts long scans instead of merely
// expiring while they run.
func (c *Collection) ForEachContext(ctx context.Context, fn func(Document) bool) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	visited := 0
	for _, doc := range c.docs {
		if doc == nil {
			continue
		}
		if visited%forEachCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		visited++
		if !fn(doc) {
			return nil
		}
	}
	return nil
}
