// Package docstore is an embedded, aggregate-oriented document store — the
// stand-in for the MongoDB deployment of the paper (§5). It provides the
// three capabilities the generation pipeline relies on: (i) cluster-grouped
// storage of nested documents, (ii) efficient handling of sparse data
// (absent fields cost nothing), and (iii) subset extraction via a
// multi-stage aggregation pipeline with filtering, projection, grouping and
// sorting. Collections are safe for concurrent use and persist as JSON-lines
// files with atomic replacement.
package docstore

import (
	"fmt"
	"strings"
)

// Document is a nested JSON-like object: values are strings, numbers
// (float64 or int), bools, nil, []any, or nested Documents.
type Document = map[string]any

// D is a convenience constructor for document literals in tests and
// examples.
func D(pairs ...any) Document {
	if len(pairs)%2 != 0 {
		panic("docstore: D requires key/value pairs")
	}
	d := Document{}
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			panic("docstore: D keys must be strings")
		}
		d[key] = pairs[i+1]
	}
	return d
}

// Get resolves a dotted path ("meta.inserted.2008-01-01") inside doc. The
// second result reports whether every path segment existed. Path segments
// never index into arrays; arrays are handled by the Unwind pipeline stage.
func Get(doc Document, path string) (any, bool) {
	cur := any(doc)
	for _, seg := range strings.Split(path, ".") {
		m, ok := cur.(Document)
		if !ok {
			return nil, false
		}
		cur, ok = m[seg]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Set assigns value at the dotted path inside doc, creating intermediate
// sub-documents as needed. It returns an error if an intermediate segment
// exists but is not a sub-document.
func Set(doc Document, path string, value any) error {
	segs := strings.Split(path, ".")
	cur := doc
	for _, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg]
		if !ok {
			child := Document{}
			cur[seg] = child
			cur = child
			continue
		}
		child, ok := next.(Document)
		if !ok {
			return fmt.Errorf("docstore: path %q blocked by non-document at %q", path, seg)
		}
		cur = child
	}
	cur[segs[len(segs)-1]] = value
	return nil
}

// Clone deep-copies a document (sub-documents and arrays included).
func Clone(doc Document) Document {
	out := make(Document, len(doc))
	for k, v := range doc {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case Document:
		return Clone(t)
	case []any:
		arr := make([]any, len(t))
		for i, e := range t {
			arr[i] = cloneValue(e)
		}
		return arr
	default:
		return v
	}
}

// compare orders two scalar values: numbers before strings, numerically and
// lexicographically respectively; nil sorts first. It returns -1, 0 or 1.
func compare(a, b any) int {
	an, aIsNum := toFloat(a)
	bn, bIsNum := toFloat(b)
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	case aIsNum && bIsNum:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	case aIsNum:
		return -1
	case bIsNum:
		return 1
	default:
		as, bs := fmt.Sprint(a), fmt.Sprint(b)
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		}
		return 0
	}
}

// toFloat widens any numeric value to float64.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}
