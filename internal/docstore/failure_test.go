package docstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Failure injection for the persistence layer: corrupted files, duplicate
// ids, permission problems. The store must fail loudly, never half-load.

func TestLoadFileRejectsCorruptJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"_id\":\"a\"}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("bad")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("corrupt JSONL accepted")
	}
}

func TestLoadFileRejectsDuplicateIDs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.jsonl")
	if err := os.WriteFile(path, []byte("{\"_id\":\"a\"}\n{\"_id\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("dup")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("duplicate _id accepted on load")
	}
}

func TestLoadFileRejectsMissingID(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "noid.jsonl")
	if err := os.WriteFile(path, []byte("{\"x\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("noid")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("document without _id accepted on load")
	}
}

func TestLoadMissingDirectory(t *testing.T) {
	db, err := Load(filepath.Join(t.TempDir(), "nope"))
	// Glob on a missing directory yields no matches, not an error: an
	// empty database is the correct result.
	if err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if len(db.CollectionNames()) != 0 {
		t.Error("phantom collections")
	}
}

func TestSaveFailureLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	db.Collection("x").Insert(D("_id", "a"))
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Make the directory read-only so the temp file cannot be created.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	db.Collection("x").Insert(D("_id", "b"))
	if err := db.Save(dir); err == nil {
		t.Skip("environment allows writing into read-only dirs (running as root)")
	}
	if err := os.Chmod(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("x").Len() != 1 {
		t.Errorf("failed save corrupted the previous state: %d docs", loaded.Collection("x").Len())
	}
}

// Crash-safety of segmented saves: a save that dies between steps must
// leave a directory that either loads the previous complete state or fails
// loudly — never a torn mix of generations.

// segmentedDir saves a small DB in segmented form and returns the dir.
func segmentedDir(t *testing.T, docs, segments int) (string, *DB) {
	t.Helper()
	db := NewDB()
	c := db.Collection("x")
	for i := 0; i < docs; i++ {
		if err := c.Insert(D("_id", fmt.Sprintf("d%04d", i), "n", i)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: segments}); err != nil {
		t.Fatal(err)
	}
	return dir, db
}

func TestLoadRejectsTruncatedSegment(t *testing.T) {
	dir, _ := segmentedDir(t, 100, 4)
	path := filepath.Join(dir, "x.01.jsonl")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil {
		t.Fatal("truncated segment loaded silently")
	}
}

func TestLoadRejectsCorruptedSegment(t *testing.T) {
	// Same length, different bytes: only the CRC catches it.
	dir, _ := segmentedDir(t, 100, 4)
	path := filepath.Join(dir, "x.02.jsonl")
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)/2] ^= 0x20
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted segment: got %v, want CRC mismatch", err)
	}
}

func TestLoadRejectsMissingSegment(t *testing.T) {
	dir, _ := segmentedDir(t, 100, 4)
	if err := os.Remove(filepath.Join(dir, "x.03.jsonl")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil {
		t.Fatal("missing segment loaded silently")
	}
}

func TestLoadRejectsMixedGenerationSegment(t *testing.T) {
	// Simulate a save that crashed mid-overwrite: segment 00 is from a
	// newer, different generation than the manifest.
	dir, db := segmentedDir(t, 100, 4)
	db.Collection("x").Update("d0000", func(d Document) { d["n"] = "changed" })
	other := t.TempDir()
	if err := db.SaveParallelOpts(other, SaveOpts{Segments: 4}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(other, "x.00.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.00.jsonl"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil {
		t.Fatal("mixed-generation segments loaded silently")
	}
}

func TestLoadSkipsOrphanSegmentsNextToFlatFile(t *testing.T) {
	// A segmented save that crashed before its manifest committed leaves
	// orphan segments next to the still-authoritative flat file; the loader
	// must serve the flat state and ignore the orphans.
	db := NewDB()
	db.Collection("x").Insert(D("_id", "a", "n", 1))
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	orphan := "{\"_id\":\"ghost\"}\n"
	if err := os.WriteFile(filepath.Join(dir, "x.00.jsonl"), []byte(orphan), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("x").Len() != 1 || loaded.Collection("x").Get("ghost") != nil {
		t.Error("orphan segment leaked into the flat load")
	}
}

func TestLoadRejectsOrphanSegmentsWithoutFlatFile(t *testing.T) {
	// Orphan segments with no manifest and no flat file: there is no
	// authoritative state to fall back to, so the load must fail loudly
	// rather than guess.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.00.jsonl"), []byte("{\"_id\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("orphan segments: got %v, want loud manifest error", err)
	}
}

func TestLoadRejectsUnsupportedManifestVersion(t *testing.T) {
	dir, _ := segmentedDir(t, 10, 1)
	manPath := filepath.Join(dir, "x"+manifestSuffix)
	body, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, []byte(strings.Replace(string(body), "\"version\": 1", "\"version\": 99", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future manifest version: got %v, want version error", err)
	}
}

func TestLoadRejectsDocCountMismatch(t *testing.T) {
	// A manifest promising more documents than its segments hold means the
	// manifest and segments are from different generations.
	dir, _ := segmentedDir(t, 20, 2)
	manPath := filepath.Join(dir, "x"+manifestSuffix)
	body, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(body), "\"docs\": 20", "\"docs\": 21", 1)
	if patched == string(body) {
		t.Fatal("fixture drift: total doc count not found in manifest")
	}
	if err := os.WriteFile(manPath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(dir); err == nil {
		t.Fatal("doc-count mismatch loaded silently")
	}
}

func TestSaveUnencodableValueCleansUp(t *testing.T) {
	dir := t.TempDir()
	c := NewCollection("x")
	// A channel cannot be JSON-encoded.
	c.Insert(Document{"_id": "a", "bad": make(chan int)})
	path := filepath.Join(dir, "x.jsonl")
	if err := c.Save(path); err == nil {
		t.Fatal("unencodable value accepted")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after failed save")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed save created a partial target file")
	}
}

// Manifest validation regressions, found by FuzzLoadSegmented (the crashing
// inputs are kept as seeds under testdata/fuzz/FuzzLoadSegmented): hostile
// numbers and file names in a manifest must be rejected before any
// allocation or file access is sized from them.

// writeManifest replaces the store's manifest with raw bytes.
func writeManifest(t *testing.T, dir, collection string, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, collection+manifestSuffix), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsNegativeManifestDocs(t *testing.T) {
	// Pre-fix, docs:-1 reached make([]Document, 0, -1) in readSegment and
	// panicked with "makeslice: cap out of range".
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c.00.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	writeManifest(t, dir, "c",
		`{"version":1,"collection":"c","docs":-1,"segments":[{"file":"c.00.jsonl","docs":-1,"bytes":0,"crc32":0}]}`)
	if _, err := LoadParallel(dir); err == nil {
		t.Fatal("negative-docs manifest loaded silently")
	}
}

func TestLoadRejectsImpossibleManifestDocCount(t *testing.T) {
	// More documents than bytes/2+1 cannot exist; pre-fix the count sized an
	// unbounded decode allocation.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c.00.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	writeManifest(t, dir, "c",
		`{"version":1,"collection":"c","docs":1000000000000,"segments":[{"file":"c.00.jsonl","docs":1000000000000,"bytes":0,"crc32":0}]}`)
	if _, err := LoadParallel(dir); err == nil || !strings.Contains(err.Error(), "impossible") {
		t.Fatalf("impossible doc count: got %v, want validation error", err)
	}
}

func TestLoadRejectsEscapingSegmentFileName(t *testing.T) {
	// A manifest must not be able to point the loader at files outside its
	// own store directory.
	dir := t.TempDir()
	writeManifest(t, dir, "c",
		`{"version":1,"collection":"c","docs":0,"segments":[{"file":"../../../etc/passwd","docs":0,"bytes":0,"crc32":0}]}`)
	if _, err := LoadParallel(dir); err == nil || !strings.Contains(err.Error(), "store directory") {
		t.Fatalf("escaping file name: got %v, want validation error", err)
	}
}
