package docstore

import (
	"os"
	"path/filepath"
	"testing"
)

// Failure injection for the persistence layer: corrupted files, duplicate
// ids, permission problems. The store must fail loudly, never half-load.

func TestLoadFileRejectsCorruptJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"_id\":\"a\"}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("bad")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("corrupt JSONL accepted")
	}
}

func TestLoadFileRejectsDuplicateIDs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.jsonl")
	if err := os.WriteFile(path, []byte("{\"_id\":\"a\"}\n{\"_id\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("dup")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("duplicate _id accepted on load")
	}
}

func TestLoadFileRejectsMissingID(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "noid.jsonl")
	if err := os.WriteFile(path, []byte("{\"x\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("noid")
	if err := c.LoadFile(path); err == nil {
		t.Fatal("document without _id accepted on load")
	}
}

func TestLoadMissingDirectory(t *testing.T) {
	db, err := Load(filepath.Join(t.TempDir(), "nope"))
	// Glob on a missing directory yields no matches, not an error: an
	// empty database is the correct result.
	if err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if len(db.CollectionNames()) != 0 {
		t.Error("phantom collections")
	}
}

func TestSaveFailureLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	db.Collection("x").Insert(D("_id", "a"))
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Make the directory read-only so the temp file cannot be created.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	db.Collection("x").Insert(D("_id", "b"))
	if err := db.Save(dir); err == nil {
		t.Skip("environment allows writing into read-only dirs (running as root)")
	}
	if err := os.Chmod(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("x").Len() != 1 {
		t.Errorf("failed save corrupted the previous state: %d docs", loaded.Collection("x").Len())
	}
}

func TestSaveUnencodableValueCleansUp(t *testing.T) {
	dir := t.TempDir()
	c := NewCollection("x")
	// A channel cannot be JSON-encoded.
	c.Insert(Document{"_id": "a", "bad": make(chan int)})
	path := filepath.Join(dir, "x.jsonl")
	if err := c.Save(path); err == nil {
		t.Fatal("unencodable value accepted")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after failed save")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed save created a partial target file")
	}
}
