package docstore

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// pushdownCollection builds a collection with a hash index on "county" and
// an ordered index on "score"; "tag" stays unindexed so the same filters can
// run as plain scans.
func pushdownCollection(t testing.TB, n int) *Collection {
	t.Helper()
	c := NewCollection("push")
	c.CreateIndex("county")
	c.CreateOrderedIndex("score")
	for i := 0; i < n; i++ {
		err := c.Insert(D(
			"_id", fmt.Sprintf("d%05d", i),
			"county", fmt.Sprintf("county-%d", i%13),
			"score", float64(i%97)/97,
			"tag", fmt.Sprintf("tag-%d", i%7),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 11 {
		c.Delete(fmt.Sprintf("d%05d", i))
	}
	return c
}

// TestPipelinePushdownMatchesScan is the planner's correctness net: every
// filter shape must return exactly what the same pipeline returns on an
// index-free copy of the data, in the same order.
func TestPipelinePushdownMatchesScan(t *testing.T) {
	indexed := pushdownCollection(t, 400)
	plain := NewCollection("plain")
	indexed.ForEach(func(d Document) bool {
		if err := plain.Insert(Clone(d)); err != nil {
			t.Fatal(err)
		}
		return true
	})

	filters := map[string]Filter{
		"eq-hash":        Eq("county", "county-3"),
		"eq-ordered":     Eq("score", float64(42)/97),
		"eq-miss":        Eq("county", "nowhere"),
		"lt":             Lt("score", 0.25),
		"lte":            Lte("score", 0.25),
		"gt":             Gt("score", 0.75),
		"gte":            Gte("score", 0.75),
		"and-pushable":   And(Eq("county", "county-5"), Gt("score", 0.5)),
		"and-later-conj": And(Eq("tag", "tag-2"), Lte("score", 0.5)),
		"or-no-pushdown": Or(Eq("county", "county-1"), Eq("county", "county-2")),
		"not":            Not(Eq("county", "county-1")),
		"exists":         Exists("score"),
		"where-opaque":   Where(func(d Document) bool { v, _ := Get(d, "tag"); return v == "tag-3" }),
		"nil":            nil,
	}
	for name, f := range filters {
		t.Run(name, func(t *testing.T) {
			got := indexed.Pipeline(Match{f}, Sort{Path: "_id"})
			want := plain.Pipeline(Match{f}, Sort{Path: "_id"})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pushdown diverged from plain scan: %d vs %d docs", len(got), len(want))
			}
		})
	}
}

func TestPipelinePushdownCounters(t *testing.T) {
	c := pushdownCollection(t, 200)
	obs := &countObserver{}
	c.SetObserver(obs)

	// Indexed equality: the scan must touch only the index bucket.
	out := c.Pipeline(Match{Eq("county", "county-3")})
	if obs.get(CounterPushdownHits) != 1 {
		t.Error("indexed Match did not report a pushdown hit")
	}
	if scanned := obs.get(CounterDocsScanned); scanned != int64(len(out)) {
		t.Errorf("indexed Match scanned %d docs for %d results", scanned, len(out))
	}
	if cloned := obs.get(CounterDocsCloned); cloned != int64(len(out)) {
		t.Errorf("cloned %d docs for %d results", cloned, len(out))
	}

	// Unindexed equality: full scan, no pushdown.
	before := obs.get(CounterDocsScanned)
	c.Pipeline(Match{Eq("tag", "tag-1")})
	if obs.get(CounterPushdownHits) != 1 {
		t.Error("unindexed Match claimed a pushdown hit")
	}
	if obs.get(CounterDocsScanned)-before != int64(c.Len()) {
		t.Error("unindexed Match did not scan the whole collection")
	}
	if obs.get(CounterPipelineRuns) != 2 {
		t.Errorf("pipeline runs counter = %d, want 2", obs.get(CounterPipelineRuns))
	}
}

func TestPipelineLimitStopsCloning(t *testing.T) {
	// Streaming means a Limit after a Match stops pulling — and therefore
	// stops cloning — once it is satisfied.
	c := pushdownCollection(t, 300)
	obs := &countObserver{}
	c.SetObserver(obs)
	out := c.Pipeline(Match{Exists("score")}, Limit{N: 5})
	if len(out) != 5 {
		t.Fatalf("Limit returned %d docs", len(out))
	}
	if cloned := obs.get(CounterDocsCloned); cloned != 5 {
		t.Errorf("cloned %d docs for a Limit of 5", cloned)
	}
}

// TestPipelineStagesCannotMutateStore is the no-mutation regression test:
// hostile stages and predicates operate on clones, so the stored documents
// (reachable by later queries) must come through unscathed.
func TestPipelineStagesCannotMutateStore(t *testing.T) {
	c := NewCollection("x")
	for i := 0; i < 10; i++ {
		if err := c.Insert(D("_id", fmt.Sprintf("d%d", i), "n", i, "arr", []any{1, 2})); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Pipeline() // Pipeline clones, so this snapshot is safe
	c.Pipeline(
		Match{Where(func(d Document) bool { d["evil"] = true; return true })},
		AddField{Path: "n", Fn: func(d Document) any { d["arr"].([]any)[0] = 99; return -1 }},
		Unwind{Path: "arr"},
	)
	c.Pipeline(Match{Eq("n", 3)}, AddField{Path: "smuggled", Fn: func(d Document) any { return true }})
	after := c.Pipeline()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("a pipeline stage mutated stored documents")
	}
}

func TestPipelineStreamsBarrierStages(t *testing.T) {
	// Sort/Group/Sample buffer internally but must still compose with the
	// streaming stages around them.
	c := pushdownCollection(t, 120)
	out := c.Pipeline(
		Match{Gte("score", 0.5)},
		Sort{Path: "score", Desc: true},
		Skip{N: 2},
		Limit{N: 4},
		Project{Paths: []string{"score"}},
	)
	if len(out) != 4 {
		t.Fatalf("got %d docs, want 4", len(out))
	}
	for i := 1; i < len(out); i++ {
		a, _ := Get(out[i-1], "score")
		b, _ := Get(out[i], "score")
		if compare(a, b) < 0 {
			t.Fatal("Sort order violated after Skip/Limit")
		}
	}
	counted := c.Pipeline(Match{Lt("score", 0.5)}, Count{})
	if len(counted) != 1 {
		t.Fatalf("Count emitted %d docs", len(counted))
	}
	sampled := c.Pipeline(Sample{N: 7, Seed: 3})
	if len(sampled) != 7 {
		t.Fatalf("Sample returned %d docs, want 7", len(sampled))
	}
}

func TestForEachParallelMatchesSequential(t *testing.T) {
	c := pushdownCollection(t, 500)
	want := map[string]bool{}
	c.ForEach(func(d Document) bool {
		want[d["_id"].(string)] = true
		return true
	})
	for _, workers := range []int{0, 1, 2, 7} {
		var mu sync.Mutex
		got := map[string]bool{}
		c.ForEachParallel(workers, func(d Document) {
			mu.Lock()
			got[d["_id"].(string)] = true
			mu.Unlock()
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d visited %d docs, want %d", workers, len(got), len(want))
		}
	}
	// Empty collection must not deadlock or spawn goroutines.
	NewCollection("empty").ForEachParallel(4, func(Document) { t.Error("visited a phantom doc") })
}

func TestForEachIndexedParallelRanks(t *testing.T) {
	c := pushdownCollection(t, 500)
	// The rank-addressed scan must assign every live doc a dense rank in
	// insertion order, identically for any worker count.
	want := make([]string, 0, 500)
	c.ForEach(func(d Document) bool {
		want = append(want, d["_id"].(string))
		return true
	})
	for _, workers := range []int{0, 1, 2, 7} {
		got := make([]string, len(want))
		var visits atomic.Int64
		c.ForEachIndexedParallel(workers, func(rank int, d Document) {
			got[rank] = d["_id"].(string) // out-of-range rank panics the test
			visits.Add(1)
		})
		if int(visits.Load()) != len(want) {
			t.Fatalf("workers=%d: %d visits, want %d", workers, visits.Load(), len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: rank order diverged from insertion order", workers)
		}
	}
	// Empty collection must not deadlock or spawn goroutines.
	NewCollection("empty").ForEachIndexedParallel(4, func(int, Document) { t.Error("visited a phantom doc") })
}

func TestIndexKeyMatchesFmtSprint(t *testing.T) {
	// The fast path must key the same buckets as the fmt.Sprint fallback,
	// or an index built before a type changes shape would miss documents.
	values := []any{
		"s", "", 0, 42, -7, int64(1 << 40), int64(-3),
		0.0, 1.0, 3.14, -2.5e-8, 1e21, float64(1 << 53),
		true, false,
	}
	for _, v := range values {
		if got, want := indexKey(v), fmt.Sprint(v); got != want {
			t.Errorf("indexKey(%#v) = %q, want %q", v, got, want)
		}
	}
}

func BenchmarkIndexKey(b *testing.B) {
	// The satellite's allocation benchmark: string and float64 are the two
	// renderings every insert into an indexed collection pays.
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			indexKey("county-7")
		}
	})
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			indexKey(float64(i%97) / 97)
		}
	})
	b.Run("fallback", func(b *testing.B) {
		b.ReportAllocs()
		v := []any{1, 2}
		for i := 0; i < b.N; i++ {
			indexKey(v)
		}
	})
}

func BenchmarkPipelinePushdown(b *testing.B) {
	c := pushdownCollection(b, 5000)
	plain := NewCollection("plain")
	c.ForEach(func(d Document) bool {
		if err := plain.Insert(Clone(d)); err != nil {
			b.Fatal(err)
		}
		return true
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Pipeline(Match{Eq("county", "county-3")}, Count{})
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.Pipeline(Match{Eq("county", "county-3")}, Count{})
		}
	})
}

func BenchmarkForEachParallel(b *testing.B) {
	c := pushdownCollection(b, 20000)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := int64(0)
				var mu sync.Mutex
				c.ForEachParallel(workers, func(d Document) {
					v, _ := Get(d, "score")
					f, _ := toFloat(v)
					mu.Lock()
					total += int64(f * 100)
					mu.Unlock()
				})
			}
		})
	}
}

// TestOrdSlotsBounds pins the ordered-index range resolution the planner
// relies on: inclusive and exclusive bounds, open ends, insertion order.
func TestOrdSlotsBounds(t *testing.T) {
	c := NewCollection("x")
	c.CreateOrderedIndex("v")
	for i := 0; i < 10; i++ {
		if err := c.Insert(D("_id", fmt.Sprintf("d%d", i), "v", i%5)); err != nil {
			t.Fatal(err)
		}
	}
	ix, ok := c.refreshOrdered("v")
	if !ok {
		t.Fatal("no ordered index")
	}
	get := func(lo, hi any, exLo, exHi bool) []int {
		slots := ordSlots(ix, lo, hi, exLo, exHi)
		if !sort.IntsAreSorted(slots) {
			t.Fatalf("slots not in insertion order: %v", slots)
		}
		return slots
	}
	if got := get(2, 2, false, false); len(got) != 2 {
		t.Errorf("v == 2: %d slots, want 2", len(got))
	}
	if got := get(2, nil, true, false); len(got) != 4 {
		t.Errorf("v > 2: %d slots, want 4", len(got))
	}
	if got := get(nil, 2, false, true); len(got) != 4 {
		t.Errorf("v < 2: %d slots, want 4", len(got))
	}
	if got := get(nil, nil, false, false); len(got) != 10 {
		t.Errorf("open scan: %d slots, want 10", len(got))
	}
}
