package docstore

// StoreObserver receives the docstore counters — the docstore_pipeline_total
// family on GET /metrics. obs.Metrics satisfies it through AddN; the
// interface lives here (instead of importing obs) to keep docstore
// dependency-free. A nil observer drops counters with no overhead beyond a
// nil check.
type StoreObserver interface {
	// AddN adds n to the named counter. Called from worker goroutines;
	// implementations must be safe for concurrent use.
	AddN(counter string, n int64)
}

// Counter names of the docstore_pipeline_total family. The segments/bytes/
// docs counters track the segmented persistence layer; the pipeline
// counters track the streaming query path and its index pushdown.
const (
	CounterSegmentsWritten = "docstore_segments_written"
	CounterSegmentsRead    = "docstore_segments_read"
	// CounterSegmentsReused counts segments a dirty-segment save kept on disk
	// untouched; CounterDeltaFullRewrites counts dirty saves that had to fall
	// back to a full rewrite (missing/foreign manifest or changed layout).
	CounterSegmentsReused    = "docstore_segments_reused"
	CounterDeltaFullRewrites = "docstore_delta_full_rewrites"
	// CounterSegmentsCached counts segments a reload decoded from a
	// SegmentCache instead of re-reading and re-parsing the file.
	CounterSegmentsCached = "docstore_segments_cached"
	CounterBytesWritten   = "docstore_bytes_written"
	CounterBytesRead      = "docstore_bytes_read"
	CounterDocsWritten    = "docstore_docs_written"
	CounterDocsRead       = "docstore_docs_read"
	CounterPipelineRuns   = "docstore_pipeline_runs"
	CounterPushdownHits   = "docstore_pushdown_hits"
	CounterDocsScanned    = "docstore_docs_scanned"
	CounterDocsCloned     = "docstore_docs_cloned"
)

// addN reports to a possibly nil observer, skipping zero deltas.
func addN(o StoreObserver, counter string, n int64) {
	if o != nil && n != 0 {
		o.AddN(counter, n)
	}
}
