package docstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// pagedCollection builds a collection of n documents with a "score" value
// cycling through tenths so the ordered index has plenty of ties.
func pagedCollection(t *testing.T, n int, indexed bool) *Collection {
	t.Helper()
	c := NewCollection("clusters")
	for i := 0; i < n; i++ {
		doc := D("_id", fmt.Sprintf("NC%04d", i), "score", float64(i%10)/10, "size", i%7)
		if err := c.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	if indexed {
		c.CreateOrderedIndex("score")
	}
	return c
}

func pageThrough(t *testing.T, c *Collection, path string, lo, hi any, limit int) []Document {
	t.Helper()
	var all []Document
	after := ""
	for {
		page, next, err := c.FindRangePage(path, lo, hi, after, limit)
		if err != nil {
			t.Fatalf("FindRangePage(after=%q): %v", after, err)
		}
		if len(page) > limit {
			t.Fatalf("page of %d docs exceeds limit %d", len(page), limit)
		}
		all = append(all, page...)
		if next == "" {
			if len(page) == limit && len(all) < c.CountRange(path, lo, hi) {
				t.Fatalf("cursor ended early at %d docs", len(all))
			}
			return all
		}
		after = next
	}
}

func TestFindRangePageMatchesFindRange(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		c := pagedCollection(t, 95, indexed)
		for _, limit := range []int{1, 7, 100} {
			paged := pageThrough(t, c, "score", 0.2, 0.7, limit)
			full := c.FindRange("score", 0.2, 0.7)
			if len(paged) != len(full) {
				t.Fatalf("indexed=%v limit=%d: paged %d docs, FindRange %d",
					indexed, limit, len(paged), len(full))
			}
			seen := map[string]bool{}
			for i, d := range paged {
				id := d["_id"].(string)
				if seen[id] {
					t.Fatalf("duplicate %s across pages", id)
				}
				seen[id] = true
				if full[i]["_id"] != id {
					t.Fatalf("indexed=%v limit=%d: order diverges at %d: %v vs %v",
						indexed, limit, i, id, full[i]["_id"])
				}
			}
			if got, want := c.CountRange("score", 0.2, 0.7), len(full); got != want {
				t.Fatalf("CountRange = %d, want %d", got, want)
			}
		}
	}
}

func TestFindRangePageOpenBoundsAndLimits(t *testing.T) {
	c := pagedCollection(t, 30, true)
	if got := len(pageThrough(t, c, "score", nil, nil, 4)); got != 30 {
		t.Fatalf("open-range paging returned %d docs, want 30", got)
	}
	docs, next, err := c.FindRangePage("score", nil, nil, "", 0)
	if err != nil || docs != nil || next != "" {
		t.Fatalf("limit=0: got %v, %q, %v", docs, next, err)
	}
	// A page ending exactly at the range end must not hand out a cursor.
	total := c.CountRange("score", nil, nil)
	docs, next, err = c.FindRangePage("score", nil, nil, "", total)
	if err != nil || len(docs) != total || next != "" {
		t.Fatalf("exact-fit page: %d docs, next=%q, err=%v", len(docs), next, err)
	}
}

func TestFindRangePageBadCursor(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		c := pagedCollection(t, 10, indexed)
		if _, _, err := c.FindRangePage("score", nil, nil, "NOPE", 5); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("indexed=%v: unknown cursor err = %v, want ErrBadCursor", indexed, err)
		}
		// A cursor document that lost the scanned path is stale too.
		c.Update("NC0003", func(d Document) { delete(d, "score") })
		if _, _, err := c.FindRangePage("score", nil, nil, "NC0003", 5); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("indexed=%v: pathless cursor err = %v, want ErrBadCursor", indexed, err)
		}
	}
}

func TestFindRangePageAfterDelete(t *testing.T) {
	c := pagedCollection(t, 20, true)
	page, next, err := c.FindRangePage("score", nil, nil, "", 5)
	if err != nil || next == "" {
		t.Fatalf("first page: next=%q err=%v", next, err)
	}
	// Deleting the cursor document invalidates the cursor.
	c.Delete(next)
	if _, _, err := c.FindRangePage("score", nil, nil, next, 5); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("deleted cursor err = %v, want ErrBadCursor", err)
	}
	// Paging from a surviving document still works.
	alive, _ := page[len(page)-2]["_id"].(string)
	if _, _, err := c.FindRangePage("score", nil, nil, alive, 5); err != nil {
		t.Fatalf("live cursor err = %v", err)
	}
}

func TestForEachContext(t *testing.T) {
	c := pagedCollection(t, 3*forEachCtxStride, false)
	// A live context completes the scan.
	n := 0
	if err := c.ForEachContext(context.Background(), func(Document) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3*forEachCtxStride {
		t.Fatalf("visited %d docs", n)
	}
	// A cancelled context aborts between strides.
	ctx, cancel := context.WithCancel(context.Background())
	n = 0
	err := c.ForEachContext(ctx, func(Document) bool {
		n++
		if n == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= 3*forEachCtxStride {
		t.Fatalf("cancellation ignored: visited %d docs", n)
	}
	// Early stop by the callback is not an error.
	if err := c.ForEachContext(context.Background(), func(Document) bool { return false }); err != nil {
		t.Fatal(err)
	}
}

// TestFindRangePageConcurrent hammers paged reads while writers move scores
// around; run with -race. Pages may skip or repeat documents across a
// concurrent update, but every call must return well-formed results and
// cursors must stay usable or fail with ErrBadCursor — never panic.
func TestFindRangePageConcurrent(t *testing.T) {
	c := pagedCollection(t, 400, true)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("NC%04d", (i*13+w)%400)
				c.Update(id, func(d Document) { d["score"] = float64((i+w)%100) / 100 })
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				after := ""
				for hops := 0; hops < 20; hops++ {
					page, next, err := c.FindRangePage("score", 0.1, 0.9, after, 16)
					if err != nil {
						if !errors.Is(err, ErrBadCursor) {
							t.Errorf("FindRangePage: %v", err)
						}
						break
					}
					if len(page) > 16 {
						t.Errorf("oversized page: %d", len(page))
					}
					if next == "" {
						break
					}
					after = next
				}
				c.CountRange("score", 0.1, 0.9)
			}
		}()
	}
	// Writers run until every reader finishes its fixed workload.
	readers.Wait()
	close(stop)
	writers.Wait()
}
