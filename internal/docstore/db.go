package docstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is a set of named collections with JSON-lines persistence. Each
// collection saves to <dir>/<name>.jsonl via an atomic write-then-rename, so
// a crash mid-save never corrupts a previously saved state.
type DB struct {
	mu          sync.Mutex
	collections map[string]*Collection
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{collections: map[string]*Collection{}}
}

// Collection returns the named collection, creating it if necessary.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = NewCollection(name)
		db.collections[name] = c
	}
	return c
}

// CollectionNames returns the names of all collections, sorted.
func (db *DB) CollectionNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Save persists every collection into dir (created if missing).
func (db *DB) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).Save(filepath.Join(dir, name+".jsonl")); err != nil {
			return err
		}
	}
	return nil
}

// Load reads every *.jsonl collection file in dir into a fresh database.
func Load(dir string) (*DB, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	db := NewDB()
	for _, path := range matches {
		name := filepath.Base(path)
		name = name[:len(name)-len(".jsonl")]
		if err := db.Collection(name).LoadFile(path); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Save writes the collection as JSON lines (one document per line, in
// insertion order) using a temporary file and an atomic rename.
func (c *Collection) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(w)
	var encodeErr error
	c.ForEach(func(d Document) bool {
		if err := enc.Encode(d); err != nil {
			encodeErr = err
			return false
		}
		return true
	})
	if encodeErr == nil {
		encodeErr = w.Flush()
	}
	if err := f.Close(); encodeErr == nil {
		encodeErr = err
	}
	if encodeErr != nil {
		os.Remove(tmp)
		return encodeErr
	}
	return os.Rename(tmp, path)
}

// LoadFile appends the documents of a JSON-lines file into the collection.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		var d Document
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return fmt.Errorf("docstore: %s line %d: %w", path, line, err)
		}
		normalize(d)
		if err := c.Insert(d); err != nil {
			return fmt.Errorf("docstore: %s line %d: %w", path, line, err)
		}
	}
	return sc.Err()
}

// normalize rewrites decoded JSON values in place so nested objects are
// Documents (encoding/json already decodes into map[string]any, which is
// our Document type; this pass exists to keep the invariant explicit and to
// normalize nested arrays).
func normalize(d Document) {
	for k, v := range d {
		d[k] = normalizeValue(v)
	}
}

func normalizeValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		normalize(t)
		return t
	case []any:
		for i := range t {
			t[i] = normalizeValue(t[i])
		}
		return t
	default:
		return v
	}
}
