package docstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/scanio"
)

// Buffer sizes of the JSON-lines codec. A cluster document embeds every
// record of the cluster, so single lines grow far past bufio's 64 KiB
// default; loadMaxLineBytes bounds them at 64 MiB. The limits live in
// internal/scanio next to the voter TSV reader's pair so the two
// line-oriented readers share one buffer geometry.
const (
	// saveBufferBytes sizes the buffered writer of flat saves.
	saveBufferBytes = 1 << 16
	// loadMaxLineBytes is the largest single document line a load accepts.
	loadMaxLineBytes = scanio.MaxDocLineBytes
)

// DB is a set of named collections with JSON-lines persistence. Each
// collection saves to <dir>/<name>.jsonl via an atomic write-then-rename, so
// a crash mid-save never corrupts a previously saved state. SaveParallel
// writes the segmented format instead (see segment.go); Load reads both.
type DB struct {
	mu          sync.Mutex
	collections map[string]*Collection
	obsv        StoreObserver // inherited by collections created later
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{collections: map[string]*Collection{}}
}

// Collection returns the named collection, creating it if necessary.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = NewCollection(name)
		c.SetObserver(db.obsv)
		db.collections[name] = c
	}
	return c
}

// SetObserver routes the docstore_* counters of every collection — current
// and future — to o; nil disconnects. obs.Metrics satisfies StoreObserver,
// so a serving process wires the store into GET /metrics with one call.
func (db *DB) SetObserver(o StoreObserver) {
	db.mu.Lock()
	db.obsv = o
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	db.mu.Unlock()
	for _, c := range cols {
		c.SetObserver(o)
	}
}

// CollectionNames returns the names of all collections, sorted.
func (db *DB) CollectionNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Save persists every collection into dir (created if missing) as one flat
// .jsonl file each — the sequential baseline SaveParallel is measured
// against. Any segmented state a previous SaveParallel left for the same
// collections is removed once the flat file is in place, so the formats
// never coexist.
func (db *DB) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).Save(filepath.Join(dir, name+".jsonl")); err != nil {
			return err
		}
		removeSegmentedState(dir, name)
	}
	return nil
}

// Load reads every collection in dir — flat or segmented — into a fresh
// database, decoding sequentially. It is LoadParallelOpts at one worker.
func Load(dir string) (*DB, error) {
	return LoadParallelOpts(dir, LoadOpts{Workers: 1})
}

// Save writes the collection as JSON lines (one document per line, in
// insertion order) using a temporary file and an atomic rename.
func (c *Collection) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, saveBufferBytes)
	enc := json.NewEncoder(w)
	var encodeErr error
	c.ForEach(func(d Document) bool {
		if err := enc.Encode(d); err != nil {
			encodeErr = err
			return false
		}
		return true
	})
	if encodeErr == nil {
		encodeErr = w.Flush()
	}
	if err := f.Close(); encodeErr == nil {
		encodeErr = err
	}
	if encodeErr != nil {
		os.Remove(tmp)
		return encodeErr
	}
	return os.Rename(tmp, path)
}

// LoadFile appends the documents of a JSON-lines file into the collection.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := scanio.NewScanner(f, loadMaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		var d Document
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return fmt.Errorf("docstore: %s line %d: %w", path, line, err)
		}
		normalize(d)
		if err := c.Insert(d); err != nil {
			return fmt.Errorf("docstore: %s line %d: %w", path, line, err)
		}
	}
	return sc.Err()
}

// normalize rewrites decoded JSON values in place so nested objects are
// Documents (encoding/json already decodes into map[string]any, which is
// our Document type; this pass exists to keep the invariant explicit and to
// normalize nested arrays).
func normalize(d Document) {
	for k, v := range d {
		d[k] = normalizeValue(v)
	}
}

func normalizeValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		normalize(t)
		return t
	case []any:
		for i := range t {
			t[i] = normalizeValue(t[i])
		}
		return t
	default:
		return v
	}
}
