package docstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// Segmented persistence: each collection splits into N segment files
// (<name>.00.jsonl … <name>.NN.jsonl) holding contiguous insertion-order
// ranges, plus a versioned manifest (<name>.manifest.json) that lists the
// segments with their sizes and CRCs. Encoding and decoding fan out over a
// worker pool — the same sharded-worker pattern as snapshot ingest and pair
// scoring — while the segment layout depends only on the data, never on the
// worker count, so saves are byte-identical at any parallelism and loads
// rebuild the same document order and index contents as the flat path.
//
// The manifest is the commit point. Saves write and rename every segment
// first, then write and rename the manifest, then delete stale files; loads
// trust only what a manifest lists and verify each segment's byte count and
// CRC against it. A crash therefore leaves either the previous complete
// state (no new manifest yet) or the new complete state — segment files
// without a covering manifest are orphans, skipped when an authoritative
// flat file exists for the same collection and a loud error otherwise.

const (
	// manifestVersion is bumped when the manifest schema changes; loaders
	// reject versions they do not understand instead of guessing.
	manifestVersion = 1

	// manifestSuffix names a collection's manifest file.
	manifestSuffix = ".manifest.json"

	// segmentTargetDocs sizes automatic segmentation: one segment per this
	// many documents, up to maxSegments.
	segmentTargetDocs = 4096

	// maxSegments caps the segment count; two digits in the file names
	// bound it below 100, and beyond a few dozen segments per-file overhead
	// outweighs parallelism.
	maxSegments = 64
)

// segmentFileRe recognizes segment file names: <root>.<2+ digits>.jsonl.
var segmentFileRe = regexp.MustCompile(`^(.+)\.(\d{2,})\.jsonl$`)

// segmentManifest is the on-disk manifest of one segmented collection.
type segmentManifest struct {
	Version    int    `json:"version"`
	Collection string `json:"collection"`
	Docs       int    `json:"docs"`
	// Stride records the stable-layout document stride the save used, 0 for
	// the balanced partition. Dirty-segment saves reuse old segments only
	// when the recorded stride equals their own — the guarantee that both
	// generations assign identical [lo, hi) ranges to identical indexes.
	Stride   int           `json:"stride,omitempty"`
	Segments []segmentInfo `json:"segments"`
}

// segmentInfo describes one segment file; Bytes and CRC32 let the loader
// detect torn or mixed-generation segments before any document is decoded.
type segmentInfo struct {
	File  string `json:"file"`
	Docs  int    `json:"docs"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// SaveOpts configures SaveParallelOpts.
type SaveOpts struct {
	// Workers is the encode pool size; <= 0 selects GOMAXPROCS. The worker
	// count never changes the bytes on disk.
	Workers int
	// Segments fixes the per-collection segment count; <= 0 derives it from
	// the document count (one segment per segmentTargetDocs documents,
	// capped at maxSegments).
	Segments int
	// Stride, when > 0, replaces the balanced partition with a stable one:
	// segment i holds documents [i*Stride, (i+1)*Stride), uncapped segment
	// count. The layout of a document then depends only on its insertion
	// position — growing a collection changes the tail segments and leaves
	// every earlier one byte-identical — which is the precondition for Dirty
	// saves reusing untouched segments. Stride wins over Segments.
	Stride int
	// Dirty, when non-nil, switches collections it names into dirty-segment
	// mode: only segments containing a listed document id (or whose layout
	// slot changed) are rewritten, the rest keep their on-disk bytes and the
	// manifest re-stamps around them. Collections absent from the map are
	// fully rewritten as usual. Correctness contract: the set must cover
	// every document whose encoded bytes changed since the previous save of
	// the same directory, and that save must have used the same Stride
	// (core.Delta.DirtyIDs satisfies the former; a differing or unknown
	// previous layout is detected and falls back to a full rewrite). Dirty
	// mode requires Stride > 0 — without a stable layout every boundary may
	// shift — and is ignored otherwise.
	Dirty map[string]map[string]bool
	// Observer receives the docstore_* persistence counters; nil drops them.
	Observer StoreObserver
	// Provenance, when non-nil, receives every collection's committed
	// segment layout — including SHA-256 digests of freshly written
	// segments, computed from the encode buffers on the save's worker pool —
	// so the provenance layer can stamp a verifiable corpus record without
	// re-reading any file. See ProvenanceSink.
	Provenance ProvenanceSink
	// FS substitutes the filesystem the save runs on; nil selects OSFS.
	// The conformance harness injects failures here.
	FS FS
}

// LoadOpts configures LoadParallelOpts.
type LoadOpts struct {
	// Workers is the decode pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Observer receives the docstore_* persistence counters; nil drops them.
	Observer StoreObserver
	// FS substitutes the filesystem the segmented load reads from; nil
	// selects OSFS. Flat .jsonl files always read through the OS.
	FS FS
	// Cache, when non-nil, memoizes decoded segments across loads keyed by
	// the manifest's (file, bytes, CRC32) triple — see SegmentCache for the
	// sharing contract. Unchanged segments of a reload skip both the read
	// and the parse.
	Cache *SegmentCache
}

// validate rejects structurally malformed manifests before any allocation
// or file access is sized from their fields. Found by FuzzLoadSegmented: a
// manifest carrying docs:-1 drove make([]Document, 0, -1) in readSegment
// into a makeslice panic, an absurd docs count drove an unbounded
// allocation, and a file name with path separators let a manifest read
// files outside its own store directory. The crashing inputs are kept as
// regression seeds under testdata/fuzz/FuzzLoadSegmented.
func (m *segmentManifest) validate(manPath string) error {
	if m.Docs < 0 {
		return fmt.Errorf("docstore: %s: manifest promises %d documents", manPath, m.Docs)
	}
	total := 0
	for i, info := range m.Segments {
		if info.Docs < 0 || info.Bytes < 0 {
			return fmt.Errorf("docstore: %s: segment %d promises %d documents in %d bytes",
				manPath, i, info.Docs, info.Bytes)
		}
		// The smallest document line is "{}\n" less the optional trailing
		// newline: two bytes. More documents than bytes/2+1 cannot fit, so
		// the counts are lies and the decode allocation would be sized from
		// them.
		if int64(info.Docs) > info.Bytes/2+1 {
			return fmt.Errorf("docstore: %s: segment %d promises %d documents in %d bytes — impossible",
				manPath, i, info.Docs, info.Bytes)
		}
		if info.File == "" || filepath.Base(info.File) != info.File {
			return fmt.Errorf("docstore: %s: segment %d names %q — segment files must live in the store directory",
				manPath, i, info.File)
		}
		total += info.Docs
	}
	if total != m.Docs {
		return fmt.Errorf("docstore: %s: manifest promises %d documents, segments sum to %d",
			manPath, m.Docs, total)
	}
	return nil
}

// segmentBufPool recycles encode/decode buffers across segments and saves.
var segmentBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// SaveParallel persists every collection into dir as segmented JSON lines
// using GOMAXPROCS encode workers. See SaveParallelOpts.
func (db *DB) SaveParallel(dir string) error {
	return db.SaveParallelOpts(dir, SaveOpts{})
}

// SaveParallelOpts persists every collection into dir (created if missing)
// as segment files plus a manifest, encoding segments on a worker pool with
// pooled buffers. The resulting files are byte-identical for any worker
// count, and LoadParallel rebuilds a database identical to one that made
// the round trip through the flat Save/Load path. Stale flat files and
// left-over segments from earlier saves are removed after the manifest
// commits.
func (db *DB) SaveParallelOpts(dir string, opts SaveOpts) error {
	if err := fsOrDefault(opts.FS).MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).saveSegmented(dir, opts); err != nil {
			return err
		}
	}
	return nil
}

// snapshotDocs returns the live documents in insertion order.
func (c *Collection) snapshotDocs() []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := make([]Document, 0, len(c.byID))
	for _, doc := range c.docs {
		if doc != nil {
			snap = append(snap, doc)
		}
	}
	return snap
}

// segmentCount derives the segment count for docs documents; requested > 0
// overrides the automatic sizing. The count depends only on its inputs —
// never on the worker pool — so the segment layout is deterministic.
func segmentCount(docs, requested int) int {
	n := requested
	if n <= 0 {
		n = (docs + segmentTargetDocs - 1) / segmentTargetDocs
	}
	if n > maxSegments {
		n = maxSegments
	}
	if n > docs {
		n = docs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// segmentFileName names segment i of a collection. %02d widens on its own
// past two digits, matching segmentFileRe's 2-plus-digit pattern, so the
// uncapped Stride layout needs no separate naming scheme.
func segmentFileName(name string, i int) string {
	return fmt.Sprintf("%s.%02d.jsonl", name, i)
}

// segmentRanges partitions docs documents into contiguous [lo, hi) ranges:
// the stable stride layout when stride > 0, otherwise the balanced partition
// into n segments. Both depend only on their inputs, never on the workers.
func segmentRanges(docs, n, stride int) [][2]int {
	if stride > 0 {
		n = (docs + stride - 1) / stride
		if n < 1 {
			n = 1
		}
		out := make([][2]int, n)
		for i := range out {
			lo := i * stride
			hi := lo + stride
			if hi > docs {
				hi = docs
			}
			out[i] = [2]int{lo, hi}
		}
		return out
	}
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{i * docs / n, (i + 1) * docs / n}
	}
	return out
}

// planDirtySave decides, per segment of the new layout, whether the previous
// save's on-disk segment can be kept: reuse[i] holds the old manifest entry
// when segment i needs no rewrite (same file name, same document count —
// with contiguous same-stride ranges that pins the identical [lo, hi) slice
// — present on disk, and no dirty id inside), or a zero entry when it must
// be written. ok = false demands a full rewrite: no previous manifest, a
// manifest this loader would reject, a previous save under a different
// layout (balanced, or another stride), or a shrunken collection — reusing
// across any of those would stitch a mixed-generation manifest together.
// Pure tail growth under the same stride keeps the prefix segments valid:
// document positions never shift, so segment i's range is generation-stable.
func planDirtySave(fsys FS, dir, name string, docs []Document, ranges [][2]int, stride int, dirty map[string]bool) (reuse []segmentInfo, ok bool) {
	manPath := filepath.Join(dir, name+manifestSuffix)
	raw, err := fsys.ReadFile(manPath)
	if err != nil {
		return nil, false
	}
	var man segmentManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, false
	}
	if man.Version != manifestVersion || man.Collection != name ||
		man.validate(manPath) != nil || man.Stride != stride ||
		len(man.Segments) > len(ranges) || man.Docs > len(docs) {
		return nil, false
	}
	onDisk := map[string]bool{}
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			onDisk[e.Name()] = true
		}
	}
	reuse = make([]segmentInfo, len(ranges))
	for i := range man.Segments {
		info := man.Segments[i]
		r := ranges[i]
		if info.File != segmentFileName(name, i) || info.Docs != r[1]-r[0] || !onDisk[info.File] {
			continue
		}
		clean := true
		for _, d := range docs[r[0]:r[1]] {
			if id, _ := d["_id"].(string); dirty[id] {
				clean = false
				break
			}
		}
		if clean {
			reuse[i] = info
		}
	}
	return reuse, true
}

// saveSegmented writes the collection as segments plus a manifest into dir.
func (c *Collection) saveSegmented(dir string, opts SaveOpts) error {
	fsys := fsOrDefault(opts.FS)
	docs := c.snapshotDocs()
	ranges := segmentRanges(len(docs), segmentCount(len(docs), opts.Segments), opts.Stride)
	n := len(ranges)

	// Dirty-segment mode: keep previous-generation segments that provably
	// hold the same bytes, rewrite the rest.
	var reuse []segmentInfo
	if dirty, wantDirty := opts.Dirty[c.name]; wantDirty && opts.Stride > 0 {
		var planned bool
		reuse, planned = planDirtySave(fsys, dir, c.name, docs, ranges, opts.Stride, dirty)
		if !planned {
			addN(opts.Observer, CounterDeltaFullRewrites, 1)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)

	wantSHA := opts.Provenance != nil
	infos := make([]segmentInfo, n)
	shas := make([][]byte, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				lo, hi := ranges[i][0], ranges[i][1]
				infos[i], shas[i], errs[i] = writeSegment(
					fsys, filepath.Join(dir, segmentFileName(c.name, i)), docs[lo:hi], wantSHA)
			}
		}()
	}
	written := 0
	for i := 0; i < n; i++ {
		if reuse != nil && reuse[i].File != "" {
			infos[i] = reuse[i]
			continue
		}
		written++
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Commit: the manifest rename is the single atomic switch to the new
	// state.
	man := segmentManifest{
		Version:    manifestVersion,
		Collection: c.name,
		Docs:       len(docs),
		Stride:     max(opts.Stride, 0),
		Segments:   infos,
	}
	body, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	manPath := filepath.Join(dir, c.name+manifestSuffix)
	tmp := manPath + ".tmp"
	if err := fsys.WriteFile(tmp, append(body, '\n'), 0o644); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, manPath); err != nil {
		fsys.Remove(tmp)
		return err
	}

	// Post-commit cleanup: the flat file and any higher-numbered segments
	// from an earlier, wider save are stale now.
	fsys.Remove(filepath.Join(dir, c.name+".jsonl"))
	removeStaleSegments(fsys, dir, c.name, n)

	if opts.Provenance != nil {
		digests := make([]SegmentDigest, n)
		for i, info := range infos {
			digests[i] = SegmentDigest{
				File: info.File, Docs: info.Docs, Bytes: info.Bytes, CRC32: info.CRC32,
				SHA256: shas[i], Reused: reuse != nil && reuse[i].File != "",
			}
		}
		opts.Provenance.CommitCollection(dir, c.name, max(opts.Stride, 0), len(docs), digests)
	}

	o := opts.Observer
	addN(o, CounterSegmentsWritten, int64(written))
	addN(o, CounterSegmentsReused, int64(n-written))
	var totalBytes int64
	docsWritten := 0
	for i, info := range infos {
		if reuse != nil && reuse[i].File != "" {
			continue
		}
		totalBytes += info.Bytes
		docsWritten += info.Docs
	}
	addN(o, CounterDocsWritten, int64(docsWritten))
	addN(o, CounterBytesWritten, totalBytes)
	return nil
}

// writeSegment encodes docs into a pooled buffer and writes them to path via
// a temporary file and rename. With wantSHA it also returns the SHA-256 of
// the written bytes — computed here, from the exact buffer that hit the
// disk, so a ProvenanceSink never has to read the file back.
func writeSegment(fsys FS, path string, docs []Document, wantSHA bool) (segmentInfo, []byte, error) {
	buf := segmentBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer segmentBufPool.Put(buf)
	enc := json.NewEncoder(buf)
	for _, d := range docs {
		if err := enc.Encode(d); err != nil {
			return segmentInfo{}, nil, fmt.Errorf("docstore: %s: %w", path, err)
		}
	}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		fsys.Remove(tmp)
		return segmentInfo{}, nil, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return segmentInfo{}, nil, err
	}
	var sha []byte
	if wantSHA {
		sum := sha256.Sum256(buf.Bytes())
		sha = sum[:]
	}
	return segmentInfo{
		File:  filepath.Base(path),
		Docs:  len(docs),
		Bytes: int64(buf.Len()),
		CRC32: crc32.ChecksumIEEE(buf.Bytes()),
	}, sha, nil
}

// removeStaleSegments deletes segment files of the collection with index >=
// keep — leftovers from an earlier save that used more segments.
func removeStaleSegments(fsys FS, dir, name string, keep int) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		m := segmentFileRe.FindStringSubmatch(e.Name())
		if m == nil || m[1] != name {
			continue
		}
		if idx, err := strconv.Atoi(m[2]); err == nil && idx >= keep {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// removeSegmentedState deletes a collection's manifest and segment files —
// the flat Save path calls it so the two formats never coexist. The
// manifest goes first: once it is gone a crash leaves orphan segments next
// to an authoritative flat file, which the loader skips, instead of a live
// manifest pointing at files a later step deletes.
func removeSegmentedState(dir, name string) {
	os.Remove(filepath.Join(dir, name+manifestSuffix))
	removeStaleSegments(OSFS, dir, name, 0)
}

// LoadParallel reads a directory saved by either Save or SaveParallel into
// a fresh database using GOMAXPROCS decode workers. See LoadParallelOpts.
func LoadParallel(dir string) (*DB, error) {
	return LoadParallelOpts(dir, LoadOpts{})
}

// LoadParallelOpts reads every collection in dir — segmented (manifest
// present) or flat single-file .jsonl — into a fresh database. Segments
// decode on a worker pool and are verified against the manifest's byte
// counts and CRCs, so a torn or mixed-generation store fails loudly instead
// of loading silently wrong data; documents then insert in segment order,
// which reproduces exactly the document order and index contents of a flat
// sequential load. Orphan segment files (a save that crashed before its
// manifest committed) are skipped when the collection still has its flat
// file and rejected otherwise.
func LoadParallelOpts(dir string, opts LoadOpts) (*DB, error) {
	entries, err := fsOrDefault(opts.FS).ReadDir(dir)
	if err != nil {
		// A missing directory is an empty database, matching the historical
		// glob-based loader; anything else (permissions, not-a-dir) is real.
		if os.IsNotExist(err) {
			return NewDB(), nil
		}
		return nil, err
	}
	manifests := map[string]bool{} // collection root -> has manifest
	flats := map[string]bool{}     // collection root -> has flat file
	orphans := map[string]bool{}   // collection root -> has manifest-less segments
	for _, e := range entries {
		name := e.Name()
		if len(name) > len(manifestSuffix) && name[len(name)-len(manifestSuffix):] == manifestSuffix {
			manifests[name[:len(name)-len(manifestSuffix)]] = true
			continue
		}
		if filepath.Ext(name) != ".jsonl" {
			continue
		}
		if m := segmentFileRe.FindStringSubmatch(name); m != nil {
			orphans[m[1]] = true
			continue
		}
		flats[name[:len(name)-len(".jsonl")]] = true
	}
	for root := range manifests {
		delete(orphans, root) // covered by a manifest: not orphans
		delete(flats, root)   // stale flat next to a committed manifest
	}
	for root := range orphans {
		if !flats[root] {
			return nil, fmt.Errorf(
				"docstore: %s: segment files without a manifest or flat %s.jsonl — a save crashed before committing; restore the manifest or delete the segments",
				dir, root)
		}
		// A flat file plus manifest-less segments: the segments are from a
		// save that never committed; the flat file is authoritative.
	}

	roots := make([]string, 0, len(manifests)+len(flats))
	for root := range manifests {
		roots = append(roots, root)
	}
	for root := range flats {
		roots = append(roots, root)
	}
	sort.Strings(roots)

	db := NewDB()
	for _, root := range roots {
		c := db.Collection(root)
		if manifests[root] {
			if err := c.loadSegmented(dir, opts); err != nil {
				return nil, err
			}
			continue
		}
		if err := c.LoadFile(filepath.Join(dir, root+".jsonl")); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// loadSegmented reads the collection's manifest and segments from dir,
// decoding segments on a worker pool and inserting in segment order.
func (c *Collection) loadSegmented(dir string, opts LoadOpts) error {
	fsys := fsOrDefault(opts.FS)
	manPath := filepath.Join(dir, c.name+manifestSuffix)
	raw, err := fsys.ReadFile(manPath)
	if err != nil {
		return err
	}
	var man segmentManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("docstore: %s: %w", manPath, err)
	}
	if man.Version != manifestVersion {
		return fmt.Errorf("docstore: %s: manifest version %d not supported (want %d)",
			manPath, man.Version, manifestVersion)
	}
	if err := man.validate(manPath); err != nil {
		return err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(man.Segments))

	segDocs := make([][]Document, len(man.Segments))
	errs := make([]error, len(man.Segments))
	var bytesRead, cached int64
	var bytesMu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var n int64
				segDocs[i], n, errs[i] = readSegment(fsys, dir, man.Segments[i])
				bytesMu.Lock()
				bytesRead += n
				bytesMu.Unlock()
				if errs[i] == nil && opts.Cache != nil {
					opts.Cache.store(man.Segments[i], segDocs[i])
				}
			}
		}()
	}
	for i := range man.Segments {
		if opts.Cache != nil {
			if docs := opts.Cache.lookup(man.Segments[i]); docs != nil {
				segDocs[i] = docs
				cached++
				continue
			}
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Sequential insert in segment order rebuilds the exact document order
	// (and therefore index contents) of the flat path.
	total := 0
	for i, docs := range segDocs {
		for j, d := range docs {
			if err := c.Insert(d); err != nil {
				return fmt.Errorf("docstore: %s line %d: %w",
					filepath.Join(dir, man.Segments[i].File), j+1, err)
			}
		}
		total += len(docs)
	}
	if total != man.Docs {
		return fmt.Errorf("docstore: %s: manifest promises %d documents, segments hold %d",
			manPath, man.Docs, total)
	}

	o := opts.Observer
	addN(o, CounterSegmentsRead, int64(len(man.Segments))-cached)
	addN(o, CounterSegmentsCached, cached)
	addN(o, CounterDocsRead, int64(total))
	addN(o, CounterBytesRead, bytesRead)
	return nil
}

// readSegment reads and decodes one segment file, verifying its byte count
// and CRC against the manifest entry first — a mismatch means the segment
// is torn or from a different save generation, and loading it would mix
// states.
func readSegment(fsys FS, dir string, info segmentInfo) ([]Document, int64, error) {
	path := filepath.Join(dir, info.File)
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if int64(len(raw)) != info.Bytes {
		return nil, int64(len(raw)), fmt.Errorf(
			"docstore: %s: %d bytes on disk, manifest promises %d — torn or mixed-generation segment",
			path, len(raw), info.Bytes)
	}
	if crc := crc32.ChecksumIEEE(raw); crc != info.CRC32 {
		return nil, int64(len(raw)), fmt.Errorf(
			"docstore: %s: CRC mismatch (%08x on disk, manifest promises %08x) — torn or mixed-generation segment",
			path, crc, info.CRC32)
	}
	docs := make([]Document, 0, info.Docs)
	line := 0
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		var rec []byte
		if nl < 0 {
			rec, raw = raw, nil
		} else {
			rec, raw = raw[:nl], raw[nl+1:]
		}
		if len(bytes.TrimSpace(rec)) == 0 {
			continue
		}
		line++
		var d Document
		if err := json.Unmarshal(rec, &d); err != nil {
			return nil, info.Bytes, fmt.Errorf("docstore: %s line %d: %w", path, line, err)
		}
		normalize(d)
		docs = append(docs, d)
	}
	if len(docs) != info.Docs {
		return nil, info.Bytes, fmt.Errorf(
			"docstore: %s: %d documents on disk, manifest promises %d — torn or mixed-generation segment",
			path, len(docs), info.Docs)
	}
	return docs, info.Bytes, nil
}
