package docstore

import (
	"errors"
	"sort"
)

// ErrBadCursor is returned by FindRangePage when afterID does not name a
// live document carrying the scanned path — a stale or forged cursor.
var ErrBadCursor = errors.New("docstore: bad page cursor")

// Ordered indexes: sorted views over one dotted path enabling range scans —
// what the cluster store uses to select score ranges (e.g. all clusters
// with plausibility below a bound) without full scans.

// orderedIndex keeps (value, slot) entries sorted by value.
type orderedIndex struct {
	entries []orderedEntry
	dirty   bool
}

type orderedEntry struct {
	value any
	slot  int
}

// CreateOrderedIndex builds a sorted index over the dotted path. Subsequent
// FindRange calls on that path use it; updates and deletes mark it dirty
// and the next range scan re-sorts lazily.
func (c *Collection) CreateOrderedIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ordered == nil {
		c.ordered = map[string]*orderedIndex{}
	}
	if _, ok := c.ordered[path]; ok {
		return
	}
	ix := &orderedIndex{}
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			ix.entries = append(ix.entries, orderedEntry{v, slot})
		}
	}
	sortEntries(ix.entries)
	c.ordered[path] = ix
}

// HasOrderedIndex reports whether path has a sorted index.
func (c *Collection) HasOrderedIndex(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.ordered[path]
	return ok
}

func sortEntries(entries []orderedEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		return compare(entries[i].value, entries[j].value) < 0
	})
}

// markOrderedDirty flags every ordered index; called under the write lock
// by Insert/Update/Delete.
func (c *Collection) markOrderedDirty() {
	for _, ix := range c.ordered {
		ix.dirty = true
	}
}

// rebuildOrdered re-derives one ordered index from the live documents;
// called under the write lock.
func (c *Collection) rebuildOrdered(path string, ix *orderedIndex) {
	ix.entries = ix.entries[:0]
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			ix.entries = append(ix.entries, orderedEntry{v, slot})
		}
	}
	sortEntries(ix.entries)
	ix.dirty = false
}

// refreshOrdered returns the ordered index for path, rebuilding it first
// when dirty. It takes the write lock only for the rebuild; callers must
// not hold any lock.
func (c *Collection) refreshOrdered(path string) (*orderedIndex, bool) {
	c.mu.Lock()
	ix, ok := c.ordered[path]
	if ok && ix.dirty {
		c.rebuildOrdered(path, ix)
	}
	c.mu.Unlock()
	return ix, ok
}

// FindRangePage is the paged form of FindRange: it returns at most limit
// documents whose value at path lies in [lo, hi] in ascending value order,
// resuming strictly after the document afterID ("" starts at the beginning).
// next is the _id to pass as afterID for the following page, or "" when the
// range is exhausted. Unlike FindRange it never materializes more than one
// page, so it is what the serving layer uses for cursor pagination.
//
// A non-empty afterID that no longer names a live document with a value at
// path yields ErrBadCursor. Pages are snapshots under the read lock; a
// concurrent Update that moves the cursor document within the order makes
// the next page resume from its new position (documents may be skipped or
// repeated across pages, never within one).
func (c *Collection) FindRangePage(path string, lo, hi any, afterID string, limit int) (docs []Document, next string, err error) {
	if limit <= 0 {
		return nil, "", nil
	}
	ix, ok := c.refreshOrdered(path)

	c.mu.RLock()
	defer c.mu.RUnlock()
	if !ok {
		return c.findRangePageScan(path, lo, hi, afterID, limit)
	}
	entries := ix.entries
	start := 0
	if lo != nil {
		start = sort.Search(len(entries), func(i int) bool {
			return compare(entries[i].value, lo) >= 0
		})
	}
	if afterID != "" {
		slot, okID := c.byID[afterID]
		if !okID {
			return nil, "", ErrBadCursor
		}
		v, okV := Get(c.docs[slot], path)
		if !okV {
			return nil, "", ErrBadCursor
		}
		// Jump to the first entry with the cursor's value, then walk the
		// tie run until the cursor's own entry; resume just after it.
		i := sort.Search(len(entries), func(i int) bool {
			return compare(entries[i].value, v) >= 0
		})
		found := false
		for ; i < len(entries); i++ {
			if compare(entries[i].value, v) != 0 {
				break
			}
			if entries[i].slot == slot {
				found = true
				i++
				break
			}
		}
		if !found {
			// The document's value moved between the index refresh and this
			// read (concurrent Update): seek its entry linearly before
			// declaring the cursor stale.
			for i = 0; i < len(entries); i++ {
				if entries[i].slot == slot {
					found = true
					i++
					break
				}
			}
			if !found {
				return nil, "", ErrBadCursor
			}
		}
		if i > start {
			start = i
		}
	}
	for i := start; i < len(entries); i++ {
		if hi != nil && compare(entries[i].value, hi) > 0 {
			break
		}
		doc := c.docs[entries[i].slot]
		if doc == nil {
			continue
		}
		if len(docs) == limit {
			// One more live in-range document exists, so the page is not
			// the last: hand out a cursor.
			next, _ = docs[limit-1]["_id"].(string)
			return docs, next, nil
		}
		docs = append(docs, doc)
	}
	return docs, "", nil
}

// findRangePageScan is the un-indexed fallback: filter + sort like
// FindRange, then slice out the page. O(n log n) per page — create an
// ordered index for collections that serve paged reads.
func (c *Collection) findRangePageScan(path string, lo, hi any, afterID string, limit int) ([]Document, string, error) {
	all := c.rangeScanLocked(path, lo, hi)
	start := 0
	if afterID != "" {
		found := false
		for i, d := range all {
			if id, _ := d["_id"].(string); id == afterID {
				start, found = i+1, true
				break
			}
		}
		if !found {
			return nil, "", ErrBadCursor
		}
	}
	if start >= len(all) {
		return nil, "", nil
	}
	page := all[start:]
	if len(page) > limit {
		next, _ := page[limit-1]["_id"].(string)
		return page[:limit], next, nil
	}
	return page, "", nil
}

// CountRange returns the number of live documents whose value at path lies
// in [lo, hi] — the "total" a paged scan reports without materializing the
// documents.
func (c *Collection) CountRange(path string, lo, hi any) int {
	ix, ok := c.refreshOrdered(path)

	c.mu.RLock()
	defer c.mu.RUnlock()
	if !ok {
		return len(c.rangeScanLocked(path, lo, hi))
	}
	entries := ix.entries
	start := 0
	if lo != nil {
		start = sort.Search(len(entries), func(i int) bool {
			return compare(entries[i].value, lo) >= 0
		})
	}
	end := len(entries)
	if hi != nil {
		end = sort.Search(len(entries), func(i int) bool {
			return compare(entries[i].value, hi) > 0
		})
	}
	n := 0
	for i := start; i < end; i++ {
		if c.docs[entries[i].slot] != nil {
			n++
		}
	}
	return n
}

// rangeScanLocked filters and value-sorts the live documents in [lo, hi];
// callers hold at least the read lock.
func (c *Collection) rangeScanLocked(path string, lo, hi any) []Document {
	var filter Filter
	switch {
	case lo != nil && hi != nil:
		filter = And(Gte(path, lo), Lte(path, hi))
	case lo != nil:
		filter = Gte(path, lo)
	case hi != nil:
		filter = Lte(path, hi)
	default:
		filter = Exists(path)
	}
	out := c.findScan(filter)
	sort.SliceStable(out, func(i, j int) bool {
		a, _ := Get(out[i], path)
		b, _ := Get(out[j], path)
		return compare(a, b) < 0
	})
	return out
}

// FindRange returns the documents whose value at path lies in [lo, hi]
// (either bound may be nil for open-ended scans), in ascending value order.
// With an ordered index the scan is a binary search plus a contiguous walk;
// without one it falls back to filtering and sorting.
func (c *Collection) FindRange(path string, lo, hi any) []Document {
	ix, ok := c.refreshOrdered(path)

	c.mu.RLock()
	defer c.mu.RUnlock()
	if !ok {
		// Fallback: filter plus sort.
		return c.rangeScanLocked(path, lo, hi)
	}
	entries := ix.entries
	start := 0
	if lo != nil {
		start = sort.Search(len(entries), func(i int) bool {
			return compare(entries[i].value, lo) >= 0
		})
	}
	var out []Document
	for i := start; i < len(entries); i++ {
		if hi != nil && compare(entries[i].value, hi) > 0 {
			break
		}
		if doc := c.docs[entries[i].slot]; doc != nil {
			out = append(out, doc)
		}
	}
	return out
}
