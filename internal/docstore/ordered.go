package docstore

import "sort"

// Ordered indexes: sorted views over one dotted path enabling range scans —
// what the cluster store uses to select score ranges (e.g. all clusters
// with plausibility below a bound) without full scans.

// orderedIndex keeps (value, slot) entries sorted by value.
type orderedIndex struct {
	entries []orderedEntry
	dirty   bool
}

type orderedEntry struct {
	value any
	slot  int
}

// CreateOrderedIndex builds a sorted index over the dotted path. Subsequent
// FindRange calls on that path use it; updates and deletes mark it dirty
// and the next range scan re-sorts lazily.
func (c *Collection) CreateOrderedIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ordered == nil {
		c.ordered = map[string]*orderedIndex{}
	}
	if _, ok := c.ordered[path]; ok {
		return
	}
	ix := &orderedIndex{}
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			ix.entries = append(ix.entries, orderedEntry{v, slot})
		}
	}
	sortEntries(ix.entries)
	c.ordered[path] = ix
}

// HasOrderedIndex reports whether path has a sorted index.
func (c *Collection) HasOrderedIndex(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.ordered[path]
	return ok
}

func sortEntries(entries []orderedEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		return compare(entries[i].value, entries[j].value) < 0
	})
}

// markOrderedDirty flags every ordered index; called under the write lock
// by Insert/Update/Delete.
func (c *Collection) markOrderedDirty() {
	for _, ix := range c.ordered {
		ix.dirty = true
	}
}

// rebuildOrdered re-derives one ordered index from the live documents;
// called under the write lock.
func (c *Collection) rebuildOrdered(path string, ix *orderedIndex) {
	ix.entries = ix.entries[:0]
	for slot, doc := range c.docs {
		if doc == nil {
			continue
		}
		if v, ok := Get(doc, path); ok {
			ix.entries = append(ix.entries, orderedEntry{v, slot})
		}
	}
	sortEntries(ix.entries)
	ix.dirty = false
}

// FindRange returns the documents whose value at path lies in [lo, hi]
// (either bound may be nil for open-ended scans), in ascending value order.
// With an ordered index the scan is a binary search plus a contiguous walk;
// without one it falls back to filtering and sorting.
func (c *Collection) FindRange(path string, lo, hi any) []Document {
	c.mu.Lock()
	ix, ok := c.ordered[path]
	if ok && ix.dirty {
		c.rebuildOrdered(path, ix)
	}
	c.mu.Unlock()

	c.mu.RLock()
	defer c.mu.RUnlock()
	if ok {
		entries := ix.entries
		start := 0
		if lo != nil {
			start = sort.Search(len(entries), func(i int) bool {
				return compare(entries[i].value, lo) >= 0
			})
		}
		var out []Document
		for i := start; i < len(entries); i++ {
			if hi != nil && compare(entries[i].value, hi) > 0 {
				break
			}
			if doc := c.docs[entries[i].slot]; doc != nil {
				out = append(out, doc)
			}
		}
		return out
	}
	// Fallback: filter plus sort.
	var filter Filter
	switch {
	case lo != nil && hi != nil:
		filter = And(Gte(path, lo), Lte(path, hi))
	case lo != nil:
		filter = Gte(path, lo)
	case hi != nil:
		filter = Lte(path, hi)
	default:
		filter = Exists(path)
	}
	out := c.findScan(filter)
	sort.SliceStable(out, func(i, j int) bool {
		a, _ := Get(out[i], path)
		b, _ := Get(out[j], path)
		return compare(a, b) < 0
	})
	return out
}
