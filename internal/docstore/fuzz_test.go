package docstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Native fuzz targets for the persistence codecs: arbitrary bytes in the
// JSON-lines loader and in the segmented manifest+segment pair must either
// load cleanly or fail with an error — never panic, never allocate
// proportionally to attacker-controlled numbers, and never read outside the
// store directory. make fuzz-smoke runs these (and the voter/simil targets)
// for a bounded time per target; testdata/fuzz holds the seed corpus,
// including regression seeds for crashes fuzzing has found.

// FuzzLoadFile feeds arbitrary bytes to the flat JSON-lines loader. A
// successful load must be deterministic: loading the same bytes twice
// yields identical collections.
func FuzzLoadFile(f *testing.F) {
	f.Add([]byte(`{"_id":"a","n":1}` + "\n" + `{"_id":"b","nested":{"x":[1,2]}}` + "\n"))
	f.Add([]byte(`{"_id":"a"}` + "\n" + `{"_id":"a"}` + "\n")) // duplicate id
	f.Add([]byte(`{"no_id":true}` + "\n"))
	f.Add([]byte("null\n"))
	f.Add([]byte(`{"_id":"q","v":"` + strings.Repeat("A", 1<<10) + `"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "c.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c1 := NewCollection("c")
		err1 := c1.LoadFile(path)
		c2 := NewCollection("c")
		err2 := c2.LoadFile(path)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic load: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if c1.Len() != c2.Len() {
			t.Fatalf("nondeterministic load: %d vs %d docs", c1.Len(), c2.Len())
		}
	})
}

// FuzzLoadSegmented feeds arbitrary manifest bytes plus one segment file to
// the segmented loader. The manifest is attacker-controlled on disk, so its
// numbers (document counts, byte counts, file names) must be validated
// before anything is sized or opened from them.
func FuzzLoadSegmented(f *testing.F) {
	// A well-formed pair, produced by the save path's own encoding.
	seg := []byte(`{"_id":"a","n":1}` + "\n" + `{"_id":"b","n":2}` + "\n")
	man := []byte(`{"version":1,"collection":"c","docs":2,"segments":[{"file":"c.00.jsonl","docs":2,"bytes":36,"crc32":0}]}`)
	f.Add(man, seg)
	f.Add([]byte(`{"version":1,"collection":"c","docs":0,"segments":[]}`), []byte("")) // empty store
	f.Add([]byte(`not json`), seg)
	f.Add([]byte(`{"version":99,"collection":"c","docs":0,"segments":[]}`), seg)
	// Hostile numbers and names a corrupt or malicious manifest can carry;
	// the negative-docs seed is the crasher fuzzing found (makeslice panic
	// in readSegment before manifests were validated).
	f.Add([]byte(`{"version":1,"collection":"c","docs":-1,"segments":[{"file":"c.00.jsonl","docs":-1,"bytes":0,"crc32":0}]}`), []byte(""))
	f.Add([]byte(`{"version":1,"collection":"c","docs":1000000000000,"segments":[{"file":"c.00.jsonl","docs":1000000000000,"bytes":0,"crc32":0}]}`), []byte(""))
	f.Add([]byte(`{"version":1,"collection":"c","docs":0,"segments":[{"file":"../../../etc/passwd","docs":0,"bytes":0,"crc32":0}]}`), []byte(""))
	f.Fuzz(func(t *testing.T, manifest, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "c.manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "c.00.jsonl"), segment, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := LoadParallel(dir)
		if err != nil {
			return
		}
		// A load the manifest admits must be deterministic and re-savable:
		// the round trip through SaveParallel/LoadParallel preserves every
		// document.
		redir := t.TempDir()
		if err := db.SaveParallelOpts(redir, SaveOpts{Segments: 2}); err != nil {
			t.Fatalf("re-save of successfully loaded store: %v", err)
		}
		again, err := LoadParallel(redir)
		if err != nil {
			t.Fatalf("re-load of re-saved store: %v", err)
		}
		if got, want := collectDocs(again), collectDocs(db); !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip changed documents:\n got %v\nwant %v", got, want)
		}
	})
}

// collectDocs snapshots every collection's documents in order.
func collectDocs(db *DB) map[string][]Document {
	out := map[string][]Document{}
	for _, name := range db.CollectionNames() {
		var docs []Document
		db.Collection(name).ForEach(func(d Document) bool {
			docs = append(docs, d)
			return true
		})
		out[name] = docs
	}
	return out
}
