package docstore

import (
	"fmt"
	"sort"
	"strings"
)

// iterator is the pull stream the pipeline stages compose over: each call
// yields the next document, or ok == false once the stream ends.
type iterator func() (doc Document, ok bool)

// Stage transforms a document stream; stages compose into an aggregation
// pipeline (the counterpart of MongoDB's aggregation framework the paper
// uses for customization, §5). Stages stream: a document flows through the
// whole chain before the next one is pulled, so no per-stage intermediate
// slices materialize. Barrier stages (Sort, Group, Sample) buffer
// internally, as their semantics require.
type Stage interface {
	stream(in iterator) iterator
}

// sliceIter streams a slice.
func sliceIter(docs []Document) iterator {
	i := 0
	return func() (Document, bool) {
		if i >= len(docs) {
			return nil, false
		}
		d := docs[i]
		i++
		return d, true
	}
}

// drain materializes the remainder of a stream.
func drain(it iterator) []Document {
	var out []Document
	for d, ok := it(); ok; d, ok = it() {
		out = append(out, d)
	}
	return out
}

// barrier adapts a whole-stream transform into a stage that drains its
// input lazily on the first pull and then streams the result.
func barrier(in iterator, apply func([]Document) []Document) iterator {
	var out iterator
	return func() (Document, bool) {
		if out == nil {
			out = sliceIter(apply(drain(in)))
		}
		return out()
	}
}

// Pipeline runs the stages over the collection's documents and returns the
// result. Leading Match stages built from the pure filter constructors are
// evaluated against the stored documents first — pushed down to a hash or
// ordered index when one covers a filtered path — and only the surviving
// documents are cloned, so pipelines still never mutate the store but no
// longer deep-copy documents the first Match would drop. Cloning is lazy:
// a downstream Limit stops pulling, and the clones it never pulled are
// never made. The remaining stages stream document by document.
func (c *Collection) Pipeline(stages ...Stage) []Document {
	// Split off the pure leading Match prefix, evaluated before cloning.
	var pre []Filter
	rest := stages
	for len(rest) > 0 {
		m, ok := rest[0].(Match)
		if !ok || !pure(m.Filter) {
			break
		}
		if m.Filter != nil {
			pre = append(pre, m.Filter)
		}
		rest = rest[1:]
	}
	survivors, scanned, pushdown := c.matchStored(pre)

	cloned := 0
	src := sliceIter(survivors)
	out := iterator(func() (Document, bool) {
		d, ok := src()
		if !ok {
			return nil, false
		}
		cloned++
		return Clone(d), true
	})
	for _, s := range rest {
		out = s.stream(out)
	}
	result := drain(out)

	if o := c.observer(); o != nil {
		addN(o, CounterPipelineRuns, 1)
		addN(o, CounterDocsScanned, int64(scanned))
		addN(o, CounterDocsCloned, int64(cloned))
		if pushdown {
			addN(o, CounterPushdownHits, 1)
		}
	}
	return result
}

// matchStored evaluates pure filters against the stored documents and
// returns the survivors (uncloned, insertion order), the number of
// candidates examined, and whether an index served the scan.
func (c *Collection) matchStored(filters []Filter) (survivors []Document, scanned int, pushdown bool) {
	var plan *pushPlan
	if len(filters) > 0 {
		// Planning may refresh an ordered index, which takes the write
		// lock — run it before the read-locked scan.
		plan = c.planPushdown(filters[0])
	}

	c.mu.RLock()
	defer c.mu.RUnlock()

	match := func(d Document) bool {
		for _, f := range filters {
			if !f.Matches(d) {
				return false
			}
		}
		return true
	}
	if plan != nil {
		for _, slot := range c.planSlotsLocked(plan) {
			d := c.docs[slot]
			if d == nil {
				continue
			}
			scanned++
			if match(d) {
				survivors = append(survivors, d)
			}
		}
		return survivors, scanned, true
	}
	for _, d := range c.docs {
		if d == nil {
			continue
		}
		scanned++
		if match(d) {
			survivors = append(survivors, d)
		}
	}
	return survivors, scanned, false
}

// pushPlan is the index access chosen for the leading Match filter: one
// eq/ord leaf served by either the path's hash index (ord == nil) or its
// ordered index. The full filter still runs over the candidates — indexes
// render values through indexKey, which can collapse distinct values, and
// a conjunction may carry further predicates.
type pushPlan struct {
	filter Filter
	ord    *orderedIndex
}

// planPushdown picks an index for the filter: an equality on a hash- or
// ordered-indexed path, a range on an ordered-indexed path, or — inside a
// conjunction — the first conjunct either serves.
func (c *Collection) planPushdown(f Filter) *pushPlan {
	switch t := f.(type) {
	case eqFilter:
		if c.HasIndex(t.path) {
			return &pushPlan{filter: t}
		}
		if ord, ok := c.refreshOrdered(t.path); ok {
			return &pushPlan{filter: t, ord: ord}
		}
	case ordFilter:
		if ord, ok := c.refreshOrdered(t.path); ok {
			return &pushPlan{filter: t, ord: ord}
		}
	case andFilter:
		for _, sub := range t.filters {
			if p := c.planPushdown(sub); p != nil {
				return p
			}
		}
	}
	return nil
}

// planSlotsLocked resolves a plan to candidate slots in insertion order;
// callers hold at least the read lock.
func (c *Collection) planSlotsLocked(p *pushPlan) []int {
	switch t := p.filter.(type) {
	case eqFilter:
		if p.ord == nil {
			slots := append([]int(nil), c.indexes[t.path][indexKey(t.value)]...)
			sort.Ints(slots)
			return slots
		}
		return ordSlots(p.ord, t.value, t.value, false, false)
	case ordFilter:
		var lo, hi any
		var exLo, exHi bool
		switch t.op {
		case opLt:
			hi, exHi = t.value, true
		case opLte:
			hi = t.value
		case opGt:
			lo, exLo = t.value, true
		default:
			lo = t.value
		}
		return ordSlots(p.ord, lo, hi, exLo, exHi)
	}
	return nil
}

// ordSlots collects the slots of ordered-index entries within [lo, hi]
// (nil bounds are open; exLo/exHi exclude the bound itself), returned in
// insertion order.
func ordSlots(ix *orderedIndex, lo, hi any, exLo, exHi bool) []int {
	entries := ix.entries
	start := 0
	if lo != nil {
		start = sort.Search(len(entries), func(i int) bool {
			if exLo {
				return compare(entries[i].value, lo) > 0
			}
			return compare(entries[i].value, lo) >= 0
		})
	}
	var slots []int
	for i := start; i < len(entries); i++ {
		if hi != nil {
			cmp := compare(entries[i].value, hi)
			if cmp > 0 || (exHi && cmp == 0) {
				break
			}
		}
		slots = append(slots, entries[i].slot)
	}
	sort.Ints(slots)
	return slots
}

// Match keeps the documents satisfying the filter. Leading Matches built
// from the pure filter constructors run against stored documents before any
// cloning (with index pushdown); elsewhere in the pipeline they filter the
// stream.
type Match struct{ Filter Filter }

func (m Match) stream(in iterator) iterator {
	return func() (Document, bool) {
		for {
			d, ok := in()
			if !ok {
				return nil, false
			}
			if matches(m.Filter, d) {
				return d, true
			}
		}
	}
}

// Project keeps only the listed top-level-or-dotted paths (plus "_id").
type Project struct{ Paths []string }

func (p Project) stream(in iterator) iterator {
	return func() (Document, bool) {
		d, ok := in()
		if !ok {
			return nil, false
		}
		nd := Document{}
		if id, ok := d["_id"]; ok {
			nd["_id"] = id
		}
		for _, path := range p.Paths {
			if v, ok := Get(d, path); ok {
				if err := Set(nd, path, v); err != nil {
					continue
				}
			}
		}
		return nd, true
	}
}

// Unwind replaces each document by one document per element of the array at
// Path, with the array value replaced by the element — exactly what turns
// cluster documents into per-record streams. Documents without an array at
// Path are dropped.
type Unwind struct{ Path string }

func (u Unwind) stream(in iterator) iterator {
	var cur Document
	var rest []any
	return func() (Document, bool) {
		for {
			for len(rest) > 0 {
				el := rest[0]
				rest = rest[1:]
				nd := Clone(cur)
				if err := Set(nd, u.Path, el); err == nil {
					return nd, true
				}
			}
			d, ok := in()
			if !ok {
				return nil, false
			}
			v, ok := Get(d, u.Path)
			if !ok {
				continue
			}
			arr, ok := v.([]any)
			if !ok {
				continue
			}
			cur, rest = d, arr
		}
	}
}

// Accumulator aggregates the values of one group.
type Accumulator struct {
	Name string // output field
	Op   string // "sum", "count", "avg", "min", "max", "first", "push"
	Path string // input path (ignored for count)
}

// Group groups documents by the value at ByPath and emits one document per
// group with "_id" set to the (rendered) group key plus one field per
// accumulator. Group is a barrier: it buffers its input before emitting.
type Group struct {
	ByPath string
	Accums []Accumulator
}

func (g Group) stream(in iterator) iterator { return barrier(in, g.apply) }

func (g Group) apply(docs []Document) []Document {
	type agg struct {
		doc    Document
		counts map[string]float64
		sums   map[string]float64
	}
	groups := map[string]*agg{}
	var order []string
	for _, d := range docs {
		keyVal, _ := Get(d, g.ByPath)
		key := fmt.Sprint(keyVal)
		a, ok := groups[key]
		if !ok {
			a = &agg{doc: Document{"_id": key}, counts: map[string]float64{}, sums: map[string]float64{}}
			groups[key] = a
			order = append(order, key)
		}
		for _, acc := range g.Accums {
			switch acc.Op {
			case "count":
				a.counts[acc.Name]++
				a.doc[acc.Name] = a.counts[acc.Name]
			case "sum", "avg":
				if v, ok := Get(d, acc.Path); ok {
					if f, isNum := toFloat(v); isNum {
						a.sums[acc.Name] += f
						a.counts[acc.Name]++
					}
				}
				if acc.Op == "sum" {
					a.doc[acc.Name] = a.sums[acc.Name]
				} else if a.counts[acc.Name] > 0 {
					a.doc[acc.Name] = a.sums[acc.Name] / a.counts[acc.Name]
				}
			case "min":
				if v, ok := Get(d, acc.Path); ok {
					cur, has := a.doc[acc.Name]
					if !has || compare(v, cur) < 0 {
						a.doc[acc.Name] = v
					}
				}
			case "max":
				if v, ok := Get(d, acc.Path); ok {
					cur, has := a.doc[acc.Name]
					if !has || compare(v, cur) > 0 {
						a.doc[acc.Name] = v
					}
				}
			case "first":
				if v, ok := Get(d, acc.Path); ok {
					if _, has := a.doc[acc.Name]; !has {
						a.doc[acc.Name] = v
					}
				}
			case "push":
				if v, ok := Get(d, acc.Path); ok {
					arr, _ := a.doc[acc.Name].([]any)
					a.doc[acc.Name] = append(arr, v)
				}
			default:
				panic("docstore: unknown accumulator op " + acc.Op)
			}
		}
	}
	out := make([]Document, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key].doc)
	}
	return out
}

// Sort orders the stream by the value at Path; Desc reverses. The sort is
// stable. Sort is a barrier: it buffers its input before emitting.
type Sort struct {
	Path string
	Desc bool
}

func (s Sort) stream(in iterator) iterator { return barrier(in, s.apply) }

func (s Sort) apply(docs []Document) []Document {
	sort.SliceStable(docs, func(i, j int) bool {
		a, _ := Get(docs[i], s.Path)
		b, _ := Get(docs[j], s.Path)
		if s.Desc {
			return compare(a, b) > 0
		}
		return compare(a, b) < 0
	})
	return docs
}

// Limit truncates the stream to at most N documents. Limit streams: once N
// documents have passed, upstream stages are never pulled again, so the
// documents they would have produced (and their clones) are never made.
type Limit struct{ N int }

func (l Limit) stream(in iterator) iterator {
	n := 0
	return func() (Document, bool) {
		if n >= l.N {
			return nil, false
		}
		d, ok := in()
		if !ok {
			return nil, false
		}
		n++
		return d, true
	}
}

// Skip drops the first N documents.
type Skip struct{ N int }

func (s Skip) stream(in iterator) iterator {
	skipped := 0
	return func() (Document, bool) {
		for skipped < s.N {
			if _, ok := in(); !ok {
				return nil, false
			}
			skipped++
		}
		return in()
	}
}

// Count replaces the stream with a single {"count": n} document. Count
// streams in O(1) memory: it consumes its input without buffering it.
type Count struct{}

func (Count) stream(in iterator) iterator {
	done := false
	return func() (Document, bool) {
		if done {
			return nil, false
		}
		done = true
		n := 0
		for _, ok := in(); ok; _, ok = in() {
			n++
		}
		return Document{"count": float64(n)}, true
	}
}

// AddField computes a new field per document from the document itself —
// the counterpart of $addFields with an expression.
type AddField struct {
	Path string
	Fn   func(Document) any
}

func (a AddField) stream(in iterator) iterator {
	return func() (Document, bool) {
		d, ok := in()
		if !ok {
			return nil, false
		}
		// A blocked path leaves the document unchanged.
		_ = Set(d, a.Path, a.Fn(d))
		return d, true
	}
}

// Sample keeps a deterministic pseudo-random subset of N documents (seeded,
// so pipelines reproduce). With N >= len the stream passes through. Sample
// is a barrier: it buffers its input before emitting.
type Sample struct {
	N    int
	Seed int64
}

func (s Sample) stream(in iterator) iterator { return barrier(in, s.apply) }

func (s Sample) apply(docs []Document) []Document {
	if s.N >= len(docs) {
		return docs
	}
	// Fisher-Yates prefix with a local xorshift; no package-level state.
	state := uint64(s.Seed)*0x9e3779b97f4a7c15 + 0x1234567
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	out := append([]Document(nil), docs...)
	for i := 0; i < s.N; i++ {
		j := i + next(len(out)-i)
		out[i], out[j] = out[j], out[i]
	}
	return out[:s.N]
}

// Distinct replaces the stream with one {"value": v} document per distinct
// value at Path, in first-appearance order.
type Distinct struct{ Path string }

func (dst Distinct) stream(in iterator) iterator {
	seen := map[string]bool{}
	return func() (Document, bool) {
		for {
			doc, ok := in()
			if !ok {
				return nil, false
			}
			v, ok := Get(doc, dst.Path)
			if !ok {
				continue
			}
			k := indexKey(v)
			if seen[k] {
				continue
			}
			seen[k] = true
			return Document{"value": v}, true
		}
	}
}

// FieldPathEscape is a helper for keys containing dots (e.g. snapshot
// dates used as map keys): it replaces dots so they survive dotted-path
// addressing.
func FieldPathEscape(key string) string { return strings.ReplaceAll(key, ".", "．") }
