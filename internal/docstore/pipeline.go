package docstore

import (
	"fmt"
	"sort"
	"strings"
)

// Stage transforms a document stream; stages compose into an aggregation
// pipeline (the counterpart of MongoDB's aggregation framework the paper
// uses for customization, §5).
type Stage interface {
	apply([]Document) []Document
}

// Pipeline runs the stages over the collection's documents and returns the
// result. The input documents are cloned before the first stage, so
// pipelines never mutate the store.
func (c *Collection) Pipeline(stages ...Stage) []Document {
	input := c.Find(nil)
	docs := make([]Document, len(input))
	for i, d := range input {
		docs[i] = Clone(d)
	}
	for _, s := range stages {
		docs = s.apply(docs)
	}
	return docs
}

// Match keeps the documents satisfying the filter.
type Match struct{ Filter Filter }

func (m Match) apply(docs []Document) []Document {
	var out []Document
	for _, d := range docs {
		if m.Filter == nil || m.Filter(d) {
			out = append(out, d)
		}
	}
	return out
}

// Project keeps only the listed top-level-or-dotted paths (plus "_id").
type Project struct{ Paths []string }

func (p Project) apply(docs []Document) []Document {
	out := make([]Document, 0, len(docs))
	for _, d := range docs {
		nd := Document{}
		if id, ok := d["_id"]; ok {
			nd["_id"] = id
		}
		for _, path := range p.Paths {
			if v, ok := Get(d, path); ok {
				if err := Set(nd, path, v); err != nil {
					continue
				}
			}
		}
		out = append(out, nd)
	}
	return out
}

// Unwind replaces each document by one document per element of the array at
// Path, with the array value replaced by the element — exactly what turns
// cluster documents into per-record streams. Documents without an array at
// Path are dropped.
type Unwind struct{ Path string }

func (u Unwind) apply(docs []Document) []Document {
	var out []Document
	for _, d := range docs {
		v, ok := Get(d, u.Path)
		if !ok {
			continue
		}
		arr, ok := v.([]any)
		if !ok {
			continue
		}
		for _, el := range arr {
			nd := Clone(d)
			if err := Set(nd, u.Path, el); err == nil {
				out = append(out, nd)
			}
		}
	}
	return out
}

// Accumulator aggregates the values of one group.
type Accumulator struct {
	Name string // output field
	Op   string // "sum", "count", "avg", "min", "max", "first", "push"
	Path string // input path (ignored for count)
}

// Group groups documents by the value at ByPath and emits one document per
// group with "_id" set to the (rendered) group key plus one field per
// accumulator.
type Group struct {
	ByPath string
	Accums []Accumulator
}

func (g Group) apply(docs []Document) []Document {
	type agg struct {
		doc    Document
		counts map[string]float64
		sums   map[string]float64
	}
	groups := map[string]*agg{}
	var order []string
	for _, d := range docs {
		keyVal, _ := Get(d, g.ByPath)
		key := fmt.Sprint(keyVal)
		a, ok := groups[key]
		if !ok {
			a = &agg{doc: Document{"_id": key}, counts: map[string]float64{}, sums: map[string]float64{}}
			groups[key] = a
			order = append(order, key)
		}
		for _, acc := range g.Accums {
			switch acc.Op {
			case "count":
				a.counts[acc.Name]++
				a.doc[acc.Name] = a.counts[acc.Name]
			case "sum", "avg":
				if v, ok := Get(d, acc.Path); ok {
					if f, isNum := toFloat(v); isNum {
						a.sums[acc.Name] += f
						a.counts[acc.Name]++
					}
				}
				if acc.Op == "sum" {
					a.doc[acc.Name] = a.sums[acc.Name]
				} else if a.counts[acc.Name] > 0 {
					a.doc[acc.Name] = a.sums[acc.Name] / a.counts[acc.Name]
				}
			case "min":
				if v, ok := Get(d, acc.Path); ok {
					cur, has := a.doc[acc.Name]
					if !has || compare(v, cur) < 0 {
						a.doc[acc.Name] = v
					}
				}
			case "max":
				if v, ok := Get(d, acc.Path); ok {
					cur, has := a.doc[acc.Name]
					if !has || compare(v, cur) > 0 {
						a.doc[acc.Name] = v
					}
				}
			case "first":
				if v, ok := Get(d, acc.Path); ok {
					if _, has := a.doc[acc.Name]; !has {
						a.doc[acc.Name] = v
					}
				}
			case "push":
				if v, ok := Get(d, acc.Path); ok {
					arr, _ := a.doc[acc.Name].([]any)
					a.doc[acc.Name] = append(arr, v)
				}
			default:
				panic("docstore: unknown accumulator op " + acc.Op)
			}
		}
	}
	out := make([]Document, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key].doc)
	}
	return out
}

// Sort orders the stream by the value at Path; Desc reverses. The sort is
// stable.
type Sort struct {
	Path string
	Desc bool
}

func (s Sort) apply(docs []Document) []Document {
	sort.SliceStable(docs, func(i, j int) bool {
		a, _ := Get(docs[i], s.Path)
		b, _ := Get(docs[j], s.Path)
		if s.Desc {
			return compare(a, b) > 0
		}
		return compare(a, b) < 0
	})
	return docs
}

// Limit truncates the stream to at most N documents.
type Limit struct{ N int }

func (l Limit) apply(docs []Document) []Document {
	if len(docs) > l.N {
		return docs[:l.N]
	}
	return docs
}

// Skip drops the first N documents.
type Skip struct{ N int }

func (s Skip) apply(docs []Document) []Document {
	if len(docs) > s.N {
		return docs[s.N:]
	}
	return nil
}

// Count replaces the stream with a single {"count": n} document.
type Count struct{}

func (Count) apply(docs []Document) []Document {
	return []Document{{"count": float64(len(docs))}}
}

// AddField computes a new field per document from the document itself —
// the counterpart of $addFields with an expression.
type AddField struct {
	Path string
	Fn   func(Document) any
}

func (a AddField) apply(docs []Document) []Document {
	for _, d := range docs {
		if err := Set(d, a.Path, a.Fn(d)); err != nil {
			continue
		}
	}
	return docs
}

// Sample keeps a deterministic pseudo-random subset of N documents (seeded,
// so pipelines reproduce). With N >= len the stream passes through.
type Sample struct {
	N    int
	Seed int64
}

func (s Sample) apply(docs []Document) []Document {
	if s.N >= len(docs) {
		return docs
	}
	// Fisher-Yates prefix with a local xorshift; no package-level state.
	state := uint64(s.Seed)*0x9e3779b97f4a7c15 + 0x1234567
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	out := append([]Document(nil), docs...)
	for i := 0; i < s.N; i++ {
		j := i + next(len(out)-i)
		out[i], out[j] = out[j], out[i]
	}
	return out[:s.N]
}

// Distinct replaces the stream with one {"value": v} document per distinct
// value at Path, in first-appearance order.
type Distinct struct{ Path string }

func (d Distinct) apply(docs []Document) []Document {
	seen := map[string]bool{}
	var out []Document
	for _, doc := range docs {
		v, ok := Get(doc, d.Path)
		if !ok {
			continue
		}
		k := indexKey(v)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, Document{"value": v})
	}
	return out
}

// FieldPathEscape is a helper for keys containing dots (e.g. snapshot
// dates used as map keys): it replaces dots so they survive dotted-path
// addressing.
func FieldPathEscape(key string) string { return strings.ReplaceAll(key, ".", "．") }
