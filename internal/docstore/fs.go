package docstore

import (
	"io/fs"
	"os"
)

// FS is the slice of the filesystem the segmented persistence path touches.
// Production code runs on OSFS; the conformance harness (internal/testkit)
// substitutes a fault-injecting implementation to exercise crash safety
// against *dynamic* failures — short writes, torn renames, EIO on the Nth
// operation, dropped page-cache writes — instead of only statically
// corrupted fixtures. Save/Load semantics must hold for any conforming FS:
// the manifest rename is the commit point, and a failed save must leave a
// directory that either loads the previous complete state or fails loudly.
type FS interface {
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// WriteFile is os.WriteFile.
	WriteFile(path string, data []byte, perm fs.FileMode) error
	// Rename is os.Rename; it must be atomic with respect to crashes for
	// same-directory renames, as on POSIX filesystems.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(path string) error
	// ReadFile is os.ReadFile.
	ReadFile(path string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(path string) ([]os.DirEntry, error)
}

// OSFS is the real filesystem — the default when SaveOpts.FS or LoadOpts.FS
// is nil.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(path, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// fsOrDefault resolves a possibly-nil FS option to OSFS.
func fsOrDefault(f FS) FS {
	if f == nil {
		return OSFS
	}
	return f
}
