package docstore

import "sync"

// SegmentCache memoizes decoded segments across loads of the same store
// directory, keyed by the manifest's (file, bytes, CRC32) triple. After a
// dirty-segment save rewrites only the touched segments, a reload through
// the cache re-reads and re-parses exactly those — every byte-identical
// segment resolves to its previously decoded documents, so the reload cost
// of a k%-changed delta import is O(k), matching the save. ncserve threads
// one cache through its SIGHUP reloads.
//
// A hit trusts the manifest the way the loader itself does: the triple
// identifies the segment's exact byte content (the CRC the save computed
// over the bytes it renamed into place), so the on-disk file is not re-read.
// Cached documents are shared by reference between every load that hits —
// callers must treat loaded documents as immutable (the read-only serving
// path qualifies; Collection.Update would write through into other
// generations). The zero value is not usable; NewSegmentCache constructs.
type SegmentCache struct {
	mu sync.Mutex
	m  map[segmentKey][]Document
}

// segmentKey identifies one exact segment generation.
type segmentKey struct {
	file  string
	bytes int64
	crc   uint32
}

// NewSegmentCache returns an empty cache, safe for concurrent use.
func NewSegmentCache() *SegmentCache {
	return &SegmentCache{m: map[segmentKey][]Document{}}
}

// Len returns the number of cached segments.
func (sc *SegmentCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.m)
}

// lookup returns the cached documents for info, or nil.
func (sc *SegmentCache) lookup(info segmentInfo) []Document {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.m[segmentKey{info.File, info.Bytes, info.CRC32}]
}

// store remembers docs as the decode of info. Earlier generations of the
// same file are dropped: a reload only ever sees the manifest's current
// triple, so stale entries would just pin memory.
func (sc *SegmentCache) store(info segmentInfo, docs []Document) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for k := range sc.m {
		if k.file == info.File && k.crc != info.CRC32 {
			delete(sc.m, k)
		}
	}
	sc.m[segmentKey{info.File, info.Bytes, info.CRC32}] = docs
}
