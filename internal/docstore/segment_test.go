package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/scanio"
)

// The tentpole invariant: SaveParallel/LoadParallel must reconstruct a
// database identical to the flat sequential path — same document order,
// same index contents — for any worker count, and the bytes on disk must
// not depend on the worker count. make docstore-race runs these under the
// race detector.

// raceWorkerLadder is the worker ladder the equivalence tests sweep; 7 is
// deliberately coprime with the segment counts in use.
func raceWorkerLadder() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// segmentedFixture builds a DB exercising the interesting shapes: two
// collections, hash and ordered indexes, nested documents and arrays, and
// deletions (nil slots must not shift document order on reload).
func segmentedFixture(t testing.TB, docs int) *DB {
	t.Helper()
	db := NewDB()
	c := db.Collection("clusters")
	c.CreateIndex("county")
	c.CreateOrderedIndex("score")
	for i := 0; i < docs; i++ {
		d := D(
			"_id", fmt.Sprintf("c%05d", i),
			"county", fmt.Sprintf("county-%d", i%17),
			"score", float64(i%101)/100,
			"records", []any{D("name", fmt.Sprintf("n%d", i)), D("name", "x")},
		)
		if err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < docs; i += 13 {
		c.Delete(fmt.Sprintf("c%05d", i))
	}
	meta := db.Collection("dataset")
	if err := meta.Insert(D("_id", "meta", "name", "nc", "snapshots", []any{"2012-11-06"})); err != nil {
		t.Fatal(err)
	}
	return db
}

// dbFingerprint captures everything the equivalence check compares: per
// collection the ordered _id sequence, the full documents, and the results
// the indexes serve.
func dbFingerprint(db *DB) map[string]any {
	fp := map[string]any{}
	for _, name := range db.CollectionNames() {
		c := db.Collection(name)
		var ids []string
		var docs []Document
		c.ForEach(func(d Document) bool {
			ids = append(ids, d["_id"].(string))
			docs = append(docs, d)
			return true
		})
		fp[name+"/ids"] = ids
		fp[name+"/docs"] = docs
	}
	// Index-served reads must agree too, not just the documents.
	c := db.Collection("clusters")
	for i := 0; i < 17; i++ {
		fp[fmt.Sprintf("eq/%d", i)] = c.FindEq("county", fmt.Sprintf("county-%d", i))
	}
	fp["range"] = c.FindRange("score", 0.25, 0.75)
	return fp
}

func TestSaveLoadParallelMatchesSequential(t *testing.T) {
	db := segmentedFixture(t, 500)
	flatDir := t.TempDir()
	if err := db.Save(flatDir); err != nil {
		t.Fatal(err)
	}
	ref, err := Load(flatDir)
	if err != nil {
		t.Fatal(err)
	}
	want := dbFingerprint(ref)

	for _, workers := range raceWorkerLadder() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			if err := db.SaveParallelOpts(dir, SaveOpts{Workers: workers, Segments: 8}); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadParallelOpts(dir, LoadOpts{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			// Recreate the fixture's indexes so index-served reads compare.
			loaded.Collection("clusters").CreateIndex("county")
			loaded.Collection("clusters").CreateOrderedIndex("score")
			if got := dbFingerprint(loaded); !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: reloaded database differs from the sequential round trip", workers)
			}
		})
	}
}

func TestSaveParallelBytesIndependentOfWorkers(t *testing.T) {
	db := segmentedFixture(t, 300)
	var ref map[string][]byte
	for _, workers := range raceWorkerLadder() {
		dir := t.TempDir()
		if err := db.SaveParallelOpts(dir, SaveOpts{Workers: workers, Segments: 5}); err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			body, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = body
		}
		if ref == nil {
			ref = files
			continue
		}
		if !reflect.DeepEqual(files, ref) {
			t.Errorf("workers=%d: on-disk bytes differ from workers=%d", workers, raceWorkerLadder()[0])
		}
	}
}

func TestLoadParallelReadsFlatStores(t *testing.T) {
	// Backward compatibility: a directory written by the historical flat
	// Save must load unchanged through the parallel loader.
	db := segmentedFixture(t, 120)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters.jsonl")); err != nil {
		t.Fatalf("flat save did not produce clusters.jsonl: %v", err)
	}
	loaded, err := LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Collection("clusters").Len(), db.Collection("clusters").Len(); got != want {
		t.Errorf("flat load: %d docs, want %d", got, want)
	}
	var wantIDs, gotIDs []string
	db.Collection("clusters").ForEach(func(d Document) bool {
		wantIDs = append(wantIDs, d["_id"].(string))
		return true
	})
	loaded.Collection("clusters").ForEach(func(d Document) bool {
		gotIDs = append(gotIDs, d["_id"].(string))
		return true
	})
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Error("flat load changed document order")
	}
}

func TestSaveFormatsAlternateCleanly(t *testing.T) {
	// Segmented save removes the stale flat file; flat save removes the
	// stale manifest and segments. The two formats never coexist, so a
	// loader can never pick the wrong generation.
	db := segmentedFixture(t, 80)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters.jsonl")); !os.IsNotExist(err) {
		t.Error("segmented save left the stale flat file behind")
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters"+manifestSuffix)); !os.IsNotExist(err) {
		t.Error("flat save left the stale manifest behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters.00.jsonl")); !os.IsNotExist(err) {
		t.Error("flat save left stale segments behind")
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("clusters").Len() != db.Collection("clusters").Len() {
		t.Error("alternating formats lost documents")
	}
}

func TestSaveParallelShrinksSegmentCount(t *testing.T) {
	// A narrower re-save must delete the higher-numbered segments of the
	// previous save, or the loader would see mixed generations.
	db := segmentedFixture(t, 100)
	dir := t.TempDir()
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: 6}); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters.02.jsonl")); !os.IsNotExist(err) {
		t.Error("stale segment 02 survived the narrower save")
	}
	loaded, err := LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("clusters").Len() != db.Collection("clusters").Len() {
		t.Error("narrower re-save lost documents")
	}
}

func TestSegmentedEmptyCollection(t *testing.T) {
	db := NewDB()
	db.Collection("empty")
	dir := t.TempDir()
	if err := db.SaveParallel(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := loaded.CollectionNames(); len(names) != 1 || names[0] != "empty" {
		t.Errorf("empty collection round trip: %v", names)
	}
	if loaded.Collection("empty").Len() != 0 {
		t.Error("phantom documents in empty collection")
	}
}

func TestSegmentCountDeterministic(t *testing.T) {
	cases := []struct {
		docs, requested, want int
	}{
		{0, 0, 1},
		{10, 0, 1},
		{segmentTargetDocs + 1, 0, 2},
		{segmentTargetDocs * 1000, 0, maxSegments},
		{100, 8, 8},
		{3, 8, 3},      // never more segments than documents
		{100, 500, 64}, // capped
	}
	for _, c := range cases {
		if got := segmentCount(c.docs, c.requested); got != c.want {
			t.Errorf("segmentCount(%d, %d) = %d, want %d", c.docs, c.requested, got, c.want)
		}
	}
}

// countObserver collects docstore counters for assertions.
type countObserver struct {
	mu sync.Mutex
	n  map[string]int64
}

func (o *countObserver) AddN(counter string, n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == nil {
		o.n = map[string]int64{}
	}
	o.n[counter] += n
}

func (o *countObserver) get(counter string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n[counter]
}

func TestSegmentedSaveLoadCounters(t *testing.T) {
	db := segmentedFixture(t, 200)
	live := int64(db.Collection("clusters").Len() + db.Collection("dataset").Len())
	dir := t.TempDir()

	saveObs := &countObserver{}
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: 4, Observer: saveObs}); err != nil {
		t.Fatal(err)
	}
	if got := saveObs.get(CounterDocsWritten); got != live {
		t.Errorf("docs written counter = %d, want %d", got, live)
	}
	// clusters: 4 segments; dataset (1 doc): 1 segment.
	if got := saveObs.get(CounterSegmentsWritten); got != 5 {
		t.Errorf("segments written counter = %d, want 5", got)
	}
	if saveObs.get(CounterBytesWritten) <= 0 {
		t.Error("bytes written counter did not advance")
	}

	loadObs := &countObserver{}
	if _, err := LoadParallelOpts(dir, LoadOpts{Observer: loadObs}); err != nil {
		t.Fatal(err)
	}
	if got := loadObs.get(CounterDocsRead); got != live {
		t.Errorf("docs read counter = %d, want %d", got, live)
	}
	if got := loadObs.get(CounterSegmentsRead); got != 5 {
		t.Errorf("segments read counter = %d, want 5", got)
	}
	if got := loadObs.get(CounterBytesRead); got != saveObs.get(CounterBytesWritten) {
		t.Errorf("bytes read %d != bytes written %d", got, saveObs.get(CounterBytesWritten))
	}
}

func TestLoadFileLongLine(t *testing.T) {
	// Regression test for the named scanner buffer constants: a document
	// line past scanio.InitialBufferBytes must load, one past
	// loadMaxLineBytes must fail loudly with bufio.ErrTooLong, mirroring
	// the voter TSV reader's long-line test.
	dir := t.TempDir()
	path := filepath.Join(dir, "long.jsonl")
	long := fmt.Sprintf("{\"_id\":\"big\",\"v\":%q}\n", strings.Repeat("A", 4*scanio.InitialBufferBytes))
	if err := os.WriteFile(path, []byte("{\"_id\":\"a\"}\n"+long), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCollection("long")
	if err := c.LoadFile(path); err != nil {
		t.Fatalf("%d-byte line: %v", len(long), err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d docs, want 2", c.Len())
	}

	over := filepath.Join(dir, "over.jsonl")
	f, err := os.Create(over)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(f, "{\"_id\":\"big\",\"v\":%q}\n", strings.Repeat("A", loadMaxLineBytes+1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection("over")
	if err := c2.LoadFile(over); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("over-limit line: got %v, want bufio.ErrTooLong", err)
	}
}
