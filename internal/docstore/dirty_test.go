package docstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The dirty-segment save contract: given a stable Stride layout and a dirty
// set covering every changed document, the save must leave the directory
// byte-identical to a from-scratch full save of the same state at the same
// stride, while actually rewriting only the segments holding dirty (or
// layout-shifted) documents. Anything it cannot prove safe — no previous
// manifest, a rejected manifest, a changed segment count — falls back to a
// full rewrite instead of stitching a mixed-generation manifest.

// strideDB builds a single-collection DB of docs sequential documents where
// document i carries payload(i).
func strideDB(t testing.TB, docs int, payload func(i int) string) *DB {
	t.Helper()
	db := NewDB()
	c := db.Collection("clusters")
	for i := 0; i < docs; i++ {
		if err := c.Insert(D("_id", fmt.Sprintf("c%05d", i), "v", payload(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// dirBytes reads every file of a directory.
func dirBytes(t testing.TB, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

func TestSegmentRangesStride(t *testing.T) {
	got := segmentRanges(10, 99, 4)
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stride ranges = %v, want %v", got, want)
	}
	if got := segmentRanges(0, 1, 4); !reflect.DeepEqual(got, [][2]int{{0, 0}}) {
		t.Errorf("empty stride ranges = %v", got)
	}
	// stride <= 0 keeps the balanced partition.
	if got := segmentRanges(10, 2, 0); !reflect.DeepEqual(got, [][2]int{{0, 5}, {5, 10}}) {
		t.Errorf("balanced ranges = %v", got)
	}
}

// TestDirtySaveReusesCleanSegments is the core reuse oracle: a dirty save
// over a grown-and-modified state must write only the affected segments yet
// leave the directory byte-identical to a full save of the same state.
func TestDirtySaveReusesCleanSegments(t *testing.T) {
	const stride = 50
	base := func(i int) string { return fmt.Sprintf("base-%d", i) }
	dir := t.TempDir()
	if err := strideDB(t, 500, base).SaveParallelOpts(dir, SaveOpts{Stride: stride}); err != nil {
		t.Fatal(err)
	}

	// New state: one modified document in segment 2, plus appended tail docs.
	changed := func(i int) string {
		if i == 120 {
			return "modified"
		}
		return base(i)
	}
	next := strideDB(t, 510, changed)
	obs := &countObserver{}
	dirty := map[string]map[string]bool{"clusters": {
		"c00120": true, // modified
	}}
	for i := 500; i < 510; i++ {
		dirty["clusters"][fmt.Sprintf("c%05d", i)] = true
	}
	if err := next.SaveParallelOpts(dir, SaveOpts{Stride: stride, Dirty: dirty, Observer: obs}); err != nil {
		t.Fatal(err)
	}

	// Byte-identity with a from-scratch full save of the same state.
	fullDir := t.TempDir()
	if err := next.SaveParallelOpts(fullDir, SaveOpts{Stride: stride}); err != nil {
		t.Fatal(err)
	}
	if got, want := dirBytes(t, dir), dirBytes(t, fullDir); !reflect.DeepEqual(got, want) {
		t.Fatal("dirty save directory differs from a full save of the same state")
	}

	// 510 docs at stride 50 → 11 segments; only segment 2 (c00120) and the
	// tail segment 10 hold dirty ids. Segment 10 is new (not in the old
	// manifest), so 9 segments are reused.
	if w := obs.get(CounterSegmentsWritten); w != 2 {
		t.Errorf("segments written = %d, want 2", w)
	}
	if r := obs.get(CounterSegmentsReused); r != 9 {
		t.Errorf("segments reused = %d, want 9", r)
	}
	if f := obs.get(CounterDeltaFullRewrites); f != 0 {
		t.Errorf("full rewrites = %d, want 0", f)
	}

	if loaded, err := LoadParallel(dir); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(dbFingerprint(loaded), dbFingerprint(next)) {
		t.Error("reloaded dirty-saved database differs from the in-memory state")
	}
}

// TestDirtySaveSegmentCountChangeFallsBack is the mixed-generation
// regression: when the segment count changed since the last save (here: the
// last full save used a different layout entirely), the dirty save must
// fall back to a full rewrite rather than reuse any old segment.
func TestDirtySaveSegmentCountChangeFallsBack(t *testing.T) {
	payload := func(i int) string { return fmt.Sprintf("p%d", i) }
	dir := t.TempDir()
	// Previous generation: 4 balanced segments of 200 docs.
	if err := strideDB(t, 200, payload).SaveParallelOpts(dir, SaveOpts{Segments: 4}); err != nil {
		t.Fatal(err)
	}

	// Dirty save at stride 50 over 210 docs → 5 segments ≠ 4: full rewrite.
	next := strideDB(t, 210, payload)
	obs := &countObserver{}
	dirty := map[string]map[string]bool{"clusters": {}}
	for i := 200; i < 210; i++ {
		dirty["clusters"][fmt.Sprintf("c%05d", i)] = true
	}
	if err := next.SaveParallelOpts(dir, SaveOpts{Stride: 50, Dirty: dirty, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if f := obs.get(CounterDeltaFullRewrites); f != 1 {
		t.Errorf("full rewrites = %d, want 1", f)
	}
	if r := obs.get(CounterSegmentsReused); r != 0 {
		t.Errorf("segments reused = %d, want 0", r)
	}
	if w := obs.get(CounterSegmentsWritten); w != 5 {
		t.Errorf("segments written = %d, want 5", w)
	}

	fullDir := t.TempDir()
	if err := next.SaveParallelOpts(fullDir, SaveOpts{Stride: 50}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirBytes(t, dir), dirBytes(t, fullDir)) {
		t.Fatal("fallback save directory differs from a full save")
	}
}

// TestDirtySaveFirstSaveFallsBack: no previous manifest means nothing can be
// reused; the save still succeeds as a full rewrite.
func TestDirtySaveFirstSaveFallsBack(t *testing.T) {
	db := strideDB(t, 120, func(i int) string { return "x" })
	obs := &countObserver{}
	dir := t.TempDir()
	err := db.SaveParallelOpts(dir, SaveOpts{
		Stride:   50,
		Dirty:    map[string]map[string]bool{"clusters": {}},
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := obs.get(CounterDeltaFullRewrites); f != 1 {
		t.Errorf("full rewrites = %d, want 1", f)
	}
	if loaded, err := LoadParallel(dir); err != nil || loaded.Collection("clusters").Len() != 120 {
		t.Fatalf("reload after fallback: %v", err)
	}
}

// TestDirtySaveRequiresStride: Dirty without a stable stride layout is
// ignored — the save is a plain full rewrite and reuses nothing.
func TestDirtySaveRequiresStride(t *testing.T) {
	db := strideDB(t, 100, func(i int) string { return "x" })
	dir := t.TempDir()
	if err := db.SaveParallelOpts(dir, SaveOpts{Segments: 2}); err != nil {
		t.Fatal(err)
	}
	obs := &countObserver{}
	err := db.SaveParallelOpts(dir, SaveOpts{
		Segments: 2,
		Dirty:    map[string]map[string]bool{"clusters": {}},
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := obs.get(CounterSegmentsReused); r != 0 {
		t.Errorf("segments reused = %d, want 0 without Stride", r)
	}
	if f := obs.get(CounterDeltaFullRewrites); f != 0 {
		t.Errorf("full rewrites = %d, want 0 (mode never engaged)", f)
	}
	if w := obs.get(CounterSegmentsWritten); w != 2 {
		t.Errorf("segments written = %d, want 2", w)
	}
}

// TestDirtySaveMissingSegmentFileRewrites: a reusable-looking manifest entry
// whose file vanished from disk must be rewritten, not trusted.
func TestDirtySaveMissingSegmentFileRewrites(t *testing.T) {
	payload := func(i int) string { return fmt.Sprintf("p%d", i) }
	dir := t.TempDir()
	db := strideDB(t, 150, payload)
	if err := db.SaveParallelOpts(dir, SaveOpts{Stride: 50}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentFileName("clusters", 1))); err != nil {
		t.Fatal(err)
	}
	obs := &countObserver{}
	err := db.SaveParallelOpts(dir, SaveOpts{
		Stride:   50,
		Dirty:    map[string]map[string]bool{"clusters": {}},
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := obs.get(CounterSegmentsWritten); w != 1 {
		t.Errorf("segments written = %d, want 1 (the vanished one)", w)
	}
	if loaded, err := LoadParallel(dir); err != nil || loaded.Collection("clusters").Len() != 150 {
		t.Fatalf("reload after heal: %v", err)
	}
}

// TestStrideSaveManySegments pins that the stride layout survives past the
// two-digit file-name range the balanced path never exceeds.
func TestStrideSaveManySegments(t *testing.T) {
	db := strideDB(t, 505, func(i int) string { return "x" })
	dir := t.TempDir()
	if err := db.SaveParallelOpts(dir, SaveOpts{Stride: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "clusters.100.jsonl")); err != nil {
		t.Fatalf("three-digit segment missing: %v", err)
	}
	if loaded, err := LoadParallel(dir); err != nil || loaded.Collection("clusters").Len() != 505 {
		t.Fatalf("reload of 101-segment store: %v", err)
	}
}

// TestSegmentCacheReload pins the ncserve reload path: a load through a
// SegmentCache after a dirty-segment save re-decodes only the rewritten
// segments, and the cached load is indistinguishable from a cold one.
func TestSegmentCacheReload(t *testing.T) {
	const stride = 50
	base := func(i int) string { return fmt.Sprintf("base-%d", i) }
	dir := t.TempDir()
	if err := strideDB(t, 500, base).SaveParallelOpts(dir, SaveOpts{Stride: stride}); err != nil {
		t.Fatal(err)
	}

	cache := NewSegmentCache()
	cold := &countObserver{}
	if _, err := LoadParallelOpts(dir, LoadOpts{Cache: cache, Observer: cold}); err != nil {
		t.Fatal(err)
	}
	if c := cold.get(CounterSegmentsCached); c != 0 {
		t.Errorf("cold load cached %d segments, want 0", c)
	}
	if r := cold.get(CounterSegmentsRead); r != 10 {
		t.Errorf("cold load read %d segments, want 10", r)
	}

	// Delta round: one modified document plus tail growth, dirty save.
	changed := func(i int) string {
		if i == 120 {
			return "modified"
		}
		return base(i)
	}
	next := strideDB(t, 510, changed)
	dirty := map[string]map[string]bool{"clusters": {"c00120": true}}
	for i := 500; i < 510; i++ {
		dirty["clusters"][fmt.Sprintf("c%05d", i)] = true
	}
	if err := next.SaveParallelOpts(dir, SaveOpts{Stride: stride, Dirty: dirty}); err != nil {
		t.Fatal(err)
	}

	warm := &countObserver{}
	reloaded, err := LoadParallelOpts(dir, LoadOpts{Cache: cache, Observer: warm})
	if err != nil {
		t.Fatal(err)
	}
	// 11 segments now: segment 2 (the modified doc) and the new tail segment
	// were rewritten, so only those two decode; the other 9 hit the cache.
	if c := warm.get(CounterSegmentsCached); c != 9 {
		t.Errorf("warm load cached %d segments, want 9", c)
	}
	if r := warm.get(CounterSegmentsRead); r != 2 {
		t.Errorf("warm load read %d segments, want 2", r)
	}
	fresh, err := LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dbFingerprint(reloaded), dbFingerprint(fresh)) {
		t.Error("cached reload diverges from a cold load")
	}
	// Superseded generations are evicted: one entry per live segment.
	if n := cache.Len(); n != 11 {
		t.Errorf("cache holds %d segments, want 11", n)
	}
}
