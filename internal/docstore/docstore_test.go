package docstore

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetSetDottedPaths(t *testing.T) {
	d := Document{}
	if err := Set(d, "meta.counts.a", 3); err != nil {
		t.Fatal(err)
	}
	v, ok := Get(d, "meta.counts.a")
	if !ok || v != 3 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := Get(d, "meta.missing"); ok {
		t.Error("Get found a missing path")
	}
	if _, ok := Get(d, "meta.counts.a.b"); ok {
		t.Error("Get descended through a scalar")
	}
	// Blocked path errors.
	if err := Set(d, "meta.counts.a.b", 1); err == nil {
		t.Error("Set through a scalar should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := D("name", "x", "sub", D("arr", []any{1, 2}), "n", 1)
	c := Clone(d)
	Set(c, "sub.extra", true)
	c["sub"].(Document)["arr"].([]any)[0] = 99
	if _, ok := Get(d, "sub.extra"); ok {
		t.Error("Clone shares sub-documents")
	}
	if d["sub"].(Document)["arr"].([]any)[0] != 1 {
		t.Error("Clone shares arrays")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {2, 2, 0},
		{1, 1.0, 0}, {int64(3), 3.5, -1},
		{"a", "b", -1}, {"b", "a", 1}, {"a", "a", 0},
		{nil, 1, -1}, {1, nil, 1}, {nil, nil, 0},
		{1, "a", -1}, {"a", 1, 1}, // numbers sort before strings
	}
	for _, c := range cases {
		if got := compare(c.a, c.b); got != c.want {
			t.Errorf("compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func insertN(t *testing.T, c *Collection, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		doc := D("_id", fmt.Sprintf("id%03d", i), "n", i, "mod", i%3,
			"person", D("last", fmt.Sprintf("NAME%d", i%5)))
		if err := c.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCollectionCRUD(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Get("id003") == nil {
		t.Fatal("Get missed an inserted doc")
	}
	if c.Get("nope") != nil {
		t.Fatal("Get invented a doc")
	}
	// Duplicate id rejected.
	if err := c.Insert(D("_id", "id003")); err == nil {
		t.Error("duplicate insert accepted")
	}
	// Missing id rejected.
	if err := c.Insert(D("x", 1)); err == nil {
		t.Error("missing _id accepted")
	}
	if !c.Update("id003", func(d Document) { d["n"] = 999 }) {
		t.Fatal("Update missed")
	}
	if v, _ := Get(c.Get("id003"), "n"); v != 999 {
		t.Errorf("update not applied: %v", v)
	}
	if !c.Delete("id003") {
		t.Fatal("Delete missed")
	}
	if c.Get("id003") != nil || c.Len() != 9 {
		t.Error("Delete left the doc behind")
	}
	if c.Delete("id003") {
		t.Error("double delete returned true")
	}
}

func TestIndexedFindEq(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 30)
	c.CreateIndex("person.last")
	if !c.HasIndex("person.last") {
		t.Fatal("index missing")
	}
	got := c.FindEq("person.last", "NAME2")
	if len(got) != 6 {
		t.Fatalf("indexed FindEq = %d docs, want 6", len(got))
	}
	// Unindexed path falls back to scan with the same result.
	scan := c.FindEq("mod", 1)
	if len(scan) != 10 {
		t.Fatalf("scan FindEq = %d docs, want 10", len(scan))
	}
}

func TestIndexFollowsUpdatesAndDeletes(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 10)
	c.CreateIndex("person.last")
	c.Update("id001", func(d Document) { Set(d, "person.last", "RENAMED") })
	if got := c.FindEq("person.last", "RENAMED"); len(got) != 1 {
		t.Fatalf("index missed update: %d", len(got))
	}
	if got := c.FindEq("person.last", "NAME1"); len(got) != 1 {
		t.Fatalf("stale index entry: %d", len(got))
	}
	c.Delete("id002")
	if got := c.FindEq("person.last", "NAME2"); len(got) != 1 {
		t.Fatalf("index kept a deleted doc: %d", len(got))
	}
}

func TestFilters(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 10)
	if n := len(c.Find(And(Gte("n", 3), Lt("n", 7)))); n != 4 {
		t.Errorf("range filter = %d docs, want 4", n)
	}
	if n := len(c.Find(Or(Eq("n", 1), Eq("n", 2)))); n != 2 {
		t.Errorf("or filter = %d docs, want 2", n)
	}
	if n := len(c.Find(Not(Exists("person.last")))); n != 0 {
		t.Errorf("not-exists = %d docs, want 0", n)
	}
	if n := len(c.Find(Lte("n", 0))); n != 1 {
		t.Errorf("lte = %d docs, want 1", n)
	}
	if n := len(c.Find(Gt("n", 8))); n != 1 {
		t.Errorf("gt = %d docs, want 1", n)
	}
}

func TestPipelineMatchProjectSortLimit(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 20)
	out := c.Pipeline(
		Match{Filter: Eq("mod", 0)},
		Sort{Path: "n", Desc: true},
		Limit{N: 3},
		Project{Paths: []string{"n"}},
	)
	if len(out) != 3 {
		t.Fatalf("pipeline = %d docs", len(out))
	}
	if out[0]["n"] != 18 {
		t.Errorf("top doc n = %v, want 18", out[0]["n"])
	}
	if _, ok := out[0]["mod"]; ok {
		t.Error("projection kept an unlisted field")
	}
	if _, ok := out[0]["_id"]; !ok {
		t.Error("projection dropped _id")
	}
}

func TestPipelineDoesNotMutateStore(t *testing.T) {
	c := NewCollection("test")
	insertN(t, c, 5)
	c.Pipeline(Match{}, Project{Paths: nil})
	if v, _ := Get(c.Get("id000"), "person.last"); v != "NAME0" {
		t.Error("pipeline mutated stored documents")
	}
}

func TestUnwindAndGroup(t *testing.T) {
	c := NewCollection("clusters")
	c.Insert(D("_id", "c1", "records", []any{
		D("last", "A"), D("last", "B"), D("last", "A"),
	}))
	c.Insert(D("_id", "c2", "records", []any{D("last", "A")}))
	out := c.Pipeline(
		Unwind{Path: "records"},
		Group{ByPath: "records.last", Accums: []Accumulator{
			{Name: "n", Op: "count"},
		}},
		Sort{Path: "_id"},
	)
	if len(out) != 2 {
		t.Fatalf("groups = %d, want 2", len(out))
	}
	if out[0]["_id"] != "A" || out[0]["n"] != 3.0 {
		t.Errorf("group A = %v", out[0])
	}
	if out[1]["_id"] != "B" || out[1]["n"] != 1.0 {
		t.Errorf("group B = %v", out[1])
	}
}

func TestGroupAccumulators(t *testing.T) {
	c := NewCollection("t")
	for i := 1; i <= 4; i++ {
		c.Insert(D("_id", fmt.Sprint(i), "k", "x", "v", i))
	}
	out := c.Pipeline(Group{ByPath: "k", Accums: []Accumulator{
		{Name: "sum", Op: "sum", Path: "v"},
		{Name: "avg", Op: "avg", Path: "v"},
		{Name: "min", Op: "min", Path: "v"},
		{Name: "max", Op: "max", Path: "v"},
		{Name: "first", Op: "first", Path: "v"},
		{Name: "all", Op: "push", Path: "v"},
	}})
	if len(out) != 1 {
		t.Fatalf("groups = %d", len(out))
	}
	g := out[0]
	if g["sum"] != 10.0 || g["avg"] != 2.5 {
		t.Errorf("sum/avg = %v/%v", g["sum"], g["avg"])
	}
	if g["min"] != 1 || g["max"] != 4 || g["first"] != 1 {
		t.Errorf("min/max/first = %v/%v/%v", g["min"], g["max"], g["first"])
	}
	if arr := g["all"].([]any); len(arr) != 4 {
		t.Errorf("push = %v", arr)
	}
}

func TestSkipAndCount(t *testing.T) {
	c := NewCollection("t")
	insertN(t, c, 10)
	out := c.Pipeline(Skip{N: 7})
	if len(out) != 3 {
		t.Errorf("skip = %d docs", len(out))
	}
	cnt := c.Pipeline(Match{Filter: Eq("mod", 1)}, Count{})
	if cnt[0]["count"] != 3.0 {
		t.Errorf("count = %v", cnt[0]["count"])
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	c := db.Collection("clusters")
	c.Insert(D("_id", "c1", "n", 1.5, "records", []any{D("last", "A ")},
		"meta", D("snapshots", []any{"2008-01-01"})))
	c.Insert(D("_id", "c2", "flag", true, "null", nil))
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	lc := loaded.Collection("clusters")
	if lc.Len() != 2 {
		t.Fatalf("loaded %d docs", lc.Len())
	}
	d := lc.Get("c1")
	if v, _ := Get(d, "n"); v != 1.5 {
		t.Errorf("n = %v", v)
	}
	recs, _ := Get(d, "records")
	arr, ok := recs.([]any)
	if !ok || len(arr) != 1 {
		t.Fatalf("records = %#v", recs)
	}
	inner, ok := arr[0].(Document)
	if !ok || inner["last"] != "A " {
		t.Errorf("nested doc = %#v (whitespace must survive)", arr[0])
	}
	if names := loaded.CollectionNames(); len(names) != 1 || names[0] != "clusters" {
		t.Errorf("collection names = %v", names)
	}
}

func TestSaveIsAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	c := db.Collection("x")
	c.Insert(D("_id", "a"))
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	c.Insert(D("_id", "b"))
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Collection("x").Len() != 2 {
		t.Error("second save lost documents")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	c := NewCollection("t")
	c.CreateIndex("k")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Insert(D("_id", fmt.Sprintf("w%d-%d", w, i), "k", i%7))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.FindEq("k", i%7)
				c.Len()
			}
		}()
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("Len = %d, want 800", c.Len())
	}
}

func TestFieldPathEscape(t *testing.T) {
	key := FieldPathEscape("2008-01-01.v2")
	d := Document{}
	if err := Set(d, "m."+key, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := Get(d, "m."+key); !ok || v != 1 {
		t.Errorf("escaped key round trip failed: %v %v", v, ok)
	}
	if m, ok := d["m"].(Document); !ok || len(m) != 1 {
		t.Errorf("escaped key split into segments: %#v", d)
	}
}

func BenchmarkIndexedLookup(b *testing.B) {
	c := NewCollection("bench")
	for i := 0; i < 10000; i++ {
		c.Insert(D("_id", fmt.Sprint(i), "k", fmt.Sprint(i%997)))
	}
	c.CreateIndex("k")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindEq("k", fmt.Sprint(i%997))
	}
}

func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	c := NewCollection("bench")
	c.CreateIndex("k")
	for i := 0; i < b.N; i++ {
		c.Insert(D("_id", fmt.Sprint(i), "k", i%997, "person", D("last", "SMITH")))
	}
}

func BenchmarkPipelineUnwindGroup(b *testing.B) {
	c := NewCollection("bench")
	for i := 0; i < 500; i++ {
		c.Insert(D("_id", fmt.Sprint(i), "records", []any{
			D("last", fmt.Sprint(i%7)), D("last", fmt.Sprint(i%5)),
		}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Pipeline(
			Unwind{Path: "records"},
			Group{ByPath: "records.last", Accums: []Accumulator{{Name: "n", Op: "count"}}},
			Sort{Path: "n", Desc: true},
		)
	}
}
