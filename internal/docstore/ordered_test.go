package docstore

import (
	"fmt"
	"testing"
)

func rangeCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection("r")
	for i := 0; i < 20; i++ {
		if err := c.Insert(D("_id", fmt.Sprintf("d%02d", i), "score", float64(i)/20)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFindRangeWithOrderedIndex(t *testing.T) {
	c := rangeCollection(t)
	c.CreateOrderedIndex("score")
	if !c.HasOrderedIndex("score") {
		t.Fatal("index missing")
	}
	got := c.FindRange("score", 0.25, 0.5)
	if len(got) != 6 { // 0.25, 0.30, ..., 0.50
		t.Fatalf("range = %d docs", len(got))
	}
	// Ascending order.
	prev := -1.0
	for _, d := range got {
		v, _ := Get(d, "score")
		if v.(float64) < prev {
			t.Fatal("range scan out of order")
		}
		prev = v.(float64)
	}
}

func TestFindRangeOpenEnds(t *testing.T) {
	c := rangeCollection(t)
	c.CreateOrderedIndex("score")
	if got := c.FindRange("score", nil, 0.1); len(got) != 3 {
		t.Errorf("upper-bounded = %d docs, want 3", len(got))
	}
	if got := c.FindRange("score", 0.9, nil); len(got) != 2 {
		t.Errorf("lower-bounded = %d docs, want 2", len(got))
	}
	if got := c.FindRange("score", nil, nil); len(got) != 20 {
		t.Errorf("unbounded = %d docs", len(got))
	}
}

func TestFindRangeFallbackWithoutIndex(t *testing.T) {
	c := rangeCollection(t)
	got := c.FindRange("score", 0.25, 0.5)
	if len(got) != 6 {
		t.Fatalf("fallback range = %d docs", len(got))
	}
}

func TestOrderedIndexFollowsMutations(t *testing.T) {
	c := rangeCollection(t)
	c.CreateOrderedIndex("score")
	c.FindRange("score", nil, nil) // force initial clean state
	c.Insert(D("_id", "new", "score", 0.33))
	got := c.FindRange("score", 0.3, 0.36)
	if len(got) != 3 { // 0.30, 0.33, 0.35
		t.Fatalf("after insert = %d docs", len(got))
	}
	c.Delete("new")
	got = c.FindRange("score", 0.3, 0.36)
	if len(got) != 2 {
		t.Fatalf("after delete = %d docs", len(got))
	}
	c.Update("d06", func(d Document) { d["score"] = 0.99 })
	got = c.FindRange("score", 0.3, 0.36)
	if len(got) != 1 {
		t.Fatalf("after update = %d docs (0.30 moved to 0.99)", len(got))
	}
}

func TestAddFieldStage(t *testing.T) {
	c := rangeCollection(t)
	out := c.Pipeline(
		AddField{Path: "flags.high", Fn: func(d Document) any {
			v, _ := Get(d, "score")
			return v.(float64) > 0.5
		}},
		Match{Filter: Eq("flags.high", true)},
	)
	if len(out) != 9 { // 0.55 .. 0.95
		t.Errorf("high docs = %d, want 9", len(out))
	}
	// Store untouched.
	if _, ok := Get(c.Get("d19"), "flags.high"); ok {
		t.Error("AddField leaked into the store")
	}
}

func TestSampleStage(t *testing.T) {
	c := rangeCollection(t)
	a := c.Pipeline(Sample{N: 5, Seed: 7})
	b := c.Pipeline(Sample{N: 5, Seed: 7})
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sample sizes = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i]["_id"] != b[i]["_id"] {
			t.Fatal("sampling not deterministic")
		}
	}
	other := c.Pipeline(Sample{N: 5, Seed: 8})
	same := true
	for i := range a {
		if a[i]["_id"] != other[i]["_id"] {
			same = false
		}
	}
	if same {
		t.Error("different seeds sampled identically")
	}
	if got := c.Pipeline(Sample{N: 100, Seed: 1}); len(got) != 20 {
		t.Errorf("oversized sample = %d docs", len(got))
	}
}

func TestDistinctStage(t *testing.T) {
	c := NewCollection("d")
	c.Insert(D("_id", "1", "k", "a"))
	c.Insert(D("_id", "2", "k", "b"))
	c.Insert(D("_id", "3", "k", "a"))
	c.Insert(D("_id", "4"))
	out := c.Pipeline(Distinct{Path: "k"})
	if len(out) != 2 {
		t.Fatalf("distinct = %d", len(out))
	}
	if out[0]["value"] != "a" || out[1]["value"] != "b" {
		t.Errorf("distinct values = %v", out)
	}
}
