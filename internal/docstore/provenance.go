package docstore

// SegmentDigest describes one committed segment file to a ProvenanceSink:
// the manifest entry's identity (file name, document and byte counts, CRC)
// plus the SHA-256 of the segment's bytes when the save encoded them fresh.
// A reused segment of a dirty-segment save carries Reused = true and a nil
// SHA256 — its bytes provably did not change since the previous save, so
// the sink can carry the previous record's digest over instead of
// re-reading the file.
type SegmentDigest struct {
	File   string
	Docs   int
	Bytes  int64
	CRC32  uint32
	SHA256 []byte
	Reused bool
}

// ProvenanceSink receives each collection's committed segment layout right
// after the collection's manifest rename — the commit point — in the
// deterministic sorted-collection order of SaveParallelOpts. The provenance
// layer (internal/provenance) assembles hash-chained corpus records from
// these callbacks without re-reading any freshly written file; the digests
// are computed from the exact buffers the save wrote, on the save's own
// worker pool. The interface lives here (instead of importing provenance)
// to keep docstore dependency-free.
type ProvenanceSink interface {
	CommitCollection(dir, name string, stride, docs int, segments []SegmentDigest)
}

// ManifestFileName returns the on-disk manifest file name of a segmented
// collection — exported so the provenance layer can digest the manifest it
// covers without duplicating the naming scheme.
func ManifestFileName(name string) string { return name + manifestSuffix }
