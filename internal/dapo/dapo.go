// Package dapo implements the paper's main future-work direction (§8):
// combining the historical-data approach with a scalable data-pollution
// tool, "to unite the strengths of having real outdated values and being
// able to inject additional errors at will". It takes an existing test
// dataset built by the core pipeline — whose duplicates carry genuine
// outdated values — and injects additional synthetic errors and extra
// duplicate records on top, preserving the gold standard exactly.
//
// Pollution never mutates its input: it derives a new dataset, so earlier
// evaluations stay reproducible (§5.1.2 carries over).
package dapo

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/voter"
)

// Config parameterizes one pollution run.
type Config struct {
	Seed int64
	// Errors is the per-record error mix injected into polluted records.
	Errors corrupt.Config
	// RecordFraction is the fraction of existing records receiving
	// additional errors.
	RecordFraction float64
	// Intensity applies the error mix this many times per polluted record
	// (dirtier output for the same mix).
	Intensity int
	// ExtraDuplicateRate adds, per cluster, a corrupted copy of a random
	// record with this probability (a purely synthetic fuzzy duplicate on
	// top of the real ones).
	ExtraDuplicateRate float64
	// MaxExtraPerCluster caps the synthetic additions per cluster
	// (default 1 when zero and ExtraDuplicateRate > 0).
	MaxExtraPerCluster int
	// Workers sizes the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
}

// DefaultConfig pollutes a quarter of all records with the heavy error mix
// and adds an extra duplicate to every fifth cluster.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		Errors:             corrupt.Heavy(),
		RecordFraction:     0.25,
		Intensity:          1,
		ExtraDuplicateRate: 0.2,
		MaxExtraPerCluster: 1,
	}
}

// Stats reports what a pollution run did.
type Stats struct {
	Clusters        int
	Records         int // records in the polluted output
	PollutedRecords int // existing records that received extra errors
	ExtraDuplicates int // synthetic duplicate records added
}

// Pollute derives a polluted dataset from d. The gold standard (cluster
// membership) is preserved; version-similarity maps are not carried over —
// scores must be recomputed on the polluted data, since pollution changes
// them by design. The derived records start at version 1 of the new
// dataset.
func Pollute(d *core.Dataset, cfg Config) (*core.Dataset, Stats) {
	if cfg.Intensity < 1 {
		cfg.Intensity = 1
	}
	if cfg.MaxExtraPerCluster == 0 && cfg.ExtraDuplicateRate > 0 {
		cfg.MaxExtraPerCluster = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ids := d.NCIDs()
	type clusterResult struct {
		idx      int
		records  []voter.Record
		polluted int
		extra    int
	}
	results := make([]clusterResult, len(ids))

	var wg sync.WaitGroup
	jobs := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				// A per-cluster random stream keyed by the cluster index
				// makes the output independent of goroutine scheduling.
				rng := rand.New(rand.NewSource(corrupt.SubSeed(cfg.Seed, idx+1)))
				corr := corrupt.NewCorruptor(cfg.Errors, rng)
				c := d.Cluster(ids[idx])
				res := clusterResult{idx: idx}
				for _, e := range c.Records {
					r := e.Rec.Clone()
					if rng.Float64() < cfg.RecordFraction {
						for i := 0; i < cfg.Intensity; i++ {
							corr.Apply(&r)
						}
						res.polluted++
					}
					res.records = append(res.records, r)
				}
				for extra := 0; extra < cfg.MaxExtraPerCluster; extra++ {
					if rng.Float64() >= cfg.ExtraDuplicateRate {
						break
					}
					src := res.records[rng.Intn(len(res.records))].Clone()
					for i := 0; i < cfg.Intensity; i++ {
						corr.Apply(&src)
					}
					res.records = append(res.records, src)
					res.extra++
				}
				results[idx] = res
			}
		}()
	}
	for idx := range ids {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var st Stats
	// Rebuild through a single synthetic snapshot import so the derived
	// dataset carries consistent hashes and reproducibility metadata. The
	// removal mode is RemoveNone because pollution may legitimately create
	// colliding rows that must all survive.
	snap := voter.Snapshot{Date: "polluted"}
	for _, res := range results {
		st.PollutedRecords += res.polluted
		st.ExtraDuplicates += res.extra
		snap.Records = append(snap.Records, res.records...)
	}
	out := core.NewDataset(core.RemoveNone)
	out.ImportSnapshot(snap)
	out.Publish()
	st.Clusters = out.NumClusters()
	st.Records = out.NumRecords()
	return out, st
}
