package dapo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/synth"
)

// buildInput generates a small historical dataset.
func buildInput(t *testing.T) *core.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig(4, 200)
	cfg.Snapshots = synth.Calendar(2008, 4)
	d := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		d.ImportSnapshot(s)
	}
	d.Publish()
	return d
}

func TestPollutePreservesGoldStandard(t *testing.T) {
	d := buildInput(t)
	out, st := Pollute(d, DefaultConfig(1))
	if st.Clusters != d.NumClusters() {
		t.Errorf("clusters = %d, want %d (pollution must never change cluster membership)",
			st.Clusters, d.NumClusters())
	}
	if out.NumRecords() < d.NumRecords() {
		t.Errorf("records shrank: %d -> %d", d.NumRecords(), out.NumRecords())
	}
	if st.ExtraDuplicates != out.NumRecords()-d.NumRecords() {
		t.Errorf("extra duplicates = %d, delta = %d", st.ExtraDuplicates, out.NumRecords()-d.NumRecords())
	}
	// Every output NCID exists in the input.
	for _, id := range out.NCIDs() {
		if d.Cluster(id) == nil {
			t.Fatalf("pollution invented cluster %s", id)
		}
	}
	// Every record keeps its cluster's NCID.
	out.Clusters(func(c *core.Cluster) bool {
		for _, e := range c.Records {
			if e.Rec.NCID() != c.NCID {
				t.Fatalf("record NCID %s in cluster %s", e.Rec.NCID(), c.NCID)
			}
		}
		return true
	})
}

func TestPolluteDoesNotMutateInput(t *testing.T) {
	d := buildInput(t)
	before := map[string]string{}
	d.Clusters(func(c *core.Cluster) bool {
		for i, e := range c.Records {
			before[c.NCID+string(rune(i))] = e.Rec.GetName("last_name") + "|" + e.Rec.GetName("first_name")
		}
		return true
	})
	Pollute(d, DefaultConfig(2))
	d.Clusters(func(c *core.Cluster) bool {
		for i, e := range c.Records {
			if before[c.NCID+string(rune(i))] != e.Rec.GetName("last_name")+"|"+e.Rec.GetName("first_name") {
				t.Fatalf("pollution mutated the input dataset at %s[%d]", c.NCID, i)
			}
		}
		return true
	})
}

func TestPolluteIncreasesHeterogeneity(t *testing.T) {
	d := buildInput(t)
	hetero.Update(d)
	baseHet := mean(hetero.ClusterHeterogeneity(d, core.KindHeteroPerson))

	cfg := DefaultConfig(3)
	cfg.RecordFraction = 0.8
	cfg.Intensity = 2
	out, st := Pollute(d, cfg)
	if st.PollutedRecords == 0 {
		t.Fatal("nothing was polluted at RecordFraction 0.8")
	}
	hetero.Update(out)
	polHet := mean(hetero.ClusterHeterogeneity(out, core.KindHeteroPerson))
	if polHet <= baseHet {
		t.Errorf("pollution did not increase heterogeneity: %v -> %v", baseHet, polHet)
	}
}

func TestPolluteDeterministicAcrossWorkerCounts(t *testing.T) {
	d := buildInput(t)
	cfg := DefaultConfig(5)
	cfg.Workers = 1
	a, _ := Pollute(d, cfg)
	cfg.Workers = 8
	b, _ := Pollute(d, cfg)
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("worker count changed output size: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for _, id := range a.NCIDs() {
		ca, cb := a.Cluster(id), b.Cluster(id)
		if len(ca.Records) != len(cb.Records) {
			t.Fatalf("cluster %s size differs", id)
		}
		for i := range ca.Records {
			for j := range ca.Records[i].Rec.Values {
				if ca.Records[i].Rec.Values[j] != cb.Records[i].Rec.Values[j] {
					t.Fatalf("cluster %s record %d column %d differs across worker counts", id, i, j)
				}
			}
		}
	}
}

func TestPolluteZeroConfigIsCopy(t *testing.T) {
	d := buildInput(t)
	out, st := Pollute(d, Config{Seed: 1})
	if st.PollutedRecords != 0 || st.ExtraDuplicates != 0 {
		t.Errorf("zero config polluted something: %+v", st)
	}
	if out.NumRecords() != d.NumRecords() {
		t.Errorf("zero config changed record count")
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
