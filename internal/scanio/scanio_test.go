package scanio_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/docstore"
	"repro/internal/scanio"
	"repro/internal/voter"
)

// TestSharedLimitsLongLine is the single long-line regression test covering
// both consumers of the shared buffer geometry: the voter TSV reader and
// the docstore JSON-lines loader. One corpus, two readers — a line past the
// 64 KiB initial buffer must be accepted by both, the TSV cap must reject a
// row past MaxTSVLineBytes, and a JSON-lines document of the same size must
// still load because the docstore cap is deliberately wider.
func TestSharedLimitsLongLine(t *testing.T) {
	const big = scanio.MaxTSVLineBytes + 1024 // past the TSV cap, far under the doc cap
	payload := strings.Repeat("A", big)

	// Consumer 1: voter.StreamTSV. A 1 MiB value streams; a value pushing
	// the row past MaxTSVLineBytes fails with bufio.ErrTooLong.
	okRow := tsvSnapshot(t, strings.Repeat("A", 1<<20))
	n, err := voter.StreamTSV(bytes.NewReader(okRow), func(voter.Record) error { return nil })
	if err != nil || n != 3 {
		t.Fatalf("voter: 1 MiB row: n=%d err=%v", n, err)
	}
	overRow := tsvSnapshot(t, payload)
	if _, err := voter.StreamTSV(bytes.NewReader(overRow), func(voter.Record) error { return nil }); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("voter: over-cap row: got %v, want bufio.ErrTooLong", err)
	}

	// Consumer 2: docstore LoadFile. The same payload that overflows the
	// TSV cap fits a document line (MaxDocLineBytes is 16x wider).
	dir := t.TempDir()
	path := filepath.Join(dir, "c.jsonl")
	doc := fmt.Sprintf("{\"_id\":\"big\",\"v\":%q}\n", payload)
	if len(doc) <= scanio.MaxTSVLineBytes || len(doc) >= scanio.MaxDocLineBytes {
		t.Fatalf("test corpus does not sit between the two caps: %d", len(doc))
	}
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	c := docstore.NewCollection("c")
	if err := c.LoadFile(path); err != nil {
		t.Fatalf("docstore: %d-byte line: %v", len(doc), err)
	}
	if c.Len() != 1 {
		t.Fatalf("docstore: loaded %d docs, want 1", c.Len())
	}
}

// TestNewScannerCap pins NewScanner's cap behavior without multi-megabyte
// corpora: a scanner built for a small cap accepts a line just under the
// cap (the buffer must also hold the not-yet-consumed newline) and rejects
// one past it.
func TestNewScannerCap(t *testing.T) {
	const cap = 128
	at := strings.Repeat("x", cap-1)
	sc := scanio.NewScanner(strings.NewReader(at+"\n"), cap)
	if !sc.Scan() || sc.Text() != at {
		t.Fatalf("line under cap rejected: %v", sc.Err())
	}
	over := strings.Repeat("x", cap+1)
	sc = scanio.NewScanner(strings.NewReader(over+"\n"), cap)
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), bufio.ErrTooLong) {
		t.Fatalf("line past cap: got %v, want bufio.ErrTooLong", sc.Err())
	}
}

// tsvSnapshot renders a 3-record snapshot whose middle record carries one
// value of the given size (the tsv_long_test.go shape).
func tsvSnapshot(t *testing.T, v string) []byte {
	t.Helper()
	snap := voter.Snapshot{Date: "2012-11-06"}
	for i := 0; i < 3; i++ {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("ZZ00000%d", i+1))
		r.SetName("snapshot_dt", "2012-11-06")
		if i == 1 {
			r.SetName("street_name", v)
		}
		snap.Records = append(snap.Records, r)
	}
	var buf bytes.Buffer
	if err := voter.WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
