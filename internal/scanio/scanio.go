// Package scanio centralizes the line-scanner buffer geometry shared by
// every line-oriented reader in the repo: the voter TSV codec (sequential
// StreamTSV and the chunked parallel ingest reader in internal/core) and
// the docstore JSON-lines loader. Both families previously carried their
// own copies of the same two numbers; keeping them here means a future
// limit change cannot drift one consumer out of sync with the other, and
// the conformance harness (internal/testkit) exercises both consumers
// against the same long-line corpus.
package scanio

import (
	"bufio"
	"io"
)

const (
	// InitialBufferBytes is the scanner's up-front buffer. bufio's default
	// 64 KiB token limit is too small for a 90-attribute voter row with
	// export padding, let alone a cluster document, so every scanner in the
	// repo starts here and grows to its format's line cap.
	InitialBufferBytes = 64 << 10

	// MaxTSVLineBytes is the largest accepted voter TSV line; longer lines
	// fail with bufio.ErrTooLong on every read path (sequential and
	// parallel ingest alike).
	MaxTSVLineBytes = 4 << 20

	// MaxDocLineBytes is the largest single JSON-lines document the
	// docstore accepts. A cluster document embeds every record of its
	// cluster, so document lines grow far beyond TSV rows; 64 MiB bounds
	// them without admitting unbounded allocations from corrupt input.
	MaxDocLineBytes = 1 << 26
)

// NewScanner returns a line scanner over r sized for lines up to
// maxLineBytes: InitialBufferBytes up front, growing to the cap. Lines
// beyond the cap fail with bufio.ErrTooLong.
func NewScanner(r io.Reader, maxLineBytes int) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	initial := InitialBufferBytes
	if initial > maxLineBytes {
		initial = maxLineBytes
	}
	sc.Buffer(make([]byte, initial), maxLineBytes)
	return sc
}
