package custom

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/synth"
)

// buildInput generates a small historical dataset with heterogeneity
// scores.
func buildInput(t *testing.T) *core.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig(5, 250)
	cfg.Snapshots = synth.Calendar(2008, 6)
	d := core.NewDataset(core.RemoveTrimmed)
	sim := synth.New(cfg)
	for i := 0; i < sim.NumSnapshots(); i++ {
		d.ImportSnapshot(sim.Next())
	}
	hetero.Update(d)
	d.Publish()
	return d
}

func TestBuildRespectsHeterogeneityRange(t *testing.T) {
	d := buildInput(t)
	cfg := NC1Config(1, 200, 40)
	ds := Build(d, cfg)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Name != "NC1" {
		t.Errorf("name = %s", ds.Name)
	}
	if ds.NumClusters() == 0 || ds.NumClusters() > 40 {
		t.Fatalf("clusters = %d, want in (0, 40]", ds.NumClusters())
	}
	if len(ds.Attrs) != 38 {
		t.Errorf("attrs = %d, want 38 person attributes", len(ds.Attrs))
	}
	if len(ds.NameAttrs) != 3 {
		t.Errorf("name attrs = %v", ds.NameAttrs)
	}
	// Every kept pair inside one cluster respects the range when rescored
	// against the *input* weights is hard to assert exactly (weights of the
	// output differ); assert the output's average heterogeneity is low.
	ch := Describe(ds)
	if ch.AvgHetero > 0.3 {
		t.Errorf("NC1 avg heterogeneity = %v, want <= 0.3", ch.AvgHetero)
	}
}

func TestHeterogeneityOrderingAcrossSettings(t *testing.T) {
	d := buildInput(t)
	nc1 := Describe(Build(d, NC1Config(1, 200, 30)))
	nc3 := Describe(Build(d, NC3Config(1, 200, 30)))
	// NC3 clusters are rare in a clean register; the paper relies on the
	// sheer size of the input. At test scale NC3 may be small, but whenever
	// it has pairs they must be dirtier than NC1's.
	if nc3.DupPairs > 0 && nc1.DupPairs > 0 && nc3.AvgHetero <= nc1.AvgHetero {
		t.Errorf("NC3 avg hetero (%v) should exceed NC1 (%v)", nc3.AvgHetero, nc1.AvgHetero)
	}
	if nc1.DupPairs == 0 {
		t.Error("NC1 has no duplicate pairs at all")
	}
}

func TestBuildDeterminism(t *testing.T) {
	d := buildInput(t)
	a := Build(d, NC1Config(9, 100, 20))
	b := Build(d, NC1Config(9, 100, 20))
	if len(a.Records) != len(b.Records) {
		t.Fatal("non-deterministic record count")
	}
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != b.Records[i][j] {
				t.Fatalf("non-deterministic value at %d/%d", i, j)
			}
		}
	}
}

func TestSelectTopKeepsLargestClusters(t *testing.T) {
	d := buildInput(t)
	all := Build(d, Config{Name: "ALL", HLow: 0, HHigh: 1, SampleClusters: 0, SelectTop: 0, Seed: 1})
	top := Build(d, Config{Name: "TOP", HLow: 0, HHigh: 1, SampleClusters: 0, SelectTop: 10, Seed: 1})
	if top.NumClusters() != 10 {
		t.Fatalf("top clusters = %d", top.NumClusters())
	}
	// The smallest selected cluster is at least as large as the largest
	// non-selected cluster would demand: cheap proxy — avg size of TOP >=
	// avg size of ALL.
	if top.AvgClusterSize() < all.AvgClusterSize() {
		t.Errorf("top avg %v < all avg %v", top.AvgClusterSize(), all.AvgClusterSize())
	}
}

func TestFullRangeKeepsEverythingFirstRecord(t *testing.T) {
	d := buildInput(t)
	ds := Build(d, Config{Name: "X", HLow: 0, HHigh: 1, Seed: 2})
	// With the full range, no record is dropped: counts match the input.
	if ds.NumRecords() != d.NumRecords() {
		t.Errorf("full-range records = %d, input %d", ds.NumRecords(), d.NumRecords())
	}
	if ds.NumClusters() != d.NumClusters() {
		t.Errorf("full-range clusters = %d, input %d", ds.NumClusters(), d.NumClusters())
	}
}

func TestBuildFromDatasetGeneric(t *testing.T) {
	d := buildInput(t)
	// The generic path over an exported dataset must behave like the core
	// path: full range keeps everything.
	src := Build(d, Config{Name: "SRC", HLow: 0, HHigh: 1, Seed: 1})
	all := BuildFromDataset(src, Config{Name: "ALL", HLow: 0, HHigh: 1, Seed: 1})
	if all.NumRecords() != src.NumRecords() || all.NumClusters() != src.NumClusters() {
		t.Errorf("full-range generic build: %d/%d vs %d/%d",
			all.NumRecords(), all.NumClusters(), src.NumRecords(), src.NumClusters())
	}
	// A narrow clean range reduces records and lowers heterogeneity.
	clean := BuildFromDataset(src, Config{Name: "CLEAN", HLow: 0.0, HHigh: 0.15, SelectTop: 30, Seed: 1})
	if clean.NumClusters() != 30 {
		t.Fatalf("clean clusters = %d", clean.NumClusters())
	}
	if err := clean.Validate(); err != nil {
		t.Fatal(err)
	}
	chAll := Describe(all)
	chClean := Describe(clean)
	if chClean.AvgHetero > chAll.AvgHetero && chClean.DupPairs > 0 && chAll.DupPairs > 0 {
		t.Errorf("clean range (%v) dirtier than full range (%v)", chClean.AvgHetero, chAll.AvgHetero)
	}
	// Determinism.
	again := BuildFromDataset(src, Config{Name: "CLEAN", HLow: 0.0, HHigh: 0.15, SelectTop: 30, Seed: 1})
	if again.NumRecords() != clean.NumRecords() {
		t.Error("generic build not deterministic")
	}
}

func TestDescribeStructure(t *testing.T) {
	d := buildInput(t)
	ds := Build(d, NC1Config(3, 150, 25))
	ch := Describe(ds)
	if ch.Records != ds.NumRecords() || ch.Clusters != ds.NumClusters() {
		t.Errorf("Describe counts mismatch: %+v", ch)
	}
	if ch.MaxHetero < ch.AvgHetero {
		t.Errorf("max hetero %v < avg %v", ch.MaxHetero, ch.AvgHetero)
	}
	if ch.AvgCluster <= 0 {
		t.Errorf("avg cluster = %v", ch.AvgCluster)
	}
	hs := PairHeterogeneities(ds)
	if len(hs) != ch.DupPairs {
		t.Errorf("pair heterogeneities = %d, pairs = %d", len(hs), ch.DupPairs)
	}
}
