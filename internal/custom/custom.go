// Package custom implements the paper's customization experiment (§6.5):
// deriving test datasets of a chosen dirtiness from the big historical
// dataset. The three-step recipe — (1) fix a heterogeneity range
// [h⊥, h⊤], (2) sample clusters and drop every record whose heterogeneity
// to its preceding kept records leaves the range, (3) keep the largest k
// reduced clusters — produced the paper's NC1 (clean), NC2 (medium) and
// NC3 (dirty) datasets.
package custom

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dedup"
	"repro/internal/hetero"
	"repro/internal/voter"
)

// Config parameterizes one customization run.
type Config struct {
	Name           string  // output dataset name (e.g. "NC1")
	HLow, HHigh    float64 // requested heterogeneity range [h⊥, h⊤]
	SampleClusters int     // step 2: how many clusters to sample
	SelectTop      int     // step 3: how many largest reduced clusters to keep
	Seed           int64
}

// NC1Config etc. mirror the paper's three settings (h⊥, h⊤) ∈
// {(0.06, 0.2), (0.2, 0.4), (0.4, 1.0)}; sample and selection sizes scale
// with the caller's data volume.
func NC1Config(seed int64, sample, top int) Config {
	return Config{Name: "NC1", HLow: 0.06, HHigh: 0.2, SampleClusters: sample, SelectTop: top, Seed: seed}
}

// NC2Config is the medium-heterogeneity setting.
func NC2Config(seed int64, sample, top int) Config {
	return Config{Name: "NC2", HLow: 0.2, HHigh: 0.4, SampleClusters: sample, SelectTop: top, Seed: seed}
}

// NC3Config is the dirty setting.
func NC3Config(seed int64, sample, top int) Config {
	return Config{Name: "NC3", HLow: 0.4, HHigh: 1.0, SampleClusters: sample, SelectTop: top, Seed: seed}
}

// Build runs the three customization steps against the dataset and returns
// the result restricted to the person attributes. Stored
// heterogeneity-person scores are used where present; missing pairs are
// scored on the fly with entropy weights from the input's cluster
// representatives.
func Build(d *core.Dataset, cfg Config) *dedup.Dataset {
	cols := hetero.PersonColumns()
	scorer := hetero.NewScorer(cols, hetero.DatasetWeights(d, cols))

	// Step 2a: sample clusters.
	ids := d.NCIDs()
	rng := rand.New(rand.NewSource(corrupt.SubSeed(cfg.Seed, 30)))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if cfg.SampleClusters > 0 && cfg.SampleClusters < len(ids) {
		ids = ids[:cfg.SampleClusters]
	}

	// Step 2b: reduce each cluster to records inside the range.
	var reducedClusters []reducedCluster
	for _, id := range ids {
		c := d.Cluster(id)
		var kept []voter.Record
		var keptIdx []int
		for i, e := range c.Records {
			ok := true
			for ki, kr := range kept {
				h, stored := c.PairScore(core.KindHeteroPerson, i, keptIdx[ki])
				var hv float64
				if stored {
					hv = core.HeteroFromSim(h)
				} else {
					hv = 1 - scorer.PairSim(e.Rec, kr)
				}
				if hv < cfg.HLow || hv > cfg.HHigh {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, e.Rec)
				keptIdx = append(keptIdx, i)
			}
		}
		reducedClusters = append(reducedClusters, reducedCluster{c.NCID, kept})
	}

	// Step 3: keep the largest clusters (stable on NCID for determinism).
	sort.SliceStable(reducedClusters, func(a, b int) bool {
		if len(reducedClusters[a].recs) != len(reducedClusters[b].recs) {
			return len(reducedClusters[a].recs) > len(reducedClusters[b].recs)
		}
		return reducedClusters[a].ncid < reducedClusters[b].ncid
	})
	if cfg.SelectTop > 0 && cfg.SelectTop < len(reducedClusters) {
		reducedClusters = reducedClusters[:cfg.SelectTop]
	}

	return toDedupDataset(cfg.Name, cols, reducedClusters)
}

// reducedCluster is a cluster after the step-2 record reduction.
type reducedCluster struct {
	ncid string
	recs []voter.Record
}

// toDedupDataset renders the reduced clusters as a trimmed person-attribute
// dataset for the detection pipelines.
func toDedupDataset(name string, cols []int, clusters []reducedCluster) *dedup.Dataset {
	attrs := voter.Names(cols)
	ds := &dedup.Dataset{Name: name, Attrs: attrs}
	for i, a := range attrs {
		switch a {
		case "first_name", "midl_name", "last_name":
			ds.NameAttrs = append(ds.NameAttrs, i)
		}
	}
	for ci, cl := range clusters {
		for _, r := range cl.recs {
			vals := make([]string, len(cols))
			for vi, c := range cols {
				vals[vi] = strings.TrimSpace(r.Values[c])
			}
			ds.Records = append(ds.Records, vals)
			ds.ClusterOf = append(ds.ClusterOf, ci)
		}
	}
	return ds
}

// Characteristics is one row of the paper's Table 3.
type Characteristics struct {
	Name          string
	Records       int
	Attributes    int
	DupPairs      int
	Clusters      int
	NonSingletons int
	MaxCluster    int
	AvgCluster    float64
	MaxHetero     float64
	AvgHetero     float64
}

// Describe computes a dataset's Table 3 row: structural counts plus the
// pair-based heterogeneity extrema under the standard scoring (entropy
// weights from one record per cluster).
func Describe(ds *dedup.Dataset) Characteristics {
	ch := Characteristics{
		Name:          ds.Name,
		Records:       ds.NumRecords(),
		Attributes:    len(ds.Attrs),
		DupPairs:      ds.NumTruePairs(),
		Clusters:      ds.NumClusters(),
		NonSingletons: ds.NonSingletonClusters(),
		MaxCluster:    ds.MaxClusterSize(),
		AvgCluster:    ds.AvgClusterSize(),
	}
	// Weights from cluster representatives only.
	var reps [][]string
	for _, idx := range clustersInOrder(ds) {
		reps = append(reps, ds.Records[idx[0]])
	}
	weights := hetero.EntropyWeightsFromRows(reps)
	sum, n := 0.0, 0
	for _, idx := range clustersInOrder(ds) {
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				h := hetero.Heterogeneity(ds.Records[idx[x]], ds.Records[idx[y]], weights)
				sum += h
				n++
				if h > ch.MaxHetero {
					ch.MaxHetero = h
				}
			}
		}
	}
	if n > 0 {
		ch.AvgHetero = sum / float64(n)
	}
	return ch
}

// PairHeterogeneities returns every duplicate pair's heterogeneity under
// the standard scoring — the raw series behind Figure 4c.
func PairHeterogeneities(ds *dedup.Dataset) []float64 {
	var reps [][]string
	for _, idx := range clustersInOrder(ds) {
		reps = append(reps, ds.Records[idx[0]])
	}
	weights := hetero.EntropyWeightsFromRows(reps)
	var out []float64
	for _, idx := range clustersInOrder(ds) {
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				out = append(out, hetero.Heterogeneity(ds.Records[idx[x]], ds.Records[idx[y]], weights))
			}
		}
	}
	return out
}

// BuildFromDataset applies the same three customization steps to any
// labeled dataset (the generic-corpus path): sample clusters, keep records
// whose heterogeneity to the preceding kept records stays inside
// [HLow, HHigh], select the largest reduced clusters. Heterogeneity uses
// the standard scoring (entropy weights from one record per cluster of the
// input).
func BuildFromDataset(ds *dedup.Dataset, cfg Config) *dedup.Dataset {
	var reps [][]string
	clusters := clustersInOrder(ds)
	for _, idx := range clusters {
		reps = append(reps, ds.Records[idx[0]])
	}
	weights := hetero.EntropyWeightsFromRows(reps)

	rng := rand.New(rand.NewSource(corrupt.SubSeed(cfg.Seed, 31)))
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	if cfg.SampleClusters > 0 && cfg.SampleClusters < len(order) {
		order = order[:cfg.SampleClusters]
	}

	type reduced struct {
		orig int
		recs []int
	}
	var reducedClusters []reduced
	for _, ci := range order {
		var kept []int
		for _, ri := range clusters[ci] {
			ok := true
			for _, ki := range kept {
				h := hetero.Heterogeneity(ds.Records[ri], ds.Records[ki], weights)
				if h < cfg.HLow || h > cfg.HHigh {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, ri)
			}
		}
		reducedClusters = append(reducedClusters, reduced{ci, kept})
	}
	sort.SliceStable(reducedClusters, func(a, b int) bool {
		if len(reducedClusters[a].recs) != len(reducedClusters[b].recs) {
			return len(reducedClusters[a].recs) > len(reducedClusters[b].recs)
		}
		return reducedClusters[a].orig < reducedClusters[b].orig
	})
	if cfg.SelectTop > 0 && cfg.SelectTop < len(reducedClusters) {
		reducedClusters = reducedClusters[:cfg.SelectTop]
	}

	out := &dedup.Dataset{Name: cfg.Name, Attrs: ds.Attrs, NameAttrs: ds.NameAttrs}
	for cid, rc := range reducedClusters {
		for _, ri := range rc.recs {
			out.Records = append(out.Records, ds.Records[ri])
			out.ClusterOf = append(out.ClusterOf, cid)
		}
	}
	return out
}

// clustersInOrder returns the cluster index lists sorted by cluster id so
// iteration order is deterministic.
func clustersInOrder(ds *dedup.Dataset) [][]int {
	m := ds.Clusters()
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
