package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunDocstoreBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_docstore.json")
	w := NewWorkspace(Tiny)
	res, err := RunDocstoreBench(w, []int{1, 2}, jsonPath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs == 0 || res.FlatBytes == 0 {
		t.Fatalf("degenerate corpus: %+v", res)
	}
	if len(res.Points) != 4 { // save+load at each of 2 worker counts
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Seconds <= 0 || p.Speedup <= 0 {
			t.Errorf("%s workers=%d: degenerate measurement %+v", p.Op, p.Workers, p)
		}
		if !p.Identical {
			t.Errorf("%s workers=%d: store not identical to flat baseline", p.Op, p.Workers)
		}
	}
	pd := res.Pushdown
	if pd == nil {
		t.Fatal("missing pushdown comparison")
	}
	if !pd.Identical {
		t.Error("pushdown results diverged from the scan")
	}
	if pd.PushdownScanned >= pd.ScanScanned {
		t.Errorf("pushdown scanned %d docs, scan %d — the index skipped nothing",
			pd.PushdownScanned, pd.ScanScanned)
	}

	body, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON artifact not written: %v", err)
	}
	var decoded DocstoreResult
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("JSON artifact malformed: %v", err)
	}
	if decoded.Docs != res.Docs || len(decoded.Points) != len(res.Points) {
		t.Errorf("JSON artifact diverges from the returned result")
	}
}
