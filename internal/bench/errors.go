package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dedup"
	"repro/internal/errstats"
)

// Table4Result is the error-diversity profile of NC vs Cora vs Census.
type Table4Result struct {
	NC     *errstats.Table
	Cora   *errstats.Table
	Census *errstats.Table
}

// RunTable4 profiles the big dataset's person attributes and the two
// comparators the paper contrasts it with.
func RunTable4(w *Workspace, out io.Writer) Table4Result {
	res := Table4Result{
		NC:     errstats.Analyze(errstats.FromDataset(w.Dataset(core.RemoveTrimmed))),
		Cora:   errstats.Analyze(comparatorInput(datasets.Cora(w.Scale.Seed))),
		Census: errstats.Analyze(comparatorInput(datasets.Census(w.Scale.Seed))),
	}
	fmt.Fprintln(out, "Table 4: irregularity statistics (most common attribute, count, percentage)")
	errstats.RenderText(out, []errstats.Column{
		{Name: "NC", Table: res.NC},
		{Name: "Cora", Table: res.Cora},
		{Name: "Census", Table: res.Census},
	})
	return res
}

// comparatorInput adapts a comparator dataset to the error analyzer. All
// attribute pairs are confusable for the small schemas.
func comparatorInput(ds *dedup.Dataset) errstats.Input {
	in := errstats.Input{Attrs: ds.Attrs}
	in.Records = append(in.Records, ds.Records...)
	clusters := ds.Clusters()
	for _, idx := range clustersSorted(clusters) {
		in.Clusters = append(in.Clusters, idx)
	}
	return in
}

func clustersSorted(m map[int][]int) [][]int {
	max := -1
	for k := range m {
		if k > max {
			max = k
		}
	}
	var out [][]int
	for k := 0; k <= max; k++ {
		if idx, ok := m[k]; ok {
			out = append(out, idx)
		}
	}
	return out
}
