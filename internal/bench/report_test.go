package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestReportMarkdownRendering(t *testing.T) {
	t2 := Table2Result{Rows: []core.GenerationStats{
		{Mode: core.RemoveNone, Records: 100, DuplicatePairs: 50, AvgClusterSize: 2, MaxClusterSize: 4},
		{Mode: core.RemoveTrimmed, Records: 60, DuplicatePairs: 20, AvgClusterSize: 1.5, MaxClusterSize: 3,
			RemovedRecords: 40, RemovedRecPct: 0.4, RemovedPairs: 30, RemovedPairPct: 0.6},
	}}
	f3 := Figure3Result{SoundPlausibility: 0.71, UnsoundPlausibility: 0.26, SoundHetero: 0.47, UnsoundHetero: 0.75}
	r := Report{
		Scale:   Tiny,
		Table2:  &t2,
		Figure3: &f3,
	}
	var sb strings.Builder
	r.WriteMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"# Experiment report",
		"## Table 2",
		"| trimming | 60 | 20 | 1.50 | 3 | 40.0% | 60.0% |",
		"## Figure 3",
		"plausibility 0.71",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown misses %q:\n%s", want, out)
		}
	}
	// Nil sections are omitted.
	if strings.Contains(out, "Table 1") || strings.Contains(out, "Figure 4a") {
		t.Error("nil sections rendered")
	}
}

func TestReportFullSections(t *testing.T) {
	// A report over the shared test workspace exercises every section.
	t1 := RunTable1(testWS, io.Discard)
	t2 := RunTable2(testWS, io.Discard)
	f3 := RunFigure3Examples(io.Discard)
	f4a := RunFigure4a(testWS, io.Discard)
	f4b := RunFigure4b(testWS, io.Discard)
	f4c := RunFigure4c(1, io.Discard)
	t4 := RunTable4(testWS, io.Discard)
	r := Report{
		Scale:    testWS.Scale,
		Table1:   &t1,
		Table2:   &t2,
		Table4:   &t4,
		Figure3:  &f3,
		Figure4a: &f4a,
		Figure4b: &f4b,
		Figure4c: &f4c,
	}
	var sb strings.Builder
	r.WriteMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 4", "Figure 4a", "Figure 4b", "Figure 4c", "| Cora |"} {
		if !strings.Contains(out, want) {
			t.Errorf("full report misses %q", want)
		}
	}
}
