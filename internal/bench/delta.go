package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/synth"
	"repro/internal/testkit"
)

// DeltaPoint is one row of the incremental-application experiment: the same
// delta file applied through the full-reimport path and through
// ApplySnapshotDelta with dirty-cluster rescoring and a dirty-segment save.
type DeltaPoint struct {
	Fraction          float64 `json:"fraction"`
	DeltaRows         int     `json:"deltaRows"`
	ClustersTotal     int     `json:"clustersTotal"`
	ClustersChanged   int     `json:"clustersChanged"`
	ClustersTouched   int     `json:"clustersTouched"`
	ClustersRescored  int     `json:"clustersRescored"`
	SegmentsTotal     int64   `json:"segmentsTotal"`
	SegmentsRewritten int64   `json:"segmentsRewritten"`
	SegmentsReused    int64   `json:"segmentsReused"`
	FullSeconds       float64 `json:"fullSeconds"`
	DeltaSeconds      float64 `json:"deltaSeconds"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical"`
}

// DeltaResult is the machine-readable output of the experiment
// (BENCH_delta.json).
type DeltaResult struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	BaseFiles  int          `json:"baseFiles"`
	BaseRows   int          `json:"baseRows"`
	Clusters   int          `json:"clusters"`
	Stride     int          `json:"stride"`
	Points     []DeltaPoint `json:"points"`
}

// DeltaFractions is the changed-fraction ladder of the experiment.
var DeltaFractions = []float64{0.01, 0.05, 0.25, 1.0}

// deltaBenchStride keeps the store spread over enough segments that
// dirty-segment reuse has something to reuse at every scale.
const deltaBenchStride = 64

// counterObs collects docstore counters for one timed save.
type counterObs struct {
	mu sync.Mutex
	m  map[string]int64
}

func (o *counterObs) AddN(name string, n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.m == nil {
		o.m = map[string]int64{}
	}
	o.m[name] += n
}

func (o *counterObs) get(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[name]
}

// RunDeltaBench measures incremental snapshot application against the full
// reimport it replaces, over the changed-fraction ladder. Both arms maintain
// scores after every published round and persist with the stable stride
// layout, so their outputs are bit-comparable; the delta arm starts from the
// resident state a continuously-updating service holds (dataset, fingerprint
// index, previously saved store), which is exactly the asymmetry the
// experiment quantifies. workers <= 0 selects GOMAXPROCS for every parallel
// stage. jsonPath, when non-empty, receives the result as machine-readable
// JSON (BENCH_delta.json).
func RunDeltaBench(scale Scale, workers int, jsonPath string, out io.Writer) (DeltaResult, error) {
	res := DeltaResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Stride:     deltaBenchStride,
	}
	regDir, err := os.MkdirTemp("", "ncdelta")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(regDir)

	cfg := synth.DefaultConfig(scale.Seed, scale.InitialVoters)
	cfg.Snapshots = synth.Calendar(2008, scale.Years)
	basePaths, err := synth.WriteAllParallel(cfg, regDir, 0)
	if err != nil {
		return res, err
	}

	// buildBase imports and scores the base register round by round; when
	// storeDir is non-empty each round is persisted there, leaving the
	// stride-layout store the delta arm re-stamps.
	buildBase := func(storeDir string) (*core.Dataset, int, error) {
		d := core.NewDataset(core.RemoveTrimmed)
		rows := 0
		for _, p := range basePaths {
			st, err := d.ImportSnapshotFileParallel(p, workers)
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", p, err)
			}
			rows += st.Rows
			d.Publish()
			plaus.UpdateParallel(d, workers)
			hetero.UpdateParallel(d, workers)
		}
		if storeDir != "" {
			if err := d.ToDocDB().SaveParallelOpts(storeDir, docstore.SaveOpts{
				Workers: workers, Stride: deltaBenchStride,
			}); err != nil {
				return nil, 0, err
			}
		}
		return d, rows, nil
	}

	proto, baseRows, err := buildBase("")
	if err != nil {
		return res, err
	}
	res.BaseFiles = len(basePaths)
	res.BaseRows = baseRows
	res.Clusters = proto.NumClusters()
	const deltaDate = "2097-01-01"

	fmt.Fprintf(out, "Delta apply vs full reimport: %d base files (%d rows), %d clusters, trimming mode, %d workers\n",
		len(basePaths), baseRows, proto.NumClusters(), workers)
	fmt.Fprintf(out, "%9s %9s %9s %9s %9s %9s %10s %10s %8s %10s\n",
		"fraction", "rows", "changed", "rescored", "seg rw", "seg reuse", "full s", "delta s", "speedup", "identical")

	for _, fraction := range DeltaFractions {
		deltaPath, changed, err := testkit.WriteDeltaFile(regDir, proto, deltaDate, fraction, true)
		if err != nil {
			return res, err
		}

		// Delta arm: resident dataset + index + saved store, then the timed
		// incremental round.
		workDir, err := os.MkdirTemp("", "ncdelta-store")
		if err != nil {
			return res, err
		}
		deltaDS, _, err := buildBase(workDir)
		if err != nil {
			os.RemoveAll(workDir)
			return res, err
		}
		ix := core.BuildFingerprintIndex(deltaDS)
		obs := &counterObs{}
		deltaStart := time.Now()
		dl, err := deltaDS.ApplySnapshotDelta(deltaPath, core.DeltaOptions{Workers: workers, Index: ix})
		if err != nil {
			os.RemoveAll(workDir)
			return res, err
		}
		deltaDS.Publish()
		plaus.UpdateDelta(deltaDS, dl, workers)
		hetero.UpdateDelta(deltaDS, dl, workers)
		if err := deltaDS.ToDocDB().SaveParallelOpts(workDir, docstore.SaveOpts{
			Workers: workers, Stride: deltaBenchStride, Dirty: dl.DirtyIDs(), Observer: obs,
		}); err != nil {
			os.RemoveAll(workDir)
			return res, err
		}
		deltaSeconds := time.Since(deltaStart).Seconds()

		// Full arm: the same end state rebuilt from nothing.
		fullDir, err := os.MkdirTemp("", "ncdelta-full")
		if err != nil {
			os.RemoveAll(workDir)
			return res, err
		}
		fullStart := time.Now()
		fullDS := core.NewDataset(core.RemoveTrimmed)
		importErr := func() error {
			for _, p := range append(append([]string{}, basePaths...), deltaPath) {
				if _, err := fullDS.ImportSnapshotFileParallel(p, workers); err != nil {
					return fmt.Errorf("%s: %w", p, err)
				}
				fullDS.Publish()
				plaus.UpdateParallel(fullDS, workers)
				hetero.UpdateParallel(fullDS, workers)
			}
			return fullDS.ToDocDB().SaveParallelOpts(fullDir, docstore.SaveOpts{
				Workers: workers, Stride: deltaBenchStride,
			})
		}()
		fullSeconds := time.Since(fullStart).Seconds()

		identical := importErr == nil &&
			reflect.DeepEqual(fullDS, deltaDS) &&
			sameDirBytes(fullDir, workDir)
		os.RemoveAll(workDir)
		os.RemoveAll(fullDir)
		os.Remove(deltaPath)
		if importErr != nil {
			return res, importErr
		}

		p := DeltaPoint{
			Fraction:          fraction,
			DeltaRows:         dl.Stats.Rows,
			ClustersTotal:     deltaDS.NumClusters(),
			ClustersChanged:   changed,
			ClustersTouched:   dl.Stats.TouchedClusters,
			ClustersRescored:  dl.Stats.DirtyClusters,
			SegmentsRewritten: obs.get(docstore.CounterSegmentsWritten),
			SegmentsReused:    obs.get(docstore.CounterSegmentsReused),
			FullSeconds:       fullSeconds,
			DeltaSeconds:      deltaSeconds,
			Identical:         identical,
		}
		p.SegmentsTotal = p.SegmentsRewritten + p.SegmentsReused
		if deltaSeconds > 0 {
			p.Speedup = fullSeconds / deltaSeconds
		}
		res.Points = append(res.Points, p)
		fmt.Fprintf(out, "%9.2f %9d %9d %9d %9d %9d %10.3f %10.3f %7.2fx %10v\n",
			p.Fraction, p.DeltaRows, p.ClustersChanged, p.ClustersRescored,
			p.SegmentsRewritten, p.SegmentsReused, p.FullSeconds, p.DeltaSeconds, p.Speedup, p.Identical)
	}

	if jsonPath != "" {
		body, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return res, err
		}
	}
	return res, nil
}

// sameDirBytes reports whether two directories hold the same file names with
// the same contents.
func sameDirBytes(a, b string) bool {
	read := func(dir string) (map[string][]byte, error) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		out := map[string][]byte{}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(dir + string(os.PathSeparator) + e.Name())
			if err != nil {
				return nil, err
			}
			out[e.Name()] = data
		}
		return out, nil
	}
	am, err := read(a)
	if err != nil {
		return false
	}
	bm, err := read(b)
	if err != nil {
		return false
	}
	return reflect.DeepEqual(am, bm)
}
