package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// ScalePoint is one measurement of the scale sweep.
type ScalePoint struct {
	InitialVoters int
	Rows          int
	Records       int
	GenSeconds    float64
	ImportSeconds float64
	RowsPerSecond float64 // import throughput
}

// RunScaleSweep measures generation and import throughput across growing
// populations — the quantified version of the paper's "duplicate detection
// at scale" framing: the pipeline must digest register-sized inputs in
// time linear in the row count.
func RunScaleSweep(seed int64, sizes []int, years int, out io.Writer) []ScalePoint {
	var points []ScalePoint
	fmt.Fprintln(out, "Scale sweep: generation + trimming-mode import")
	fmt.Fprintf(out, "%10s %10s %10s %8s %8s %12s\n",
		"voters", "rows", "records", "gen s", "import s", "rows/s")
	for _, size := range sizes {
		cfg := synth.DefaultConfig(seed, size)
		cfg.Snapshots = synth.Calendar(2008, years)

		start := time.Now()
		snaps := synth.Generate(cfg)
		genDur := time.Since(start)

		rows := 0
		for _, s := range snaps {
			rows += len(s.Records)
		}

		d := core.NewDataset(core.RemoveTrimmed)
		start = time.Now()
		for _, s := range snaps {
			d.ImportSnapshot(s)
		}
		impDur := time.Since(start)
		d.Publish()

		p := ScalePoint{
			InitialVoters: size,
			Rows:          rows,
			Records:       d.NumRecords(),
			GenSeconds:    genDur.Seconds(),
			ImportSeconds: impDur.Seconds(),
		}
		if impDur > 0 {
			p.RowsPerSecond = float64(rows) / impDur.Seconds()
		}
		points = append(points, p)
		fmt.Fprintf(out, "%10d %10d %10d %8.2f %8.2f %12.0f\n",
			p.InitialVoters, p.Rows, p.Records, p.GenSeconds, p.ImportSeconds, p.RowsPerSecond)
	}
	return points
}
