package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunDeltaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("delta bench rebuilds the base register per ladder point")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_delta.json")
	res, err := RunDeltaBench(Tiny, 0, jsonPath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(DeltaFractions) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(DeltaFractions))
	}
	if res.Clusters == 0 || res.BaseRows == 0 {
		t.Fatalf("degenerate base register: %+v", res)
	}
	prevChanged := 0
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("fraction %g: delta-applied state diverges from full reimport", p.Fraction)
		}
		if p.ClustersRescored != p.ClustersChanged {
			t.Errorf("fraction %g: rescored %d clusters, file changed %d",
				p.Fraction, p.ClustersRescored, p.ClustersChanged)
		}
		// Proportionality: more changed clusters, never fewer rewritten
		// segments, and always at least the meta segment plus one.
		if p.ClustersChanged < prevChanged {
			t.Errorf("fraction %g: changed clusters not monotone (%d after %d)",
				p.Fraction, p.ClustersChanged, prevChanged)
		}
		prevChanged = p.ClustersChanged
		if p.SegmentsRewritten < 1 || p.SegmentsRewritten+p.SegmentsReused != p.SegmentsTotal {
			t.Errorf("fraction %g: segment accounting broken: %+v", p.Fraction, p)
		}
		if p.FullSeconds <= 0 || p.DeltaSeconds <= 0 {
			t.Errorf("fraction %g: degenerate timings %+v", p.Fraction, p)
		}
	}
	// The 100% point rescored every cluster; the 1% point a small sliver.
	last := res.Points[len(res.Points)-1]
	if last.ClustersRescored != res.Clusters || last.SegmentsReused != 0 {
		t.Errorf("100%% point should rescore everything and reuse nothing: %+v", last)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON output missing: %v", err)
	}
	var round DeltaResult
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatalf("JSON output malformed: %v", err)
	}
	if len(round.Points) != len(res.Points) {
		t.Errorf("JSON round trip lost points: %d vs %d", len(round.Points), len(res.Points))
	}
}
