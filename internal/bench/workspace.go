// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), each regenerating the same rows or series
// the paper reports, at a configurable scale. Runners return structured
// results (for tests and EXPERIMENTS.md) and render a human-readable table
// to the supplied writer.
package bench

import (
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/synth"
	"repro/internal/voter"
)

// Scale sizes one experiment workspace. The paper works on 507 M rows; the
// default scales keep every shape claim while finishing in seconds.
type Scale struct {
	Seed          int64
	InitialVoters int
	Years         int
}

// Canonical scales.
var (
	Tiny   = Scale{Seed: 1, InitialVoters: 200, Years: 5}
	Small  = Scale{Seed: 1, InitialVoters: 600, Years: 8}
	Medium = Scale{Seed: 1, InitialVoters: 2500, Years: 13}
	Large  = Scale{Seed: 1, InitialVoters: 10000, Years: 13}
)

// Workspace generates the synthetic register once and caches the imported
// datasets per removal mode, so the table and figure runners share work.
type Workspace struct {
	Scale     Scale
	snapshots []voter.Snapshot
	datasets  map[core.RemovalMode]*core.Dataset
	scored    map[core.RemovalMode]bool
}

// NewWorkspace returns an empty lazy workspace.
func NewWorkspace(s Scale) *Workspace {
	return &Workspace{
		Scale:    s,
		datasets: map[core.RemovalMode]*core.Dataset{},
		scored:   map[core.RemovalMode]bool{},
	}
}

// SynthConfig returns the simulator configuration of this workspace.
func (w *Workspace) SynthConfig() synth.Config {
	return synth.DefaultConfig(w.Scale.Seed, w.Scale.InitialVoters)
}

// Snapshots generates (once) and returns the register snapshots.
func (w *Workspace) Snapshots() []voter.Snapshot {
	if w.snapshots == nil {
		cfg := w.SynthConfig()
		cfg.Snapshots = synth.Calendar(2008, w.Scale.Years)
		w.snapshots = synth.Generate(cfg)
	}
	return w.snapshots
}

// Dataset imports (once) all snapshots under the given removal mode.
func (w *Workspace) Dataset(mode core.RemovalMode) *core.Dataset {
	if d, ok := w.datasets[mode]; ok {
		return d
	}
	d := core.NewDataset(mode)
	for _, s := range w.Snapshots() {
		d.ImportSnapshot(s)
	}
	d.Publish()
	w.datasets[mode] = d
	return d
}

// ScoredDataset returns the trimmed-mode dataset with plausibility and
// heterogeneity version-similarity maps computed (once, over all cores).
func (w *Workspace) ScoredDataset() *core.Dataset {
	d := w.Dataset(core.RemoveTrimmed)
	if !w.scored[core.RemoveTrimmed] {
		plaus.UpdateParallel(d, 0)
		hetero.UpdateParallel(d, 0)
		w.scored[core.RemoveTrimmed] = true
	}
	return d
}
