package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/dedup"
)

// MatchingPoint is one measurement of the matching-throughput experiment:
// one similarity measure scored through the parallel engine at one worker
// count, against the legacy sequential matcher as baseline.
type MatchingPoint struct {
	Measure        string  `json:"measure"`
	Workers        int     `json:"workers"`
	Pairs          int     `json:"pairs"`
	Seconds        float64 `json:"seconds"`
	PairsPerSecond float64 `json:"pairsPerSecond"`
	// Speedup is against the legacy sequential matcher on the same measure —
	// at workers=1 it isolates the preprocessing + memo-cache win.
	Speedup     float64 `json:"speedup"`
	MemoHitRate float64 `json:"memoHitRate"`
	// Identical records the bit-identity check: the engine's curve must
	// deep-equal the sequential reference at every worker count.
	Identical bool `json:"identical"`
}

// MatchingResult is the full experiment: the evaluated dataset, the legacy
// per-measure baselines and the engine ladder.
type MatchingResult struct {
	Dataset       string             `json:"dataset"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Candidates    int                `json:"candidates"`
	LegacySeconds map[string]float64 `json:"legacySeconds"`
	Points        []MatchingPoint    `json:"points"`
}

// scoreCounters is a minimal dedup.ScoreObserver for the memo hit rate.
type scoreCounters struct {
	mu sync.Mutex
	n  map[string]int64
}

func (o *scoreCounters) AddN(counter string, n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.n == nil {
		o.n = map[string]int64{}
	}
	o.n[counter] += n
}

// DefaultMatchingWorkers is the worker ladder of the experiment (GOMAXPROCS
// appended when absent).
func DefaultMatchingWorkers() []int { return DefaultIngestWorkers() }

// RunMatchingThroughput benchmarks the §6.5 pair-scoring path on the NC1
// customization: the legacy per-pair Matcher sets the sequential baseline
// per measure, then the parallel engine runs the worker ladder. Every engine
// curve is checked for exact equality with the baseline — a throughput
// number from a diverging scorer would be meaningless. jsonPath, when
// non-empty, receives the result as machine-readable JSON so the perf
// trajectory is tracked across commits.
func RunMatchingThroughput(w *Workspace, top int, workerCounts []int, jsonPath string, out io.Writer) (MatchingResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultMatchingWorkers()
	}
	ds := NCDatasets(w, top)[0]
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	cands := dedup.SortedNeighborhood(ds, passes, snmWindow)
	res := MatchingResult{
		Dataset:       ds.Name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Candidates:    len(cands),
		LegacySeconds: map[string]float64{},
	}
	fmt.Fprintf(out, "Matching throughput: %s, %d records, %d candidate pairs (GOMAXPROCS %d)\n",
		ds.Name, ds.NumRecords(), len(cands), res.GOMAXPROCS)
	fmt.Fprintf(out, "%-14s %8s %9s %12s %8s %9s %10s\n",
		"measure", "workers", "seconds", "pairs/s", "speedup", "memo hit", "identical")

	for _, m := range dedup.AllMeasures {
		start := time.Now()
		ref := dedup.EvaluateCandidates(ds, m, cands, sweepSteps)
		legacy := time.Since(start).Seconds()
		res.LegacySeconds[string(m)] = legacy
		fmt.Fprintf(out, "%-14s %8s %9.3f %12.0f %8s %9s %10s\n",
			m, "legacy", legacy, float64(len(cands))/legacy, "1.00x", "-", "-")

		for _, workers := range workerCounts {
			obs := &scoreCounters{}
			start = time.Now()
			curve := dedup.EvaluateCandidatesParallel(ds, m, cands, sweepSteps,
				dedup.ScoreOpts{Workers: workers, Observer: obs})
			secs := time.Since(start).Seconds()
			p := MatchingPoint{
				Measure:   string(m),
				Workers:   workers,
				Pairs:     len(cands),
				Seconds:   secs,
				Identical: reflect.DeepEqual(curve, ref),
			}
			if secs > 0 {
				p.PairsPerSecond = float64(len(cands)) / secs
				p.Speedup = legacy / secs
			}
			if total := obs.n["score_memo_hits"] + obs.n["score_memo_misses"]; total > 0 {
				p.MemoHitRate = float64(obs.n["score_memo_hits"]) / float64(total)
			}
			res.Points = append(res.Points, p)
			fmt.Fprintf(out, "%-14s %8d %9.3f %12.0f %7.2fx %8.1f%% %10v\n",
				m, p.Workers, p.Seconds, p.PairsPerSecond, p.Speedup, p.MemoHitRate*100, p.Identical)
			if !p.Identical {
				return res, fmt.Errorf("matching: %s at workers=%d diverged from the sequential curve", m, workers)
			}
		}
	}

	if jsonPath != "" {
		body, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return res, err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return res, nil
}
