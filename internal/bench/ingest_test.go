package bench

import (
	"io"
	"testing"
)

func TestRunIngestThroughput(t *testing.T) {
	points, err := RunIngestThroughput(Tiny, []int{1, 2}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Rows == 0 || p.RowsPerSecond <= 0 {
			t.Errorf("workers %d: degenerate measurement %+v", p.Workers, p)
		}
		if !p.Identical {
			t.Errorf("workers %d: dataset not identical to sequential baseline", p.Workers)
		}
	}
	if points[0].Workers != 1 || points[0].Speedup != 1 {
		t.Errorf("baseline point malformed: %+v", points[0])
	}
}
