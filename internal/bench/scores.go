package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/datasets"
	"repro/internal/dedup"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/voter"
)

// Figure3Result mirrors the paper's Figure 3 discussion: the plausibility
// and heterogeneity of an erroneous-but-sound cluster versus an unsound
// cluster.
type Figure3Result struct {
	SoundPlausibility   float64 // paper: 0.81 for DB175272
	UnsoundPlausibility float64 // paper: 0.33 for DR19657
	SoundHetero         float64 // paper: 0.38
	UnsoundHetero       float64 // paper: 0.35
}

// RunFigure3Examples builds the two example clusters of Figure 3 and scores
// them.
func RunFigure3Examples(out io.Writer) Figure3Result {
	mk := func(ncid, first, middle, last, sex, age, date string) voter.Record {
		r := voter.NewRecord()
		r.SetName("ncid", ncid)
		r.SetName("first_name", first)
		r.SetName("midl_name", middle)
		r.SetName("last_name", last)
		r.SetName("sex_code", sex)
		r.SetName("age", age)
		r.SetName("snapshot_dt", date)
		r.SetName("birth_place", "NC")
		return r
	}
	// The ages stem from different snapshots (the paper's Figure 3 lists
	// ages 45/47/49 across registrations), so the derived year of birth is
	// consistent.
	d := core.NewDataset(core.RemoveTrimmed)
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: []voter.Record{
		mk("DB175272", "DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-01-01"),
		mk("DR19657", "MARY", "ELIZABETH", "FIELDS", "F", "57", "2008-01-01"),
	}})
	d.ImportSnapshot(voter.Snapshot{Date: "2010-01-01", Records: []voter.Record{
		mk("DB175272", "DEBRA", "OEHRLE", "WILLIAMS", "F", "47", "2010-01-01"),
	}})
	d.ImportSnapshot(voter.Snapshot{Date: "2012-01-01", Records: []voter.Record{
		// Word confusion: the last name slipped into the middle slot.
		mk("DB175272", "DEBRA", "ANN", "OEHRLE", "F", "49", "2012-01-01"),
		// Unsound cluster: an obviously different person under the same id.
		mk("DR19657", "JOSHUA", "ELIZABETH", "BETHEA", "M", "93", "2012-01-01"),
	}})
	plaus.Update(d)
	hetero.Update(d)
	d.Publish()

	var res Figure3Result
	res.SoundPlausibility, _ = d.Cluster("DB175272").ClusterScore(core.KindPlausibility, core.AggMin)
	res.UnsoundPlausibility, _ = d.Cluster("DR19657").ClusterScore(core.KindPlausibility, core.AggMin)
	sh, _ := d.Cluster("DB175272").ClusterScore(core.KindHeteroPerson, core.AggMean)
	uh, _ := d.Cluster("DR19657").ClusterScore(core.KindHeteroPerson, core.AggMean)
	res.SoundHetero = core.HeteroFromSim(sh)
	res.UnsoundHetero = core.HeteroFromSim(uh)

	fmt.Fprintln(out, "Figure 3 examples: erroneous vs. unsound cluster")
	fmt.Fprintf(out, "  DB175272 (errors, same voter): plausibility %.2f  heterogeneity %.2f  (paper: 0.81 / 0.38)\n",
		res.SoundPlausibility, res.SoundHetero)
	fmt.Fprintf(out, "  DR19657  (two voters):         plausibility %.2f  heterogeneity %.2f  (paper: 0.33 / 0.35)\n",
		res.UnsoundPlausibility, res.UnsoundHetero)
	return res
}

// Figure4aResult is the plausibility distribution of the big dataset.
type Figure4aResult struct {
	ClusterHist   Histogram
	PairHist      Histogram
	AvgCluster    float64
	MinCluster    float64
	FracAtOne     float64 // fraction of clusters at exactly 1.0 (paper: 92.8 %)
	FracBelow0_9  float64 // paper: 5.5 %
	FracBelow0_8  float64 // paper: 0.43 %
	FracBelow0_5  float64 // paper: 0.0045 %
	TotalClusters int
}

// RunFigure4a computes the plausibility distribution.
func RunFigure4a(w *Workspace, out io.Writer) Figure4aResult {
	d := w.ScoredDataset()
	clusters := plaus.ClusterPlausibility(d)
	var pairs []float64
	d.PairScores(core.KindPlausibility, func(_ *core.Cluster, _, _ int, s float64) bool {
		pairs = append(pairs, s)
		return true
	})
	res := Figure4aResult{
		ClusterHist:   NewHistogram(clusters, 20),
		PairHist:      NewHistogram(pairs, 20),
		AvgCluster:    Mean(clusters),
		MinCluster:    Min(clusters),
		FracBelow0_9:  FractionBelow(clusters, 0.9),
		FracBelow0_8:  FractionBelow(clusters, 0.8),
		FracBelow0_5:  FractionBelow(clusters, 0.5),
		TotalClusters: len(clusters),
	}
	one := 0
	for _, c := range clusters {
		if c >= 0.9999 {
			one++
		}
	}
	if len(clusters) > 0 {
		res.FracAtOne = float64(one) / float64(len(clusters))
	}
	fmt.Fprintln(out, "Figure 4a: plausibility distribution (trimmed dataset)")
	fmt.Fprintf(out, "  clusters scored: %d   avg %.3f   min %.3f\n", res.TotalClusters, res.AvgCluster, res.MinCluster)
	fmt.Fprintf(out, "  at 1.0: %.1f%%   <0.9: %.2f%%   <0.8: %.3f%%   <0.5: %.4f%%   (paper: 92.8%% / 5.5%% / 0.43%% / 0.0045%%)\n",
		100*res.FracAtOne, 100*res.FracBelow0_9, 100*res.FracBelow0_8, 100*res.FracBelow0_5)
	res.ClusterHist.Fprint(out, "  cluster plausibility")
	return res
}

// Figure4bResult is the NC heterogeneity distribution.
type Figure4bResult struct {
	ClusterHist Histogram
	PairHist    Histogram
	AvgCluster  float64 // paper: 0.09
	AvgPair     float64 // paper: 0.16
	MaxCluster  float64 // paper: 0.64
	MaxPair     float64 // paper: 0.90
}

// RunFigure4b computes the heterogeneity distributions of the big dataset
// (person attributes, matching the paper's published figures).
func RunFigure4b(w *Workspace, out io.Writer) Figure4bResult {
	d := w.ScoredDataset()
	clusters := hetero.ClusterHeterogeneity(d, core.KindHeteroPerson)
	pairs := hetero.PairHeterogeneities(d, core.KindHeteroPerson)
	res := Figure4bResult{
		ClusterHist: NewHistogram(clusters, 20),
		PairHist:    NewHistogram(pairs, 20),
		AvgCluster:  Mean(clusters),
		AvgPair:     Mean(pairs),
		MaxCluster:  Max(clusters),
		MaxPair:     Max(pairs),
	}
	fmt.Fprintln(out, "Figure 4b: NC heterogeneity distribution")
	fmt.Fprintf(out, "  clusters: avg %.3f max %.3f (paper 0.09 / 0.64)   pairs: avg %.3f max %.3f (paper 0.16 / 0.90)\n",
		res.AvgCluster, res.MaxCluster, res.AvgPair, res.MaxPair)
	res.ClusterHist.Fprint(out, "  cluster heterogeneity")
	res.PairHist.Fprint(out, "  pair heterogeneity")
	return res
}

// Figure4cResult is the comparators' pair-heterogeneity distributions.
type Figure4cResult struct {
	Hists map[string]Histogram
	Avg   map[string]float64 // paper: Cora 0.171, Census ~0.15, CDDB 0.218
	Max   map[string]float64 // paper: Cora 0.63, Census 0.46, CDDB 0.65
}

// RunFigure4c computes the pair heterogeneity of the three comparator
// datasets under the same scoring configuration.
func RunFigure4c(seed int64, out io.Writer) Figure4cResult {
	res := Figure4cResult{
		Hists: map[string]Histogram{},
		Avg:   map[string]float64{},
		Max:   map[string]float64{},
	}
	fmt.Fprintln(out, "Figure 4c: pair heterogeneity of the comparator datasets")
	for _, ds := range []*dedup.Dataset{
		datasets.Cora(seed), datasets.Census(seed), datasets.CDDB(seed),
	} {
		hs := custom.PairHeterogeneities(ds.Trimmed())
		res.Hists[ds.Name] = NewHistogram(hs, 20)
		res.Avg[ds.Name] = Mean(hs)
		res.Max[ds.Name] = Max(hs)
		fmt.Fprintf(out, "  %-7s avg %.3f max %.3f\n", ds.Name, res.Avg[ds.Name], res.Max[ds.Name])
	}
	fmt.Fprintln(out, "  (paper: Cora 0.171/0.63, Census ~0.15/0.46, CDDB 0.218/0.65)")
	return res
}
