package bench

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// IngestPoint is one measurement of the ingest-throughput experiment: a full
// trimming-mode import of the workspace corpus at one worker count.
type IngestPoint struct {
	Workers       int
	Rows          int
	Seconds       float64
	RowsPerSecond float64
	Speedup       float64 // vs. the workers=1 (sequential) point
	PerFileP50MS  float64 // per-snapshot-file import latency quantiles
	PerFileP90MS  float64
	Identical     bool // dataset deep-equal to the sequential baseline
}

// DefaultIngestWorkers is the worker ladder of the experiment. GOMAXPROCS
// is appended when it is not already present.
func DefaultIngestWorkers() []int {
	ws := []int{1, 2, 4}
	maxprocs := runtime.GOMAXPROCS(0)
	for _, w := range ws {
		if w == maxprocs {
			return ws
		}
	}
	return append(ws, maxprocs)
}

// RunIngestThroughput writes the scale's register to disk once and imports
// it at each worker count through core.ImportSnapshotFileParallel, reporting
// rows/sec, speedup over the sequential import, per-file latency quantiles
// (via the shared Histogram) and whether the resulting dataset is identical
// to the sequential baseline — the paper's 507 M-row framing says ingest,
// not matching, is the first bottleneck at register scale.
func RunIngestThroughput(scale Scale, workerCounts []int, out io.Writer) ([]IngestPoint, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultIngestWorkers()
	}
	dir, err := os.MkdirTemp("", "ncingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := synth.DefaultConfig(scale.Seed, scale.InitialVoters)
	cfg.Snapshots = synth.Calendar(2008, scale.Years)
	paths, err := synth.WriteAllParallel(cfg, dir, 0)
	if err != nil {
		return nil, err
	}

	importAll := func(workers int) (*core.Dataset, []float64, float64, error) {
		ds := core.NewDataset(core.RemoveTrimmed)
		perFileMS := make([]float64, 0, len(paths))
		start := time.Now()
		for _, p := range paths {
			fs := time.Now()
			if _, err := ds.ImportSnapshotFileParallel(p, workers); err != nil {
				return nil, nil, 0, fmt.Errorf("%s: %w", p, err)
			}
			perFileMS = append(perFileMS, float64(time.Since(fs))/float64(time.Millisecond))
		}
		total := time.Since(start).Seconds()
		ds.Publish()
		return ds, perFileMS, total, nil
	}

	baseline, _, _, err := importAll(1)
	if err != nil {
		return nil, err
	}
	rows := baseline.TotalRows()

	fmt.Fprintf(out, "Ingest throughput: trimming-mode parallel import (%d files, %d rows, GOMAXPROCS %d)\n",
		len(paths), rows, runtime.GOMAXPROCS(0))
	fmt.Fprintf(out, "%8s %10s %9s %12s %8s %10s %10s %10s\n",
		"workers", "rows", "seconds", "rows/s", "speedup", "p50 ms/f", "p90 ms/f", "identical")

	var points []IngestPoint
	var baseSeconds float64
	for _, workers := range workerCounts {
		ds, perFileMS, seconds, err := importAll(workers)
		if err != nil {
			return nil, err
		}
		hist := NewHistogramOver(0, Max(perFileMS)+1, 200)
		for _, ms := range perFileMS {
			hist.Add(ms)
		}
		p := IngestPoint{
			Workers:      workers,
			Rows:         rows,
			Seconds:      seconds,
			PerFileP50MS: hist.Quantile(0.50),
			PerFileP90MS: hist.Quantile(0.90),
			Identical:    reflect.DeepEqual(ds, baseline),
		}
		if seconds > 0 {
			p.RowsPerSecond = float64(rows) / seconds
		}
		if workers == 1 {
			baseSeconds = seconds
		}
		if baseSeconds > 0 {
			p.Speedup = baseSeconds / seconds
		}
		points = append(points, p)
		fmt.Fprintf(out, "%8d %10d %9.2f %12.0f %7.2fx %10.2f %10.2f %10v\n",
			p.Workers, p.Rows, p.Seconds, p.RowsPerSecond, p.Speedup, p.PerFileP50MS, p.PerFileP90MS, p.Identical)
	}
	return points, nil
}
