package bench

import (
	"io"
	"testing"
)

func TestScaleSweepThroughputRoughlyLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep is slow")
	}
	points := RunScaleSweep(1, []int{300, 1200}, 5, io.Discard)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, big := points[0], points[1]
	if big.Rows <= small.Rows*3 {
		t.Errorf("row counts did not scale: %d vs %d", small.Rows, big.Rows)
	}
	// Throughput must not collapse with size (hash-based import is linear;
	// allow generous constant-factor noise).
	if big.RowsPerSecond < small.RowsPerSecond/4 {
		t.Errorf("import throughput collapsed: %.0f -> %.0f rows/s",
			small.RowsPerSecond, big.RowsPerSecond)
	}
	for _, p := range points {
		if p.Records <= 0 || p.Records > p.Rows {
			t.Errorf("implausible record count: %+v", p)
		}
	}
}
