package bench

import (
	"fmt"
	"io"
	"strings"
)

// Histogram buckets values from [0, 1] into n equal-width bins (the last
// bin is closed on the right).
type Histogram struct {
	Bins   []int
	Total  int
	Width  float64
	Labels []string
}

// NewHistogram buckets the values into n bins over [0, 1].
func NewHistogram(values []float64, n int) Histogram {
	h := Histogram{Bins: make([]int, n), Width: 1 / float64(n)}
	for _, v := range values {
		i := int(v / h.Width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		h.Bins[i]++
		h.Total++
	}
	for i := 0; i < n; i++ {
		h.Labels = append(h.Labels, fmt.Sprintf("[%.2f,%.2f)", float64(i)*h.Width, float64(i+1)*h.Width))
	}
	return h
}

// Fprint renders the histogram with proportional bars.
func (h Histogram) Fprint(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (n=%d)\n", title, h.Total)
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	for i, b := range h.Bins {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", b*40/max)
		}
		pct := 0.0
		if h.Total > 0 {
			pct = 100 * float64(b) / float64(h.Total)
		}
		fmt.Fprintf(w, "  %s %8d %5.1f%% %s\n", h.Labels[i], b, pct, bar)
	}
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Max returns the maximum of values (0 for empty input).
func Max(values []float64) float64 {
	m := 0.0
	for _, v := range values {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of values (0 for empty input).
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// FractionBelow returns the fraction of values strictly below x.
func FractionBelow(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// FractionAtLeast returns the fraction of values >= x.
func FractionAtLeast(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	return 1 - FractionBelow(values, x)
}
