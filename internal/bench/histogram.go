package bench

import (
	"fmt"
	"io"
	"strings"
)

// Histogram buckets values from [Lo, Lo+n*Width) into n equal-width bins;
// values outside the range are clamped into the first/last bin. The score
// histograms of the paper use [0, 1]; the serving stack reuses the same type
// for latency distributions over a millisecond range.
type Histogram struct {
	Bins   []int
	Total  int
	Lo     float64
	Width  float64
	Labels []string
}

// NewHistogram buckets the values into n bins over [0, 1].
func NewHistogram(values []float64, n int) Histogram {
	h := NewHistogramOver(0, 1, n)
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// NewHistogramOver returns an empty histogram of n equal-width bins over
// [lo, hi); fill it with Add.
func NewHistogramOver(lo, hi float64, n int) Histogram {
	h := Histogram{Bins: make([]int, n), Lo: lo, Width: (hi - lo) / float64(n)}
	for i := 0; i < n; i++ {
		h.Labels = append(h.Labels, fmt.Sprintf("[%.2f,%.2f)", lo+float64(i)*h.Width, lo+float64(i+1)*h.Width))
	}
	return h
}

// Add buckets one value, clamping out-of-range values into the edge bins.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / h.Width)
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	if i < 0 {
		i = 0
	}
	h.Bins[i]++
	h.Total++
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bin holding the q*Total-th value. Resolution is bounded by the
// bin width; values clamped into the last bin cap the estimate at the range
// end.
func (h Histogram) Quantile(q float64) float64 {
	if h.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Total)
	cum := 0.0
	for i, b := range h.Bins {
		next := cum + float64(b)
		if b > 0 && next >= rank {
			frac := (rank - cum) / float64(b)
			return h.Lo + (float64(i)+frac)*h.Width
		}
		cum = next
	}
	return h.Lo + float64(len(h.Bins))*h.Width
}

// Fprint renders the histogram with proportional bars.
func (h Histogram) Fprint(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (n=%d)\n", title, h.Total)
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	for i, b := range h.Bins {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", b*40/max)
		}
		pct := 0.0
		if h.Total > 0 {
			pct = 100 * float64(b) / float64(h.Total)
		}
		fmt.Fprintf(w, "  %s %8d %5.1f%% %s\n", h.Labels[i], b, pct, bar)
	}
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Max returns the maximum of values (0 for empty input).
func Max(values []float64) float64 {
	m := 0.0
	for _, v := range values {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of values (0 for empty input).
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// FractionBelow returns the fraction of values strictly below x.
func FractionBelow(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// FractionAtLeast returns the fraction of values >= x.
func FractionAtLeast(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	return 1 - FractionBelow(values, x)
}
