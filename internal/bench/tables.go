package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// Table1Result is the reproduction of the paper's Table 1: per-year
// snapshot statistics of the register import.
type Table1Result struct {
	Years []core.YearStats
}

// RunTable1 imports all snapshots under the trimming mode and aggregates
// the per-snapshot statistics by year.
func RunTable1(w *Workspace, out io.Writer) Table1Result {
	d := w.Dataset(core.RemoveTrimmed)
	res := Table1Result{Years: d.YearlyStats()}
	fmt.Fprintln(out, "Table 1: per-year snapshot statistics (trimming-mode hashing)")
	fmt.Fprintf(out, "%6s %10s %13s %12s %12s %9s %9s\n",
		"year", "#snapshots", "total records", "new records", "new objects", "rec rate", "obj rate")
	var total core.YearStats
	for _, y := range res.Years {
		fmt.Fprintf(out, "%6d %10d %13d %12d %12d %8.1f%% %8.1f%%\n",
			y.Year, y.Snapshots, y.TotalRecords, y.NewRecords, y.NewObjects,
			100*y.NewRecordRate, 100*y.NewObjectRate)
		total.Snapshots += y.Snapshots
		total.TotalRecords += y.TotalRecords
		total.NewRecords += y.NewRecords
		total.NewObjects += y.NewObjects
	}
	recRate, objRate := 0.0, 0.0
	if total.TotalRecords > 0 {
		recRate = float64(total.NewRecords) / float64(total.TotalRecords)
	}
	if total.NewRecords > 0 {
		objRate = float64(total.NewObjects) / float64(total.NewRecords)
	}
	fmt.Fprintf(out, "%6s %10d %13d %12d %12d %8.1f%% %8.1f%%\n",
		"total", total.Snapshots, total.TotalRecords, total.NewRecords, total.NewObjects,
		100*recRate, 100*objRate)
	return res
}

// Table2Result is the reproduction of Table 2: the generation-process
// statistics of the four removal modes.
type Table2Result struct {
	Rows []core.GenerationStats
}

// Modes lists the four removal modes in table order.
var Modes = []core.RemovalMode{
	core.RemoveNone, core.RemoveExact, core.RemoveTrimmed, core.RemovePersonData,
}

// RunTable2 imports all snapshots under every removal mode and prints the
// Table 2 rows.
func RunTable2(w *Workspace, out io.Writer) Table2Result {
	nonePairs := w.Dataset(core.RemoveNone).NumPairs()
	var res Table2Result
	fmt.Fprintln(out, "Table 2: generation-process statistics per duplicate-removal mode")
	fmt.Fprintf(out, "%-12s %10s %12s %9s %8s %10s %9s %12s %9s\n",
		"removal", "#records", "#dup pairs", "avg size", "max size",
		"#removed", "rem rec%", "#rem pairs", "rem pair%")
	for _, mode := range Modes {
		d := w.Dataset(mode)
		gs := d.Stats(nonePairs)
		res.Rows = append(res.Rows, gs)
		fmt.Fprintf(out, "%-12s %10d %12d %9.2f %8d %10d %8.1f%% %12d %8.1f%%\n",
			gs.Mode, gs.Records, gs.DuplicatePairs, gs.AvgClusterSize, gs.MaxClusterSize,
			gs.RemovedRecords, 100*gs.RemovedRecPct, gs.RemovedPairs, 100*gs.RemovedPairPct)
	}
	fmt.Fprintf(out, "clusters (objects): %d\n", w.Dataset(core.RemoveNone).NumClusters())
	return res
}

// Figure1Result is the reproduction of Figure 1: cluster-size
// distributions.
type Figure1Result struct {
	SingleSnapshot map[int]int // Fig. 1a: clusters per size within one snapshot
	WholeAll       map[int]int // Fig. 1b: whole dataset, all attributes (trimming)
	WholePerson    map[int]int // Fig. 1b: whole dataset, person attributes
}

// RunFigure1 derives the three cluster-size histograms.
func RunFigure1(w *Workspace, out io.Writer) Figure1Result {
	snaps := w.Snapshots()
	last := snaps[len(snaps)-1]
	single := core.NewDataset(core.RemoveTrimmed)
	single.ImportSnapshot(last)

	res := Figure1Result{
		SingleSnapshot: single.ClusterSizeHistogram(),
		WholeAll:       w.Dataset(core.RemoveTrimmed).ClusterSizeHistogram(),
		WholePerson:    w.Dataset(core.RemovePersonData).ClusterSizeHistogram(),
	}
	fmt.Fprintln(out, "Figure 1: number of clusters per cluster size")
	printSizeHistogram(out, "  (a) single snapshot "+last.Date, res.SingleSnapshot)
	printSizeHistogram(out, "  (b) whole dataset, all attributes", res.WholeAll)
	printSizeHistogram(out, "  (b) whole dataset, person attributes", res.WholePerson)
	return res
}

func printSizeHistogram(out io.Writer, title string, h map[int]int) {
	fmt.Fprintln(out, title)
	sizes := make([]int, 0, len(h))
	for s := range h {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(out, "    size %3d: %d clusters\n", s, h[s])
	}
}
