package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dapo"
	"repro/internal/dedup"
	"repro/internal/hetero"
)

// AblationBlockingResult compares the paper's multi-pass Sorted
// Neighborhood against standard blocking and canopy blocking on the same
// dataset.
type AblationBlockingResult struct {
	SNMCandidates    int
	SNMRecall        float64
	StdCandidates    int
	StdRecall        float64
	CanopyCandidates int
	CanopyRecall     float64
}

// RunAblationBlocking contrasts the three blocking schemes on the NC1
// customization: SNM with the paper's parameters, standard blocking on
// last-name Soundex / zip code / first-name prefix, and canopy blocking
// over the name attributes.
func RunAblationBlocking(w *Workspace, top int, out io.Writer) AblationBlockingResult {
	ds := NCDatasets(w, top)[0]
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	snm := dedup.SortedNeighborhood(ds, passes, snmWindow)

	lastIdx, firstIdx, zipIdx := attrIndex(ds, "last_name"), attrIndex(ds, "first_name"), attrIndex(ds, "zip_code")
	keys := []dedup.KeyFunc{}
	if lastIdx >= 0 {
		keys = append(keys, dedup.SoundexKey(lastIdx))
	}
	if zipIdx >= 0 {
		keys = append(keys, dedup.ExactKey(zipIdx))
	}
	if firstIdx >= 0 {
		keys = append(keys, dedup.PrefixKey(firstIdx, 4))
	}
	std := dedup.StandardBlocking(ds, keys, 0)
	canopy := dedup.CanopyBlocking(ds, dedup.CanopyConfig{
		Attrs: ds.NameAttrs, Loose: 0.25, Tight: 0.75, Seed: w.Scale.Seed,
	})

	res := AblationBlockingResult{
		SNMCandidates:    len(snm),
		SNMRecall:        dedup.BlockingRecall(ds, snm),
		StdCandidates:    len(std),
		StdRecall:        dedup.BlockingRecall(ds, std),
		CanopyCandidates: len(canopy),
		CanopyRecall:     dedup.BlockingRecall(ds, canopy),
	}
	fmt.Fprintf(out, "Ablation blocking on %s (%d records, %d true pairs)\n",
		ds.Name, ds.NumRecords(), ds.NumTruePairs())
	fmt.Fprintf(out, "  SNM (%d passes, w=%d): %d candidates, recall %.3f\n",
		snmPasses, snmWindow, res.SNMCandidates, res.SNMRecall)
	fmt.Fprintf(out, "  standard (soundex/zip/prefix): %d candidates, recall %.3f\n",
		res.StdCandidates, res.StdRecall)
	fmt.Fprintf(out, "  canopy (names, loose 0.25 / tight 0.75): %d candidates, recall %.3f\n",
		res.CanopyCandidates, res.CanopyRecall)
	return res
}

// AblationThresholdResult is the threshold-transfer experiment: thresholds
// trained on half the clusters, validated on the other half, per NC
// setting. The paper's "the threshold had to be set much more carefully"
// becomes measurable as the train→validate gap.
type AblationThresholdResult struct {
	Dataset  []string
	Selected []dedup.ThresholdSelection
}

// RunAblationThreshold runs the selection protocol on NC1-NC3 with the
// ME/Lev measure.
func RunAblationThreshold(w *Workspace, top int, out io.Writer) AblationThresholdResult {
	var res AblationThresholdResult
	fmt.Fprintln(out, "Ablation threshold transfer (train on half the clusters, validate on the rest)")
	for _, ds := range NCDatasets(w, top) {
		sel := dedup.SelectThreshold(ds, dedup.MeasureMELev, snmPasses, snmWindow, sweepSteps, 0.5, w.Scale.Seed)
		res.Dataset = append(res.Dataset, ds.Name)
		res.Selected = append(res.Selected, sel)
		fmt.Fprintf(out, "  %-4s threshold %.2f: train F1 %.3f -> validate F1 %.3f\n",
			ds.Name, sel.Threshold, sel.TrainF1, sel.ValidateF1)
	}
	return res
}

// AblationFSResult compares the Fellegi-Sunter probabilistic matcher
// (trained on half the gold clusters) against the paper's
// similarity-threshold matcher under the same split.
type AblationFSResult struct {
	Dataset     []string
	ThresholdF1 []float64 // ME/Lev threshold matcher, validated
	FSF1        []float64 // Fellegi-Sunter, validated
}

// RunAblationFS runs the comparison on NC1-NC3: both approaches train on
// half the clusters and report validation F1.
func RunAblationFS(w *Workspace, top int, out io.Writer) AblationFSResult {
	var res AblationFSResult
	fmt.Fprintln(out, "Ablation Fellegi-Sunter vs similarity threshold (validated on held-out clusters)")
	for _, ds := range NCDatasets(w, top) {
		sel := dedup.SelectThreshold(ds, dedup.MeasureMELev, snmPasses, snmWindow, sweepSteps, 0.5, w.Scale.Seed)
		fsF1, _ := dedup.EvaluateFellegiSunter(ds, snmPasses, snmWindow, 0.9, 0.5, w.Scale.Seed)
		res.Dataset = append(res.Dataset, ds.Name)
		res.ThresholdF1 = append(res.ThresholdF1, sel.ValidateF1)
		res.FSF1 = append(res.FSF1, fsF1)
		fmt.Fprintf(out, "  %-4s threshold matcher F1 %.3f | Fellegi-Sunter F1 %.3f\n",
			ds.Name, sel.ValidateF1, fsF1)
	}
	return res
}

func attrIndex(ds *dedup.Dataset, name string) int {
	for i, a := range ds.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// AblationPollutionResult quantifies the DaPo hybrid (the paper's future
// work §8): injecting additional errors into the historical dataset shifts
// its heterogeneity and detection difficulty at will, while the real
// outdated values remain.
type AblationPollutionResult struct {
	BaseHetero     float64
	PollutedHetero float64
	BaseF1         float64
	PollutedF1     float64
	ExtraDuplicate int
}

// RunAblationPollution pollutes the workspace's dataset and measures the
// shift.
func RunAblationPollution(w *Workspace, out io.Writer) AblationPollutionResult {
	base := w.ScoredDataset()
	res := AblationPollutionResult{
		BaseHetero: Mean(hetero.ClusterHeterogeneity(base, core.KindHeteroPerson)),
	}

	cfg := dapo.DefaultConfig(w.Scale.Seed)
	cfg.RecordFraction = 0.5
	cfg.Intensity = 2
	polluted, st := dapo.Pollute(base, cfg)
	res.ExtraDuplicate = st.ExtraDuplicates
	hetero.UpdateParallel(polluted, 0)
	res.PollutedHetero = Mean(hetero.ClusterHeterogeneity(polluted, core.KindHeteroPerson))

	// Evaluate on the 150 largest clusters of each variant to keep the
	// detection run small; the full-range customization drops nothing.
	full := custom.Config{Name: "base", HLow: 0, HHigh: 1, SelectTop: 150, Seed: w.Scale.Seed}
	baseDS := custom.Build(base, full)
	full.Name = "polluted"
	polDS := custom.Build(polluted, full)
	res.BaseF1, _ = dedup.Evaluate(baseDS, dedup.MeasureMELev, snmPasses, snmWindow, 50).BestF1()
	res.PollutedF1, _ = dedup.Evaluate(polDS, dedup.MeasureMELev, snmPasses, snmWindow, 50).BestF1()

	fmt.Fprintf(out, "Ablation DaPo hybrid: heterogeneity %.3f -> %.3f, best F1 %.3f -> %.3f, +%d synthetic duplicates\n",
		res.BaseHetero, res.PollutedHetero, res.BaseF1, res.PollutedF1, res.ExtraDuplicate)
	fmt.Fprintln(out, "  (real outdated values preserved; additional errors injected at will)")
	return res
}

// AblationMeasuresResult is the measure zoo: best F1 per available measure
// on the medium-dirtiness customization.
type AblationMeasuresResult struct {
	Measure []dedup.Measure
	BestF1  []float64
}

// RunAblationMeasures extends Figure 5 beyond the paper's three measures:
// all seven record measures compete on NC2, where the measure choice
// matters (§6.5's observation for dirtier data).
func RunAblationMeasures(w *Workspace, top int, out io.Writer) AblationMeasuresResult {
	ds := NCDatasets(w, top)[1]
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	cands := dedup.SortedNeighborhood(ds, passes, snmWindow)
	var res AblationMeasuresResult
	fmt.Fprintf(out, "Ablation measure zoo on %s (%d records, %d true pairs)\n",
		ds.Name, ds.NumRecords(), ds.NumTruePairs())
	for _, m := range dedup.AllMeasures {
		curve := dedup.EvaluateCandidates(ds, m, cands, sweepSteps)
		f1, th := curve.BestF1()
		res.Measure = append(res.Measure, m)
		res.BestF1 = append(res.BestF1, f1)
		fmt.Fprintf(out, "  %-16s best F1 %.3f @ threshold %.2f\n", m, f1, th)
	}
	return res
}
