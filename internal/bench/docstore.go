package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
)

// DocstorePoint is one measurement of the docstore persistence experiment:
// a segmented save or load at one worker count, against the flat sequential
// format as baseline.
type DocstorePoint struct {
	Op      string  `json:"op"` // "save" or "load"
	Workers int     `json:"workers"`
	Docs    int     `json:"docs"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// Speedup is against the flat sequential save/load of the same corpus —
	// at workers=1 it isolates the segmented-format cost or win.
	Speedup float64 `json:"speedup"`
	// Identical records the equivalence check: every loaded store must
	// deep-equal the flat sequential reference, collection by collection.
	Identical bool `json:"identical"`
}

// DocstorePushdown measures the streaming query pipeline: the same size
// filter once as a full collection scan and once pushed down to the ordered
// index.
type DocstorePushdown struct {
	Filter           string  `json:"filter"`
	Matches          int     `json:"matches"`
	ScanSeconds      float64 `json:"scanSeconds"`
	ScanScanned      int64   `json:"scanScanned"`
	PushdownSeconds  float64 `json:"pushdownSeconds"`
	PushdownScanned  int64   `json:"pushdownScanned"`
	Speedup          float64 `json:"speedup"`
	ScannedReduction float64 `json:"scannedReduction"`
	Identical        bool    `json:"identical"`
}

// DocstoreResult is the full experiment: flat baselines, the segmented
// worker ladder and the pipeline pushdown comparison.
type DocstoreResult struct {
	Dataset         string            `json:"dataset"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	Docs            int               `json:"docs"`
	FlatBytes       int64             `json:"flatBytes"`
	FlatSaveSeconds float64           `json:"flatSaveSeconds"`
	FlatLoadSeconds float64           `json:"flatLoadSeconds"`
	Points          []DocstorePoint   `json:"points"`
	Pushdown        *DocstorePushdown `json:"pushdown,omitempty"`
}

// DefaultDocstoreWorkers is the worker ladder of the experiment (GOMAXPROCS
// appended when absent).
func DefaultDocstoreWorkers() []int { return DefaultIngestWorkers() }

// persistReps averages every save/load measurement over several repetitions;
// a single filesystem round trip at benchmark scale is only tens of
// milliseconds and would otherwise be noise-dominated.
const persistReps = 5

// dbDocs snapshots every collection of a store, keyed by collection name,
// for the equivalence check. Document order within a collection is part of
// the comparison: the loaders must preserve insertion order.
func dbDocs(db *docstore.DB) map[string][]docstore.Document {
	out := map[string][]docstore.Document{}
	for _, name := range db.CollectionNames() {
		out[name] = db.Collection(name).Find(nil)
	}
	return out
}

// dirBytes sums the sizes of the regular files directly under dir.
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// RunDocstoreBench benchmarks the segmented persistence layer and the
// streaming query pipeline on the scored trimmed-mode corpus. The flat
// sequential Save/Load sets the baseline, then the segmented writer and
// reader run the worker ladder; every loaded store is checked for exact
// equality with the flat reference — a throughput number from a diverging
// store would be meaningless. jsonPath, when non-empty, receives the result
// as machine-readable JSON so the perf trajectory is tracked across commits.
func RunDocstoreBench(w *Workspace, workerCounts []int, jsonPath string, out io.Writer) (DocstoreResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultDocstoreWorkers()
	}
	ds := w.ScoredDataset()
	db := ds.ToDocDB()
	var docs int
	for _, name := range db.CollectionNames() {
		docs += db.Collection(name).Len()
	}
	res := DocstoreResult{
		Dataset:    fmt.Sprintf("nc-trimmed-%dv-%dy", w.Scale.InitialVoters, w.Scale.Years),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Docs:       docs,
	}

	root, err := os.MkdirTemp("", "ncbench-docstore-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)

	// Flat sequential baseline, averaged like the ladder below.
	flatDir := filepath.Join(root, "flat")
	var flat *docstore.DB
	start := time.Now()
	for i := 0; i < persistReps; i++ {
		if err := db.Save(flatDir); err != nil {
			return res, err
		}
	}
	res.FlatSaveSeconds = time.Since(start).Seconds() / persistReps
	res.FlatBytes = dirBytes(flatDir)
	start = time.Now()
	for i := 0; i < persistReps; i++ {
		if flat, err = docstore.Load(flatDir); err != nil {
			return res, err
		}
	}
	res.FlatLoadSeconds = time.Since(start).Seconds() / persistReps
	ref := dbDocs(flat)

	fmt.Fprintf(out, "Docstore persistence: %s, %d documents, %d flat bytes (GOMAXPROCS %d)\n",
		res.Dataset, res.Docs, res.FlatBytes, res.GOMAXPROCS)
	fmt.Fprintf(out, "%-6s %8s %9s %12s %8s %10s\n",
		"op", "workers", "seconds", "docs/s", "speedup", "identical")
	fmt.Fprintf(out, "%-6s %8s %9.3f %12.0f %8s %10s\n",
		"save", "flat", res.FlatSaveSeconds, float64(docs)/res.FlatSaveSeconds, "1.00x", "-")
	fmt.Fprintf(out, "%-6s %8s %9.3f %12.0f %8s %10s\n",
		"load", "flat", res.FlatLoadSeconds, float64(docs)/res.FlatLoadSeconds, "1.00x", "-")

	for _, workers := range workerCounts {
		dir := filepath.Join(root, fmt.Sprintf("seg-%d", workers))
		var loaded *docstore.DB
		start := time.Now()
		for i := 0; i < persistReps; i++ {
			if err := db.SaveParallelOpts(dir, docstore.SaveOpts{Workers: workers}); err != nil {
				return res, err
			}
		}
		saveSecs := time.Since(start).Seconds() / persistReps
		start = time.Now()
		for i := 0; i < persistReps; i++ {
			if loaded, err = docstore.LoadParallelOpts(dir, docstore.LoadOpts{Workers: workers}); err != nil {
				return res, err
			}
		}
		loadSecs := time.Since(start).Seconds() / persistReps
		identical := reflect.DeepEqual(dbDocs(loaded), ref)

		for _, p := range []DocstorePoint{
			{Op: "save", Workers: workers, Docs: docs, Bytes: dirBytes(dir), Seconds: saveSecs, Identical: identical},
			{Op: "load", Workers: workers, Docs: docs, Bytes: dirBytes(dir), Seconds: loadSecs, Identical: identical},
		} {
			baseline := res.FlatSaveSeconds
			if p.Op == "load" {
				baseline = res.FlatLoadSeconds
			}
			if p.Seconds > 0 {
				p.Speedup = baseline / p.Seconds
			}
			res.Points = append(res.Points, p)
			fmt.Fprintf(out, "%-6s %8d %9.3f %12.0f %7.2fx %10v\n",
				p.Op, p.Workers, p.Seconds, float64(docs)/p.Seconds, p.Speedup, p.Identical)
		}
		if !identical {
			return res, fmt.Errorf("docstore: segmented store at workers=%d diverged from the flat reference", workers)
		}
	}

	pd, err := runDocstorePushdown(db, out)
	if err != nil {
		return res, err
	}
	res.Pushdown = &pd

	if jsonPath != "" {
		body, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return res, err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return res, nil
}

// benchCounters is a minimal docstore.StoreObserver for the pushdown
// comparison. The bench runs single-goroutine, so plain fields suffice.
type benchCounters struct{ n map[string]int64 }

func (o *benchCounters) AddN(counter string, n int64) {
	if o.n == nil {
		o.n = map[string]int64{}
	}
	o.n[counter] += n
}

// pushdownReps averages the pushdown comparison over several repetitions so
// a single scheduler hiccup cannot dominate the sub-millisecond timings.
const pushdownReps = 20

// runDocstorePushdown times the same size filter through the pipeline twice
// on the clusters collection: once as a full scan (no index) and once pushed
// down to the ordered size index. Results must match document for document.
// Both paths run once untimed first, so the lazy ordered-index rebuild is
// not charged to the measurement.
func runDocstorePushdown(db *docstore.DB, out io.Writer) (DocstorePushdown, error) {
	clusters := db.Collection(core.ClustersCollection)
	// Filter for the largest clusters — a few percent of the store at the
	// benchmark scales — so the pushdown has most of the collection to skip.
	var minSize float64 = 6
	filter := docstore.Gte("size", minSize)
	pd := DocstorePushdown{Filter: fmt.Sprintf("size >= %g", minSize)}

	scanned := clusters.Pipeline(docstore.Match{Filter: filter}) // warm
	scanObs := &benchCounters{}
	clusters.SetObserver(scanObs)
	start := time.Now()
	for i := 0; i < pushdownReps; i++ {
		scanned = clusters.Pipeline(docstore.Match{Filter: filter})
	}
	pd.ScanSeconds = time.Since(start).Seconds() / pushdownReps
	pd.ScanScanned = scanObs.n[docstore.CounterDocsScanned] / pushdownReps
	pd.Matches = len(scanned)

	clusters.CreateOrderedIndex("size")
	pushed := clusters.Pipeline(docstore.Match{Filter: filter}) // warm + rebuild
	pushObs := &benchCounters{}
	clusters.SetObserver(pushObs)
	start = time.Now()
	for i := 0; i < pushdownReps; i++ {
		pushed = clusters.Pipeline(docstore.Match{Filter: filter})
	}
	pd.PushdownSeconds = time.Since(start).Seconds() / pushdownReps
	pd.PushdownScanned = pushObs.n[docstore.CounterDocsScanned] / pushdownReps
	clusters.SetObserver(nil)

	pd.Identical = reflect.DeepEqual(scanned, pushed)
	if pd.PushdownSeconds > 0 {
		pd.Speedup = pd.ScanSeconds / pd.PushdownSeconds
	}
	if pd.ScanScanned > 0 {
		pd.ScannedReduction = 1 - float64(pd.PushdownScanned)/float64(pd.ScanScanned)
	}
	fmt.Fprintf(out, "Pipeline pushdown (%s, %d matches of %d docs): scan %.4fs (%d scanned) vs pushdown %.4fs (%d scanned), %.2fx, identical %v\n",
		pd.Filter, pd.Matches, clusters.Len(), pd.ScanSeconds, pd.ScanScanned,
		pd.PushdownSeconds, pd.PushdownScanned, pd.Speedup, pd.Identical)
	if !pd.Identical {
		return pd, fmt.Errorf("docstore: pushdown results diverged from the scan")
	}
	return pd, nil
}
