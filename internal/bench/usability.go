package bench

import (
	"fmt"
	"io"

	"repro/internal/custom"
	"repro/internal/datasets"
	"repro/internal/dedup"
)

// snmPasses and snmWindow are the paper's blocking parameters (§6.5): a
// multi-pass Sorted Neighborhood over the five most unique attributes with
// window 20.
const (
	snmPasses     = 5
	snmWindow     = 20
	sweepSteps    = 100
	defaultSample = 0 // 0 = all clusters; the paper samples 100k of 13.5M
)

// NCDatasets builds the NC1/NC2/NC3 customizations from the workspace's
// scored dataset. top bounds the cluster count of each (the paper uses
// 10 000).
func NCDatasets(w *Workspace, top int) []*dedup.Dataset {
	d := w.ScoredDataset()
	return []*dedup.Dataset{
		custom.Build(d, custom.NC1Config(w.Scale.Seed, defaultSample, top)),
		custom.Build(d, custom.NC2Config(w.Scale.Seed, defaultSample, top)),
		custom.Build(d, custom.NC3Config(w.Scale.Seed, defaultSample, top)),
	}
}

// Table3Result reproduces the characteristics table of all six evaluated
// datasets.
type Table3Result struct {
	Rows []custom.Characteristics
}

// RunTable3 describes Cora, Census, CDDB and the NC1-NC3 customizations.
func RunTable3(w *Workspace, top int, out io.Writer) Table3Result {
	var res Table3Result
	for _, ds := range []*dedup.Dataset{
		datasets.Cora(w.Scale.Seed), datasets.Census(w.Scale.Seed), datasets.CDDB(w.Scale.Seed),
	} {
		res.Rows = append(res.Rows, custom.Describe(ds.Trimmed()))
	}
	for _, ds := range NCDatasets(w, top) {
		res.Rows = append(res.Rows, custom.Describe(ds))
	}
	fmt.Fprintln(out, "Table 3: characteristics of the evaluated datasets")
	fmt.Fprintf(out, "%-8s %9s %7s %11s %10s %8s %9s %9s %9s %9s\n",
		"dataset", "#records", "#attrs", "#dup pairs", "#clusters", "#non-sg",
		"max size", "avg size", "max het", "avg het")
	for _, r := range res.Rows {
		fmt.Fprintf(out, "%-8s %9d %7d %11d %10d %8d %9d %9.2f %9.2f %9.3f\n",
			r.Name, r.Records, r.Attributes, r.DupPairs, r.Clusters, r.NonSingletons,
			r.MaxCluster, r.AvgCluster, r.MaxHetero, r.AvgHetero)
	}
	return res
}

// Figure5Result is one dataset's F1-vs-threshold curves for the three
// measures.
type Figure5Result struct {
	Dataset string
	Curves  []dedup.Curve
}

// RunFigure5 evaluates the three measures on the NC1-NC3 customizations
// (Fig. 5a-c).
func RunFigure5(w *Workspace, top int, out io.Writer) []Figure5Result {
	var res []Figure5Result
	for _, ds := range NCDatasets(w, top) {
		res = append(res, evalDataset(ds, out))
	}
	return res
}

// RunFigure5Comparators evaluates the measures on Cora, Census and CDDB
// (Fig. 5d-f).
func RunFigure5Comparators(seed int64, out io.Writer) []Figure5Result {
	var res []Figure5Result
	for _, ds := range []*dedup.Dataset{
		datasets.Cora(seed), datasets.Census(seed), datasets.CDDB(seed),
	} {
		res = append(res, evalDataset(ds.Trimmed(), out))
	}
	return res
}

// evalDataset runs the three detection pipelines on one dataset and prints
// its best-F1 summary plus a sampled curve.
func evalDataset(ds *dedup.Dataset, out io.Writer) Figure5Result {
	res := Figure5Result{Dataset: ds.Name}
	fmt.Fprintf(out, "Figure 5: %s (%d records, %d true pairs)\n", ds.Name, ds.NumRecords(), ds.NumTruePairs())
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	cands := dedup.SortedNeighborhood(ds, passes, snmWindow)
	fmt.Fprintf(out, "  blocking: %d candidate pairs, recall %.3f\n",
		len(cands), dedup.BlockingRecall(ds, cands))
	for _, m := range dedup.Measures {
		curve := dedup.EvaluateCandidates(ds, m, cands, sweepSteps)
		res.Curves = append(res.Curves, curve)
		f1, th := curve.BestF1()
		fmt.Fprintf(out, "  %-12s best F1 %.3f @ threshold %.2f | F1@0.55 %.3f  F1@0.70 %.3f  F1@0.85 %.3f\n",
			m, f1, th, f1At(curve, 0.55), f1At(curve, 0.70), f1At(curve, 0.85))
	}
	return res
}

// f1At reads the curve's F1 at (or next to) the given threshold.
func f1At(c dedup.Curve, t float64) float64 {
	best := 0.0
	bestDist := 2.0
	for _, p := range c.Points {
		d := p.Threshold - t
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = p.F1
		}
	}
	return best
}

// BestF1ByDataset flattens results into dataset -> measure -> best F1.
func BestF1ByDataset(results []Figure5Result) map[string]map[dedup.Measure]float64 {
	out := map[string]map[dedup.Measure]float64{}
	for _, r := range results {
		m := map[dedup.Measure]float64{}
		for _, c := range r.Curves {
			f1, _ := c.BestF1()
			m[c.Measure] = f1
		}
		out[r.Dataset] = m
	}
	return out
}
