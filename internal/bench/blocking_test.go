package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBlockingBench(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_blocking.json")
	w := NewWorkspace(Tiny)
	res, err := RunBlockingBench(w, 0, []int{1, 3}, jsonPath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 5 {
		t.Fatalf("got %d configs, want the 5-step ladder", len(res.Configs))
	}
	if len(res.Points) != 5*2 {
		t.Fatalf("got %d points, want 2 worker counts per config", len(res.Points))
	}
	for _, c := range res.Configs {
		if c.Pairs <= 0 {
			t.Errorf("%s: no candidate pairs", c.Config)
		}
		if c.Reduction <= 0 {
			t.Errorf("%s: no reduction over all-pairs (%.3f)", c.Config, c.Reduction)
		}
		if c.Recall < 0 || c.Recall > 1 {
			t.Errorf("%s: recall %.3f out of range", c.Config, c.Recall)
		}
	}
	// The acceptance bar: the paper's multi-pass setups must retain at
	// least 95% of the injected duplicate pairs while pruning the
	// candidate space.
	for _, name := range []string{"snm-5", "snm-5+trigram"} {
		for _, c := range res.Configs {
			if c.Config == name && c.Recall < 0.95 {
				t.Errorf("%s: recall %.3f below the 0.95 bar", name, c.Recall)
			}
		}
	}
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("%s at workers=%d not identical to sequential reference", p.Config, p.Workers)
		}
	}

	body, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BlockingResult
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("BENCH_blocking.json is not valid JSON: %v", err)
	}
	if decoded.Dataset != res.Dataset || len(decoded.Configs) != len(res.Configs) {
		t.Errorf("JSON round-trip mismatch: %+v", decoded)
	}
}
