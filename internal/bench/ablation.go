package bench

import (
	"crypto/md5"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/simil"
	"repro/internal/synth"
	"repro/internal/voter"
)

// The ablation benches quantify the design choices DESIGN.md calls out.

// AblationHashingResult compares MD5 (the paper's choice) against FNV-1a
// for record hashing: dedup outcome must agree; throughput differs.
type AblationHashingResult struct {
	MD5Nanos     int64
	FNVNanos     int64
	SameDistinct bool
}

// RunAblationHashing hashes every row of the workspace under both digests.
func RunAblationHashing(w *Workspace, out io.Writer) AblationHashingResult {
	snaps := w.Snapshots()
	cols := voter.HashColumns(voter.HashTrimmed)

	md5Set := map[voter.Hash]bool{}
	start := time.Now()
	rows := 0
	for _, s := range snaps {
		for _, r := range s.Records {
			md5Set[voter.HashRecord(r, voter.HashTrimmed)] = true
			rows++
		}
	}
	md5Nanos := time.Since(start).Nanoseconds()

	fnvSet := map[uint64]bool{}
	start = time.Now()
	for _, s := range snaps {
		for _, r := range s.Records {
			h := fnv.New64a()
			for _, c := range cols {
				h.Write([]byte(trimmed(r.Values[c])))
				h.Write([]byte{0x1f})
			}
			fnvSet[h.Sum64()] = true
		}
	}
	fnvNanos := time.Since(start).Nanoseconds()

	res := AblationHashingResult{
		MD5Nanos:     md5Nanos,
		FNVNanos:     fnvNanos,
		SameDistinct: len(md5Set) == len(fnvSet),
	}
	fmt.Fprintf(out, "Ablation hashing: %d rows | md5 %.1f ms (%d distinct) | fnv64a %.1f ms (%d distinct) | agree=%v\n",
		rows, float64(md5Nanos)/1e6, len(md5Set), float64(fnvNanos)/1e6, len(fnvSet), res.SameDistinct)
	fmt.Fprintf(out, "  (md5 digest width: %d bits; fnv: 64 — the paper accepts rare collisions either way)\n", md5.Size*8)
	return res
}

// AblationWindowResult sweeps the SNM window size.
type AblationWindowResult struct {
	Windows    []int
	Candidates []int
	Recalls    []float64
}

// RunAblationWindow measures blocking recall and candidate volume as the
// window grows (the paper fixes w = 20 and loses no true pair).
func RunAblationWindow(w *Workspace, top int, out io.Writer) AblationWindowResult {
	ds := NCDatasets(w, top)[1] // NC2: the medium setting
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	res := AblationWindowResult{}
	fmt.Fprintf(out, "Ablation SNM window on %s (%d records, %d true pairs)\n",
		ds.Name, ds.NumRecords(), ds.NumTruePairs())
	for _, win := range []int{2, 5, 10, 20, 40, 80} {
		cands := dedup.SortedNeighborhood(ds, passes, win)
		rec := dedup.BlockingRecall(ds, cands)
		res.Windows = append(res.Windows, win)
		res.Candidates = append(res.Candidates, len(cands))
		res.Recalls = append(res.Recalls, rec)
		fmt.Fprintf(out, "  w=%3d: %8d candidates, blocking recall %.3f\n", win, len(cands), rec)
	}
	return res
}

// AblationWeightsResult contrasts entropy weights with uniform weights in
// the matcher.
type AblationWeightsResult struct {
	EntropyF1 float64
	UniformF1 float64
}

// RunAblationWeights compares the matcher's entropy weighting against a
// uniform weighting on the NC2 customization.
func RunAblationWeights(w *Workspace, top int, out io.Writer) AblationWeightsResult {
	ds := NCDatasets(w, top)[1]
	entropyCurve := dedup.Evaluate(ds, dedup.MeasureMELev, snmPasses, snmWindow, sweepSteps)
	entropyF1, _ := entropyCurve.BestF1()

	// Uniform weights: flatten the value distribution by feeding the
	// matcher a dataset whose entropy is equal per column. Easiest faithful
	// comparison: score with a uniform-weight matcher built directly.
	uniform := &dedup.Dataset{
		Name:      ds.Name + "-uniform",
		Attrs:     ds.Attrs,
		Records:   ds.Records,
		ClusterOf: ds.ClusterOf,
		NameAttrs: ds.NameAttrs,
	}
	uniformF1 := evaluateUniform(uniform)
	res := AblationWeightsResult{EntropyF1: entropyF1, UniformF1: uniformF1}
	fmt.Fprintf(out, "Ablation weights on %s: entropy best F1 %.3f vs uniform %.3f\n",
		ds.Name, res.EntropyF1, res.UniformF1)
	return res
}

// evaluateUniform scores candidates under uniform attribute weights by
// using a plain unweighted mean of value similarities.
func evaluateUniform(ds *dedup.Dataset) float64 {
	passes := dedup.MostUniqueAttrs(ds, snmPasses)
	cands := dedup.SortedNeighborhood(ds, passes, snmWindow)
	type scored struct {
		sim float64
		dup bool
	}
	var sp []scored
	for _, p := range cands {
		a, b := ds.Records[p.I], ds.Records[p.J]
		sum, n := 0.0, 0
		for c := range ds.Attrs {
			sum += simil.DamerauLevenshteinSimilarity(a[c], b[c])
			n++
		}
		sp = append(sp, scored{sum / float64(n), ds.IsDuplicate(p.I, p.J)})
	}
	totalTrue := ds.NumTruePairs()
	best := 0.0
	for s := 0; s <= sweepSteps; s++ {
		t := float64(s) / float64(sweepSteps)
		tp, n := 0, 0
		for _, x := range sp {
			if x.sim >= t {
				n++
				if x.dup {
					tp++
				}
			}
		}
		if n == 0 || totalTrue == 0 {
			continue
		}
		p := float64(tp) / float64(n)
		r := float64(tp) / float64(totalTrue)
		if p+r > 0 {
			if f1 := 2 * p * r / (p + r); f1 > best {
				best = f1
			}
		}
	}
	return best
}

// AblationGenerationResult compares the historical simulator against the
// pollution-tool baseline: generation throughput and outdated-value
// coverage (the pollution tool cannot create genuinely outdated values).
type AblationGenerationResult struct {
	HistRowsPerSec    float64
	PolluteRowsPerSec float64
	HistOutdated      int // clusters containing records from >= 3 distinct years
	PolluteOutdated   int // always 0: a single-date generator has no history
}

// RunAblationGeneration measures both generators at comparable output size.
func RunAblationGeneration(w *Workspace, out io.Writer) AblationGenerationResult {
	cfg := w.SynthConfig()
	cfg.Snapshots = synth.Calendar(2008, w.Scale.Years)
	start := time.Now()
	snaps := synth.Generate(cfg)
	histDur := time.Since(start)
	histRows := 0
	for _, s := range snaps {
		histRows += len(s.Records)
	}

	pcfg := synth.DefaultPolluteConfig(w.Scale.Seed, w.Scale.InitialVoters)
	start = time.Now()
	psnap := synth.Pollute(pcfg)
	polDur := time.Since(start)

	// Outdated-value coverage: cluster spans across years.
	spanYears := map[string]map[string]bool{}
	for _, s := range snaps {
		year := s.Date[:4]
		for _, r := range s.Records {
			id := r.NCID()
			if spanYears[id] == nil {
				spanYears[id] = map[string]bool{}
			}
			spanYears[id][year] = true
		}
	}
	histOutdated := 0
	for _, years := range spanYears {
		if len(years) >= 3 {
			histOutdated++
		}
	}

	res := AblationGenerationResult{
		HistRowsPerSec:    float64(histRows) / histDur.Seconds(),
		PolluteRowsPerSec: float64(len(psnap.Records)) / polDur.Seconds(),
		HistOutdated:      histOutdated,
	}
	fmt.Fprintf(out, "Ablation generation: historical %d rows @ %.0f rows/s | pollution %d rows @ %.0f rows/s\n",
		histRows, res.HistRowsPerSec, len(psnap.Records), res.PolluteRowsPerSec)
	fmt.Fprintf(out, "  multi-year clusters (real outdated values): historical %d, pollution 0 by construction\n",
		res.HistOutdated)
	return res
}

// AblationNameScoringResult compares the Generalized Jaccard (paper's
// plausibility choice) against Monge-Elkan (the heterogeneity fallback) on
// name-tuple scoring cost and agreement.
type AblationNameScoringResult struct {
	GenJaccNanosPerOp int64
	MongeElkanNanosOp int64
	MeanAbsDiff       float64
}

// RunAblationNameScoring measures both hybrid measures over the name tuples
// of the trimmed dataset's duplicate pairs.
func RunAblationNameScoring(w *Workspace, out io.Writer) AblationNameScoringResult {
	d := w.Dataset(core.RemoveTrimmed)
	var tuples [][2][]string
	d.Clusters(func(c *core.Cluster) bool {
		for i := 1; i < len(c.Records) && len(tuples) < 5000; i++ {
			a := nameTuple(c.Records[i].Rec)
			b := nameTuple(c.Records[0].Rec)
			tuples = append(tuples, [2][]string{a, b})
		}
		return len(tuples) < 5000
	})
	if len(tuples) == 0 {
		fmt.Fprintln(out, "Ablation name scoring: no duplicate pairs available")
		return AblationNameScoringResult{}
	}

	start := time.Now()
	gj := make([]float64, len(tuples))
	for i, t := range tuples {
		gj[i] = simil.GeneralizedJaccard(t[0], t[1], simil.ExtendedDamerauLevenshtein, 0.5)
	}
	gjNanos := time.Since(start).Nanoseconds() / int64(len(tuples))

	start = time.Now()
	me := make([]float64, len(tuples))
	for i, t := range tuples {
		me[i] = simil.MongeElkan(t[0], t[1], simil.ExtendedDamerauLevenshtein)
	}
	meNanos := time.Since(start).Nanoseconds() / int64(len(tuples))

	diff := 0.0
	for i := range gj {
		d := gj[i] - me[i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	res := AblationNameScoringResult{
		GenJaccNanosPerOp: gjNanos,
		MongeElkanNanosOp: meNanos,
		MeanAbsDiff:       diff / float64(len(gj)),
	}
	fmt.Fprintf(out, "Ablation name scoring over %d pairs: GenJaccard %d ns/op, Monge-Elkan %d ns/op, mean |Δ| %.4f\n",
		len(tuples), res.GenJaccNanosPerOp, res.MongeElkanNanosOp, res.MeanAbsDiff)
	return res
}

func nameTuple(r voter.Record) []string {
	return []string{
		trimmed(r.Values[voter.IdxFirstName]),
		trimmed(r.Values[voter.IdxMiddleName]),
		trimmed(r.Values[voter.IdxLastName]),
	}
}

func trimmed(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}
