package bench

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunDedupBenchTiny runs the end-to-end experiment at toy scale: both
// modes must be identical to the reference, the streamed points must carry
// throughput, and the JSON artifact must land.
func TestRunDedupBenchTiny(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_dedup.json")
	res, err := RunDedupBench(1, 3000, []int{2}, jsonPath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3000 {
		t.Errorf("records = %d, want 3000", res.Records)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2 (materialized + streamed)", len(res.Points))
	}
	modes := map[string]bool{}
	for _, p := range res.Points {
		modes[p.Mode] = true
		if !p.Identical {
			t.Errorf("%s at workers=%d not identical", p.Mode, p.Workers)
		}
		if p.Pairs == 0 || p.PairsPerSecond <= 0 {
			t.Errorf("%s: empty run (%d pairs, %.0f pairs/s)", p.Mode, p.Pairs, p.PairsPerSecond)
		}
		if p.Pairs != res.Candidates {
			t.Errorf("%s scored %d pairs, want %d", p.Mode, p.Pairs, res.Candidates)
		}
	}
	if !modes["materialized"] || !modes["streamed"] {
		t.Errorf("missing a mode: %v", modes)
	}
	body, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mode": "streamed"`, `"peakHeapRatio"`, `"pairsPerSecond"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

// TestDedupBenchDatasetShape: the generator hits the record target exactly
// and stays deterministic in the seed.
func TestDedupBenchDatasetShape(t *testing.T) {
	a := dedupBenchDataset(7, 500)
	if len(a.Records) != 500 || len(a.ClusterOf) != 500 {
		t.Fatalf("generated %d records / %d labels, want 500", len(a.Records), len(a.ClusterOf))
	}
	b := dedupBenchDataset(7, 500)
	for i := range a.Records {
		for c := range a.Records[i] {
			if a.Records[i][c] != b.Records[i][c] {
				t.Fatalf("record %d differs across same-seed runs", i)
			}
		}
	}
	if a.NumTruePairs() == 0 {
		t.Error("no injected duplicates")
	}
}
