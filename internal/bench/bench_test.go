package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/errstats"
)

// shared small workspace for the package's tests; the workspace caches all
// generated state, so tests sharing it stay fast.
var testWS = NewWorkspace(Small)

func TestTable1Shape(t *testing.T) {
	var sb strings.Builder
	res := RunTable1(testWS, &sb)
	if len(res.Years) < 5 {
		t.Fatalf("years = %d", len(res.Years))
	}
	// The first snapshot introduces only new records and objects (paper:
	// 100 % rates for the 2008 row, which holds a single snapshot; our
	// calendar puts two snapshots into 2008, so assert on the snapshot).
	firstImport := testWS.Dataset(core.RemoveTrimmed).Imports()[0]
	if firstImport.NewRecords != firstImport.Rows {
		t.Errorf("first snapshot: %d new of %d rows, want all new", firstImport.NewRecords, firstImport.Rows)
	}
	if firstImport.NewObjects != firstImport.NewRecords {
		t.Errorf("first snapshot: %d new objects of %d new records, want equal", firstImport.NewObjects, firstImport.NewRecords)
	}
	// Later years have much lower new-record rates (snapshots repeat rows).
	later := res.Years[len(res.Years)-1]
	if later.NewRecordRate > 0.7 {
		t.Errorf("late-year new-record rate = %v, want well below the first year", later.NewRecordRate)
	}
	// Every year still contributes new records (paper: even the last four
	// snapshots contributed significantly).
	for _, y := range res.Years[1:] {
		if y.NewRecords == 0 {
			t.Errorf("year %d contributed no new records", y.Year)
		}
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("missing table header in output")
	}
}

func TestTable1FormatDriftSpikes(t *testing.T) {
	// The default config drifts district formats at snapshot indices 7 and
	// 14; the drift year's new-record rate must exceed its neighbours'
	// (the paper's 2010/2012/2018 anomaly).
	res := RunTable1(testWS, io.Discard)
	rates := map[int]float64{}
	for _, y := range res.Years {
		rates[y.Year] = y.NewRecordRate
	}
	// Snapshot 7 of Calendar(2008, 8) lands in 2012 (snapshots: 2008x2,
	// 2009, 2010x2, 2011, 2012x2 -> index 7 = 2012-11-03).
	drift := rates[2012]
	if drift <= rates[2011] || drift <= rates[2013] {
		t.Errorf("drift year 2012 rate %v should exceed neighbours (2011 %v, 2013 %v)",
			drift, rates[2011], rates[2013])
	}
}

func TestTable2Shape(t *testing.T) {
	res := RunTable2(testWS, io.Discard)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	none, exact, trim, person := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// Monotone record counts: none > exact > trimming > person data.
	if !(none.Records > exact.Records && exact.Records > trim.Records && trim.Records > person.Records) {
		t.Errorf("record counts not monotone: %d / %d / %d / %d",
			none.Records, exact.Records, trim.Records, person.Records)
	}
	// The dominant effect: combining snapshots floods the data with exact
	// duplicates (paper: 67.3 % removed in the exact run).
	if exact.RemovedRecPct < 0.5 {
		t.Errorf("exact-mode removal = %.1f%%, want > 50%%", 100*exact.RemovedRecPct)
	}
	// Pair removal is even more extreme (paper: up to 98.8 %).
	if person.RemovedPairPct < exact.RemovedPairPct {
		t.Errorf("pair removal not monotone: %v < %v", person.RemovedPairPct, exact.RemovedPairPct)
	}
	if person.RemovedPairPct < 0.8 {
		t.Errorf("person-mode pair removal = %.1f%%, want > 80%%", 100*person.RemovedPairPct)
	}
	// Average cluster sizes decrease with stronger removal.
	if !(none.AvgClusterSize > exact.AvgClusterSize &&
		exact.AvgClusterSize > trim.AvgClusterSize &&
		trim.AvgClusterSize >= person.AvgClusterSize) {
		t.Errorf("avg cluster sizes not monotone: %.2f / %.2f / %.2f / %.2f",
			none.AvgClusterSize, exact.AvgClusterSize, trim.AvgClusterSize, person.AvgClusterSize)
	}
	// All modes keep the same object count (clusters are never removed).
	for _, mode := range Modes[1:] {
		if testWS.Dataset(mode).NumClusters() != testWS.Dataset(core.RemoveNone).NumClusters() {
			t.Errorf("mode %v changed the cluster count", mode)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	res := RunFigure1(testWS, io.Discard)
	avg := func(h map[int]int) float64 {
		rec, cl := 0, 0
		for size, n := range h {
			rec += size * n
			cl += n
		}
		if cl == 0 {
			return 0
		}
		return float64(rec) / float64(cl)
	}
	single := avg(res.SingleSnapshot)
	whole := avg(res.WholeAll)
	person := avg(res.WholePerson)
	// A single snapshot provides only small clusters (paper: 1.18).
	if single > 2 {
		t.Errorf("single-snapshot avg cluster = %v, want <= 2", single)
	}
	// The whole dataset provides much larger clusters (paper: 8.88 / 4.32).
	if whole <= single {
		t.Errorf("whole avg (%v) should exceed single-snapshot avg (%v)", whole, single)
	}
	if person > whole {
		t.Errorf("person-data avg (%v) should not exceed all-attribute avg (%v)", person, whole)
	}
}

func TestFigure3Examples(t *testing.T) {
	var sb strings.Builder
	res := RunFigure3Examples(&sb)
	if res.SoundPlausibility < 0.6 {
		t.Errorf("sound cluster plausibility = %v, want >= 0.6 (paper 0.81)", res.SoundPlausibility)
	}
	if res.UnsoundPlausibility > 0.5 {
		t.Errorf("unsound cluster plausibility = %v, want <= 0.5 (paper 0.33)", res.UnsoundPlausibility)
	}
	if res.SoundPlausibility <= res.UnsoundPlausibility {
		t.Error("plausibility must separate the sound from the unsound cluster")
	}
	if res.SoundHetero <= 0 || res.UnsoundHetero <= 0 {
		t.Errorf("heterogeneities = %v / %v, want > 0", res.SoundHetero, res.UnsoundHetero)
	}
	if !strings.Contains(sb.String(), "DB175272") {
		t.Error("example output missing")
	}
}

func TestFigure4aShape(t *testing.T) {
	res := RunFigure4a(testWS, io.Discard)
	// Most clusters are fully plausible (paper: avg 0.99, 92.8 % at 1.0).
	if res.AvgCluster < 0.9 {
		t.Errorf("avg plausibility = %v, want >= 0.9", res.AvgCluster)
	}
	if res.FracAtOne < 0.5 {
		t.Errorf("fraction at 1.0 = %v, want >= 0.5", res.FracAtOne)
	}
	// A small unsound tail exists (the simulator misuses NCIDs on purpose;
	// last-name changes through marriage thicken the tail slightly beyond
	// the paper's 0.43 %).
	if res.FracBelow0_8 == 0 {
		t.Error("no low-plausibility clusters at all; unsound clusters missing")
	}
	if res.FracBelow0_8 > 0.1 {
		t.Errorf("fraction below 0.8 = %v, want a thin tail (< 10%%)", res.FracBelow0_8)
	}
	if res.FracBelow0_5 > 0.02 {
		t.Errorf("fraction below 0.5 = %v, want nearly none", res.FracBelow0_5)
	}
}

func TestFigure4bShape(t *testing.T) {
	res := RunFigure4b(testWS, io.Discard)
	// The dataset as a whole is clean and homogeneous (paper: cluster avg
	// 0.09, pair avg 0.16).
	if res.AvgCluster > 0.3 {
		t.Errorf("avg cluster heterogeneity = %v, want <= 0.3", res.AvgCluster)
	}
	if res.AvgCluster <= 0 {
		t.Error("avg cluster heterogeneity is zero; exact duplicates were supposed to be removed")
	}
	if res.MaxPair <= res.AvgPair {
		t.Errorf("max pair (%v) should exceed avg pair (%v)", res.MaxPair, res.AvgPair)
	}
	if res.MaxPair > 1 || res.MaxCluster > 1 {
		t.Errorf("heterogeneity out of range: %v / %v", res.MaxPair, res.MaxCluster)
	}
}

func TestFigure4cShape(t *testing.T) {
	res := RunFigure4c(1, io.Discard)
	for _, name := range []string{"Cora", "Census", "CDDB"} {
		if res.Avg[name] <= 0 || res.Avg[name] > 0.5 {
			t.Errorf("%s avg heterogeneity = %v, want in (0, 0.5]", name, res.Avg[name])
		}
	}
	// CDDB is the dirtiest comparator (paper: 0.218 vs 0.171 vs ~0.15).
	if res.Avg["CDDB"] <= res.Avg["Census"] {
		t.Errorf("CDDB (%v) should be dirtier than Census (%v)", res.Avg["CDDB"], res.Avg["Census"])
	}
}

func TestTable4Shape(t *testing.T) {
	res := RunTable4(testWS, io.Discard)
	// NC percentages are small, absolute counts substantial; Census's typo
	// percentage towers above NC's (paper: 65 % vs 0.9 %).
	ncTypo := res.NC.PairPct(errstats.Typo)
	censusTypo := res.Census.PairPct(errstats.Typo)
	if censusTypo <= ncTypo {
		t.Errorf("census typo pct (%v) should exceed NC (%v)", censusTypo, ncTypo)
	}
	if ncTypo <= 0 {
		t.Error("NC dataset shows no typos at all")
	}
	// NC contains multi-attribute irregularities (paper: value confusions,
	// integrated and scattered values occur in NC).
	multi := res.NC.PairBased[errstats.ValueConfusion].Total +
		res.NC.PairBased[errstats.IntegratedValue].Total +
		res.NC.PairBased[errstats.ScatteredValue].Total
	if multi == 0 {
		t.Error("NC dataset shows no multi-attribute irregularities")
	}
	// Missing values dominate the singleton profile.
	if res.NC.Singletons[errstats.Missing].Total == 0 {
		t.Error("NC dataset shows no missing values")
	}
	// Cora is sparse: its missing percentage beats NC's most common.
	if res.Cora.SingletonPct(errstats.Missing) <= 0.1 {
		t.Errorf("Cora missing pct = %v, want > 0.1", res.Cora.SingletonPct(errstats.Missing))
	}
}

func TestTable3AndFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("usability experiment is the slowest integration test")
	}
	const top = 60
	t3 := RunTable3(testWS, top, io.Discard)
	if len(t3.Rows) != 6 {
		t.Fatalf("table 3 rows = %d", len(t3.Rows))
	}
	byName := map[string]int{}
	for i, r := range t3.Rows {
		byName[r.Name] = i
	}
	nc1 := t3.Rows[byName["NC1"]]
	nc2 := t3.Rows[byName["NC2"]]
	nc3 := t3.Rows[byName["NC3"]]
	// The customization must deliver increasing dirtiness (paper: avg
	// heterogeneity 0.09 / 0.304 / 0.487).
	if nc1.DupPairs > 0 && nc2.DupPairs > 0 && nc1.AvgHetero >= nc2.AvgHetero {
		t.Errorf("NC1 avg hetero (%v) should be below NC2 (%v)", nc1.AvgHetero, nc2.AvgHetero)
	}
	if nc2.DupPairs > 0 && nc3.DupPairs > 0 && nc2.AvgHetero >= nc3.AvgHetero {
		t.Errorf("NC2 avg hetero (%v) should be below NC3 (%v)", nc2.AvgHetero, nc3.AvgHetero)
	}

	results := RunFigure5(testWS, top, io.Discard)
	best := BestF1ByDataset(results)
	// NC1 is nearly perfectly detectable (paper: ~1.0 for all measures).
	for m, f1 := range best["NC1"] {
		if f1 < 0.85 {
			t.Errorf("NC1 %s best F1 = %v, want >= 0.85", m, f1)
		}
	}
	// Detection quality decreases with heterogeneity (paper's headline
	// usability claim). NC3 may be tiny at test scale; only compare when
	// it has enough pairs.
	nc2Best := best["NC2"][dedup.MeasureMELev]
	nc1Best := best["NC1"][dedup.MeasureMELev]
	if nc2.DupPairs > 10 && nc2Best > nc1Best {
		t.Errorf("NC2 best F1 (%v) should not exceed NC1 (%v)", nc2Best, nc1Best)
	}
}

func TestFigure5Comparators(t *testing.T) {
	if testing.Short() {
		t.Skip("comparator evaluation is slow")
	}
	results := RunFigure5Comparators(1, io.Discard)
	best := BestF1ByDataset(results)
	for _, name := range []string{"Cora", "Census", "CDDB"} {
		found := false
		for _, f1 := range best[name] {
			if f1 > 0.3 {
				found = true
			}
			if f1 < 0 || f1 > 1 {
				t.Errorf("%s F1 out of range: %v", name, f1)
			}
		}
		if !found {
			t.Errorf("%s: no measure reached F1 0.3 (best = %v)", name, best[name])
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	h := RunAblationHashing(testWS, io.Discard)
	if !h.SameDistinct {
		t.Error("md5 and fnv disagree on distinct row counts")
	}
	win := RunAblationWindow(testWS, 40, io.Discard)
	for i := 1; i < len(win.Windows); i++ {
		if win.Candidates[i] < win.Candidates[i-1] {
			t.Errorf("candidate volume not monotone in window: %v", win.Candidates)
		}
		if win.Recalls[i] < win.Recalls[i-1]-1e-9 {
			t.Errorf("blocking recall not monotone in window: %v", win.Recalls)
		}
	}
	wres := RunAblationWeights(testWS, 40, io.Discard)
	if wres.EntropyF1 <= 0 {
		t.Errorf("entropy F1 = %v", wres.EntropyF1)
	}
	g := RunAblationGeneration(testWS, io.Discard)
	if g.HistOutdated == 0 {
		t.Error("historical generator produced no multi-year clusters")
	}
	if g.HistRowsPerSec <= 0 || g.PolluteRowsPerSec <= 0 {
		t.Error("throughputs not measured")
	}
	n := RunAblationNameScoring(testWS, io.Discard)
	if n.GenJaccNanosPerOp <= 0 || n.MongeElkanNanosOp <= 0 {
		t.Error("name scoring not measured")
	}
	if n.MeanAbsDiff > 0.2 {
		t.Errorf("hybrid measures disagree heavily: %v", n.MeanAbsDiff)
	}
	blk := RunAblationBlocking(testWS, 40, io.Discard)
	if blk.SNMRecall < 0.9 {
		t.Errorf("SNM recall on NC1 = %v, want >= 0.9", blk.SNMRecall)
	}
	if blk.StdCandidates == 0 || blk.StdRecall <= 0 {
		t.Errorf("standard blocking degenerate: %+v", blk)
	}
	pol := RunAblationPollution(testWS, io.Discard)
	if pol.PollutedHetero <= pol.BaseHetero {
		t.Errorf("pollution did not raise heterogeneity: %v -> %v", pol.BaseHetero, pol.PollutedHetero)
	}
	if pol.PollutedF1 >= pol.BaseF1 {
		t.Errorf("pollution did not raise difficulty: F1 %v -> %v", pol.BaseF1, pol.PollutedF1)
	}
	zoo := RunAblationMeasures(testWS, 40, io.Discard)
	if len(zoo.Measure) != len(dedup.AllMeasures) {
		t.Fatalf("measure zoo = %d measures, want %d", len(zoo.Measure), len(dedup.AllMeasures))
	}
	for i, f1 := range zoo.BestF1 {
		if f1 < 0.3 || f1 > 1 {
			t.Errorf("measure %s best F1 = %v", zoo.Measure[i], f1)
		}
	}
	if blk.CanopyCandidates == 0 || blk.CanopyRecall < 0.5 {
		t.Errorf("canopy blocking degenerate: %+v", blk)
	}
	th := RunAblationThreshold(testWS, 40, io.Discard)
	if len(th.Selected) != 3 {
		t.Fatalf("threshold ablation = %d datasets", len(th.Selected))
	}
	for i, sel := range th.Selected {
		if sel.Threshold <= 0 || sel.Threshold >= 1 {
			t.Errorf("%s threshold = %v", th.Dataset[i], sel.Threshold)
		}
	}
	fs := RunAblationFS(testWS, 40, io.Discard)
	if len(fs.FSF1) != 3 {
		t.Fatalf("FS ablation = %d datasets", len(fs.FSF1))
	}
	for i, f1 := range fs.FSF1 {
		if f1 < 0 || f1 > 1 {
			t.Errorf("%s FS F1 = %v", fs.Dataset[i], f1)
		}
	}
}

func TestHistogramHelpers(t *testing.T) {
	h := NewHistogram([]float64{0, 0.04, 0.5, 0.99, 1.0}, 20)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Bins[0] != 2 {
		t.Errorf("first bin = %d, want 2", h.Bins[0])
	}
	if h.Bins[19] != 2 { // 0.99 and the closed 1.0
		t.Errorf("last bin = %d, want 2", h.Bins[19])
	}
	if got := Mean([]float64{1, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max([]float64{1, 3, 2}); got != 3 {
		t.Errorf("Max = %v", got)
	}
	if got := Min([]float64{2, 1, 3}); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := FractionBelow([]float64{0.1, 0.5, 0.9}, 0.5); got < 0.33 || got > 0.34 {
		t.Errorf("FractionBelow = %v", got)
	}
	if got := FractionAtLeast([]float64{0.1, 0.5, 0.9}, 0.5); got < 0.66 || got > 0.67 {
		t.Errorf("FractionAtLeast = %v", got)
	}
}
