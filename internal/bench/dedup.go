// The end-to-end dedup experiment: blocking fused into scoring. The
// materialized path (blocking.Generate + dedup.EvaluateCandidatesParallel)
// holds the full candidate union and a float64 per pair before the sweep;
// the streamed path (blocking.GenerateStream + dedup.EvaluateCandidatesStream)
// bounds pairs in flight to a few batches. Both produce the same Curve —
// checked here, because a memory number from a diverging pipeline would be
// meaningless — and the experiment reports wall time, pairs/s, and peak
// heap growth for each, plus the materialized/streamed peak-heap ratio the
// streaming work exists to maximize.

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/blocking"
	"repro/internal/dedup"
)

// DedupPoint is one end-to-end run: one pipeline mode at one worker count.
type DedupPoint struct {
	Mode           string  `json:"mode"` // "materialized" or "streamed"
	Workers        int     `json:"workers"`
	Pairs          int     `json:"pairs"`
	Seconds        float64 `json:"seconds"`
	PairsPerSecond float64 `json:"pairsPerSecond"`
	// PeakHeapBytes is the sampled peak live-heap growth over the run's
	// GC'd baseline; TotalAllocBytes is the cumulative allocation delta.
	PeakHeapBytes   uint64 `json:"peakHeapBytes"`
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// Identical records the bit-identity check against the materialized
	// reference curve and blocking stats.
	Identical bool `json:"identical"`
}

// DedupResult is the full experiment.
type DedupResult struct {
	Dataset    string       `json:"dataset"`
	Records    int          `json:"records"`
	Candidates int          `json:"candidates"`
	Measure    string       `json:"measure"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []DedupPoint `json:"points"`
	// PeakHeapRatio is materialized/streamed peak heap at the largest
	// worker count both modes ran — the streaming win in one number.
	PeakHeapRatio float64 `json:"peakHeapRatio"`
}

// dedupBenchDataset synthesizes a labeled voter-like corpus of exactly
// `records` rows: clusters of 1-4 noisy copies over name/city/zip
// attributes, deterministic in the seed. Kept local so the 100k-record run
// does not drag the full synth+plausibility pipeline into a memory
// benchmark. The value pools are deliberately modest (hundreds of distinct
// last names, not one per record) so the engine's per-distinct-value
// interning and the bounded memo stay small and the measurement isolates
// the pair-pipeline memory — the part the streaming work changes.
func dedupBenchDataset(seed int64, records int) *dedup.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &dedup.Dataset{
		Name:      fmt.Sprintf("dedupbench-%dk", records/1000),
		Attrs:     []string{"last_name", "first_name", "city", "zip"},
		NameAttrs: []int{0, 1},
	}
	lasts := []string{"MILLER", "SMITH", "JOHNSON", "GARCIA", "WILLIAMS", "DAVIS", "LOPEZ", "WILSON", "MOORE", "TAYLOR", "ANDERSON", "THOMAS"}
	firsts := []string{"JAMES", "MARY", "ROBERT", "LINDA", "DAVID", "SUSAN", "PAUL", "KAREN", "MARK", "NANCY"}
	cities := []string{"RALEIGH", "DURHAM", "CARY", "WILSON", "APEX", "GREENSBORO", "CHARLOTTE"}
	corrupt := func(s string) string {
		if len(s) < 2 || rng.Intn(3) > 0 {
			return s
		}
		b := []byte(s)
		switch rng.Intn(3) {
		case 0:
			b[rng.Intn(len(b))] = byte('A' + rng.Intn(26))
		case 1:
			i := rng.Intn(len(b) - 1)
			b[i], b[i+1] = b[i+1], b[i]
		default:
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		}
		return string(b)
	}
	for c := 0; len(ds.Records) < records; c++ {
		base := []string{
			lasts[rng.Intn(len(lasts))] + fmt.Sprintf("%02d", rng.Intn(100)),
			firsts[rng.Intn(len(firsts))],
			cities[rng.Intn(len(cities))],
			fmt.Sprintf("27%03d", rng.Intn(1000)),
		}
		n := 1 + rng.Intn(4)
		for v := 0; v < n && len(ds.Records) < records; v++ {
			rec := make([]string, len(base))
			copy(rec, base)
			if v > 0 {
				at := rng.Intn(len(rec))
				rec[at] = corrupt(rec[at])
			}
			ds.Records = append(ds.Records, rec)
			ds.ClusterOf = append(ds.ClusterOf, c)
		}
	}
	return ds
}

// heapSampler polls the live heap until stopped and reports the peak.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

// Peak stops the sampler, folds in one final reading and returns the
// maximum observed live heap.
func (h *heapSampler) Peak() uint64 {
	close(h.stop)
	<-h.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return h.peak
}

// dedupBenchMeasure keeps the scoring kernel cheap so the memory contrast,
// not the DP inner loop, dominates the experiment.
const dedupBenchMeasure = dedup.MeasureJaroWinkler

// runDedupOnce executes one end-to-end pipeline run and measures it.
// Returns the curve and blocking stats for the identity check.
func runDedupOnce(ds *dedup.Dataset, cfg blocking.Config, workers int, streamed bool) (DedupPoint, dedup.Curve, blocking.Stats) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampler := startHeapSampler()
	start := time.Now()

	var curve dedup.Curve
	var stats blocking.Stats
	// Both modes share one bounded memo so the cache (a fixed cost the
	// streaming work does not touch) stays out of the peak-heap contrast.
	opts := dedup.ScoreOpts{Workers: workers, MemoCap: 1 << 16}
	if streamed {
		s := blocking.GenerateStream(ds, cfg, blocking.StreamOpts{})
		opts.Recycle = s.Recycle
		curve = dedup.EvaluateCandidatesStream(ds, dedupBenchMeasure, s.C, sweepSteps, opts)
		stats = s.Stats()
	} else {
		candidates, st := blocking.Generate(ds, cfg)
		stats = st
		curve = dedup.EvaluateCandidatesParallel(ds, dedupBenchMeasure, candidates, sweepSteps, opts)
	}

	secs := time.Since(start).Seconds()
	peak := sampler.Peak()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	p := DedupPoint{
		Workers: workers,
		Pairs:   stats.Unique,
		Seconds: secs,
	}
	if streamed {
		p.Mode = "streamed"
	} else {
		p.Mode = "materialized"
	}
	if secs > 0 {
		p.PairsPerSecond = float64(stats.Unique) / secs
	}
	if peak > base.HeapAlloc {
		p.PeakHeapBytes = peak - base.HeapAlloc
	}
	p.TotalAllocBytes = end.TotalAlloc - base.TotalAlloc
	return p, curve, stats
}

// DefaultDedupRecords is the corpus size of the committed BENCH_dedup.json
// run — large enough that the materialized candidate union dominates the
// heap.
const DefaultDedupRecords = 100_000

// RunDedupBench benchmarks the fused streaming pipeline against the
// materialized reference on a `records`-row corpus: same blockers (the
// paper's five-pass SNM at window 20), same engine, same sweep. Each
// streamed run's curve and blocking stats must equal the materialized
// reference exactly — a divergence aborts with an error. jsonPath, when
// non-empty, receives the result as machine-readable JSON.
func RunDedupBench(seed int64, records int, workerCounts []int, jsonPath string, out io.Writer) (DedupResult, error) {
	if records <= 0 {
		records = DefaultDedupRecords
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{runtime.GOMAXPROCS(0)}
	}
	ds := dedupBenchDataset(seed, records)
	cfg := func(workers int) blocking.Config {
		return blocking.Config{Passes: blocking.EntropyPasses(ds, snmPasses), Window: snmWindow, Workers: workers}
	}
	res := DedupResult{
		Dataset:    ds.Name,
		Records:    len(ds.Records),
		Measure:    string(dedupBenchMeasure),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(out, "End-to-end dedup: %s, %d records, measure %s (GOMAXPROCS %d)\n",
		ds.Name, res.Records, res.Measure, res.GOMAXPROCS)
	fmt.Fprintf(out, "%-13s %8s %10s %9s %12s %11s %12s %10s\n",
		"mode", "workers", "pairs", "seconds", "pairs/s", "peak heap", "total alloc", "identical")

	var refCurve dedup.Curve
	var refStats blocking.Stats
	peaks := map[string]uint64{}
	for i, workers := range workerCounts {
		mat, matCurve, matStats := runDedupOnce(ds, cfg(workers), workers, false)
		if i == 0 {
			refCurve, refStats = matCurve, matStats
			res.Candidates = matStats.Unique
		}
		mat.Identical = reflect.DeepEqual(matCurve, refCurve) && reflect.DeepEqual(matStats, refStats)
		res.Points = append(res.Points, mat)
		printDedupPoint(out, mat)
		if !mat.Identical {
			return res, fmt.Errorf("dedup: materialized run at workers=%d diverged from the reference", workers)
		}

		str, strCurve, strStats := runDedupOnce(ds, cfg(workers), workers, true)
		str.Identical = reflect.DeepEqual(strCurve, refCurve) && reflect.DeepEqual(strStats, refStats)
		res.Points = append(res.Points, str)
		printDedupPoint(out, str)
		if !str.Identical {
			return res, fmt.Errorf("dedup: streamed run at workers=%d diverged from the materialized reference", workers)
		}
		peaks["materialized"], peaks["streamed"] = mat.PeakHeapBytes, str.PeakHeapBytes
	}
	if peaks["streamed"] > 0 {
		res.PeakHeapRatio = float64(peaks["materialized"]) / float64(peaks["streamed"])
		fmt.Fprintf(out, "peak heap ratio (materialized/streamed): %.1fx\n", res.PeakHeapRatio)
	}

	if jsonPath != "" {
		body, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return res, err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return res, nil
}

func printDedupPoint(out io.Writer, p DedupPoint) {
	fmt.Fprintf(out, "%-13s %8d %10d %9.3f %12.0f %10.1fM %11.1fM %10v\n",
		p.Mode, p.Workers, p.Pairs, p.Seconds, p.PairsPerSecond,
		float64(p.PeakHeapBytes)/(1<<20), float64(p.TotalAllocBytes)/(1<<20), p.Identical)
}
