package testkit_test

import (
	"strings"
	"testing"

	"repro/internal/docstore"
	"repro/internal/provenance"
	"repro/internal/testkit"
)

// TestProvenanceFaultSweep is the hostile-disk half of the provenance
// battery: one bit is flipped in every file of a stamped store in turn — each
// segment, each manifest, and the record itself — and `ncstats -verify`'s
// engine must not merely fail but name exactly the corrupted file. The flips
// are injected on the read path (CorruptFS), so one store serves the whole
// sweep and the clean-disk control can re-run between flips.
func TestProvenanceFaultSweep(t *testing.T) {
	db := testkit.Corpus{Seed: 29}.DocDB(t, 150)
	dir := t.TempDir()
	meta := provenance.Meta{Source: "fault-sweep", Mode: "none"}
	rec, err := provenance.Save(db, dir, docstore.SaveOpts{Stride: 16}, provenance.StampOpts{Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := docstore.OSFS.ReadFile(provenance.RecordPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Control: the untampered store verifies through a pass-through CorruptFS
	// (no file matches an empty target).
	if _, err := provenance.VerifyDir(dir, provenance.VerifyOpts{FS: &testkit.CorruptFS{}}); err != nil {
		t.Fatalf("clean store failed verification: %v", err)
	}

	var files []string
	for _, c := range rec.Collections {
		files = append(files, docstore.ManifestFileName(c.Name))
		for _, l := range c.Leaves {
			files = append(files, l.File)
		}
	}
	if len(files) < 4 {
		t.Fatalf("sweep too small to mean anything: %v", files)
	}
	for _, name := range files {
		for _, workers := range []int{1, 4} {
			rep, err := provenance.VerifyDir(dir, provenance.VerifyOpts{
				Workers: workers,
				FS:      &testkit.CorruptFS{Target: name, BitOffset: 137},
			})
			if err == nil {
				t.Fatalf("%s (workers=%d): single flipped bit went undetected", name, workers)
			}
			if len(rep.Bad) != 1 || rep.Bad[0] != name {
				t.Fatalf("%s (workers=%d): verifier blamed %v", name, workers, rep.Bad)
			}
		}
	}

	// The record itself: flip a bit inside the head root's hex rendering,
	// chosen so the flipped character is still hex — the record then decodes
	// and validates, and only the self-check can catch it. The verifier must
	// blame the record file, never a (perfectly intact) segment.
	off := strings.Index(string(raw), rec.Root())
	if off < 0 {
		t.Fatal("record does not contain its own root rendering")
	}
	bit := -1
	for i, ch := range rec.Root() {
		if (ch >= '0' && ch <= '9') || (ch >= 'b' && ch <= 'e') {
			bit = (off + i) * 8 // low bit keeps the char in the hex alphabet
			break
		}
	}
	if bit < 0 {
		t.Fatal("root has no safely flippable hex character")
	}
	rep, err := provenance.VerifyDir(dir, provenance.VerifyOpts{
		FS: &testkit.CorruptFS{Target: provenance.RecordFile, BitOffset: bit},
	})
	if err == nil {
		t.Fatal("flipped record bit went undetected")
	}
	if len(rep.Bad) != 1 || rep.Bad[0] != provenance.RecordFile {
		t.Fatalf("record flip blamed %v, want only %s", rep.Bad, provenance.RecordFile)
	}
	if !strings.Contains(err.Error(), "tampered") {
		t.Errorf("record flip not reported as record tampering: %v", err)
	}
}
