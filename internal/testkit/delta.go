package testkit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/voter"
)

// WriteDeltaFile synthesizes an append-mostly delta snapshot file against
// the current state of d — the input shape ApplySnapshotDelta is built for —
// and returns its path plus the number of clusters it changes. The delta
// oracle and the delta benchmark both derive their ladders from it, so the
// "changed fraction" means the same thing in both.
//
// fraction > 0 selects round(fraction·clusters) clusters (at least one) and
// emits one mutated copy of each selected cluster's first record: last name
// suffixed with the new date and snapshot_dt set to date, which yields a
// previously unseen hash and thus a new record version. contiguous false
// spaces the selection evenly over first-seen order (worst-case segment
// locality, the oracle's choice), and every seventh unselected cluster
// contributes an unmutated replay of its first record, exercising the
// date-stamp-only (touched, not dirty) path. contiguous true selects one run
// starting a third of the way in with no replay rows (an update batch with
// locality, the benchmark's choice — segment rewrites stay proportional to
// the fraction). date must be a snapshot date the dataset has not seen.
//
// fraction == 0 replays, under the dataset's most recent import date, every
// record whose snapshot trail already ends on that date — a pure no-op file:
// every row decodes to a known hash with its date already stamped.
//
// Everything is a pure function of (d, date, fraction): no randomness.
func WriteDeltaFile(dir string, d *core.Dataset, date string, fraction float64, contiguous bool) (path string, changed int, err error) {
	var recs []voter.Record
	fileDate := date
	ids := d.NCIDs()
	if fraction <= 0 {
		imports := d.Imports()
		if len(imports) == 0 {
			return "", 0, fmt.Errorf("testkit: delta file against an empty dataset")
		}
		fileDate = imports[len(imports)-1].Snapshot
		for _, id := range ids {
			c := d.Cluster(id)
			for i := range c.Records {
				e := &c.Records[i]
				if n := len(e.Snapshots); n > 0 && e.Snapshots[n-1] == fileDate {
					recs = append(recs, reDated(e.Rec, fileDate))
				}
			}
		}
	} else {
		k := int(fraction*float64(len(ids)) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > len(ids) {
			k = len(ids)
		}
		selected := make(map[int]bool, k)
		if contiguous {
			start := len(ids) / 3
			for i := 0; i < k; i++ {
				selected[(start+i)%len(ids)] = true
			}
		} else {
			for i := 0; i < k; i++ {
				selected[i*len(ids)/k] = true
			}
		}
		for i, id := range ids {
			c := d.Cluster(id)
			if len(c.Records) == 0 {
				continue
			}
			if selected[i] {
				r := reDated(c.Records[0].Rec, date)
				r.Values[voter.IdxLastName] += " " + date
				recs = append(recs, r)
				changed++
			} else if !contiguous && i%7 == 0 {
				recs = append(recs, reDated(c.Records[0].Rec, date))
			}
		}
	}
	path, err = voter.WriteSnapshotFile(dir, voter.Snapshot{Date: fileDate, Records: recs})
	return path, changed, err
}

// reDated copies a record with its snapshot date replaced, leaving the
// original untouched.
func reDated(r voter.Record, date string) voter.Record {
	out := r.Clone()
	out.Values[voter.IdxSnapshotDate] = date
	return out
}
