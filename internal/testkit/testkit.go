// Package testkit is the conformance harness of the pipeline: the one
// place the repo's correctness machinery lives instead of being scattered
// as per-package ad-hoc checks.
//
// It has three layers, documented in docs/TESTING.md:
//
//   - Differential oracles (differential.go): a generic runner that pins a
//     parallel implementation to its sequential reference across a worker
//     ladder, result-identical to the bit. The three pipeline oracles —
//     snapshot ingest, pair scoring, docstore persistence — run through it
//     in conformance_test.go; `make conformance` executes them under the
//     race detector.
//
//   - Seeded corpus generators (corpus.go): deterministic voter registers,
//     corrupted duplicate pairs (every internal/corrupt error type),
//     labeled dedup datasets and document stores, shared by every package's
//     tests so fixtures cannot drift apart.
//
//   - Fault injection (faultfs.go): a filesystem wrapper implementing
//     docstore.FS that injects short writes, torn renames, EIO on the Nth
//     operation and dropped (never-synced) writes, so crash safety is
//     exercised against dynamic failures at every operation index, not just
//     statically corrupted fixtures.
//
// Native fuzz targets (the fourth harness layer) live next to the code they
// fuzz — internal/voter, internal/docstore, internal/simil — with seed
// corpora under each package's testdata/fuzz; `make fuzz-smoke` runs them.
package testkit
