package testkit

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// WorkerLadder returns the worker counts every differential oracle runs:
// sequential (the reference degenerate case), the smallest real pool, a
// prime count that never divides the usual chunk sizes evenly, and the
// machine width. Duplicates (e.g. GOMAXPROCS == 2) are removed so subtests
// keep unique names.
func WorkerLadder() []int {
	ladder := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool, len(ladder))
	out := ladder[:0]
	for _, w := range ladder {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// Differential pins a parallel implementation to its sequential reference:
// the Sequential result is computed once, then Parallel runs at every
// worker count of the ladder and each result must match it exactly. T is
// whatever the oracle compares — import stats, precision/recall curves,
// raw file bytes, a docstore fingerprint.
//
// The zero Compare is reflect.DeepEqual; oracles needing bit-level float
// comparison or custom diffs supply their own.
type Differential[T any] struct {
	// Name labels the oracle's subtree of subtests.
	Name string
	// Workers is the ladder to sweep; nil selects WorkerLadder().
	Workers []int
	// Sequential computes the reference result (exactly once per Run).
	Sequential func(tb testing.TB) T
	// Parallel computes the result under test at the given worker count.
	Parallel func(tb testing.TB, workers int) T
	// Compare asserts got (parallel) matches want (sequential); nil
	// selects reflect.DeepEqual with a generic failure message.
	Compare func(tb testing.TB, want, got T)
}

// Run executes the oracle as a named subtest tree: Name/workers=N per
// ladder entry.
func (d Differential[T]) Run(t *testing.T) {
	t.Helper()
	t.Run(d.Name, func(t *testing.T) {
		want := d.Sequential(t)
		workers := d.Workers
		if len(workers) == 0 {
			workers = WorkerLadder()
		}
		for _, w := range workers {
			w := w
			t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
				got := d.Parallel(t, w)
				if d.Compare != nil {
					d.Compare(t, want, got)
					return
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: parallel result at %d workers diverges from sequential reference", d.Name, w)
				}
			})
		}
	})
}
