package testkit_test

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/httpapi"
	"repro/internal/plaus"
	"repro/internal/testkit"
)

// servingResponse is one recorded response: status plus the exact body
// bytes. The serving-conformance contract is byte identity — a snapshot
// built at any worker count must serve exactly what the store-backed
// handlers compute per request, envelope and all.
type servingResponse struct {
	Status int
	Body   string
}

func servingDataset(tb testing.TB) *core.Dataset {
	tb.Helper()
	corpus := testkit.Corpus{Seed: 7}
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, p := range corpus.SnapshotFiles(tb, 120, 3) {
		if _, err := ds.ImportSnapshotFile(p); err != nil {
			tb.Fatalf("import %s: %v", p, err)
		}
	}
	plaus.Update(ds)
	hetero.Update(ds)
	ds.Publish()
	return ds
}

func fetchAll(tb testing.TB, api *httpapi.Server, paths []string) map[string]servingResponse {
	tb.Helper()
	out := make(map[string]servingResponse, len(paths))
	for _, p := range paths {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		out[p] = servingResponse{Status: rec.Code, Body: rec.Body.String()}
	}
	return out
}

// TestConformanceServing pins the snapshot-backed serving mode to the
// store-backed reference: every pinned path — aggregates, filtered
// summaries, record views, 404s — must produce the byte-identical response
// from a snapshot built at any worker count. Both servers publish
// generation 1, so even the envelope's meta.generation and the validators
// agree.
func TestConformanceServing(t *testing.T) {
	ds := servingDataset(t)
	ncids := ds.NCIDs()
	if len(ncids) < 3 {
		t.Fatal("corpus too small")
	}
	paths := []string{
		"/v1/stats",
		"/v1/years",
		"/v1/histogram",
		"/v1/versions",
		"/v1/healthz",
		"/v1/clusters/summary",
		"/v1/clusters/summary?minSize=2",
		"/v1/clusters/summary?minSize=2&maxSize=6",
		"/v1/clusters/summary?minSize=99999",
		"/v1/clusters?score=size&min=2&limit=5",
		"/v1/clusters/" + ncids[0],
		"/v1/records/" + ncids[0],
		"/v1/records/" + ncids[1],
		"/v1/records/" + ncids[2],
		"/v1/records/NOPE",
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	testkit.Differential[map[string]servingResponse]{
		Name: "serving/snapshot-vs-store",
		Sequential: func(tb testing.TB) map[string]servingResponse {
			api := httpapi.New(ds, httpapi.WithLogger(logger),
				httpapi.WithSnapshotServing(false), httpapi.WithResponseCache(-1))
			return fetchAll(tb, api, paths)
		},
		Parallel: func(tb testing.TB, workers int) map[string]servingResponse {
			api := httpapi.New(ds, httpapi.WithLogger(logger),
				httpapi.WithStoreWorkers(workers), httpapi.WithResponseCache(-1))
			return fetchAll(tb, api, paths)
		},
		Compare: func(tb testing.TB, want, got map[string]servingResponse) {
			for _, p := range paths {
				w, g := want[p], got[p]
				if w.Status != g.Status {
					tb.Errorf("%s: status %d (snapshot) vs %d (store)", p, g.Status, w.Status)
					continue
				}
				if w.Body != g.Body {
					tb.Errorf("%s: body diverged\nsnapshot: %s\nstore:    %s", p, g.Body, w.Body)
				}
			}
		},
	}.Run(t)
}
