package testkit_test

import (
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dedup"
	"repro/internal/testkit"
)

// The streaming end-to-end oracle: the fused pipeline —
// blocking.GenerateStream feeding dedup.EvaluateCandidatesStream through a
// bounded channel — pinned to the materialized reference (blocking.Generate
// + EvaluateCandidatesParallel at one worker) over the shared seeded
// corpus, across the worker ladder, under -race (`make stream-race`, part
// of `make conformance` via `make ci`). Compares the quality curves of
// several measures AND the blocking run stats: the streamed path promises
// bit-identity end to end, not just matching best-F1 summaries.

// streamResult is what end-to-end equivalence means: every threshold-sweep
// curve plus the blocking counters.
type streamResult struct {
	Curves map[dedup.Measure]dedup.Curve
	Stats  blocking.Stats
}

var streamMeasures = []dedup.Measure{
	dedup.MeasureMELev,
	dedup.MeasureJaroWinkler,
	dedup.MeasureTrigramJaccard,
}

func TestConformanceStreamingDedup(t *testing.T) {
	corpus := testkit.Corpus{Seed: 53}
	ds := corpus.DedupDataset(t, 110, 4, 0, 180)
	if len(ds.Records) == 0 {
		t.Fatal("seeded corpus produced an empty detection dataset")
	}
	multi, err := blocking.ParsePasses(ds, "last_name+zip_code, soundex(last_name)+county_desc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := blocking.Config{
		Passes:  multi,
		Window:  12,
		Trigram: &blocking.TrigramConfig{Bands: 8, Rows: 3, MaxBucket: 48},
	}
	const steps = 60

	testkit.Differential[streamResult]{
		Name: "streaming-dedup/fused-pipeline",
		Sequential: func(tb testing.TB) streamResult {
			pairs, stats := blocking.Generate(ds, cfg)
			res := streamResult{Curves: map[dedup.Measure]dedup.Curve{}, Stats: stats}
			for _, m := range streamMeasures {
				res.Curves[m] = dedup.EvaluateCandidatesParallel(ds, m, pairs, steps, dedup.ScoreOpts{Workers: 1})
			}
			return res
		},
		Parallel: func(tb testing.TB, workers int) streamResult {
			c := cfg
			c.Workers = workers
			res := streamResult{Curves: map[dedup.Measure]dedup.Curve{}}
			// Odd batch size and a small buffer so batch boundaries never
			// line up with worker chunking.
			sopts := blocking.StreamOpts{BatchSize: 193, Buffer: 2}
			for _, m := range streamMeasures {
				s := blocking.GenerateStream(ds, c, sopts)
				res.Curves[m] = dedup.EvaluateCandidatesStream(ds, m, s.C, steps,
					dedup.ScoreOpts{Workers: workers, Recycle: s.Recycle})
				res.Stats = s.Stats()
			}
			return res
		},
		Compare: func(tb testing.TB, want, got streamResult) {
			for _, m := range streamMeasures {
				if !reflect.DeepEqual(want.Curves[m], got.Curves[m]) {
					tb.Fatalf("streamed %s curve diverges from the materialized reference", m)
				}
			}
			if !reflect.DeepEqual(want.Stats, got.Stats) {
				tb.Fatalf("streamed blocking stats diverge:\n got %+v\nwant %+v", got.Stats, want.Stats)
			}
		},
	}.Run(t)
}
