package testkit_test

import (
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dedup"
	"repro/internal/testkit"
)

// The blocking differential oracle: every parallel blocker — multi-pass
// SNM, trigram banding, and their deduplicated union — pinned to the
// sequential reference blocking.GenerateSeq over the shared seeded corpus,
// across the worker ladder, under -race (`make blocking-race`, part of
// `make conformance` via `make ci`). Compares the full pair set AND the
// run stats: both are contracts of Generate.

// blockingResult is what blocking equivalence means: the exact sorted
// candidate pair set plus every per-pass and bucket counter.
type blockingResult struct {
	Pairs []dedup.Pair
	Stats blocking.Stats
}

func blockingConfigs(ds *dedup.Dataset) map[string]blocking.Config {
	multi, err := blocking.ParsePasses(ds, "last_name+zip_code, first_name+age, soundex(last_name)+county_desc")
	if err != nil {
		panic(err)
	}
	return map[string]blocking.Config{
		"snm-entropy": {Passes: blocking.EntropyPasses(ds, 5), Window: 10},
		"snm-keyed":   {Passes: multi, Window: 10},
		"trigram":     {Trigram: &blocking.TrigramConfig{Bands: 8, Rows: 3}},
		"union": {
			Passes:  multi,
			Window:  10,
			Trigram: &blocking.TrigramConfig{Bands: 8, Rows: 3, MaxBucket: 48},
		},
	}
}

func TestConformanceBlocking(t *testing.T) {
	corpus := testkit.Corpus{Seed: 47}
	ds := corpus.DedupDataset(t, 120, 4, 0, 200)
	if len(ds.Records) == 0 {
		t.Fatal("seeded corpus produced an empty detection dataset")
	}
	for name, cfg := range blockingConfigs(ds) {
		cfg := cfg
		testkit.Differential[blockingResult]{
			Name: "blocking/" + name,
			Sequential: func(tb testing.TB) blockingResult {
				pairs, stats := blocking.GenerateSeq(ds, cfg)
				return blockingResult{pairs, stats}
			},
			Parallel: func(tb testing.TB, workers int) blockingResult {
				c := cfg
				c.Workers = workers
				pairs, stats := blocking.Generate(ds, c)
				return blockingResult{pairs, stats}
			},
			Compare: func(tb testing.TB, want, got blockingResult) {
				if !reflect.DeepEqual(want.Pairs, got.Pairs) {
					tb.Fatalf("parallel candidate set diverges from sequential reference: %d vs %d pairs",
						len(got.Pairs), len(want.Pairs))
				}
				if !reflect.DeepEqual(want.Stats, got.Stats) {
					tb.Fatalf("parallel stats diverge:\n got %+v\nwant %+v", got.Stats, want.Stats)
				}
			},
		}.Run(t)
	}
}

// TestConformanceBlockingLegacyBridge pins the new layer to the legacy
// single-blocker path on the seeded corpus: EntropyPasses through Generate
// must reproduce dedup.SortedNeighborhood exactly, so every result
// produced before this layer existed is still reproducible through it.
func TestConformanceBlockingLegacyBridge(t *testing.T) {
	corpus := testkit.Corpus{Seed: 48}
	ds := corpus.DedupDataset(t, 100, 3, 0, 150)
	legacy := dedup.SortedNeighborhood(ds, dedup.MostUniqueAttrs(ds, 5), 20)
	got, _ := blocking.Generate(ds, blocking.Config{Passes: blocking.EntropyPasses(ds, 5), Window: 20, Workers: 7})
	if !reflect.DeepEqual(legacy, got) {
		t.Fatalf("blocking.Generate over entropy passes diverges from dedup.SortedNeighborhood: %d vs %d pairs",
			len(got), len(legacy))
	}
}
