package testkit_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/docstore"
	"repro/internal/testkit"
)

// The crash-safety sweep: persistence is attacked with every fault kind at
// every mutating-operation index, and after each attempt the store must
// load as the old state, the new state, or fail loudly — never load
// silently mixed data. Atomicity is per collection (each collection's
// manifest rename is its commit point), so the oracle checks collection by
// collection.

// saveOpts pins the layout so the mutating-op sequence is deterministic
// across the counting run and every sweep iteration.
func saveOpts(fs docstore.FS) docstore.SaveOpts {
	return docstore.SaveOpts{Workers: 1, Segments: 4, FS: fs}
}

// stateA is the committed baseline store; stateB is the overwriting save.
func stateA(t *testing.T) *docstore.DB {
	return testkit.Corpus{Seed: 17}.DocDB(t, 300)
}

func stateB(t *testing.T) *docstore.DB {
	db := testkit.Corpus{Seed: 17}.DocDB(t, 300)
	cl := db.Collection("clusters")
	for i := 0; i < 40; i++ {
		if err := cl.Insert(docstore.D("_id", fmt.Sprintf("new%04d", i), "county", "county-3", "score", 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 300; i += 31 {
		cl.Delete(fmt.Sprintf("c%06d", i))
	}
	if err := db.Collection("dataset").Insert(docstore.D("_id", "meta2", "round", 2)); err != nil {
		t.Fatal(err)
	}
	return db
}

// collectionFingerprints captures each collection separately: ordered ids
// plus full documents.
func collectionFingerprints(db *docstore.DB) map[string]any {
	fp := map[string]any{}
	for _, name := range db.CollectionNames() {
		var ids []string
		var docs []docstore.Document
		db.Collection(name).ForEach(func(d docstore.Document) bool {
			ids = append(ids, d["_id"].(string))
			docs = append(docs, d)
			return true
		})
		fp[name] = []any{ids, docs}
	}
	return fp
}

// checkRecovered asserts the loaded store is a per-collection mix of the
// two known-good states and nothing else.
func checkRecovered(t *testing.T, label string, loaded *docstore.DB, fpA, fpB map[string]any) {
	t.Helper()
	got := collectionFingerprints(loaded)
	for name, g := range got {
		if !reflect.DeepEqual(g, fpA[name]) && !reflect.DeepEqual(g, fpB[name]) {
			t.Fatalf("%s: collection %q loaded as neither the old nor the new state", label, name)
		}
	}
	for name := range fpA {
		if _, ok := got[name]; !ok {
			t.Fatalf("%s: collection %q lost", label, name)
		}
	}
}

// roundTripFingerprints computes the two reference states as they look
// after a save/load round trip (Load normalizes JSON numbers, so in-memory
// fingerprints would not compare equal to loaded ones).
func roundTripFingerprints(t *testing.T, db *docstore.DB) map[string]any {
	t.Helper()
	dir := t.TempDir()
	if err := db.SaveParallelOpts(dir, saveOpts(nil)); err != nil {
		t.Fatal(err)
	}
	loaded, err := docstore.LoadParallel(dir)
	if err != nil {
		t.Fatal(err)
	}
	return collectionFingerprints(loaded)
}

// countSaveOps replays the exact sweep scenario (state B saved over a
// committed state A) against a passive FaultFS and returns the number of
// mutating operations the save performs.
func countSaveOps(t *testing.T, a, b *docstore.DB) int {
	t.Helper()
	dir := t.TempDir()
	if err := a.SaveParallelOpts(dir, saveOpts(nil)); err != nil {
		t.Fatal(err)
	}
	counter := &testkit.FaultFS{}
	if err := b.SaveParallelOpts(dir, saveOpts(counter)); err != nil {
		t.Fatal(err)
	}
	if counter.Ops() == 0 {
		t.Fatal("counting run observed no mutating operations")
	}
	return counter.Ops()
}

func TestFaultSweepSaveNeverMixesStates(t *testing.T) {
	a, b := stateA(t), stateB(t)
	fpA, fpB := roundTripFingerprints(t, a), roundTripFingerprints(t, b)
	if reflect.DeepEqual(fpA, fpB) {
		t.Fatal("fixture states are identical — the sweep would prove nothing")
	}
	ops := countSaveOps(t, a, b)

	kinds := []struct {
		name string
		kind testkit.FaultKind
	}{
		{"eio", testkit.FaultEIO},
		{"short-write", testkit.FaultShortWrite},
		{"torn-rename", testkit.FaultTornRename},
	}
	sawOld, sawNew := false, false
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			for failAt := 1; failAt <= ops; failAt++ {
				dir := t.TempDir()
				if err := a.SaveParallelOpts(dir, saveOpts(nil)); err != nil {
					t.Fatal(err)
				}
				ffs := &testkit.FaultFS{Kind: k.kind, FailAt: failAt}
				saveErr := b.SaveParallelOpts(dir, saveOpts(ffs))
				// Post-commit cleanup failures are absorbed by design, so
				// the save may succeed; a reported failure must be ours.
				if saveErr != nil && !errors.Is(saveErr, testkit.ErrInjected) {
					t.Fatalf("failAt=%d: save failed with a non-injected error: %v", failAt, saveErr)
				}
				loaded, loadErr := docstore.LoadParallel(dir)
				if loadErr != nil {
					continue // loud failure is an acceptable outcome
				}
				label := fmt.Sprintf("%s failAt=%d", k.name, failAt)
				checkRecovered(t, label, loaded, fpA, fpB)
				got := collectionFingerprints(loaded)
				sawOld = sawOld || reflect.DeepEqual(got, fpA)
				sawNew = sawNew || reflect.DeepEqual(got, fpB)
			}
		})
	}
	if !sawOld || !sawNew {
		t.Errorf("sweep never observed both pure states (old=%v new=%v) — commit point not exercised", sawOld, sawNew)
	}
}

// TestFaultSweepCrashRecovery drops sync on every suffix of the save's
// mutating operations, simulates power loss, and requires recovery to read
// per-collection old state, new state, or a loud error.
func TestFaultSweepCrashRecovery(t *testing.T) {
	a, b := stateA(t), stateB(t)
	fpA, fpB := roundTripFingerprints(t, a), roundTripFingerprints(t, b)
	ops := countSaveOps(t, a, b)

	for dropAfter := 0; dropAfter < ops; dropAfter++ {
		dir := t.TempDir()
		if err := a.SaveParallelOpts(dir, saveOpts(nil)); err != nil {
			t.Fatal(err)
		}
		ffs := &testkit.FaultFS{DropAfter: dropAfter}
		if err := b.SaveParallelOpts(dir, saveOpts(ffs)); err != nil {
			t.Fatalf("dropAfter=%d: save reported failure before the crash: %v", dropAfter, err)
		}
		ffs.Crash()
		loaded, err := docstore.LoadParallel(dir)
		if err != nil {
			continue // loud failure is an acceptable outcome
		}
		checkRecovered(t, fmt.Sprintf("crash dropAfter=%d", dropAfter), loaded, fpA, fpB)
	}
}

// TestFaultFSSemantics pins the injector's own contract.
func TestFaultFSSemantics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	t.Run("eio-at-n", func(t *testing.T) {
		ffs := &testkit.FaultFS{Kind: testkit.FaultEIO, FailAt: 2}
		if err := ffs.WriteFile(path, []byte("one"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ffs.WriteFile(path, []byte("two"), 0o644); !errors.Is(err, testkit.ErrInjected) {
			t.Fatalf("second op: %v, want injected fault", err)
		}
		if data, _ := os.ReadFile(path); string(data) != "one" {
			t.Fatalf("EIO op took effect: %q", data)
		}
		if ffs.Ops() != 2 {
			t.Fatalf("ops = %d, want 2", ffs.Ops())
		}
	})

	t.Run("short-write", func(t *testing.T) {
		ffs := &testkit.FaultFS{Kind: testkit.FaultShortWrite, FailAt: 1}
		if err := ffs.WriteFile(path, []byte("abcdef"), 0o644); !errors.Is(err, testkit.ErrInjected) {
			t.Fatalf("got %v, want injected fault", err)
		}
		if data, _ := os.ReadFile(path); string(data) != "abc" {
			t.Fatalf("short write left %q, want the half prefix", data)
		}
	})

	t.Run("torn-rename", func(t *testing.T) {
		src, dst := filepath.Join(dir, "src"), filepath.Join(dir, "dst")
		if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		ffs := &testkit.FaultFS{Kind: testkit.FaultTornRename, FailAt: 1}
		if err := ffs.Rename(src, dst); !errors.Is(err, testkit.ErrInjected) {
			t.Fatalf("got %v, want injected fault", err)
		}
		if _, err := os.Stat(dst); err != nil {
			t.Fatal("torn rename must still perform the rename")
		}
	})

	t.Run("crash-rolls-back-unsynced", func(t *testing.T) {
		d := t.TempDir()
		synced, volatile := filepath.Join(d, "synced"), filepath.Join(d, "volatile")
		ffs := &testkit.FaultFS{DropAfter: 1}
		if err := ffs.WriteFile(synced, []byte("durable"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ffs.WriteFile(volatile, []byte("going-away"), 0o644); err != nil {
			t.Fatal(err)
		}
		ffs.Crash()
		if data, _ := os.ReadFile(synced); string(data) != "durable" {
			t.Fatalf("synced file lost: %q", data)
		}
		if data, _ := os.ReadFile(volatile); string(data) != "going" {
			t.Fatalf("unsynced created file = %q, want torn prefix", data)
		}
		if err := ffs.WriteFile(synced, []byte("post"), 0o644); !errors.Is(err, testkit.ErrInjected) {
			t.Fatalf("op after crash: %v, want failure", err)
		}
	})
}
