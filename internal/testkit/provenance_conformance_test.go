package testkit_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/provenance"
	"repro/internal/testkit"
)

// TestConformanceProvenance is the differential oracle of the provenance
// chain: a store grown by delta application with dirty-segment saves must
// carry a provenance record byte-identical to the one a from-scratch full
// reimport stamps — same Merkle roots, same chain links, same head hash —
// at every worker count and changed fraction. That is the property that
// makes the chain meaningful: the record commits to *what* the corpus is,
// never to *how* it was saved. Both paths must also pass full verification,
// and the chain must have grown one link per save (extended, not rewritten).
// make provenance-race runs this under the race detector.

// provResult is what provenance equivalence means.
type provResult struct {
	RecordBytes []byte // provenance.json as stamped
	Root        string
	Head        string
	Links       int
}

// oracleMeta derives the stamp metadata both paths use — a pure function of
// the dataset, so the paths cannot disagree through it.
func oracleMeta(d *core.Dataset) provenance.Meta {
	return provenance.Meta{Source: "oracle", Mode: d.Mode.String(), Lineage: d.SnapshotLineage()}
}

// stampStore saves the dataset with the stable stride layout and a
// provenance stamp, returning the record.
func stampStore(tb testing.TB, d *core.Dataset, dir string, opts docstore.SaveOpts, obs provenance.Observer) *provenance.Record {
	tb.Helper()
	opts.Stride = deltaStride
	rec, err := provenance.Save(d.ToDocDB(), dir, opts, provenance.StampOpts{Meta: oracleMeta(d), Observer: obs})
	if err != nil {
		tb.Fatal(err)
	}
	return rec
}

// provResultOf verifies the stamped store and packages the comparison
// fields.
func provResultOf(tb testing.TB, dir string, rec *provenance.Record) provResult {
	tb.Helper()
	rep, err := provenance.VerifyDir(dir, provenance.VerifyOpts{ExpectRoot: rec.HeadHash()})
	if err != nil {
		tb.Fatalf("stamped store failed verification: %v", err)
	}
	if rep.Leaves != rec.Head().Leaves {
		tb.Errorf("verification re-derived %d leaves, record promises %d", rep.Leaves, rec.Head().Leaves)
	}
	raw, err := docstore.OSFS.ReadFile(provenance.RecordPath(dir))
	if err != nil {
		tb.Fatal(err)
	}
	return provResult{RecordBytes: raw, Root: rec.Root(), Head: rec.HeadHash(), Links: len(rec.Chain)}
}

func TestConformanceProvenance(t *testing.T) {
	corpus := testkit.Corpus{Seed: 17}
	basePaths := corpus.SnapshotFiles(t, 140, 3)

	proto := core.NewDataset(core.RemoveTrimmed)
	for _, p := range basePaths {
		if _, err := proto.ImportSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
		proto.Publish()
	}
	rounds := len(basePaths) + 1

	// The 1% delta is a contiguous update batch (good segment locality, so
	// digest carryover must engage); the larger fractions use worst-case
	// spread with replay rows, where every segment legitimately rewrites.
	for _, tc := range []struct {
		fraction   float64
		contiguous bool
	}{{0.01, true}, {0.25, false}, {1.0, false}} {
		fraction, contiguous := tc.fraction, tc.contiguous
		deltaPath, changed, err := testkit.WriteDeltaFile(t.TempDir(), proto, "2097-01-01", fraction, contiguous)
		if err != nil {
			t.Fatal(err)
		}
		if changed < 1 {
			t.Fatalf("fraction %g: delta file changes no clusters", fraction)
		}

		testkit.Differential[provResult]{
			Name: fmt.Sprintf("provenance/frac=%v", fraction),
			Sequential: func(tb testing.TB) provResult {
				// Reference: full reimport, full rewrite plus a fresh stamp
				// extending the chain after every round.
				d := core.NewDataset(core.RemoveTrimmed)
				dir := tb.TempDir()
				var rec *provenance.Record
				for _, p := range append(append([]string{}, basePaths...), deltaPath) {
					if _, err := d.ImportSnapshotFile(p); err != nil {
						tb.Fatal(err)
					}
					d.Publish()
					scoreRound(d, 1)
					rec = stampStore(tb, d, dir, docstore.SaveOpts{}, nil)
				}
				return provResultOf(tb, dir, rec)
			},
			Parallel: func(tb testing.TB, workers int) provResult {
				// Under test: parallel base rounds, then delta apply with a
				// dirty-segment save whose stamp reuses unchanged leaf
				// digests.
				d := core.NewDataset(core.RemoveTrimmed)
				dir := tb.TempDir()
				for _, p := range basePaths {
					if _, err := d.ImportSnapshotFileParallelOpts(p, core.IngestOptions{Workers: workers, ChunkBytes: 1 << 12}); err != nil {
						tb.Fatal(err)
					}
					d.Publish()
					scoreRound(d, workers)
					stampStore(tb, d, dir, docstore.SaveOpts{Workers: workers}, nil)
				}
				ix := core.BuildFingerprintIndex(d)
				dl, err := d.ApplySnapshotDelta(deltaPath, core.DeltaOptions{
					Workers: workers, ChunkBytes: 1 << 12, Index: ix,
				})
				if err != nil {
					tb.Fatalf("delta apply: %v", err)
				}
				d.Publish()
				plaus.UpdateDelta(d, dl, workers)
				hetero.UpdateDelta(d, dl, workers)
				obs := stampCounters{}
				rec := stampStore(tb, d, dir, docstore.SaveOpts{Workers: workers, Dirty: dl.DirtyIDs()}, obs)
				// The dirty save must account for every leaf, split between
				// fresh hashes and carried-over digests; the contiguous 1%
				// batch must actually carry some over (the fast path under
				// test), while the spread deltas replay a record into every
				// segment and legitimately rehash them all.
				if total := obs["provenance_leaves_hashed"] + obs["provenance_leaves_reused"]; total != int64(rec.Head().Leaves) {
					tb.Errorf("stamp accounted %d leaves, head promises %d", total, rec.Head().Leaves)
				}
				if contiguous && obs["provenance_leaves_reused"] == 0 {
					tb.Errorf("fraction %g dirty save carried no leaf digests over", fraction)
				}
				return provResultOf(tb, dir, rec)
			},
			Compare: func(tb testing.TB, want, got provResult) {
				if got.Links != rounds || want.Links != rounds {
					tb.Errorf("chain has %d/%d links, want %d (one per save)", got.Links, want.Links, rounds)
				}
				if got.Root != want.Root {
					tb.Errorf("corpus root diverges: %s vs %s", got.Root, want.Root)
				}
				if got.Head != want.Head {
					tb.Errorf("head hash diverges: %s vs %s", got.Head, want.Head)
				}
				if !bytes.Equal(got.RecordBytes, want.RecordBytes) {
					tb.Error("provenance record bytes diverge from full reimport")
				}
			},
		}.Run(t)
	}
}

// stampCounters collects provenance counters for assertions.
type stampCounters map[string]int64

func (c stampCounters) AddN(name string, n int64) { c[name] += n }
