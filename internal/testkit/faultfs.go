package testkit

import (
	"errors"
	"io/fs"
	"os"
	"sync"

	"repro/internal/docstore"
)

// ErrInjected is the error every injected fault returns; tests assert on
// it to tell injected failures from genuine ones.
var ErrInjected = errors.New("testkit: injected I/O fault")

// FaultKind selects what happens when the fault counter reaches FailAt.
type FaultKind int

const (
	// FaultEIO fails the op with ErrInjected and no filesystem effect.
	FaultEIO FaultKind = iota
	// FaultShortWrite makes a WriteFile persist only a prefix of the data
	// before returning ErrInjected; other op types degrade to FaultEIO.
	FaultShortWrite
	// FaultTornRename makes a Rename perform the rename and still return
	// ErrInjected — the lying-filesystem case (NFS, some fuse layers)
	// where the caller's cleanup runs although the op took effect. Other
	// op types degrade to FaultEIO.
	FaultTornRename
)

// FaultFS wraps docstore.OSFS with deterministic fault injection. Mutating
// operations (MkdirAll, WriteFile, Rename, Remove) are counted; the op
// whose 1-based index equals FailAt fails per Kind. Ops with index greater
// than DropAfter (when > 0) take effect but are journaled as unsynced —
// Crash() then simulates power loss: unsynced renames and removes are
// rolled back and unsynced file writes survive only as a torn prefix, the
// page-cache state an fsync would have flushed. Reads always pass through.
//
// The zero value injects nothing and just counts — run a healthy workload
// once, read Ops(), then sweep FailAt over [1, Ops()].
type FaultFS struct {
	// Kind selects the failure behavior at FailAt.
	Kind FaultKind
	// FailAt is the 1-based mutating-op index that fails; 0 disables.
	FailAt int
	// DropAfter marks mutating ops with index > DropAfter unsynced;
	// 0 disables the sync-drop model.
	DropAfter int

	mu      sync.Mutex
	ops     int
	journal []func()
	crashed bool
}

// Ops returns how many mutating operations have been observed.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crash simulates power loss: every journaled unsynced effect is undone or
// torn (newest first), and all subsequent operations fail. Recovery reads
// the directory through a fresh filesystem, as a restarted process would.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	for i := len(f.journal) - 1; i >= 0; i-- {
		f.journal[i]()
	}
	f.journal = nil
}

// step accounts one mutating op and reports whether it must fail outright.
func (f *FaultFS) step() (fail, unsynced bool) {
	if f.crashed {
		return true, false
	}
	f.ops++
	return f.FailAt > 0 && f.ops == f.FailAt, f.DropAfter > 0 && f.ops > f.DropAfter
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail, _ := f.step()
	if fail {
		return ErrInjected
	}
	// Unsynced directory creation is not journaled: an empty surviving
	// directory is indistinguishable from a pre-existing one to the store.
	return docstore.OSFS.MkdirAll(path, perm)
}

func (f *FaultFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail, unsynced := f.step()
	if fail {
		if f.Kind == FaultShortWrite {
			docstore.OSFS.WriteFile(path, data[:len(data)/2], perm)
		}
		return ErrInjected
	}
	if unsynced {
		prev, err := docstore.OSFS.ReadFile(path)
		existed := err == nil
		f.journal = append(f.journal, func() {
			if existed {
				// The old pages may have been flushed before the write;
				// losing the write restores them.
				docstore.OSFS.WriteFile(path, prev, perm)
			} else {
				// A created-but-unsynced file survives a crash torn: the
				// inode exists, only part of the data reached the disk.
				docstore.OSFS.WriteFile(path, data[:len(data)/2], perm)
			}
		})
	}
	return docstore.OSFS.WriteFile(path, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail, unsynced := f.step()
	if fail {
		if f.Kind == FaultTornRename {
			docstore.OSFS.Rename(oldpath, newpath)
		}
		return ErrInjected
	}
	if unsynced {
		prevTarget, err := docstore.OSFS.ReadFile(newpath)
		hadTarget := err == nil
		f.journal = append(f.journal, func() {
			docstore.OSFS.Rename(newpath, oldpath)
			if hadTarget {
				docstore.OSFS.WriteFile(newpath, prevTarget, 0o644)
			}
		})
	}
	return docstore.OSFS.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail, unsynced := f.step()
	if fail {
		return ErrInjected
	}
	if unsynced {
		if prev, err := docstore.OSFS.ReadFile(path); err == nil {
			f.journal = append(f.journal, func() {
				docstore.OSFS.WriteFile(path, prev, 0o644)
			})
		}
	}
	return docstore.OSFS.Remove(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrInjected
	}
	return docstore.OSFS.ReadFile(path)
}

func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrInjected
	}
	return docstore.OSFS.ReadDir(path)
}

var _ docstore.FS = (*FaultFS)(nil)
