package testkit_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun is the smoke test of every example program: each
// must build and run to completion. Examples are documentation that
// executes — this is what keeps them from rotting as the APIs they
// demonstrate move.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds and runs binaries")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatalf("reading examples directory: %v", err)
	}

	binDir := t.TempDir()
	build := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./examples/...")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}

	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			if _, err := os.Stat(bin); err != nil {
				t.Fatalf("example %s built no binary: %v", name, err)
			}
			start := time.Now()
			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // examples must not depend on their CWD
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %v: %v\n%s", name, time.Since(start), err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing — examples are narrated demos", name)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
