package testkit

import (
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/docstore"
)

// CorruptFS wraps docstore.OSFS with deterministic read-side corruption: a
// ReadFile of the target file (matched by base name) returns the real bytes
// with exactly one bit flipped. Nothing on disk changes, so one store can be
// swept file by file — the single-bit-flip model a provenance verifier must
// catch and pinpoint, complementing FaultFS's write-side faults. All other
// operations and all other files pass through untouched.
type CorruptFS struct {
	// Target is the base name of the file whose reads are corrupted.
	Target string
	// BitOffset selects which bit to flip, counted across the whole file;
	// it wraps modulo the file size, so any value corrupts any non-empty
	// file.
	BitOffset int
}

func (c *CorruptFS) ReadFile(path string) ([]byte, error) {
	data, err := docstore.OSFS.ReadFile(path)
	if err != nil || filepath.Base(path) != c.Target || len(data) == 0 {
		return data, err
	}
	bit := c.BitOffset % (len(data) * 8)
	flipped := append([]byte{}, data...)
	flipped[bit/8] ^= 1 << (bit % 8)
	return flipped, nil
}

func (c *CorruptFS) MkdirAll(path string, perm fs.FileMode) error {
	return docstore.OSFS.MkdirAll(path, perm)
}
func (c *CorruptFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return docstore.OSFS.WriteFile(path, data, perm)
}
func (c *CorruptFS) Rename(oldpath, newpath string) error {
	return docstore.OSFS.Rename(oldpath, newpath)
}
func (c *CorruptFS) Remove(path string) error { return docstore.OSFS.Remove(path) }
func (c *CorruptFS) ReadDir(path string) ([]os.DirEntry, error) {
	return docstore.OSFS.ReadDir(path)
}

var _ docstore.FS = (*CorruptFS)(nil)
