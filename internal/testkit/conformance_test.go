package testkit_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/testkit"
)

// This file is the unified conformance suite: the three pipeline stages —
// snapshot ingest, pair scoring, docstore persistence — each run through
// the same testkit.Differential runner against the same seeded corpus.
// `make conformance` executes it under the race detector.

// ingestResult is what ingest equivalence means: identical per-file import
// statistics and an identical dataset (clusters, order, hashes, derived
// tables — reflect.DeepEqual sees every unexported field).
type ingestResult struct {
	Stats   []core.ImportStats
	Dataset *core.Dataset
}

func TestConformanceIngest(t *testing.T) {
	corpus := testkit.Corpus{Seed: 42}
	paths := corpus.SnapshotFiles(t, 150, 4)
	for _, mode := range []core.RemovalMode{core.RemoveNone, core.RemoveTrimmed} {
		mode := mode
		testkit.Differential[ingestResult]{
			Name: "ingest/" + mode.String(),
			Sequential: func(tb testing.TB) ingestResult {
				d := core.NewDataset(mode)
				var stats []core.ImportStats
				for _, p := range paths {
					st, err := d.ImportSnapshotFile(p)
					if err != nil {
						tb.Fatalf("sequential import %s: %v", p, err)
					}
					stats = append(stats, st)
				}
				d.Publish()
				return ingestResult{stats, d}
			},
			Parallel: func(tb testing.TB, workers int) ingestResult {
				d := core.NewDataset(mode)
				var stats []core.ImportStats
				for _, p := range paths {
					// The tiny chunk size forces many blocks per file so
					// reordering and shard routing are actually exercised.
					st, err := d.ImportSnapshotFileParallelOpts(p, core.IngestOptions{Workers: workers, ChunkBytes: 1 << 12})
					if err != nil {
						tb.Fatalf("parallel import %s: %v", p, err)
					}
					stats = append(stats, st)
				}
				d.Publish()
				return ingestResult{stats, d}
			},
		}.Run(t)
	}
}

// requireCurvesIdentical compares evaluation curves at float-bit level: the
// sequential-vs-parallel contract is exact equality, not tolerance.
func requireCurvesIdentical(tb testing.TB, want, got dedup.Curve) {
	tb.Helper()
	if got.Dataset != want.Dataset || got.Measure != want.Measure || len(got.Points) != len(want.Points) {
		tb.Fatalf("curve shape differs: %s/%s %d points vs %s/%s %d points",
			got.Dataset, got.Measure, len(got.Points), want.Dataset, want.Measure, len(want.Points))
	}
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		for _, pair := range [][2]float64{
			{w.Threshold, g.Threshold}, {w.Precision, g.Precision}, {w.Recall, g.Recall}, {w.F1, g.F1},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				tb.Fatalf("curve %s point %d differs: %+v vs %+v", want.Measure, i, g, w)
			}
		}
	}
}

func TestConformanceScoringCurves(t *testing.T) {
	corpus := testkit.Corpus{Seed: 7}
	ds := corpus.DedupDataset(t, 120, 3, 80, 40)
	if ds.NumRecords() == 0 {
		t.Fatal("corpus produced an empty dedup dataset")
	}
	candidates := dedup.SortedNeighborhood(ds, dedup.MostUniqueAttrs(ds, 3), 20)
	for _, m := range dedup.Measures {
		m := m
		testkit.Differential[dedup.Curve]{
			Name: "score/" + string(m),
			Sequential: func(tb testing.TB) dedup.Curve {
				return dedup.EvaluateCandidates(ds, m, candidates, 50)
			},
			Parallel: func(tb testing.TB, workers int) dedup.Curve {
				return dedup.EvaluateCandidatesParallel(ds, m, candidates, 50, dedup.ScoreOpts{Workers: workers})
			},
			Compare: func(tb testing.TB, want, got dedup.Curve) {
				requireCurvesIdentical(tb, want, got)
			},
		}.Run(t)
	}
}

// scoreFingerprint extracts every stored pair score of one kind, keyed by
// cluster and pair, so two datasets can be compared after UpdateScores.
func scoreFingerprint(d *core.Dataset, kind string) map[string]float64 {
	fp := map[string]float64{}
	for _, id := range d.NCIDs() {
		c := d.Cluster(id)
		for i := 1; i < len(c.Records); i++ {
			for j := 0; j < i; j++ {
				if s, ok := c.PairScore(kind, i, j); ok {
					fp[fmt.Sprintf("%s/%d/%d", id, i, j)] = s
				}
			}
		}
	}
	return fp
}

func TestConformanceClusterScoring(t *testing.T) {
	corpus := testkit.Corpus{Seed: 11}
	kinds := []struct {
		kind    string
		factory func(d *core.Dataset) func() core.PairScorer
	}{
		{core.KindPlausibility, func(*core.Dataset) func() core.PairScorer {
			return plaus.ScorerFactory()
		}},
		{core.KindHeteroPerson, func(d *core.Dataset) func() core.PairScorer {
			cols := hetero.PersonColumns()
			return hetero.NewScorer(cols, hetero.DatasetWeights(d, cols)).CorePairScorerFactory()
		}},
	}
	for _, k := range kinds {
		k := k
		testkit.Differential[map[string]float64]{
			Name: "update-scores/" + k.kind,
			Sequential: func(tb testing.TB) map[string]float64 {
				d := corpus.Dataset(tb, 100, 3)
				d.UpdateScores(k.kind, k.factory(d)())
				return scoreFingerprint(d, k.kind)
			},
			Parallel: func(tb testing.TB, workers int) map[string]float64 {
				d := corpus.Dataset(tb, 100, 3)
				d.UpdateScoresParallelFactory(k.kind, k.factory(d), workers)
				return scoreFingerprint(d, k.kind)
			},
			Compare: func(tb testing.TB, want, got map[string]float64) {
				if len(want) == 0 {
					tb.Fatal("sequential scoring stored no pair scores — fixture too small")
				}
				if len(got) != len(want) {
					tb.Fatalf("stored %d pair scores, want %d", len(got), len(want))
				}
				for key, w := range want {
					g, ok := got[key]
					if !ok || math.Float64bits(g) != math.Float64bits(w) {
						tb.Fatalf("pair %s: parallel %v (present=%v) vs sequential %v", key, g, ok, w)
					}
				}
			},
		}.Run(t)
	}
}

// dirBytes reads every regular file of a directory into a name → content
// map — the byte-identity fingerprint of a persisted store.
func dirBytes(tb testing.TB, dir string) map[string][]byte {
	tb.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func TestConformanceDocstoreSaveBytes(t *testing.T) {
	corpus := testkit.Corpus{Seed: 3}
	db := corpus.DocDB(t, 400)
	save := func(tb testing.TB, workers int) map[string][]byte {
		dir := tb.TempDir()
		if err := db.SaveParallelOpts(dir, docstore.SaveOpts{Workers: workers, Segments: 5}); err != nil {
			tb.Fatalf("save with %d workers: %v", workers, err)
		}
		return dirBytes(tb, dir)
	}
	testkit.Differential[map[string][]byte]{
		Name: "docstore/save-bytes",
		Sequential: func(tb testing.TB) map[string][]byte {
			return save(tb, 1)
		},
		Parallel: func(tb testing.TB, workers int) map[string][]byte {
			return save(tb, workers)
		},
	}.Run(t)
}

func TestConformanceDocstoreRoundTrip(t *testing.T) {
	corpus := testkit.Corpus{Seed: 5}
	db := corpus.DocDB(t, 400)
	testkit.Differential[map[string]any]{
		Name: "docstore/round-trip",
		Sequential: func(tb testing.TB) map[string]any {
			// The flat single-file format is the reference persistence path.
			dir := tb.TempDir()
			if err := db.Save(dir); err != nil {
				tb.Fatal(err)
			}
			loaded, err := docstore.Load(dir)
			if err != nil {
				tb.Fatal(err)
			}
			return testkit.DocDBFingerprint(loaded)
		},
		Parallel: func(tb testing.TB, workers int) map[string]any {
			dir := tb.TempDir()
			if err := db.SaveParallelOpts(dir, docstore.SaveOpts{Workers: workers}); err != nil {
				tb.Fatal(err)
			}
			loaded, err := docstore.LoadParallelOpts(dir, docstore.LoadOpts{Workers: workers})
			if err != nil {
				tb.Fatal(err)
			}
			return testkit.DocDBFingerprint(loaded)
		},
	}.Run(t)
}

func TestConformanceDatasetDocDB(t *testing.T) {
	corpus := testkit.Corpus{Seed: 13}
	db := corpus.Dataset(t, 100, 3).ToDocDB()
	testkit.Differential[*core.Dataset]{
		Name: "docstore/from-docdb",
		Sequential: func(tb testing.TB) *core.Dataset {
			d, err := core.FromDocDB(db)
			if err != nil {
				tb.Fatal(err)
			}
			return d
		},
		Parallel: func(tb testing.TB, workers int) *core.Dataset {
			d, err := core.FromDocDBParallel(db, workers)
			if err != nil {
				tb.Fatal(err)
			}
			return d
		},
		Compare: func(tb testing.TB, want, got *core.Dataset) {
			if !reflect.DeepEqual(want, got) {
				tb.Fatal("FromDocDBParallel dataset diverges from FromDocDB")
			}
		},
	}.Run(t)
}
