package testkit

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/custom"
	"repro/internal/dedup"
	"repro/internal/docstore"
	"repro/internal/synth"
	"repro/internal/voter"
)

// Corpus is the shared seeded fixture factory: every generator is a pure
// function of the seed and its size arguments, so two tests (or two
// processes) asking for the same corpus get byte-identical data. Tests
// that need distinct data vary the seed, not the generator.
type Corpus struct {
	Seed int64
}

// Config returns the register-simulator configuration behind Snapshots and
// SnapshotFiles: a small population over the given number of snapshot
// dates with high churn (so clusters grow fast at test scale) and heavy
// entry errors including every paper error type — nicknames too, which the
// calibrated defaults leave off.
func (c Corpus) Config(voters, snapshots int) synth.Config {
	cfg := synth.DefaultConfig(c.Seed, voters)
	cfg.Snapshots = synth.Calendar(2008, snapshots)[:snapshots]
	cfg.ReRegisterRate = 0.5
	cfg.MoveRate = 0.15
	cfg.MarryRate = 0.05
	errs := corrupt.Heavy()
	errs.Nickname = 0.08
	cfg.Errors = errs
	return cfg
}

// Snapshots generates the corpus register as in-memory snapshots.
func (c Corpus) Snapshots(voters, snapshots int) []voter.Snapshot {
	return synth.Generate(c.Config(voters, snapshots))
}

// SnapshotFiles writes the corpus register into a fresh temp directory as
// canonical TSV snapshot files and returns their paths in snapshot order.
func (c Corpus) SnapshotFiles(tb testing.TB, voters, snapshots int) []string {
	tb.Helper()
	paths, err := synth.WriteAll(c.Config(voters, snapshots), tb.TempDir())
	if err != nil {
		tb.Fatalf("testkit: writing corpus snapshots: %v", err)
	}
	return paths
}

// Dataset imports the corpus register sequentially (the reference path)
// into a published dataset. Every cluster mixes clean and corrupted rows
// of the same voter, so it exercises scoring, customization and error
// profiling alike.
func (c Corpus) Dataset(tb testing.TB, voters, snapshots int) *core.Dataset {
	tb.Helper()
	d := core.NewDataset(core.RemoveNone)
	for _, snap := range c.Snapshots(voters, snapshots) {
		d.ImportSnapshot(snap)
	}
	d.Publish()
	return d
}

// DedupDataset derives a labeled detection dataset from the corpus via the
// paper's customization recipe (the NC1 clean setting over sample sampled
// clusters, keeping the top largest).
func (c Corpus) DedupDataset(tb testing.TB, voters, snapshots, sample, top int) *dedup.Dataset {
	tb.Helper()
	return custom.Build(c.Dataset(tb, voters, snapshots), custom.NC1Config(c.Seed, sample, top))
}

// DocDB builds a document store exercising the shapes persistence has to
// survive: two collections, hash and ordered indexes, nested documents and
// arrays, and deletions (nil slots must not shift document order through a
// save/load round trip). Contents depend only on the corpus seed and docs.
func (c Corpus) DocDB(tb testing.TB, docs int) *docstore.DB {
	tb.Helper()
	db := docstore.NewDB()
	cl := db.Collection("clusters")
	cl.CreateIndex("county")
	cl.CreateOrderedIndex("score")
	for i := 0; i < docs; i++ {
		d := docstore.D(
			"_id", fmt.Sprintf("c%06d", i),
			"county", fmt.Sprintf("county-%d", (int64(i)+c.Seed)%17),
			"score", float64((int64(i)*7+c.Seed)%101)/100,
			"records", []any{
				docstore.D("name", fmt.Sprintf("n%d", i), "age", i%97),
				docstore.D("name", "x", "tags", []any{"a", "b"}),
			},
		)
		if err := cl.Insert(d); err != nil {
			tb.Fatalf("testkit: inserting corpus doc: %v", err)
		}
	}
	for i := 0; i < docs; i += 13 {
		cl.Delete(fmt.Sprintf("c%06d", i))
	}
	meta := db.Collection("dataset")
	if err := meta.Insert(docstore.D("_id", "meta", "name", "nc", "seed", c.Seed)); err != nil {
		tb.Fatalf("testkit: inserting corpus meta doc: %v", err)
	}
	return db
}

// DocDBFingerprint captures everything store equivalence means: per
// collection the ordered _id sequence and full documents, plus the answers
// the indexes serve. Two stores with equal fingerprints are
// indistinguishable to every docstore consumer in the pipeline.
func DocDBFingerprint(db *docstore.DB) map[string]any {
	fp := map[string]any{}
	for _, name := range db.CollectionNames() {
		col := db.Collection(name)
		var ids []string
		var docs []docstore.Document
		col.ForEach(func(d docstore.Document) bool {
			ids = append(ids, d["_id"].(string))
			docs = append(docs, d)
			return true
		})
		fp[name+"/ids"] = ids
		fp[name+"/docs"] = docs
	}
	cl := db.Collection("clusters")
	for i := 0; i < 17; i++ {
		fp[fmt.Sprintf("eq/%d", i)] = cl.FindEq("county", fmt.Sprintf("county-%d", i))
	}
	fp["range"] = cl.FindRange("score", 0.25, 0.75)
	return fp
}
