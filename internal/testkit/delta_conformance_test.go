package testkit_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/testkit"
)

// TestConformanceDelta is the tentpole oracle: a dataset grown by
// ApplySnapshotDelta — with dirty-cluster rescoring and a dirty-segment save
// — must be indistinguishable from a from-scratch full reimport that scores
// every round and rewrites the whole store. "Indistinguishable" is literal:
// reflect.DeepEqual on the datasets (clusters, order, hashes, similarity
// maps, version metadata) and byte equality of every persisted file. The
// sweep covers changed fractions {0%, 1%, 25%, 100%} at every worker-ladder
// count; make delta-race runs it under the race detector.

// deltaStride keeps segments small enough that the corpus spans many of
// them, so dirty-segment reuse is actually exercised rather than collapsing
// to one always-dirty segment.
const deltaStride = 32

// deltaResult is what delta equivalence means.
type deltaResult struct {
	Dataset *core.Dataset
	Store   map[string][]byte
}

// scoreRound brings the dataset's three standard score kinds up to date —
// the full-scope pass used after base imports and by the reference path.
func scoreRound(d *core.Dataset, workers int) {
	plaus.UpdateParallel(d, workers)
	hetero.UpdateParallel(d, workers)
}

// saveStore persists the dataset with the stable stride layout and returns
// the directory's bytes.
func saveStore(tb testing.TB, d *core.Dataset, dir string, opts docstore.SaveOpts) map[string][]byte {
	tb.Helper()
	opts.Stride = deltaStride
	if err := d.ToDocDB().SaveParallelOpts(dir, opts); err != nil {
		tb.Fatal(err)
	}
	return dirBytes(tb, dir)
}

func TestConformanceDelta(t *testing.T) {
	corpus := testkit.Corpus{Seed: 17}
	basePaths := corpus.SnapshotFiles(t, 140, 3)

	// Prototype base dataset, used only to synthesize the delta files.
	proto := core.NewDataset(core.RemoveTrimmed)
	for _, p := range basePaths {
		if _, err := proto.ImportSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
		proto.Publish()
	}

	for _, fraction := range []float64{0, 0.01, 0.25, 1.0} {
		fraction := fraction
		deltaPath, changed, err := testkit.WriteDeltaFile(t.TempDir(), proto, "2097-01-01", fraction, false)
		if err != nil {
			t.Fatal(err)
		}
		if fraction > 0 && changed < 1 {
			t.Fatalf("fraction %g: delta file changes no clusters", fraction)
		}

		testkit.Differential[deltaResult]{
			Name: fmt.Sprintf("delta/frac=%v", fraction),
			Sequential: func(tb testing.TB) deltaResult {
				// Reference: full reimport of base files plus the delta file
				// through the standard machinery, scoring after every round,
				// full store rewrite at the end of each round.
				d := core.NewDataset(core.RemoveTrimmed)
				dir := tb.TempDir()
				for _, p := range append(append([]string{}, basePaths...), deltaPath) {
					if _, err := d.ImportSnapshotFile(p); err != nil {
						tb.Fatal(err)
					}
					d.Publish()
					scoreRound(d, 1)
					saveStore(tb, d, dir, docstore.SaveOpts{})
				}
				return deltaResult{d, dirBytes(tb, dir)}
			},
			Parallel: func(tb testing.TB, workers int) deltaResult {
				// Under test: base rounds through the parallel machinery,
				// then the delta round — ApplySnapshotDelta, dirty-cluster
				// rescoring, dirty-segment save.
				d := core.NewDataset(core.RemoveTrimmed)
				dir := tb.TempDir()
				for _, p := range basePaths {
					if _, err := d.ImportSnapshotFileParallelOpts(p, core.IngestOptions{Workers: workers, ChunkBytes: 1 << 12}); err != nil {
						tb.Fatal(err)
					}
					d.Publish()
					scoreRound(d, workers)
					saveStore(tb, d, dir, docstore.SaveOpts{Workers: workers})
				}
				ix := core.BuildFingerprintIndex(d)
				dl, err := d.ApplySnapshotDelta(deltaPath, core.DeltaOptions{
					Workers: workers, ChunkBytes: 1 << 12, Index: ix,
				})
				if err != nil {
					tb.Fatalf("delta apply: %v", err)
				}
				d.Publish()
				plaus.UpdateDelta(d, dl, workers)
				hetero.UpdateDelta(d, dl, workers)
				saveStore(tb, d, dir, docstore.SaveOpts{Workers: workers, Dirty: dl.DirtyIDs()})
				if fraction > 0 && len(dl.Dirty()) != changed {
					tb.Errorf("delta marked %d clusters dirty, file changed %d", len(dl.Dirty()), changed)
				}
				if err := ix.Verify(d); err != nil {
					tb.Errorf("fingerprint index stale after apply: %v", err)
				}
				return deltaResult{d, dirBytes(tb, dir)}
			},
			Compare: func(tb testing.TB, want, got deltaResult) {
				if !reflect.DeepEqual(want.Dataset, got.Dataset) {
					tb.Error("delta-applied dataset diverges from full reimport")
				}
				if len(got.Store) != len(want.Store) {
					tb.Fatalf("store has %d files, reference %d", len(got.Store), len(want.Store))
				}
				for name, w := range want.Store {
					if g, ok := got.Store[name]; !ok {
						tb.Errorf("store misses %s", name)
					} else if !reflect.DeepEqual(w, g) {
						tb.Errorf("store file %s differs from full-reimport bytes", name)
					}
				}
			},
		}.Run(t)
	}
}
