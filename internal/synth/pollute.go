package synth

import (
	"strconv"

	"repro/internal/corrupt"
	"repro/internal/voter"
)

// PolluteConfig parameterizes the pollution-tool baseline: a GeCo/Febrl-style
// generator that creates each duplicate cluster from scratch by corrupting
// copies of one original record (§7 of the paper discusses this class of
// tools). It exists as the comparison point for the ablation benches: it is
// fast and controllable but — unlike the historical simulator — cannot
// produce genuine outdated values, only synthetic noise.
type PolluteConfig struct {
	Seed        int64
	Clusters    int            // number of objects to generate
	MaxDups     int            // duplicates per original drawn from [0, MaxDups]
	Errors      corrupt.Config // corruption applied to each duplicate copy
	Date        string         // snapshot date stamped on every record
	ExactShare  float64        // fraction of duplicates left uncorrupted
	MissingDist bool           // leave the district columns empty (default anyway)
}

// DefaultPolluteConfig returns a baseline configuration comparable to the
// simulator's default error mix.
func DefaultPolluteConfig(seed int64, clusters int) PolluteConfig {
	return PolluteConfig{
		Seed:       seed,
		Clusters:   clusters,
		MaxDups:    4,
		Errors:     corrupt.Heavy(),
		Date:       "2020-01-01",
		ExactShare: 0.05,
	}
}

// Pollute generates a single synthetic snapshot of labeled duplicate
// clusters from scratch. The NCID column carries the gold standard exactly
// as in the historical pipeline, so the output feeds the same downstream
// tooling.
func Pollute(cfg PolluteConfig) voter.Snapshot {
	rng := corrupt.NewRand(cfg.Seed, 10)
	corr := corrupt.NewCorruptor(cfg.Errors, corrupt.NewRand(cfg.Seed, 11))
	year := yearOf(cfg.Date)
	if year == 0 {
		year = 2020
	}
	snap := voter.Snapshot{Date: cfg.Date}
	for c := 0; c < cfg.Clusters; c++ {
		ncid := pollNCID(c)
		p := newPerson(rng, ncid, "", year)
		orig := p.enterForm()
		stampPolluted(&orig, p, ncid, cfg.Date, year, c*100)
		snap.Records = append(snap.Records, orig)
		dups := 0
		if cfg.MaxDups > 0 {
			dups = rng.Intn(cfg.MaxDups + 1)
		}
		for d := 0; d < dups; d++ {
			r := orig.Clone()
			if rng.Float64() >= cfg.ExactShare {
				corr.Apply(&r)
			}
			stampPolluted(&r, p, ncid, cfg.Date, year, c*100+d+1)
			snap.Records = append(snap.Records, r)
		}
	}
	return snap
}

// pollNCID renders the synthetic cluster id for the pollution baseline.
func pollNCID(c int) string {
	return "PX" + strconv.Itoa(c+1)
}

// stampPolluted fills the meta columns of a polluted record.
func stampPolluted(r *voter.Record, p *person, ncid, date string, year, regNum int) {
	r.SetName("ncid", ncid)
	r.SetName("snapshot_dt", date)
	r.SetName("load_dt", date)
	r.SetName("registr_dt", date)
	r.SetName("voter_reg_num", strconv.Itoa(regNum))
	r.SetName("voter_status_desc", "ACTIVE")
	r.SetName("voter_status_reason_desc", "VERIFIED")
	r.SetName("age", strconv.Itoa(p.ageAt(year)))
	r.SetName("age_group", ageGroupLabel(p.ageAt(year), 0))
}
