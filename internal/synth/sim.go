package synth

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/corrupt"
	"repro/internal/voter"
)

// registration is one registration row of a voter: the register keeps one
// row per registration, so a voter who re-registered (e.g. after moving
// between counties) appears with several rows even within a single snapshot
// — all but the latest carrying the REMOVED status (§2 of the paper).
type registration struct {
	regNum      string
	stored      voter.Record // last manually entered form, with entry errors
	registered  string
	cancelled   string // empty while this registration is current
	reason      string // status reason when cancelled
	countyIdx   int
	precinct    int
	city        string // ground-truth city at registration time
	hasDistrict bool
}

// Config parameterizes the register simulator. All rates are per snapshot.
type Config struct {
	Seed          int64
	InitialVoters int      // population of the first snapshot
	Snapshots     []string // snapshot dates (YYYY-MM-DD), chronological

	NewVoterRate    float64 // new voters as a fraction of the active population
	ReRegisterRate  float64 // chance an active voter files a fresh form
	MoveRate        float64 // chance of an address change (implies a fresh form)
	CrossCountyRate float64 // fraction of moves that retire the registration
	MarryRate       float64 // chance of a last-name change (implies a fresh form)
	DeregisterRate  float64 // chance a voter leaves the register
	UnsoundRate     float64 // fraction of new voters wrongly reusing a removed NCID

	Errors          corrupt.Config // entry-time corruption of filed forms
	PadSnapshotRate float64        // fraction of snapshots exported with padded columns
	DriftAt         []int          // snapshot indices at which district formats change era
}

// DefaultConfig returns a configuration producing the paper's qualitative
// shape at the given scale: a long snapshot series with two format-drift
// years, light realistic entry errors, and a small unsound-cluster rate.
func DefaultConfig(seed int64, initialVoters int) Config {
	return Config{
		Seed:            seed,
		InitialVoters:   initialVoters,
		Snapshots:       Calendar(2008, 13),
		NewVoterRate:    0.02,
		ReRegisterRate:  0.12,
		MoveRate:        0.04,
		CrossCountyRate: 0.3,
		MarryRate:       0.006,
		DeregisterRate:  0.01,
		UnsoundRate:     0.003,
		Errors:          corrupt.Light(),
		PadSnapshotRate: 0.25,
		DriftAt:         []int{7, 14},
	}
}

// Calendar returns the snapshot dates of a register covering years starting
// at startYear: one snapshot every New Year's Day plus one at every
// November election in even years — the publication rhythm of the real
// register (§5.1).
func Calendar(startYear, years int) []string {
	var dates []string
	for y := startYear; y < startYear+years; y++ {
		dates = append(dates, fmt.Sprintf("%04d-01-01", y))
		if y%2 == 0 {
			dates = append(dates, fmt.Sprintf("%04d-11-03", y))
		}
	}
	return dates
}

// Simulator evolves the synthetic population and emits snapshots. Create it
// with New, then call Next once per configured snapshot date (or Run for all
// of them).
type Simulator struct {
	cfg     Config
	events  *rand.Rand
	entry   *corrupt.Corruptor
	emitRNG *rand.Rand

	persons     []*person
	regsOf      map[*person][]*registration
	removedPool []*person // fully deregistered voters eligible for NCID misuse
	nextID      int
	nextReg     int
	era         int
	snapIdx     int
}

// New returns a simulator over cfg. The three random streams (life events,
// form entry, export padding) are independent sub-streams of cfg.Seed.
func New(cfg Config) *Simulator {
	return &Simulator{
		cfg:     cfg,
		events:  corrupt.NewRand(cfg.Seed, 0),
		entry:   corrupt.NewCorruptor(cfg.Errors, corrupt.NewRand(cfg.Seed, 1)),
		emitRNG: corrupt.NewRand(cfg.Seed, 2),
		regsOf:  map[*person][]*registration{},
	}
}

// NumSnapshots returns how many snapshots the configuration will produce.
func (s *Simulator) NumSnapshots() int { return len(s.cfg.Snapshots) }

// allocNCID returns the next fresh object id in the register's two-letters-
// plus-digits format (e.g. DB175272).
func (s *Simulator) allocNCID() string {
	s.nextID++
	return fmt.Sprintf("%c%c%06d", 'A'+rune((s.nextID/26)%26), 'A'+rune(s.nextID%26), s.nextID)
}

// allocRegNum returns the next registration number.
func (s *Simulator) allocRegNum() string {
	s.nextReg++
	return fmt.Sprintf("%09d", s.nextReg)
}

// enter files a fresh form for p's current registration: ground truth is
// rendered and then passed through the entry corruptor. Most voters leave
// the optional phone field blank (as in the real register, where the
// phone column is sparsely populated), which keeps this highly unique
// attribute from anchoring every duplicate.
func (s *Simulator) enter(p *person, reg *registration) {
	r := p.enterForm()
	r.SetName("ncid", p.ncid)
	if s.events.Float64() < 0.65 {
		r.SetName("phone_num", "")
		r.SetName("area_cd", "")
	}
	s.entry.Apply(&r)
	reg.stored = r
	reg.countyIdx = p.countyIdx
	reg.precinct = p.precinct
	reg.city = p.city
	reg.hasDistrict = p.hasDistrict
}

// register creates a brand-new registration for p starting at date.
func (s *Simulator) register(p *person, date string) *registration {
	reg := &registration{regNum: s.allocRegNum(), registered: date}
	s.regsOf[p] = append(s.regsOf[p], reg)
	s.enter(p, reg)
	return reg
}

// currentReg returns p's latest registration.
func (s *Simulator) currentReg(p *person) *registration {
	regs := s.regsOf[p]
	return regs[len(regs)-1]
}

// addVoter creates a new person (occasionally misusing a removed NCID,
// which is what produces the unsound clusters the plausibility check
// exists for) and registers them.
func (s *Simulator) addVoter(date string, year int) *person {
	var ncid string
	if s.cfg.UnsoundRate > 0 && len(s.removedPool) > 0 && s.events.Float64() < s.cfg.UnsoundRate {
		victim := s.removedPool[s.events.Intn(len(s.removedPool))]
		ncid = victim.ncid
		// Remove the victim from the pool so an id is misused at most once.
		for i, v := range s.removedPool {
			if v == victim {
				s.removedPool = append(s.removedPool[:i], s.removedPool[i+1:]...)
				break
			}
		}
	} else {
		ncid = s.allocNCID()
	}
	p := newPerson(s.events, ncid, "", year)
	p.registered = date
	s.persons = append(s.persons, p)
	s.register(p, date)
	return p
}

// Next advances the simulation by one snapshot and returns it. It panics if
// called more times than there are configured snapshot dates.
func (s *Simulator) Next() voter.Snapshot {
	if s.snapIdx >= len(s.cfg.Snapshots) {
		panic("synth: Next called past the configured snapshot calendar")
	}
	date := s.cfg.Snapshots[s.snapIdx]
	year := yearOf(date)
	for _, d := range s.cfg.DriftAt {
		if d == s.snapIdx {
			s.era++
		}
	}

	if s.snapIdx == 0 {
		for i := 0; i < s.cfg.InitialVoters; i++ {
			s.addVoter(date, year)
		}
	} else {
		s.lifeEvents(date, year)
		active := 0
		for _, p := range s.persons {
			if p.active {
				active++
			}
		}
		newcomers := int(float64(active) * s.cfg.NewVoterRate)
		for i := 0; i < newcomers; i++ {
			s.addVoter(date, year)
		}
	}

	snap := s.emit(date, year)
	s.snapIdx++
	return snap
}

// lifeEvents applies the per-snapshot population dynamics to every active
// voter: deregistration, moves (within- and cross-county), marriages and
// plain re-registrations. Every event that involves a freshly filed form
// passes through the entry corruptor, creating a fuzzy duplicate of the
// voter's earlier rows.
func (s *Simulator) lifeEvents(date string, year int) {
	rng := s.events
	for _, p := range s.persons {
		if !p.active {
			continue
		}
		switch {
		case rng.Float64() < s.cfg.DeregisterRate:
			reg := s.currentReg(p)
			reg.cancelled = date
			reg.reason = pick(rng, "MOVED FROM STATE", "DECEASED", "FELONY CONVICTION")
			p.active = false
			p.cancelled = date
			s.removedPool = append(s.removedPool, p)
		case rng.Float64() < s.cfg.MoveRate:
			if rng.Float64() < s.cfg.CrossCountyRate {
				// Cross-county move: new city, the old registration is
				// retired and a new one opened; the voter now has several
				// rows per snapshot.
				p.moveToNewCity(rng)
				old := s.currentReg(p)
				old.cancelled = date
				old.reason = "MOVED FROM COUNTY"
				p.countyIdx = rng.Intn(len(counties))
				p.hasDistrict = p.countyIdx < len(counties)/2
				s.register(p, date)
			} else {
				// Local move: only the street-level address changes.
				p.moveWithinCity(rng)
				s.enter(p, s.currentReg(p))
			}
		case rng.Float64() < s.cfg.MarryRate:
			// A marriage changes the last name and usually the residence
			// at once — the compound change that makes the dirtiest real
			// duplicates so hard to detect.
			p.last = lastNames[rng.Intn(len(lastNames))]
			if rng.Float64() < 0.7 {
				p.moveToNewCity(rng)
			}
			s.enter(p, s.currentReg(p))
		case rng.Float64() < s.cfg.ReRegisterRate:
			s.enter(p, s.currentReg(p))
		}
	}
}

// pick returns one of the options uniformly.
func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}

// paddedColumns are the columns some snapshot exports pad with trailing
// whitespace, the artifact the paper's trimming step removes.
var paddedColumns = []int{
	voter.IdxLastName, voter.IdxFirstName, voter.IdxRaceDesc,
	voter.MustIndex("county_desc"), voter.IdxMailAddr1,
}

// emit renders the current population state into one snapshot: every
// registration of every person (current and retired) becomes a row.
func (s *Simulator) emit(date string, year int) voter.Snapshot {
	padded := s.emitRNG.Float64() < s.cfg.PadSnapshotRate
	loadDate := addDays(date, 2)
	snap := voter.Snapshot{Date: date}
	for _, p := range s.persons {
		regs := s.regsOf[p]
		for ri, reg := range regs {
			r := reg.stored.Clone()
			r.SetName("ncid", p.ncid)
			r.SetName("snapshot_dt", date)
			r.SetName("load_dt", loadDate)
			r.SetName("registr_dt", reg.registered)
			r.SetName("cancellation_dt", reg.cancelled)
			r.SetName("voter_reg_num", reg.regNum)
			current := ri == len(regs)-1
			if current && p.active {
				r.SetName("voter_status_desc", "ACTIVE")
				r.SetName("voter_status_reason_desc", "VERIFIED")
			} else {
				r.SetName("voter_status_desc", "REMOVED")
				r.SetName("voter_status_reason_desc", reg.reason)
			}
			age := p.ageAt(year)
			if v := strings.TrimSpace(reg.stored.GetName("age")); v != "" {
				// A clerk-entered age (the OutlierAge error) overrides the
				// derived value until the next re-registration.
				r.SetName("age", v)
			} else {
				r.SetName("age", strconv.Itoa(age))
			}
			r.SetName("age_group", ageGroupLabel(age, s.era))
			if reg.hasDistrict {
				// District columns are derived by the export per current
				// era, so a format drift changes every affected row at
				// once.
				tmp := *p
				tmp.countyIdx = reg.countyIdx
				tmp.precinct = reg.precinct
				tmp.city = reg.city
				tmp.fillDistricts(&r, s.era)
			}
			if padded {
				for _, ci := range paddedColumns {
					if r.Values[ci] != "" {
						r.Values[ci] += "  "
					}
				}
			}
			snap.Records = append(snap.Records, r)
		}
	}
	return snap
}

// Run generates every configured snapshot in order.
func (s *Simulator) Run() []voter.Snapshot {
	out := make([]voter.Snapshot, 0, len(s.cfg.Snapshots))
	for range s.cfg.Snapshots {
		out = append(out, s.Next())
	}
	return out
}

// Generate is the package-level convenience: it runs a full simulation
// under cfg and returns all snapshots.
func Generate(cfg Config) []voter.Snapshot {
	return New(cfg).Run()
}

// WriteAll runs the simulation and writes every snapshot into dir as a
// canonical TSV file, returning the file paths.
func WriteAll(cfg Config, dir string) ([]string, error) {
	sim := New(cfg)
	var paths []string
	for range cfg.Snapshots {
		snap := sim.Next()
		p, err := voter.WriteSnapshotFile(dir, snap)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// WriteAllParallel is WriteAll with the snapshot file emission spread over a
// worker pool: snapshot generation stays sequential (the simulator is a
// stateful year-over-year process, so parallelizing it would change the
// data), but the TSV encoding and disk write of snapshot k overlap the
// generation of snapshot k+1 and each other. The emitted files and the
// returned snapshot-ordered paths are identical to WriteAll for any worker
// count. workers <= 0 selects GOMAXPROCS; workers == 1 is WriteAll.
func WriteAllParallel(cfg Config, dir string, workers int) ([]string, error) {
	if workers == 1 || len(cfg.Snapshots) == 0 {
		return WriteAll(cfg, dir)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		idx  int
		snap voter.Snapshot
	}
	jobs := make(chan job, workers)
	paths := make([]string, len(cfg.Snapshots))
	errs := make([]error, len(cfg.Snapshots))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				paths[j.idx], errs[j.idx] = voter.WriteSnapshotFile(dir, j.snap)
			}
		}()
	}
	sim := New(cfg)
	for i := range cfg.Snapshots {
		jobs <- job{idx: i, snap: sim.Next()}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// yearOf parses the year of a YYYY-MM-DD date, returning 0 on malformed
// input.
func yearOf(date string) int {
	t, err := time.Parse("2006-01-02", date)
	if err != nil {
		return 0
	}
	return t.Year()
}

// addDays shifts a YYYY-MM-DD date by n days; malformed dates are returned
// unchanged.
func addDays(date string, n int) string {
	t, err := time.Parse("2006-01-02", date)
	if err != nil {
		return date
	}
	return t.AddDate(0, 0, n).Format("2006-01-02")
}
