// Package synth simulates the North Carolina voter register: a longitudinal
// population whose members register, re-register at elections through
// manually filled forms (injecting realistic entry errors), move, marry,
// and deregister, emitted as snapshot TSV files in the 90-attribute schema.
// It is the stand-in for the real register the paper's pipeline ingests
// (§3-§4; substitution argument in DESIGN.md §2): the generation pipeline
// only depends on the input's shape (stable object ids, redundant rows
// across snapshots, outdated values, entry errors), all of which the
// simulator reproduces with controllable rates.
package synth

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/voter"
)

// person is the ground truth for one voter. The stored record (the values a
// clerk last entered) is re-created only when the voter re-registers; until
// then every snapshot repeats it verbatim, which is what floods the combined
// dataset with exact duplicates (§3.1.3 of the paper).
type person struct {
	ncid      string
	regNum    string
	sexCode   string // "F", "M" or "U"
	first     string
	middle    string
	last      string
	suffix    string
	yearBirth int
	birth     string // birth place (state or country)
	raceIdx   int
	ethnicIdx int
	partyIdx  int
	countyIdx int

	houseNum   string
	streetDir  string
	streetName string
	streetType string
	unitNum    string
	city       string
	zip        string
	phone      string
	hasLicense bool

	hasDistrict bool // whether this voter's county publishes district data
	precinct    int  // deterministic district seed

	registered string // registration date
	cancelled  string // cancellation date, empty while active
	active     bool

	// stored is the last manually entered form, with its entry errors;
	// nil until first registration.
	stored *voter.Record
}

// newPerson draws a fresh voter with ground-truth attributes.
func newPerson(rng *rand.Rand, ncid, regNum string, yearNow int) *person {
	p := &person{ncid: ncid, regNum: regNum, active: true}
	if rng.Intn(100) < 2 {
		p.sexCode = "U"
	} else if rng.Intn(2) == 0 {
		p.sexCode = "F"
		p.first = femaleFirstNames[rng.Intn(len(femaleFirstNames))]
	} else {
		p.sexCode = "M"
		p.first = maleFirstNames[rng.Intn(len(maleFirstNames))]
	}
	if p.first == "" { // undesignated sex: draw from either pool
		if rng.Intn(2) == 0 {
			p.first = femaleFirstNames[rng.Intn(len(femaleFirstNames))]
		} else {
			p.first = maleFirstNames[rng.Intn(len(maleFirstNames))]
		}
	}
	if rng.Float64() < 0.8 {
		p.middle = middleNames[rng.Intn(len(middleNames))]
	}
	p.last = lastNames[rng.Intn(len(lastNames))]
	p.suffix = suffixes[rng.Intn(len(suffixes))]
	p.yearBirth = yearNow - (18 + rng.Intn(72)) // age 18..89
	p.birth = birthStates[rng.Intn(len(birthStates))]
	p.raceIdx = rng.Intn(len(races))
	p.ethnicIdx = rng.Intn(len(ethnics))
	p.partyIdx = rng.Intn(len(parties))
	p.countyIdx = rng.Intn(len(counties))
	p.hasDistrict = p.countyIdx < len(counties)/2 // urban counties publish districts
	p.precinct = 1 + rng.Intn(60)
	p.hasLicense = rng.Float64() < 0.9
	p.newAddress(rng)
	return p
}

// newAddress draws the initial residence and phone number for p.
func (p *person) newAddress(rng *rand.Rand) {
	p.moveWithinCity(rng)
	p.city = cities[rng.Intn(len(cities))]
	p.zip = strconv.Itoa(27000 + rng.Intn(2000))
	p.phone = fmt.Sprintf("%03d%03d%04d", 200+rng.Intn(800), 200+rng.Intn(800), rng.Intn(10000))
}

// moveWithinCity redraws only the street-level address: city, zip and phone
// stay — the common case of a local move, which leaves the outdated rows
// only moderately heterogeneous.
func (p *person) moveWithinCity(rng *rand.Rand) {
	p.houseNum = strconv.Itoa(1 + rng.Intn(9999))
	p.streetDir = streetDirs[rng.Intn(len(streetDirs))]
	p.streetName = streetNames[rng.Intn(len(streetNames))]
	p.streetType = streetTypes[rng.Intn(len(streetTypes))]
	if rng.Float64() < 0.12 {
		p.unitNum = "APT " + strconv.Itoa(1+rng.Intn(400))
	} else {
		p.unitNum = ""
	}
	p.precinct = 1 + rng.Intn(60)
}

// moveToNewCity redraws the whole residence; about half the movers also
// change their phone number.
func (p *person) moveToNewCity(rng *rand.Rand) {
	p.moveWithinCity(rng)
	p.city = cities[rng.Intn(len(cities))]
	p.zip = strconv.Itoa(27000 + rng.Intn(2000))
	if rng.Float64() < 0.5 {
		p.phone = fmt.Sprintf("%03d%03d%04d", 200+rng.Intn(800), 200+rng.Intn(800), rng.Intn(10000))
	}
}

// ageAt returns the person's age in the given year.
func (p *person) ageAt(year int) int { return year - p.yearBirth }

// ageGroupLabel renders the age-group attribute per format era, one of the
// notations the paper observed drifting ("66 AND ABOVE" vs "Age Over 66").
func ageGroupLabel(age, era int) string {
	switch {
	case age < 26:
		if era == 0 {
			return "18 - 25"
		}
		return "Age 18 - 25"
	case age < 41:
		if era == 0 {
			return "26 - 40"
		}
		return "Age 26 - 40"
	case age < 66:
		if era == 0 {
			return "41 - 65"
		}
		return "Age 41 - 65"
	default:
		if era == 0 {
			return "66 AND ABOVE"
		}
		return "Age Over 66"
	}
}

// ordinal renders 1 -> "1ST", 2 -> "2ND", 3 -> "3RD", 11 -> "11TH" etc.
func ordinal(n int) string {
	suffix := "TH"
	switch {
	case n%100 >= 11 && n%100 <= 13:
	case n%10 == 1:
		suffix = "ST"
	case n%10 == 2:
		suffix = "ND"
	case n%10 == 3:
		suffix = "RD"
	}
	return strconv.Itoa(n) + suffix
}

// districtFormats renders the drifting district descriptions. Era 0 uses the
// historic notation, era 1 the renamed one — mirroring the paper's examples
// ('64TH HOUSE' → 'NC HOUSE DISTRICT 64', '1ST CONGRESSIONAL' →
// 'CO. DISTRICT 1').
func houseDesc(n, era int) string {
	if era == 0 {
		return ordinal(n) + " HOUSE"
	}
	return "NC HOUSE DISTRICT " + strconv.Itoa(n)
}

func congDesc(n, era int) string {
	if era == 0 {
		return ordinal(n) + " CONGRESSIONAL"
	}
	return "CO. DISTRICT " + strconv.Itoa(n)
}

func senateDesc(n, era int) string {
	if era == 0 {
		return ordinal(n) + " SENATE"
	}
	return "NC SENATE DISTRICT " + strconv.Itoa(n)
}

// enterForm renders p's ground truth into a fresh record the way a clerk
// would copy a handwritten form: the person and election attributes are
// filled from truth, then the caller passes the record through the
// Corruptor. Meta, district and per-snapshot fields are left for emission
// time.
func (p *person) enterForm() voter.Record {
	r := voter.NewRecord()
	r.SetName("last_name", p.last)
	r.SetName("first_name", p.first)
	r.SetName("midl_name", p.middle)
	r.SetName("name_sufx_cd", p.suffix)
	r.SetName("sex_code", p.sexCode)
	switch p.sexCode {
	case "F":
		r.SetName("sex", "FEMALE")
	case "M":
		r.SetName("sex", "MALE")
	default:
		r.SetName("sex", "UNDESIGNATED")
	}
	r.SetName("race_code", races[p.raceIdx].code)
	r.SetName("race_desc", races[p.raceIdx].desc)
	r.SetName("ethnic_code", ethnics[p.ethnicIdx].code)
	r.SetName("ethnic_desc", ethnics[p.ethnicIdx].desc)
	r.SetName("birth_place", p.birth)
	r.SetName("phone_num", p.phone)
	r.SetName("house_num", p.houseNum)
	r.SetName("street_dir", p.streetDir)
	r.SetName("street_name", p.streetName)
	r.SetName("street_type_cd", p.streetType)
	r.SetName("unit_num", p.unitNum)
	r.SetName("res_city_desc", p.city)
	r.SetName("state_cd", "NC")
	r.SetName("zip_code", p.zip)
	addr := strings.TrimSpace(p.houseNum + " " + strings.TrimSpace(p.streetDir+" "+p.streetName) + " " + p.streetType)
	r.SetName("mail_addr1", addr)
	r.SetName("mail_city", p.city)
	r.SetName("mail_state", "NC")
	r.SetName("mail_zipcode", p.zip)
	r.SetName("area_cd", p.phone[:3])
	if p.hasLicense {
		r.SetName("drivers_lic", "Y")
	} else {
		r.SetName("drivers_lic", "N")
	}
	r.SetName("party_cd", parties[p.partyIdx].code)
	r.SetName("party_desc", parties[p.partyIdx].desc)
	r.SetName("county_desc", counties[p.countyIdx])
	// District columns are filled at export time (see Simulator.emit): the
	// register derives them from the registration, and a format drift
	// re-renders them for every row at once.
	// Election attributes: the last election the form was filed at.
	r.SetName("vtd_abbrv", fmt.Sprintf("%02d", p.precinct))
	r.SetName("vtd_desc", "VOTING DISTRICT "+fmt.Sprintf("%02d", p.precinct))
	return r
}

// fillDistricts derives the 38 district columns deterministically from the
// person's county and precinct, rendered per format era.
func (p *person) fillDistricts(r *voter.Record, era int) {
	county := p.countyIdx + 1
	house := 1 + (p.countyIdx*5+p.precinct)%120
	senate := 1 + (p.countyIdx*3+p.precinct)%50
	cong := 1 + (p.countyIdx+p.precinct)%13
	set := func(name, v string) { r.SetName(name, v) }
	set("precinct_abbrv", fmt.Sprintf("%02d", p.precinct))
	set("precinct_desc", "PRECINCT "+fmt.Sprintf("%02d", p.precinct))
	set("municipality_abbrv", p.city[:minInt(3, len(p.city))])
	set("municipality_desc", p.city)
	set("ward_abbrv", strconv.Itoa(1+p.precinct%8))
	set("ward_desc", "WARD "+strconv.Itoa(1+p.precinct%8))
	set("cong_dist_abbrv", strconv.Itoa(cong))
	set("cong_dist_desc", congDesc(cong, era))
	set("super_court_abbrv", fmt.Sprintf("%02d%s", county%30+1, "A"))
	set("super_court_desc", "SUPERIOR COURT "+fmt.Sprintf("%02d%s", county%30+1, "A"))
	set("judic_dist_abbrv", strconv.Itoa(county%30+1))
	set("judic_dist_desc", "JUDICIAL DISTRICT "+strconv.Itoa(county%30+1))
	set("nc_senate_abbrv", strconv.Itoa(senate))
	set("nc_senate_desc", senateDesc(senate, era))
	set("nc_house_abbrv", strconv.Itoa(house))
	set("nc_house_desc", houseDesc(house, era))
	set("county_commiss_abbrv", strconv.Itoa(1+p.precinct%7))
	set("county_commiss_desc", "COMMISSIONER DISTRICT "+strconv.Itoa(1+p.precinct%7))
	set("township_abbrv", strconv.Itoa(1+p.precinct%12))
	set("township_desc", "TOWNSHIP "+strconv.Itoa(1+p.precinct%12))
	set("school_dist_abbrv", strconv.Itoa(1+p.precinct%9))
	set("school_dist_desc", "SCHOOL DISTRICT "+strconv.Itoa(1+p.precinct%9))
	set("fire_dist_abbrv", strconv.Itoa(1+p.precinct%15))
	set("fire_dist_desc", "FIRE DISTRICT "+strconv.Itoa(1+p.precinct%15))
	set("water_dist_abbrv", strconv.Itoa(1+p.precinct%10))
	set("water_dist_desc", "WATER DISTRICT "+strconv.Itoa(1+p.precinct%10))
	set("sewer_dist_abbrv", strconv.Itoa(1+p.precinct%10))
	set("sewer_dist_desc", "SEWER DISTRICT "+strconv.Itoa(1+p.precinct%10))
	set("sanit_dist_abbrv", strconv.Itoa(1+p.precinct%6))
	set("sanit_dist_desc", "SANITARY DISTRICT "+strconv.Itoa(1+p.precinct%6))
	set("rescue_dist_abbrv", strconv.Itoa(1+p.precinct%11))
	set("rescue_dist_desc", "RESCUE DISTRICT "+strconv.Itoa(1+p.precinct%11))
	set("munic_dist_abbrv", p.city[:minInt(3, len(p.city))])
	set("munic_dist_desc", p.city)
	set("dist_1_abbrv", strconv.Itoa(1+p.precinct%20))
	set("dist_1_desc", "PROSECUTORIAL DISTRICT "+strconv.Itoa(1+p.precinct%20))
	set("dist_2_abbrv", "")
	set("dist_2_desc", "")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
