package synth

import (
	"strings"
	"testing"

	"repro/internal/voter"
)

// smallConfig returns a fast configuration for tests.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed, 300)
	cfg.Snapshots = Calendar(2008, 6)
	return cfg
}

func TestCalendar(t *testing.T) {
	dates := Calendar(2008, 3)
	want := []string{"2008-01-01", "2008-11-03", "2009-01-01", "2010-01-01", "2010-11-03"}
	if len(dates) != len(want) {
		t.Fatalf("Calendar = %v", dates)
	}
	for i := range want {
		if dates[i] != want[i] {
			t.Errorf("Calendar[%d] = %s, want %s", i, dates[i], want[i])
		}
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1ST", 2: "2ND", 3: "3RD", 4: "4TH", 11: "11TH", 12: "12TH", 13: "13TH", 21: "21ST", 64: "64TH", 102: "102ND"}
	for n, want := range cases {
		if got := ordinal(n); got != want {
			t.Errorf("ordinal(%d) = %s, want %s", n, got, want)
		}
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if len(a) != len(b) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("snapshot %d record counts differ", i)
		}
		for j := range a[i].Records {
			for k := range a[i].Records[j].Values {
				if a[i].Records[j].Values[k] != b[i].Records[j].Values[k] {
					t.Fatalf("snapshot %d record %d column %d differs", i, j, k)
				}
			}
		}
	}
	c := Generate(smallConfig(8))
	if len(c[0].Records) == len(a[0].Records) && c[0].Records[0].GetName("last_name") == a[0].Records[0].GetName("last_name") {
		t.Error("different seeds produced identical first records")
	}
}

func TestFirstSnapshotPopulation(t *testing.T) {
	snaps := Generate(smallConfig(1))
	if got := len(snaps[0].Records); got != 300 {
		t.Errorf("first snapshot has %d records, want 300", got)
	}
	// All first-snapshot records are distinct objects.
	ids := map[string]bool{}
	for _, r := range snaps[0].Records {
		ids[r.NCID()] = true
	}
	if len(ids) != 300 {
		t.Errorf("first snapshot has %d distinct NCIDs, want 300", len(ids))
	}
}

func TestPopulationGrowsAcrossSnapshots(t *testing.T) {
	snaps := Generate(smallConfig(2))
	first, last := len(snaps[0].Records), len(snaps[len(snaps)-1].Records)
	if last <= first {
		t.Errorf("population did not grow: %d -> %d", first, last)
	}
	// New NCIDs appear after the first snapshot.
	ids := map[string]bool{}
	for _, r := range snaps[0].Records {
		ids[r.NCID()] = true
	}
	newOnes := 0
	for _, r := range snaps[len(snaps)-1].Records {
		if !ids[r.NCID()] {
			newOnes++
		}
	}
	if newOnes == 0 {
		t.Error("no new objects in later snapshots")
	}
}

func TestSnapshotRowsWellFormed(t *testing.T) {
	snaps := Generate(smallConfig(3))
	for si, s := range snaps {
		for ri, r := range s.Records {
			if len(r.Values) != voter.NumAttributes {
				t.Fatalf("snapshot %d record %d has %d values", si, ri, len(r.Values))
			}
			if r.NCID() == "" {
				t.Fatalf("snapshot %d record %d misses NCID", si, ri)
			}
			if r.SnapshotDate() != s.Date {
				t.Fatalf("snapshot %d record %d date %q != %q", si, ri, r.SnapshotDate(), s.Date)
			}
			if strings.ContainsAny(strings.Join(r.Values, ""), "\t\n") {
				t.Fatalf("snapshot %d record %d contains tab/newline", si, ri)
			}
		}
	}
}

func TestCombinedSnapshotsContainExactDuplicates(t *testing.T) {
	snaps := Generate(smallConfig(4))
	seen := map[voter.Hash]int{}
	total := 0
	for _, s := range snaps {
		for _, r := range s.Records {
			seen[voter.HashRecord(r, voter.HashTrimmed)]++
			total++
		}
	}
	removed := total - len(seen)
	// The dominant effect of combining snapshots must be massive exact
	// redundancy (the paper saw >67 %; we require a majority).
	if float64(removed)/float64(total) < 0.5 {
		t.Errorf("only %d/%d rows are near-exact duplicates; want > 50%%", removed, total)
	}
}

func TestTrimmingRemovesMoreThanExact(t *testing.T) {
	snaps := Generate(smallConfig(5))
	exact := map[voter.Hash]bool{}
	trimmed := map[voter.Hash]bool{}
	total := 0
	for _, s := range snaps {
		for _, r := range s.Records {
			exact[voter.HashRecord(r, voter.HashExact)] = true
			trimmed[voter.HashRecord(r, voter.HashTrimmed)] = true
			total++
		}
	}
	if len(trimmed) >= len(exact) {
		t.Errorf("trimming should collapse more rows: exact-distinct %d, trimmed-distinct %d", len(exact), len(trimmed))
	}
	person := map[voter.Hash]bool{}
	for _, s := range snaps {
		for _, r := range s.Records {
			person[voter.HashRecord(r, voter.HashPersonData)] = true
		}
	}
	if len(person) >= len(trimmed) {
		t.Errorf("person-data hashing should collapse more rows: trimmed %d, person %d", len(trimmed), len(person))
	}
}

func TestWithinSnapshotMultiRegistrations(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Snapshots = Calendar(2008, 10)
	snaps := Generate(cfg)
	last := snaps[len(snaps)-1]
	perID := map[string]int{}
	for _, r := range last.Records {
		perID[r.NCID()]++
	}
	multi := 0
	for _, n := range perID {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no voter has multiple registrations within one snapshot")
	}
	// Within a snapshot, at most one record per NCID is not REMOVED (§2).
	activePer := map[string]int{}
	for _, r := range last.Records {
		if strings.TrimSpace(r.GetName("voter_status_desc")) != "REMOVED" {
			activePer[r.NCID()]++
		}
	}
	for id, n := range activePer {
		if n > 1 {
			t.Fatalf("NCID %s has %d non-removed records in one snapshot", id, n)
		}
	}
}

func TestFormatDriftChangesDistrictDescriptions(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Snapshots = Calendar(2008, 8)
	cfg.DriftAt = []int{4}
	snaps := Generate(cfg)
	hasOld, hasNew := false, false
	for si, s := range snaps {
		for _, r := range s.Records {
			d := r.GetName("nc_house_desc")
			if strings.HasSuffix(d, " HOUSE") && d != "" {
				if si >= 4 {
					t.Fatalf("old house format %q after drift (snapshot %d)", d, si)
				}
				hasOld = true
			}
			if strings.HasPrefix(d, "NC HOUSE DISTRICT") {
				if si < 4 {
					t.Fatalf("new house format %q before drift (snapshot %d)", d, si)
				}
				hasNew = true
			}
		}
	}
	if !hasOld || !hasNew {
		t.Errorf("drift eras not both observed: old=%v new=%v", hasOld, hasNew)
	}
}

func TestUnsoundClustersExist(t *testing.T) {
	cfg := smallConfig(10)
	cfg.Snapshots = Calendar(2008, 10)
	cfg.UnsoundRate = 0.5 // force misuse for the test
	cfg.DeregisterRate = 0.05
	snaps := Generate(cfg)
	// Look for an NCID with two very different last names across snapshots
	// where neither is derivable from the other.
	names := map[string]map[string]bool{}
	for _, s := range snaps {
		for _, r := range s.Records {
			ln := strings.TrimSpace(strings.ToUpper(r.GetName("last_name")))
			sx := strings.TrimSpace(r.GetName("sex_code"))
			if ln == "" {
				continue
			}
			key := r.NCID()
			if names[key] == nil {
				names[key] = map[string]bool{}
			}
			names[key][ln+"/"+sx] = true
		}
	}
	many := 0
	for _, set := range names {
		if len(set) >= 3 {
			many++
		}
	}
	if many == 0 {
		t.Error("no candidate unsound clusters generated at UnsoundRate=0.5")
	}
}

func TestPaddedSnapshotsProduceWhitespace(t *testing.T) {
	cfg := smallConfig(11)
	cfg.PadSnapshotRate = 1.0
	snaps := Generate(cfg)
	r := snaps[0].Records[0]
	v := r.GetName("county_desc")
	if v == strings.TrimSpace(v) {
		t.Errorf("padded snapshot has no trailing whitespace in county_desc: %q", v)
	}
}

func TestWriteAllRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig(12)
	cfg.Snapshots = Calendar(2008, 2)
	paths, err := WriteAll(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(cfg.Snapshots) {
		t.Fatalf("wrote %d files, want %d", len(paths), len(cfg.Snapshots))
	}
	snap, err := voter.ReadSnapshotFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) == 0 {
		t.Error("first snapshot file empty")
	}
}

func TestPolluteBaseline(t *testing.T) {
	cfg := DefaultPolluteConfig(13, 100)
	snap := Pollute(cfg)
	if len(snap.Records) < 100 {
		t.Fatalf("pollute produced %d records, want >= 100", len(snap.Records))
	}
	clusters := map[string]int{}
	for _, r := range snap.Records {
		if len(r.Values) != voter.NumAttributes {
			t.Fatal("malformed record width")
		}
		clusters[r.NCID()]++
	}
	if len(clusters) != 100 {
		t.Errorf("pollute produced %d clusters, want 100", len(clusters))
	}
	multi := 0
	for _, n := range clusters {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("pollute produced no duplicate clusters")
	}
	// Determinism.
	again := Pollute(cfg)
	if len(again.Records) != len(snap.Records) {
		t.Error("pollute is not deterministic")
	}
}

func BenchmarkSimulatorSnapshot(b *testing.B) {
	cfg := DefaultConfig(1, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := New(cfg)
		sim.Next()
	}
}

func BenchmarkPollute(b *testing.B) {
	cfg := DefaultPolluteConfig(1, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pollute(cfg)
	}
}
