package synth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteAllParallelMatchesSequential: parallel emission must produce the
// same file set with the same bytes, in the same returned order.
func TestWriteAllParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig(11, 80)
	cfg.Snapshots = Calendar(2008, 3)

	seqDir, parDir := t.TempDir(), t.TempDir()
	seqPaths, err := WriteAll(cfg, seqDir)
	if err != nil {
		t.Fatal(err)
	}
	parPaths, err := WriteAllParallel(cfg, parDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPaths) != len(parPaths) {
		t.Fatalf("path counts differ: %d vs %d", len(seqPaths), len(parPaths))
	}
	for i := range seqPaths {
		if filepath.Base(seqPaths[i]) != filepath.Base(parPaths[i]) {
			t.Fatalf("path %d: %s vs %s", i, seqPaths[i], parPaths[i])
		}
		a, err := os.ReadFile(seqPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(parPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between sequential and parallel emission", filepath.Base(seqPaths[i]))
		}
	}
}
