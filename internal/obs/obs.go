// Package obs is the observability-and-robustness layer of the serving and
// ingest infrastructure the paper runs on managed services (§5): composable
// net/http middleware (structured request logging, panic recovery,
// per-request timeouts, an in-flight limiter and per-route metrics) plus
// the Metrics registry they report into — which also collects the ingest
// pipeline counters via core.IngestObserver — exposed at GET /metrics in
// JSON and Prometheus text formats.
//
// The middleware is deliberately independent of the API it wraps; the one
// shared convention is the error envelope — {"error": {"code", "message"}}
// — which WriteError renders and which the httpapi handlers reuse so
// middleware-generated errors (503 shed, 504 timeout, 500 panic) are
// indistinguishable in shape from handler-generated ones.
package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares to h with the first argument outermost:
// Chain(h, a, b, c) serves a(b(c(h))).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			h = mws[i](h)
		}
	}
	return h
}

// ErrorBody is the payload of the canonical error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the canonical error response shape of the serving stack.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// WriteError renders the canonical error envelope with the given status,
// buffered so Content-Length is set. It is safe to call with a nil-metric
// middleware or directly from handlers.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	body, err := json.Marshal(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
	if err != nil {
		// Unreachable for this struct; degrade to a plain status.
		w.WriteHeader(status)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// statusWriter records the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func wrapWriter(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw // already wrapped by an outer middleware
	}
	return &statusWriter{ResponseWriter: w}
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Status returns the recorded status, defaulting to 200 before any write.
func (w *statusWriter) Status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.status
}
