package obs

import (
	"strings"
	"testing"

	"repro/internal/docstore"
)

// Metrics must satisfy the document store's observer interface so serving
// and import processes can expose persistence and pipeline counters on
// /metrics.
var _ docstore.StoreObserver = (*Metrics)(nil)

func TestDocstorePrometheusFamily(t *testing.T) {
	m := NewMetrics()
	m.AddN(docstore.CounterSegmentsWritten, 8)
	m.AddN(docstore.CounterBytesWritten, 1<<20)
	m.AddN(docstore.CounterPipelineRuns, 3)
	m.AddN(docstore.CounterPushdownHits, 2)
	m.AddN("ingest_rows_decoded", 5)
	m.Inc("panics")

	text := m.PrometheusText()
	for _, want := range []string{
		`docstore_pipeline_total{counter="segments_written"} 8`,
		`docstore_pipeline_total{counter="bytes_written"} 1048576`,
		`docstore_pipeline_total{counter="pipeline_runs"} 3`,
		`docstore_pipeline_total{counter="pushdown_hits"} 2`,
		`ingest_pipeline_total{counter="rows_decoded"} 5`,
		`http_server_events_total{event="panics"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_server_events_total{event="docstore_`) {
		t.Error("docstore counters leaked into the http_server_events_total family")
	}
	if strings.Contains(text, `ingest_pipeline_total{counter="docstore_`) ||
		strings.Contains(text, `docstore_pipeline_total{counter="ingest_`) {
		t.Error("docstore/ingest families cross-contaminated")
	}
}
