package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
)

// Latency histograms bucket milliseconds over [0, latHiMS) at latBins
// resolution (0.1 ms per bin); slower requests are clamped into the last
// bin, with the exact maximum tracked separately.
const (
	latHiMS = 100.0
	latBins = 1000
)

// Metrics is the per-route request registry the middleware reports into.
// All methods are safe for concurrent use.
type Metrics struct {
	start    time.Time
	inFlight atomic.Int64

	mu       sync.Mutex
	routes   map[string]*routeStats
	counters map[string]int64
}

type routeStats struct {
	requests int64
	byCode   map[int]int64
	lat      bench.Histogram
	sumMS    float64
	maxMS    float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		routes:   map[string]*routeStats{},
		counters: map[string]int64{},
	}
}

// Observe records one finished request on a route.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{byCode: map[int]int64{}, lat: bench.NewHistogramOver(0, latHiMS, latBins)}
		m.routes[route] = rs
	}
	rs.requests++
	rs.byCode[status]++
	rs.lat.Add(ms)
	rs.sumMS += ms
	if ms > rs.maxMS {
		rs.maxMS = ms
	}
}

// Inc bumps a named event counter ("panics", "timeouts", "shed", ...).
func (m *Metrics) Inc(counter string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[counter]++
}

// AddN adds n to a named event counter. It is the bulk form of Inc used by
// batch producers — notably the parallel ingest pipeline, whose ingest_*
// counters (rows decoded, records added, duplicates removed, per-stage
// stall milliseconds) land here so GET /metrics covers ingest alongside
// serving, and the document store, whose docstore_* persistence and
// pipeline counters arrive the same way. Metrics satisfies
// core.IngestObserver and docstore.StoreObserver through this method.
func (m *Metrics) AddN(counter string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[counter] += n
}

// Counter reads a named event counter.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// AddInFlight moves the in-flight gauge; the limiter middleware maintains
// it.
func (m *Metrics) AddInFlight(delta int64) { m.inFlight.Add(delta) }

// InFlight reads the in-flight gauge.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// RouteSnapshot is the exported per-route view: counts by status code plus
// latency quantiles estimated from the histogram (0.1 ms resolution, capped
// at the histogram range; MaxMS is exact).
type RouteSnapshot struct {
	Route    string           `json:"route"`
	Requests int64            `json:"requests"`
	ByCode   map[string]int64 `json:"byCode"`
	P50MS    float64          `json:"p50ms"`
	P90MS    float64          `json:"p90ms"`
	P99MS    float64          `json:"p99ms"`
	MeanMS   float64          `json:"meanMs"`
	MaxMS    float64          `json:"maxMs"`
}

// Snapshot is the exported whole-registry view rendered by the /metrics
// handler.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	InFlight      int64            `json:"inFlight"`
	Counters      map[string]int64 `json:"counters"`
	Routes        []RouteSnapshot  `json:"routes"`
}

// Snapshot captures the registry, with routes sorted by name.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Counters:      map[string]int64{},
	}
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for route, rs := range m.routes {
		r := RouteSnapshot{
			Route:    route,
			Requests: rs.requests,
			ByCode:   map[string]int64{},
			P50MS:    rs.lat.Quantile(0.50),
			P90MS:    rs.lat.Quantile(0.90),
			P99MS:    rs.lat.Quantile(0.99),
			MaxMS:    rs.maxMS,
		}
		if rs.requests > 0 {
			r.MeanMS = rs.sumMS / float64(rs.requests)
		}
		for code, n := range rs.byCode {
			r.ByCode[strconv.Itoa(code)] = n
		}
		snap.Routes = append(snap.Routes, r)
	}
	sort.Slice(snap.Routes, func(i, j int) bool { return snap.Routes[i].Route < snap.Routes[j].Route })
	return snap
}

// Handler serves the registry at GET /metrics: JSON by default, Prometheus
// text exposition with ?format=prometheus (or an Accept header preferring
// text/plain).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" ||
			strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(m.PrometheusText()))
			return
		}
		body, err := json.MarshalIndent(m.Snapshot(), "", "  ")
		if err != nil {
			WriteError(w, http.StatusInternalServerError, "internal", "metrics encoding failed")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body)
	})
}

// PrometheusText renders the registry in the Prometheus text exposition
// format (counters, a summary per route, and the in-flight gauge).
func (m *Metrics) PrometheusText() string {
	snap := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP http_requests_in_flight Requests currently being served.\n")
	fmt.Fprintf(&b, "# TYPE http_requests_in_flight gauge\n")
	fmt.Fprintf(&b, "http_requests_in_flight %d\n", snap.InFlight)

	// Counters split into families by prefix: the ingest pipeline's
	// ingest_* counters, the delta-apply layer's delta_* counters, the
	// scoring engine's score_* counters, the
	// blocking layer's blocking_* counters (with the streamed emission's
	// blocking_stream_* counters split out — checked first, since they share
	// the blocking_ prefix), the streaming scoring consumer's
	// dedup_stream_* counters, the document store's docstore_* counters,
	// the serving snapshots' serving_* counters, the provenance layer's
	// provenance_* counters, and the middleware's events.
	var eventNames, ingestNames, deltaNames, scoreNames, blockingNames, blockingStreamNames, dedupStreamNames, docstoreNames, servingNames, provenanceNames []string
	for name := range snap.Counters {
		switch {
		case strings.HasPrefix(name, "ingest_"):
			ingestNames = append(ingestNames, name)
		case strings.HasPrefix(name, "provenance_"):
			provenanceNames = append(provenanceNames, name)
		case strings.HasPrefix(name, "delta_"):
			deltaNames = append(deltaNames, name)
		case strings.HasPrefix(name, "score_"):
			scoreNames = append(scoreNames, name)
		case strings.HasPrefix(name, "blocking_stream_"):
			blockingStreamNames = append(blockingStreamNames, name)
		case strings.HasPrefix(name, "blocking_"):
			blockingNames = append(blockingNames, name)
		case strings.HasPrefix(name, "dedup_stream_"):
			dedupStreamNames = append(dedupStreamNames, name)
		case strings.HasPrefix(name, "docstore_"):
			docstoreNames = append(docstoreNames, name)
		case strings.HasPrefix(name, "serving_"):
			servingNames = append(servingNames, name)
		default:
			eventNames = append(eventNames, name)
		}
	}
	sort.Strings(eventNames)
	sort.Strings(ingestNames)
	sort.Strings(deltaNames)
	sort.Strings(scoreNames)
	sort.Strings(blockingNames)
	sort.Strings(blockingStreamNames)
	sort.Strings(dedupStreamNames)
	sort.Strings(docstoreNames)
	sort.Strings(servingNames)
	sort.Strings(provenanceNames)
	fmt.Fprintf(&b, "# HELP http_server_events_total Middleware events (panics, timeouts, shed).\n")
	fmt.Fprintf(&b, "# TYPE http_server_events_total counter\n")
	for _, name := range eventNames {
		fmt.Fprintf(&b, "http_server_events_total{event=%q} %d\n", name, snap.Counters[name])
	}
	if len(ingestNames) > 0 {
		fmt.Fprintf(&b, "# HELP ingest_pipeline_total Parallel snapshot-ingest pipeline counters.\n")
		fmt.Fprintf(&b, "# TYPE ingest_pipeline_total counter\n")
		for _, name := range ingestNames {
			fmt.Fprintf(&b, "ingest_pipeline_total{counter=%q} %d\n", strings.TrimPrefix(name, "ingest_"), snap.Counters[name])
		}
	}
	if len(deltaNames) > 0 {
		fmt.Fprintf(&b, "# HELP delta_pipeline_total Incremental snapshot application counters (applies, rows decoded/unchanged, records and objects added, clusters touched/dirty/rescored).\n")
		fmt.Fprintf(&b, "# TYPE delta_pipeline_total counter\n")
		for _, name := range deltaNames {
			fmt.Fprintf(&b, "delta_pipeline_total{counter=%q} %d\n", strings.TrimPrefix(name, "delta_"), snap.Counters[name])
		}
	}
	if len(scoreNames) > 0 {
		fmt.Fprintf(&b, "# HELP score_pipeline_total Parallel pair-scoring engine counters (pairs scored, values preprocessed, memo hits/misses/skips).\n")
		fmt.Fprintf(&b, "# TYPE score_pipeline_total counter\n")
		for _, name := range scoreNames {
			fmt.Fprintf(&b, "score_pipeline_total{counter=%q} %d\n", strings.TrimPrefix(name, "score_"), snap.Counters[name])
		}
	}

	if len(blockingNames) > 0 {
		fmt.Fprintf(&b, "# HELP blocking_pipeline_total Candidate-generation layer counters (runs, records keyed, per-blocker pair emissions, buckets, unique candidates).\n")
		fmt.Fprintf(&b, "# TYPE blocking_pipeline_total counter\n")
		for _, name := range blockingNames {
			fmt.Fprintf(&b, "blocking_pipeline_total{counter=%q} %d\n", strings.TrimPrefix(name, "blocking_"), snap.Counters[name])
		}
	}

	if len(blockingStreamNames) > 0 {
		fmt.Fprintf(&b, "# HELP blocking_stream_total Streamed candidate-emission counters (batches emitted, pairs streamed, peak batch backlog).\n")
		fmt.Fprintf(&b, "# TYPE blocking_stream_total counter\n")
		for _, name := range blockingStreamNames {
			fmt.Fprintf(&b, "blocking_stream_total{counter=%q} %d\n", strings.TrimPrefix(name, "blocking_stream_"), snap.Counters[name])
		}
	}

	if len(dedupStreamNames) > 0 {
		fmt.Fprintf(&b, "# HELP dedup_stream_total Streaming scoring-consumer counters (batches consumed, pairs scored from the stream).\n")
		fmt.Fprintf(&b, "# TYPE dedup_stream_total counter\n")
		for _, name := range dedupStreamNames {
			fmt.Fprintf(&b, "dedup_stream_total{counter=%q} %d\n", strings.TrimPrefix(name, "dedup_stream_"), snap.Counters[name])
		}
	}

	if len(docstoreNames) > 0 {
		fmt.Fprintf(&b, "# HELP docstore_pipeline_total Document store counters (segments and bytes saved/loaded, pipeline runs, index-pushdown hits, documents scanned/cloned).\n")
		fmt.Fprintf(&b, "# TYPE docstore_pipeline_total counter\n")
		for _, name := range docstoreNames {
			fmt.Fprintf(&b, "docstore_pipeline_total{counter=%q} %d\n", strings.TrimPrefix(name, "docstore_"), snap.Counters[name])
		}
	}

	if len(servingNames) > 0 {
		fmt.Fprintf(&b, "# HELP serving_total Serving-snapshot counters (swaps, response-cache hits/misses/evictions).\n")
		fmt.Fprintf(&b, "# TYPE serving_total counter\n")
		for _, name := range servingNames {
			fmt.Fprintf(&b, "serving_total{counter=%q} %d\n", strings.TrimPrefix(name, "serving_"), snap.Counters[name])
		}
	}

	if len(provenanceNames) > 0 {
		fmt.Fprintf(&b, "# HELP provenance_total Corpus provenance counters (records stamped, chain links/resets, leaves hashed/reused, verify runs/leaves/failures, records served).\n")
		fmt.Fprintf(&b, "# TYPE provenance_total counter\n")
		for _, name := range provenanceNames {
			fmt.Fprintf(&b, "provenance_total{counter=%q} %d\n", strings.TrimPrefix(name, "provenance_"), snap.Counters[name])
		}
	}

	fmt.Fprintf(&b, "# HELP http_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(&b, "# TYPE http_requests_total counter\n")
	for _, r := range snap.Routes {
		codes := make([]string, 0, len(r.ByCode))
		for code := range r.ByCode {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		for _, code := range codes {
			fmt.Fprintf(&b, "http_requests_total{route=%q,code=%q} %d\n", r.Route, code, r.ByCode[code])
		}
	}

	fmt.Fprintf(&b, "# HELP http_request_duration_seconds Request latency summary, by route.\n")
	fmt.Fprintf(&b, "# TYPE http_request_duration_seconds summary\n")
	for _, r := range snap.Routes {
		for _, q := range []struct {
			q  string
			ms float64
		}{{"0.5", r.P50MS}, {"0.9", r.P90MS}, {"0.99", r.P99MS}} {
			fmt.Fprintf(&b, "http_request_duration_seconds{route=%q,quantile=%q} %g\n", r.Route, q.q, q.ms/1000)
		}
		fmt.Fprintf(&b, "http_request_duration_seconds_sum{route=%q} %g\n", r.Route, r.MeanMS*float64(r.Requests)/1000)
		fmt.Fprintf(&b, "http_request_duration_seconds_count{route=%q} %d\n", r.Route, r.Requests)
	}
	return b.String()
}
