package obs

import (
	"strings"
	"testing"

	"repro/internal/blocking"
)

// Metrics must satisfy the blocking layer's observer interface so a
// process generating candidates can expose the counters on /metrics.
var _ blocking.Observer = (*Metrics)(nil)

func TestBlockingPrometheusFamily(t *testing.T) {
	m := NewMetrics()
	m.AddN("blocking_runs", 1)
	m.AddN("blocking_records", 500)
	m.AddN("blocking_snm_passes", 5)
	m.AddN("blocking_snm_pairs", 9000)
	m.AddN("blocking_trigram_pairs", 1200)
	m.AddN("blocking_trigram_buckets", 340)
	m.AddN("blocking_trigram_oversize_buckets", 2)
	m.AddN("blocking_pairs_emitted", 10200)
	m.AddN("blocking_pairs_unique", 7600)
	m.AddN("score_pairs_scored", 7600)

	text := m.PrometheusText()
	for _, want := range []string{
		`blocking_pipeline_total{counter="runs"} 1`,
		`blocking_pipeline_total{counter="records"} 500`,
		`blocking_pipeline_total{counter="snm_passes"} 5`,
		`blocking_pipeline_total{counter="snm_pairs"} 9000`,
		`blocking_pipeline_total{counter="trigram_pairs"} 1200`,
		`blocking_pipeline_total{counter="trigram_buckets"} 340`,
		`blocking_pipeline_total{counter="trigram_oversize_buckets"} 2`,
		`blocking_pipeline_total{counter="pairs_emitted"} 10200`,
		`blocking_pipeline_total{counter="pairs_unique"} 7600`,
		`score_pipeline_total{counter="pairs_scored"} 7600`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_server_events_total{event="blocking_`) {
		t.Error("blocking counters leaked into the http_server_events_total family")
	}
	if strings.Contains(text, `score_pipeline_total{counter="blocking_`) ||
		strings.Contains(text, `blocking_pipeline_total{counter="score_`) {
		t.Error("blocking/score families cross-contaminated")
	}
}
