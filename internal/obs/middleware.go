package obs

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// Track counts every request and its latency against the route label;
// routeOf maps a request to its label (e.g. the ServeMux pattern that will
// dispatch it) and defaults to "METHOD /path", which is fine only for
// low-cardinality path spaces. Place Track outermost (after logging) so
// shed and timed-out requests are observed too.
func Track(m *Metrics, routeOf func(*http.Request) string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrapWriter(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			route := ""
			if routeOf != nil {
				route = routeOf(r)
			}
			if route == "" {
				route = r.Method + " " + r.URL.Path
			}
			m.Observe(route, sw.Status(), time.Since(start))
		})
	}
}

// Logging emits one structured line per request (method, path, status,
// bytes, duration, remote). A nil logger uses slog.Default().
func Logging(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			l := logger
			if l == nil {
				l = slog.Default()
			}
			sw := wrapWriter(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			l.Info("request",
				"method", r.Method,
				"path", r.URL.RequestURI(),
				"status", sw.Status(),
				"bytes", sw.bytes,
				"durMs", float64(time.Since(start))/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		})
	}
}

// Recover converts handler panics into enveloped 500s, increments the
// "panics" counter and logs the stack. http.ErrAbortHandler is re-raised
// per net/http convention.
func Recover(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrapWriter(w)
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if m != nil {
					m.Inc("panics")
				}
				slog.Default().Error("handler panic",
					"path", r.URL.Path, "panic", p, "stack", string(debug.Stack()))
				if !sw.wrote {
					WriteError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// Timeout attaches a deadline to the request context. Handlers are expected
// to honor r.Context() (the docstore scans do); when the handler returns
// with the deadline exceeded and nothing written, the middleware answers
// 504 and increments the "timeouts" counter. d <= 0 disables the deadline.
func Timeout(d time.Duration, m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if d <= 0 {
				next.ServeHTTP(w, r)
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			sw := wrapWriter(w)
			next.ServeHTTP(sw, r.WithContext(ctx))
			if ctx.Err() != nil && !sw.wrote {
				if m != nil {
					m.Inc("timeouts")
				}
				WriteError(sw, http.StatusGatewayTimeout, "timeout", "request exceeded the server deadline")
			}
		})
	}
}

// InflightLimit caps concurrently served requests at n; excess requests are
// shed immediately with an enveloped 503 and the "shed" counter. It also
// maintains the in-flight gauge. n <= 0 disables the cap (the gauge is
// still maintained).
func InflightLimit(n int, m *Metrics) Middleware {
	var sem chan struct{}
	if n > 0 {
		sem = make(chan struct{}, n)
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				default:
					if m != nil {
						m.Inc("shed")
					}
					WriteError(w, http.StatusServiceUnavailable, "overloaded", "server is at its in-flight request limit")
					return
				}
			}
			if m != nil {
				m.AddInFlight(1)
				defer m.AddInFlight(-1)
			}
			next.ServeHTTP(w, r)
		})
	}
}
