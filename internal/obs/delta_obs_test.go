package obs

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Metrics must satisfy core's ingest observer so a delta apply can report
// its counters straight onto /metrics.
var _ core.IngestObserver = (*Metrics)(nil)

func TestDeltaPrometheusFamily(t *testing.T) {
	m := NewMetrics()
	m.AddN("delta_applies", 2)
	m.AddN("delta_rows_decoded", 1000)
	m.AddN("delta_rows_unchanged", 950)
	m.AddN("delta_records_added", 40)
	m.AddN("delta_new_objects", 10)
	m.AddN("delta_clusters_touched", 45)
	m.AddN("delta_clusters_dirty", 30)
	m.AddN("delta_clusters_rescored", 30)
	m.AddN("ingest_rows_decoded", 1000)

	text := m.PrometheusText()
	for _, want := range []string{
		`delta_pipeline_total{counter="applies"} 2`,
		`delta_pipeline_total{counter="rows_decoded"} 1000`,
		`delta_pipeline_total{counter="rows_unchanged"} 950`,
		`delta_pipeline_total{counter="records_added"} 40`,
		`delta_pipeline_total{counter="new_objects"} 10`,
		`delta_pipeline_total{counter="clusters_touched"} 45`,
		`delta_pipeline_total{counter="clusters_dirty"} 30`,
		`delta_pipeline_total{counter="clusters_rescored"} 30`,
		`ingest_pipeline_total{counter="rows_decoded"} 1000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_server_events_total{event="delta_`) {
		t.Error("delta counters leaked into the http_server_events_total family")
	}
	if strings.Contains(text, `ingest_pipeline_total{counter="delta_`) ||
		strings.Contains(text, `delta_pipeline_total{counter="ingest_`) {
		t.Error("delta/ingest families cross-contaminated")
	}
}
