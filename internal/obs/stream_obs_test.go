package obs

import (
	"strings"
	"testing"
)

// TestStreamPrometheusFamilies: the streaming pipeline's counters route
// into their own blocking_stream_total / dedup_stream_total families —
// and, sharing the blocking_ prefix, blocking_stream_* must not fall into
// the materialized blocking_pipeline_total family.
func TestStreamPrometheusFamilies(t *testing.T) {
	m := NewMetrics()
	m.AddN("blocking_stream_batches", 42)
	m.AddN("blocking_stream_pairs", 170000)
	m.AddN("blocking_stream_peak_backlog", 3)
	m.AddN("dedup_stream_batches", 42)
	m.AddN("dedup_stream_pairs", 170000)
	m.AddN("blocking_pairs_unique", 170000)
	m.AddN("score_pairs_scored", 170000)

	text := m.PrometheusText()
	for _, want := range []string{
		`blocking_stream_total{counter="batches"} 42`,
		`blocking_stream_total{counter="pairs"} 170000`,
		`blocking_stream_total{counter="peak_backlog"} 3`,
		`dedup_stream_total{counter="batches"} 42`,
		`dedup_stream_total{counter="pairs"} 170000`,
		`blocking_pipeline_total{counter="pairs_unique"} 170000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	// The longer prefix must win: stream counters never render as
	// blocking_pipeline_total{counter="stream_..."}.
	if strings.Contains(text, `blocking_pipeline_total{counter="stream_`) {
		t.Error("blocking_stream counters leaked into blocking_pipeline_total")
	}
	if strings.Contains(text, `http_server_events_total{event="dedup_stream_`) {
		t.Error("dedup_stream counters leaked into http_server_events_total")
	}
}
