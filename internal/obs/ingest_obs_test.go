package obs

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Metrics must satisfy the ingest pipeline's observer interface so a process
// importing snapshots can expose ingest counters on its /metrics endpoint.
var _ core.IngestObserver = (*Metrics)(nil)

func TestAddNAndIngestPrometheusFamily(t *testing.T) {
	m := NewMetrics()
	m.AddN("ingest_rows_decoded", 1200)
	m.AddN("ingest_rows_decoded", 300)
	m.AddN("ingest_records_added", 40)
	m.Inc("panics")

	if got := m.Counter("ingest_rows_decoded"); got != 1500 {
		t.Fatalf("AddN accumulated %d, want 1500", got)
	}

	text := m.PrometheusText()
	for _, want := range []string{
		`ingest_pipeline_total{counter="rows_decoded"} 1500`,
		`ingest_pipeline_total{counter="records_added"} 40`,
		`http_server_events_total{event="panics"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_server_events_total{event="ingest_`) {
		t.Error("ingest counters leaked into the http_server_events_total family")
	}
}
