package obs

import (
	"strings"
	"testing"

	"repro/internal/dedup"
)

// Metrics must satisfy the scoring engine's observer interface so a process
// evaluating matching quality can expose scoring counters on /metrics.
var _ dedup.ScoreObserver = (*Metrics)(nil)

func TestScorePrometheusFamily(t *testing.T) {
	m := NewMetrics()
	m.AddN("score_pairs_scored", 1000)
	m.AddN("score_memo_hits", 800)
	m.AddN("score_memo_misses", 200)
	m.AddN("score_memo_skips", 0)
	m.AddN("ingest_rows_decoded", 5)
	m.Inc("panics")

	text := m.PrometheusText()
	for _, want := range []string{
		`score_pipeline_total{counter="pairs_scored"} 1000`,
		`score_pipeline_total{counter="memo_hits"} 800`,
		`score_pipeline_total{counter="memo_misses"} 200`,
		`ingest_pipeline_total{counter="rows_decoded"} 5`,
		`http_server_events_total{event="panics"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_server_events_total{event="score_`) {
		t.Error("score counters leaked into the http_server_events_total family")
	}
	if strings.Contains(text, `ingest_pipeline_total{counter="score_`) ||
		strings.Contains(text, `score_pipeline_total{counter="ingest_`) {
		t.Error("score/ingest families cross-contaminated")
	}
}
