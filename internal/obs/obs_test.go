package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), mw("a"), nil, mw("b"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := strings.Join(order, ","); got != "a,b,handler" {
		t.Fatalf("order = %s", got)
	}
}

func TestRecoverPanicBecomes500WithMetric(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Track(m, nil), Recover(m))
	rec := httptest.NewRecorder()
	slog.SetDefault(quietLogger())
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/explode", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "internal" {
		t.Fatalf("body = %q (err %v)", rec.Body.String(), err)
	}
	if m.Counter("panics") != 1 {
		t.Fatalf("panics counter = %d", m.Counter("panics"))
	}
	snap := m.Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].ByCode["500"] != 1 {
		t.Fatalf("snapshot misses the 500: %+v", snap.Routes)
	}
}

func TestTimeoutFires(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A well-behaved handler: waits on its context and gives up without
		// writing.
		<-r.Context().Done()
	}), Timeout(5*time.Millisecond, m))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "timeout" {
		t.Fatalf("body = %q", rec.Body.String())
	}
	if m.Counter("timeouts") != 1 {
		t.Fatalf("timeouts counter = %d", m.Counter("timeouts"))
	}
	// A handler that wrote before the deadline is left alone.
	h = Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		<-r.Context().Done()
	}), Timeout(5*time.Millisecond, m))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("late-write status = %d", rec.Code)
	}
}

func TestInflightLimitSheds(t *testing.T) {
	m := NewMetrics()
	occupied := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(occupied)
		<-release
	}), InflightLimit(1, m))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/hold", nil))
	}()
	<-occupied
	if got := m.InFlight(); got != 1 {
		t.Fatalf("in-flight gauge = %d", got)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/hold", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "overloaded" {
		t.Fatalf("shed body = %q", rec.Body.String())
	}
	if m.Counter("shed") != 1 {
		t.Fatalf("shed counter = %d", m.Counter("shed"))
	}
	close(release)
	wg.Wait()
	if got := m.InFlight(); got != 0 {
		t.Fatalf("in-flight gauge after drain = %d", got)
	}
}

func TestTrackAndMetricsHandler(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
		w.Write([]byte("ok"))
	}), Logging(quietLogger()), Track(m, func(r *http.Request) string { return "GET /v1/thing" }))
	for i := 0; i < 5; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/thing/123", nil))
	}

	snap := m.Snapshot()
	if len(snap.Routes) != 1 {
		t.Fatalf("routes = %+v", snap.Routes)
	}
	r := snap.Routes[0]
	if r.Route != "GET /v1/thing" || r.Requests != 5 || r.ByCode["200"] != 5 {
		t.Fatalf("route snapshot = %+v", r)
	}
	if r.P50MS <= 0 || r.P99MS < r.P50MS || r.MaxMS < 1 {
		t.Fatalf("latency quantiles look wrong: %+v", r)
	}

	// JSON exposition.
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Routes) != 1 || got.Routes[0].Requests != 5 {
		t.Fatalf("json snapshot = %+v", got)
	}

	// Prometheus exposition.
	rec = httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`http_requests_total{route="GET /v1/thing",code="200"} 5`,
		`http_request_duration_seconds{route="GET /v1/thing",quantile="0.99"}`,
		`http_request_duration_seconds_count{route="GET /v1/thing"} 5`,
		"# TYPE http_requests_in_flight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output misses %q:\n%s", want, text)
		}
	}
}
