package httpapi

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/obs"
	"repro/internal/plaus"
	"repro/internal/synth"
)

func testDataset(t *testing.T) *core.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig(19, 150)
	cfg.Snapshots = synth.Calendar(2008, 3)
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		ds.ImportSnapshot(s)
	}
	plaus.Update(ds)
	hetero.Update(ds)
	ds.Publish()
	return ds
}

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(testDataset(t), append([]Option{WithLogger(testLogger())}, opts...)...))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil && err != io.EOF {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// respMeta mirrors the envelope's meta block.
type respMeta struct {
	Generation uint64 `json:"generation"`
	Total      int    `json:"total"`
	NextCursor string `json:"nextCursor"`
}

// getData decodes a {data, meta} envelope, unmarshaling data into `into`
// (which may be nil to ignore the payload).
func getData(t *testing.T, url string, into any) (int, respMeta) {
	t.Helper()
	var env struct {
		Data json.RawMessage `json:"data"`
		Meta respMeta        `json:"meta"`
	}
	code := getJSON(t, url, &env)
	if into != nil && len(env.Data) > 0 && string(env.Data) != "null" {
		if err := json.Unmarshal(env.Data, into); err != nil {
			t.Fatalf("GET %s: data decode: %v", url, err)
		}
	}
	return code, env.Meta
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	code, m := getData(t, srv.URL+"/v1/stats", &stats)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if m.Generation == 0 {
		t.Error("meta.generation missing")
	}
	if stats["mode"] != "trimming" {
		t.Errorf("mode = %v", stats["mode"])
	}
	if stats["clusters"].(float64) <= 0 || stats["records"].(float64) <= 0 {
		t.Errorf("empty stats: %v", stats)
	}
	if stats["totalRows"].(float64) < stats["records"].(float64) {
		t.Errorf("total rows < records: %v", stats)
	}
}

func TestListEnvelopes(t *testing.T) {
	srv := testServer(t)
	var years []map[string]any
	code, m := getData(t, srv.URL+"/v1/years", &years)
	if code != 200 || len(years) == 0 {
		t.Fatalf("years: code %d, %+v", code, years)
	}
	if m.Total != len(years) {
		t.Errorf("years total = %d, items = %d", m.Total, len(years))
	}
	var versions []map[string]any
	code, m = getData(t, srv.URL+"/v1/versions", &versions)
	if code != 200 || m.Total != 1 {
		t.Fatalf("versions: code %d, total %d", code, m.Total)
	}
	var hist map[string]int
	if code, _ := getData(t, srv.URL+"/v1/histogram", &hist); code != 200 || len(hist) == 0 {
		t.Fatalf("histogram: code %d, %v", code, hist)
	}
}

func TestClusterLookup(t *testing.T) {
	srv := testServer(t)
	var list []map[string]any
	if code, _ := getData(t, srv.URL+"/v1/clusters?score=size&min=2&limit=1", &list); code != 200 || len(list) == 0 {
		t.Fatalf("query: code %d, %+v", code, list)
	}
	ncid := list[0]["ncid"].(string)
	var doc map[string]any
	if code, _ := getData(t, srv.URL+"/v1/clusters/"+ncid, &doc); code != 200 {
		t.Fatalf("lookup code = %d", code)
	}
	if doc["_id"] != ncid {
		t.Errorf("doc id = %v", doc["_id"])
	}
	if _, ok := doc["records"]; !ok {
		t.Error("cluster doc misses records")
	}
}

func TestRecordsEndpoint(t *testing.T) {
	ds := testDataset(t)
	for _, mode := range []bool{true, false} {
		srv := httptest.NewServer(New(ds, WithLogger(testLogger()), WithSnapshotServing(mode)))
		var list []map[string]any
		if code, _ := getData(t, srv.URL+"/v1/clusters?limit=1", &list); code != 200 || len(list) == 0 {
			t.Fatalf("snapshot=%v: no clusters to look up", mode)
		}
		ncid := list[0]["ncid"].(string)
		var view map[string]any
		code, m := getData(t, srv.URL+"/v1/records/"+ncid, &view)
		if code != 200 {
			t.Fatalf("snapshot=%v: record lookup = %d", mode, code)
		}
		if m.Generation == 0 {
			t.Errorf("snapshot=%v: record view misses generation", mode)
		}
		if view["ncid"] != ncid {
			t.Errorf("snapshot=%v: view ncid = %v", mode, view["ncid"])
		}
		if _, ok := view["records"]; !ok {
			t.Errorf("snapshot=%v: record view misses records", mode)
		}
		if _, ok := view["meta"]; ok {
			t.Errorf("snapshot=%v: record view leaks the meta block", mode)
		}
		var env obs.ErrorEnvelope
		if code := getJSON(t, srv.URL+"/v1/records/NOPE", &env); code != 404 || env.Error.Code != "not_found" {
			t.Errorf("snapshot=%v: missing ncid: code %d, %+v", mode, code, env)
		}
		srv.Close()
	}
}

func TestConditionalGet(t *testing.T) {
	ds := testDataset(t)
	api := New(ds, WithLogger(testLogger()))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	gen := resp.Header.Get(headerGeneration)
	if etag == "" || gen == "" {
		t.Fatalf("missing validators: etag=%q gen=%q", etag, gen)
	}
	if etag != etagFor(api.Generation()) {
		t.Fatalf("etag = %q, want %q", etag, etagFor(api.Generation()))
	}

	// Revalidation with the current ETag answers 304 with no body.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/stats", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: status %d, body %q", resp.StatusCode, body)
	}

	// A swap invalidates the validator: the same If-None-Match now gets a
	// full 200 with the new generation.
	api.Publish(ds)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap revalidation: status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Fatalf("etag did not change across swap: %q", got)
	}
}

func TestResponseCache(t *testing.T) {
	ds := testDataset(t)
	api := New(ds, WithLogger(testLogger()))
	srv := httptest.NewServer(api)
	defer srv.Close()

	get := func() (string, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/clusters/summary")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Cache"), body
	}
	xc1, body1 := get()
	xc2, body2 := get()
	if xc1 != "miss" || xc2 != "hit" {
		t.Fatalf("X-Cache sequence = %q, %q; want miss, hit", xc1, xc2)
	}
	if string(body1) != string(body2) {
		t.Fatal("cache replay diverged from the computed response")
	}
	if hits := api.Metrics().Counter("serving_cache_hits"); hits != 1 {
		t.Fatalf("serving_cache_hits = %d, want 1", hits)
	}

	// A swap changes the key generation: the next request is a miss again.
	api.Publish(ds)
	if xc, _ := get(); xc != "miss" {
		t.Fatalf("post-swap X-Cache = %q, want miss", xc)
	}

	// Disabled cache serves identical data without the X-Cache header.
	plain := httptest.NewServer(New(ds, WithLogger(testLogger()), WithResponseCache(-1)))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/v1/clusters/summary")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "" {
		t.Fatal("cache disabled but X-Cache header present")
	}
}

func TestReadinessLifecycle(t *testing.T) {
	api := NewDeferred(WithLogger(testLogger()))
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Not ready: data endpoints and healthz answer 503 not_ready; livez is
	// alive at generation 0.
	for _, path := range []string{"/v1/healthz", "/v1/stats", "/v1/clusters/summary", "/v1/records/x"} {
		var env obs.ErrorEnvelope
		if code := getJSON(t, srv.URL+path, &env); code != 503 || env.Error.Code != "not_ready" {
			t.Fatalf("%s before publish: code %d, %+v", path, code, env)
		}
	}
	var live map[string]any
	code, m := getData(t, srv.URL+"/v1/livez", &live)
	if code != 200 || live["status"] != "alive" || m.Generation != 0 {
		t.Fatalf("livez before publish: code %d, %v, gen %d", code, live, m.Generation)
	}

	if gen := api.Publish(testDataset(t)); gen != 1 {
		t.Fatalf("first publish generation = %d", gen)
	}
	var health map[string]any
	code, m = getData(t, srv.URL+"/v1/healthz", &health)
	if code != 200 || health["status"] != "ready" || m.Generation != 1 {
		t.Fatalf("healthz after publish: code %d, %v, gen %d", code, health, m.Generation)
	}
	if health["clusters"].(float64) <= 0 {
		t.Fatalf("healthz misses corpus shape: %v", health)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name     string
		method   string
		path     string
		wantCode int
		wantErr  string
	}{
		{"bad score", "GET", "/v1/clusters?score=bogus", 400, "bad_request"},
		{"bad min", "GET", "/v1/clusters?min=abc", 400, "bad_request"},
		{"bad max", "GET", "/v1/clusters?max=x", 400, "bad_request"},
		{"zero limit", "GET", "/v1/clusters?limit=0", 400, "bad_request"},
		{"huge limit", "GET", "/v1/clusters?limit=99999", 400, "bad_request"},
		{"garbage cursor", "GET", "/v1/clusters?cursor=!!!", 400, "bad_cursor"},
		{"forged cursor", "GET", "/v1/clusters?cursor=Tk9QRQ", 400, "bad_cursor"},
		{"unknown cluster", "GET", "/v1/clusters/NOPE", 404, "not_found"},
		{"unknown record", "GET", "/v1/records/NOPE", 404, "not_found"},
		{"unknown path", "GET", "/v1/nope", 404, "not_found"},
		{"method not allowed", "POST", "/v1/clusters", 405, "method_not_allowed"},
		{"method not allowed legacy", "DELETE", "/v1/stats", 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content-type = %q", ct)
			}
			var env obs.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if env.Error.Code != tc.wantErr {
				t.Fatalf("error code = %q, want %q", env.Error.Code, tc.wantErr)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func TestCursorPagination(t *testing.T) {
	srv := testServer(t)
	// Full result in one oversized page is the reference.
	var full []map[string]any
	code, fm := getData(t, srv.URL+"/v1/clusters?score=size&min=1&limit=1000", &full)
	if code != 200 {
		t.Fatalf("reference query code = %d", code)
	}
	if fm.Total != len(full) {
		t.Fatalf("reference total %d != items %d", fm.Total, len(full))
	}
	// Walk the same range in pages of 7.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(full) {
			t.Fatal("pagination does not terminate")
		}
		url := srv.URL + "/v1/clusters?score=size&min=1&limit=7"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var items []map[string]any
		code, m := getData(t, url, &items)
		if code != 200 {
			t.Fatalf("page %d code = %d", pages, code)
		}
		if len(items) > 7 {
			t.Fatalf("page %d oversize: %d items", pages, len(items))
		}
		if m.Total != fm.Total {
			t.Fatalf("page %d total = %d, want %d", pages, m.Total, fm.Total)
		}
		for _, it := range items {
			walked = append(walked, it["ncid"].(string))
		}
		if m.NextCursor == "" {
			break
		}
		cursor = m.NextCursor
	}
	if len(walked) != len(full) {
		t.Fatalf("walked %d clusters, want %d", len(walked), len(full))
	}
	seen := map[string]bool{}
	for i, id := range walked {
		if seen[id] {
			t.Fatalf("duplicate %s across pages", id)
		}
		seen[id] = true
		if full[i]["ncid"] != id {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

func TestScoreRangeBounds(t *testing.T) {
	srv := testServer(t)
	var suspects []map[string]any
	if code, _ := getData(t, srv.URL+"/v1/clusters?score=plausibility&max=0.99", &suspects); code != 200 {
		t.Fatalf("code = %d", code)
	}
	for _, s := range suspects {
		if p, ok := s["plausibility"].(float64); !ok || p > 0.99 {
			t.Errorf("out-of-range result: %v", s)
		}
	}
}

func TestLegacyPathsRedirect(t *testing.T) {
	srv := testServer(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for path, want := range map[string]string{
		"/stats":                       "/v1/stats",
		"/clusters?score=size&limit=3": "/v1/clusters?score=size&limit=3",
	} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("%s: status = %d", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != want {
			t.Fatalf("%s: location = %q, want %q", path, loc, want)
		}
	}
	// A default client follows the alias transparently.
	var stats map[string]any
	if code, _ := getData(t, srv.URL+"/stats", &stats); code != 200 || stats["mode"] != "trimming" {
		t.Fatalf("followed legacy /stats: code %d, %v", code, stats)
	}
}

// TestLegacyRedirectMethodAndQuery is the regression test for the redirect
// bugs: the query string must survive the redirect, and non-GET methods
// must get 308 (which preserves the method) instead of 301 (which lets
// clients degrade to GET).
func TestLegacyRedirectMethodAndQuery(t *testing.T) {
	srv := testServer(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	req, _ := http.NewRequest("POST", srv.URL+"/clusters?score=size&min=2", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect {
		t.Fatalf("POST redirect status = %d, want %d", resp.StatusCode, http.StatusPermanentRedirect)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/clusters?score=size&min=2" {
		t.Fatalf("POST redirect location = %q", loc)
	}

	req, _ = http.NewRequest("HEAD", srv.URL+"/stats", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("HEAD redirect status = %d, want 301", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	getData(t, srv.URL+"/v1/stats", &stats)
	getData(t, srv.URL+"/v1/stats", &stats)
	var list []map[string]any
	getData(t, srv.URL+"/v1/clusters?limit=5", &list)

	var snap obs.Snapshot
	if code := getJSON(t, srv.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics code = %d", code)
	}
	byRoute := map[string]obs.RouteSnapshot{}
	for _, r := range snap.Routes {
		byRoute[r.Route] = r
	}
	if got := byRoute["GET /v1/stats"]; got.Requests != 2 || got.ByCode["200"] != 2 {
		t.Fatalf("stats route = %+v", got)
	}
	if got := byRoute["GET /v1/clusters"]; got.Requests != 1 {
		t.Fatalf("clusters route = %+v", got)
	}
	if got := byRoute["GET /v1/clusters"]; got.P99MS < got.P50MS || got.MaxMS <= 0 {
		t.Fatalf("quantiles look wrong: %+v", got)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), `http_requests_total{route="GET /v1/stats",code="200"} 2`) {
		t.Fatalf("prometheus output misses stats counter:\n%s", text)
	}
	// The serving layer's counters surface in their own family: one swap
	// from New, one cache hit from the repeated stats request.
	for _, want := range []string{
		`serving_total{counter="swaps"} 1`,
		`serving_total{counter="cache_hits"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("prometheus output misses %q:\n%s", want, text)
		}
	}
}

func TestWriteJSONReportsEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, 200, map[string]any{"bad": func() {}}) // funcs cannot encode
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var env obs.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "internal" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestContentLengthSet(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength <= 0 {
		t.Fatalf("ContentLength = %d", resp.ContentLength)
	}
}
