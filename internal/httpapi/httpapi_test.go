package httpapi

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/obs"
	"repro/internal/plaus"
	"repro/internal/synth"
)

func testDataset(t *testing.T) *core.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig(19, 150)
	cfg.Snapshots = synth.Calendar(2008, 3)
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		ds.ImportSnapshot(s)
	}
	plaus.Update(ds)
	hetero.Update(ds)
	ds.Publish()
	return ds
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := httptest.NewServer(New(testDataset(t), WithLogger(logger)))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil && err != io.EOF {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// page mirrors the list envelope.
type page struct {
	Items      []map[string]any `json:"items"`
	Total      int              `json:"total"`
	NextCursor string           `json:"nextCursor"`
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats["mode"] != "trimming" {
		t.Errorf("mode = %v", stats["mode"])
	}
	if stats["clusters"].(float64) <= 0 || stats["records"].(float64) <= 0 {
		t.Errorf("empty stats: %v", stats)
	}
	if stats["totalRows"].(float64) < stats["records"].(float64) {
		t.Errorf("total rows < records: %v", stats)
	}
}

func TestListEnvelopes(t *testing.T) {
	srv := testServer(t)
	var years page
	if code := getJSON(t, srv.URL+"/v1/years", &years); code != 200 || len(years.Items) == 0 {
		t.Fatalf("years: code %d, %+v", code, years)
	}
	if years.Total != len(years.Items) {
		t.Errorf("years total = %d, items = %d", years.Total, len(years.Items))
	}
	var versions page
	if code := getJSON(t, srv.URL+"/v1/versions", &versions); code != 200 || versions.Total != 1 {
		t.Fatalf("versions: code %d, %+v", code, versions)
	}
	var hist map[string]int
	if code := getJSON(t, srv.URL+"/v1/histogram", &hist); code != 200 || len(hist) == 0 {
		t.Fatalf("histogram: code %d, %v", code, hist)
	}
}

func TestClusterLookup(t *testing.T) {
	srv := testServer(t)
	var list page
	if code := getJSON(t, srv.URL+"/v1/clusters?score=size&min=2&limit=1", &list); code != 200 || len(list.Items) == 0 {
		t.Fatalf("query: code %d, %+v", code, list)
	}
	ncid := list.Items[0]["ncid"].(string)
	var doc map[string]any
	if code := getJSON(t, srv.URL+"/v1/clusters/"+ncid, &doc); code != 200 {
		t.Fatalf("lookup code = %d", code)
	}
	if doc["_id"] != ncid {
		t.Errorf("doc id = %v", doc["_id"])
	}
	if _, ok := doc["records"]; !ok {
		t.Error("cluster doc misses records")
	}
}

func TestErrorEnvelopes(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name     string
		method   string
		path     string
		wantCode int
		wantErr  string
	}{
		{"bad score", "GET", "/v1/clusters?score=bogus", 400, "bad_request"},
		{"bad min", "GET", "/v1/clusters?min=abc", 400, "bad_request"},
		{"bad max", "GET", "/v1/clusters?max=x", 400, "bad_request"},
		{"zero limit", "GET", "/v1/clusters?limit=0", 400, "bad_request"},
		{"huge limit", "GET", "/v1/clusters?limit=99999", 400, "bad_request"},
		{"garbage cursor", "GET", "/v1/clusters?cursor=!!!", 400, "bad_cursor"},
		{"forged cursor", "GET", "/v1/clusters?cursor=Tk9QRQ", 400, "bad_cursor"},
		{"unknown cluster", "GET", "/v1/clusters/NOPE", 404, "not_found"},
		{"unknown path", "GET", "/v1/nope", 404, "not_found"},
		{"method not allowed", "POST", "/v1/clusters", 405, "method_not_allowed"},
		{"method not allowed legacy", "DELETE", "/v1/stats", 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content-type = %q", ct)
			}
			var env obs.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if env.Error.Code != tc.wantErr {
				t.Fatalf("error code = %q, want %q", env.Error.Code, tc.wantErr)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func TestCursorPagination(t *testing.T) {
	srv := testServer(t)
	// Full result in one oversized page is the reference.
	var full page
	if code := getJSON(t, srv.URL+"/v1/clusters?score=size&min=1&limit=1000", &full); code != 200 {
		t.Fatalf("reference query code = %d", code)
	}
	if full.Total != len(full.Items) {
		t.Fatalf("reference total %d != items %d", full.Total, len(full.Items))
	}
	// Walk the same range in pages of 7.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(full.Items) {
			t.Fatal("pagination does not terminate")
		}
		url := srv.URL + "/v1/clusters?score=size&min=1&limit=7"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var p page
		if code := getJSON(t, url, &p); code != 200 {
			t.Fatalf("page %d code = %d", pages, code)
		}
		if len(p.Items) > 7 {
			t.Fatalf("page %d oversize: %d items", pages, len(p.Items))
		}
		if p.Total != full.Total {
			t.Fatalf("page %d total = %d, want %d", pages, p.Total, full.Total)
		}
		for _, it := range p.Items {
			walked = append(walked, it["ncid"].(string))
		}
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if len(walked) != len(full.Items) {
		t.Fatalf("walked %d clusters, want %d", len(walked), len(full.Items))
	}
	seen := map[string]bool{}
	for i, id := range walked {
		if seen[id] {
			t.Fatalf("duplicate %s across pages", id)
		}
		seen[id] = true
		if full.Items[i]["ncid"] != id {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

func TestScoreRangeBounds(t *testing.T) {
	srv := testServer(t)
	var suspects page
	if code := getJSON(t, srv.URL+"/v1/clusters?score=plausibility&max=0.99", &suspects); code != 200 {
		t.Fatalf("code = %d", code)
	}
	for _, s := range suspects.Items {
		if p, ok := s["plausibility"].(float64); !ok || p > 0.99 {
			t.Errorf("out-of-range result: %v", s)
		}
	}
}

func TestLegacyPathsRedirect(t *testing.T) {
	srv := testServer(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for path, want := range map[string]string{
		"/stats":                       "/v1/stats",
		"/clusters?score=size&limit=3": "/v1/clusters?score=size&limit=3",
	} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("%s: status = %d", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != want {
			t.Fatalf("%s: location = %q, want %q", path, loc, want)
		}
	}
	// A default client follows the alias transparently.
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 || stats["mode"] != "trimming" {
		t.Fatalf("followed legacy /stats: code %d, %v", code, stats)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	getJSON(t, srv.URL+"/v1/stats", &stats)
	getJSON(t, srv.URL+"/v1/stats", &stats)
	var list page
	getJSON(t, srv.URL+"/v1/clusters?limit=5", &list)

	var snap obs.Snapshot
	if code := getJSON(t, srv.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics code = %d", code)
	}
	byRoute := map[string]obs.RouteSnapshot{}
	for _, r := range snap.Routes {
		byRoute[r.Route] = r
	}
	if got := byRoute["GET /v1/stats"]; got.Requests != 2 || got.ByCode["200"] != 2 {
		t.Fatalf("stats route = %+v", got)
	}
	if got := byRoute["GET /v1/clusters"]; got.Requests != 1 {
		t.Fatalf("clusters route = %+v", got)
	}
	if got := byRoute["GET /v1/clusters"]; got.P99MS < got.P50MS || got.MaxMS <= 0 {
		t.Fatalf("quantiles look wrong: %+v", got)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), `http_requests_total{route="GET /v1/stats",code="200"} 2`) {
		t.Fatalf("prometheus output misses stats counter:\n%s", text)
	}
}

func TestWriteJSONReportsEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, 200, map[string]any{"bad": func() {}}) // funcs cannot encode
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var env obs.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "internal" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestContentLengthSet(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength <= 0 {
		t.Fatalf("ContentLength = %d", resp.ContentLength)
	}
}
