package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/synth"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := synth.DefaultConfig(19, 150)
	cfg.Snapshots = synth.Calendar(2008, 3)
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		ds.ImportSnapshot(s)
	}
	plaus.Update(ds)
	hetero.Update(ds)
	ds.Publish()
	srv := httptest.NewServer(New(ds))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if stats["mode"] != "trimming" {
		t.Errorf("mode = %v", stats["mode"])
	}
	if stats["clusters"].(float64) <= 0 || stats["records"].(float64) <= 0 {
		t.Errorf("empty stats: %v", stats)
	}
	if stats["totalRows"].(float64) < stats["records"].(float64) {
		t.Errorf("total rows < records: %v", stats)
	}
}

func TestYearsAndHistogramEndpoints(t *testing.T) {
	srv := testServer(t)
	var years []map[string]any
	if code := getJSON(t, srv.URL+"/years", &years); code != 200 || len(years) == 0 {
		t.Fatalf("years: code %d, %v", code, years)
	}
	var hist map[string]int
	if code := getJSON(t, srv.URL+"/histogram", &hist); code != 200 || len(hist) == 0 {
		t.Fatalf("histogram: code %d, %v", code, hist)
	}
	var versions []map[string]any
	if code := getJSON(t, srv.URL+"/versions", &versions); code != 200 || len(versions) != 1 {
		t.Fatalf("versions: code %d, %v", code, versions)
	}
}

func TestClusterLookup(t *testing.T) {
	srv := testServer(t)
	// Find an existing id via the query endpoint.
	var list []map[string]any
	if code := getJSON(t, srv.URL+"/clusters?score=size&min=2&limit=1", &list); code != 200 || len(list) == 0 {
		t.Fatalf("query: code %d, %v", code, list)
	}
	ncid := list[0]["ncid"].(string)
	var doc map[string]any
	if code := getJSON(t, srv.URL+"/clusters/"+ncid, &doc); code != 200 {
		t.Fatalf("lookup code = %d", code)
	}
	if doc["_id"] != ncid {
		t.Errorf("doc id = %v", doc["_id"])
	}
	if _, ok := doc["records"]; !ok {
		t.Error("cluster doc misses records")
	}
	// Unknown id -> 404.
	var e map[string]any
	if code := getJSON(t, srv.URL+"/clusters/NOPE", &e); code != 404 {
		t.Errorf("unknown cluster code = %d", code)
	}
}

func TestScoreRangeQuery(t *testing.T) {
	srv := testServer(t)
	var suspects []map[string]any
	if code := getJSON(t, srv.URL+"/clusters?score=plausibility&max=0.99", &suspects); code != 200 {
		t.Fatalf("code = %d", code)
	}
	for _, s := range suspects {
		if p, ok := s["plausibility"].(float64); !ok || p > 0.99 {
			t.Errorf("out-of-range result: %v", s)
		}
	}
	// Bad parameters -> 400.
	var e map[string]any
	if code := getJSON(t, srv.URL+"/clusters?score=bogus", &e); code != 400 {
		t.Errorf("bad score code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/clusters?min=abc", &e); code != 400 {
		t.Errorf("bad min code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/clusters?limit=0", &e); code != 400 {
		t.Errorf("bad limit code = %d", code)
	}
}

func TestLimitApplies(t *testing.T) {
	srv := testServer(t)
	var list []map[string]any
	if code := getJSON(t, srv.URL+"/clusters?limit=3", &list); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(list) > 3 {
		t.Errorf("limit ignored: %d results", len(list))
	}
}
