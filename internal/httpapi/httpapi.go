// Package httpapi exposes a stored test dataset over a versioned, read-only
// HTTP/JSON API — the stand-in for the MongoDB Compass exploration the
// paper relies on for "exploring, generating, adjusting and using the test
// data" (§5). All resources live under /v1 (the unversioned paths of the
// first release respond with a 301 to their /v1 twin); GET /metrics exposes
// the per-route observability registry.
//
// Conventions: errors are {"error": {"code", "message"}} envelopes; list
// endpoints are {"items", "total", "nextCursor"} envelopes with opaque
// cursor pagination. Handlers honor the request context, so the per-request
// timeout middleware can interrupt long scans.
package httpapi

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/obs"
)

// Config tunes the middleware around the handlers; the zero value of a
// field means "use the default below".
type Config struct {
	Timeout      time.Duration // per-request deadline (default 10s; <0 disables)
	MaxInflight  int           // in-flight request cap (default 256; <0 disables)
	Logger       *slog.Logger  // request logger (default slog.Default())
	StoreWorkers int           // workers for parallel store scans (default/0: all cores)
}

// Option mutates the Config inside New.
type Option func(*Config)

// WithTimeout sets the per-request deadline; d < 0 disables it.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithMaxInflight caps concurrently served requests; n < 0 disables the cap.
func WithMaxInflight(n int) Option { return func(c *Config) { c.MaxInflight = n } }

// WithLogger sets the structured request logger.
func WithLogger(l *slog.Logger) Option { return func(c *Config) { c.Logger = l } }

// WithStoreWorkers sets the worker count for parallel document-store scans
// (the /v1/clusters/summary aggregation); n <= 0 selects GOMAXPROCS.
func WithStoreWorkers(n int) Option { return func(c *Config) { c.StoreWorkers = n } }

// Server wraps a dataset and its document database for serving.
type Server struct {
	ds           *core.Dataset
	db           *docstore.DB
	mux          *http.ServeMux
	metrics      *obs.Metrics
	handler      http.Handler
	storeWorkers int
}

// route is one registered endpoint, relative to the /v1 prefix. Resources
// contribute []route slices (see clusters.go, meta.go) so growing the API
// means adding a routes function, not editing one constructor.
type route struct {
	method  string
	pattern string // resource-relative, e.g. "/clusters/{ncid}"
	handler http.HandlerFunc
}

// New builds a server over the dataset. The document database is
// materialized once; score-range endpoints get ordered indexes.
func New(ds *core.Dataset, opts ...Option) *Server {
	cfg := Config{Timeout: 10 * time.Second, MaxInflight: 256}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Timeout < 0 {
		cfg.Timeout = 0
	}
	if cfg.MaxInflight < 0 {
		cfg.MaxInflight = 0
	}

	db := ds.ToDocDB()
	clusters := db.Collection(core.ClustersCollection)
	clusters.CreateOrderedIndex("plausibility")
	clusters.CreateOrderedIndex("heterogeneity")
	clusters.CreateOrderedIndex("size")

	s := &Server{ds: ds, db: db, mux: http.NewServeMux(), metrics: obs.NewMetrics(),
		storeWorkers: cfg.StoreWorkers}
	// Store counters (pipeline runs, pushdown hits, documents cloned) land
	// in the same registry as the request metrics, so GET /metrics covers
	// the query layer too.
	db.SetObserver(s.metrics)
	s.register(s.metaRoutes())
	s.register(s.clusterRoutes())
	s.register(s.summaryRoutes())
	s.mux.Handle("GET /metrics", s.metrics.Handler())

	s.handler = obs.Chain(http.HandlerFunc(s.dispatch),
		obs.Logging(cfg.Logger),
		obs.Track(s.metrics, s.routeLabel),
		obs.InflightLimit(cfg.MaxInflight, s.metrics),
		obs.Timeout(cfg.Timeout, s.metrics),
		obs.Recover(s.metrics),
	)
	return s
}

// register mounts the routes under /v1 and their unversioned twins as 301
// redirects (one-release compatibility alias).
func (s *Server) register(routes []route) {
	for _, rt := range routes {
		s.mux.HandleFunc(rt.method+" /v1"+rt.pattern, rt.handler)
		s.mux.HandleFunc(rt.method+" "+rt.pattern, redirectToV1)
	}
}

// redirectToV1 301s an unversioned path to its /v1 twin, query preserved.
func redirectToV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, r, target, http.StatusMovedPermanently)
}

// ServeHTTP implements http.Handler through the middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics exposes the observability registry (for benchmarks and tests).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// routeLabel labels requests for metrics with the ServeMux pattern that
// dispatches them, keeping the label space bounded.
func (s *Server) routeLabel(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// dispatch serves the mux behind a writer that rewrites its plain-text
// error pages (404 for unknown paths, 405 with Allow for known ones) into
// the JSON error envelope.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
}

// jsonErrorWriter intercepts non-JSON error responses (the ServeMux's own
// 404/405 pages) and replaces their bodies with the canonical envelope.
// Handler-written errors pass through untouched: they are JSON already.
type jsonErrorWriter struct {
	http.ResponseWriter
	wrote    bool
	replaced bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	ct := w.Header().Get("Content-Type")
	if code >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.replaced = true
		codeName, msg := "error", http.StatusText(code)
		switch code {
		case http.StatusNotFound:
			codeName, msg = "not_found", "no such resource"
		case http.StatusMethodNotAllowed:
			codeName, msg = "method_not_allowed", "method not allowed on this resource"
		}
		w.Header().Del("X-Content-Type-Options")
		obs.WriteError(w.ResponseWriter, code, codeName, msg)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.replaced {
		return len(b), nil // swallow the mux's text body
	}
	if !w.wrote {
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// listPage is the envelope every list endpoint returns.
type listPage struct {
	Items      any    `json:"items"`
	Total      int    `json:"total"`
	NextCursor string `json:"nextCursor,omitempty"`
}

// writeJSON buffers the encoding of v so failures surface as a clean 500
// (instead of a silently truncated 200) and Content-Length is always set.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		slog.Default().Error("httpapi: response encoding failed", "err", err)
		obs.WriteError(w, http.StatusInternalServerError, "internal", "response encoding failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are gone; the client likely went away. Log and move on.
		slog.Default().Error("httpapi: response write failed", "err", err)
	}
}

// writeError renders the canonical error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	obs.WriteError(w, status, code, msg)
}

// cursorPrefix versions the cursor encoding so stale cursors from future
// incompatible encodings fail loudly instead of resolving wrongly.
const cursorPrefix = "v1:"

// encodeCursor renders an opaque page cursor from the last document id of a
// page; "" stays "".
func encodeCursor(afterID string) string {
	if afterID == "" {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + afterID))
}

// decodeCursor resolves an opaque cursor back to a document id; it reports
// malformed input so handlers can 400.
func decodeCursor(cursor string) (string, bool) {
	if cursor == "" {
		return "", true
	}
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil || !strings.HasPrefix(string(raw), cursorPrefix) {
		return "", false
	}
	id := strings.TrimPrefix(string(raw), cursorPrefix)
	return id, id != ""
}
