// Package httpapi exposes a stored test dataset over a small read-only
// HTTP/JSON API — the stand-in for the MongoDB Compass exploration the
// paper relies on for "exploring, generating, adjusting and using the test
// data" (§5). Endpoints cover the dataset statistics, per-cluster lookup,
// score-range queries and the import history.
package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/docstore"
)

// Server wraps a dataset and its document database for serving.
type Server struct {
	ds  *core.Dataset
	db  *docstore.DB
	mux *http.ServeMux
}

// New builds a server over the dataset. The document database is
// materialized once; score-range endpoints get ordered indexes.
func New(ds *core.Dataset) *Server {
	db := ds.ToDocDB()
	clusters := db.Collection(core.ClustersCollection)
	clusters.CreateOrderedIndex("plausibility")
	clusters.CreateOrderedIndex("heterogeneity")
	clusters.CreateOrderedIndex("size")
	s := &Server{ds: ds, db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /years", s.handleYears)
	s.mux.HandleFunc("GET /histogram", s.handleHistogram)
	s.mux.HandleFunc("GET /versions", s.handleVersions)
	s.mux.HandleFunc("GET /clusters/{ncid}", s.handleCluster)
	s.mux.HandleFunc("GET /clusters", s.handleClusterQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders v with a 200 (or the given status).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":           s.ds.Mode.String(),
		"clusters":       s.ds.NumClusters(),
		"records":        s.ds.NumRecords(),
		"duplicatePairs": s.ds.NumPairs(),
		"totalRows":      s.ds.TotalRows(),
		"removedRecords": s.ds.RemovedRecords(),
		"avgClusterSize": s.ds.AvgClusterSize(),
		"maxClusterSize": s.ds.MaxClusterSize(),
		"versions":       len(s.ds.Versions()),
	})
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ds.YearlyStats())
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	hist := s.ds.ClusterSizeHistogram()
	out := map[string]int{}
	for size, n := range hist {
		out[strconv.Itoa(size)] = n
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ds.Versions())
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	ncid := r.PathValue("ncid")
	doc := s.db.Collection(core.ClustersCollection).Get(ncid)
	if doc == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown cluster " + ncid})
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleClusterQuery filters clusters by score ranges:
//
//	GET /clusters?score=plausibility&max=0.8&limit=50
//	GET /clusters?score=heterogeneity&min=0.4&limit=20
//	GET /clusters?score=size&min=5
func (s *Server) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	score := q.Get("score")
	switch score {
	case "":
		score = "size"
	case "plausibility", "heterogeneity", "size":
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{"unknown score " + score})
		return
	}
	var lo, hi any
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad min"})
			return
		}
		lo = f
	}
	if v := q.Get("max"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad max"})
			return
		}
		hi = f
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad limit"})
			return
		}
		limit = n
	}
	docs := s.db.Collection(core.ClustersCollection).FindRange(score, lo, hi)
	if len(docs) > limit {
		docs = docs[:limit]
	}
	// Summaries only: id, size and scores — record bodies via /clusters/{id}.
	out := make([]map[string]any, 0, len(docs))
	for _, d := range docs {
		item := map[string]any{"ncid": d["_id"], "size": d["size"]}
		if p, ok := d["plausibility"]; ok {
			item["plausibility"] = p
		}
		if h, ok := d["heterogeneity"]; ok {
			item["heterogeneity"] = h
		}
		out = append(out, item)
	}
	writeJSON(w, http.StatusOK, out)
}
