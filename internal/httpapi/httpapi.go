// Package httpapi exposes a stored test dataset over a versioned, read-only
// HTTP/JSON API — the stand-in for the MongoDB Compass exploration the
// paper relies on for "exploring, generating, adjusting and using the test
// data" (§5), redesigned for high-QPS census-style lookup: every request is
// served from an immutable, generation-stamped serving snapshot
// (internal/serving) loaded with one atomic pointer read, so a corpus
// reload (Publish) swaps the whole read state without locking or tearing a
// single response. All resources live under /v1 (unversioned paths answer
// 301, non-GET 308, to their /v1 twin); GET /metrics exposes the per-route
// observability registry.
//
// Conventions: every /v1 response is the unified {data, meta, error}
// envelope — data carries the payload (an array for list endpoints), meta
// carries the snapshot generation plus pagination (total, nextCursor), and
// errors are {"error": {"code", "message"}}. Responses carry the snapshot
// generation as an X-Dataset-Generation header and a strong ETag, so
// clients can detect which corpus version they benchmarked against and
// revalidate with If-None-Match (304 until the next swap). Hot aggregate
// endpoints are additionally served from a bounded LRU response cache
// keyed on (generation, resource) — a swap implicitly invalidates it.
package httpapi

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serving"
)

// Config tunes the middleware around the handlers; the zero value of a
// field means "use the default below".
type Config struct {
	Timeout      time.Duration // per-request deadline (default 10s; <0 disables)
	MaxInflight  int           // in-flight request cap (default 256; <0 disables)
	Logger       *slog.Logger  // request logger (default slog.Default())
	StoreWorkers int           // workers for store scans and snapshot builds (default/0: all cores)
	Snapshot     bool          // serve from precomputed snapshots (default on)
	CacheSize    int           // response-cache entries (default 1024; <0 disables)
}

// Option mutates the Config inside New.
type Option func(*Config)

// WithTimeout sets the per-request deadline; d < 0 disables it.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithMaxInflight caps concurrently served requests; n < 0 disables the cap.
func WithMaxInflight(n int) Option { return func(c *Config) { c.MaxInflight = n } }

// WithLogger sets the structured request logger.
func WithLogger(l *slog.Logger) Option { return func(c *Config) { c.Logger = l } }

// WithStoreWorkers sets the worker count for parallel document-store scans
// and snapshot precomputes; n <= 0 selects GOMAXPROCS. Responses and built
// snapshots are identical at any count.
func WithStoreWorkers(n int) Option { return func(c *Config) { c.StoreWorkers = n } }

// WithSnapshotServing selects between the two serving modes: precomputed
// read-optimized snapshots (true, the default) or per-request computation
// against the document store (false — the reference mode the snapshot path
// is pinned byte-identical to).
func WithSnapshotServing(on bool) Option { return func(c *Config) { c.Snapshot = on } }

// WithResponseCache bounds the LRU response cache to n entries; n < 0
// disables caching. The default is 1024 entries.
func WithResponseCache(n int) Option { return func(c *Config) { c.CacheSize = n } }

// Server serves dataset snapshots published through Publish.
type Server struct {
	mux          *http.ServeMux
	metrics      *obs.Metrics
	handler      http.Handler
	source       *serving.Source
	cache        *serving.ResponseCache
	storeWorkers int
	snapshotMode bool
}

// route is one registered endpoint, relative to the /v1 prefix. Resources
// contribute []route slices (see clusters.go, meta.go, records.go,
// health.go) so growing the API means adding a routes function, not editing
// one constructor. Cacheable routes are wrapped with the response cache.
type route struct {
	method    string
	pattern   string // resource-relative, e.g. "/clusters/{ncid}"
	handler   http.HandlerFunc
	cacheable bool
}

// New builds a server and synchronously publishes the dataset as its first
// serving snapshot — the convenience constructor for tests and one-shot
// tools. Long-running servers that want real readiness semantics use
// NewDeferred and Publish.
func New(ds *core.Dataset, opts ...Option) *Server {
	s := NewDeferred(opts...)
	s.Publish(ds)
	return s
}

// NewDeferred builds a server with no snapshot loaded yet: every data
// endpoint (and /v1/healthz) answers 503 not_ready until the first Publish
// completes, while /v1/livez and /metrics are live immediately. This lets
// a process bind its listener before the corpus load and expose honest
// readiness to orchestrators.
func NewDeferred(opts ...Option) *Server {
	cfg := Config{Timeout: 10 * time.Second, MaxInflight: 256, Snapshot: true, CacheSize: 1024}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Timeout < 0 {
		cfg.Timeout = 0
	}
	if cfg.MaxInflight < 0 {
		cfg.MaxInflight = 0
	}

	s := &Server{
		mux:          http.NewServeMux(),
		metrics:      obs.NewMetrics(),
		storeWorkers: cfg.StoreWorkers,
		snapshotMode: cfg.Snapshot,
	}
	s.source = serving.NewSource(s.metrics)
	if cfg.CacheSize >= 0 {
		if cfg.CacheSize == 0 {
			cfg.CacheSize = 1024
		}
		s.cache = serving.NewResponseCache(cfg.CacheSize, s.metrics)
	}
	s.register(s.metaRoutes())
	s.register(s.provenanceRoutes())
	s.register(s.clusterRoutes())
	s.register(s.summaryRoutes())
	s.register(s.recordRoutes())
	s.register(s.healthRoutes())
	s.mux.Handle("GET /metrics", s.metrics.Handler())

	s.handler = obs.Chain(http.HandlerFunc(s.dispatch),
		obs.Logging(cfg.Logger),
		obs.Track(s.metrics, s.routeLabel),
		obs.InflightLimit(cfg.MaxInflight, s.metrics),
		obs.Timeout(cfg.Timeout, s.metrics),
		obs.Recover(s.metrics),
	)
	return s
}

// Publish freezes the dataset into a new serving snapshot — materializing
// its document database, building the ordered score indexes, and (in
// snapshot mode) precomputing the read-optimized lookup tables — and swaps
// it in atomically, returning the new generation. In-flight requests keep
// serving the previous generation untouched; requests arriving after the
// swap see only the new one. Publish is safe to call while serving (reload
// on SIGHUP); the dataset must not be mutated afterwards.
func (s *Server) Publish(ds *core.Dataset) uint64 {
	return s.PublishWithProvenance(ds, nil)
}

// PublishWithProvenance is Publish carrying the raw provenance record of the
// store the dataset was loaded from; it is served verbatim on
// /v1/provenance for this generation. A nil record publishes a generation
// without provenance (the endpoint answers 404).
func (s *Server) PublishWithProvenance(ds *core.Dataset, record json.RawMessage) uint64 {
	db := ds.ToDocDB()
	clusters := db.Collection(core.ClustersCollection)
	clusters.CreateOrderedIndex("plausibility")
	clusters.CreateOrderedIndex("heterogeneity")
	clusters.CreateOrderedIndex("size")
	// Store counters (pipeline runs, pushdown hits, documents cloned) land
	// in the same registry as the request metrics, so GET /metrics covers
	// the query layer too.
	db.SetObserver(s.metrics)
	snap := serving.Build(ds, db, serving.BuildOpts{
		Workers:    s.storeWorkers,
		Precompute: s.snapshotMode,
		Provenance: record,
	})
	return s.source.Swap(snap)
}

// Generation returns the currently served snapshot generation (0 before
// the first Publish).
func (s *Server) Generation() uint64 { return s.source.Generation() }

// register mounts the routes under /v1 and their unversioned twins as
// redirects (one-release compatibility alias; 301 for GET/HEAD, 308
// otherwise so non-GET methods and bodies survive the redirect).
func (s *Server) register(routes []route) {
	for _, rt := range routes {
		h := rt.handler
		if rt.cacheable && s.cache != nil {
			h = s.cached(h)
		}
		s.mux.HandleFunc(rt.method+" /v1"+rt.pattern, h)
		s.mux.HandleFunc(rt.pattern, redirectToV1)
	}
}

// redirectToV1 redirects an unversioned path to its /v1 twin, query string
// preserved: 301 for GET and HEAD, 308 (Permanent Redirect) for every
// other method, which obliges clients to replay the method and body
// instead of degrading to GET.
func redirectToV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	code := http.StatusMovedPermanently
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		code = http.StatusPermanentRedirect
	}
	http.Redirect(w, r, target, code)
}

// ServeHTTP implements http.Handler through the middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics exposes the observability registry (for benchmarks and tests).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// routeLabel labels requests for metrics with the ServeMux pattern that
// dispatches them, keeping the label space bounded.
func (s *Server) routeLabel(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// dispatch serves the mux behind a writer that rewrites its plain-text
// error pages (404 for unknown paths, 405 with Allow for known ones) into
// the JSON error envelope.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
}

// snapCtxKey carries the request's pinned snapshot through the context, so
// the cache wrapper and the handler agree on one generation even if a swap
// lands mid-request.
type snapCtxKey struct{}

// withSnapshot pins a snapshot to the request.
func withSnapshot(r *http.Request, snap *serving.Snapshot) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), snapCtxKey{}, snap))
}

// requireSnapshot resolves the snapshot this request is served from — the
// pinned one when the cache wrapper ran, otherwise the current one, loaded
// exactly once so the ETag, the generation header and the body can never
// disagree. Before the first Publish it answers 503 not_ready and returns
// nil.
func (s *Server) requireSnapshot(w http.ResponseWriter, r *http.Request) *serving.Snapshot {
	snap, _ := r.Context().Value(snapCtxKey{}).(*serving.Snapshot)
	if snap == nil {
		snap = s.source.Current()
	}
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "not_ready", "no serving snapshot loaded yet")
		return nil
	}
	return snap
}

// envelope is the unified success envelope of every /v1 endpoint.
type envelope struct {
	Data any  `json:"data"`
	Meta meta `json:"meta"`
}

// meta is the response metadata: the snapshot generation on every
// response, plus the pagination fields on list endpoints.
type meta struct {
	Generation uint64 `json:"generation"`
	Total      *int   `json:"total,omitempty"`
	NextCursor string `json:"nextCursor,omitempty"`
}

// headerGeneration names the corpus-version response header.
const headerGeneration = "X-Dataset-Generation"

// etagFor renders the strong entity tag of a generation. Data only changes
// on swap, so the generation alone identifies a resource's representation.
func etagFor(gen uint64) string { return `"g` + strconv.FormatUint(gen, 10) + `"` }

// etagMatches reports whether an If-None-Match header matches the ETag.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// writeData renders the success envelope from one snapshot: generation
// headers, strong ETag, If-None-Match revalidation (304), then the
// {data, meta} body. listMeta may be nil for object endpoints.
func (s *Server) writeData(w http.ResponseWriter, r *http.Request, snap *serving.Snapshot, data any, listMeta *meta) {
	m := meta{}
	if listMeta != nil {
		m = *listMeta
	}
	m.Generation = snap.Generation()
	etag := etagFor(m.Generation)
	w.Header().Set("ETag", etag)
	w.Header().Set(headerGeneration, strconv.FormatUint(m.Generation, 10))
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, envelope{Data: data, Meta: m})
}

// jsonErrorWriter intercepts non-JSON error responses (the ServeMux's own
// 404/405 pages) and replaces their bodies with the canonical envelope.
// Handler-written errors pass through untouched: they are JSON already.
type jsonErrorWriter struct {
	http.ResponseWriter
	wrote    bool
	replaced bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	ct := w.Header().Get("Content-Type")
	if code >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.replaced = true
		codeName, msg := "error", http.StatusText(code)
		switch code {
		case http.StatusNotFound:
			codeName, msg = "not_found", "no such resource"
		case http.StatusMethodNotAllowed:
			codeName, msg = "method_not_allowed", "method not allowed on this resource"
		}
		w.Header().Del("X-Content-Type-Options")
		obs.WriteError(w.ResponseWriter, code, codeName, msg)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.replaced {
		return len(b), nil // swallow the mux's text body
	}
	if !w.wrote {
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// writeJSON buffers the encoding of v so failures surface as a clean 500
// (instead of a silently truncated 200) and Content-Length is always set.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		slog.Default().Error("httpapi: response encoding failed", "err", err)
		obs.WriteError(w, http.StatusInternalServerError, "internal", "response encoding failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are gone; the client likely went away. Log and move on.
		slog.Default().Error("httpapi: response write failed", "err", err)
	}
}

// writeError renders the canonical error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	obs.WriteError(w, status, code, msg)
}

// cursorPrefix versions the cursor encoding so stale cursors from future
// incompatible encodings fail loudly instead of resolving wrongly.
const cursorPrefix = "v1:"

// encodeCursor renders an opaque page cursor from the last document id of a
// page; "" stays "".
func encodeCursor(afterID string) string {
	if afterID == "" {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + afterID))
}

// decodeCursor resolves an opaque cursor back to a document id; it reports
// malformed input so handlers can 400.
func decodeCursor(cursor string) (string, bool) {
	if cursor == "" {
		return "", true
	}
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil || !strings.HasPrefix(string(raw), cursorPrefix) {
		return "", false
	}
	id := strings.TrimPrefix(string(raw), cursorPrefix)
	return id, id != ""
}
