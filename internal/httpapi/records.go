package httpapi

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/serving"
)

// recordRoutes serves the census-style point lookup: one person (NCID) →
// their record versions plus cluster-level scores. This is the endpoint the
// consulta-censo pattern optimizes for — very high QPS, tiny responses —
// so it is cacheable and, in snapshot mode, a single map probe.
func (s *Server) recordRoutes() []route {
	return []route{
		{"GET", "/records/{ncid}", s.handleRecord, true},
	}
}

// handleRecord answers GET /v1/records/{ncid}: the record view of one
// person. In snapshot mode the payload was marshaled at build time and the
// lookup is O(1); in store mode the cluster document is fetched and
// projected per request. Both produce byte-identical envelopes.
func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	ncid := r.PathValue("ncid")
	if snap.Precomputed() {
		raw, ok := snap.RecordView(ncid)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "unknown ncid "+ncid)
			return
		}
		s.writeData(w, r, snap, raw, nil)
		return
	}
	doc := snap.DB().Collection(core.ClustersCollection).Get(ncid)
	if doc == nil {
		writeError(w, http.StatusNotFound, "not_found", "unknown ncid "+ncid)
		return
	}
	s.writeData(w, r, snap, serving.RecordViewPayload(doc), nil)
}
