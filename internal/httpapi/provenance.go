package httpapi

import (
	"net/http"

	"repro/internal/provenance"
)

// provenanceRoutes serves the corpus provenance record: the hash-chained,
// Merkle-rooted statement of exactly which bytes this generation was loaded
// from (internal/provenance). Clients benchmarking against the API can pin
// the record's head hash and later re-verify the store with
// `ncstats -verify`. The record is a pure function of the snapshot, so the
// route is cacheable; it revalidates on the generation ETag like every other
// resource.
func (s *Server) provenanceRoutes() []route {
	return []route{
		{"GET", "/provenance", s.handleProvenance, true},
	}
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	raw := snap.Provenance()
	if raw == nil {
		writeError(w, http.StatusNotFound, "no_provenance",
			"the served store carries no provenance record")
		return
	}
	s.metrics.AddN(provenance.CounterServed, 1)
	s.writeData(w, r, snap, raw, nil)
}
