package httpapi

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestSwapUnderLoad hammers the hot endpoints from many goroutines while
// the main goroutine keeps publishing new snapshot generations, and asserts
// that no response is torn: within one response the ETag, the
// X-Dataset-Generation header and the body's meta.generation must always
// name the same generation. Run under -race this also proves the lock-free
// read path has no data races with Publish.
func TestSwapUnderLoad(t *testing.T) {
	ds := testDataset(t)
	api := New(ds, WithLogger(testLogger()))

	var list []map[string]any
	lsrv := httptest.NewServer(api)
	if code, _ := getData(t, lsrv.URL+"/v1/clusters?limit=1", &list); code != 200 || len(list) == 0 {
		t.Fatal("no clusters to look up")
	}
	lsrv.Close()
	ncid := list[0]["ncid"].(string)

	paths := []string{
		"/v1/stats",
		"/v1/clusters/summary",
		"/v1/clusters/summary?minSize=2",
		"/v1/records/" + ncid,
		"/v1/healthz",
	}

	const (
		readers          = 8
		requestsPerIter  = 20
		publishRounds    = 25
		minGenBeforeStop = 5
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan string, readers)

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(i+w)%len(paths)]
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != 200 {
					errc <- path + ": status " + strconv.Itoa(rec.Code)
					return
				}
				etag := rec.Header().Get("ETag")
				hdr := rec.Header().Get(headerGeneration)
				var env struct {
					Meta struct {
						Generation uint64 `json:"generation"`
					} `json:"meta"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
					errc <- path + ": body decode: " + err.Error()
					return
				}
				bodyGen := strconv.FormatUint(env.Meta.Generation, 10)
				if hdr != bodyGen || etag != `"g`+bodyGen+`"` {
					errc <- path + ": torn generation: etag=" + etag + " header=" + hdr + " body=" + bodyGen
					return
				}
			}
		}(w)
	}

	for i := 0; i < publishRounds; i++ {
		api.Publish(ds)
		// A few reads per swap keep the interleaving dense.
		for j := 0; j < requestsPerIter; j++ {
			rec := httptest.NewRecorder()
			api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
		}
	}
	if api.Generation() < minGenBeforeStop {
		t.Fatalf("only reached generation %d", api.Generation())
	}
	close(stop)
	wg.Wait()
	close(errc)
	var torn []string
	for e := range errc {
		torn = append(torn, e)
	}
	if len(torn) > 0 {
		t.Fatalf("torn responses under swap:\n%s", strings.Join(torn, "\n"))
	}
}
