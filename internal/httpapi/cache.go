package httpapi

import (
	"bytes"
	"net/http"
	"strconv"

	"repro/internal/serving"
)

// maxCachedBody caps the size of a cacheable response body. Larger bodies
// (a giant unpaginated histogram of a huge corpus, say) are served but not
// retained, bounding the cache's worst-case memory to capacity × 1 MiB.
const maxCachedBody = 1 << 20

// cached wraps a handler with the response cache. The snapshot is loaded
// exactly once here and pinned to the request context, so the cache key's
// generation, the handler's data and every generation-derived header come
// from the same snapshot even if a swap lands mid-request — a torn response
// is structurally impossible. Only 200 responses are cached; conditional
// revalidation (If-None-Match → 304) is applied on replay, so a cached body
// still serves 304s.
func (s *Server) cached(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := s.source.Current()
		if snap == nil {
			h(w, r) // not ready yet; the handler renders the 503
			return
		}
		r = withSnapshot(r, snap)
		key := serving.CacheKey{
			Generation: snap.Generation(),
			Resource:   r.Method + " " + r.URL.RequestURI(),
		}
		if resp, ok := s.cache.Get(key); ok {
			w.Header().Set("X-Cache", "hit")
			replayCached(w, r, snap, resp)
			return
		}
		w.Header().Set("X-Cache", "miss")
		rec := &teeRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == http.StatusOK && !rec.overflow {
			s.cache.Put(key, serving.CachedResponse{Status: rec.status, Body: rec.buf.Bytes()})
		}
	}
}

// replayCached serves a cache hit: re-derives the generation headers from
// the pinned snapshot, honors If-None-Match, and otherwise replays the
// stored body byte for byte.
func replayCached(w http.ResponseWriter, r *http.Request, snap *serving.Snapshot, resp serving.CachedResponse) {
	gen := snap.Generation()
	etag := etagFor(gen)
	w.Header().Set("ETag", etag)
	w.Header().Set(headerGeneration, strconv.FormatUint(gen, 10))
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	w.WriteHeader(resp.Status)
	if _, err := w.Write(resp.Body); err != nil {
		return // client went away; nothing to salvage
	}
}

// teeRecorder passes a response through while keeping a bounded copy of the
// status and body for the cache.
type teeRecorder struct {
	http.ResponseWriter
	status   int
	buf      bytes.Buffer
	overflow bool
}

func (t *teeRecorder) WriteHeader(code int) {
	if t.status == 0 {
		t.status = code
	}
	t.ResponseWriter.WriteHeader(code)
}

func (t *teeRecorder) Write(b []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	if !t.overflow {
		if t.buf.Len()+len(b) <= maxCachedBody {
			t.buf.Write(b)
		} else {
			t.overflow = true
			t.buf = bytes.Buffer{}
		}
	}
	return t.ResponseWriter.Write(b)
}
