package httpapi

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/docstore"
)

// Pagination bounds for the cluster list.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// clusterRoutes serves the cluster resource: score-range listing with
// cursor pagination and per-cluster lookup. Both scan the snapshot's
// document database through its ordered indexes in either serving mode —
// the range/cursor space is too large to precompute — so only the list
// endpoint (whose hot queries repeat) is cacheable.
func (s *Server) clusterRoutes() []route {
	return []route{
		{"GET", "/clusters", s.handleClusterQuery, true},
		{"GET", "/clusters/{ncid}", s.handleCluster, false},
	}
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	ncid := r.PathValue("ncid")
	doc := snap.DB().Collection(core.ClustersCollection).Get(ncid)
	if doc == nil {
		writeError(w, http.StatusNotFound, "not_found", "unknown cluster "+ncid)
		return
	}
	s.writeData(w, r, snap, doc, nil)
}

// handleClusterQuery lists cluster summaries by score range with cursor
// pagination:
//
//	GET /v1/clusters?score=plausibility&max=0.8&limit=50
//	GET /v1/clusters?score=heterogeneity&min=0.4&limit=20&cursor=...
//	GET /v1/clusters?score=size&min=5
//
// Pages materialize at most limit documents; meta.nextCursor resumes the
// scan.
func (s *Server) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	q := r.URL.Query()
	score := q.Get("score")
	switch score {
	case "":
		score = "size"
	case "plausibility", "heterogeneity", "size":
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "unknown score "+score)
		return
	}
	var lo, hi any
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "min must be a number")
			return
		}
		lo = f
	}
	if v := q.Get("max"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "max must be a number")
			return
		}
		hi = f
	}
	limit := defaultPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxPageLimit {
			writeError(w, http.StatusBadRequest, "bad_request",
				"limit must be an integer in [1, "+strconv.Itoa(maxPageLimit)+"]")
			return
		}
		limit = n
	}
	afterID, ok := decodeCursor(q.Get("cursor"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_cursor", "malformed cursor")
		return
	}

	clusters := snap.DB().Collection(core.ClustersCollection)
	docs, next, err := clusters.FindRangePage(score, lo, hi, afterID, limit)
	if errors.Is(err, docstore.ErrBadCursor) {
		writeError(w, http.StatusBadRequest, "bad_cursor", "stale or unknown cursor")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "range scan failed")
		return
	}

	// Summaries only: id, size and scores — record bodies via
	// /v1/clusters/{id} or /v1/records/{id}.
	items := make([]map[string]any, 0, len(docs))
	for _, d := range docs {
		item := map[string]any{"ncid": d["_id"], "size": d["size"]}
		if p, ok := d["plausibility"]; ok {
			item["plausibility"] = p
		}
		if h, ok := d["heterogeneity"]; ok {
			item["heterogeneity"] = h
		}
		items = append(items, item)
	}
	total := clusters.CountRange(score, lo, hi)
	s.writeData(w, r, snap, items, &meta{
		Total:      &total,
		NextCursor: encodeCursor(next),
	})
}
