package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestClusterSummary(t *testing.T) {
	ds := testDataset(t)

	// The aggregation must not depend on the serving mode or on the worker
	// count of either the store scan or the snapshot build.
	var ref map[string]any
	for _, snapshot := range []bool{false, true} {
		for _, workers := range []int{1, 2, 7} {
			srv := httptest.NewServer(New(ds, WithLogger(testLogger()),
				WithStoreWorkers(workers), WithSnapshotServing(snapshot)))
			var got map[string]any
			if code, _ := getData(t, srv.URL+"/v1/clusters/summary", &got); code != 200 {
				t.Fatalf("snapshot=%v workers=%d: summary code = %d", snapshot, workers, code)
			}
			srv.Close()
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("snapshot=%v workers=%d: summary diverged:\n%v\nvs\n%v", snapshot, workers, got, ref)
			}
		}
	}

	clusters, _ := ref["clusters"].(float64)
	records, _ := ref["records"].(float64)
	if clusters <= 0 || records < clusters {
		t.Fatalf("summary counts look wrong: %v clusters, %v records", clusters, records)
	}
	if _, ok := ref["size"].(map[string]any); !ok {
		t.Error("summary misses the size block")
	}
	plaus, ok := ref["plausibility"].(map[string]any)
	if !ok {
		t.Fatal("summary misses the plausibility block")
	}
	for _, k := range []string{"count", "min", "max", "p10", "p50", "p90"} {
		if _, ok := plaus[k]; !ok {
			t.Errorf("plausibility summary misses %q", k)
		}
	}
	lo, _ := plaus["p10"].(float64)
	mid, _ := plaus["p50"].(float64)
	hi, _ := plaus["p90"].(float64)
	if lo > mid || mid > hi {
		t.Errorf("quantiles out of order: p10=%v p50=%v p90=%v", lo, mid, hi)
	}
}

func TestSummaryDoesNotShadowClusterLookup(t *testing.T) {
	// "/clusters/summary" is more specific than "/clusters/{ncid}"; both
	// must keep working side by side.
	srv := testServer(t)
	var list []map[string]any
	getData(t, srv.URL+"/v1/clusters?limit=1", &list)
	if len(list) == 0 {
		t.Fatal("no clusters to look up")
	}
	ncid, _ := list[0]["ncid"].(string)
	var doc map[string]any
	if code, _ := getData(t, srv.URL+"/v1/clusters/"+ncid, &doc); code != 200 {
		t.Fatalf("cluster lookup = %d", code)
	}
	var sum map[string]any
	if code, _ := getData(t, srv.URL+"/v1/clusters/summary", &sum); code != 200 {
		t.Fatalf("summary = %d", code)
	}
	if _, ok := sum["clusters"]; !ok {
		t.Error("summary response misses the clusters count")
	}
}

func TestSummarySizeFilter(t *testing.T) {
	ds := testDataset(t)
	for _, snapshot := range []bool{false, true} {
		srv := httptest.NewServer(New(ds, WithLogger(testLogger()), WithSnapshotServing(snapshot)))
		var all, filtered map[string]any
		getData(t, srv.URL+"/v1/clusters/summary", &all)
		if code, _ := getData(t, srv.URL+"/v1/clusters/summary?minSize=2", &filtered); code != 200 {
			t.Fatalf("snapshot=%v: filtered summary code = %d", snapshot, code)
		}
		allN, _ := all["clusters"].(float64)
		fN, _ := filtered["clusters"].(float64)
		if fN <= 0 || fN > allN {
			t.Fatalf("snapshot=%v: filtered clusters = %v, all = %v", snapshot, fN, allN)
		}
		if size, ok := filtered["size"].(map[string]any); ok {
			if lo, _ := size["min"].(float64); lo < 2 {
				t.Errorf("snapshot=%v: minSize=2 returned a cluster of size %v", snapshot, lo)
			}
		}
		var bad map[string]any
		if code, _ := getData(t, srv.URL+"/v1/clusters/summary?minSize=two", &bad); code != 400 {
			t.Errorf("snapshot=%v: malformed minSize code = %d, want 400", snapshot, code)
		}
		srv.Close()
	}
}

func TestDocstoreCountersReachMetrics(t *testing.T) {
	// In store-backed mode the size-filtered summary runs a Pipeline whose
	// Match pushes down to the ordered size index; the resulting docstore
	// counters must land in the server's metrics registry via the DB
	// observer wiring. (Snapshot mode never touches the store on this path —
	// that is the point of the snapshot.)
	srv := httptest.NewServer(New(testDataset(t), WithLogger(testLogger()), WithSnapshotServing(false)))
	defer srv.Close()
	var sum map[string]any
	getData(t, srv.URL+"/v1/clusters/summary?minSize=1", &sum)

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`docstore_pipeline_total{counter="pipeline_runs"} 1`,
		`docstore_pipeline_total{counter="pushdown_hits"} 1`,
		`docstore_pipeline_total{counter="docs_cloned"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus output misses %q:\n%s", want, text)
		}
	}
}
