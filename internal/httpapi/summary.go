package httpapi

import (
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/serving"
)

// summaryRoutes serves the whole-store aggregation endpoint — the hottest
// and most expensive read, hence cacheable.
func (s *Server) summaryRoutes() []route {
	return []route{
		{"GET", "/clusters/summary", s.handleClusterSummary, true},
	}
}

// handleClusterSummary aggregates the served clusters in one pass — cluster
// and record counts, size extremes, and histogram-estimated plausibility/
// heterogeneity quantiles:
//
//	GET /v1/clusters/summary
//	GET /v1/clusters/summary?minSize=2&maxSize=10
//
// In snapshot mode the unfiltered payload was marshaled at build time and a
// size-filtered request folds a binary-searched slice of the snapshot's
// size-sorted summary table — no document visits either way. In store mode
// the unfiltered form runs a parallel scan on the server's store-worker
// pool and the filtered form runs a streaming Pipeline whose Match pushes
// down to the ordered size index. All accumulators are counts, extremes and
// integer histogram bins (serving.SummaryAccumulator), so every path yields
// the identical payload.
func (s *Server) handleClusterSummary(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	var bounds serving.SizeBounds
	for _, bound := range []struct {
		param string
		val   *int64
		has   *bool
	}{{"minSize", &bounds.Min, &bounds.HasMin}, {"maxSize", &bounds.Max, &bounds.HasMax}} {
		v := r.URL.Query().Get(bound.param)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", bound.param+" must be an integer")
			return
		}
		*bound.val = int64(n)
		*bound.has = true
	}

	if snap.Precomputed() {
		s.writeData(w, r, snap, snap.Summary(bounds), nil)
		return
	}

	var (
		mu  sync.Mutex
		acc serving.SummaryAccumulator
	)
	fold := func(d docstore.Document) {
		var size int64
		if v, ok := d["size"].(float64); ok {
			size = int64(v)
		} else if v, ok := d["size"].(int); ok {
			size = int64(v)
		}
		p, hasP := d["plausibility"].(float64)
		h, hasH := d["heterogeneity"].(float64)
		mu.Lock()
		acc.Add(size, p, hasP, h, hasH)
		mu.Unlock()
	}
	col := snap.DB().Collection(core.ClustersCollection)
	if bounds.Unbounded() {
		col.ForEachParallel(s.storeWorkers, fold)
	} else {
		var sizeFilters []docstore.Filter
		if bounds.HasMin {
			sizeFilters = append(sizeFilters, docstore.Gte("size", float64(bounds.Min)))
		}
		if bounds.HasMax {
			sizeFilters = append(sizeFilters, docstore.Lte("size", float64(bounds.Max)))
		}
		for _, d := range col.Pipeline(docstore.Match{Filter: docstore.And(sizeFilters...)}) {
			fold(d)
		}
	}
	s.writeData(w, r, snap, acc.Payload(), nil)
}
