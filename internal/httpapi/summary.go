package httpapi

import (
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/docstore"
)

// scoreBins is the histogram resolution of the summary's score quantiles.
// Scores live in [0, 1]; 1000 bins give 0.001 resolution, and integer bin
// counts merge commutatively, so the parallel scan is deterministic — no
// float accumulation order can change the answer.
const scoreBins = 1000

// summaryRoutes serves the whole-store aggregation endpoint.
func (s *Server) summaryRoutes() []route {
	return []route{
		{"GET", "/clusters/summary", s.handleClusterSummary},
	}
}

// scoreSummary aggregates one cluster-level score across the store.
type scoreSummary struct {
	count int64
	min   float64
	max   float64
	bins  [scoreBins]int64
}

// add folds one observation in; the caller holds the accumulator lock.
func (a *scoreSummary) add(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.count++
	bin := int(v * scoreBins)
	if bin < 0 {
		bin = 0
	}
	if bin >= scoreBins {
		bin = scoreBins - 1
	}
	a.bins[bin]++
}

// quantile estimates the q-quantile from the histogram: the midpoint of the
// first bin whose cumulative count reaches q of the total. Resolution is
// 1/scoreBins; the estimate is deterministic for any fold order.
func (a *scoreSummary) quantile(q float64) float64 {
	if a.count == 0 {
		return 0
	}
	target := int64(q * float64(a.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range a.bins {
		cum += n
		if cum >= target {
			return (float64(i) + 0.5) / scoreBins
		}
	}
	return a.max
}

// render exports the summary; nil when the score never occurred.
func (a *scoreSummary) render() map[string]any {
	if a.count == 0 {
		return nil
	}
	return map[string]any{
		"count": a.count,
		"min":   a.min,
		"max":   a.max,
		"p10":   a.quantile(0.10),
		"p50":   a.quantile(0.50),
		"p90":   a.quantile(0.90),
	}
}

// handleClusterSummary aggregates the cluster store in one scan — cluster
// and record counts, size extremes, and histogram-estimated plausibility/
// heterogeneity quantiles:
//
//	GET /v1/clusters/summary
//	GET /v1/clusters/summary?minSize=2&maxSize=10
//
// The unfiltered form runs a parallel scan on the server's store-worker
// pool (ForEachParallel); with size bounds it runs a streaming Pipeline
// whose Match pushes down to the cluster collection's ordered size index,
// so only matching clusters are visited. All accumulators are counts,
// extremes and integer histogram bins, so the response is identical for any
// worker count.
func (s *Server) handleClusterSummary(w http.ResponseWriter, r *http.Request) {
	var sizeFilters []docstore.Filter
	for _, bound := range []struct {
		param string
		mk    func(string, any) docstore.Filter
	}{{"minSize", docstore.Gte}, {"maxSize", docstore.Lte}} {
		v := r.URL.Query().Get(bound.param)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", bound.param+" must be an integer")
			return
		}
		sizeFilters = append(sizeFilters, bound.mk("size", float64(n)))
	}

	var (
		mu       sync.Mutex
		clusters int64
		records  int64
		minSize  int64
		maxSize  int64
		plaus    scoreSummary
		hetero   scoreSummary
	)
	fold := func(d docstore.Document) {
		var size int64
		if v, ok := d["size"].(float64); ok {
			size = int64(v)
		} else if v, ok := d["size"].(int); ok {
			size = int64(v)
		}
		p, hasP := d["plausibility"].(float64)
		h, hasH := d["heterogeneity"].(float64)

		mu.Lock()
		defer mu.Unlock()
		if clusters == 0 || size < minSize {
			minSize = size
		}
		if clusters == 0 || size > maxSize {
			maxSize = size
		}
		clusters++
		records += size
		if hasP {
			plaus.add(p)
		}
		if hasH {
			hetero.add(h)
		}
	}
	col := s.db.Collection(core.ClustersCollection)
	if len(sizeFilters) > 0 {
		for _, d := range col.Pipeline(docstore.Match{Filter: docstore.And(sizeFilters...)}) {
			fold(d)
		}
	} else {
		col.ForEachParallel(s.storeWorkers, fold)
	}

	body := map[string]any{
		"clusters": clusters,
		"records":  records,
	}
	if clusters > 0 {
		body["size"] = map[string]any{"min": minSize, "max": maxSize}
	}
	if ps := plaus.render(); ps != nil {
		body["plausibility"] = ps
	}
	if hs := hetero.render(); hs != nil {
		body["heterogeneity"] = hs
	}
	writeJSON(w, http.StatusOK, body)
}
