package httpapi

import (
	"net/http"

	"repro/internal/serving"
)

// metaRoutes serves the dataset-level resources: statistics, import
// history, cluster-size histogram and published versions. All four are
// pure functions of the snapshot, so they are cacheable.
func (s *Server) metaRoutes() []route {
	return []route{
		{"GET", "/stats", s.handleStats, true},
		{"GET", "/years", s.handleYears, true},
		{"GET", "/histogram", s.handleHistogram, true},
		{"GET", "/versions", s.handleVersions, true},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	if snap.Precomputed() {
		s.writeData(w, r, snap, snap.Stats(), nil)
		return
	}
	s.writeData(w, r, snap, serving.StatsPayload(snap.Dataset()), nil)
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	if snap.Precomputed() {
		raw, total := snap.Years()
		s.writeData(w, r, snap, raw, &meta{Total: &total})
		return
	}
	years := snap.Dataset().YearlyStats()
	total := len(years)
	s.writeData(w, r, snap, years, &meta{Total: &total})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	if snap.Precomputed() {
		s.writeData(w, r, snap, snap.Histogram(), nil)
		return
	}
	s.writeData(w, r, snap, serving.HistogramPayload(snap.Dataset()), nil)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	if snap.Precomputed() {
		raw, total := snap.Versions()
		s.writeData(w, r, snap, raw, &meta{Total: &total})
		return
	}
	versions := snap.Dataset().Versions()
	total := len(versions)
	s.writeData(w, r, snap, versions, &meta{Total: &total})
}
