package httpapi

import (
	"net/http"
	"strconv"
)

// metaRoutes serves the dataset-level resources: statistics, import
// history, cluster-size histogram and published versions.
func (s *Server) metaRoutes() []route {
	return []route{
		{"GET", "/stats", s.handleStats},
		{"GET", "/years", s.handleYears},
		{"GET", "/histogram", s.handleHistogram},
		{"GET", "/versions", s.handleVersions},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":           s.ds.Mode.String(),
		"clusters":       s.ds.NumClusters(),
		"records":        s.ds.NumRecords(),
		"duplicatePairs": s.ds.NumPairs(),
		"totalRows":      s.ds.TotalRows(),
		"removedRecords": s.ds.RemovedRecords(),
		"avgClusterSize": s.ds.AvgClusterSize(),
		"maxClusterSize": s.ds.MaxClusterSize(),
		"versions":       len(s.ds.Versions()),
	})
}

func (s *Server) handleYears(w http.ResponseWriter, r *http.Request) {
	years := s.ds.YearlyStats()
	writeJSON(w, http.StatusOK, listPage{Items: years, Total: len(years)})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	hist := s.ds.ClusterSizeHistogram()
	out := map[string]int{}
	for size, n := range hist {
		out[strconv.Itoa(size)] = n
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	versions := s.ds.Versions()
	writeJSON(w, http.StatusOK, listPage{Items: versions, Total: len(versions)})
}
