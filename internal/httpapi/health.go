package httpapi

import "net/http"

// healthRoutes serves the probe endpoints. Readiness (healthz) and
// liveness (livez) are distinct: a process that is up but has not loaded
// its first snapshot yet is alive but not ready, and must not receive
// traffic from a load balancer.
func (s *Server) healthRoutes() []route {
	return []route{
		{"GET", "/healthz", s.handleHealthz, false},
		{"GET", "/livez", s.handleLivez, false},
	}
}

// handleHealthz reports readiness: 503 with the standard error envelope
// until the first snapshot swap, then 200 with the served corpus shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.requireSnapshot(w, r)
	if snap == nil {
		return
	}
	s.writeData(w, r, snap, map[string]any{
		"status":   "ready",
		"clusters": snap.Dataset().NumClusters(),
		"records":  snap.Dataset().NumRecords(),
	}, nil)
}

// handleLivez reports liveness: always 200 while the process serves
// requests, snapshot or not. meta.generation is 0 before the first swap.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, envelope{
		Data: map[string]any{"status": "alive"},
		Meta: meta{Generation: s.source.Generation()},
	})
}
