package simil

// Jaro returns the Jaro similarity of a and b in [0, 1]. It counts matching
// runes within the usual half-window and penalizes transpositions among the
// matches. Two empty strings score 1; one empty string scores 0. Thin
// wrapper over JaroInto with a fresh Scratch.
func Jaro(a, b string) float64 {
	var sc Scratch
	return JaroInto(a, b, &sc)
}

// winklerPrefixScale is the standard Winkler prefix bonus factor.
const winklerPrefixScale = 0.1

// winklerMaxPrefix is the standard cap on the shared-prefix length that earns
// the Winkler bonus.
const winklerMaxPrefix = 4

// JaroWinkler returns the Jaro-Winkler similarity of a and b in [0, 1]: Jaro
// boosted by a bonus for a shared prefix of up to four runes. It is one of
// the three record measures of the usability experiment (§6.5); thin
// wrapper over JaroWinklerInto.
func JaroWinkler(a, b string) float64 {
	var sc Scratch
	return JaroWinklerInto(a, b, &sc)
}
