package simil

// Jaro returns the Jaro similarity of a and b in [0, 1]. It counts matching
// runes within the usual half-window and penalizes transpositions among the
// matches. Two empty strings score 1; one empty string scores 0.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions: matched runes that appear in a different order.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// winklerPrefixScale is the standard Winkler prefix bonus factor.
const winklerPrefixScale = 0.1

// winklerMaxPrefix is the standard cap on the shared-prefix length that earns
// the Winkler bonus.
const winklerMaxPrefix = 4

// JaroWinkler returns the Jaro-Winkler similarity of a and b in [0, 1]: Jaro
// boosted by a bonus for a shared prefix of up to four runes.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < winklerMaxPrefix && prefix < len(ra) && prefix < len(rb) && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*winklerPrefixScale*(1-j)
}
