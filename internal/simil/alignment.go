package simil

import "math"

// Alignment-based measures beyond the classic edit distances: global
// alignment (Needleman-Wunsch) and local alignment (Smith-Waterman). They
// extend the matcher's measure suite beyond the paper's three (an explicit
// extension point of the usability experiment).

// NeedlemanWunsch returns the global-alignment similarity of a and b in
// [0, 1]: match +1, mismatch 0, gap 0, normalized by the longer length.
// Identical strings score 1; two empty strings score 1. Thin wrapper over
// NeedlemanWunschInto with a fresh Scratch.
func NeedlemanWunsch(a, b string) float64 {
	var sc Scratch
	return NeedlemanWunschInto(a, b, &sc)
}

// SmithWaterman returns the local-alignment similarity of a and b in
// [0, 1]: the best local alignment with match +1, mismatch -1, gap -1,
// normalized by the shorter length — so a value fully embedded in the other
// scores 1. Two empty strings score 1; one empty string scores 0. Thin
// wrapper over SmithWatermanInto with a fresh Scratch.
func SmithWaterman(a, b string) float64 {
	var sc Scratch
	return SmithWatermanInto(a, b, &sc)
}

// CosineQGram returns the cosine similarity of the q-gram frequency vectors
// of a and b in [0, 1]. Two empty strings score 1.
func CosineQGram(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	fa := map[string]int{}
	for _, g := range ga {
		fa[g]++
	}
	fb := map[string]int{}
	for _, g := range gb {
		fb[g]++
	}
	dot, na, nb := 0, 0, 0
	for g, c := range fa {
		na += c * c
		dot += c * fb[g]
	}
	for _, c := range fb {
		nb += c * c
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / (math.Sqrt(float64(na)) * math.Sqrt(float64(nb)))
}

// OverlapQGram returns the overlap coefficient of the q-gram sets:
// |A ∩ B| / min(|A|, |B|). Two empty strings score 1.
func OverlapQGram(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	sa := map[string]struct{}{}
	for _, g := range ga {
		sa[g] = struct{}{}
	}
	sb := map[string]struct{}{}
	for _, g := range gb {
		sb[g] = struct{}{}
	}
	inter := 0
	for g := range sa {
		if _, ok := sb[g]; ok {
			inter++
		}
	}
	return float64(inter) / float64(minInt(len(sa), len(sb)))
}
