package simil

import "testing"

func corpusDocs() [][]string {
	return [][]string{
		{"JOHN", "SMITH"},
		{"MARY", "SMITH"},
		{"ROBERT", "SMITH"},
		{"LINDA", "NGUYEN"},
		{"JOHN", "MILLER"},
		{"MARY", "MILLER"},
	}
}

func TestIDFOrdering(t *testing.T) {
	tf := NewTFIDF(corpusDocs())
	common := tf.IDF("SMITH")
	rare := tf.IDF("NGUYEN")
	unknown := tf.IDF("ZAPHOD")
	if !(common < rare && rare <= unknown) {
		t.Errorf("IDF ordering broken: SMITH %v, NGUYEN %v, unknown %v", common, rare, unknown)
	}
}

func TestCosineIdentityAndBounds(t *testing.T) {
	tf := NewTFIDF(corpusDocs())
	if got := tf.Cosine([]string{"JOHN", "SMITH"}, []string{"JOHN", "SMITH"}); got < 0.999 {
		t.Errorf("identical docs = %v", got)
	}
	if got := tf.Cosine(nil, nil); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := tf.Cosine([]string{"JOHN"}, nil); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := tf.Cosine([]string{"JOHN"}, []string{"MARY"}); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestCosineWeighsRareTokensHigher(t *testing.T) {
	tf := NewTFIDF(corpusDocs())
	// Sharing the rare NGUYEN outweighs sharing the ubiquitous SMITH.
	rareShared := tf.Cosine([]string{"JOHN", "NGUYEN"}, []string{"MARY", "NGUYEN"})
	commonShared := tf.Cosine([]string{"JOHN", "SMITH"}, []string{"MARY", "SMITH"})
	if rareShared <= commonShared {
		t.Errorf("rare token share (%v) should beat common share (%v)", rareShared, commonShared)
	}
}

func TestSoftCosineForgivesTypos(t *testing.T) {
	tf := NewTFIDF(corpusDocs())
	hard := tf.Cosine([]string{"JOHN", "NGUYEN"}, []string{"JOHN", "NGUYEM"})
	soft := tf.SoftCosine([]string{"JOHN", "NGUYEN"}, []string{"JOHN", "NGUYEM"},
		DamerauLevenshteinSimilarity, 0.8)
	if soft <= hard {
		t.Errorf("soft (%v) should forgive the typo the hard cosine (%v) punishes", soft, hard)
	}
	if soft < 0.8 {
		t.Errorf("soft cosine = %v, want close to 1", soft)
	}
	// Exact match still scores 1-ish.
	if got := tf.SoftCosine([]string{"JOHN"}, []string{"JOHN"}, DamerauLevenshteinSimilarity, 0.8); got < 0.999 {
		t.Errorf("identical soft = %v", got)
	}
}

func TestSoftCosineBounds(t *testing.T) {
	tf := NewTFIDF(corpusDocs())
	pairs := [][2][]string{
		{{"JOHN", "SMITH"}, {"MARY", "MILLER"}},
		{{"NGUYEN"}, {"NGUYEN"}},
		{{"A", "B", "C"}, {"C", "B", "A"}},
	}
	for _, p := range pairs {
		got := tf.SoftCosine(p[0], p[1], DamerauLevenshteinSimilarity, 0.8)
		if got < 0 || got > 1 {
			t.Errorf("SoftCosine(%v, %v) = %v out of range", p[0], p[1], got)
		}
	}
}

func TestEmptyCorpus(t *testing.T) {
	tf := NewTFIDF(nil)
	if got := tf.IDF("X"); got != 0 {
		t.Errorf("empty-corpus IDF = %v", got)
	}
	if got := tf.Cosine([]string{"X"}, []string{"X"}); got != 0 {
		// All weights zero: no signal either way.
		t.Errorf("empty-corpus cosine = %v, want 0", got)
	}
}
