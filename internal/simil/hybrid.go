package simil

import "sort"

// GeneralizedJaccard returns the Generalized Jaccard Coefficient of the two
// token sequences under the internal token measure tok: tokens are matched
// greedily 1:1 in descending similarity order, matches below threshold are
// discarded, and the score is sum(matched sims) / (|A| + |B| - |M|). It is
// the hybrid measure used for the plausibility name similarity (§6.2).
//
// Two empty sequences score 1; one empty sequence scores 0 (the paper's
// missing-value forgiveness is handled one level up, in the token measure or
// the caller).
func GeneralizedJaccard(a, b []string, tok TokenMeasure, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	type cand struct {
		i, j int
		sim  float64
	}
	cands := make([]cand, 0, len(a)*len(b))
	for i, ta := range a {
		for j, tb := range b {
			if s := tok(ta, tb); s >= threshold {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].sim != cands[y].sim {
			return cands[x].sim > cands[y].sim
		}
		if cands[x].i != cands[y].i {
			return cands[x].i < cands[y].i
		}
		return cands[x].j < cands[y].j
	})
	usedA := make([]bool, len(a))
	usedB := make([]bool, len(b))
	sum := 0.0
	matched := 0
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		sum += c.sim
		matched++
	}
	return sum / float64(len(a)+len(b)-matched)
}

// gjCand is one token-pair candidate of the Generalized Jaccard matching.
type gjCand struct {
	i, j int
	sim  float64
}

// GeneralizedJaccardInto is GeneralizedJaccard with the candidate list and
// used-token marks held in caller-owned scratch. The greedy matching order
// is the strict total order (sim desc, i asc, j asc) — candidate keys are
// unique, so the insertion sort here yields the exact permutation of the
// allocating variant's sort.Slice and results match bit for bit. tok may
// itself use sc (the *Into token measures do); it runs before the matching
// buffers are touched.
func GeneralizedJaccardInto(a, b []string, tok TokenMeasure, threshold float64, sc *Scratch) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sc.gj = sc.gj[:0]
	for i, ta := range a {
		for j, tb := range b {
			if s := tok(ta, tb); s >= threshold {
				sc.gj = append(sc.gj, gjCand{i, j, s})
			}
		}
	}
	cands := sc.gj
	for x := 1; x < len(cands); x++ {
		c := cands[x]
		y := x
		for y > 0 && gjLess(c, cands[y-1]) {
			cands[y] = cands[y-1]
			y--
		}
		cands[y] = c
	}
	usedA := boolRow(&sc.ma, len(a))
	usedB := boolRow(&sc.mb, len(b))
	sum := 0.0
	matched := 0
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		sum += c.sim
		matched++
	}
	return sum / float64(len(a)+len(b)-matched)
}

// gjLess orders candidates by similarity descending, then (i, j) ascending.
func gjLess(x, y gjCand) bool {
	if x.sim != y.sim {
		return x.sim > y.sim
	}
	if x.i != y.i {
		return x.i < y.i
	}
	return x.j < y.j
}

// MongeElkanDirected returns the directed Monge-Elkan similarity of token
// sequence a against b: the mean over a's tokens of each token's best match
// in b under the internal measure tok. One empty sequence scores 0; two
// empty sequences score 1.
func MongeElkanDirected(a, b []string, tok TokenMeasure) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := tok(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// MongeElkan returns the symmetrized Monge-Elkan similarity: the mean of the
// two directed scores. The paper symmetrizes exactly this way because the
// directed measure is asymmetric (§6.3, footnote 13).
func MongeElkan(a, b []string, tok TokenMeasure) float64 {
	return (MongeElkanDirected(a, b, tok) + MongeElkanDirected(b, a, tok)) / 2
}

// MongeElkanDL is MongeElkan over letter/digit tokens with the
// Damerau-Levenshtein similarity as the internal measure — the hybrid
// configuration of the heterogeneity scoring and the ME/Lev matcher.
func MongeElkanDL(a, b string) float64 {
	return MongeElkan(Tokenize(a), Tokenize(b), DamerauLevenshteinSimilarity)
}
