package simil

// Levenshtein returns the classic edit distance between a and b: the minimal
// number of single-rune insertions, deletions and substitutions that turn a
// into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity normalizes Levenshtein to [0, 1]:
// 1 - dist/max(len(a), len(b)). Two empty strings are identical (1).
func LevenshteinSimilarity(a, b string) float64 {
	m := maxInt(len([]rune(a)), len([]rune(b)))
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// DamerauLevenshtein returns the optimal-string-alignment variant of the
// Damerau-Levenshtein distance: insertions, deletions, substitutions and
// transpositions of two adjacent runes each cost 1, and no substring is
// edited more than once. This is the distance the paper uses to flag typos
// (distance exactly 1, §6.4).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, len(rb)+1)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(rb)]
}

// DamerauLevenshteinSimilarity normalizes DamerauLevenshtein to [0, 1]:
// 1 - dist/max(len(a), len(b)). Two empty strings are identical (1).
func DamerauLevenshteinSimilarity(a, b string) float64 {
	m := maxInt(len([]rune(a)), len([]rune(b)))
	if m == 0 {
		return 1
	}
	return 1 - float64(DamerauLevenshtein(a, b))/float64(m)
}
