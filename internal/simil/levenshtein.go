package simil

// Levenshtein returns the classic edit distance between a and b: the minimal
// number of single-rune insertions, deletions and substitutions that turn a
// into b. It is a thin wrapper over LevenshteinInto with a fresh Scratch;
// hot loops should hold a per-worker Scratch and call the Into variant.
func Levenshtein(a, b string) int {
	var sc Scratch
	return LevenshteinInto(a, b, &sc)
}

// LevenshteinSimilarity normalizes Levenshtein to [0, 1]:
// 1 - dist/max(len(a), len(b)). Two empty strings are identical (1).
func LevenshteinSimilarity(a, b string) float64 {
	m := maxInt(len([]rune(a)), len([]rune(b)))
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// DamerauLevenshtein returns the optimal-string-alignment variant of the
// Damerau-Levenshtein distance: insertions, deletions, substitutions and
// transpositions of two adjacent runes each cost 1, and no substring is
// edited more than once. This is the distance the paper uses to flag typos
// (distance exactly 1, §6.4). Thin wrapper over DamerauLevenshteinInto.
func DamerauLevenshtein(a, b string) int {
	var sc Scratch
	return DamerauLevenshteinInto(a, b, &sc)
}

// DamerauLevenshteinSimilarity normalizes DamerauLevenshtein to [0, 1]:
// 1 - dist/max(len(a), len(b)). Two empty strings are identical (1). It is
// the internal token measure of the heterogeneity scoring (§6.3) and the
// ME/Lev matcher (§6.5); thin wrapper over
// DamerauLevenshteinSimilarityInto.
func DamerauLevenshteinSimilarity(a, b string) float64 {
	var sc Scratch
	return DamerauLevenshteinSimilarityInto(a, b, &sc)
}
