package simil

// Jaccard returns the Jaccard coefficient of the two string sets:
// |A ∩ B| / |A ∪ B|. Duplicate elements within one slice count once. Two
// empty sets score 1.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[string]struct{}, len(a))
	for _, s := range a {
		setA[s] = struct{}{}
	}
	setB := make(map[string]struct{}, len(b))
	for _, s := range b {
		setB[s] = struct{}{}
	}
	inter := 0
	for s := range setA {
		if _, ok := setB[s]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TrigramJaccard returns the Jaccard coefficient over the trigram sets of a
// and b. It is one of the three record-similarity measures of the usability
// experiment (§6.5).
func TrigramJaccard(a, b string) float64 {
	return Jaccard(QGrams(a, 3), QGrams(b, 3))
}

// TokenJaccard returns the Jaccard coefficient over the letter/digit token
// sets of a and b.
func TokenJaccard(a, b string) float64 {
	return Jaccard(Tokenize(a), Tokenize(b))
}
