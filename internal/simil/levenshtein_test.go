package simil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"ADELL", "ADELE", 1},
		{"gumbo", "gambol", 2},
		{"a", "b", 1},
		{"ab", "ba", 2}, // plain Levenshtein: transposition costs 2
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"ab", "ba", 1},  // adjacent transposition costs 1
		{"ca", "abc", 3}, // OSA variant cannot edit a substring twice
		{"OEHRIE", "OEHRLE", 1},
		{"BAILEY", "BALEY", 1},
		{"MARTHA", "MARHTA", 1},
		{"abcd", "acbd", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a) &&
			DamerauLevenshtein(a, b) == DamerauLevenshtein(b, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool {
		return Levenshtein(a, a) == 0 && DamerauLevenshtein(a, a) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	measures := map[string]StringMeasure{
		"LevenshteinSimilarity":        LevenshteinSimilarity,
		"DamerauLevenshteinSimilarity": DamerauLevenshteinSimilarity,
		"ExtendedDamerauLevenshtein":   ExtendedDamerauLevenshtein,
		"Jaro":                         Jaro,
		"JaroWinkler":                  JaroWinkler,
		"TrigramJaccard":               TrigramJaccard,
		"TokenJaccard":                 TokenJaccard,
		"MongeElkanDL":                 MongeElkanDL,
	}
	for name, m := range measures {
		m := m
		f := func(a, b string) bool {
			s := m(a, b)
			return s >= 0 && s <= 1
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s out of [0,1]: %v", name, err)
		}
	}
}

func TestSimilarityIdentityIsOne(t *testing.T) {
	measures := map[string]StringMeasure{
		"LevenshteinSimilarity":        LevenshteinSimilarity,
		"DamerauLevenshteinSimilarity": DamerauLevenshteinSimilarity,
		"Jaro":                         Jaro,
		"JaroWinkler":                  JaroWinkler,
		"TrigramJaccard":               TrigramJaccard,
	}
	for name, m := range measures {
		m := m
		f := func(a string) bool {
			return m(a, a) == 1
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s(a, a) != 1: %v", name, err)
		}
	}
}

// quickCfg returns a deterministic quick.Check configuration so the property
// tests never flake between runs.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(42)),
	}
}

func BenchmarkDamerauLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DamerauLevenshtein("CHRISTOPHER", "KRISTOFFER")
	}
}
