package simil

import "strings"

// ExtendedDamerauLevenshtein is the paper's extension of the
// Damerau-Levenshtein similarity for plausibility scoring (§6.2): the
// comparison to a missing (empty) value yields 1, and if one value is a
// prefix of the other (an abbreviation or a truncated entry) the similarity
// is also 1, because neither case contradicts the records being duplicates.
// Comparison is case-insensitive; both values are trimmed first.
func ExtendedDamerauLevenshtein(a, b string) float64 {
	a = strings.ToUpper(strings.TrimSpace(a))
	b = strings.ToUpper(strings.TrimSpace(b))
	if a == "" || b == "" {
		return 1
	}
	// Strip a single trailing punctuation mark so "J." counts as a prefix of
	// "JOHN" the way a human reader treats initials.
	a = strings.TrimRight(a, ".")
	b = strings.TrimRight(b, ".")
	if a == "" || b == "" {
		return 1
	}
	if strings.HasPrefix(a, b) || strings.HasPrefix(b, a) {
		return 1
	}
	return DamerauLevenshteinSimilarity(a, b)
}

// ExtendedDamerauLevenshteinInto is ExtendedDamerauLevenshtein evaluated
// through caller-owned scratch buffers. The normalization (trim, upper-case,
// punctuation strip, prefix forgiveness) is identical; only the final DP
// falls through to DamerauLevenshteinSimilarityInto, so results match the
// allocating variant bit for bit.
func ExtendedDamerauLevenshteinInto(a, b string, sc *Scratch) float64 {
	a = strings.ToUpper(strings.TrimSpace(a))
	b = strings.ToUpper(strings.TrimSpace(b))
	if a == "" || b == "" {
		return 1
	}
	a = strings.TrimRight(a, ".")
	b = strings.TrimRight(b, ".")
	if a == "" || b == "" {
		return 1
	}
	if strings.HasPrefix(a, b) || strings.HasPrefix(b, a) {
		return 1
	}
	return DamerauLevenshteinSimilarityInto(a, b, sc)
}
