package simil

import "testing"

func TestExtendedDamerauLevenshteinForgiveness(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want float64
	}{
		{"both empty", "", "", 1},
		{"missing left", "", "WILLIAMS", 1},
		{"missing right", "WILLIAMS", "", 1},
		{"whitespace only is missing", "   ", "DEBRA", 1},
		{"prefix abbreviation", "J", "JOHN", 1},
		{"prefix with period", "J.", "JOHN", 1},
		{"case-insensitive equal", "debra", "DEBRA", 1},
		{"prefix longer", "JOHN", "JOHNATHAN", 1},
		{"identical", "OEHRLE", "OEHRLE", 1},
	}
	for _, c := range cases {
		if got := ExtendedDamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("%s: ExtendedDamerauLevenshtein(%q, %q) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestExtendedDamerauLevenshteinStrictCases(t *testing.T) {
	// A real disagreement must still reduce similarity below 1.
	if got := ExtendedDamerauLevenshtein("FIELDS", "BETHEA"); got >= 0.5 {
		t.Errorf("ExtendedDamerauLevenshtein(FIELDS, BETHEA) = %v, want < 0.5", got)
	}
	// A single typo keeps similarity high but below 1.
	got := ExtendedDamerauLevenshtein("OEHRIE", "OEHRLE")
	if got <= 0.7 || got >= 1 {
		t.Errorf("ExtendedDamerauLevenshtein(OEHRIE, OEHRLE) = %v, want in (0.7, 1)", got)
	}
}
