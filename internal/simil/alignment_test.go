package simil

import (
	"testing"
	"testing/quick"
)

func TestNeedlemanWunschKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"", "abc", 0},
		{"abc", "abc", 1},
		{"abc", "abd", 2.0 / 3},
		{"GATTACA", "GATTACA", 1},
	}
	for _, c := range cases {
		if got := NeedlemanWunsch(c.a, c.b); !almost(got, c.want) {
			t.Errorf("NeedlemanWunsch(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSmithWatermanLocalEmbedding(t *testing.T) {
	// A value fully embedded in the other scores 1 locally.
	if got := SmithWaterman("RIDGE", "JRS RIDGE ROAD"); got != 1 {
		t.Errorf("embedded value = %v, want 1", got)
	}
	if got := SmithWaterman("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := SmithWaterman("A", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := SmithWaterman("ABC", "ABC"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	low := SmithWaterman("XYZ", "ABCDEF")
	if low > 0.4 {
		t.Errorf("unrelated = %v, want low", low)
	}
}

func TestCosineQGramKnown(t *testing.T) {
	if got := CosineQGram("", "", 3); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := CosineQGram("abc", "", 3); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := CosineQGram("NIGHT", "NIGHT", 3); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
	mid := CosineQGram("NIGHT", "NIGTH", 3) // shares only the NIG trigram
	if mid <= 0 || mid >= 1 {
		t.Errorf("related = %v, want in (0, 1)", mid)
	}
}

func TestOverlapQGram(t *testing.T) {
	// Overlap forgives one value being a sub-sequence of q-grams.
	if got := OverlapQGram("RIDGE", "RIDGEWAY", 3); got != 1 {
		t.Errorf("prefix overlap = %v, want 1", got)
	}
	if got := OverlapQGram("", "", 2); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := OverlapQGram("AB", "", 2); got != 0 {
		t.Errorf("one empty = %v", got)
	}
}

func TestAlignmentBoundsAndSymmetry(t *testing.T) {
	measures := map[string]StringMeasure{
		"NeedlemanWunsch": NeedlemanWunsch,
		"SmithWaterman":   SmithWaterman,
		"CosineTrigram":   func(a, b string) float64 { return CosineQGram(a, b, 3) },
		"OverlapTrigram":  func(a, b string) float64 { return OverlapQGram(a, b, 3) },
	}
	for name, m := range measures {
		m := m
		f := func(a, b string) bool {
			x := m(a, b)
			return x >= 0 && x <= 1+1e-12 && almost(x, m(b, a))
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAlignmentIdentity(t *testing.T) {
	f := func(a string) bool {
		return almost(NeedlemanWunsch(a, a), 1) &&
			almost(CosineQGram(a, a, 3), 1) &&
			almost(OverlapQGram(a, a, 3), 1) &&
			almost(SmithWaterman(a, a), 1)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
