package simil

// Scratch holds the reusable working memory of the dynamic-programming
// kernels: rune decodings of both inputs, up to three DP rows, the two
// match-flag arrays of the Jaro kernel, and four token buffers. One Scratch
// serves one goroutine; the parallel scoring engine keeps one per worker so
// the §6.3/§6.5 hot loop — millions of value comparisons — runs without
// per-comparison allocations. The zero value is ready to use; buffers grow
// on demand and are retained between calls.
//
// The *Into kernel variants below take a Scratch and are bit-identical to
// their allocating counterparts (which are now thin wrappers around them):
// the DP recurrences and float normalizations are the same expressions in
// the same order.
type Scratch struct {
	ra, rb     []rune
	r0, r1, r2 []int
	ma, mb     []bool
	ta, tb     []string
	tla, tlb   []string
	gj         []gjCand
}

// appendRunes decodes s into buf (reused, length reset), returning the
// decoded slice.
func appendRunes(buf []rune, s string) []rune {
	buf = buf[:0]
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

// intRow returns *buf grown to n entries; contents are unspecified — each
// kernel initializes the cells it reads.
func intRow(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// boolRow returns *buf grown to n entries, all false.
func boolRow(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// TokenizeInto is Tokenize writing into buf (reused, length reset). The
// returned slice aliases buf's backing array.
func TokenizeInto(s string, buf []string) []string {
	buf = buf[:0]
	start := -1
	for i, r := range s {
		if isTokenRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			buf = append(buf, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		buf = append(buf, s[start:])
	}
	return buf
}

// LevenshteinInto is Levenshtein over a caller-provided Scratch.
func LevenshteinInto(a, b string, sc *Scratch) int {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := intRow(&sc.r0, len(rb)+1)
	cur := intRow(&sc.r1, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshteinInto is DamerauLevenshtein over a caller-provided
// Scratch.
func DamerauLevenshteinInto(a, b string, sc *Scratch) int {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	return damerauLevenshteinRunes(sc.ra, sc.rb, sc)
}

// damerauLevenshteinRunes is the OSA Damerau-Levenshtein DP over decoded
// runes; ra and rb may alias sc.ra and sc.rb.
func damerauLevenshteinRunes(ra, rb []rune, sc *Scratch) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev2 := intRow(&sc.r0, len(rb)+1)
	prev := intRow(&sc.r1, len(rb)+1)
	cur := intRow(&sc.r2, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(rb)]
}

// DamerauLevenshteinSimilarityInto is DamerauLevenshteinSimilarity over a
// caller-provided Scratch.
func DamerauLevenshteinSimilarityInto(a, b string, sc *Scratch) float64 {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	m := maxInt(len(sc.ra), len(sc.rb))
	if m == 0 {
		return 1
	}
	return 1 - float64(damerauLevenshteinRunes(sc.ra, sc.rb, sc))/float64(m)
}

// JaroInto is Jaro over a caller-provided Scratch.
func JaroInto(a, b string, sc *Scratch) float64 {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	return jaroRunes(sc.ra, sc.rb, sc)
}

// jaroRunes is the Jaro kernel over decoded runes.
func jaroRunes(ra, rb []rune, sc *Scratch) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := boolRow(&sc.ma, la)
	matchedB := boolRow(&sc.mb, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinklerInto is JaroWinkler over a caller-provided Scratch.
func JaroWinklerInto(a, b string, sc *Scratch) float64 {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	j := jaroRunes(ra, rb, sc)
	prefix := 0
	for prefix < winklerMaxPrefix && prefix < len(ra) && prefix < len(rb) && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*winklerPrefixScale*(1-j)
}

// NeedlemanWunschInto is NeedlemanWunsch over a caller-provided Scratch.
func NeedlemanWunschInto(a, b string, sc *Scratch) float64 {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	prev := intRow(&sc.r0, lb+1)
	cur := intRow(&sc.r1, lb+1)
	for j := range prev {
		prev[j] = 0
	}
	cur[0] = 0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			best := prev[j] // gap in b
			if cur[j-1] > best {
				best = cur[j-1] // gap in a
			}
			diag := prev[j-1]
			if ra[i-1] == rb[j-1] {
				diag++
			}
			if diag > best {
				best = diag
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return float64(prev[lb]) / float64(maxInt(la, lb))
}

// SmithWatermanInto is SmithWaterman over a caller-provided Scratch.
func SmithWatermanInto(a, b string, sc *Scratch) float64 {
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	prev := intRow(&sc.r0, lb+1)
	cur := intRow(&sc.r1, lb+1)
	for j := range prev {
		prev[j] = 0
	}
	cur[0] = 0
	best := 0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			score := prev[j-1]
			if ra[i-1] == rb[j-1] {
				score++
			} else {
				score--
			}
			if g := prev[j] - 1; g > score {
				score = g
			}
			if g := cur[j-1] - 1; g > score {
				score = g
			}
			if score < 0 {
				score = 0
			}
			cur[j] = score
			if score > best {
				best = score
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / float64(minInt(la, lb))
}

// MongeElkanTokensInto is MongeElkan over pre-tokenized sequences with the
// Damerau-Levenshtein similarity as the internal measure, reusing the
// Scratch for every token comparison. It equals
// MongeElkan(a, b, DamerauLevenshteinSimilarity) bit-for-bit: the directed
// means accumulate in the same token order.
func MongeElkanTokensInto(a, b []string, sc *Scratch) float64 {
	return (mongeElkanDirectedInto(a, b, sc) + mongeElkanDirectedInto(b, a, sc)) / 2
}

// mongeElkanDirectedInto is MongeElkanDirected with the DL-similarity
// internal measure over a Scratch.
func mongeElkanDirectedInto(a, b []string, sc *Scratch) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := DamerauLevenshteinSimilarityInto(ta, tb, sc); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// MongeElkanDLInto is MongeElkanDL over a caller-provided Scratch: the
// token slices are built in the Scratch's buffers, the token comparisons in
// its DP rows.
func MongeElkanDLInto(a, b string, sc *Scratch) float64 {
	sc.ta = TokenizeInto(a, sc.ta)
	sc.tb = TokenizeInto(b, sc.tb)
	return MongeElkanTokensInto(sc.ta, sc.tb, sc)
}
