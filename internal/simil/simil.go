// Package simil provides the string-similarity substrate that the paper's
// scoring and usability experiments build on (§6.2, §6.3, §6.5):
// edit-distance measures (Levenshtein, Damerau-Levenshtein and the paper's
// extended variant that forgives missing and abbreviated values), sequence
// measures (Jaro, Jaro-Winkler), token and q-gram set measures (Jaccard),
// hybrid measures (Generalized Jaccard, Monge-Elkan), the Soundex phonetic
// code, and column-entropy attribute weighting.
//
// All similarity functions return values in [0, 1] where 1 means identical.
// All functions are pure and safe for concurrent use.
package simil

import "unicode"

// StringMeasure scores the similarity of two strings in [0, 1].
type StringMeasure func(a, b string) float64

// TokenMeasure scores the similarity of two tokens in [0, 1]. It is the
// internal measure of the hybrid (token-set) measures in this package.
type TokenMeasure func(a, b string) float64

// Tokenize splits s into maximal runs of letters and digits. Punctuation and
// whitespace separate tokens and are discarded. The zero-value result for an
// empty or all-punctuation string is an empty (non-nil) slice.
func Tokenize(s string) []string {
	return TokenizeInto(s, make([]string, 0, 4))
}

// isTokenRune reports whether r belongs inside a token.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// QGrams returns the q-gram multiset of s as a slice, padding-free. For
// strings shorter than q the whole string is the single gram; for an empty
// string the result is empty. q must be >= 1.
func QGrams(s string, q int) []string {
	if q < 1 {
		panic("simil: QGrams called with q < 1")
	}
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= q {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		grams = append(grams, string(r[i:i+q]))
	}
	return grams
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// min3 returns the smallest of a, b and c.
func min3(a, b, c int) int {
	return minInt(minInt(a, b), c)
}
