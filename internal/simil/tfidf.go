package simil

import "math"

// TFIDF holds corpus statistics for token-frequency-weighted comparison:
// rare tokens (high inverse document frequency) matter more than ubiquitous
// ones — "NGUYEN" agreeing means more than "INC" agreeing. This is the
// weighting behind the classic TF-IDF cosine and SoftTFIDF measures of the
// record-linkage literature, offered as a corpus-aware alternative to the
// paper's per-attribute entropy weighting.
type TFIDF struct {
	df   map[string]int // documents containing each token
	docs int
}

// NewTFIDF builds corpus statistics over the given documents (each a token
// slice; duplicate tokens within one document count once for df).
func NewTFIDF(docs [][]string) *TFIDF {
	t := &TFIDF{df: map[string]int{}, docs: len(docs)}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, tok := range d {
			if !seen[tok] {
				seen[tok] = true
				t.df[tok]++
			}
		}
	}
	return t
}

// IDF returns the smoothed inverse document frequency of a token:
// log(1 + N/df). Unknown tokens get the maximal weight log(1 + N).
func (t *TFIDF) IDF(token string) float64 {
	if t.docs == 0 {
		return 0
	}
	df := t.df[token]
	if df == 0 {
		return math.Log(1 + float64(t.docs))
	}
	return math.Log(1 + float64(t.docs)/float64(df))
}

// weights renders a document as a normalized tf-idf vector.
func (t *TFIDF) weights(doc []string) map[string]float64 {
	tf := map[string]float64{}
	for _, tok := range doc {
		tf[tok]++
	}
	norm := 0.0
	for tok, f := range tf {
		w := f * t.IDF(tok)
		tf[tok] = w
		norm += w * w
	}
	if norm == 0 {
		return tf
	}
	norm = math.Sqrt(norm)
	for tok := range tf {
		tf[tok] /= norm
	}
	return tf
}

// Cosine returns the TF-IDF cosine similarity of two token documents in
// [0, 1]. Two empty documents score 1; one empty document scores 0.
func (t *TFIDF) Cosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	wa := t.weights(a)
	wb := t.weights(b)
	dot := 0.0
	for tok, x := range wa {
		dot += x * wb[tok]
	}
	if dot > 1 {
		dot = 1 // guard rounding
	}
	return dot
}

// SoftCosine is the SoftTFIDF measure: tokens need not match exactly — a
// token of a matches the most similar token of b under tok if their
// similarity reaches threshold, and the match contributes the product of
// both tf-idf weights scaled by that similarity. It forgives typos inside
// rare, heavy tokens, which the strict cosine punishes hardest.
func (t *TFIDF) SoftCosine(a, b []string, tok TokenMeasure, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	wa := t.weights(a)
	wb := t.weights(b)
	dot := 0.0
	for ta, x := range wa {
		bestSim, bestTok := 0.0, ""
		for tb := range wb {
			s := tok(ta, tb)
			if s >= threshold && s > bestSim {
				bestSim, bestTok = s, tb
			}
		}
		if bestTok != "" {
			dot += x * wb[bestTok] * bestSim
		}
	}
	if dot > 1 {
		dot = 1
	}
	return dot
}
