package simil

import (
	"math"
	"sort"
)

// TFIDF holds corpus statistics for token-frequency-weighted comparison:
// rare tokens (high inverse document frequency) matter more than ubiquitous
// ones — "NGUYEN" agreeing means more than "INC" agreeing. This is the
// weighting behind the classic TF-IDF cosine and SoftTFIDF measures of the
// record-linkage literature, offered as a corpus-aware alternative to the
// paper's per-attribute entropy weighting.
type TFIDF struct {
	df   map[string]int // documents containing each token
	docs int
}

// NewTFIDF builds corpus statistics over the given documents (each a token
// slice; duplicate tokens within one document count once for df).
func NewTFIDF(docs [][]string) *TFIDF {
	t := &TFIDF{df: map[string]int{}, docs: len(docs)}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, tok := range d {
			if !seen[tok] {
				seen[tok] = true
				t.df[tok]++
			}
		}
	}
	return t
}

// IDF returns the smoothed inverse document frequency of a token:
// log(1 + N/df). Unknown tokens get the maximal weight log(1 + N).
func (t *TFIDF) IDF(token string) float64 {
	if t.docs == 0 {
		return 0
	}
	df := t.df[token]
	if df == 0 {
		return math.Log(1 + float64(t.docs))
	}
	return math.Log(1 + float64(t.docs)/float64(df))
}

// weights renders a document as a normalized tf-idf vector: the distinct
// tokens in sorted order with one weight each. All accumulation (the norm
// here, the dot products below) runs in that sorted order so the measure is
// a pure function of its inputs — map-order summation made repeated calls
// disagree in the last ulp, which the parallel scoring engine's
// bit-identity contract cannot tolerate.
func (t *TFIDF) weights(doc []string) (order []string, w map[string]float64) {
	w = map[string]float64{}
	for _, tok := range doc {
		w[tok]++
	}
	order = make([]string, 0, len(w))
	for tok := range w {
		order = append(order, tok)
	}
	sort.Strings(order)
	norm := 0.0
	for _, tok := range order {
		x := w[tok] * t.IDF(tok)
		w[tok] = x
		norm += x * x
	}
	if norm == 0 {
		return order, w
	}
	norm = math.Sqrt(norm)
	for _, tok := range order {
		w[tok] /= norm
	}
	return order, w
}

// Cosine returns the TF-IDF cosine similarity of two token documents in
// [0, 1]. Two empty documents score 1; one empty document scores 0.
func (t *TFIDF) Cosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	orderA, wa := t.weights(a)
	_, wb := t.weights(b)
	dot := 0.0
	for _, tok := range orderA {
		dot += wa[tok] * wb[tok]
	}
	if dot > 1 {
		dot = 1 // guard rounding
	}
	return dot
}

// SoftCosine is the SoftTFIDF measure: tokens need not match exactly — a
// token of a matches the most similar token of b under tok if their
// similarity reaches threshold, and the match contributes the product of
// both tf-idf weights scaled by that similarity. It forgives typos inside
// rare, heavy tokens, which the strict cosine punishes hardest. Ties for
// the best match go to the lexicographically smallest token of b
// (iteration is sorted, see weights).
func (t *TFIDF) SoftCosine(a, b []string, tok TokenMeasure, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	orderA, wa := t.weights(a)
	orderB, wb := t.weights(b)
	dot := 0.0
	for _, ta := range orderA {
		bestSim, bestTok := 0.0, ""
		for _, tb := range orderB {
			s := tok(ta, tb)
			if s >= threshold && s > bestSim {
				bestSim, bestTok = s, tb
			}
		}
		if bestTok != "" {
			dot += wa[ta] * wb[bestTok] * bestSim
		}
	}
	if dot > 1 {
		dot = 1
	}
	return dot
}
