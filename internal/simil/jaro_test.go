package simil

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaroKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"", "abc", 0},
		{"abc", "abc", 1},
		{"MARTHA", "MARHTA", 0.944444444444444},
		{"DIXON", "DICKSONX", 0.766666666666667},
		{"JELLYFISH", "SMELLYFISH", 0.896296296296296},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !almost(got, c.want) {
			t.Errorf("Jaro(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111111111111},
		{"DIXON", "DICKSONX", 0.813333333333333},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !almost(got, c.want) {
			t.Errorf("JaroWinkler(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return almost(Jaro(a, b), Jaro(b, a)) && almost(JaroWinkler(a, b), JaroWinkler(b, a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerDominatesJaro(t *testing.T) {
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
