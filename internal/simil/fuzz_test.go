package simil

import (
	"math"
	"testing"
)

// Native fuzz targets for the similarity kernels — the hot loop of the
// scoring engine. The fuzzed invariants are the metric contracts every
// caller relies on: results stay in [0, 1] (never NaN or Inf), symmetric
// measures are symmetric, self-similarity of a non-empty value is 1, and
// every allocation-free *Into kernel is bit-identical to its public
// allocating wrapper (the engine mixes both paths and the conformance
// oracles assert byte-identical curves, so a single bit of drift here
// breaks the sequential-vs-parallel guarantee downstream).

// stringKernels are the string measures under fuzz, paired with their
// scratch variants and contract flags.
var stringKernels = []struct {
	name      string
	plain     func(a, b string) float64
	into      func(a, b string, sc *Scratch) float64
	symmetric bool
	identity  bool // f(a, a) == 1 for non-empty a
}{
	{"JaroWinkler", JaroWinkler, JaroWinklerInto, true, true},
	{"DamerauLevenshteinSimilarity", DamerauLevenshteinSimilarity, DamerauLevenshteinSimilarityInto, true, true},
	{"NeedlemanWunsch", NeedlemanWunsch, NeedlemanWunschInto, true, true},
	{"SmithWaterman", SmithWaterman, SmithWatermanInto, true, true},
	{"MongeElkanDL", MongeElkanDL, MongeElkanDLInto, false, true},
	// ExtendedDamerauLevenshtein treats empty/prefix as 1 by design; the
	// identity contract still holds (a == a is a prefix of itself).
	{"ExtendedDamerauLevenshtein", ExtendedDamerauLevenshtein, ExtendedDamerauLevenshteinInto, true, true},
}

func FuzzStringKernels(f *testing.F) {
	f.Add("MCDOWELL", "MCDOWALL")
	f.Add("ANN-MARIE", "ANNMARIE")
	f.Add("", "SMITH")
	f.Add("J.", "JOHN")
	f.Add("ßstraße", "STRASSE")
	f.Add("日本語テスト", "日本语テスト")
	f.Add("a\x80b", "a\xffb") // invalid UTF-8
	f.Add("  padded  ", "padded")
	f.Fuzz(func(t *testing.T, a, b string) {
		sc := &Scratch{}
		for _, k := range stringKernels {
			got := k.plain(a, b)
			if math.IsNaN(got) || got < 0 || got > 1 {
				t.Fatalf("%s(%q, %q) = %v, outside [0,1]", k.name, a, b, got)
			}
			if k.symmetric {
				if rev := k.plain(b, a); math.Float64bits(rev) != math.Float64bits(got) {
					t.Fatalf("%s not symmetric: (%q,%q)=%v (%q,%q)=%v", k.name, a, b, got, b, a, rev)
				}
			}
			if k.identity && a != "" {
				if self := k.plain(a, a); self != 1 {
					t.Fatalf("%s(%q, %q) = %v, want 1", k.name, a, a, self)
				}
			}
			// The scratch kernel must agree bit for bit, including after the
			// scratch has been dirtied by every other measure.
			if into := k.into(a, b, sc); math.Float64bits(into) != math.Float64bits(got) {
				t.Fatalf("%s: Into variant diverges: %v vs %v", k.name, into, got)
			}
		}
	})
}

// FuzzTokenKernels covers the token/q-gram measures: TrigramJaccard,
// TokenJaccard, CosineQGram and OverlapQGram over raw strings, plus the
// GeneralizedJaccard tokens path against its Into variant.
func FuzzTokenKernels(f *testing.F) {
	f.Add("CHAPEL HILL", "CHAPELL HILL")
	f.Add("", "")
	f.Add("A B C", "C B A")
	f.Add("ONE", "ONE TWO THREE")
	f.Fuzz(func(t *testing.T, a, b string) {
		sc := &Scratch{}
		for _, k := range []struct {
			name  string
			plain func(a, b string) float64
		}{
			{"TrigramJaccard", TrigramJaccard},
			{"TokenJaccard", TokenJaccard},
			{"CosineTrigram", func(x, y string) float64 { return CosineQGram(x, y, 3) }},
			{"OverlapTrigram", func(x, y string) float64 { return OverlapQGram(x, y, 3) }},
		} {
			got := k.plain(a, b)
			if math.IsNaN(got) || got < 0 || got > 1 {
				t.Fatalf("%s(%q, %q) = %v, outside [0,1]", k.name, a, b, got)
			}
			if rev := k.plain(b, a); math.Float64bits(rev) != math.Float64bits(got) {
				t.Fatalf("%s not symmetric: %v vs %v", k.name, got, rev)
			}
		}

		ta, tb := Tokenize(a), Tokenize(b)
		want := GeneralizedJaccard(ta, tb, DamerauLevenshteinSimilarity, 0.7)
		got := GeneralizedJaccardInto(ta, tb, DamerauLevenshteinSimilarity, 0.7, sc)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("GeneralizedJaccardInto diverges: %v vs %v", got, want)
		}
		if math.IsNaN(want) || want < 0 || want > 1 {
			t.Fatalf("GeneralizedJaccard(%q, %q) = %v, outside [0,1]", a, b, want)
		}
		if tok := MongeElkanTokensInto(ta, tb, sc); math.Float64bits(tok) != math.Float64bits(MongeElkan(ta, tb, DamerauLevenshteinSimilarity)) {
			// MongeElkanTokensInto is pinned to the DL token measure.
			t.Fatalf("MongeElkanTokensInto diverges: %v", tok)
		}
	})
}
