package simil

import (
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"JOHN", []string{"JOHN"}},
		{"MARY-ANN SMITH", []string{"MARY", "ANN", "SMITH"}},
		{"1ST CONGRESSIONAL", []string{"1ST", "CONGRESSIONAL"}},
		{"J. R. EWING", []string{"J", "R", "EWING"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("abcd", 3)
	want := []string{"abc", "bcd"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("QGrams(abcd, 3) = %v, want %v", got, want)
	}
	if g := QGrams("ab", 3); len(g) != 1 || g[0] != "ab" {
		t.Errorf("QGrams(ab, 3) = %v, want [ab]", g)
	}
	if g := QGrams("", 3); len(g) != 0 {
		t.Errorf("QGrams(empty, 3) = %v, want empty", g)
	}
}

func TestGeneralizedJaccardNameConfusion(t *testing.T) {
	// Token order must not matter: confused first/last names score 1 under
	// exact token matching.
	a := []string{"DEBRA", "OEHRIE", "WILLIAMS"}
	b := []string{"WILLIAMS", "DEBRA", "OEHRIE"}
	if got := GeneralizedJaccard(a, b, DamerauLevenshteinSimilarity, 0.5); got != 1 {
		t.Errorf("GeneralizedJaccard(confused order) = %v, want 1", got)
	}
}

func TestGeneralizedJaccardPartial(t *testing.T) {
	a := []string{"DEBRA", "WILLIAMS"}
	b := []string{"MARY", "FIELDS"}
	got := GeneralizedJaccard(a, b, DamerauLevenshteinSimilarity, 0.5)
	if got > 0.3 {
		t.Errorf("GeneralizedJaccard(different persons) = %v, want <= 0.3", got)
	}
}

func TestGeneralizedJaccardBoundsAndSymmetry(t *testing.T) {
	f := func(a, b []string) bool {
		x := GeneralizedJaccard(a, b, DamerauLevenshteinSimilarity, 0.5)
		y := GeneralizedJaccard(b, a, DamerauLevenshteinSimilarity, 0.5)
		return x >= 0 && x <= 1 && almost(x, y)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMongeElkanDirectedVsSymmetric(t *testing.T) {
	a := Tokenize("JRS RIDGE")
	b := Tokenize("JRS")
	d1 := MongeElkanDirected(b, a, DamerauLevenshteinSimilarity)
	if d1 != 1 {
		t.Errorf("directed ME of subset tokens = %v, want 1", d1)
	}
	sym := MongeElkan(a, b, DamerauLevenshteinSimilarity)
	if sym >= 1 || sym <= 0 {
		t.Errorf("symmetric ME = %v, want in (0, 1)", sym)
	}
}

func TestMongeElkanSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return almost(MongeElkanDL(a, b), MongeElkanDL(b, a))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMongeElkanIdenticalTokens(t *testing.T) {
	if got := MongeElkanDL("MARY ANN", "ANN MARY"); got != 1 {
		t.Errorf("MongeElkanDL(token transposition) = %v, want 1", got)
	}
}
