package simil

import "strings"

// soundexCode maps an ASCII letter to its Soundex digit, or 0 for vowels and
// the ignored letters H, W, Y.
func soundexCode(r byte) byte {
	switch r {
	case 'B', 'F', 'P', 'V':
		return '1'
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return '2'
	case 'D', 'T':
		return '3'
	case 'L':
		return '4'
	case 'M', 'N':
		return '5'
	case 'R':
		return '6'
	}
	return 0
}

// Soundex returns the classic 4-character American Soundex code of s
// (first letter + three digits, zero-padded), considering only ASCII
// letters. For a string without any letter it returns the empty string.
// The paper flags two non-identical values with equal Soundex codes as a
// phonetic error (§6.4).
func Soundex(s string) string {
	s = strings.ToUpper(s)
	// Find the first letter.
	first := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			first = c
			start = i
			break
		}
	}
	if first == 0 {
		return ""
	}
	code := make([]byte, 0, 4)
	code = append(code, first)
	lastDigit := soundexCode(first)
	for i := start + 1; i < len(s) && len(code) < 4; i++ {
		c := s[i]
		if c < 'A' || c > 'Z' {
			// Non-letters reset the adjacency rule like a vowel would not:
			// standard Soundex ignores them entirely.
			continue
		}
		d := soundexCode(c)
		if d == 0 {
			// Vowels separate equal codes; H and W do not (simplified:
			// treat all zero-coded letters as separators, the common
			// implementation choice).
			if c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U' || c == 'Y' {
				lastDigit = 0
			}
			continue
		}
		if d != lastDigit {
			code = append(code, d)
			lastDigit = d
		}
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

// SoundexEqual reports whether a and b have equal non-empty Soundex codes.
func SoundexEqual(a, b string) bool {
	ca := Soundex(a)
	return ca != "" && ca == Soundex(b)
}
