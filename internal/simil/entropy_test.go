package simil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropyKnown(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", got)
	}
	if got := Entropy([]string{"a", "a", "a"}); got != 0 {
		t.Errorf("Entropy(constant) = %v, want 0", got)
	}
	if got := Entropy([]string{"a", "b"}); !almost(got, 1) {
		t.Errorf("Entropy(a,b) = %v, want 1", got)
	}
	if got := Entropy([]string{"a", "b", "c", "d"}); !almost(got, 2) {
		t.Errorf("Entropy(4 distinct) = %v, want 2", got)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	f := func(col []string) bool {
		h := Entropy(col)
		if h < 0 {
			return false
		}
		if len(col) == 0 {
			return h == 0
		}
		// Entropy is at most log2(n).
		return h <= math.Log2(float64(len(col)))+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEntropyWeightsSumToOne(t *testing.T) {
	cols := [][]string{
		{"a", "b", "c"},
		{"x", "x", "x"},
		{"1", "2", "1"},
	}
	w := EntropyWeights(cols)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if !almost(sum, 1) {
		t.Errorf("weights sum = %v, want 1", sum)
	}
	if w[1] != 0 {
		t.Errorf("constant column weight = %v, want 0", w[1])
	}
	if w[0] <= w[2] {
		t.Errorf("more unique column should weigh more: %v vs %v", w[0], w[2])
	}
}

func TestEntropyWeightsUniformFallback(t *testing.T) {
	cols := [][]string{{"a", "a"}, {"b", "b"}}
	w := EntropyWeights(cols)
	if !almost(w[0], 0.5) || !almost(w[1], 0.5) {
		t.Errorf("zero-entropy fallback weights = %v, want uniform", w)
	}
}

func TestWeightedAverage(t *testing.T) {
	got := WeightedAverage([]float64{1, 0}, []float64{0.75, 0.25})
	if !almost(got, 0.75) {
		t.Errorf("WeightedAverage = %v, want 0.75", got)
	}
	if got := WeightedAverage(nil, nil); got != 0 {
		t.Errorf("WeightedAverage(empty) = %v, want 0", got)
	}
	// Zero weights fall back to the plain mean.
	if got := WeightedAverage([]float64{1, 0}, []float64{0, 0}); !almost(got, 0.5) {
		t.Errorf("WeightedAverage(zero weights) = %v, want 0.5", got)
	}
}
