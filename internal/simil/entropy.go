package simil

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (in bits) of the value distribution of
// the given column. An empty or single-valued column has entropy 0. The paper
// weights attributes by their entropy as a context-free uniqueness proxy
// (§6.3, §6.5).
//
// The per-value terms are accumulated in sorted value order, not map
// iteration order: float addition is not associative, and summing in the
// map's (run-varying) order made two processes disagree in the last ulp of
// every entropy-weighted score downstream. With a fixed order the result is
// a pure function of the column.
func Entropy(column []string) float64 {
	if len(column) == 0 {
		return 0
	}
	counts := make(map[string]int, len(column))
	for _, v := range column {
		counts[v]++
	}
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Strings(values)
	n := float64(len(column))
	h := 0.0
	for _, v := range values {
		p := float64(counts[v]) / n
		h -= p * math.Log2(p)
	}
	if h < 0 {
		h = 0 // guard against -0 from rounding
	}
	return h
}

// EntropyWeights returns one weight per column, each column's entropy divided
// by the sum of all entropies, so the weights sum to 1. If every column has
// zero entropy the weights are uniform.
func EntropyWeights(columns [][]string) []float64 {
	weights := make([]float64, len(columns))
	total := 0.0
	for i, col := range columns {
		weights[i] = Entropy(col)
		total += weights[i]
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
		return weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights
}

// WeightedAverage returns the weighted mean of scores under weights. The two
// slices must have equal length. If the weights sum to zero the plain mean is
// returned; for empty input the result is 0.
func WeightedAverage(scores, weights []float64) float64 {
	if len(scores) != len(weights) {
		panic("simil: WeightedAverage length mismatch")
	}
	if len(scores) == 0 {
		return 0
	}
	sum, wsum := 0.0, 0.0
	for i, s := range scores {
		sum += s * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		plain := 0.0
		for _, s := range scores {
			plain += s
		}
		return plain / float64(len(scores))
	}
	return sum / wsum
}
