package simil

import "sort"

// Interned-set kernels. The scoring engine (§6.5 hot loop) preprocesses
// every distinct column value once — lowercasing, q-gram extraction, gram
// interning — and stores each value's gram profile as a sorted slice of
// integer gram IDs with aligned multiplicities. The token and set measures
// (Jaccard, overlap, cosine over trigrams) then reduce to linear merges over
// two sorted slices: no maps, no hashing, no allocation per comparison.
// These kernels count exactly what the map-based Jaccard / OverlapQGram /
// CosineQGram count, so the derived similarities are bit-identical.

// GramProfile is one value's interned q-gram multiset: IDs sorted ascending
// and unique, Counts aligned (multiplicity per ID), NormSq the sum of
// squared multiplicities (the cosine's denominator contribution).
type GramProfile struct {
	IDs    []uint32
	Counts []int32
	NormSq int
}

// NewGramProfile interns the grams through the given ID map (extending it
// for unseen grams) and builds the sorted profile.
func NewGramProfile(grams []string, intern map[string]uint32) GramProfile {
	if len(grams) == 0 {
		return GramProfile{}
	}
	// Count multiplicities per interned ID.
	counts := make(map[uint32]int32, len(grams))
	for _, g := range grams {
		id, ok := intern[g]
		if !ok {
			id = uint32(len(intern))
			intern[g] = id
		}
		counts[id]++
	}
	p := GramProfile{
		IDs:    make([]uint32, 0, len(counts)),
		Counts: make([]int32, 0, len(counts)),
	}
	for id := range counts {
		p.IDs = append(p.IDs, id)
	}
	sort.Slice(p.IDs, func(i, j int) bool { return p.IDs[i] < p.IDs[j] })
	for _, id := range p.IDs {
		c := counts[id]
		p.Counts = append(p.Counts, c)
		p.NormSq += int(c) * int(c)
	}
	return p
}

// SortedIntersectCount returns |A ∩ B| of two sorted unique ID slices.
func SortedIntersectCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// SortedDot returns the dot product of the two profiles' multiplicity
// vectors: Σ over shared IDs of countA·countB.
func SortedDot(a, b GramProfile) int {
	i, j, dot := 0, 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			dot += int(a.Counts[i]) * int(b.Counts[j])
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	return dot
}
