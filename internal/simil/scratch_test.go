package simil

import (
	"math"
	"math/rand"
	"testing"
)

// randomValue draws a plausible register value: letters, digits, spaces,
// punctuation, mixed case, occasionally empty or unicode.
func randomValue(rng *rand.Rand) string {
	alphabet := []rune("ABCDEFGHIJKLMNOPQRSTUVWXYZ abcdefghijklmnop0123456789.-'Ü é")
	n := rng.Intn(14)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// TestIntoVariantsMatchAllocatingKernels fuzzes every *Into kernel against
// its allocating counterpart on shared scratch state: the engine's
// bit-identity contract starts here.
func TestIntoVariantsMatchAllocatingKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc Scratch // shared and reused across all iterations on purpose
	for i := 0; i < 500; i++ {
		a, b := randomValue(rng), randomValue(rng)
		if d, dInto := Levenshtein(a, b), LevenshteinInto(a, b, &sc); d != dInto {
			t.Fatalf("LevenshteinInto(%q, %q) = %d, want %d", a, b, dInto, d)
		}
		if d, dInto := DamerauLevenshtein(a, b), DamerauLevenshteinInto(a, b, &sc); d != dInto {
			t.Fatalf("DamerauLevenshteinInto(%q, %q) = %d, want %d", a, b, dInto, d)
		}
		checks := []struct {
			name       string
			have, want float64
		}{
			{"DamerauLevenshteinSimilarity", DamerauLevenshteinSimilarityInto(a, b, &sc), DamerauLevenshteinSimilarity(a, b)},
			{"Jaro", JaroInto(a, b, &sc), Jaro(a, b)},
			{"JaroWinkler", JaroWinklerInto(a, b, &sc), JaroWinkler(a, b)},
			{"NeedlemanWunsch", NeedlemanWunschInto(a, b, &sc), NeedlemanWunsch(a, b)},
			{"SmithWaterman", SmithWatermanInto(a, b, &sc), SmithWaterman(a, b)},
			{"MongeElkanDL", MongeElkanDLInto(a, b, &sc), MongeElkanDL(a, b)},
		}
		for _, c := range checks {
			if math.Float64bits(c.have) != math.Float64bits(c.want) {
				t.Fatalf("%sInto(%q, %q) = %v, want bit-identical %v", c.name, a, b, c.have, c.want)
			}
		}
	}
}

func TestTokenizeIntoMatchesTokenize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []string
	for i := 0; i < 200; i++ {
		s := randomValue(rng)
		want := Tokenize(s)
		buf = TokenizeInto(s, buf)
		if len(buf) != len(want) {
			t.Fatalf("TokenizeInto(%q) = %v, want %v", s, buf, want)
		}
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("TokenizeInto(%q) = %v, want %v", s, buf, want)
			}
		}
	}
}

// TestGramProfileKernelsMatchMapMeasures checks that the merge kernels count
// exactly what the map-based q-gram measures count.
func TestGramProfileKernelsMatchMapMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	intern := map[string]uint32{}
	for i := 0; i < 300; i++ {
		a, b := randomValue(rng), randomValue(rng)
		pa := NewGramProfile(QGrams(a, 3), intern)
		pb := NewGramProfile(QGrams(b, 3), intern)

		inter := SortedIntersectCount(pa.IDs, pb.IDs)
		var jac float64
		switch {
		case len(pa.IDs) == 0 && len(pb.IDs) == 0:
			jac = 1
		default:
			union := len(pa.IDs) + len(pb.IDs) - inter
			if union == 0 {
				jac = 1
			} else {
				jac = float64(inter) / float64(union)
			}
		}
		if want := TrigramJaccard(a, b); math.Float64bits(jac) != math.Float64bits(want) {
			t.Fatalf("profile Jaccard(%q, %q) = %v, want %v", a, b, jac, want)
		}

		var cos float64
		switch {
		case len(pa.IDs) == 0 && len(pb.IDs) == 0:
			cos = 1
		case len(pa.IDs) == 0 || len(pb.IDs) == 0:
			cos = 0
		default:
			cos = float64(SortedDot(pa, pb)) /
				(math.Sqrt(float64(pa.NormSq)) * math.Sqrt(float64(pb.NormSq)))
		}
		if want := CosineQGram(a, b, 3); math.Float64bits(cos) != math.Float64bits(want) {
			t.Fatalf("profile Cosine(%q, %q) = %v, want %v", a, b, cos, want)
		}

		var ovl float64
		switch {
		case len(pa.IDs) == 0 && len(pb.IDs) == 0:
			ovl = 1
		case len(pa.IDs) == 0 || len(pb.IDs) == 0:
			ovl = 0
		default:
			ovl = float64(inter) / float64(minInt(len(pa.IDs), len(pb.IDs)))
		}
		if want := OverlapQGram(a, b, 3); math.Float64bits(ovl) != math.Float64bits(want) {
			t.Fatalf("profile Overlap(%q, %q) = %v, want %v", a, b, ovl, want)
		}
	}
}

// TestEntropyDeterministic recomputes the entropy weights of a
// many-distinct-value column from fresh maps and requires exact bit
// equality — the ROADMAP's cross-process last-ulp fix.
func TestEntropyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	column := make([]string, 500)
	for i := range column {
		column[i] = randomValue(rng)
	}
	columns := [][]string{column, column[:250], column[250:]}
	base := EntropyWeights(columns)
	for run := 0; run < 30; run++ {
		// Rebuild the inputs so every run constructs fresh maps internally.
		again := EntropyWeights([][]string{
			append([]string(nil), column...),
			append([]string(nil), column[:250]...),
			append([]string(nil), column[250:]...),
		})
		for i := range base {
			if math.Float64bits(base[i]) != math.Float64bits(again[i]) {
				t.Fatalf("run %d: weight %d = %x, want %x", run, i,
					math.Float64bits(again[i]), math.Float64bits(base[i]))
			}
		}
	}
}

// TestSoftCosineDeterministic requires SoftTFIDF to be a pure function of
// its inputs across repeated evaluations (sorted iteration, deterministic
// tie-breaks).
func TestSoftCosineDeterministic(t *testing.T) {
	docs := [][]string{
		{"JOHN", "SMITH"}, {"JON", "SMYTH"}, {"MARY", "NGUYEN"},
		{"MARY", "NGUYEM"}, {"A", "B", "C"}, {"C", "B", "A"},
	}
	tf := NewTFIDF(docs)
	a := []string{"JOHN", "NGUYEN", "B"}
	b := []string{"JON", "NGUYEM", "C", "B"}
	base := tf.SoftCosine(a, b, DamerauLevenshteinSimilarity, 0.5)
	for i := 0; i < 50; i++ {
		tf2 := NewTFIDF(docs)
		got := tf2.SoftCosine(a, b, DamerauLevenshteinSimilarity, 0.5)
		if math.Float64bits(got) != math.Float64bits(base) {
			t.Fatalf("run %d: SoftCosine = %x, want %x", i, math.Float64bits(got), math.Float64bits(base))
		}
	}
}

// TestHybridIntoVariantsMatch fuzzes the extended-DL and Generalized
// Jaccard scratch variants against their allocating counterparts for exact
// bit equality.
func TestHybridIntoVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	for iter := 0; iter < 500; iter++ {
		a, b := randomValue(rng), randomValue(rng)
		want := ExtendedDamerauLevenshtein(a, b)
		got := ExtendedDamerauLevenshteinInto(a, b, &sc)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("ExtendedDamerauLevenshteinInto(%q, %q) = %v, want %v", a, b, got, want)
		}

		ta := make([]string, rng.Intn(4))
		tb := make([]string, rng.Intn(4))
		for i := range ta {
			ta[i] = randomValue(rng)
		}
		for i := range tb {
			tb[i] = randomValue(rng)
		}
		wantGJ := GeneralizedJaccard(ta, tb, ExtendedDamerauLevenshtein, 0.5)
		gotGJ := GeneralizedJaccardInto(ta, tb, func(x, y string) float64 {
			return ExtendedDamerauLevenshteinInto(x, y, &sc)
		}, 0.5, &sc)
		if math.Float64bits(wantGJ) != math.Float64bits(gotGJ) {
			t.Fatalf("GeneralizedJaccardInto(%q, %q) = %v, want %v", ta, tb, gotGJ, wantGJ)
		}
	}
}

func BenchmarkDamerauLevenshteinInto(b *testing.B) {
	var sc Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DamerauLevenshteinSimilarityInto("CHRISTOPHER", "KRISTOFFER", &sc)
	}
}

func BenchmarkDamerauLevenshteinAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DamerauLevenshteinSimilarity("CHRISTOPHER", "KRISTOFFER")
	}
}
