package simil

import (
	"testing"
	"testing/quick"
)

func TestSoundexKnown(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // H does not separate equal codes
		{"Tymczak", "T522"},
		{"Pfister", "P236"}, // F shares the first letter's code and is dropped
		{"BAILEY", "B400"},
		{"BAYLEE", "B400"},
		{"", ""},
		{"123", ""},
		{"  smith ", "S530"},
		{"SMYTHE", "S530"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexEqual(t *testing.T) {
	if !SoundexEqual("BAILEY", "BAYLEE") {
		t.Error("SoundexEqual(BAILEY, BAYLEE) = false, want true")
	}
	if SoundexEqual("FIELDS", "BETHEA") {
		t.Error("SoundexEqual(FIELDS, BETHEA) = true, want false")
	}
	if SoundexEqual("", "") {
		t.Error("SoundexEqual on empty strings should be false (no code)")
	}
}

func TestSoundexFormat(t *testing.T) {
	f := func(s string) bool {
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
