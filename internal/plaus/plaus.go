// Package plaus implements the paper's plausibility check (§6.2): a
// similarity score per duplicate pair reflecting how strongly the pair
// contradicts the assumption that both records describe the same voter.
// Simple errors and representation differences are compensated — word
// confusions between the name attributes, missing values and abbreviations
// do not reduce the score at all — and only stable, identifying attributes
// participate: the three names, the sex code, the derived year of birth and
// the place of birth.
package plaus

import (
	"strings"

	"repro/internal/core"
	"repro/internal/simil"
	"repro/internal/voter"
)

// Weights of the component scores: the combined name similarity is
// considered more important (0.5) than sex, year of birth and birth place
// (0.15 each). simil.WeightedAverage normalizes over the weight sum.
var componentWeights = []float64{0.5, 0.15, 0.15, 0.15}

// genJaccThreshold is the minimum internal token similarity for a token
// match inside the Generalized Jaccard Coefficient.
const genJaccThreshold = 0.5

// NameSimilarity scores the (first, middle, last) name tuples with the
// Generalized Jaccard Coefficient over the Extended Damerau-Levenshtein
// token measure, so confusions between the name attributes, typos within a
// name, missing names and abbreviations are all forgiven.
func NameSimilarity(a, b voter.Record) float64 {
	na := nameTuple(a)
	nb := nameTuple(b)
	return simil.GeneralizedJaccard(na, nb, simil.ExtendedDamerauLevenshtein, genJaccThreshold)
}

// nameTuple extracts the three name values (including empties: the extended
// token measure treats them as non-contradicting). Conventional missing
// markers like "-" or "UNKNOWN" are normalized to the empty string first —
// they denote unknown values, not contradictions (§6.2).
func nameTuple(r voter.Record) []string {
	return []string{
		normalizeMissing(r.Values[voter.IdxFirstName]),
		normalizeMissing(r.Values[voter.IdxMiddleName]),
		normalizeMissing(r.Values[voter.IdxLastName]),
	}
}

// normalizeMissing trims the value and maps missing markers to "".
func normalizeMissing(v string) string {
	if voter.IsMissing(v) {
		return ""
	}
	return strings.TrimSpace(v)
}

// SexSimilarity compares the sex codes: agreement, an undesignated value
// ('U') or a missing value score 1; a real disagreement scores 0.
func SexSimilarity(a, b voter.Record) float64 {
	sa := strings.ToUpper(strings.TrimSpace(a.Values[voter.IdxSexCode]))
	sb := strings.ToUpper(strings.TrimSpace(b.Values[voter.IdxSexCode]))
	if sa == "" || sb == "" || sa == "U" || sb == "U" || sa == sb {
		return 1
	}
	return 0
}

// YearOfBirthSimilarity compares the derived years of birth (snapshot date
// minus age) with the paper's tolerance formula:
//
//	sim = 1 - min(1, max(0, |Δ| - 1) / 10)
//
// A missing year on either side does not contradict and scores 1.
func YearOfBirthSimilarity(a, b voter.Record) float64 {
	ya, yb := a.YearOfBirth(), b.YearOfBirth()
	if ya == 0 || yb == 0 {
		return 1
	}
	diff := ya - yb
	if diff < 0 {
		diff = -diff
	}
	over := float64(diff - 1)
	if over < 0 {
		over = 0
	}
	penalty := over / 10
	if penalty > 1 {
		penalty = 1
	}
	return 1 - penalty
}

// BirthPlaceSimilarity compares the birth places with the Extended
// Damerau-Levenshtein similarity (missing values and prefixes forgiven).
func BirthPlaceSimilarity(a, b voter.Record) float64 {
	return simil.ExtendedDamerauLevenshtein(
		normalizeMissing(a.Values[voter.IdxBirthPlace]),
		normalizeMissing(b.Values[voter.IdxBirthPlace]))
}

// PairScore is the plausibility of a duplicate pair: the weighted average of
// the four component similarities.
func PairScore(a, b voter.Record) float64 {
	scores := []float64{
		NameSimilarity(a, b),
		SexSimilarity(a, b),
		YearOfBirthSimilarity(a, b),
		BirthPlaceSimilarity(a, b),
	}
	return simil.WeightedAverage(scores, componentWeights)
}

// Scorer returns PairScore as a core.PairScorer for registration under
// core.KindPlausibility.
func Scorer() core.PairScorer { return PairScore }

// pairScratch is the per-worker mutable state of the allocation-free
// plausibility scorer: kernel scratch plus fixed-size name-tuple and
// component-score buffers.
type pairScratch struct {
	sc     simil.Scratch
	na, nb [3]string
	scores [4]float64
}

// ScorerFactory returns a factory producing one allocation-free plausibility
// scorer per worker for core.UpdateScoresParallelFactory. Each returned
// PairScorer owns private scratch buffers (not goroutine-safe) and computes
// the same four components in the same order as PairScore, so scores are
// bit-identical.
func ScorerFactory() func() core.PairScorer {
	return func() core.PairScorer {
		ps := &pairScratch{}
		tok := func(x, y string) float64 { return simil.ExtendedDamerauLevenshteinInto(x, y, &ps.sc) }
		return func(a, b voter.Record) float64 {
			ps.na[0] = normalizeMissing(a.Values[voter.IdxFirstName])
			ps.na[1] = normalizeMissing(a.Values[voter.IdxMiddleName])
			ps.na[2] = normalizeMissing(a.Values[voter.IdxLastName])
			ps.nb[0] = normalizeMissing(b.Values[voter.IdxFirstName])
			ps.nb[1] = normalizeMissing(b.Values[voter.IdxMiddleName])
			ps.nb[2] = normalizeMissing(b.Values[voter.IdxLastName])
			ps.scores[0] = simil.GeneralizedJaccardInto(ps.na[:], ps.nb[:], tok, genJaccThreshold, &ps.sc)
			ps.scores[1] = SexSimilarity(a, b)
			ps.scores[2] = YearOfBirthSimilarity(a, b)
			ps.scores[3] = simil.ExtendedDamerauLevenshteinInto(
				normalizeMissing(a.Values[voter.IdxBirthPlace]),
				normalizeMissing(b.Values[voter.IdxBirthPlace]), &ps.sc)
			return simil.WeightedAverage(ps.scores[:], componentWeights)
		}
	}
}

// Update computes (incrementally) the plausibility version-similarity map of
// the dataset.
func Update(d *core.Dataset) {
	d.UpdateScores(core.KindPlausibility, PairScore)
}

// UpdateParallel is Update over a worker pool (workers <= 0 selects
// GOMAXPROCS); the result is identical. Each worker gets its own
// allocation-free scorer with private scratch buffers.
func UpdateParallel(d *core.Dataset, workers int) {
	d.UpdateScoresParallelFactory(core.KindPlausibility, ScorerFactory(), workers)
}

// UpdateDelta scores only the clusters a delta apply marked dirty
// (dl.Dirty()). Because pair scores are computed once and never revisited,
// scoring the dirty subset after each delta yields maps bit-identical to a
// full UpdateParallel over the grown dataset — provided scores were current
// before the delta was applied.
func UpdateDelta(d *core.Dataset, dl *core.Delta, workers int) {
	d.UpdateScoresParallelFactoryOn(core.KindPlausibility, ScorerFactory(), workers, dl.Dirty())
}

// ClusterPlausibility returns the dataset's per-cluster plausibility: the
// minimum pair score, because a cluster is already unsound if a single
// record refers to another voter.
func ClusterPlausibility(d *core.Dataset) []float64 {
	return d.ClusterScores(core.KindPlausibility, core.AggMin)
}
