package plaus

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/voter"
)

// TestParallelScorePlausScratchMatchesPlain pins the bit-identity of the
// allocation-free plausibility scorer against PairScore on the Figure 3
// fixtures, in both orientations.
func TestParallelScorePlausScratchMatchesPlain(t *testing.T) {
	scorer := ScorerFactory()()
	recs := []voter.Record{r1, r2, r3, r4, r5}
	for _, a := range recs {
		for _, b := range recs {
			want := PairScore(a, b)
			got := scorer(a, b)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("scratch scorer = %v, want %v", got, want)
			}
		}
	}
}

// scoreDataset builds a dataset of the Figure 3 records as one cluster so
// UpdateParallel has pairs to score.
func scoreDataset(t testing.TB) *core.Dataset {
	t.Helper()
	d := core.NewDataset(core.RemoveTrimmed)
	d.ImportSnapshot(voter.Snapshot{Date: "2012-01-01", Records: []voter.Record{r1, r2, r3, r4, r5}})
	return d
}

// TestParallelScorePlausWorkerLadder checks UpdateParallel against the
// sequential Update bit for bit across worker counts.
func TestParallelScorePlausWorkerLadder(t *testing.T) {
	ref := scoreDataset(t)
	Update(ref)
	var want []uint64
	ref.PairScores(core.KindPlausibility, func(_ *core.Cluster, _, _ int, sim float64) bool {
		want = append(want, math.Float64bits(sim))
		return true
	})
	if len(want) == 0 {
		t.Fatal("no pair scores in fixture")
	}
	for _, workers := range []int{2, 3, 7} {
		d := scoreDataset(t)
		UpdateParallel(d, workers)
		k := 0
		d.PairScores(core.KindPlausibility, func(_ *core.Cluster, i, j int, sim float64) bool {
			if k >= len(want) || math.Float64bits(sim) != want[k] {
				t.Fatalf("workers=%d: score %d (%d,%d) diverges", workers, k, i, j)
			}
			k++
			return true
		})
		if k != len(want) {
			t.Fatalf("workers=%d: %d scores, want %d", workers, k, len(want))
		}
	}
}

func BenchmarkPairScoreScratch(b *testing.B) {
	scorer := ScorerFactory()()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer(r2, r3)
	}
}
