package plaus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/voter"
)

// mk builds a record with name, sex, age/date and birthplace.
func mk(first, middle, last, sex, age, date, birth string) voter.Record {
	r := voter.NewRecord()
	r.SetName("ncid", "X")
	r.SetName("first_name", first)
	r.SetName("midl_name", middle)
	r.SetName("last_name", last)
	r.SetName("sex_code", sex)
	r.SetName("age", age)
	r.SetName("snapshot_dt", date)
	r.SetName("birth_place", birth)
	return r
}

// Records mirroring the paper's Figure 3.
var (
	r1 = mk("DEBRA", "OEHRIE", "WILLIAMS", "F", "45", "2008-01-01", "NC")
	r2 = mk("DEBRA", "OEHRLE", "WILLIAMS", "F", "47", "2010-01-01", "NC")
	r3 = mk("DEBRA", "ANN", "OEHRLE", "F", "49", "2012-01-01", "NC")
	r4 = mk("MARY", "ELIZABETH", "FIELDS", "F", "61", "2012-01-01", "NC")
	r5 = mk("JOSHUA", "ELIZABETH", "BETHEA", "M", "93", "2012-01-01", "SC")
)

func TestIdenticalRecordsScoreOne(t *testing.T) {
	if got := PairScore(r1, r1); got != 1 {
		t.Errorf("PairScore(r, r) = %v", got)
	}
}

func TestSymmetry(t *testing.T) {
	pairs := [][2]voter.Record{{r1, r2}, {r2, r3}, {r4, r5}, {r1, r5}}
	for _, p := range pairs {
		if PairScore(p[0], p[1]) != PairScore(p[1], p[0]) {
			t.Errorf("PairScore asymmetric for %v / %v", p[0], p[1])
		}
	}
}

func TestTypoInMiddleNameStaysPlausible(t *testing.T) {
	// OEHRIE vs OEHRLE: one typo; everything else agrees.
	got := PairScore(r1, r2)
	if got < 0.9 {
		t.Errorf("typo pair score = %v, want >= 0.9", got)
	}
}

func TestNameConfusionIsForgiven(t *testing.T) {
	// r3 has the last name in the middle slot (word confusion between
	// attributes) plus a new middle name; plausibility should stay clearly
	// above the unsound range (paper: cluster DB175272 scores 0.81).
	got := PairScore(r2, r3)
	if got < 0.6 || got > 0.95 {
		t.Errorf("confused-names pair score = %v, want in [0.6, 0.95]", got)
	}
}

func TestObviousNonDuplicateScoresLow(t *testing.T) {
	// r4 vs r5: different names, different sex, 32 years apart (paper:
	// cluster DR19657 scores 0.33).
	got := PairScore(r4, r5)
	if got > 0.5 {
		t.Errorf("non-duplicate pair score = %v, want <= 0.5", got)
	}
	if got < 0.1 {
		t.Errorf("non-duplicate pair score = %v, implausibly low (shared middle name and tolerant components)", got)
	}
}

func TestSexSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"F", "F", 1}, {"M", "M", 1}, {"F", "M", 0},
		{"U", "M", 1}, {"F", "U", 1}, {"", "M", 1}, {"", "", 1},
	}
	for _, c := range cases {
		a := mk("X", "", "Y", c.a, "", "", "")
		b := mk("X", "", "Y", c.b, "", "", "")
		if got := SexSimilarity(a, b); got != c.want {
			t.Errorf("SexSimilarity(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestYearOfBirthSimilarity(t *testing.T) {
	rec := func(age, date string) voter.Record { return mk("A", "", "B", "F", age, date, "") }
	cases := []struct {
		a, b voter.Record
		want float64
	}{
		// Same YoB.
		{rec("45", "2008-01-01"), rec("45", "2008-01-01"), 1},
		// Off by one (birthday not yet reached): tolerated.
		{rec("45", "2008-01-01"), rec("44", "2008-01-01"), 1},
		// Off by two: 1 - 1/10.
		{rec("45", "2008-01-01"), rec("43", "2008-01-01"), 0.9},
		// Off by 11+: zero.
		{rec("45", "2008-01-01"), rec("30", "2008-01-01"), 0},
		// Missing age: no contradiction.
		{rec("", "2008-01-01"), rec("45", "2008-01-01"), 1},
	}
	for i, c := range cases {
		if got := YearOfBirthSimilarity(c.a, c.b); got != c.want {
			t.Errorf("case %d: YoB sim = %v, want %v", i, got, c.want)
		}
	}
	// Age aging across snapshots keeps the same YoB.
	a := rec("45", "2008-01-01")
	b := rec("49", "2012-01-01")
	if got := YearOfBirthSimilarity(a, b); got != 1 {
		t.Errorf("aging across snapshots = %v, want 1", got)
	}
}

func TestMissingAndAbbreviatedNamesForgiven(t *testing.T) {
	full := mk("DEBRA", "ANN", "WILLIAMS", "F", "45", "2008-01-01", "NC")
	abbr := mk("DEBRA", "A.", "WILLIAMS", "F", "45", "2008-01-01", "NC")
	missing := mk("DEBRA", "", "WILLIAMS", "F", "45", "2008-01-01", "")
	if got := PairScore(full, abbr); got != 1 {
		t.Errorf("abbreviation pair = %v, want 1", got)
	}
	if got := PairScore(full, missing); got != 1 {
		t.Errorf("missing-values pair = %v, want 1", got)
	}
}

func TestUpdateAndClusterPlausibility(t *testing.T) {
	d := core.NewDataset(core.RemoveTrimmed)
	s := voter.Snapshot{Date: "2008-01-01"}
	sound1 := r1.Clone()
	sound1.SetName("ncid", "OK1")
	sound2 := r2.Clone()
	sound2.SetName("ncid", "OK1")
	bad1 := r4.Clone()
	bad1.SetName("ncid", "BAD1")
	bad2 := r5.Clone()
	bad2.SetName("ncid", "BAD1")
	s.Records = []voter.Record{sound1, sound2, bad1, bad2}
	d.ImportSnapshot(s)
	Update(d)
	d.Publish()

	scores := ClusterPlausibility(d)
	if len(scores) != 2 {
		t.Fatalf("cluster scores = %v", scores)
	}
	if scores[0] < 0.9 {
		t.Errorf("sound cluster plausibility = %v", scores[0])
	}
	if scores[1] > 0.5 {
		t.Errorf("unsound cluster plausibility = %v", scores[1])
	}
}

func BenchmarkPairScore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PairScore(r1, r3)
	}
}
