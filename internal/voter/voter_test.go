package voter

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaShape(t *testing.T) {
	if NumAttributes != 90 {
		t.Fatalf("NumAttributes = %d, want 90", NumAttributes)
	}
	counts := map[Group]int{}
	for _, a := range Attributes {
		counts[a.Group]++
	}
	if counts[GroupPerson] != 38 {
		t.Errorf("person attributes = %d, want 38", counts[GroupPerson])
	}
	if counts[GroupDistrict] != 38 {
		t.Errorf("district attributes = %d, want 38", counts[GroupDistrict])
	}
	if counts[GroupElection] != 6 {
		t.Errorf("election attributes = %d, want 6", counts[GroupElection])
	}
	if counts[GroupMeta] != 8 {
		t.Errorf("meta attributes = %d, want 8", counts[GroupMeta])
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for i, a := range Attributes {
		got, ok := Index(a.Name)
		if !ok || got != i {
			t.Errorf("Index(%q) = %d, %v; want %d, true", a.Name, got, ok, i)
		}
	}
	if _, ok := Index("no_such_attr"); ok {
		t.Error("Index(no_such_attr) found")
	}
}

func TestGroupIndicesPartition(t *testing.T) {
	seen := map[int]bool{}
	for _, g := range []Group{GroupPerson, GroupDistrict, GroupElection, GroupMeta} {
		for _, i := range GroupIndices(g) {
			if seen[i] {
				t.Fatalf("column %d in two groups", i)
			}
			seen[i] = true
			if Attributes[i].Group != g {
				t.Fatalf("column %d group mismatch", i)
			}
		}
	}
	if len(seen) != NumAttributes {
		t.Fatalf("groups cover %d columns, want %d", len(seen), NumAttributes)
	}
}

func testRecord() Record {
	r := NewRecord()
	r.SetName("ncid", "AB123456")
	r.SetName("snapshot_dt", "2020-01-01")
	r.SetName("last_name", " WILLIAMS ")
	r.SetName("first_name", "DEBRA")
	r.SetName("midl_name", "OEHRLE")
	r.SetName("sex_code", "F")
	r.SetName("age", "45")
	r.SetName("birth_place", "NC")
	return r
}

func TestRecordAccessors(t *testing.T) {
	r := testRecord()
	if r.NCID() != "AB123456" {
		t.Errorf("NCID = %q", r.NCID())
	}
	if r.Age() != 45 {
		t.Errorf("Age = %d, want 45", r.Age())
	}
	if r.YearOfBirth() != 1975 {
		t.Errorf("YearOfBirth = %d, want 1975", r.YearOfBirth())
	}
	r.SetName("age", "")
	if r.Age() != -1 {
		t.Errorf("missing Age = %d, want -1", r.Age())
	}
	if r.YearOfBirth() != 0 {
		t.Errorf("YearOfBirth without age = %d, want 0", r.YearOfBirth())
	}
}

func TestTrimmed(t *testing.T) {
	r := testRecord()
	tr := r.Trimmed()
	if tr.GetName("last_name") != "WILLIAMS" {
		t.Errorf("trimmed last_name = %q", tr.GetName("last_name"))
	}
	// Original unchanged.
	if r.GetName("last_name") != " WILLIAMS " {
		t.Error("Trimmed mutated the original record")
	}
}

func TestIsMissing(t *testing.T) {
	missing := []string{"", "  ", "-", "N/A", "na", "null", "UNKNOWN", "unk"}
	for _, v := range missing {
		if !IsMissing(v) {
			t.Errorf("IsMissing(%q) = false", v)
		}
	}
	present := []string{"X", "0", "SMITH", "U"}
	for _, v := range present {
		if IsMissing(v) {
			t.Errorf("IsMissing(%q) = true", v)
		}
	}
}

func TestHashModesDistinguishRecords(t *testing.T) {
	a := testRecord()
	b := a.Clone()

	// Identical records hash equal under every mode.
	for _, m := range []HashMode{HashExact, HashTrimmed, HashPersonData} {
		if HashRecord(a, m) != HashRecord(b, m) {
			t.Errorf("identical records differ under mode %d", m)
		}
	}

	// Whitespace difference: detected only by HashExact.
	b.SetName("last_name", "WILLIAMS")
	if HashRecord(a, HashExact) == HashRecord(b, HashExact) {
		t.Error("HashExact should see whitespace differences")
	}
	if HashRecord(a, HashTrimmed) != HashRecord(b, HashTrimmed) {
		t.Error("HashTrimmed should ignore whitespace differences")
	}

	// Age and date differences: invisible to every mode (§4).
	c := a.Clone()
	c.SetName("age", "46")
	c.SetName("snapshot_dt", "2021-01-01")
	for _, m := range []HashMode{HashExact, HashTrimmed, HashPersonData} {
		if HashRecord(a, m) != HashRecord(c, m) {
			t.Errorf("mode %d should ignore age and snapshot date", m)
		}
	}

	// District difference: invisible to person mode only.
	d := a.Clone()
	d.SetName("cong_dist_desc", "1ST CONGRESSIONAL")
	if HashRecord(a, HashPersonData) != HashRecord(d, HashPersonData) {
		t.Error("HashPersonData should ignore district attributes")
	}
	if HashRecord(a, HashTrimmed) == HashRecord(d, HashTrimmed) {
		t.Error("HashTrimmed should see district differences")
	}

	// Person difference: visible to all modes.
	e := a.Clone()
	e.SetName("first_name", "DEBORAH")
	for _, m := range []HashMode{HashExact, HashTrimmed, HashPersonData} {
		if HashRecord(a, m) == HashRecord(e, m) {
			t.Errorf("mode %d should see first-name difference", m)
		}
	}
}

func TestHashColumns(t *testing.T) {
	exact := HashColumns(HashExact)
	if len(exact) != NumAttributes-7 {
		t.Errorf("HashExact columns = %d, want %d", len(exact), NumAttributes-7)
	}
	trimmed := HashColumns(HashTrimmed)
	if len(trimmed) != NumAttributes-7 {
		t.Errorf("HashTrimmed columns = %d, want %d", len(trimmed), NumAttributes-7)
	}
	person := HashColumns(HashPersonData)
	// Person group minus age and age_group.
	if len(person) != 36 {
		t.Errorf("HashPersonData columns = %d, want 36", len(person))
	}
	for _, i := range person {
		if Attributes[i].Group != GroupPerson {
			t.Errorf("person hash includes non-person column %s", Attributes[i].Name)
		}
	}
}

func TestHashSeparatorPreventsBoundaryCollisions(t *testing.T) {
	a := NewRecord()
	b := NewRecord()
	a.SetName("last_name", "AB")
	a.SetName("first_name", "C")
	b.SetName("last_name", "A")
	b.SetName("first_name", "BC")
	if HashRecord(a, HashPersonData) == HashRecord(b, HashPersonData) {
		t.Error("value concatenation collides across column boundary")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	snap := Snapshot{Date: "2020-01-01"}
	for i := 0; i < 5; i++ {
		r := testRecord()
		r.SetName("voter_reg_num", string(rune('A'+i)))
		snap.Records = append(snap.Records, r)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != "2020-01-01" {
		t.Errorf("round-trip date = %q", got.Date)
	}
	if len(got.Records) != 5 {
		t.Fatalf("round-trip records = %d, want 5", len(got.Records))
	}
	for i := range got.Records {
		for j := range got.Records[i].Values {
			if got.Records[i].Values[j] != snap.Records[i].Values[j] {
				t.Fatalf("record %d column %d mismatch: %q vs %q",
					i, j, got.Records[i].Values[j], snap.Records[i].Values[j])
			}
		}
	}
}

func TestTSVRoundTripProperty(t *testing.T) {
	// Any tab/newline-free values survive a round trip, including leading
	// and trailing whitespace.
	f := func(vals [3]string) bool {
		r := NewRecord()
		ok := true
		clean := func(s string) string {
			return strings.Map(func(c rune) rune {
				if c == '\t' || c == '\n' || c == '\r' {
					return ' '
				}
				return c
			}, s)
		}
		r.SetName("last_name", clean(vals[0]))
		r.SetName("mail_addr1", clean(vals[1]))
		r.SetName("birth_place", clean(vals[2]))
		snap := Snapshot{Date: "", Records: []Record{r}}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, snap); err != nil {
			return false
		}
		got, err := ReadTSV(&buf)
		if err != nil || len(got.Records) != 1 {
			return false
		}
		for j := range r.Values {
			if got.Records[0].Values[j] != r.Values[j] {
				ok = false
			}
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWriteTSVRejectsTabs(t *testing.T) {
	r := NewRecord()
	r.SetName("last_name", "BAD\tVALUE")
	err := WriteTSV(&bytes.Buffer{}, Snapshot{Records: []Record{r}})
	if err == nil {
		t.Fatal("WriteTSV accepted a tab inside a value")
	}
}

func TestReadTSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("a\tb\tc\n")); err == nil {
		t.Fatal("ReadTSV accepted a short header")
	}
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Fatal("ReadTSV accepted empty input")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := Snapshot{Date: "2020-11-03", Records: []Record{testRecordWithDate("2020-11-03")}}
	path, err := WriteSnapshotFile(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "VR_Snapshot_20201103.tsv" {
		t.Errorf("file name = %s", filepath.Base(path))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != "2020-11-03" || len(got.Records) != 1 {
		t.Errorf("round trip: date=%q records=%d", got.Date, len(got.Records))
	}
	files, err := ListSnapshotFiles(dir)
	if err != nil || len(files) != 1 {
		t.Errorf("ListSnapshotFiles = %v, %v", files, err)
	}
}

func testRecordWithDate(date string) Record {
	r := testRecord()
	r.SetName("snapshot_dt", date)
	return r
}

func TestSnapshotYear(t *testing.T) {
	s := Snapshot{Date: "2015-03-01"}
	if s.Year() != 2015 {
		t.Errorf("Year = %d", s.Year())
	}
	if (Snapshot{Date: "bogus"}).Year() != 0 {
		t.Error("malformed date should yield year 0")
	}
}

func BenchmarkHashRecord(b *testing.B) {
	r := testRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashRecord(r, HashTrimmed)
	}
}

func TestRecordGetSetByIndex(t *testing.T) {
	r := NewRecord()
	r.Set(IdxLastName, "SMITH")
	if r.Get(IdxLastName) != "SMITH" {
		t.Errorf("Get/Set round trip failed")
	}
}

func TestRecordString(t *testing.T) {
	r := testRecord()
	s := r.String()
	for _, want := range []string{"AB123456", "WILLIAMS", "DEBRA", "OEHRLE"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q misses %q", s, want)
		}
	}
}

func TestGroupString(t *testing.T) {
	cases := map[Group]string{
		GroupPerson: "person", GroupDistrict: "district",
		GroupElection: "election", GroupMeta: "meta",
	}
	for g, want := range cases {
		if g.String() != want {
			t.Errorf("Group(%d).String() = %q, want %q", int(g), g.String(), want)
		}
	}
	if s := Group(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown group = %q", s)
	}
}

func TestMustIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex(unknown) did not panic")
		}
	}()
	MustIndex("no_such_attribute")
}

func TestNames(t *testing.T) {
	got := Names([]int{IdxFirstName, IdxLastName})
	if len(got) != 2 || got[0] != "first_name" || got[1] != "last_name" {
		t.Errorf("Names = %v", got)
	}
}

func TestYearOfBirthMalformedDate(t *testing.T) {
	r := testRecord()
	r.SetName("snapshot_dt", "not-a-date")
	if got := r.YearOfBirth(); got != 0 {
		t.Errorf("YearOfBirth with bad date = %d", got)
	}
}

func TestStreamTSVAbortsOnCallbackError(t *testing.T) {
	snap := Snapshot{Date: "2020-01-01", Records: []Record{testRecord(), testRecord()}}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err := StreamTSV(&buf, func(Record) error {
		n++
		return fmt.Errorf("stop")
	})
	if err == nil || n != 1 {
		t.Errorf("callback error not propagated: n=%d err=%v", n, err)
	}
}

func TestStreamTSVRejectsShortRow(t *testing.T) {
	header := make([]string, NumAttributes)
	for i, a := range Attributes {
		header[i] = a.Name
	}
	input := strings.Join(header, "\t") + "\nonly\tthree\tcolumns\n"
	if _, err := StreamTSV(strings.NewReader(input), func(Record) error { return nil }); err == nil {
		t.Error("short row accepted")
	}
}

func TestWriteSnapshotFileBadDirectory(t *testing.T) {
	if _, err := WriteSnapshotFile("/no/such/dir", Snapshot{Date: "2020-01-01"}); err == nil {
		t.Error("bad directory accepted")
	}
}

func TestReadSnapshotFileMissing(t *testing.T) {
	if _, err := ReadSnapshotFile("/no/such/file.tsv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteTSVRejectsWrongWidth(t *testing.T) {
	bad := Record{Values: []string{"too", "short"}}
	if err := WriteTSV(&bytes.Buffer{}, Snapshot{Records: []Record{bad}}); err == nil {
		t.Error("wrong-width record accepted")
	}
}
