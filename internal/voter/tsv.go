package voter

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scanio"
)

// The register is distributed as tab-separated files with a header row
// (§5: "The voter data is originally given as a set of TSV files").
// Values must not contain tabs or newlines; the synthesizer never produces
// them and the writer rejects them.

// WriteTSV writes the snapshot to w: a header row with the canonical
// attribute names followed by one row per record.
func WriteTSV(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	names := make([]string, NumAttributes)
	for i, a := range Attributes {
		names[i] = a.Name
	}
	if _, err := bw.WriteString(strings.Join(names, "\t") + "\n"); err != nil {
		return err
	}
	for ri, r := range s.Records {
		if len(r.Values) != NumAttributes {
			return fmt.Errorf("voter: record %d has %d values, want %d", ri, len(r.Values), NumAttributes)
		}
		for ci, v := range r.Values {
			if strings.ContainsAny(v, "\t\n\r") {
				return fmt.Errorf("voter: record %d column %s contains a tab or newline", ri, Attributes[ci].Name)
			}
			if ci > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TSV line limits, shared by the sequential scanner below and the chunked
// parallel reader in internal/core so both paths accept and reject exactly
// the same inputs. A 90-attribute row with export padding easily exceeds
// bufio's 64 KiB default token limit, so the scanner always gets an
// explicit buffer: ScanBufferBytes up front, growing to MaxLineBytes. The
// numbers themselves live in internal/scanio next to the docstore's
// JSON-lines limits so the two line-oriented readers cannot drift apart.
const (
	// ScanBufferBytes is the initial scanner buffer size.
	ScanBufferBytes = scanio.InitialBufferBytes
	// MaxLineBytes is the largest accepted TSV line; longer lines fail
	// with bufio.ErrTooLong on every read path.
	MaxLineBytes = scanio.MaxTSVLineBytes
)

// ParseHeader validates one header line against the canonical schema: it
// must list exactly the canonical attribute names in canonical order.
func ParseHeader(text string) error {
	header := strings.Split(text, "\t")
	if len(header) != NumAttributes {
		return fmt.Errorf("voter: header has %d columns, want %d", len(header), NumAttributes)
	}
	for i, name := range header {
		if name != Attributes[i].Name {
			return fmt.Errorf("voter: header column %d is %q, want %q", i, name, Attributes[i].Name)
		}
	}
	return nil
}

// DecodeRow splits one data row into a Record, validating the column count.
// line is the 1-based line number of the row within its file (the header is
// line 1) and only feeds the error message.
func DecodeRow(text string, line int) (Record, error) {
	vals := strings.Split(text, "\t")
	if len(vals) != NumAttributes {
		return Record{}, fmt.Errorf("voter: line %d has %d columns, want %d", line, len(vals), NumAttributes)
	}
	return Record{Values: vals}, nil
}

// StreamTSV parses a snapshot from r row by row, invoking fn for every
// record without materializing the file — the path for register files too
// large to hold in memory. The header row must list exactly the canonical
// attribute names in canonical order. fn returning an error aborts the
// stream. The returned count is the number of rows delivered.
func StreamTSV(r io.Reader, fn func(Record) error) (int, error) {
	sc := scanio.NewScanner(r, MaxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("voter: empty TSV input, missing header")
	}
	if err := ParseHeader(sc.Text()); err != nil {
		return 0, err
	}
	line := 1
	n := 0
	for sc.Scan() {
		line++
		rec, err := DecodeRow(sc.Text(), line)
		if err != nil {
			return n, err
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// ReadTSV parses a snapshot from r into memory. The snapshot date is taken
// from the snapshot_dt column of the first record (all records of one file
// share it) or left empty for an empty file.
func ReadTSV(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	if _, err := StreamTSV(r, func(rec Record) error {
		snap.Records = append(snap.Records, rec)
		return nil
	}); err != nil {
		return Snapshot{}, err
	}
	if len(snap.Records) > 0 {
		snap.Date = snap.Records[0].SnapshotDate()
	}
	return snap, nil
}

// SnapshotFileName returns the canonical file name for a snapshot date:
// VR_Snapshot_YYYYMMDD.tsv, mirroring the register's naming scheme.
func SnapshotFileName(date string) string {
	return "VR_Snapshot_" + strings.ReplaceAll(date, "-", "") + ".tsv"
}

// WriteSnapshotFile writes the snapshot to dir under its canonical name and
// returns the full path.
func WriteSnapshotFile(dir string, s Snapshot) (string, error) {
	path := filepath.Join(dir, SnapshotFileName(s.Date))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteTSV(f, s); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// ReadSnapshotFile reads one snapshot file.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return ReadTSV(f)
}

// ListSnapshotFiles returns the snapshot files in dir sorted by file name
// (which sorts by snapshot date given the canonical naming).
func ListSnapshotFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "VR_Snapshot_*.tsv"))
	if err != nil {
		return nil, err
	}
	return matches, nil
}
