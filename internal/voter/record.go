package voter

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Record is one row of a voter-register snapshot: one value per schema
// attribute, in canonical column order. Values may contain leading/trailing
// whitespace exactly as distributed; see Trimmed.
type Record struct {
	Values []string
}

// NewRecord returns an empty record with all 90 values blank.
func NewRecord() Record {
	return Record{Values: make([]string, NumAttributes)}
}

// Clone returns a deep copy of r.
func (r Record) Clone() Record {
	v := make([]string, len(r.Values))
	copy(v, r.Values)
	return Record{Values: v}
}

// Get returns the value at column index i.
func (r Record) Get(i int) string { return r.Values[i] }

// Set assigns the value at column index i.
func (r *Record) Set(i int, v string) { r.Values[i] = v }

// GetName returns the value of the named attribute; it panics on unknown
// names (schema names are fixed at compile time).
func (r Record) GetName(name string) string { return r.Values[MustIndex(name)] }

// SetName assigns the value of the named attribute.
func (r *Record) SetName(name, v string) { r.Values[MustIndex(name)] = v }

// NCID returns the record's gold-standard object id.
func (r Record) NCID() string { return strings.TrimSpace(r.Values[IdxNCID]) }

// SnapshotDate returns the snapshot date value (YYYY-MM-DD).
func (r Record) SnapshotDate() string { return strings.TrimSpace(r.Values[IdxSnapshotDate]) }

// Age returns the age value as an int, or -1 if it is missing or not a
// number.
func (r Record) Age() int {
	a, err := strconv.Atoi(strings.TrimSpace(r.Values[IdxAge]))
	if err != nil {
		return -1
	}
	return a
}

// YearOfBirth derives the year of birth as snapshot year minus age (§6.2).
// It returns 0 if either component is missing or malformed. The paper keeps
// this value internal (privacy) and so do we: it is computed, never stored.
func (r Record) YearOfBirth() int {
	age := r.Age()
	if age < 0 {
		return 0
	}
	t, err := time.Parse("2006-01-02", r.SnapshotDate())
	if err != nil {
		return 0
	}
	return t.Year() - age
}

// Trimmed returns a copy of r with leading and trailing whitespace removed
// from every value — the preparation step of the paper's "trimming" removal
// mode (§3.1.3).
func (r Record) Trimmed() Record {
	out := NewRecord()
	for i, v := range r.Values {
		out.Values[i] = strings.TrimSpace(v)
	}
	return out
}

// IsMissing reports whether a single attribute value denotes missing
// information: empty, whitespace-only, or one of the conventional
// missing markers.
func IsMissing(v string) bool {
	switch strings.ToUpper(strings.TrimSpace(v)) {
	case "", "-", "N/A", "NA", "NULL", "UNKNOWN", "UNK":
		return true
	}
	return false
}

// String renders a compact human-readable form (name values + NCID) for
// diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("%s: %s, %s %s", r.NCID(),
		strings.TrimSpace(r.Values[IdxLastName]),
		strings.TrimSpace(r.Values[IdxFirstName]),
		strings.TrimSpace(r.Values[IdxMiddleName]))
}

// Snapshot is one published register file: a snapshot date plus its rows.
type Snapshot struct {
	Date    string // YYYY-MM-DD
	Records []Record
}

// Year returns the snapshot's calendar year, or 0 for malformed dates.
func (s Snapshot) Year() int {
	t, err := time.Parse("2006-01-02", s.Date)
	if err != nil {
		return 0
	}
	return t.Year()
}
