package voter

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the TSV codec — the first parser any external
// bytes hit. The invariants: no panic on any input, acceptance is exactly
// "90 tab-separated columns" (header additionally in canonical order), and
// decoding is lossless (the accepted row re-joins to the input text).
// testdata/fuzz seeds the corpus with real-shaped NC rows including the
// long-line and padding edge cases of tsv_long_test.go.

// canonicalHeader renders the one header ParseHeader accepts.
func canonicalHeader() string {
	names := make([]string, NumAttributes)
	for i, a := range Attributes {
		names[i] = a.Name
	}
	return strings.Join(names, "\t")
}

// sampleRow renders a plausible NC row: 90 columns, a few populated.
func sampleRow(pad bool) string {
	r := NewRecord()
	r.SetName("ncid", "AA123456")
	r.SetName("snapshot_dt", "2012-11-06")
	r.SetName("last_name", "MCDOWELL")
	r.SetName("first_name", "ANN-MARIE")
	r.SetName("midl_name", "O'NEAL")
	r.SetName("age", "47")
	r.SetName("street_name", `CHE"STNUT`)
	if pad {
		for i := range r.Values {
			r.Values[i] = " " + r.Values[i] + " "
		}
	}
	return strings.Join(r.Values, "\t")
}

func FuzzParseHeader(f *testing.F) {
	f.Add(canonicalHeader())
	f.Add(strings.ToUpper(canonicalHeader()))
	f.Add("a\tb\tc")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		err := ParseHeader(text)
		if (text == canonicalHeader()) != (err == nil) {
			t.Fatalf("ParseHeader(%q) = %v; acceptance must equal canonical-header equality", text, err)
		}
	})
}

func FuzzDecodeRow(f *testing.F) {
	f.Add(sampleRow(false), 2)
	f.Add(sampleRow(true), 3)
	f.Add(strings.Repeat("\t", NumAttributes-1), 2) // all-empty row
	f.Add("short\trow", 9)
	f.Add("", 0)
	f.Fuzz(func(t *testing.T, text string, line int) {
		rec, err := DecodeRow(text, line)
		cols := strings.Count(text, "\t") + 1
		if (cols == NumAttributes) != (err == nil) {
			t.Fatalf("DecodeRow accepted %d columns: err=%v", cols, err)
		}
		if err != nil {
			return
		}
		if len(rec.Values) != NumAttributes {
			t.Fatalf("accepted record has %d values", len(rec.Values))
		}
		// Lossless: the decoded values re-join to the exact input text.
		if rejoined := strings.Join(rec.Values, "\t"); rejoined != text {
			t.Fatalf("decode is lossy:\n in  %q\n out %q", text, rejoined)
		}
	})
}

// FuzzStreamTSV drives the full streaming reader: arbitrary bytes must
// never panic, delivered rows must each hold 90 values, and the row count
// must match the number of delivered callbacks.
func FuzzStreamTSV(f *testing.F) {
	f.Add([]byte(canonicalHeader() + "\n" + sampleRow(false) + "\n"))
	f.Add([]byte(canonicalHeader() + "\r\n" + sampleRow(true) + "\r\n")) // CRLF export
	f.Add([]byte(canonicalHeader()))                                     // header only, no newline
	f.Add([]byte("not\ta\theader\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		delivered := 0
		n, err := StreamTSV(bytes.NewReader(data), func(r Record) error {
			if len(r.Values) != NumAttributes {
				t.Fatalf("delivered record has %d values", len(r.Values))
			}
			delivered++
			return nil
		})
		if n != delivered {
			t.Fatalf("StreamTSV reported %d rows, delivered %d", n, delivered)
		}
		if err == nil && delivered == 0 && len(data) == 0 {
			t.Fatal("empty input accepted without a header error")
		}
	})
}
