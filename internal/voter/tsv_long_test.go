package voter

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// longLineSnapshot renders a snapshot whose middle record carries one value
// of the given size — a row far beyond bufio's 64 KiB default token limit
// once the other 89 columns are added.
func longLineSnapshot(t *testing.T, size int) []byte {
	t.Helper()
	snap := Snapshot{Date: "2012-11-06"}
	for i := 0; i < 3; i++ {
		r := NewRecord()
		r.SetName("ncid", "ZZ00000"+string(rune('1'+i)))
		r.SetName("snapshot_dt", "2012-11-06")
		if i == 1 {
			r.SetName("street_name", strings.Repeat("A", size))
		}
		snap.Records = append(snap.Records, r)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamTSVLongLine is the regression test for the scanner buffer: a
// 1 MiB row must stream (the default bufio.Scanner token limit is 64 KiB
// and would fail mid-snapshot), and a row beyond MaxLineBytes must fail
// loudly with bufio.ErrTooLong instead of silently truncating.
func TestStreamTSVLongLine(t *testing.T) {
	data := longLineSnapshot(t, 1<<20)
	n, err := StreamTSV(bytes.NewReader(data), func(r Record) error { return nil })
	if err != nil {
		t.Fatalf("1 MiB line: %v", err)
	}
	if n != 3 {
		t.Fatalf("streamed %d rows, want 3", n)
	}

	over := longLineSnapshot(t, MaxLineBytes+1)
	n, err = StreamTSV(bytes.NewReader(over), func(r Record) error { return nil })
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("over-limit line: got %v, want bufio.ErrTooLong", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d rows before the over-limit line, want 1", n)
	}
}

func TestParseHeaderAndDecodeRow(t *testing.T) {
	names := make([]string, NumAttributes)
	for i, a := range Attributes {
		names[i] = a.Name
	}
	if err := ParseHeader(strings.Join(names, "\t")); err != nil {
		t.Fatalf("canonical header rejected: %v", err)
	}
	if err := ParseHeader("a\tb"); err == nil {
		t.Fatal("short header accepted")
	}
	names[0] = "not_ncid"
	if err := ParseHeader(strings.Join(names, "\t")); err == nil {
		t.Fatal("renamed column accepted")
	}

	if _, err := DecodeRow("x\ty", 7); err == nil || !strings.Contains(err.Error(), "line 7") {
		t.Fatalf("DecodeRow error should name the line: %v", err)
	}
	row := strings.TrimRight(strings.Repeat("v\t", NumAttributes), "\t")
	rec, err := DecodeRow(row, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Values) != NumAttributes {
		t.Fatalf("decoded %d values, want %d", len(rec.Values), NumAttributes)
	}
}
