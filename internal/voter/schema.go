// Package voter defines the North Carolina voter-register schema used by the
// test-data generator: a 90-attribute record layout split into the four
// groups of the paper (person, district, election, meta), snapshot
// containers, a TSV codec matching the register's distribution format,
// value trimming, and the MD5 record hashing that drives (near-)exact
// duplicate removal (§4 of the paper).
package voter

import "fmt"

// Attribute group tags. Every attribute belongs to exactly one group; the
// paper stores each group in its own sub-document (§5).
type Group int

const (
	GroupPerson Group = iota
	GroupDistrict
	GroupElection
	GroupMeta
)

// String returns the lower-case group name used in documents.
func (g Group) String() string {
	switch g {
	case GroupPerson:
		return "person"
	case GroupDistrict:
		return "district"
	case GroupElection:
		return "election"
	case GroupMeta:
		return "meta"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Attribute describes one column of the register.
type Attribute struct {
	Name  string
	Group Group
}

// The person group: the 38 attributes the paper's NC1-NC3 datasets restrict
// themselves to ("most potential users are only interested in the personal
// data", §4).
var personAttrs = []string{
	"last_name", "first_name", "midl_name", "name_prefx_cd", "name_sufx_cd",
	"age", "sex_code", "sex", "race_code", "race_desc",
	"ethnic_code", "ethnic_desc", "birth_place", "phone_num", "house_num",
	"half_code", "street_dir", "street_name", "street_type_cd", "street_sufx_cd",
	"unit_designator", "unit_num", "res_city_desc", "state_cd", "zip_code",
	"mail_addr1", "mail_addr2", "mail_addr3", "mail_addr4", "mail_city",
	"mail_state", "mail_zipcode", "area_cd", "drivers_lic", "age_group",
	"party_cd", "party_desc", "county_desc",
}

// The district group: 38 attributes, sparsely populated ("millions of
// records have missing values in at least 38 attributes", §5).
var districtAttrs = []string{
	"precinct_abbrv", "precinct_desc", "municipality_abbrv", "municipality_desc",
	"ward_abbrv", "ward_desc", "cong_dist_abbrv", "cong_dist_desc",
	"super_court_abbrv", "super_court_desc", "judic_dist_abbrv", "judic_dist_desc",
	"nc_senate_abbrv", "nc_senate_desc", "nc_house_abbrv", "nc_house_desc",
	"county_commiss_abbrv", "county_commiss_desc", "township_abbrv", "township_desc",
	"school_dist_abbrv", "school_dist_desc", "fire_dist_abbrv", "fire_dist_desc",
	"water_dist_abbrv", "water_dist_desc", "sewer_dist_abbrv", "sewer_dist_desc",
	"sanit_dist_abbrv", "sanit_dist_desc", "rescue_dist_abbrv", "rescue_dist_desc",
	"munic_dist_abbrv", "munic_dist_desc", "dist_1_abbrv", "dist_1_desc",
	"dist_2_abbrv", "dist_2_desc",
}

// The election group.
var electionAttrs = []string{
	"election_dt_1", "voted_party_cd_1", "election_dt_2", "voted_party_cd_2",
	"vtd_abbrv", "vtd_desc",
}

// The meta group. ncid is the gold-standard object id; the four date
// attributes and the registration number are excluded from record hashing
// (§4: "these attributes are the different dates ... and the age").
var metaAttrs = []string{
	"ncid", "snapshot_dt", "load_dt", "registr_dt", "cancellation_dt",
	"voter_reg_num", "voter_status_desc", "voter_status_reason_desc",
}

// Attributes lists all 90 attributes in canonical column order:
// meta, person, district, election.
var Attributes = buildAttributes()

// NumAttributes is the total column count (90, matching the register).
var NumAttributes = len(Attributes)

// attrIndex maps attribute name to its column index.
var attrIndex = buildIndex()

func buildAttributes() []Attribute {
	var attrs []Attribute
	for _, n := range metaAttrs {
		attrs = append(attrs, Attribute{n, GroupMeta})
	}
	for _, n := range personAttrs {
		attrs = append(attrs, Attribute{n, GroupPerson})
	}
	for _, n := range districtAttrs {
		attrs = append(attrs, Attribute{n, GroupDistrict})
	}
	for _, n := range electionAttrs {
		attrs = append(attrs, Attribute{n, GroupElection})
	}
	if len(attrs) != 90 {
		panic(fmt.Sprintf("voter: schema has %d attributes, want 90", len(attrs)))
	}
	return attrs
}

func buildIndex() map[string]int {
	m := make(map[string]int, len(Attributes))
	for i, a := range Attributes {
		if _, dup := m[a.Name]; dup {
			panic("voter: duplicate attribute name " + a.Name)
		}
		m[a.Name] = i
	}
	return m
}

// Index returns the column index of the named attribute and whether it
// exists.
func Index(name string) (int, bool) {
	i, ok := attrIndex[name]
	return i, ok
}

// MustIndex returns the column index of the named attribute, panicking for
// unknown names. Use it for attribute names fixed at compile time.
func MustIndex(name string) int {
	i, ok := attrIndex[name]
	if !ok {
		panic("voter: unknown attribute " + name)
	}
	return i
}

// GroupIndices returns the column indices of all attributes in group g, in
// canonical order.
func GroupIndices(g Group) []int {
	var idx []int
	for i, a := range Attributes {
		if a.Group == g {
			idx = append(idx, i)
		}
	}
	return idx
}

// Names returns the attribute names at the given column indices.
func Names(indices []int) []string {
	out := make([]string, len(indices))
	for i, ix := range indices {
		out[i] = Attributes[ix].Name
	}
	return out
}

// Frequently used column indices, resolved once at init.
var (
	IdxNCID           = MustIndex("ncid")
	IdxSnapshotDate   = MustIndex("snapshot_dt")
	IdxLoadDate       = MustIndex("load_dt")
	IdxRegistrDate    = MustIndex("registr_dt")
	IdxCancellationDt = MustIndex("cancellation_dt")
	IdxVoterRegNum    = MustIndex("voter_reg_num")
	IdxVoterStatus    = MustIndex("voter_status_desc")
	IdxLastName       = MustIndex("last_name")
	IdxFirstName      = MustIndex("first_name")
	IdxMiddleName     = MustIndex("midl_name")
	IdxNameSuffix     = MustIndex("name_sufx_cd")
	IdxAge            = MustIndex("age")
	IdxSexCode        = MustIndex("sex_code")
	IdxSex            = MustIndex("sex")
	IdxBirthPlace     = MustIndex("birth_place")
	IdxRaceDesc       = MustIndex("race_desc")
	IdxPhone          = MustIndex("phone_num")
	IdxStreetName     = MustIndex("street_name")
	IdxResCity        = MustIndex("res_city_desc")
	IdxZip            = MustIndex("zip_code")
	IdxMailAddr1      = MustIndex("mail_addr1")
	IdxNCHouseDesc    = MustIndex("nc_house_desc")
	IdxCongDistDesc   = MustIndex("cong_dist_desc")
	IdxAgeGroup       = MustIndex("age_group")
)
