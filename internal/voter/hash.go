package voter

import (
	"crypto/md5"
	"strings"
)

// Hash is the 128-bit MD5 digest of a record's relevant attribute values.
// The paper uses MD5 because a rare collision merely loses one duplicate
// record and "does not have severe consequences" (§4, footnote 6).
type Hash [md5.Size]byte

// HashMode selects which attributes participate in the record hash and thus
// which records count as (near-)exact duplicates (§4's four generation
// runs). In every mode the volatile meta and time-related attributes — the
// four dates (snapshot, load, registration, cancellation) and the age — are
// excluded from the concatenation, exactly as in the paper; the derived
// age_group and the bookkeeping voter_reg_num are excluded for the same
// reason.
type HashMode int

const (
	// HashExact hashes all relevant attributes verbatim (no trimming) —
	// the paper's "exact" removal run.
	HashExact HashMode = iota
	// HashTrimmed hashes all relevant attributes after removing leading
	// and trailing whitespace — the paper's "trimming" run.
	HashTrimmed
	// HashPersonData hashes only the person-group attributes, trimmed —
	// the paper's "person data" run.
	HashPersonData
)

// hashExcluded reports whether column i is excluded from hashing in every
// mode (§3.1.3 "Meta Data Attributes" and "Time-related Attributes").
func hashExcluded(i int) bool {
	switch i {
	case IdxSnapshotDate, IdxLoadDate, IdxRegistrDate, IdxCancellationDt,
		IdxAge, IdxAgeGroup, IdxVoterRegNum:
		return true
	}
	return false
}

// HashColumns returns the column indices included in the given mode's hash,
// in canonical order.
func HashColumns(mode HashMode) []int {
	var cols []int
	for i, a := range Attributes {
		if hashExcluded(i) {
			continue
		}
		if mode == HashPersonData && a.Group != GroupPerson {
			continue
		}
		cols = append(cols, i)
	}
	return cols
}

// unit separator: cannot occur in TSV values, so concatenation is
// collision-free across column boundaries.
const hashSep = "\x1f"

// HashRecord returns the record's MD5 hash under the given mode. In the
// trimmed and person-data modes the values are trimmed before hashing.
func HashRecord(r Record, mode HashMode) Hash {
	h := md5.New()
	trim := mode != HashExact
	for _, i := range HashColumns(mode) {
		v := r.Values[i]
		if trim {
			v = strings.TrimSpace(v)
		}
		h.Write([]byte(v))
		h.Write([]byte(hashSep))
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}
