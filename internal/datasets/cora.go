package datasets

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/corrupt"
	"repro/internal/dedup"
)

// coraAttrs is the 17-attribute bibliographic schema of the Cora citation
// benchmark.
var coraAttrs = []string{
	"authors", "title", "venue", "address", "publisher", "editor", "year",
	"volume", "pages", "month", "note", "institution", "journal",
	"booktitle", "tech", "type", "date",
}

// coraClusterSizes approximates Cora's published duplicate distribution:
// 182 clusters, 1879 records, up to 238 records per cluster, average 10.32
// (Table 3 of the paper). The head is dominated by a handful of heavily
// re-cited papers.
func coraClusterSizes() []int {
	head := []int{238, 155, 120, 92, 80, 70, 61, 52, 45, 40, 36, 32, 28, 25, 22, 20, 18, 17, 16, 15}
	var sizes []int
	sizes = append(sizes, head...)
	sizes = append(sizes, repeat(12, 10)...)
	sizes = append(sizes, repeat(8, 15)...)
	sizes = append(sizes, repeat(5, 25)...)
	sizes = append(sizes, repeat(3, 30)...)
	sizes = append(sizes, repeat(2, 18)...)
	sizes = append(sizes, repeat(1, 64)...)
	return sizes
}

// Cora generates the synthetic Cora stand-in. Citations of the same paper
// differ in venue abbreviations, dropped fields, page/volume noise and
// author-list formatting — the error profile Table 4 reports (many missing
// values, prefixes and formatting differences; moderate typos).
func Cora(seed int64) *dedup.Dataset {
	rng := corrupt.NewRand(seed, 20)
	g := generator{
		name:  "Cora",
		attrs: coraAttrs,
		original: func(rng *rand.Rand) []string {
			authors := coraAuthors(rng)
			title := words(rng, titleWords, 3+rng.Intn(4))
			venue := pick(rng, venueWords)
			year := strconv.Itoa(1985 + rng.Intn(14))
			rec := make([]string, len(coraAttrs))
			rec[0] = authors
			rec[1] = title
			rec[2] = venue
			rec[3] = pick(rng, cityPool)
			rec[4] = pick(rng, publisherPool)
			rec[5] = ""
			rec[6] = year
			rec[7] = strconv.Itoa(1 + rng.Intn(30))
			rec[8] = coraPages(rng)
			rec[9] = pick(rng, []string{"january", "march", "june", "august", "october", ""})
			rec[10] = ""
			rec[11] = ""
			rec[12] = ""
			rec[13] = venue
			rec[14] = ""
			rec[15] = pick(rng, []string{"article", "inproceedings", "techreport"})
			rec[16] = year
			return rec
		},
		duplicate: func(rng *rand.Rand, rec []string) {
			// Field dropping dominates: real Cora duplicates cite the same
			// paper with wildly varying completeness.
			for _, i := range []int{3, 4, 7, 8, 9, 13, 15, 16} {
				if rng.Float64() < 0.18 {
					rec[i] = ""
				}
			}
			maybe(rng, 0.25, &rec[2], truncateVenue)
			maybe(rng, 0.15, &rec[1], corrupt.Typo)
			maybe(rng, 0.08, &rec[1], corrupt.TruncateTail)
			maybe(rng, 0.15, &rec[0], reformatAuthors)
			maybe(rng, 0.08, &rec[0], corrupt.DropToken)
			maybe(rng, 0.08, &rec[0], corrupt.Typo)
			maybe(rng, 0.15, &rec[8], corrupt.Typo)
			maybe(rng, 0.08, &rec[6], corrupt.Typo)
			maybe(rng, 0.15, &rec[1], corrupt.FormatNoise)
		},
	}
	return g.build(rng, coraClusterSizes())
}

// coraAuthors renders an author list like "j. smith and r. k. jones".
func coraAuthors(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		initial := strings.ToLower(pick(rng, givenPool)[:1])
		last := strings.ToLower(pick(rng, surnamePool))
		parts[i] = fmt.Sprintf("%s. %s", initial, last)
	}
	return strings.Join(parts, " and ")
}

// coraPages renders a page range like "123--145".
func coraPages(rng *rand.Rand) string {
	lo := 1 + rng.Intn(500)
	return fmt.Sprintf("%d--%d", lo, lo+3+rng.Intn(40))
}

// truncateVenue abbreviates a long venue string to its first tokens — the
// classic citation-style difference.
func truncateVenue(rng *rand.Rand, v string) string {
	tokens := strings.Fields(v)
	if len(tokens) <= 2 {
		return v
	}
	keep := 1 + rng.Intn(2)
	return strings.Join(tokens[:keep], " ")
}

// reformatAuthors flips "j. smith and r. jones" into "smith, j. and jones, r.".
func reformatAuthors(rng *rand.Rand, v string) string {
	authors := strings.Split(v, " and ")
	for i, a := range authors {
		fields := strings.Fields(a)
		if len(fields) == 2 {
			authors[i] = fields[1] + ", " + fields[0]
		}
	}
	return strings.Join(authors, " and ")
}
