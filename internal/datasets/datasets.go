// Package datasets re-creates the three manually labeled comparator
// datasets of the paper's evaluation (§6.1, Table 3) — Cora, Census and
// CDDB — as synthetic equivalents matching their published characteristics:
// record and attribute counts, duplicate-pair counts, cluster-size
// distributions and error profiles (Table 4). The experiments only consume
// these statistical properties, not the original strings, so the synthetic
// stand-ins preserve the comparisons (see DESIGN.md §2).
package datasets

import (
	"math/rand"

	"repro/internal/corrupt"
	"repro/internal/dedup"
)

// generator drives the shared cluster-then-corrupt construction.
type generator struct {
	name      string
	attrs     []string
	nameAttrs []int
	original  func(rng *rand.Rand) []string
	duplicate func(rng *rand.Rand, rec []string)
}

// build creates one dataset: for every cluster size in sizes, one original
// record and size-1 corrupted copies.
func (g generator) build(rng *rand.Rand, sizes []int) *dedup.Dataset {
	ds := &dedup.Dataset{Name: g.name, Attrs: g.attrs, NameAttrs: g.nameAttrs}
	for c, size := range sizes {
		orig := g.original(rng)
		ds.Records = append(ds.Records, orig)
		ds.ClusterOf = append(ds.ClusterOf, c)
		for d := 1; d < size; d++ {
			rec := append([]string(nil), orig...)
			g.duplicate(rng, rec)
			ds.Records = append(ds.Records, rec)
			ds.ClusterOf = append(ds.ClusterOf, c)
		}
	}
	return ds
}

// repeat returns n copies of size.
func repeat(size, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = size
	}
	return out
}

// word pools shared by the comparator generators.
var (
	surnamePool = []string{
		"SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
		"DAVIS", "RODRIGUEZ", "MARTINEZ", "WILSON", "ANDERSON", "TAYLOR",
		"THOMAS", "MOORE", "JACKSON", "MARTIN", "LEE", "PEREZ", "THOMPSON",
		"HARRIS", "SANCHEZ", "CLARK", "RAMIREZ", "LEWIS", "ROBINSON",
		"WALKER", "YOUNG", "ALLEN", "KING", "WRIGHT", "SCOTT", "TORRES",
		"NGUYEN", "HILL", "FLORES", "GREEN", "ADAMS", "NELSON", "BAKER",
	}
	givenPool = []string{
		"JAMES", "MARY", "ROBERT", "PATRICIA", "JOHN", "JENNIFER", "MICHAEL",
		"LINDA", "DAVID", "ELIZABETH", "WILLIAM", "BARBARA", "RICHARD",
		"SUSAN", "JOSEPH", "JESSICA", "THOMAS", "SARAH", "CHARLES", "KAREN",
		"CHRISTOPHER", "LISA", "DANIEL", "NANCY", "MATTHEW", "BETTY",
		"ANTHONY", "MARGARET", "MARK", "SANDRA", "DONALD", "ASHLEY",
	}
	streetPool = []string{
		"MAIN ST", "OAK AVE", "PARK RD", "CEDAR LN", "MAPLE DR", "ELM ST",
		"WASHINGTON AVE", "LAKE DR", "HILL RD", "CHURCH ST", "MILL RD",
		"WALNUT ST", "SPRING ST", "RIDGE RD", "FOREST AVE",
	}
	cityPool = []string{
		"SPRINGFIELD", "FRANKLIN", "GREENVILLE", "BRISTOL", "CLINTON",
		"FAIRVIEW", "SALEM", "MADISON", "GEORGETOWN", "ARLINGTON",
	}
	titleWords = []string{
		"learning", "probabilistic", "networks", "reasoning", "inference",
		"models", "bayesian", "analysis", "systems", "knowledge", "data",
		"classification", "induction", "theory", "algorithms", "neural",
		"decision", "trees", "logic", "planning", "search", "markov",
		"reinforcement", "statistical", "adaptive", "genetic", "optimal",
		"stochastic", "hidden", "temporal", "causal", "relational",
	}
	venueWords = []string{
		"proceedings of the national conference on artificial intelligence",
		"machine learning", "artificial intelligence",
		"journal of artificial intelligence research",
		"proceedings of the international conference on machine learning",
		"advances in neural information processing systems",
		"uncertainty in artificial intelligence", "aaai", "ijcai", "icml",
	}
	publisherPool = []string{
		"morgan kaufmann", "mit press", "springer verlag", "academic press",
		"aaai press", "kluwer", "elsevier", "wiley",
	}
	artistPool = []string{
		"THE ROLLING STONES", "MILES DAVIS", "JOHNNY CASH", "ARETHA FRANKLIN",
		"BOB DYLAN", "NINA SIMONE", "THE BEATLES", "ELLA FITZGERALD",
		"DAVID BOWIE", "JONI MITCHELL", "STEVIE WONDER", "LED ZEPPELIN",
		"PRINCE", "MADONNA", "RADIOHEAD", "NIRVANA", "JOHN COLTRANE",
		"BILLIE HOLIDAY", "RAY CHARLES", "CHUCK BERRY",
	}
	albumWords = []string{
		"LIVE", "GREATEST", "HITS", "BLUE", "NIGHT", "LOVE", "SOUL", "GOLD",
		"DREAMS", "FIRE", "MOON", "RIVER", "HEART", "ROAD", "CITY", "TIME",
		"SONGS", "STORIES", "SESSIONS", "COLLECTION", "VOLUME", "BEST",
	}
	genrePool = []string{"rock", "jazz", "blues", "folk", "soul", "pop", "country", "classical"}
)

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func words(rng *rand.Rand, pool []string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += pick(rng, pool)
	}
	return out
}

// maybe applies one of the corrupt package's string transformations to *v
// with probability p.
func maybe(rng *rand.Rand, p float64, v *string, fn func(*rand.Rand, string) string) {
	if rng.Float64() < p {
		*v = fn(rng, *v)
	}
}

// Sanity use of the corrupt import for files that only use it via maybe.
var _ = corrupt.Typo
