package datasets

import (
	"math/rand"
	"strconv"

	"repro/internal/corrupt"
	"repro/internal/dedup"
)

// censusAttrs is the 6-attribute person schema of the Census benchmark.
var censusAttrs = []string{
	"last_name", "first_name", "middle_init", "house_num", "street", "zip",
}

// censusClusterSizes approximates the published distribution: 483 clusters,
// 841 records, max cluster size 4, average 1.74, 345 non-singletons and 376
// duplicate pairs (Table 3).
func censusClusterSizes() []int {
	var sizes []int
	sizes = append(sizes, repeat(4, 4)...)  // 4 clusters of 4: 24 pairs
	sizes = append(sizes, repeat(3, 19)...) // 19 clusters of 3: 57 pairs
	sizes = append(sizes, repeat(2, 322)...)
	sizes = append(sizes, repeat(1, 138)...)
	return sizes
}

// Census generates the synthetic Census stand-in. Its hallmark error
// profile (Table 4) is a very high typo rate: ~65 % of duplicate pairs
// differ in the last name by edit distance 1, with frequent first-name
// typos and prefix truncations as well.
func Census(seed int64) *dedup.Dataset {
	rng := corrupt.NewRand(seed, 21)
	g := generator{
		name:      "Census",
		attrs:     censusAttrs,
		nameAttrs: []int{0, 1},
		original: func(rng *rand.Rand) []string {
			return []string{
				pick(rng, surnamePool),
				pick(rng, givenPool),
				string(rune('A' + rng.Intn(26))),
				strconv.Itoa(1 + rng.Intn(999)),
				pick(rng, streetPool),
				strconv.Itoa(10000 + rng.Intn(89999)),
			}
		},
		duplicate: func(rng *rand.Rand, rec []string) {
			maybe(rng, 0.65, &rec[0], corrupt.Typo)
			maybe(rng, 0.35, &rec[1], corrupt.Typo)
			maybe(rng, 0.25, &rec[1], corrupt.TruncateTail)
			if rng.Float64() < 0.3 {
				rec[2] = "" // dropped middle initial
			}
			maybe(rng, 0.15, &rec[3], corrupt.Typo)
			maybe(rng, 0.25, &rec[4], corrupt.Typo)
			maybe(rng, 0.1, &rec[4], corrupt.DropToken)
			maybe(rng, 0.08, &rec[5], corrupt.OCRError)
		},
	}
	return g.build(rng, censusClusterSizes())
}
