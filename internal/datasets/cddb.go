package datasets

import (
	"math/rand"
	"strconv"

	"repro/internal/corrupt"
	"repro/internal/dedup"
)

// cddbAttrs is the 7-attribute audio-disc schema of the CDDB benchmark.
var cddbAttrs = []string{
	"artist", "title", "category", "genre", "year", "tracks", "track01",
}

// cddbClusterSizes approximates the published distribution: 9508 clusters
// over 9763 records — almost everything is a singleton — with 221
// non-singleton clusters, max size 6 and 300 duplicate pairs (Table 3).
func cddbClusterSizes() []int {
	var sizes []int
	sizes = append(sizes, 6)                // 15 pairs
	sizes = append(sizes, repeat(4, 4)...)  // 24 pairs
	sizes = append(sizes, repeat(3, 35)...) // 105 pairs
	sizes = append(sizes, repeat(2, 181)...)
	sizes = append(sizes, repeat(1, 9287)...)
	return sizes
}

// CDDB generates the synthetic CDDB stand-in: free-text disc submissions
// with heterogeneous case, scattered artist/title values, and noisy years —
// the dirtiest comparator by average pair heterogeneity (0.218 in Table 3).
func CDDB(seed int64) *dedup.Dataset {
	rng := corrupt.NewRand(seed, 22)
	g := generator{
		name:      "CDDB",
		attrs:     cddbAttrs,
		nameAttrs: []int{0, 1},
		original: func(rng *rand.Rand) []string {
			return []string{
				pick(rng, artistPool),
				words(rng, albumWords, 1+rng.Intn(3)),
				pick(rng, []string{"misc", "rock", "jazz", "blues", "folk", "data"}),
				pick(rng, genrePool),
				strconv.Itoa(1955 + rng.Intn(50)),
				strconv.Itoa(4 + rng.Intn(20)),
				words(rng, albumWords, 2),
			}
		},
		duplicate: func(rng *rand.Rand, rec []string) {
			// Free-text submissions: caseing differs often.
			maybe(rng, 0.4, &rec[0], corrupt.CaseNoise)
			maybe(rng, 0.4, &rec[1], corrupt.CaseNoise)
			maybe(rng, 0.25, &rec[1], corrupt.Typo)
			maybe(rng, 0.15, &rec[0], corrupt.Typo)
			maybe(rng, 0.12, &rec[1], corrupt.TransposeTokens)
			// Artist pasted into the title field ("artist / title").
			if rng.Float64() < 0.12 {
				rec[1] = rec[0] + " / " + rec[1]
				rec[0] = ""
			}
			if rng.Float64() < 0.25 {
				rec[4] = "" // year often missing on resubmission
			}
			maybe(rng, 0.15, &rec[3], func(r *rand.Rand, s string) string {
				return pick(r, genrePool) // re-categorized
			})
			maybe(rng, 0.3, &rec[6], corrupt.CaseNoise)
			maybe(rng, 0.15, &rec[6], corrupt.Typo)
		},
	}
	return g.build(rng, cddbClusterSizes())
}
