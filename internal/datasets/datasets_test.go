package datasets

import (
	"testing"

	"repro/internal/dedup"
)

func TestCoraCharacteristics(t *testing.T) {
	ds := Cora(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Attrs) != 17 {
		t.Errorf("attrs = %d, want 17", len(ds.Attrs))
	}
	if got := ds.NumClusters(); got != 182 {
		t.Errorf("clusters = %d, want 182", got)
	}
	if got := ds.NonSingletonClusters(); got != 118 {
		t.Errorf("non-singletons = %d, want 118", got)
	}
	if got := ds.MaxClusterSize(); got != 238 {
		t.Errorf("max cluster = %d, want 238", got)
	}
	if got := ds.NumRecords(); got < 1600 || got > 2000 {
		t.Errorf("records = %d, want ~1879", got)
	}
	if got := ds.NumTruePairs(); got < 55000 || got > 75000 {
		t.Errorf("pairs = %d, want ~64578", got)
	}
	if got := ds.AvgClusterSize(); got < 8.5 || got > 11.5 {
		t.Errorf("avg cluster = %v, want ~10.32", got)
	}
}

func TestCensusCharacteristics(t *testing.T) {
	ds := Census(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Attrs) != 6 {
		t.Errorf("attrs = %d, want 6", len(ds.Attrs))
	}
	if got := ds.NumClusters(); got != 483 {
		t.Errorf("clusters = %d, want 483", got)
	}
	if got := ds.NonSingletonClusters(); got != 345 {
		t.Errorf("non-singletons = %d, want 345", got)
	}
	if got := ds.MaxClusterSize(); got != 4 {
		t.Errorf("max cluster = %d, want 4", got)
	}
	if got := ds.NumRecords(); got < 800 || got > 900 {
		t.Errorf("records = %d, want ~841", got)
	}
	if got := ds.NumTruePairs(); got < 350 || got > 430 {
		t.Errorf("pairs = %d, want ~376", got)
	}
	if got := ds.AvgClusterSize(); got < 1.6 || got > 1.9 {
		t.Errorf("avg cluster = %v, want ~1.74", got)
	}
}

func TestCDDBCharacteristics(t *testing.T) {
	ds := CDDB(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Attrs) != 7 {
		t.Errorf("attrs = %d, want 7", len(ds.Attrs))
	}
	if got := ds.NumClusters(); got != 9508 {
		t.Errorf("clusters = %d, want 9508", got)
	}
	if got := ds.NonSingletonClusters(); got != 221 {
		t.Errorf("non-singletons = %d, want 221", got)
	}
	if got := ds.MaxClusterSize(); got != 6 {
		t.Errorf("max cluster = %d, want 6", got)
	}
	if got := ds.NumRecords(); got < 9700 || got > 9850 {
		t.Errorf("records = %d, want ~9763", got)
	}
	if got := ds.NumTruePairs(); got < 280 || got > 360 {
		t.Errorf("pairs = %d, want ~300", got)
	}
	if got := ds.AvgClusterSize(); got < 1.0 || got > 1.1 {
		t.Errorf("avg cluster = %v, want ~1.03", got)
	}
}

func TestDeterminism(t *testing.T) {
	for name, gen := range map[string]func(int64) *dedup.Dataset{
		"Cora": Cora, "Census": Census, "CDDB": CDDB,
	} {
		a, b := gen(7), gen(7)
		if len(a.Records) != len(b.Records) {
			t.Fatalf("%s: non-deterministic record count", name)
		}
		for i := range a.Records {
			for j := range a.Records[i] {
				if a.Records[i][j] != b.Records[i][j] {
					t.Fatalf("%s: non-deterministic value at %d/%d", name, i, j)
				}
			}
		}
		c := gen(8)
		if c.Records[0][0] == a.Records[0][0] && c.Records[0][1] == a.Records[0][1] {
			t.Errorf("%s: different seeds gave identical first record", name)
		}
	}
}

func TestCensusTypoProfile(t *testing.T) {
	// ~65 % of Census duplicate pairs must differ in the last name by a
	// small edit (the dataset's hallmark from Table 4).
	ds := Census(3)
	typoPairs, pairs := 0, 0
	for _, idx := range ds.Clusters() {
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				pairs++
				if ds.Records[idx[x]][0] != ds.Records[idx[y]][0] {
					typoPairs++
				}
			}
		}
	}
	rate := float64(typoPairs) / float64(pairs)
	if rate < 0.45 || rate > 0.9 {
		t.Errorf("last-name difference rate = %v, want around 0.65", rate)
	}
}

func TestCoraMissingValuesCommon(t *testing.T) {
	ds := Cora(3)
	missing, total := 0, 0
	for _, r := range ds.Records {
		for _, v := range r {
			total++
			if v == "" {
				missing++
			}
		}
	}
	if rate := float64(missing) / float64(total); rate < 0.2 {
		t.Errorf("missing-value rate = %v, want >= 0.2 (bibliographic sparsity)", rate)
	}
}

func TestCDDBMostlySingletons(t *testing.T) {
	ds := CDDB(3)
	singles := ds.NumClusters() - ds.NonSingletonClusters()
	if frac := float64(singles) / float64(ds.NumClusters()); frac < 0.95 {
		t.Errorf("singleton fraction = %v, want >= 0.95", frac)
	}
}
