// Package loadgen is a closed-loop, in-process HTTP load generator for the
// serving benchmarks: N workers issue requests back-to-back against an
// http.Handler (no sockets, no client pools — the handler's own cost is
// what is measured), following a deterministic weighted round-robin
// schedule over a target mix. Per-request latencies are recorded
// worker-locally and merged into exact (sorted, not estimated) quantiles,
// overall and per route.
//
// The schedule is computed once up front with smooth weighted round-robin,
// so two runs over the same mix and request count issue the identical
// request sequence — the only nondeterminism left is the machine itself.
package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"
)

// Target is one leg of the workload mix.
type Target struct {
	// Route labels the leg in the result, e.g. "GET /v1/records/{ncid}".
	Route string
	// Paths are the concrete request paths the leg cycles through.
	Paths []string
	// Weight is the leg's relative frequency in the mix (>= 1).
	Weight int
}

// Config tunes a run; zero fields use the defaults.
type Config struct {
	// Workers is the number of closed-loop workers (default 8).
	Workers int
	// Requests is the total timed request count across workers
	// (default 4000).
	Requests int
}

// RouteStats is the per-leg slice of a Result.
type RouteStats struct {
	Route    string  `json:"route"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50ms"`
	P95MS    float64 `json:"p95ms"`
	P99MS    float64 `json:"p99ms"`
	MaxMS    float64 `json:"maxms"`
}

// Result is one load run's measurement.
type Result struct {
	Workers   int          `json:"workers"`
	Requests  int          `json:"requests"`
	Errors    int          `json:"errors"`
	Seconds   float64      `json:"seconds"`
	ReqPerSec float64      `json:"reqPerSec"`
	P50MS     float64      `json:"p50ms"`
	P95MS     float64      `json:"p95ms"`
	P99MS     float64      `json:"p99ms"`
	MaxMS     float64      `json:"maxms"`
	Routes    []RouteStats `json:"routes"`
}

// schedule expands a mix into the deterministic per-request (target, path)
// sequence via smooth weighted round-robin: each step every target gains
// its weight in credit and the most-credited target is picked, so weights
// interleave instead of clumping.
func schedule(targets []Target, requests int) []scheduled {
	credit := make([]int, len(targets))
	cursor := make([]int, len(targets))
	var total int
	for _, t := range targets {
		total += t.Weight
	}
	out := make([]scheduled, 0, requests)
	for i := 0; i < requests; i++ {
		best := 0
		for j := range targets {
			credit[j] += targets[j].Weight
			if credit[j] > credit[best] {
				best = j
			}
		}
		credit[best] -= total
		paths := targets[best].Paths
		out = append(out, scheduled{target: best, path: paths[cursor[best]%len(paths)]})
		cursor[best]++
	}
	return out
}

// scheduled is one planned request.
type scheduled struct {
	target int
	path   string
}

// nullWriter sinks a response, keeping only what the generator needs. It is
// a fresh tiny struct per request, so workers never share response state.
type nullWriter struct {
	hdr    http.Header
	status int
}

func (w *nullWriter) Header() http.Header { return w.hdr }

func (w *nullWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

func (w *nullWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

// Run drives the handler with the mix and returns the measurement. Before
// the clock starts, every distinct path is issued once as untimed warmup,
// so one-time costs (lazy inits, first-touch page faults) don't skew the
// tail and cached configurations are measured in steady state.
func Run(h http.Handler, targets []Target, cfg Config) Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 4000
	}
	plan := schedule(targets, requests)

	for _, t := range targets {
		for _, p := range t.Paths {
			w := &nullWriter{hdr: make(http.Header)}
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, p, nil))
		}
	}

	type sample struct {
		target int
		ms     float64
		err    bool
	}
	perWorker := make([][]sample, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]sample, 0, requests/workers+1)
			for i := w; i < len(plan); i += workers {
				req := httptest.NewRequest(http.MethodGet, plan[i].path, nil)
				rw := &nullWriter{hdr: make(http.Header)}
				t0 := time.Now()
				h.ServeHTTP(rw, req)
				samples = append(samples, sample{
					target: plan[i].target,
					ms:     float64(time.Since(t0)) / float64(time.Millisecond),
					err:    rw.status >= 400,
				})
			}
			perWorker[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	all := make([]float64, 0, requests)
	perTarget := make([][]float64, len(targets))
	res := Result{Workers: workers, Requests: requests, Seconds: elapsed}
	routeErrs := make([]int, len(targets))
	for _, samples := range perWorker {
		for _, s := range samples {
			all = append(all, s.ms)
			perTarget[s.target] = append(perTarget[s.target], s.ms)
			if s.err {
				res.Errors++
				routeErrs[s.target]++
			}
		}
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(len(all)) / elapsed
	}
	res.P50MS, res.P95MS, res.P99MS, res.MaxMS = quantiles(all)
	for i, t := range targets {
		rs := RouteStats{Route: t.Route, Requests: len(perTarget[i]), Errors: routeErrs[i]}
		rs.P50MS, rs.P95MS, rs.P99MS, rs.MaxMS = quantiles(perTarget[i])
		res.Routes = append(res.Routes, rs)
	}
	return res
}

// quantiles returns exact p50/p95/p99/max over the samples (sorted copy;
// the q-quantile is the ceil(q·n)-th smallest).
func quantiles(ms []float64) (p50, p95, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	s := make([]float64, len(ms))
	copy(s, ms)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q*float64(len(s))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return at(0.50), at(0.95), at(0.99), s[len(s)-1]
}
