package loadgen

import (
	"net/http"
	"reflect"
	"testing"
)

func TestScheduleWeightedAndDeterministic(t *testing.T) {
	targets := []Target{
		{Route: "a", Paths: []string{"/a1", "/a2"}, Weight: 3},
		{Route: "b", Paths: []string{"/b"}, Weight: 1},
	}
	plan := schedule(targets, 400)
	if len(plan) != 400 {
		t.Fatalf("plan length = %d", len(plan))
	}
	counts := map[int]int{}
	for _, p := range plan {
		counts[p.target]++
	}
	// 3:1 weights over 400 requests → exactly 300/100.
	if counts[0] != 300 || counts[1] != 100 {
		t.Fatalf("weighted split = %v", counts)
	}
	// Smooth WRR interleaves: the heaviest target never starves the other
	// for a full weight cycle.
	for i := 0; i+4 <= len(plan); i += 4 {
		window := map[int]int{}
		for _, p := range plan[i : i+4] {
			window[p.target]++
		}
		if window[1] != 1 {
			t.Fatalf("window at %d not interleaved: %v", i, window)
		}
	}
	// Paths cycle within a target.
	if plan[0].path != "/a1" {
		t.Fatalf("first path = %q", plan[0].path)
	}
	// The same inputs produce the identical plan.
	if !reflect.DeepEqual(plan, schedule(targets, 400)) {
		t.Fatal("schedule is not deterministic")
	}
}

func TestRunCountsAndQuantiles(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", 404)
	})
	targets := []Target{
		{Route: "ok", Paths: []string{"/ok"}, Weight: 3},
		{Route: "missing", Paths: []string{"/missing"}, Weight: 1},
	}
	res := Run(mux, targets, Config{Workers: 4, Requests: 200})
	if res.Workers != 4 || res.Requests != 200 {
		t.Fatalf("config echo: %+v", res)
	}
	if res.Errors != 50 {
		t.Fatalf("errors = %d, want 50 (the 404 leg)", res.Errors)
	}
	if res.ReqPerSec <= 0 || res.Seconds <= 0 {
		t.Fatalf("throughput missing: %+v", res)
	}
	if res.P50MS > res.P95MS || res.P95MS > res.P99MS || res.P99MS > res.MaxMS {
		t.Fatalf("quantiles out of order: %+v", res)
	}
	if len(res.Routes) != 2 {
		t.Fatalf("routes = %d", len(res.Routes))
	}
	byRoute := map[string]RouteStats{}
	for _, r := range res.Routes {
		byRoute[r.Route] = r
	}
	if byRoute["ok"].Requests != 150 || byRoute["ok"].Errors != 0 {
		t.Fatalf("ok leg = %+v", byRoute["ok"])
	}
	if byRoute["missing"].Requests != 50 || byRoute["missing"].Errors != 50 {
		t.Fatalf("missing leg = %+v", byRoute["missing"])
	}
}

func TestQuantilesExact(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100 - i) // 1..100, reversed
	}
	p50, p95, p99, max := quantiles(samples)
	if p50 != 50 || p95 != 95 || p99 != 99 || max != 100 {
		t.Fatalf("quantiles = %v %v %v %v", p50, p95, p99, max)
	}
	if a, b, c, d := quantiles(nil); a+b+c+d != 0 {
		t.Fatal("empty quantiles not zero")
	}
}
