// Package serving builds immutable, read-optimized serving snapshots of a
// test dataset — the precompute-then-serve philosophy of census-lookup
// services applied to the paper's corpus: everything the high-QPS /v1 read
// path needs (a per-NCID record-view lookup table, per-cluster score
// summaries, the summary histogram bins, and the fully marshaled payloads
// of the dataset-level endpoints) is computed once per corpus version,
// frozen into a generation-stamped Snapshot, and swapped in atomically
// behind the API. Request handlers load the current snapshot with a single
// atomic pointer read — no locking, no per-request aggregation — so a
// reload never blocks or tears a response: every byte of one response comes
// from one generation.
//
// The package also provides the bounded LRU ResponseCache for hot
// aggregate endpoints. Cache keys embed the snapshot generation, so a swap
// implicitly invalidates every cached response without any coordination.
package serving

import (
	"sync"
	"sync/atomic"
)

// Observer receives named counter increments from the serving layer;
// obs.Metrics satisfies it, landing the counters in GET /metrics next to
// the request metrics. The counter names form the serving_* family.
type Observer interface {
	AddN(counter string, n int64)
}

// Counter names reported to the Observer.
const (
	// CounterSwaps counts snapshot swaps (the initial publish included).
	CounterSwaps = "serving_swaps"
	// CounterCacheHits / CounterCacheMisses count response-cache lookups.
	CounterCacheHits   = "serving_cache_hits"
	CounterCacheMisses = "serving_cache_misses"
	// CounterCacheEvictions counts LRU evictions under capacity pressure.
	CounterCacheEvictions = "serving_cache_evictions"
)

// Source is the atomic publication point of serving snapshots: writers
// Swap in freshly built snapshots (serialized by a mutex), readers load the
// current one with a single lock-free atomic pointer read. Current returns
// nil until the first Swap — the readiness signal of the /v1/healthz
// endpoint.
type Source struct {
	mu  sync.Mutex // serializes Swap so generations publish in order
	cur atomic.Pointer[Snapshot]
	gen atomic.Uint64
	obs Observer
}

// NewSource returns an empty source; obs may be nil.
func NewSource(obs Observer) *Source { return &Source{obs: obs} }

// Current returns the latest published snapshot, or nil before the first
// Swap. The returned snapshot is immutable; callers may use it for the
// whole request without further synchronization.
func (s *Source) Current() *Snapshot { return s.cur.Load() }

// Generation returns the generation of the latest Swap (0 before the
// first).
func (s *Source) Generation() uint64 { return s.gen.Load() }

// Swap stamps the snapshot with the next generation and publishes it
// atomically, returning the assigned generation. The snapshot must not be
// shared with readers before Swap (the stamp is its last mutation).
// Concurrent Swaps are serialized, so observed generations only ever grow.
func (s *Source) Swap(snap *Snapshot) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gen.Add(1)
	snap.generation = gen
	s.cur.Store(snap)
	if s.obs != nil {
		s.obs.AddN(CounterSwaps, 1)
	}
	return gen
}
