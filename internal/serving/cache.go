package serving

import (
	"container/list"
	"sync"
)

// CacheKey identifies one cached response. The generation is part of the
// key, so a snapshot swap implicitly invalidates every cached response of
// the previous generation: stale entries can never be served, and the LRU
// discipline ages them out without any explicit flush.
type CacheKey struct {
	Generation uint64
	// Resource is the request's method plus its full URI including the
	// query string, e.g. "GET /v1/clusters/summary?minSize=2".
	Resource string
}

// CachedResponse is one stored response: the status and the exact body
// bytes. Content-Type is always application/json in this API, and the
// generation headers are re-derived from the key, so nothing else needs
// storing.
type CachedResponse struct {
	Status int
	Body   []byte
}

// cacheEntry is the list payload: key (for eviction map cleanup) + value.
type cacheEntry struct {
	key  CacheKey
	resp CachedResponse
}

// ResponseCache is a bounded LRU response cache for hot aggregate
// endpoints. The critical section is a map lookup and a list splice —
// nanoseconds — so a single mutex suffices even at high request
// concurrency; the heavy work it saves (whole-store aggregation, large
// JSON encodes) happens outside the lock exactly once per (generation,
// resource).
type ResponseCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[CacheKey]*list.Element
	obs      Observer
}

// NewResponseCache returns a cache bounded to capacity entries; obs may be
// nil. Capacity must be positive.
func NewResponseCache(capacity int, obs Observer) *ResponseCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResponseCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[CacheKey]*list.Element, capacity),
		obs:      obs,
	}
}

// Get returns the cached response for the key and refreshes its recency.
// Hits and misses are counted into the Observer.
func (c *ResponseCache) Get(key CacheKey) (CachedResponse, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	var resp CachedResponse
	if ok {
		resp = el.Value.(*cacheEntry).resp
	}
	c.mu.Unlock()
	if c.obs != nil {
		if ok {
			c.obs.AddN(CounterCacheHits, 1)
		} else {
			c.obs.AddN(CounterCacheMisses, 1)
		}
	}
	return resp, ok
}

// Put stores a response under the key, evicting least-recently-used
// entries beyond capacity. Storing an existing key refreshes its value and
// recency.
func (c *ResponseCache) Put(key CacheKey, resp CachedResponse) {
	var evicted int64
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 && c.obs != nil {
		c.obs.AddN(CounterCacheEvictions, evicted)
	}
}

// Len returns the current entry count.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
