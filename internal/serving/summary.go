package serving

// SummaryBins is the histogram resolution of the summary's score
// quantiles. Scores live in [0, 1]; 1000 bins give 0.001 resolution, and
// integer bin counts merge commutatively, so any fold order — sequential,
// parallel, or over the snapshot's size-sorted table — produces the
// identical payload.
const SummaryBins = 1000

// scoreSummary aggregates one cluster-level score.
type scoreSummary struct {
	count int64
	min   float64
	max   float64
	bins  [SummaryBins]int64
}

// add folds one observation in.
func (a *scoreSummary) add(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.count++
	bin := int(v * SummaryBins)
	if bin < 0 {
		bin = 0
	}
	if bin >= SummaryBins {
		bin = SummaryBins - 1
	}
	a.bins[bin]++
}

// quantile estimates the q-quantile from the histogram: the midpoint of the
// first bin whose cumulative count reaches q of the total. Resolution is
// 1/SummaryBins; the estimate is deterministic for any fold order.
func (a *scoreSummary) quantile(q float64) float64 {
	if a.count == 0 {
		return 0
	}
	target := int64(q * float64(a.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range a.bins {
		cum += n
		if cum >= target {
			return (float64(i) + 0.5) / SummaryBins
		}
	}
	return a.max
}

// render exports the summary; nil when the score never occurred.
func (a *scoreSummary) render() map[string]any {
	if a.count == 0 {
		return nil
	}
	return map[string]any{
		"count": a.count,
		"min":   a.min,
		"max":   a.max,
		"p10":   a.quantile(0.10),
		"p50":   a.quantile(0.50),
		"p90":   a.quantile(0.90),
	}
}

// SummaryAccumulator folds per-cluster (size, plausibility, heterogeneity)
// observations into the /v1/clusters/summary payload: cluster and record
// counts, size extremes, and histogram-estimated score quantiles. The zero
// value is ready to use. It is not safe for concurrent use; parallel scans
// serialize Add behind their own lock (integer bins and extremes make the
// result order-independent either way).
type SummaryAccumulator struct {
	clusters int64
	records  int64
	minSize  int64
	maxSize  int64
	plaus    scoreSummary
	hetero   scoreSummary
}

// Add folds one cluster in.
func (a *SummaryAccumulator) Add(size int64, plaus float64, hasPlaus bool, hetero float64, hasHetero bool) {
	if a.clusters == 0 || size < a.minSize {
		a.minSize = size
	}
	if a.clusters == 0 || size > a.maxSize {
		a.maxSize = size
	}
	a.clusters++
	a.records += size
	if hasPlaus {
		a.plaus.add(plaus)
	}
	if hasHetero {
		a.hetero.add(hetero)
	}
}

// Payload renders the summary response payload.
func (a *SummaryAccumulator) Payload() map[string]any {
	body := map[string]any{
		"clusters": a.clusters,
		"records":  a.records,
	}
	if a.clusters > 0 {
		body["size"] = map[string]any{"min": a.minSize, "max": a.maxSize}
	}
	if ps := a.plaus.render(); ps != nil {
		body["plausibility"] = ps
	}
	if hs := a.hetero.render(); hs != nil {
		body["heterogeneity"] = hs
	}
	return body
}
