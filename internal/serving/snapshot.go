package serving

import (
	"encoding/json"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/docstore"
)

// Snapshot is one immutable, read-optimized view of a dataset: the dataset
// and its materialized document database (for the endpoints that scan
// indexes), plus — when built with Precompute — the fully marshaled
// payloads of every dataset-level endpoint, the per-NCID record-view
// lookup table, and the per-cluster score summaries the size-filtered
// aggregation folds over. All fields are written once by Build (and the
// generation by Source.Swap) and never mutated afterwards, which is what
// makes lock-free serving sound.
type Snapshot struct {
	generation uint64
	ds         *core.Dataset
	db         *docstore.DB
	provenance json.RawMessage

	precomputed bool
	stats       json.RawMessage
	years       json.RawMessage
	yearsTotal  int
	histogram   json.RawMessage
	versions    json.RawMessage
	versTotal   int
	summary     json.RawMessage
	records     map[string]json.RawMessage
	summaries   []ClusterSummary // sorted by Size ascending
}

// ClusterSummary is the per-cluster slice of the snapshot's aggregation
// table: everything /v1/clusters/summary needs, 40 bytes per cluster
// instead of a document visit.
type ClusterSummary struct {
	Size      int64
	Plaus     float64
	HasPlaus  bool
	Hetero    float64
	HasHetero bool
}

// SizeBounds is the inclusive cluster-size filter of the summary endpoint;
// the Has flags distinguish "unbounded" from a zero bound.
type SizeBounds struct {
	Min, Max       int64
	HasMin, HasMax bool
}

// Unbounded reports whether no size filter is set.
func (b SizeBounds) Unbounded() bool { return !b.HasMin && !b.HasMax }

// BuildOpts tunes Build.
type BuildOpts struct {
	// Workers is the worker count of the parallel precompute scan
	// (0 = GOMAXPROCS). The built snapshot is identical at any count.
	Workers int
	// Precompute materializes the read-optimized tables and payloads.
	// Without it the snapshot only carries the dataset, the database and
	// the generation — the store-backed serving mode.
	Precompute bool
	// Provenance is the raw provenance record of the store this snapshot
	// was loaded from, served verbatim on /v1/provenance. Nil when the
	// store carries no record.
	Provenance json.RawMessage
}

// Build freezes one dataset version into a snapshot. The document database
// must be the materialization of ds (core.Dataset.ToDocDB). With
// opts.Precompute, every cluster document is visited once by a parallel,
// rank-addressed scan, so the precompute cost is paid at build time — and
// parallelized — instead of per request.
func Build(ds *core.Dataset, db *docstore.DB, opts BuildOpts) *Snapshot {
	sn := &Snapshot{ds: ds, db: db, precomputed: opts.Precompute, provenance: opts.Provenance}
	if !opts.Precompute {
		return sn
	}
	sn.stats = mustMarshal(StatsPayload(ds))
	years := ds.YearlyStats()
	sn.years = mustMarshal(years)
	sn.yearsTotal = len(years)
	sn.histogram = mustMarshal(HistogramPayload(ds))
	versions := ds.Versions()
	sn.versions = mustMarshal(versions)
	sn.versTotal = len(versions)

	col := db.Collection(core.ClustersCollection)
	n := col.Len()
	ids := make([]string, n)
	views := make([]json.RawMessage, n)
	sums := make([]ClusterSummary, n)
	col.ForEachIndexedParallel(opts.Workers, func(rank int, doc docstore.Document) {
		ids[rank], _ = doc["_id"].(string)
		views[rank] = mustMarshal(RecordViewPayload(doc))
		sums[rank] = summaryEntry(doc)
	})
	sn.records = make(map[string]json.RawMessage, n)
	for i, id := range ids {
		sn.records[id] = views[i]
	}
	// Stable sort: equal sizes keep insertion order, so the table is
	// identical for any build worker count.
	sort.SliceStable(sums, func(i, j int) bool { return sums[i].Size < sums[j].Size })
	sn.summaries = sums
	sn.summary = mustMarshal(sn.foldSummary(SizeBounds{}))
	return sn
}

// Generation returns the generation stamped by Source.Swap (0 before).
func (sn *Snapshot) Generation() uint64 { return sn.generation }

// Dataset returns the dataset this snapshot was built from. Callers must
// treat it as read-only.
func (sn *Snapshot) Dataset() *core.Dataset { return sn.ds }

// DB returns the materialized document database of this generation.
// Callers must treat it as read-only.
func (sn *Snapshot) DB() *docstore.DB { return sn.db }

// Precomputed reports whether the read-optimized tables were built.
func (sn *Snapshot) Precomputed() bool { return sn.precomputed }

// Provenance returns the raw provenance record this generation serves, or
// nil when its store carried none.
func (sn *Snapshot) Provenance() json.RawMessage { return sn.provenance }

// Stats returns the marshaled /v1/stats payload.
func (sn *Snapshot) Stats() json.RawMessage { return sn.stats }

// Years returns the marshaled /v1/years items and their count.
func (sn *Snapshot) Years() (json.RawMessage, int) { return sn.years, sn.yearsTotal }

// Histogram returns the marshaled /v1/histogram payload.
func (sn *Snapshot) Histogram() json.RawMessage { return sn.histogram }

// Versions returns the marshaled /v1/versions items and their count.
func (sn *Snapshot) Versions() (json.RawMessage, int) { return sn.versions, sn.versTotal }

// RecordView returns the marshaled /v1/records/{ncid} payload of one
// cluster — the O(1) census-lookup path.
func (sn *Snapshot) RecordView(ncid string) (json.RawMessage, bool) {
	raw, ok := sn.records[ncid]
	return raw, ok
}

// NumRecordViews returns the size of the per-NCID lookup table.
func (sn *Snapshot) NumRecordViews() int { return len(sn.records) }

// Summary returns the /v1/clusters/summary payload for the given bounds:
// the precomputed marshaled payload when unbounded, otherwise a fresh fold
// over the contiguous size range of the summary table (binary search, no
// document visits). The folded payload is byte-identical to what the
// store-backed scan of the same clusters produces — every accumulator is a
// count, an extreme or an integer histogram bin, so fold order cannot
// change it.
func (sn *Snapshot) Summary(b SizeBounds) any {
	if b.Unbounded() {
		return sn.summary
	}
	return sn.foldSummary(b)
}

// foldSummary aggregates the summary-table entries inside the bounds.
func (sn *Snapshot) foldSummary(b SizeBounds) map[string]any {
	lo, hi := 0, len(sn.summaries)
	if b.HasMin {
		lo = sort.Search(len(sn.summaries), func(i int) bool { return sn.summaries[i].Size >= b.Min })
	}
	if b.HasMax {
		hi = sort.Search(len(sn.summaries), func(i int) bool { return sn.summaries[i].Size > b.Max })
	}
	if hi < lo {
		hi = lo
	}
	var acc SummaryAccumulator
	for _, e := range sn.summaries[lo:hi] {
		acc.Add(e.Size, e.Plaus, e.HasPlaus, e.Hetero, e.HasHetero)
	}
	return acc.Payload()
}

// summaryEntry extracts one cluster document's summary-table row, with the
// same type leniency as the store-backed fold (sizes are ints in a freshly
// materialized store and float64 after a JSON round trip).
func summaryEntry(doc docstore.Document) ClusterSummary {
	e := ClusterSummary{}
	switch v := doc["size"].(type) {
	case float64:
		e.Size = int64(v)
	case int:
		e.Size = int64(v)
	}
	e.Plaus, e.HasPlaus = doc["plausibility"].(float64)
	e.Hetero, e.HasHetero = doc["heterogeneity"].(float64)
	return e
}

// StatsPayload renders the /v1/stats payload from a dataset. It is shared
// by the store-backed handler (per request) and the snapshot build (once),
// which is what keeps the two serving modes byte-identical.
func StatsPayload(ds *core.Dataset) map[string]any {
	return map[string]any{
		"mode":           ds.Mode.String(),
		"clusters":       ds.NumClusters(),
		"records":        ds.NumRecords(),
		"duplicatePairs": ds.NumPairs(),
		"totalRows":      ds.TotalRows(),
		"removedRecords": ds.RemovedRecords(),
		"avgClusterSize": ds.AvgClusterSize(),
		"maxClusterSize": ds.MaxClusterSize(),
		"versions":       len(ds.Versions()),
	}
}

// HistogramPayload renders the /v1/histogram payload (cluster size →
// cluster count, Fig. 1) from a dataset.
func HistogramPayload(ds *core.Dataset) map[string]int {
	out := map[string]int{}
	for size, n := range ds.ClusterSizeHistogram() {
		out[strconv.Itoa(size)] = n
	}
	return out
}

// RecordViewPayload renders the /v1/records/{ncid} payload from a cluster
// document: the person's records plus the cluster-level scores, without the
// reproducibility meta block — the lean census-lookup view.
func RecordViewPayload(doc docstore.Document) docstore.Document {
	view := docstore.D("ncid", doc["_id"], "size", doc["size"], "records", doc["records"])
	if p, ok := doc["plausibility"]; ok {
		view["plausibility"] = p
	}
	if h, ok := doc["heterogeneity"]; ok {
		view["heterogeneity"] = h
	}
	return view
}

// mustMarshal marshals a value built from marshalable parts; failure is a
// programming bug (same convention as Dataset.ToDocDB).
func mustMarshal(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic("serving: payload marshal failed: " + err.Error())
	}
	return b
}
