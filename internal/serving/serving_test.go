package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/synth"
)

type countObs struct {
	mu sync.Mutex
	m  map[string]int64
}

func (o *countObs) AddN(name string, n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.m == nil {
		o.m = map[string]int64{}
	}
	o.m[name] += n
}

func (o *countObs) get(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[name]
}

func testDataset(t *testing.T) *core.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig(23, 120)
	cfg.Snapshots = synth.Calendar(2010, 3)
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		ds.ImportSnapshot(s)
	}
	plaus.Update(ds)
	hetero.Update(ds)
	ds.Publish()
	return ds
}

func TestSourceLifecycle(t *testing.T) {
	obs := &countObs{}
	src := NewSource(obs)
	if src.Current() != nil || src.Generation() != 0 {
		t.Fatal("fresh source is not empty")
	}
	ds := testDataset(t)
	db := ds.ToDocDB()
	s1 := Build(ds, db, BuildOpts{Precompute: true})
	if gen := src.Swap(s1); gen != 1 || s1.Generation() != 1 {
		t.Fatalf("first swap: gen %d, stamped %d", gen, s1.Generation())
	}
	if src.Current() != s1 || src.Generation() != 1 {
		t.Fatal("current snapshot not published")
	}
	s2 := Build(ds, db, BuildOpts{Precompute: false})
	if gen := src.Swap(s2); gen != 2 {
		t.Fatalf("second swap: gen %d", gen)
	}
	if src.Current() != s2 {
		t.Fatal("swap did not replace the snapshot")
	}
	if got := obs.get(CounterSwaps); got != 2 {
		t.Fatalf("swap counter = %d", got)
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	ds := testDataset(t)
	db := ds.ToDocDB()
	ref := Build(ds, db, BuildOpts{Workers: 1, Precompute: true})
	for _, workers := range []int{2, 3, 7, 0} {
		got := Build(ds, db, BuildOpts{Workers: workers, Precompute: true})
		if !bytes.Equal(got.Stats(), ref.Stats()) {
			t.Errorf("workers=%d: stats diverged", workers)
		}
		gotSum, refSum := got.Summary(SizeBounds{}), ref.Summary(SizeBounds{})
		if !bytes.Equal(gotSum.(json.RawMessage), refSum.(json.RawMessage)) {
			t.Errorf("workers=%d: summary diverged", workers)
		}
		if got.NumRecordViews() != ref.NumRecordViews() {
			t.Fatalf("workers=%d: %d record views, want %d", workers, got.NumRecordViews(), ref.NumRecordViews())
		}
		for _, ncid := range ds.NCIDs() {
			g, _ := got.RecordView(ncid)
			r, _ := ref.RecordView(ncid)
			if !bytes.Equal(g, r) {
				t.Fatalf("workers=%d: record view %s diverged", workers, ncid)
			}
		}
		if !reflect.DeepEqual(got.summaries, ref.summaries) {
			t.Errorf("workers=%d: summary table diverged", workers)
		}
	}
}

func TestSnapshotRecordView(t *testing.T) {
	ds := testDataset(t)
	snap := Build(ds, ds.ToDocDB(), BuildOpts{Precompute: true})
	if snap.NumRecordViews() != ds.NumClusters() {
		t.Fatalf("record views = %d, clusters = %d", snap.NumRecordViews(), ds.NumClusters())
	}
	ncid := ds.NCIDs()[0]
	raw, ok := snap.RecordView(ncid)
	if !ok {
		t.Fatalf("record view %s missing", ncid)
	}
	var view map[string]any
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view["ncid"] != ncid {
		t.Errorf("view ncid = %v", view["ncid"])
	}
	if _, ok := view["records"]; !ok {
		t.Error("view misses records")
	}
	if _, ok := view["meta"]; ok {
		t.Error("view leaks the reproducibility meta block")
	}
	if _, ok := snap.RecordView("NOPE"); ok {
		t.Error("unknown ncid resolved")
	}
}

func TestSummaryBoundsMatchFullFold(t *testing.T) {
	ds := testDataset(t)
	snap := Build(ds, ds.ToDocDB(), BuildOpts{Precompute: true})

	// The filtered fold over the size-sorted table must agree with a naive
	// filter over the same entries.
	for _, tc := range []SizeBounds{
		{},
		{Min: 2, HasMin: true},
		{Max: 3, HasMax: true},
		{Min: 2, Max: 5, HasMin: true, HasMax: true},
		{Min: 99999, HasMin: true},
		{Min: 5, Max: 2, HasMin: true, HasMax: true}, // inverted → empty
	} {
		var naive SummaryAccumulator
		for _, e := range snap.summaries {
			if tc.HasMin && e.Size < tc.Min {
				continue
			}
			if tc.HasMax && e.Size > tc.Max {
				continue
			}
			naive.Add(e.Size, e.Plaus, e.HasPlaus, e.Hetero, e.HasHetero)
		}
		got := snap.foldSummary(tc)
		if !reflect.DeepEqual(got, naive.Payload()) {
			t.Errorf("bounds %+v: fold diverged:\n%v\nvs\n%v", tc, got, naive.Payload())
		}
	}

	// Unbounded Summary returns the precomputed marshal of the same fold.
	raw, ok := snap.Summary(SizeBounds{}).(json.RawMessage)
	if !ok {
		t.Fatal("unbounded summary is not precomputed")
	}
	fresh := mustMarshal(snap.foldSummary(SizeBounds{}))
	if !bytes.Equal(raw, fresh) {
		t.Error("precomputed summary diverged from a fresh fold")
	}
}

func TestResponseCacheLRU(t *testing.T) {
	obs := &countObs{}
	c := NewResponseCache(2, obs)
	key := func(i int) CacheKey {
		return CacheKey{Generation: 1, Resource: fmt.Sprintf("GET /v1/x?i=%d", i)}
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key(1), CachedResponse{Status: 200, Body: []byte("one")})
	c.Put(key(2), CachedResponse{Status: 200, Body: []byte("two")})
	if resp, ok := c.Get(key(1)); !ok || string(resp.Body) != "one" {
		t.Fatalf("get(1) = %v %q", ok, resp.Body)
	}
	// 1 was just used, so inserting 3 must evict 2.
	c.Put(key(3), CachedResponse{Status: 200, Body: []byte("three")})
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU kept the stale entry")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Same resource under a new generation is a distinct key.
	if _, ok := c.Get(CacheKey{Generation: 2, Resource: key(1).Resource}); ok {
		t.Fatal("generation is not part of the key")
	}
	// Update-in-place refreshes the value without eviction.
	c.Put(key(1), CachedResponse{Status: 200, Body: []byte("uno")})
	if resp, _ := c.Get(key(1)); string(resp.Body) != "uno" {
		t.Fatalf("update lost: %q", resp.Body)
	}
	if got := obs.get(CounterCacheEvictions); got != 1 {
		t.Fatalf("evictions = %d", got)
	}
	if hits, misses := obs.get(CounterCacheHits), obs.get(CounterCacheMisses); hits != 3 || misses != 3 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
}

func TestSummaryAccumulatorOrderIndependent(t *testing.T) {
	obs := [][3]float64{{2, 0.9, 0.1}, {5, 0.2, 0.8}, {1, 0.5, 0.5}, {9, 0.7, 0.3}}
	var fwd, rev SummaryAccumulator
	for _, o := range obs {
		fwd.Add(int64(o[0]), o[1], true, o[2], true)
	}
	for i := len(obs) - 1; i >= 0; i-- {
		o := obs[i]
		rev.Add(int64(o[0]), o[1], true, o[2], true)
	}
	if !reflect.DeepEqual(fwd.Payload(), rev.Payload()) {
		t.Fatal("accumulator is order-sensitive")
	}
	var empty SummaryAccumulator
	p := empty.Payload()
	if p["clusters"].(int64) != 0 {
		t.Fatalf("empty payload: %v", p)
	}
	if _, ok := p["size"]; ok {
		t.Error("empty payload renders a size block")
	}
}
